// Command roam-gateway self-hosts a horizontally sharded AmiGo control
// plane: N independent control servers behind a consistent-hash gateway
// (see internal/shard), each optionally backed by a durable write-ahead
// result log (see internal/walsink). MEs — real amigo-me processes or
// the roam-fleet driver with -server — speak to it exactly as they
// would to a single amigo-server; placement is a pure function of the
// ME name, so which shard serves a device is a deployment detail that
// never changes the dataset.
//
// Usage:
//
//	roam-gateway [-listen ADDR] [-shards N] [-wal-dir DIR]
//	             [-compact-after N] [-metrics]
//
// Admin reads (/admin/results, /admin/mes) are merged across shards by
// the gateway; /admin/schedule routes to the owning shard. With
// -metrics the gateway serves its per-shard routing counters and every
// WAL's durability metrics at /admin/metrics. With -compact-after a
// shard's WAL is compacted — its replayed history folded into one
// canonical segment, the sources retired — whenever its sealed-segment
// count reaches the threshold, bounding on-disk growth.
//
// On SIGINT/SIGTERM the gateway shuts down cleanly, syncing and closing
// every shard WAL; restarting over the same -wal-dir replays the logs
// and carries on with zero lost results. The restart follows
// wal-manifest.json, so a deployment that live-resharded (see
// internal/fleet ReshardStep) reopens its latest epoch's WAL set — the
// manifest's shard count wins over -shards.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roamsim/internal/fleet"
	"roamsim/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8431", "listen address")
	shards := flag.Int("shards", 4, "control-plane shard count")
	walDir := flag.String("wal-dir", "", "durable WAL directory; every shard logs results under <dir>/shard-<i> (empty = in-memory sinks)")
	compactAfter := flag.Int("compact-after", 0, "compact a shard's WAL when its sealed-segment count reaches N (0 = never); requires -wal-dir")
	metrics := flag.Bool("metrics", false, "instrument the gateway and WALs; exposition at /admin/metrics")
	flag.Parse()

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	f, err := fleet.NewShardedFleet(fleet.ShardedConfig{
		Shards:       *shards,
		WALDir:       *walDir,
		CompactAfter: *compactAfter,
		Obs:          reg,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{
		Handler:           f.Handler(),
		ReadTimeout:       15 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// The manifest may have overridden -shards (restart after a live
	// reshard); report what is actually serving.
	fmt.Printf("roam-gateway: %d shards (WAL epoch %d) at http://%s", f.Shards(), f.Epoch(), ln.Addr())
	if *walDir != "" {
		records := 0
		for i := 0; i < f.Shards(); i++ {
			records += f.WAL(i).Len()
		}
		fmt.Printf(", WALs under %s (%d results replayed)", *walDir, records)
	}
	fmt.Println()

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("roam-gateway: %s, shutting down\n", s)
		// Drain in-flight requests so an upload already appended to the
		// WAL still gets its 2xx; only force-close if draining stalls.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
		cancel()
	case err := <-done:
		if err != http.ErrServerClosed {
			fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roam-gateway:", err)
	os.Exit(1)
}
