// Command roamvet runs the repo's static-analysis suite: nine
// analyzers that enforce the determinism, hygiene, crash-safety, and
// concurrency contracts the byte-identical-dataset guarantee rests on
// (see internal/lint and the "Determinism contract" section of
// DESIGN.md).
//
//	roamvet                     # analyze every package in the module
//	roamvet -only wallclock     # run a subset
//	roamvet -skip bodyhygiene   # run everything but
//	roamvet -json               # machine-readable report (editors, CI)
//	roamvet -allows             # print the //lint:allow waiver inventory
//	roamvet -C /path/to/module  # analyze another checkout
//
// The -json report carries both the findings and the full inventory of
// active //lint:allow directives (file, line, analyzer, reason), so a
// CI artifact shows every place the tree opts out of a contract — and
// why — not just where it violates one.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"roamsim/internal/lint"
)

// report is the -json output schema.
type report struct {
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
	Allows      []lint.Allow      `json:"allows"`
}

func main() {
	var (
		only      = flag.String("only", "", "comma-separated analyzers to run (default: all)")
		skip      = flag.String("skip", "", "comma-separated analyzers to skip")
		jsonOut   = flag.Bool("json", false, "emit findings and the allow inventory as JSON")
		showAllow = flag.Bool("allows", false, "print active //lint:allow directives and exit")
		dir       = flag.String("C", ".", "module directory to analyze")
		list      = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers, err := lint.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roamvet:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s  %-12s %s\n", a.Code, a.Name, a.Doc)
		}
		return
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roamvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "roamvet:", err)
		os.Exit(2)
	}

	loadBroken := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrs {
			fmt.Fprintf(os.Stderr, "roamvet: %s: type error: %v\n", p.Path, terr)
			loadBroken = true
		}
	}

	allows := lint.Allows(pkgs)
	if *showAllow {
		for _, a := range allows {
			fmt.Printf("%s:%d: allow %s: %s\n", a.File, a.Line, a.Analyzer, a.Reason)
		}
		fmt.Fprintf(os.Stderr, "roamvet: %d active allow directive(s)\n", len(allows))
		if loadBroken {
			os.Exit(2)
		}
		return
	}

	diags := lint.CheckModule(pkgs, analyzers)

	if *jsonOut {
		rep := report{Diagnostics: diags, Allows: allows}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []lint.Diagnostic{}
		}
		if rep.Allows == nil {
			rep.Allows = []lint.Allow{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "roamvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	switch {
	case loadBroken:
		os.Exit(2)
	case len(diags) > 0:
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "roamvet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
