// Command roamvet runs the repo's static-analysis suite: five
// analyzers that enforce the determinism and hygiene contracts the
// byte-identical-dataset guarantee rests on (see internal/lint and the
// "Determinism contract" section of DESIGN.md).
//
//	roamvet                     # analyze every package in the module
//	roamvet -only wallclock     # run a subset
//	roamvet -skip bodyhygiene   # run everything but
//	roamvet -json               # machine-readable findings (editors, CI)
//	roamvet -C /path/to/module  # analyze another checkout
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"roamsim/internal/lint"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = flag.String("skip", "", "comma-separated analyzers to skip")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		dir     = flag.String("C", ".", "module directory to analyze")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers, err := lint.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roamvet:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s  %-12s %s\n", a.Code, a.Name, a.Doc)
		}
		return
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roamvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "roamvet:", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	loadBroken := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrs {
			fmt.Fprintf(os.Stderr, "roamvet: %s: type error: %v\n", p.Path, terr)
			loadBroken = true
		}
		diags = append(diags, lint.Check(p, analyzers)...)
	}

	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "roamvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	switch {
	case loadBroken:
		os.Exit(2)
	case len(diags) > 0:
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "roamvet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
