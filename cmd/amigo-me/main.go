// Command amigo-me runs a measurement endpoint: it registers with an
// amigo-server, heartbeats with device vitals, and executes whatever
// instrumentation the server queues, measuring against the simulated
// Airalo world (the rooted-phone substitute).
//
// Usage:
//
//	amigo-me [-server http://localhost:8080] [-country PAK] [-seed 1] [-poll 500ms] [-once]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/amigo"
	"roamsim/internal/rng"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "control server base URL")
	country := flag.String("country", "PAK", "deployment country (ISO3)")
	seed := flag.Int64("seed", 1, "world seed")
	poll := flag.Duration("poll", 500*time.Millisecond, "task poll interval")
	once := flag.Bool("once", false, "drain the queue once and exit")
	flag.Parse()

	w, err := airalo.Build(*seed)
	if err != nil {
		fatal(err)
	}
	iso := strings.ToUpper(*country)
	dep, ok := w.Deployments[iso]
	if !ok {
		fatal(fmt.Errorf("unknown country %q", iso))
	}
	ep := amigo.NewEndpoint("me-"+iso, *server, dep, rng.New(*seed).Fork("me/"+iso))
	if err := ep.Register(); err != nil {
		fatal(err)
	}
	fmt.Printf("me-%s registered with %s\n", iso, *server)

	heartbeatEvery := 10
	for cycle := 0; ; cycle++ {
		if cycle%heartbeatEvery == 0 {
			if err := ep.Heartbeat(); err != nil {
				fatal(err)
			}
		}
		ran, err := ep.RunOnce()
		if err != nil {
			fatal(err)
		}
		if ran {
			fmt.Println("task executed and uploaded")
			continue
		}
		if *once {
			return
		}
		time.Sleep(*poll)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amigo-me:", err)
	os.Exit(1)
}
