// Command roam-fleet runs a fleet-scale AmiGo device campaign over the
// real HTTP control plane: it expands a campaign plan into per-ME
// schedules, drives thousands of simulated mobile endpoints through
// register / batch-lease / execute / batch-upload against an AmiGo
// control server, ingests the uploaded results and prints the Table 4
// counts and Figure 11-style RTT aggregates regenerated from the fleet
// output.
//
// By default it self-hosts a control server on a loopback port; point
// -server at a running amigo-server to drive an external one instead.
//
// Usage:
//
//	roam-fleet [-server URL] [-mes N] [-countries GEO,DEU,...] [-seed N]
//	           [-workers N] [-lease K] [-proto v2|v3] [-reps N]
//	           [-configs sim,esim] [-tools speedtest,mtr,...] [-crosscheck]
//	           [-chaos light|heavy] [-chaos-seed N] [-straggler DUR]
//	           [-metrics] [-shards N] [-wal-dir DIR] [-kill-shard N]
//	           [-compact-after N] [-reshard N] [-reshard-after U]
//	           [-virtual-time] [-realize]
//
// -proto selects the lease/upload codec: v2 (JSON, the default) or v3
// (length-prefixed binary frames, see internal/wire). The codec is an
// encoding detail — for a fixed seed the ingested dataset and printed
// tables are byte-identical under either protocol.
//
// With -metrics the whole stack is instrumented — control server,
// driver, every ME endpoint, and the network simulator's route cache —
// and the full Prometheus exposition is dumped to stdout at the end of
// the run. The self-hosted server also serves it live at
// /admin/metrics. Metrics never change the dataset: for a fixed seed
// the output is byte-identical with or without -metrics.
//
// With -crosscheck the same plan is also run serially in-process over
// the v1 protocol and the two Table 4 / RTT renderings are compared;
// any mismatch exits nonzero. For a fixed seed the fleet output is
// byte-identical regardless of -workers or -lease.
//
// With -chaos the run is subjected to seeded deterministic fault
// injection (connection resets, truncation, duplicate deliveries,
// latency spikes, 503/429 storms, mid-campaign ME crash/restart; see
// internal/chaos). The ingested dataset and printed tables are still
// byte-identical to the clean run — faults cost retries, never data —
// and the injected fault schedule replays exactly for a given
// -chaos-seed. Chaos requires the self-hosted server (the storm
// middleware must wrap the handler).
//
// With -shards N the self-hosted control plane is horizontally sharded:
// N independent amigo servers behind a consistent-hash gateway (see
// internal/shard). -wal-dir gives every shard a durable write-ahead
// result log (see internal/walsink) under <dir>/shard-<i>. -kill-shard
// kills the given shard once, right after it accepts its first upload —
// its registry, queues and idempotency state are dropped wholesale and
// a fresh server is brought up over the same WAL; MEs rediscover the
// shard and re-register, and the ingested dataset must still be
// byte-identical (pair with -crosscheck to prove it end to end).
//
// -compact-after N compacts a shard's WAL whenever its sealed-segment
// count reaches N: the replayed history is folded into one canonical
// segment and the sources are retired, bounding on-disk growth without
// losing a record. -reshard N live-reshards the running control plane
// onto N shards after the fleet's -reshard-after-th accepted upload:
// the gateway quiesces, every durable result is re-routed into a fresh
// per-shard WAL set under the next epoch directory, and the campaign
// carries on against the new ring — with a dataset still byte-identical
// to the clean run (again, -crosscheck proves it end to end). Both
// require -wal-dir.
//
// With -realize every ME spends each task's simulated network duration
// (speedtest transfers, traceroute probe round trips, the 120 s video
// watch window) on the campaign clock — the pacing an actual fleet
// would have. With -virtual-time that clock is a discrete-event virtual
// clock (see internal/vclock): the campaign jumps over every wait at
// quiescence and finishes as fast as the CPU drains the event queue,
// with a dataset byte-identical to the real-time run. The run prints a
// machine-parseable `run-wall-seconds:` line (driver time only) that
// scripts/bench_fleet.sh uses to compute the virtual-over-real speedup.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
	"roamsim/internal/fleet"
	"roamsim/internal/obs"
	"roamsim/internal/vclock"
)

func main() {
	server := flag.String("server", "", "AmiGo control server base URL (empty = self-host on loopback)")
	mes := flag.Int("mes", 1000, "total fleet size; split evenly across countries")
	countries := flag.String("countries", strings.Join(fleet.DeviceCountries, ","), "comma-separated ISO3 country codes")
	seed := flag.Int64("seed", 42, "campaign seed (same seed = identical dataset)")
	workers := flag.Int("workers", 0, "ME worker pool size (0 = GOMAXPROCS; output is identical either way)")
	lease := flag.Int("lease", 32, "max tasks leased per lease round trip")
	proto := flag.String("proto", "v2", "lease/upload protocol: v2 (JSON) or v3 (binary frames)")
	reps := flag.Int("reps", 1, "repetitions per (tool, config)")
	configs := flag.String("configs", "sim,esim", "comma-separated SIM configurations")
	tools := flag.String("tools", "", "comma-separated task kinds to keep (speedtest,mtr,cdn,dns,video; empty = all)")
	crosscheck := flag.Bool("crosscheck", false, "also run the plan serially in-process and compare outputs")
	chaosMode := flag.String("chaos", "", "inject deterministic faults: \"light\" or \"heavy\" (empty = off)")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault-schedule seed (0 = use -seed); same seed replays the same faults")
	straggler := flag.Duration("straggler", 0, "per-ME-incarnation watchdog; a stuck ME is killed and restarted (0 = off)")
	metrics := flag.Bool("metrics", false, "instrument the run and dump the Prometheus exposition to stdout at the end")
	shards := flag.Int("shards", 1, "self-hosted control-plane shard count (>1 = consistent-hash gateway over N servers)")
	walDir := flag.String("wal-dir", "", "durable WAL directory for shard result sinks (empty = in-memory sinks)")
	killShard := flag.Int("kill-shard", -1, "kill this shard once after its first accepted upload (-1 = off); requires -shards > 1")
	compactAfter := flag.Int("compact-after", 0, "compact a shard's WAL when its sealed-segment count reaches N (0 = never); requires -wal-dir")
	walSegBytes := flag.Int("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = walsink default); small values force rotation so -compact-after has prey")
	reshardTo := flag.Int("reshard", 0, "live-reshard the control plane onto N shards mid-campaign (0 = off); requires -wal-dir")
	reshardAfter := flag.Int("reshard-after", 1, "fire -reshard after the fleet's Uth accepted upload")
	virtualTime := flag.Bool("virtual-time", false, "run the campaign on a discrete-event virtual clock (identical dataset, no real waiting)")
	realize := flag.Bool("realize", false, "spend each task's simulated network duration on the campaign clock")
	flag.Parse()

	plan := fleet.DeviceCampaignPlan()
	plan.Countries = splitList(*countries)
	plan.MEsPerCountry = max(1, *mes/len(plan.Countries))
	plan.Configs = splitList(*configs)
	plan.Reps = *reps
	if *tools != "" {
		keep := map[string]bool{}
		for _, k := range splitList(*tools) {
			keep[k] = true
		}
		var tasks []amigo.Task
		for _, task := range plan.Tasks {
			if keep[task.Kind] {
				tasks = append(tasks, task)
			}
		}
		if len(tasks) == 0 {
			fatal(fmt.Errorf("-tools %q matches none of the campaign tools", *tools))
		}
		plan.Tasks = tasks
	}

	w, err := airalo.Build(*seed)
	if err != nil {
		fatal(err)
	}

	var inj *chaos.Injector
	switch *chaosMode {
	case "":
	case "light", "heavy":
		cseed := *chaosSeed
		if cseed == 0 {
			cseed = *seed
		}
		cfg := chaos.Light()
		if *chaosMode == "heavy" {
			cfg = chaos.Heavy()
		}
		inj = chaos.NewInjector(cseed, cfg)
		if *server != "" {
			fatal(fmt.Errorf("-chaos needs the self-hosted server (storm middleware); drop -server"))
		}
	default:
		fatal(fmt.Errorf("unknown -chaos mode %q (want light or heavy)", *chaosMode))
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		fleet.RegisterNetObs(reg, w.Net)
	}

	sharded := *shards > 1 || *walDir != "" || *killShard >= 0 || *compactAfter > 0 || *reshardTo > 0
	if sharded && *server != "" {
		fatal(fmt.Errorf("-shards/-wal-dir/-kill-shard/-compact-after/-reshard configure the self-hosted control plane; drop -server"))
	}
	if *killShard >= *shards {
		fatal(fmt.Errorf("-kill-shard %d out of range for -shards %d", *killShard, *shards))
	}
	if (*compactAfter > 0 || *reshardTo > 0) && *walDir == "" {
		fatal(fmt.Errorf("-compact-after/-reshard need a durable log; add -wal-dir"))
	}

	baseURL := *server
	var sf *fleet.ShardedFleet
	if baseURL == "" {
		url, shutdown, f, err := selfHost(inj, reg, *shards, *walDir, *killShard, *compactAfter, *reshardTo, *reshardAfter, *walSegBytes)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		baseURL = url
		sf = f
		if sf != nil {
			fmt.Printf("self-hosted sharded control plane (%d shards) at %s\n", sf.Shards(), baseURL)
		} else {
			fmt.Printf("self-hosted control server at %s\n", baseURL)
		}
	}

	d := &fleet.Driver{
		BaseURL:     baseURL,
		Seed:        *seed,
		Workers:     *workers,
		LeaseBatch:  *lease,
		Proto:       *proto,
		StreamLabel: "table4",
		Heartbeat:   true,
		Chaos:       inj,
		Straggler:   *straggler,
		Obs:         reg,
		Realize:     *realize,
	}
	if *virtualTime {
		d.Clock = vclock.NewVirtual()
	}
	wallStart := vclock.Wall.Now()
	camp, err := d.Run(w, plan)
	wallSeconds := vclock.Wall.Now().Sub(wallStart).Seconds()
	if err != nil {
		fatal(err)
	}
	ds, err := fleet.Ingest(w.Reg, camp)
	if err != nil {
		fatal(err)
	}
	if sf != nil {
		// The campaign's last upload may have fired a reshard that is
		// still swapping; settle before reading topology or WAL state.
		sf.WaitIdle()
		if err := sf.ReshardErr(); err != nil {
			fatal(err)
		}
		if err := sf.CompactErr(); err != nil {
			fatal(err)
		}
	}

	st := camp.Stats
	perSec := float64(st.Results) / st.Elapsed.Seconds()
	fmt.Printf("fleet: %d MEs, %d tasks scheduled, %d results in %s (%.0f results/s), %d failures\n",
		st.MEs, st.TasksScheduled, st.Results, st.Elapsed.Round(time.Millisecond), perSec, len(ds.Failures))
	if *virtualTime {
		fmt.Printf("virtual: campaign makespan %s of virtual time in %.3fs of wall time\n",
			st.Elapsed.Round(time.Millisecond), wallSeconds)
	}
	// Driver time only — the line bench_fleet.sh parses for the
	// virtual-over-real speedup; excludes server setup and ingest.
	fmt.Printf("run-wall-seconds: %.3f\n", wallSeconds)
	if inj != nil {
		fmt.Printf("chaos: %s mode, seed %d: injected %d faults; dataset is byte-identical to the clean run\n",
			*chaosMode, inj.Seed(), len(inj.Events()))
	}
	if sf != nil {
		// Read the live topology, not the flags: a reshard may have
		// changed the shard count mid-campaign.
		nShards := sf.Shards()
		records, segments, bytes := 0, 0, int64(0)
		retired := 0
		for i := 0; i < nShards; i++ {
			if wal := sf.WAL(i); wal != nil {
				records += wal.Len()
				n, b := wal.Segments()
				segments += n
				bytes += b
				retired += wal.Retired()
			}
		}
		fmt.Printf("shards: %d shards (WAL epoch %d), %d killed and recovered", nShards, sf.Epoch(), sf.Kills())
		if *walDir != "" {
			fmt.Printf("; WAL: %d results in %d segments (%d bytes) under %s", records, segments, bytes, *walDir)
		}
		fmt.Println()
		if n, rst := sf.Reshards(); n > 0 {
			fmt.Printf("reshard: %d reshards completed; last replayed %d wal-records (%d re-homed) into %d shards\n",
				n, rst.Records, rst.Moved, nShards)
		}
		if *compactAfter > 0 {
			fmt.Printf("compact: %d source segments retired, %d shards killed mid-compaction and recovered\n",
				retired, sf.CompactKills())
		}
	}
	fmt.Println()
	fmt.Println(fleet.Table4(ds, camp.Plan).String())
	fmt.Println(fleet.RTTSummary(ds, camp.Plan).String())

	if reg != nil {
		fmt.Println("# metrics (Prometheus text exposition)")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *crosscheck {
		inproc, err := fleet.RunInProcess(w, plan, *seed, "table4", true)
		if err != nil {
			fatal(err)
		}
		ids, err := fleet.Ingest(w.Reg, inproc)
		if err != nil {
			fatal(err)
		}
		ok := true
		if got, want := fleet.Table4(ds, plan).String(), fleet.Table4(ids, plan).String(); got != want {
			ok = false
			fmt.Fprintf(os.Stderr, "crosscheck: Table 4 mismatch\nfleet:\n%s\nin-process:\n%s\n", got, want)
		}
		if got, want := fleet.RTTSummary(ds, plan).String(), fleet.RTTSummary(ids, plan).String(); got != want {
			ok = false
			fmt.Fprintf(os.Stderr, "crosscheck: RTT summary mismatch\nfleet:\n%s\nin-process:\n%s\n", got, want)
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Println("crosscheck: fleet output matches the serial in-process campaign")
	}
}

// selfHost starts the control plane on an ephemeral loopback port and
// returns its base URL plus a shutdown func. With shards > 1 (or a WAL
// dir, or a kill request) the plane is a sharded fleet behind the
// consistent-hash gateway and the *fleet.ShardedFleet is returned too;
// otherwise it is a single amigo server and the fleet is nil. A non-nil
// injector wraps the handler with server-side storm middleware (admin
// traffic carries no chaos header and passes through untouched); a
// non-nil registry instruments the plane and is served at
// /admin/metrics.
func selfHost(inj *chaos.Injector, reg *obs.Registry, shards int, walDir string, killShard, compactAfter, reshardTo, reshardAfter, segBytes int) (string, func(), *fleet.ShardedFleet, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	var handler http.Handler
	var sf *fleet.ShardedFleet
	if shards > 1 || walDir != "" || killShard >= 0 || compactAfter > 0 || reshardTo > 0 {
		var steps []fleet.ReshardStep
		if reshardTo > 0 {
			steps = []fleet.ReshardStep{{AfterUploads: reshardAfter, Shards: reshardTo}}
		}
		sf, err = fleet.NewShardedFleet(fleet.ShardedConfig{
			Shards:         shards,
			WALDir:         walDir,
			SegmentBytes:   segBytes,
			Chaos:          inj,
			ForceKill:      killShard >= 0,
			ForceKillShard: killShard,
			CompactAfter:   compactAfter,
			Reshards:       steps,
			Obs:            reg,
		})
		if err != nil {
			ln.Close()
			return "", nil, nil, err
		}
		handler = sf.Handler()
	} else {
		srv := amigo.NewServer(nil, amigo.WithObs(reg))
		mux := http.NewServeMux()
		h := srv.Handler()
		mux.Handle("/v1/", h)
		mux.Handle("/v2/", h)
		mux.Handle("/v3/", h)
		mux.Handle("/admin/", srv.AdminHandler())
		handler = mux
	}
	if inj != nil {
		handler = inj.Middleware(handler)
	}
	hs := &http.Server{
		Handler:           handler,
		ReadTimeout:       15 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	//lint:allow gojoin server goroutine lives until shutdown() closes the listener, which makes Serve return
	go hs.Serve(ln)
	shutdown := func() {
		hs.Close()
		if sf != nil {
			sf.Close()
		}
	}
	return "http://" + ln.Addr().String(), shutdown, sf, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roam-fleet:", err)
	os.Exit(1)
}
