// Command roam-fleet runs a fleet-scale AmiGo device campaign over the
// real HTTP control plane: it expands a campaign plan into per-ME
// schedules, drives thousands of simulated mobile endpoints through
// register / batch-lease / execute / batch-upload against an AmiGo
// control server, ingests the uploaded results and prints the Table 4
// counts and Figure 11-style RTT aggregates regenerated from the fleet
// output.
//
// By default it self-hosts a control server on a loopback port; point
// -server at a running amigo-server to drive an external one instead.
//
// Usage:
//
//	roam-fleet [-server URL] [-mes N] [-countries GEO,DEU,...] [-seed N]
//	           [-workers N] [-lease K] [-reps N] [-configs sim,esim]
//	           [-crosscheck]
//
// With -crosscheck the same plan is also run serially in-process over
// the v1 protocol and the two Table 4 / RTT renderings are compared;
// any mismatch exits nonzero. For a fixed seed the fleet output is
// byte-identical regardless of -workers or -lease.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/amigo"
	"roamsim/internal/fleet"
)

func main() {
	server := flag.String("server", "", "AmiGo control server base URL (empty = self-host on loopback)")
	mes := flag.Int("mes", 1000, "total fleet size; split evenly across countries")
	countries := flag.String("countries", strings.Join(fleet.DeviceCountries, ","), "comma-separated ISO3 country codes")
	seed := flag.Int64("seed", 42, "campaign seed (same seed = identical dataset)")
	workers := flag.Int("workers", 0, "ME worker pool size (0 = GOMAXPROCS; output is identical either way)")
	lease := flag.Int("lease", 32, "max tasks leased per v2 round trip")
	reps := flag.Int("reps", 1, "repetitions per (tool, config)")
	configs := flag.String("configs", "sim,esim", "comma-separated SIM configurations")
	crosscheck := flag.Bool("crosscheck", false, "also run the plan serially in-process and compare outputs")
	flag.Parse()

	plan := fleet.DeviceCampaignPlan()
	plan.Countries = splitList(*countries)
	plan.MEsPerCountry = max(1, *mes/len(plan.Countries))
	plan.Configs = splitList(*configs)
	plan.Reps = *reps

	w, err := airalo.Build(*seed)
	if err != nil {
		fatal(err)
	}

	baseURL := *server
	if baseURL == "" {
		url, shutdown, err := selfHost()
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		baseURL = url
		fmt.Printf("self-hosted control server at %s\n", baseURL)
	}

	d := &fleet.Driver{
		BaseURL:     baseURL,
		Seed:        *seed,
		Workers:     *workers,
		LeaseBatch:  *lease,
		StreamLabel: "table4",
		Heartbeat:   true,
	}
	camp, err := d.Run(w, plan)
	if err != nil {
		fatal(err)
	}
	ds, err := fleet.Ingest(w.Reg, camp)
	if err != nil {
		fatal(err)
	}

	st := camp.Stats
	perSec := float64(st.Results) / st.Elapsed.Seconds()
	fmt.Printf("fleet: %d MEs, %d tasks scheduled, %d results in %s (%.0f results/s), %d failures\n\n",
		st.MEs, st.TasksScheduled, st.Results, st.Elapsed.Round(time.Millisecond), perSec, len(ds.Failures))
	fmt.Println(fleet.Table4(ds, camp.Plan).String())
	fmt.Println(fleet.RTTSummary(ds, camp.Plan).String())

	if *crosscheck {
		inproc, err := fleet.RunInProcess(w, plan, *seed, "table4", true)
		if err != nil {
			fatal(err)
		}
		ids, err := fleet.Ingest(w.Reg, inproc)
		if err != nil {
			fatal(err)
		}
		ok := true
		if got, want := fleet.Table4(ds, plan).String(), fleet.Table4(ids, plan).String(); got != want {
			ok = false
			fmt.Fprintf(os.Stderr, "crosscheck: Table 4 mismatch\nfleet:\n%s\nin-process:\n%s\n", got, want)
		}
		if got, want := fleet.RTTSummary(ds, plan).String(), fleet.RTTSummary(ids, plan).String(); got != want {
			ok = false
			fmt.Fprintf(os.Stderr, "crosscheck: RTT summary mismatch\nfleet:\n%s\nin-process:\n%s\n", got, want)
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Println("crosscheck: fleet output matches the serial in-process campaign")
	}
}

// selfHost starts an AmiGo control server on an ephemeral loopback port
// and returns its base URL plus a shutdown func.
func selfHost() (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := amigo.NewServer(nil)
	mux := http.NewServeMux()
	h := srv.Handler()
	mux.Handle("/v1/", h)
	mux.Handle("/v2/", h)
	mux.Handle("/admin/", srv.AdminHandler())
	hs := &http.Server{
		Handler:           mux,
		ReadTimeout:       15 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roam-fleet:", err)
	os.Exit(1)
}
