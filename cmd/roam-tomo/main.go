// Command roam-tomo runs the tomography pipeline for one visited
// country: attach the eSIM (and physical SIM if present), classify the
// roaming architecture from the public IP, run traceroutes, demarcate
// them, and print what the paper's analysis would conclude.
//
// Usage:
//
//	roam-tomo [-seed N] [-country ISO3] [-target Google|Facebook] [-n 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"roamsim"
	"roamsim/internal/ipaddr"
	"roamsim/internal/measure"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	country := flag.String("country", "PAK", "visited country (ISO3) or EMNIFY")
	target := flag.String("target", "Google", "traceroute target SP")
	n := flag.Int("n", 5, "traceroutes per configuration")
	pcapPath := flag.String("pcap", "", "write a GTP-U capture of the eSIM tunnel to this file")
	flag.Parse()

	w, err := roamsim.NewWorld(*seed)
	if err != nil {
		fatal(err)
	}
	d := w.Deployment(strings.ToUpper(*country))
	if d == nil {
		fatal(fmt.Errorf("unknown country %q; known: %v", *country, w.DeploymentKeys(false, false)))
	}

	fmt.Printf("== %s: v-MNO %s, eSIM issued by %s (%s) ==\n\n",
		d.Key, d.VMNO.Name, d.BMNO.Name, d.BMNO.PLMN)

	runConfig(w, d, "esim", *target, *n)
	if d.SIMProfile != nil {
		runConfig(w, d, "sim", *target, *n)
	}
	if *pcapPath != "" {
		if err := writePcap(w, d, *pcapPath); err != nil {
			fatal(err)
		}
	}
}

// writePcap captures a synthetic GTP-U exchange through the eSIM's
// tunnel into a libpcap file (LINKTYPE_RAW) for external inspection.
func writePcap(w *roamsim.World, d *roamsim.Deployment, path string) error {
	s, err := d.AttachESIM(w.Rand())
	if err != nil {
		return err
	}
	if s.Tunnel == nil {
		return fmt.Errorf("%s eSIM is not roaming: no GTP tunnel to capture", d.Key)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sgwTransport := ipaddr.MustParse("10.200.0.1")
	if err := s.Tunnel.CaptureExchange(f, sgwTransport, s.PGWAddr, 20); err != nil {
		return err
	}
	fmt.Printf("wrote 20-packet GTP-U capture (TEID %d, PGW %s) to %s\n",
		s.Tunnel.TEID, s.PGWAddr, path)
	return nil
}

func runConfig(w *roamsim.World, d *roamsim.Deployment, config, target string, n int) {
	r := w.Rand()
	var s *roamsim.Session
	var err error
	if config == "esim" {
		s, err = d.AttachESIM(r)
	} else {
		s, err = d.AttachSIM(r)
	}
	if err != nil {
		fatal(err)
	}
	arch, err := w.ClassifyArchitecture(s)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("[%s] public IP %s -> architecture %s\n", config, s.PublicIP, arch)
	fmt.Printf("[%s] PGW %s at %s, %s (provider %s)\n",
		config, s.PGWAddr, s.Site.City, s.Site.Country, s.Provider.Name)
	if s.Tunnel != nil {
		fmt.Printf("[%s] GTP tunnel span: %.0f km\n", config, s.Tunnel.SpanKm())
	}

	for i := 0; i < n; i++ {
		trc, err := roamsim.Traceroute(s, target, r)
		if err != nil {
			fatal(err)
		}
		pa, err := w.Demarcate(trc)
		if err != nil {
			fmt.Printf("[%s] trace %d: %v\n", config, i+1, err)
			continue
		}
		fmt.Printf("[%s] trace %d to %s: %d private + %d public hops; PGW hop %.0f ms; final %.0f ms; private share %.0f%%; %d ASNs\n",
			config, i+1, target, pa.PrivateHops, pa.PublicHops,
			pa.PGWHopRTTms, pa.FinalRTTms, pa.PrivateFraction*100, pa.UniqueASNs)
	}

	// One full mtr-style report for the record.
	tr, err := roamsim.Traceroute(s, target, r)
	if err != nil {
		fatal(err)
	}
	fmt.Print(measure.FormatMTR(tr))

	res, err := roamsim.Speedtest(s, r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("[%s] speedtest vs %s: %.1f down / %.1f up Mbps, %.0f ms (%s, CQI %d)\n",
		config, res.ServerCity, res.DownMbps, res.UpMbps, res.LatencyMs, res.Radio.RAT, res.Radio.CQI)
	dns, err := roamsim.DNSLookup(s, r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("[%s] DNS: resolver %s (%s, %s), %.0f ms, DoH=%v\n\n",
		config, dns.Resolver.Addr, dns.Resolver.City, dns.Resolver.Country, dns.DurationMs, dns.DoH)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roam-tomo:", err)
	os.Exit(1)
}
