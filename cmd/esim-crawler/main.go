// Command esim-crawler reproduces the crawler-based campaign: it serves
// the synthetic eSIM marketplace aggregator and crawls it daily over the
// study period from multiple vantage points, printing the economics
// summary (continent medians, provider comparison, price-discrimination
// check).
//
// Usage:
//
//	esim-crawler [-seed 42] [-providers 54] [-vantages "Madrid,Abu Dhabi,New Jersey"]
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"roamsim/internal/esimdb"
	"roamsim/internal/geo"
	"roamsim/internal/stats"
)

func main() {
	seed := flag.Int64("seed", 42, "marketplace seed")
	providers := flag.Int("providers", 54, "number of providers")
	vantages := flag.String("vantages", "Madrid,Abu Dhabi,New Jersey", "crawl vantage points")
	flag.Parse()

	m := esimdb.New(*seed, *providers)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	dates := []time.Time{
		time.Date(2024, 2, 14, 0, 0, 0, 0, time.UTC),
		time.Date(2024, 3, 15, 0, 0, 0, 0, time.UTC),
		time.Date(2024, 4, 15, 0, 0, 0, 0, time.UTC),
		esimdb.SnapshotDate,
	}
	fmt.Println("== continent median $/GB (Airalo) over the campaign ==")
	c := &esimdb.Crawler{BaseURL: srv.URL, Vantage: "Madrid"}
	for _, d := range dates {
		plans, err := c.Crawl(d)
		if err != nil {
			fatal(err)
		}
		dist := esimdb.ContinentDistribution(plans, "Airalo")
		fmt.Printf("%s:", d.Format("2006-01-02"))
		for _, ct := range []geo.Continent{geo.Europe, geo.Asia, geo.Africa, geo.NorthAmerica} {
			fmt.Printf("  %s=%.2f", ct, stats.Median(dist[ct]))
		}
		fmt.Println()
	}

	fmt.Println("\n== provider comparison (snapshot 2024-05-01) ==")
	snapshot, err := c.Crawl(esimdb.SnapshotDate)
	if err != nil {
		fatal(err)
	}
	pm := esimdb.ProviderMedianPerGB(snapshot)
	for _, name := range []string{"Airhub", "MobiMatter", "Nomad", "Airalo", "Keepgo"} {
		info := pm[name]
		fmt.Printf("%-12s median $%.2f/GB across %d countries (%d offers)\n",
			name, info.Median, info.Countries, info.Offers)
	}
	var local []float64
	for _, o := range esimdb.LocalSIMOffers {
		local = append(local, o.PerGB())
	}
	fmt.Printf("%-12s median $%.2f/GB (volunteer-collected)\n", "local SIM", stats.Median(local))

	fmt.Println("\n== price discrimination check ==")
	var first []esimdb.Plan
	identical := true
	for _, v := range strings.Split(*vantages, ",") {
		vc := &esimdb.Crawler{BaseURL: srv.URL, Vantage: strings.TrimSpace(v)}
		plans, err := vc.Crawl(esimdb.SnapshotDate)
		if err != nil {
			fatal(err)
		}
		if first == nil {
			first = plans
			continue
		}
		if len(plans) != len(first) {
			identical = false
		} else {
			for i := range plans {
				if plans[i] != first[i] {
					identical = false
					break
				}
			}
		}
	}
	if identical {
		fmt.Println("no price discrimination observed: identical catalogs from every vantage")
	} else {
		fmt.Println("WARNING: catalogs differ across vantages")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esim-crawler:", err)
	os.Exit(1)
}
