// Command amigo-server runs the AmiGo control server: the REST endpoint
// measurement endpoints (amigo-me, roam-fleet) register with, lease
// tasks from, and upload results to. It serves both the v1
// one-task-per-poll protocol and the v2 batch lease/upload protocol
// (see internal/amigo for the wire formats).
//
// Usage:
//
//	amigo-server [-addr :8080]
//
// Schedule tasks by POSTing to /admin/schedule, either the legacy
// single-kind form or a task batch:
//
//	curl -X POST localhost:8080/admin/schedule \
//	  -d '{"me":"me-PAK","kind":"speedtest","config":"esim","count":3}'
//	curl -X POST localhost:8080/admin/schedule \
//	  -d '{"me":"me-PAK","tasks":[{"kind":"mtr","target":"Google","config":"sim"}]}'
//
// Results are readable incrementally at
// /admin/results?cursor=N[&limit=M], which returns
// {"cursor":NEXT,"results":[...]}; poll with the returned cursor to
// stream only new uploads. cursor=-1 peeks at the current cursor
// without returning results.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight uploads before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roamsim/internal/amigo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := amigo.NewServer(nil)
	mux := http.NewServeMux()
	h := srv.Handler()
	mux.Handle("/v1/", h)
	mux.Handle("/v2/", h)
	mux.Handle("/admin/", srv.AdminHandler())

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadTimeout:       15 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("amigo-server listening on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain in-flight uploads before exiting.
	fmt.Println("amigo-server: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
}
