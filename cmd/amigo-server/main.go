// Command amigo-server runs the AmiGo control server: the REST endpoint
// measurement endpoints (amigo-me, roam-fleet) register with, lease
// tasks from, and upload results to. It serves the v1
// one-task-per-poll protocol, the v2 JSON batch lease/upload protocol,
// and the v3 binary-frame batch protocol (see internal/amigo and
// internal/wire for the wire formats).
//
// Usage:
//
//	amigo-server [-addr :8080] [-proto v2|v3] [-pprof]
//
// -proto caps the newest protocol served: v3 (the default) mounts the
// binary /v3/ routes alongside v1+v2; v2 serves only the JSON
// protocols, for staged rollouts where binary-frame clients must be
// turned away with 404 until the fleet is ready.
//
// Schedule tasks by POSTing to /admin/schedule, either the legacy
// single-kind form or a task batch:
//
//	curl -X POST localhost:8080/admin/schedule \
//	  -d '{"me":"me-PAK","kind":"speedtest","config":"esim","count":3}'
//	curl -X POST localhost:8080/admin/schedule \
//	  -d '{"me":"me-PAK","tasks":[{"kind":"mtr","target":"Google","config":"sim"}]}'
//
// Results are readable incrementally at
// /admin/results?cursor=N[&limit=M], which returns
// {"cursor":NEXT,"results":[...]}; poll with the returned cursor to
// stream only new uploads. cursor=-1 peeks at the current cursor
// without returning results.
//
// Observability: /admin/metrics serves control-plane metrics (request
// counts and latencies per route, lease/ack/redelivery/dedup counters,
// spool depth) in Prometheus text format, and /admin/trace?n=K serves
// the newest trace events as JSON. -pprof additionally mounts the
// net/http/pprof profiling handlers under /debug/pprof/.
//
// The server shuts down gracefully on SIGINT/SIGTERM: new requests are
// rejected with 503 + Retry-After (so well-behaved MEs back off and
// retry against the replacement server) while in-flight uploads drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"roamsim/internal/amigo"
	"roamsim/internal/obs"
)

// drainGate rejects requests with 503 + Retry-After once draining is
// set. The header matters: the ME retry policy treats a bare 503 and a
// hinted one identically only because it clamps the hint, but fleet
// operators pointing other clients at the server get a standard,
// parseable backoff signal instead of a silent connection error.
type drainGate struct {
	draining atomic.Bool
	next     http.Handler
}

func (g *drainGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "amigo-server: draining for shutdown", http.StatusServiceUnavailable)
		return
	}
	g.next.ServeHTTP(w, r)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	proto := flag.String("proto", "v3", "newest protocol to serve: v3 (binary + JSON) or v2 (JSON only)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof profiling handlers under /debug/pprof/")
	flag.Parse()

	maxProto := 0
	switch *proto {
	case "v2":
		maxProto = 2
	case "v3":
		maxProto = 3
	default:
		log.Fatalf("amigo-server: unknown -proto %q (want v2 or v3)", *proto)
	}

	reg := obs.NewRegistry()
	srv := amigo.NewServer(nil, amigo.WithObs(reg), amigo.WithMaxProto(maxProto))
	mux := http.NewServeMux()
	h := srv.Handler()
	mux.Handle("/v1/", h)
	mux.Handle("/v2/", h)
	if maxProto >= 3 {
		mux.Handle("/v3/", h)
	}
	mux.Handle("/admin/", srv.AdminHandler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	gate := &drainGate{next: mux}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           gate,
		ReadTimeout:       15 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("amigo-server listening on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Shed new work with 503 + Retry-After, then drain in-flight
	// uploads before exiting.
	gate.draining.Store(true)
	fmt.Println("amigo-server: draining, new requests get 503 + Retry-After")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
}
