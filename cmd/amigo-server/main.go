// Command amigo-server runs the AmiGo control server: the REST endpoint
// measurement endpoints (amigo-me) register with, poll for tasks, and
// upload results to.
//
// Usage:
//
//	amigo-server [-addr :8080]
//
// Schedule tasks by POSTing to /admin/schedule:
//
//	curl -X POST localhost:8080/admin/schedule \
//	  -d '{"me":"me-PAK","kind":"speedtest","config":"esim","count":3}'
//
// Results are readable at /admin/results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	"roamsim/internal/amigo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := amigo.NewServer(nil)
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())

	mux.HandleFunc("POST /admin/schedule", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ME     string `json:"me"`
			Kind   string `json:"kind"`
			Target string `json:"target"`
			Config string `json:"config"`
			Count  int    `json:"count"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		if req.Count <= 0 {
			req.Count = 1
		}
		var ids []int
		for i := 0; i < req.Count; i++ {
			id, err := srv.Schedule(req.ME, amigo.Task{
				Kind: req.Kind, Target: req.Target, Config: req.Config,
			})
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			ids = append(ids, id)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"task_ids": ids})
	})
	mux.HandleFunc("GET /admin/results", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(srv.Results())
	})
	mux.HandleFunc("GET /admin/mes", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(srv.MEs())
	})

	fmt.Printf("amigo-server listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
