// Command roam-experiments regenerates the paper's tables and figures
// from the simulated Airalo world and prints them as text tables (or
// CSV with -csv).
//
// Usage:
//
//	roam-experiments [-seed N] [-exp table2|fig11|all|...] [-csv] [-quick] [-workers N]
//
// Experiment names: table2 table3 table4 fig3 fig4 fig5 fig6 fig7 fig8
// fig9 fig10 fig11 fig12 fig13 fig14a fig14b fig15 fig16 fig17 fig18
// fig19 fig20 validation ablation-pgw ablation-policy ablation-peering
// ablation-lbo voip jurisdiction.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"roamsim/internal/experiments"
	"roamsim/internal/report"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed (same seed = identical output)")
	exp := flag.String("exp", "all", "experiment to run (comma-separated, or 'all')")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	quick := flag.Bool("quick", false, "smaller campaigns (faster, noisier)")
	out := flag.String("out", "", "export every artifact (txt+csv) into this directory and exit")
	workers := flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *quick {
		cfg.TracesPerCountry = 10
		cfg.SpeedtestsPerCountry = 20
		cfg.CDNFetchesPerCountry = 6
		cfg.DNSPerCountry = 15
		cfg.VideosPerCountry = 4
		cfg.WebMeasurements = 4
	}
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		files, err := r.WriteAll(*out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d artifact files to %s\n", len(files), *out)
		return
	}

	wanted := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	all := wanted["all"]
	delete(wanted, "all")
	run := func(name string, f func() error) {
		known := wanted[name]
		delete(wanted, name)
		if !all && !known {
			return
		}
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	run("table2", func() error { t, err := r.Table2(); emitIf(err, t, emit); return err })
	run("table3", func() error { t, err := r.Table3(); emitIf(err, t, emit); return err })
	run("table4", func() error { t, err := r.Table4(); emitIf(err, t, emit); return err })
	run("fig3", func() error { t, err := r.Figure3(); emitIf(err, t, emit); return err })
	run("fig4", func() error { t, err := r.Figure4(); emitIf(err, t, emit); return err })
	run("fig5", func() error {
		res, err := r.Figure5()
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Printf("IMSI mining: %d ranges, precision %.2f, recall %.2f\n\n",
			res.MinedRanges, res.Precision, res.Recall)
		return nil
	})
	run("fig6", func() error { t, err := r.Figure6(); emitIf(err, t, emit); return err })
	run("fig7", func() error { t, err := r.Figure7(); emitIf(err, t, emit); return err })
	run("fig8", func() error {
		res, err := r.Figure8()
		if err != nil {
			return err
		}
		fmt.Println("Figure 8: CDF of RTT to Singtel PGWs (HR eSIMs)")
		fmt.Printf("medians: PAK=%.0f ms, UAE=%.0f ms\n", res.Medians["PAK"], res.Medians["ARE"])
		if *csv {
			fmt.Print(report.SeriesCSV(res.Series))
		}
		fmt.Println()
		return nil
	})
	run("fig9", func() error {
		res, err := r.Figure9()
		if err != nil {
			return err
		}
		fmt.Println("Figure 9: CDF of PGW RTT (IHBO eSIMs, OS=OVH, PH=Packet Host)")
		for _, k := range []string{"GEO/OS", "GEO/PH", "DEU/OS", "DEU/PH", "ESP/OS", "ESP/PH"} {
			fmt.Printf("  %s median = %.0f ms\n", k, res.Medians[k])
		}
		if *csv {
			fmt.Print(report.SeriesCSV(res.Series))
		}
		fmt.Println()
		return nil
	})
	run("fig10", func() error { t, err := r.Figure10(); emitIf(err, t, emit); return err })
	run("fig11", func() error {
		res, err := r.Figure11()
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Printf("HR latency inflation: %.0f%% (paper: 621%%)\n", res.HRInflation*100)
		fmt.Printf("IHBO latency inflation: %.0f%% (paper: 64%%)\n", res.IHBOInflation*100)
		fmt.Printf(">150 ms: eSIM %.1f%% vs SIM %.1f%% (paper: 14.5%% vs 3%%)\n", res.ESIMFracAbove150*100, res.SIMFracAbove150*100)
		fmt.Printf("Welch t-test (SIM vs roaming eSIM): p = %.3g (paper: 7.7e-5)\n", res.RoamingTTestP)
		fmt.Printf("Welch t-test (SIM vs native eSIM):  p = %.3g (paper: 0.152)\n", res.NativeTTestP)
		fmt.Printf("Levene variance test: p = %.3g (paper: 0.025)\n\n", res.LeveneP)
		return nil
	})
	run("fig12", func() error {
		res, err := r.Figure12()
		if err != nil {
			return err
		}
		fmt.Println("Figure 12: median fraction of latency that is private")
		for _, s := range res.Series {
			fmt.Printf("  %-22s %.2f\n", s.Name, res.MedianFraction[s.Name])
		}
		if *csv {
			fmt.Print(report.SeriesCSV(res.Series))
		}
		fmt.Println()
		return nil
	})
	run("fig13", func() error {
		res, err := r.Figure13()
		if err != nil {
			return err
		}
		emit(res.WebTable)
		emit(res.DeviceTable)
		fmt.Printf("roaming eSIM: slow %.1f%%, fast %.1f%% (paper: 78.8%% / 4.5%%)\n",
			res.ESIMSlowShare*100, res.ESIMFastShare*100)
		fmt.Printf("physical SIM: slow %.1f%%, fast %.1f%% (paper: 31.9%% / 48%%)\n\n",
			res.SIMSlowShare*100, res.SIMFastShare*100)
		return nil
	})
	run("fig14a", func() error {
		res, err := r.Figure14a()
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Printf("eSIM mean download: native=%.0f ms, IHBO=%.0f ms, HR=%.0f ms (paper: ~300-500 / 1316 / 1781-3203)\n\n",
			res.MeanByArch["native"], res.MeanByArch["IHBO"], res.MeanByArch["HR"])
		return nil
	})
	run("fig14b", func() error {
		res, err := r.Figure14b()
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Printf("IHBO lookups answered in PGW country: %.0f%% (paper: 74%%)\n\n",
			res.GoogleResolverShareSameCountry*100)
		return nil
	})
	run("fig15", func() error { t, err := r.Figure15(); emitIf(err, t, emit); return err })
	run("fig16", func() error { t, err := r.Figure16(); emitIf(err, t, emit); return err })
	run("fig17", func() error {
		res, err := r.Figure17()
		if err != nil {
			return err
		}
		emit(res.Table)
		return nil
	})
	run("fig18", func() error { t, err := r.Figure18(); emitIf(err, t, emit); return err })
	run("fig19", func() error { t, err := r.Figure19(); emitIf(err, t, emit); return err })
	run("fig20", func() error {
		tabs, err := r.Figure20()
		if err != nil {
			return err
		}
		for _, t := range tabs {
			emit(t)
		}
		return nil
	})
	run("validation", func() error { t, err := r.Validation(); emitIf(err, t, emit); return err })
	run("ablation-pgw", func() error { t, err := r.AblationPGWSelection(); emitIf(err, t, emit); return err })
	run("ablation-policy", func() error { t, err := r.AblationPolicyCaps(); emitIf(err, t, emit); return err })
	run("ablation-peering", func() error { t, err := r.AblationPeering(); emitIf(err, t, emit); return err })
	run("ablation-lbo", func() error { t, err := r.AblationLBO(); emitIf(err, t, emit); return err })
	run("voip", func() error { t, err := r.FutureVoIP(); emitIf(err, t, emit); return err })
	run("jurisdiction", func() error { t, err := r.DiscussionJurisdiction(); emitIf(err, t, emit); return err })
	run("confounders", func() error { t, err := r.Confounders(); emitIf(err, t, emit); return err })
	run("signaling", func() error { t, err := r.SignalingBreakdown(); emitIf(err, t, emit); return err })

	if len(wanted) > 0 {
		unknown := make([]string, 0, len(wanted))
		for name := range wanted {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		fatal(fmt.Errorf("unknown experiment(s): %s (see -h for the list)", strings.Join(unknown, ", ")))
	}
}

func emitIf(err error, t *report.Table, emit func(*report.Table)) {
	if err == nil {
		emit(t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roam-experiments:", err)
	os.Exit(1)
}
