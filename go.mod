module roamsim

go 1.22
