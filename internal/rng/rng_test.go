package rng

import (
	"math"
	"sort"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d identical draws of 100", same)
	}
}

func TestForkDeterministicAndIndependent(t *testing.T) {
	// Same parent seed + same label = same child stream.
	c1 := New(7).Fork("pakistan/esim")
	c2 := New(7).Fork("pakistan/esim")
	for i := 0; i < 100; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatalf("forked streams with same label diverged at %d", i)
		}
	}
	// Different labels give different streams.
	d1 := New(7).Fork("a")
	d2 := New(7).Fork("b")
	same := 0
	for i := 0; i < 100; i++ {
		if d1.Float64() == d2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("differently-labeled forks produced %d identical draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform(5,9) = %f out of range", v)
		}
	}
}

func TestIntBetweenInclusive(t *testing.T) {
	s := New(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntBetween(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntBetween(3,6) = %d", v)
		}
		seen[v] = true
	}
	for want := 3; want <= 6; want++ {
		if !seen[want] {
			t.Errorf("IntBetween never produced %d", want)
		}
	}
	if got := s.IntBetween(5, 5); got != 5 {
		t.Errorf("IntBetween(5,5) = %d", got)
	}
	if v := s.IntBetween(9, 7); v < 7 || v > 9 {
		t.Errorf("IntBetween with swapped bounds = %d", v)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(5)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %f, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("Normal variance = %f, want ~4", variance)
	}
}

func TestPositiveNormalFloor(t *testing.T) {
	s := New(6)
	for i := 0; i < 10000; i++ {
		if v := s.PositiveNormal(5, 10); v < 0.5-1e-12 {
			t.Fatalf("PositiveNormal below floor: %f", v)
		}
	}
	if v := s.PositiveNormal(0, 1); v <= 0 {
		t.Errorf("PositiveNormal(0,1) = %f, want > 0", v)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(7)
	const n = 20001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormalMeanMedian(30, 0.5)
	}
	sort.Float64s(vals)
	med := vals[n/2]
	if med < 27 || med > 33 {
		t.Errorf("lognormal median = %f, want ~30", med)
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatal("lognormal produced non-positive value")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(8)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(0.5) // mean 2
	}
	if mean := sum / n; math.Abs(mean-2) > 0.1 {
		t.Errorf("Exponential(0.5) mean = %f, want ~2", mean)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(9)
	const n = 20000
	over := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 2)
		if v < 1 {
			t.Fatalf("Pareto below scale: %f", v)
		}
		if v > 3 {
			over++
		}
	}
	// P(X > 3) = (1/3)^2 ≈ 0.111 for alpha=2, xm=1.
	frac := float64(over) / n
	if frac < 0.08 || frac > 0.15 {
		t.Errorf("Pareto tail fraction = %f, want ~0.111", frac)
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(10)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[s.WeightedIndex([]float64{1, 2, 7})]++
	}
	if f := float64(counts[2]) / 30000; f < 0.65 || f > 0.75 {
		t.Errorf("weight-7 option frequency = %f, want ~0.7", f)
	}
	if f := float64(counts[0]) / 30000; f < 0.07 || f > 0.13 {
		t.Errorf("weight-1 option frequency = %f, want ~0.1", f)
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	s := New(11)
	for _, weights := range [][]float64{{}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedIndex(%v) should panic", weights)
				}
			}()
			s.WeightedIndex(weights)
		}()
	}
}

func TestPickAndShuffle(t *testing.T) {
	s := New(12)
	items := []string{"a", "b", "c", "d"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[Pick(s, items)] = true
	}
	if len(seen) != 4 {
		t.Errorf("Pick visited %d of 4 items", len(seen))
	}
	orig := append([]string(nil), items...)
	Shuffle(s, items)
	if len(items) != 4 {
		t.Fatal("shuffle changed length")
	}
	elem := map[string]int{}
	for _, v := range items {
		elem[v]++
	}
	for _, v := range orig {
		if elem[v] != 1 {
			t.Fatalf("shuffle lost element %s", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) = %f", v)
		}
	}
}

func TestForkSeedMatchesFork(t *testing.T) {
	// New(ForkSeed(label)) must reproduce Fork(label) exactly — the
	// replay path (crashed MEs restarting from a stored seed) depends
	// on it — and both must consume exactly one parent draw.
	a, b := New(99), New(99)
	seed := a.ForkSeed("me-PAK")
	forked := b.Fork("me-PAK")
	replayed := New(seed)
	for i := 0; i < 100; i++ {
		if forked.Float64() != replayed.Float64() {
			t.Fatalf("replayed stream diverged at draw %d", i)
		}
	}
	// Parents stayed in lockstep (same number of draws consumed).
	if a.Float64() != b.Float64() {
		t.Error("ForkSeed and Fork consumed different parent draws")
	}
}

func TestStreamIsStatelessAndLabeled(t *testing.T) {
	// Same (seed, label) — same stream, regardless of what else was
	// derived in between.
	x := Stream(7, "chaos/me-PAK/0")
	_ = Stream(7, "something/else")
	y := Stream(7, "chaos/me-PAK/0")
	for i := 0; i < 50; i++ {
		if x.Float64() != y.Float64() {
			t.Fatalf("Stream not deterministic at draw %d", i)
		}
	}
	// Different labels and different seeds diverge.
	if Stream(7, "a").Float64() == Stream(7, "b").Float64() &&
		Stream(7, "a").Float64() == Stream(8, "a").Float64() {
		t.Error("Stream streams are not independent")
	}
}
