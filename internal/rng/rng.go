// Package rng provides deterministic random number generation for the
// simulator. Every stochastic element in the reproduction (jitter, load,
// cache misses, plan prices, ...) draws from an rng.Source seeded from the
// experiment seed, so a given seed regenerates every table and figure
// bit-for-bit.
//
// Sources can be forked by label: Fork("pakistan/esim/traceroute") yields
// an independent stream whose values do not shift when unrelated parts of
// the simulation add or remove draws. This "named stream" discipline is
// what keeps figures stable as the codebase evolves.
//
// # Concurrency: pre-fork, then spawn
//
// A Source is NOT safe for concurrent use, and Fork itself consumes one
// draw from the parent, so the fork ORDER is part of the deterministic
// contract. Parallel code must therefore fork every worker's stream
// serially, in a canonical order, BEFORE spawning any goroutine, then
// hand exactly one child to each goroutine:
//
//	srcs := parent.ForkN("campaign", len(units)) // serial, canonical order
//	for i := range units {
//	    go func(i int) { units[i].Run(srcs[i]) }(i)
//	}
//
// Because each unit's stream is fixed before any goroutine starts, the
// results are independent of scheduling and of GOMAXPROCS. This is the
// scheme the parallel campaign engine in internal/experiments uses (with
// descriptive per-unit labels instead of ForkN indices).
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
)

// Source is a deterministic random stream with distribution helpers.
// It is NOT safe for concurrent use; fork one Source per goroutine.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent, deterministic child stream identified by
// label. Forking consumes one draw from the parent, so the order of Fork
// calls matters: fork serially in a canonical order before handing
// children to goroutines (see the package doc).
func (s *Source) Fork(label string) *Source {
	return New(s.ForkSeed(label))
}

// ForkSeed consumes one parent draw and returns the seed Fork(label)
// would have built its child from: New(ForkSeed(label)) is exactly
// Fork(label). Callers that may need to recreate a child stream later —
// e.g. to replay a crashed measurement endpoint from the top — store the
// seed instead of the (non-copyable) Source.
func (s *Source) ForkSeed(label string) int64 {
	return labelHash(label) ^ s.r.Int63()
}

// Stream derives a deterministic Source from (seed, label) without any
// parent state: the same pair always yields the same stream, and calls
// are independent of each other, so Stream is safe to invoke from any
// goroutine at any time. This is the out-of-band escape hatch for
// randomness that must not perturb the forked measurement streams —
// fault-injection schedules and retry jitter draw from Stream so that a
// chaos run and a clean run consume identical draws from every Fork'd
// stream.
func Stream(seed int64, label string) *Source {
	return New(labelHash(label) ^ seed)
}

func labelHash(label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// ForkN pre-forks n children labeled "label/0" … "label/n-1" in one
// deterministic pass. It is the worker-pool helper: call it before
// spawning goroutines and give child i to worker i, so parallel results
// are independent of scheduling and GOMAXPROCS.
func (s *Source) ForkN(label string, n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Fork(label + "/" + strconv.Itoa(i))
	}
	return out
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// IntBetween returns a uniform int in [lo, hi] inclusive.
func (s *Source) IntBetween(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Normal returns a draw from N(mean, stddev²).
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// PositiveNormal returns a draw from N(mean, stddev²) truncated at a small
// positive floor; it is the workhorse for latencies and throughputs that
// must never be negative.
func (s *Source) PositiveNormal(mean, stddev float64) float64 {
	v := s.Normal(mean, stddev)
	floor := mean / 10
	if floor <= 0 {
		floor = 1e-6
	}
	if v < floor {
		return floor
	}
	return v
}

// LogNormal returns a draw whose logarithm is N(mu, sigma²).
// Heavy-tailed quantities (web object sizes, session volumes, RTT spikes)
// use this.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMeanMedian parameterizes a lognormal by its median m and a
// shape sigma, which is how the traffic models in the paper reproduction
// are calibrated (medians are what the figures report).
func (s *Source) LogNormalMeanMedian(median, sigma float64) float64 {
	if median <= 0 {
		return 0
	}
	return s.LogNormal(math.Log(median), sigma)
}

// Exponential returns a draw from Exp(rate). Mean is 1/rate.
func (s *Source) Exponential(rate float64) float64 {
	return s.r.ExpFloat64() / rate
}

// Pareto returns a draw from a Pareto distribution with scale xm and
// shape alpha. Used for heavy-tailed per-user traffic volumes.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// WeightedIndex returns an index into weights with probability
// proportional to weights[i]. It panics on an empty or all-zero slice.
func (s *Source) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("rng: all weights zero")
	}
	target := s.r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Pick returns a uniformly chosen element of items.
func Pick[T any](s *Source, items []T) T {
	return items[s.Intn(len(items))]
}

// Shuffle permutes items in place.
func Shuffle[T any](s *Source, items []T) {
	s.r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Jitter returns v multiplied by a factor uniform in [1-frac, 1+frac].
// It is the standard way the simulator perturbs deterministic baselines.
func (s *Source) Jitter(v, frac float64) float64 {
	return v * s.Uniform(1-frac, 1+frac)
}
