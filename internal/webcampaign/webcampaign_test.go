package webcampaign

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"roamsim/internal/airalo"
	"roamsim/internal/rng"
)

var sharedWorld *airalo.World

func world(t *testing.T) *airalo.World {
	t.Helper()
	if sharedWorld == nil {
		w, err := airalo.Build(31)
		if err != nil {
			t.Fatal(err)
		}
		sharedWorld = w
	}
	return sharedWorld
}

func TestVerifySettings(t *testing.T) {
	good := Screenshot{Kind: "settings", Transport: "cellular", APN: "internet.airalo"}
	if err := VerifySettings(good, "airalo"); err != nil {
		t.Errorf("good screenshot rejected: %v", err)
	}
	bad := []Screenshot{
		{Kind: "speedtest"},
		{Kind: "settings", Transport: "wifi", APN: "internet.airalo"},
		{Kind: "settings", Transport: "cellular", APN: "internet"},
	}
	for i, sc := range bad {
		if err := VerifySettings(sc, "airalo"); err == nil {
			t.Errorf("bad screenshot %d accepted", i)
		}
	}
}

func TestVerifySpeedtest(t *testing.T) {
	if _, _, err := VerifySpeedtest(Screenshot{Kind: "speedtest", DownMbps: 20, LatencyMs: 50}); err != nil {
		t.Errorf("good result rejected: %v", err)
	}
	if _, _, err := VerifySpeedtest(Screenshot{Kind: "speedtest"}); err == nil {
		t.Error("empty result accepted")
	}
	if _, _, err := VerifySpeedtest(Screenshot{Kind: "settings"}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestFullVolunteerFlow(t *testing.T) {
	w := world(t)
	srv := NewServer("airalo")
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	src := rng.New(2)
	for _, iso := range []string{"FRA", "PAK", "UZB"} {
		v := &Volunteer{
			Name: "vol-" + iso, BaseURL: hs.URL,
			Dep: w.Deployments[iso], Src: src.Fork(iso),
		}
		for i := 0; i < 3; i++ {
			if err := v.RunMeasurement(); err != nil {
				t.Fatalf("%s measurement %d: %v", iso, i, err)
			}
		}
	}
	byCountry := srv.CompletedByCountry()
	for _, iso := range []string{"FRA", "PAK", "UZB"} {
		if byCountry[iso] != 3 {
			t.Errorf("%s completed = %d, want 3", iso, byCountry[iso])
		}
	}
	// Completed measurements carry usable data.
	for _, m := range srv.Completed() {
		if m.DownMbps <= 0 || m.LatencyMs <= 0 || m.PublicIP == "" || m.Resolver == "" {
			t.Errorf("incomplete measurement recorded: %+v", m)
		}
	}
}

func TestWiFiScreenshotRejected(t *testing.T) {
	w := world(t)
	srv := NewServer("airalo")
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	v := &Volunteer{
		Name: "wifi-vol", BaseURL: hs.URL,
		Dep: w.Deployments["ITA"], Src: rng.New(3), OnWiFi: true,
	}
	if err := v.RunMeasurement(); err == nil {
		t.Fatal("Wi-Fi measurement should be rejected")
	}
	if len(srv.Completed()) != 0 {
		t.Error("rejected measurement must not count")
	}
}

func TestStepsOutOfOrderRejected(t *testing.T) {
	srv := NewServer("airalo")
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	// DNS upload without a verified screenshot.
	resp, err := hs.Client().Post(hs.URL+"/v1/dns", "application/json",
		jsonBody(`{"volunteer":"x","resolver":"8.8.8.8","resolver_cc":"USA","public_ip":"1.2.3.4"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Errorf("out-of-order dns: HTTP %d, want 409", resp.StatusCode)
	}
	// Speedtest without earlier steps.
	resp, err = hs.Client().Post(hs.URL+"/v1/speedtest", "application/json",
		jsonBody(`{"volunteer":"x","screenshot":{"kind":"speedtest","down_mbps":10,"latency_ms":40}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Errorf("out-of-order speedtest: HTTP %d, want 409", resp.StatusCode)
	}
}

func TestFastcomUsesBreakoutLocation(t *testing.T) {
	// France's eSIM breaks out in Virginia: fast.com latency must look
	// transatlantic even though the user is in Paris.
	w := world(t)
	src := rng.New(4)
	s, err := w.Deployments["FRA"].AttachESIM(src)
	if err != nil {
		t.Fatal(err)
	}
	_, lat, err := fastcom(s, src)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 60 {
		t.Errorf("FRA eSIM fast.com latency = %.0f ms, should reflect the Virginia breakout", lat)
	}
}

func jsonBody(s string) io.Reader { return strings.NewReader(s) }
