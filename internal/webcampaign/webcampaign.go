// Package webcampaign reimplements the web-based measurement campaign of
// Section 3.1: traveling volunteers open the study webpage, upload a
// screenshot of their network settings (verified by a vision model in
// the paper; by a deterministic parser here), report their DNS
// configuration, run a fast.com-style speedtest in an iframe, and upload
// the result screenshot.
//
// The collection server is real net/http; volunteers are simulated
// clients driving sessions of the airalo world.
package webcampaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"roamsim/internal/airalo"
	"roamsim/internal/measure"
	"roamsim/internal/netsim"
	"roamsim/internal/rng"
)

// Screenshot is the structured stand-in for an uploaded image: the
// fields a vision model would extract from a settings or results screen.
type Screenshot struct {
	Kind string `json:"kind"` // "settings" or "speedtest"
	// Settings screen fields.
	NetworkName string `json:"network_name,omitempty"` // carrier displayed
	APN         string `json:"apn,omitempty"`
	Transport   string `json:"transport,omitempty"` // "cellular" or "wifi"
	// Speedtest result fields.
	DownMbps  float64 `json:"down_mbps,omitempty"`
	LatencyMs float64 `json:"latency_ms,omitempty"`
}

// VerifySettings is the ChatGPT-vision substitute: it accepts the
// screenshot only if the device is on cellular via the provided Airalo
// eSIM (not Wi-Fi, not another carrier).
func VerifySettings(sc Screenshot, wantAPNContains string) error {
	if sc.Kind != "settings" {
		return fmt.Errorf("webcampaign: expected a settings screenshot, got %q", sc.Kind)
	}
	if sc.Transport != "cellular" {
		return fmt.Errorf("webcampaign: device is on %s, not cellular", sc.Transport)
	}
	if !strings.Contains(sc.APN, wantAPNContains) {
		return fmt.Errorf("webcampaign: APN %q is not the study eSIM", sc.APN)
	}
	return nil
}

// VerifySpeedtest extracts the numbers from a results screenshot.
func VerifySpeedtest(sc Screenshot) (down, latency float64, err error) {
	if sc.Kind != "speedtest" {
		return 0, 0, fmt.Errorf("webcampaign: expected a speedtest screenshot")
	}
	if sc.DownMbps <= 0 || sc.LatencyMs <= 0 {
		return 0, 0, fmt.Errorf("webcampaign: unreadable speedtest screenshot")
	}
	return sc.DownMbps, sc.LatencyMs, nil
}

// Measurement is one completed web measurement (the Table 3 unit): a
// verified settings screenshot, the DNS configuration, and a speedtest.
type Measurement struct {
	Country    string  `json:"country"`
	Volunteer  string  `json:"volunteer"`
	PublicIP   string  `json:"public_ip"`
	Resolver   string  `json:"resolver"`
	ResolverCC string  `json:"resolver_cc"`
	DownMbps   float64 `json:"down_mbps"`
	LatencyMs  float64 `json:"latency_ms"`
}

// Server collects campaign uploads.
type Server struct {
	mu       sync.Mutex
	complete []Measurement
	partial  map[string]*Measurement // volunteer -> in-flight measurement
	apnToken string
}

// NewServer returns a collection server that accepts eSIMs whose APN
// contains apnToken ("airalo" for the study profiles).
func NewServer(apnToken string) *Server {
	return &Server{partial: map[string]*Measurement{}, apnToken: apnToken}
}

// Completed returns all fully completed measurements.
func (s *Server) Completed() []Measurement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Measurement(nil), s.complete...)
}

// CompletedByCountry returns completed-measurement counts per country.
func (s *Server) CompletedByCountry() map[string]int {
	out := map[string]int{}
	for _, m := range s.Completed() {
		out[m.Country]++
	}
	return out
}

// Handler exposes the campaign webpage's API:
//
//	POST /v1/screenshot  {volunteer, country, screenshot}
//	POST /v1/dns         {volunteer, resolver, resolver_cc, public_ip}
//	POST /v1/speedtest   {volunteer, screenshot}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/screenshot", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Volunteer  string     `json:"volunteer"`
			Country    string     `json:"country"`
			Screenshot Screenshot `json:"screenshot"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad upload", http.StatusBadRequest)
			return
		}
		if err := VerifySettings(req.Screenshot, s.apnToken); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		s.mu.Lock()
		s.partial[req.Volunteer] = &Measurement{Country: req.Country, Volunteer: req.Volunteer}
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/dns", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Volunteer  string `json:"volunteer"`
			Resolver   string `json:"resolver"`
			ResolverCC string `json:"resolver_cc"`
			PublicIP   string `json:"public_ip"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad upload", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		m, ok := s.partial[req.Volunteer]
		if !ok {
			http.Error(w, "screenshot not verified yet", http.StatusConflict)
			return
		}
		m.Resolver, m.ResolverCC, m.PublicIP = req.Resolver, req.ResolverCC, req.PublicIP
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/speedtest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Volunteer  string     `json:"volunteer"`
			Screenshot Screenshot `json:"screenshot"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad upload", http.StatusBadRequest)
			return
		}
		down, lat, err := VerifySpeedtest(req.Screenshot)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		m, ok := s.partial[req.Volunteer]
		if !ok || m.Resolver == "" {
			http.Error(w, "earlier steps incomplete", http.StatusConflict)
			return
		}
		m.DownMbps, m.LatencyMs = down, lat
		s.complete = append(s.complete, *m)
		delete(s.partial, req.Volunteer)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// Volunteer drives the webpage flow for one traveler.
type Volunteer struct {
	Name    string
	BaseURL string
	Client  *http.Client
	Dep     *airalo.Deployment
	Src     *rng.Source
	// OnWiFi simulates a volunteer who forgot to disable Wi-Fi; their
	// settings screenshot is rejected and the measurement doesn't count.
	OnWiFi bool
}

// RunMeasurement performs one complete webpage visit. It returns an
// error when any step is rejected (those visits are the gap between
// attempted and completed measurements in Table 3).
func (v *Volunteer) RunMeasurement() error {
	client := v.Client
	if client == nil {
		client = http.DefaultClient
	}
	session, err := v.Dep.AttachESIM(v.Src)
	if err != nil {
		return err
	}
	transport := "cellular"
	if v.OnWiFi {
		transport = "wifi"
	}
	if err := v.post(client, "/v1/screenshot", map[string]any{
		"volunteer": v.Name, "country": v.Dep.Country.ISO3,
		"screenshot": Screenshot{
			Kind: "settings", NetworkName: v.Dep.VMNO.Name,
			APN: session.Profile.APN, Transport: transport,
		},
	}); err != nil {
		return err
	}
	dns, err := measure.DNSLookup(session, v.Src)
	if err != nil {
		return err
	}
	if err := v.post(client, "/v1/dns", map[string]any{
		"volunteer": v.Name, "resolver": dns.Resolver.Addr.String(),
		"resolver_cc": dns.Resolver.Country, "public_ip": session.PublicIP.String(),
	}); err != nil {
		return err
	}
	down, lat, err := fastcom(session, v.Src)
	if err != nil {
		return err
	}
	return v.post(client, "/v1/speedtest", map[string]any{
		"volunteer": v.Name,
		"screenshot": Screenshot{
			Kind: "speedtest", DownMbps: down, LatencyMs: lat,
		},
	})
}

// fastcom measures downlink to the nearest Netflix edge (what the
// fast.com iframe reports).
func fastcom(s *airalo.Session, src *rng.Source) (downMbps, latencyMs float64, err error) {
	w := s.World()
	netflix, ok := w.SPs["Netflix"]
	if !ok {
		return 0, 0, fmt.Errorf("webcampaign: world has no Netflix deployment")
	}
	edge, err := netflix.NearestEdge(s.Site.Loc)
	if err != nil {
		return 0, 0, err
	}
	path, err := s.PathTo(edge.Server)
	if err != nil {
		return 0, 0, err
	}
	res := func() netsim.SpeedtestResult {
		return w.Net.Speedtest(path, s.DownCapMbps, s.UpCapMbps, src)
	}()
	return res.DownloadMbps, res.LatencyMs, nil
}

func (v *Volunteer) post(client *http.Client, path string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(v.BaseURL+path, "application/json", strings.NewReader(string(buf)))
	if err != nil {
		return err
	}
	// Drain (bounded) before closing so the volunteer's connection goes
	// back to the keep-alive pool instead of being torn down.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256<<10))
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("webcampaign: %s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}
