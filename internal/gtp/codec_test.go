package gtp

import (
	"bytes"
	"testing"
	"testing/quick"

	"roamsim/internal/ipaddr"
)

func TestGTPv1URoundTrip(t *testing.T) {
	cases := []*GTPv1U{
		{MsgType: MsgTypeGPDU, TEID: 1, Payload: []byte("hello")},
		{MsgType: MsgTypeGPDU, TEID: 0xFFFFFFFF, HasSeq: true, Seq: 4711, Payload: []byte{1, 2, 3}},
		{MsgType: 0x01, TEID: 7, HasNPDU: true, NPDU: 9},
		{MsgType: MsgTypeGPDU, TEID: 42, HasSeq: true, HasNPDU: true, Seq: 1, NPDU: 2},
	}
	for i, g := range cases {
		b := g.Marshal()
		got, err := UnmarshalGTPv1U(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.TEID != g.TEID || got.MsgType != g.MsgType || got.Seq != g.Seq ||
			got.NPDU != g.NPDU || !bytes.Equal(got.Payload, g.Payload) {
			t.Errorf("case %d round trip mismatch: %+v vs %+v", i, got, g)
		}
	}
}

func TestGTPv1URoundTripProperty(t *testing.T) {
	f := func(teid uint32, seq uint16, payload []byte) bool {
		g := &GTPv1U{MsgType: MsgTypeGPDU, TEID: TEID(teid), HasSeq: true, Seq: seq, Payload: payload}
		got, err := UnmarshalGTPv1U(g.Marshal())
		return err == nil && got.TEID == g.TEID && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGTPv1UDecodeErrors(t *testing.T) {
	good := (&GTPv1U{MsgType: MsgTypeGPDU, TEID: 5, Payload: []byte("x")}).Marshal()
	cases := map[string][]byte{
		"short":     good[:4],
		"version 2": append([]byte{0x50}, good[1:]...),
		"GTP-prime": append([]byte{0x20}, good[1:]...),
		"truncated": good[:len(good)-1],
	}
	// Fix up lengths where needed: "truncated" keeps the stated length.
	for name, b := range cases {
		if _, err := UnmarshalGTPv1U(b); err == nil {
			t.Errorf("%s should fail to decode", name)
		}
	}
	// Extension headers are declared unsupported, not silently skipped.
	ext := &GTPv1U{MsgType: MsgTypeGPDU, TEID: 1, HasExt: true, NextExt: 0x85}
	if _, err := UnmarshalGTPv1U(ext.Marshal()); err == nil {
		t.Error("extension header should be rejected explicitly")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := &IPv4Header{
		TTL: 64, Protocol: ProtoUDP,
		Src: ipaddr.MustParse("10.20.30.40"), Dst: ipaddr.MustParse("202.166.126.4"),
		Payload: []byte("payload bytes"),
	}
	b := h.Marshal()
	got, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != 64 || !bytes.Equal(got.Payload, h.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// Corrupting any header byte must break the checksum.
	for i := 0; i < 20; i++ {
		c := append([]byte(nil), b...)
		c[i] ^= 0x40
		if _, err := UnmarshalIPv4(c); err == nil && i != 8 && i != 0 {
			// TTL changes break the checksum too; version nibble gives a
			// different error. Any silent acceptance is a bug.
			t.Errorf("corrupt byte %d accepted", i)
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDPHeader{Src: GTPUPort, Dst: GTPUPort, Payload: []byte{9, 8, 7}}
	got, err := UnmarshalUDP(u.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != GTPUPort || got.Dst != GTPUPort || !bytes.Equal(got.Payload, u.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := UnmarshalUDP([]byte{1, 2, 3}); err == nil {
		t.Error("short datagram should fail")
	}
	bad := u.Marshal()
	bad[5] = 200 // length > actual
	if _, err := UnmarshalUDP(bad[:10]); err == nil {
		t.Error("overlong declared length should fail")
	}
}

func TestTunnelEncapsulateDecapsulate(t *testing.T) {
	n, sgw, pgw := testNet(t)
	m := NewManager(n)
	tun, err := m.Create(sgw, pgw)
	if err != nil {
		t.Fatal(err)
	}
	sgwAddr := ipaddr.MustParse("10.1.1.1")
	pgwAddr := ipaddr.MustParse("202.166.126.4")
	inner := []byte("user IP packet bytes")
	wire := tun.Encapsulate(sgwAddr, pgwAddr, inner, 77)

	// The wire format is parseable layer by layer.
	ip, err := UnmarshalIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != sgwAddr || ip.Dst != pgwAddr {
		t.Errorf("outer addresses wrong: %s -> %s", ip.Src, ip.Dst)
	}
	udp, err := UnmarshalUDP(ip.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if udp.Dst != GTPUPort {
		t.Errorf("UDP dst = %d", udp.Dst)
	}
	g, err := UnmarshalGTPv1U(udp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if g.TEID != tun.TEID || g.Seq != 77 {
		t.Errorf("GTP header: %+v", g)
	}

	// And the tunnel decapsulates its own packets.
	out, err := tun.Decapsulate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, inner) {
		t.Error("inner payload corrupted")
	}

	// A packet for a different TEID is rejected.
	other, err := m.Create(sgw, pgw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Decapsulate(wire); err == nil {
		t.Error("wrong-TEID packet should be rejected")
	}
}

func TestDecapsulateRejectsNonGTP(t *testing.T) {
	n, sgw, pgw := testNet(t)
	m := NewManager(n)
	tun, _ := m.Create(sgw, pgw)
	// Plain UDP on another port.
	u := &UDPHeader{Src: 1234, Dst: 53, Payload: []byte("dns")}
	ip := &IPv4Header{TTL: 64, Protocol: ProtoUDP,
		Src: ipaddr.MustParse("10.0.0.1"), Dst: ipaddr.MustParse("10.0.0.2"),
		Payload: u.Marshal()}
	if _, err := tun.Decapsulate(ip.Marshal()); err == nil {
		t.Error("non-GTP-U port should be rejected")
	}
	// Non-UDP protocol.
	ip.Protocol = 6
	if _, err := tun.Decapsulate(ip.Marshal()); err == nil {
		t.Error("TCP outer should be rejected")
	}
	// Garbage.
	if _, err := tun.Decapsulate([]byte{1, 2, 3}); err == nil {
		t.Error("garbage should be rejected")
	}
}

// EffectiveMTU must agree with the real encapsulation overhead.
func TestOverheadMatchesEncapsulation(t *testing.T) {
	n, sgw, pgw := testNet(t)
	m := NewManager(n)
	tun, _ := m.Create(sgw, pgw)
	inner := make([]byte, 100)
	wire := tun.Encapsulate(ipaddr.MustParse("10.0.0.1"), ipaddr.MustParse("202.166.126.4"), inner, 0)
	overhead := len(wire) - len(inner)
	// HeaderBytes documents 36 (IP 20 + UDP 8 + GTP 8); with the
	// sequence-number block the wire carries 4 more.
	if overhead != HeaderBytes+4 {
		t.Errorf("overhead = %d, want %d (HeaderBytes + seq block)", overhead, HeaderBytes+4)
	}
}

func TestPCAPRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPCAPWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts := [][]byte{
		(&IPv4Header{TTL: 64, Protocol: ProtoUDP,
			Src: ipaddr.MustParse("10.0.0.1"), Dst: ipaddr.MustParse("10.0.0.2"),
			Payload: []byte("a")}).Marshal(),
		(&IPv4Header{TTL: 32, Protocol: ProtoUDP,
			Src: ipaddr.MustParse("202.166.126.4"), Dst: ipaddr.MustParse("10.0.0.1"),
			Payload: []byte("bb")}).Marshal(),
	}
	for i, p := range pkts {
		if err := pw.WritePacket(uint32(i), uint32(i*1000), p); err != nil {
			t.Fatal(err)
		}
	}
	if pw.Count() != 2 {
		t.Errorf("Count = %d", pw.Count())
	}
	got, err := ReadPCAP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d packets", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i].Data, pkts[i]) {
			t.Errorf("packet %d corrupted", i)
		}
		if got[i].Sec != uint32(i) || got[i].Usec != uint32(i*1000) {
			t.Errorf("packet %d timestamps wrong: %+v", i, got[i])
		}
		// Every captured packet is a parseable raw-IP frame.
		if _, err := UnmarshalIPv4(got[i].Data); err != nil {
			t.Errorf("packet %d not valid IPv4: %v", i, err)
		}
	}
}

func TestPCAPReadErrors(t *testing.T) {
	if _, err := ReadPCAP(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header should fail")
	}
	bad := make([]byte, 24)
	if _, err := ReadPCAP(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestCaptureExchange(t *testing.T) {
	n, sgw, pgw := testNet(t)
	m := NewManager(n)
	tun, _ := m.Create(sgw, pgw)
	var buf bytes.Buffer
	sgwAddr := ipaddr.MustParse("10.9.9.9")
	pgwAddr := ipaddr.MustParse("202.166.126.4")
	if err := tun.CaptureExchange(&buf, sgwAddr, pgwAddr, 10); err != nil {
		t.Fatal(err)
	}
	pkts, err := ReadPCAP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 10 {
		t.Fatalf("captured %d packets", len(pkts))
	}
	// Timestamps advance monotonically with the tunnel delay.
	for i := 1; i < len(pkts); i++ {
		t0 := float64(pkts[i-1].Sec)*1e6 + float64(pkts[i-1].Usec)
		t1 := float64(pkts[i].Sec)*1e6 + float64(pkts[i].Usec)
		if t1 <= t0 {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
	// Uplink and downlink alternate; all decapsulate against the tunnel.
	for i, rec := range pkts {
		ip, err := UnmarshalIPv4(rec.Data)
		if err != nil {
			t.Fatal(err)
		}
		wantSrc := sgwAddr
		if i%2 == 1 {
			wantSrc = pgwAddr
		}
		if ip.Src != wantSrc {
			t.Errorf("packet %d src = %s", i, ip.Src)
		}
		if _, err := tun.Decapsulate(rec.Data); err != nil {
			t.Errorf("packet %d does not decapsulate: %v", i, err)
		}
	}
}
