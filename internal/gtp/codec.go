package gtp

import (
	"encoding/binary"
	"fmt"

	"roamsim/internal/ipaddr"
)

// This file implements wire-format encoding/decoding for the GTP-U
// encapsulation stack (outer IPv4 + UDP + GTPv1-U), in the layered
// style of packet libraries: each layer serializes itself and exposes
// its payload. The simulator uses it to produce and parse byte-accurate
// tunneled packets in tests and tools; nothing in the measurement
// models depends on it, which mirrors how real IPX debugging equipment
// sits beside the data path.

// GTPUPort is the standard GTP-U UDP port.
const GTPUPort = 2152

// GTPv1U is a GTPv1-U header (TS 29.281). Optional fields (sequence
// number, N-PDU, extension headers) are included when their flags are
// set.
type GTPv1U struct {
	// Version is always 1; PT (protocol type) always 1 for GTP.
	HasSeq  bool
	HasNPDU bool
	HasExt  bool
	MsgType byte // 0xFF = G-PDU (encapsulated user packet)
	TEID    TEID
	Seq     uint16
	NPDU    byte
	NextExt byte
	Payload []byte
}

// MsgTypeGPDU is the G-PDU message type carrying user traffic.
const MsgTypeGPDU = 0xFF

// headerLen returns the encoded header length.
func (g *GTPv1U) headerLen() int {
	n := 8
	if g.HasSeq || g.HasNPDU || g.HasExt {
		n += 4 // the optional fields come as a block
	}
	return n
}

// Marshal encodes the header plus payload.
func (g *GTPv1U) Marshal() []byte {
	buf := make([]byte, g.headerLen()+len(g.Payload))
	flags := byte(1)<<5 | byte(1)<<4 // version=1, PT=1
	if g.HasExt {
		flags |= 1 << 2
	}
	if g.HasSeq {
		flags |= 1 << 1
	}
	if g.HasNPDU {
		flags |= 1
	}
	buf[0] = flags
	buf[1] = g.MsgType
	// Length covers everything after the first 8 bytes.
	binary.BigEndian.PutUint16(buf[2:4], uint16(g.headerLen()-8+len(g.Payload)))
	binary.BigEndian.PutUint32(buf[4:8], uint32(g.TEID))
	off := 8
	if g.HasSeq || g.HasNPDU || g.HasExt {
		binary.BigEndian.PutUint16(buf[8:10], g.Seq)
		buf[10] = g.NPDU
		buf[11] = g.NextExt
		off = 12
	}
	copy(buf[off:], g.Payload)
	return buf
}

// UnmarshalGTPv1U decodes a GTPv1-U packet.
func UnmarshalGTPv1U(b []byte) (*GTPv1U, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("gtp: packet too short (%d bytes)", len(b))
	}
	flags := b[0]
	if flags>>5 != 1 {
		return nil, fmt.Errorf("gtp: unsupported GTP version %d", flags>>5)
	}
	if flags&(1<<4) == 0 {
		return nil, fmt.Errorf("gtp: not GTP (PT=0 means GTP')")
	}
	g := &GTPv1U{
		HasExt:  flags&(1<<2) != 0,
		HasSeq:  flags&(1<<1) != 0,
		HasNPDU: flags&1 != 0,
		MsgType: b[1],
		TEID:    TEID(binary.BigEndian.Uint32(b[4:8])),
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if len(b) < 8+length {
		return nil, fmt.Errorf("gtp: truncated packet: header says %d, have %d", length, len(b)-8)
	}
	off := 8
	if g.HasSeq || g.HasNPDU || g.HasExt {
		if length < 4 {
			return nil, fmt.Errorf("gtp: optional flags set but length %d too small", length)
		}
		g.Seq = binary.BigEndian.Uint16(b[8:10])
		g.NPDU = b[10]
		g.NextExt = b[11]
		if g.NextExt != 0 {
			return nil, fmt.Errorf("gtp: extension headers not supported (type 0x%02x)", g.NextExt)
		}
		off = 12
	}
	g.Payload = append([]byte(nil), b[off:8+length]...)
	return g, nil
}

// IPv4Header is a minimal IPv4 header (no options).
type IPv4Header struct {
	TTL      byte
	Protocol byte // 17 = UDP
	Src, Dst ipaddr.Addr
	Payload  []byte
}

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// Marshal encodes the header with a correct checksum.
func (h *IPv4Header) Marshal() []byte {
	total := 20 + len(h.Payload)
	buf := make([]byte, total)
	buf[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	buf[8] = h.TTL
	buf[9] = h.Protocol
	binary.BigEndian.PutUint32(buf[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(buf[16:20], uint32(h.Dst))
	binary.BigEndian.PutUint16(buf[10:12], ipChecksum(buf[:20]))
	copy(buf[20:], h.Payload)
	return buf
}

// UnmarshalIPv4 decodes and validates an IPv4 packet.
func UnmarshalIPv4(b []byte) (*IPv4Header, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("gtp: IPv4 packet too short")
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("gtp: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl != 20 {
		return nil, fmt.Errorf("gtp: IPv4 options unsupported (IHL %d)", ihl)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total > len(b) || total < 20 {
		return nil, fmt.Errorf("gtp: bad IPv4 total length %d", total)
	}
	if ipChecksum(b[:20]) != 0 {
		return nil, fmt.Errorf("gtp: IPv4 checksum mismatch")
	}
	return &IPv4Header{
		TTL:      b[8],
		Protocol: b[9],
		Src:      ipaddr.Addr(binary.BigEndian.Uint32(b[12:16])),
		Dst:      ipaddr.Addr(binary.BigEndian.Uint32(b[16:20])),
		Payload:  append([]byte(nil), b[20:total]...),
	}, nil
}

// ipChecksum computes the RFC 1071 internet checksum. Over a header
// whose checksum field is zeroed it returns the value to store; over a
// full valid header it returns 0.
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

// UDPHeader is a UDP header (checksum omitted: legal over IPv4 and
// standard practice for GTP-U on many cores).
type UDPHeader struct {
	Src, Dst uint16
	Payload  []byte
}

// Marshal encodes the datagram.
func (u *UDPHeader) Marshal() []byte {
	buf := make([]byte, 8+len(u.Payload))
	binary.BigEndian.PutUint16(buf[0:2], u.Src)
	binary.BigEndian.PutUint16(buf[2:4], u.Dst)
	binary.BigEndian.PutUint16(buf[4:6], uint16(8+len(u.Payload)))
	copy(buf[8:], u.Payload)
	return buf
}

// UnmarshalUDP decodes a UDP datagram.
func UnmarshalUDP(b []byte) (*UDPHeader, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("gtp: UDP datagram too short")
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < 8 || length > len(b) {
		return nil, fmt.Errorf("gtp: bad UDP length %d", length)
	}
	return &UDPHeader{
		Src:     binary.BigEndian.Uint16(b[0:2]),
		Dst:     binary.BigEndian.Uint16(b[2:4]),
		Payload: append([]byte(nil), b[8:length]...),
	}, nil
}

// Encapsulate wraps an inner (user) packet for transport through the
// tunnel: outer IPv4 from the SGW's transport address to the PGW's,
// UDP on port 2152, GTP-U G-PDU with the tunnel's TEID.
func (t *Tunnel) Encapsulate(sgwAddr, pgwAddr ipaddr.Addr, inner []byte, seq uint16) []byte {
	g := &GTPv1U{HasSeq: true, MsgType: MsgTypeGPDU, TEID: t.TEID, Seq: seq, Payload: inner}
	u := &UDPHeader{Src: GTPUPort, Dst: GTPUPort, Payload: g.Marshal()}
	ip := &IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: sgwAddr, Dst: pgwAddr, Payload: u.Marshal()}
	return ip.Marshal()
}

// Decapsulate parses an encapsulated packet and returns the inner
// payload, verifying the TEID matches this tunnel.
func (t *Tunnel) Decapsulate(b []byte) ([]byte, error) {
	ip, err := UnmarshalIPv4(b)
	if err != nil {
		return nil, err
	}
	if ip.Protocol != ProtoUDP {
		return nil, fmt.Errorf("gtp: outer protocol %d is not UDP", ip.Protocol)
	}
	u, err := UnmarshalUDP(ip.Payload)
	if err != nil {
		return nil, err
	}
	if u.Dst != GTPUPort {
		return nil, fmt.Errorf("gtp: UDP port %d is not GTP-U", u.Dst)
	}
	g, err := UnmarshalGTPv1U(u.Payload)
	if err != nil {
		return nil, err
	}
	if g.MsgType != MsgTypeGPDU {
		return nil, fmt.Errorf("gtp: message type 0x%02x is not G-PDU", g.MsgType)
	}
	if g.TEID != t.TEID {
		return nil, fmt.Errorf("gtp: TEID %d does not match tunnel %d", g.TEID, t.TEID)
	}
	return g.Payload, nil
}
