// Package gtp models GPRS Tunneling Protocol (GTP-U) tunnels: the
// encapsulated data path between a visited network's SGW and the PGW
// where a roaming session breaks out. Tunnel length is the paper's main
// explanatory variable for roaming latency ("the private path ... is the
// primary source of inflated latency"), so tunnels track the underlying
// netsim path and expose its delay and geographic span.
package gtp

import (
	"fmt"
	"sync"

	"roamsim/internal/geo"
	"roamsim/internal/netsim"
)

// TEID is a tunnel endpoint identifier.
type TEID uint32

// Overhead constants for GTP-U encapsulation over IPv4/UDP.
const (
	// HeaderBytes is outer IPv4 (20) + UDP (8) + GTP-U (8).
	HeaderBytes = 36
	// DefaultMTU is the usual transport MTU.
	DefaultMTU = 1500
)

// EffectiveMTU returns the payload MTU inside a GTP-U tunnel.
func EffectiveMTU(transportMTU int) int {
	m := transportMTU - HeaderBytes
	if m < 0 {
		return 0
	}
	return m
}

// Tunnel is an established GTP-U tunnel.
type Tunnel struct {
	TEID TEID
	SGW  netsim.NodeID
	PGW  netsim.NodeID
	// Path is the routed path through the IPX/backbone segment.
	Path *netsim.Path
}

// OneWayDelayMs returns the tunnel's baseline one-way delay.
func (t *Tunnel) OneWayDelayMs() float64 { return t.Path.BaseOneWayMs() }

// SpanKm returns the great-circle distance between the tunnel endpoints,
// the quantity plotted as lines in Figures 3 and 4.
func (t *Tunnel) SpanKm() float64 {
	n := len(t.Path.Nodes)
	if n < 2 {
		return 0
	}
	return geo.DistanceKm(t.Path.Nodes[0].Loc, t.Path.Nodes[n-1].Loc)
}

// Manager creates and tracks tunnels over a network.
// It is safe for concurrent use.
type Manager struct {
	net *netsim.Network

	mu     sync.Mutex
	next   TEID
	active map[TEID]*Tunnel
}

// NewManager returns a Manager over the given network.
func NewManager(n *netsim.Network) *Manager {
	return &Manager{net: n, next: 1, active: make(map[TEID]*Tunnel)}
}

// Create establishes a tunnel from sgw to pgw, routing through the
// network. It fails if no path exists or if either endpoint has the
// wrong node kind.
func (m *Manager) Create(sgw, pgw netsim.NodeID) (*Tunnel, error) {
	if k := m.net.Node(sgw).Kind; k != netsim.KindSGW {
		return nil, fmt.Errorf("gtp: node %d is %s, not an SGW", sgw, k)
	}
	if k := m.net.Node(pgw).Kind; k != netsim.KindPGW {
		return nil, fmt.Errorf("gtp: node %d is %s, not a PGW", pgw, k)
	}
	path, err := m.net.Route(sgw, pgw)
	if err != nil {
		return nil, fmt.Errorf("gtp: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Tunnel{TEID: m.next, SGW: sgw, PGW: pgw, Path: path}
	m.next++
	m.active[t.TEID] = t
	return t, nil
}

// Teardown removes a tunnel. Tearing down an unknown TEID is an error:
// it means session bookkeeping has gone wrong.
func (m *Manager) Teardown(id TEID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.active[id]; !ok {
		return fmt.Errorf("gtp: unknown TEID %d", id)
	}
	delete(m.active, id)
	return nil
}

// Lookup returns an active tunnel by TEID.
func (m *Manager) Lookup(id TEID) (*Tunnel, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.active[id]
	return t, ok
}

// ActiveCount returns the number of live tunnels.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
