package gtp

import (
	"encoding/binary"
	"fmt"
	"io"

	"roamsim/internal/ipaddr"
)

// PCAP writing and reading for captured tunnel traffic (classic libpcap
// format, LINKTYPE_RAW: packets start at the IPv4 header). Captures of
// simulated GTP-U exchanges open directly in standard analysis tools,
// which is how the paper-style demarcation claims can be spot-checked
// packet by packet.

const (
	pcapMagic   = 0xA1B2C3D4
	pcapVMajor  = 2
	pcapVMinor  = 4
	linktypeRaw = 101 // LINKTYPE_RAW: raw IP
	maxSnapLen  = 65535
)

// PCAPWriter streams packets into a pcap file.
type PCAPWriter struct {
	w     io.Writer
	count int
}

// NewPCAPWriter writes the global header and returns a writer.
func NewPCAPWriter(w io.Writer) (*PCAPWriter, error) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVMinor)
	// thiszone, sigfigs: 0.
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linktypeRaw)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("gtp: pcap header: %w", err)
	}
	return &PCAPWriter{w: w}, nil
}

// WritePacket appends one raw-IP packet with the given timestamp
// (seconds and microseconds since the epoch — the caller supplies
// simulated time).
func (p *PCAPWriter) WritePacket(sec uint32, usec uint32, pkt []byte) error {
	if len(pkt) > maxSnapLen {
		return fmt.Errorf("gtp: packet of %d bytes exceeds snap length", len(pkt))
	}
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], sec)
	binary.LittleEndian.PutUint32(rec[4:8], usec)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(pkt)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(pkt)))
	if _, err := p.w.Write(rec); err != nil {
		return err
	}
	if _, err := p.w.Write(pkt); err != nil {
		return err
	}
	p.count++
	return nil
}

// Count returns the number of packets written.
func (p *PCAPWriter) Count() int { return p.count }

// PCAPPacket is one record read back from a capture.
type PCAPPacket struct {
	Sec, Usec uint32
	Data      []byte
}

// ReadPCAP parses a classic pcap stream written by PCAPWriter (or any
// little-endian LINKTYPE_RAW capture).
func ReadPCAP(r io.Reader) ([]PCAPPacket, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("gtp: pcap global header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagic {
		return nil, fmt.Errorf("gtp: bad pcap magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linktypeRaw {
		return nil, fmt.Errorf("gtp: unsupported linktype %d", lt)
	}
	var out []PCAPPacket
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("gtp: pcap record header: %w", err)
		}
		caplen := binary.LittleEndian.Uint32(rec[8:12])
		if caplen > maxSnapLen {
			return nil, fmt.Errorf("gtp: record caplen %d exceeds snap length", caplen)
		}
		data := make([]byte, caplen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("gtp: pcap record body: %w", err)
		}
		out = append(out, PCAPPacket{
			Sec:  binary.LittleEndian.Uint32(rec[0:4]),
			Usec: binary.LittleEndian.Uint32(rec[4:8]),
			Data: data,
		})
	}
}

// CaptureExchange produces a pcap of n encapsulated G-PDUs through the
// tunnel (alternating uplink/downlink), for inspection in external
// tools. Timestamps advance by the tunnel's one-way delay.
func (t *Tunnel) CaptureExchange(w io.Writer, src, dst ipaddr.Addr, n int) error {
	pw, err := NewPCAPWriter(w)
	if err != nil {
		return err
	}
	stepUsec := uint32(t.OneWayDelayMs() * 1000)
	var clockSec, clockUsec uint32
	for i := 0; i < n; i++ {
		inner := []byte(fmt.Sprintf("probe-%03d", i))
		var pkt []byte
		if i%2 == 0 {
			pkt = t.Encapsulate(src, dst, inner, uint16(i))
		} else {
			pkt = t.Encapsulate(dst, src, inner, uint16(i))
		}
		if err := pw.WritePacket(clockSec, clockUsec, pkt); err != nil {
			return err
		}
		clockUsec += stepUsec
		for clockUsec >= 1_000_000 {
			clockUsec -= 1_000_000
			clockSec++
		}
	}
	return nil
}
