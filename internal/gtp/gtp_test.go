package gtp

import (
	"sync"
	"testing"

	"roamsim/internal/geo"
	"roamsim/internal/netsim"
)

func testNet(t *testing.T) (*netsim.Network, netsim.NodeID, netsim.NodeID) {
	t.Helper()
	n := netsim.New()
	sgw := n.AddNode(netsim.Node{Name: "sgw-dxb", Kind: netsim.KindSGW, Loc: geo.MustCity("Dubai").Loc})
	relay := n.AddNode(netsim.Node{Name: "ipx-relay", Kind: netsim.KindIPXRelay, Loc: geo.MustCity("Mumbai").Loc})
	pgw := n.AddNode(netsim.Node{Name: "pgw-sin", Kind: netsim.KindPGW, Loc: geo.MustCity("Singapore").Loc})
	n.Connect(sgw, relay, netsim.Link{})
	n.Connect(relay, pgw, netsim.Link{})
	return n, sgw, pgw
}

func TestCreateTunnel(t *testing.T) {
	n, sgw, pgw := testNet(t)
	m := NewManager(n)
	tun, err := m.Create(sgw, pgw)
	if err != nil {
		t.Fatal(err)
	}
	if tun.TEID == 0 {
		t.Error("TEID must be nonzero")
	}
	// Dubai -> Singapore span ≈ 5840 km.
	if s := tun.SpanKm(); s < 5500 || s > 6200 {
		t.Errorf("span = %f km", s)
	}
	// One-way delay should reflect the span: ≥ 5840*1.9/200 ≈ 55 ms.
	if d := tun.OneWayDelayMs(); d < 50 || d > 90 {
		t.Errorf("one-way delay = %f ms", d)
	}
	if m.ActiveCount() != 1 {
		t.Errorf("ActiveCount = %d", m.ActiveCount())
	}
}

func TestCreateRejectsWrongKinds(t *testing.T) {
	n, sgw, pgw := testNet(t)
	ue := n.AddNode(netsim.Node{Name: "ue", Kind: netsim.KindUE, Loc: geo.MustCity("Dubai").Loc})
	n.Connect(ue, sgw, netsim.Link{})
	m := NewManager(n)
	if _, err := m.Create(ue, pgw); err == nil {
		t.Error("UE as SGW endpoint should fail")
	}
	if _, err := m.Create(sgw, ue); err == nil {
		t.Error("UE as PGW endpoint should fail")
	}
}

func TestCreateNoRoute(t *testing.T) {
	n := netsim.New()
	sgw := n.AddNode(netsim.Node{Name: "sgw", Kind: netsim.KindSGW})
	pgw := n.AddNode(netsim.Node{Name: "pgw", Kind: netsim.KindPGW})
	m := NewManager(n)
	if _, err := m.Create(sgw, pgw); err == nil {
		t.Error("disconnected endpoints should fail")
	}
}

func TestTeardownAndLookup(t *testing.T) {
	n, sgw, pgw := testNet(t)
	m := NewManager(n)
	tun, _ := m.Create(sgw, pgw)
	if _, ok := m.Lookup(tun.TEID); !ok {
		t.Error("lookup of active tunnel failed")
	}
	if err := m.Teardown(tun.TEID); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Lookup(tun.TEID); ok {
		t.Error("lookup after teardown should miss")
	}
	if err := m.Teardown(tun.TEID); err == nil {
		t.Error("double teardown should error")
	}
	if m.ActiveCount() != 0 {
		t.Errorf("ActiveCount = %d after teardown", m.ActiveCount())
	}
}

func TestTEIDsUniqueUnderConcurrency(t *testing.T) {
	n, sgw, pgw := testNet(t)
	m := NewManager(n)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	teids := make(chan TEID, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tun, err := m.Create(sgw, pgw)
				if err != nil {
					t.Error(err)
					return
				}
				teids <- tun.TEID
			}
		}()
	}
	wg.Wait()
	close(teids)
	seen := map[TEID]bool{}
	for id := range teids {
		if seen[id] {
			t.Fatalf("duplicate TEID %d", id)
		}
		seen[id] = true
	}
	if len(seen) != workers*per {
		t.Errorf("got %d TEIDs", len(seen))
	}
}

func TestEffectiveMTU(t *testing.T) {
	if got := EffectiveMTU(DefaultMTU); got != 1464 {
		t.Errorf("EffectiveMTU(1500) = %d, want 1464", got)
	}
	if got := EffectiveMTU(10); got != 0 {
		t.Errorf("tiny MTU should clamp to 0, got %d", got)
	}
}
