package cdnsim

import (
	"testing"

	"roamsim/internal/inet"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/netsim"
	"roamsim/internal/rng"
)

func cloudflare(t *testing.T, hitRate float64) (*Provider, inet.Edge) {
	t.Helper()
	b := inet.NewBuilder(netsim.New(), ipreg.NewRegistry(), rng.New(1))
	sp, err := b.AddServiceProvider(inet.SPSpec{
		Name: "Cloudflare", ASN: 13335, Kind: ipreg.KindContent,
		Prefix:          ipaddr.MustParsePrefix("104.16.0.0/16"),
		EdgeCities:      []string{"Amsterdam", "Singapore"},
		MinInternalHops: 1, MaxInternalHops: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Provider{SP: sp, HitRate: hitRate, OriginPenaltyMedianMs: 120}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, sp.Edges[0]
}

func TestFetchHitVsMiss(t *testing.T) {
	src := rng.New(2)
	p, edge := cloudflare(t, 0.9)
	var hits, misses int
	var hitSum, missSum float64
	for i := 0; i < 3000; i++ {
		r := p.Fetch(edge, 10, 100, src)
		if r.TotalMs != r.DNSMs+r.TransferMs {
			t.Fatal("total must equal dns + transfer")
		}
		if r.SizeBytes != ObjectBytes {
			t.Fatal("wrong object size")
		}
		switch r.Cache {
		case CacheHit:
			hits++
			hitSum += r.TotalMs
		case CacheMiss:
			misses++
			missSum += r.TotalMs
		}
	}
	frac := float64(hits) / 3000
	if frac < 0.87 || frac > 0.93 {
		t.Errorf("hit rate = %f, want ~0.9", frac)
	}
	if missSum/float64(misses) <= hitSum/float64(hits)+50 {
		t.Errorf("misses (%f) should be much slower than hits (%f)",
			missSum/float64(misses), hitSum/float64(hits))
	}
}

func TestFetchAlwaysHit(t *testing.T) {
	src := rng.New(3)
	p, edge := cloudflare(t, 1)
	for i := 0; i < 200; i++ {
		if r := p.Fetch(edge, 5, 50, src); r.Cache != CacheHit {
			t.Fatal("hitRate 1 must always hit — the Thailand eSIM case")
		}
	}
}

func TestFetchHeaders(t *testing.T) {
	src := rng.New(4)
	p, edge := cloudflare(t, 1)
	r := p.Fetch(edge, 5, 50, src)
	if r.HTTPHeaders["X-Cache"] != "HIT" {
		t.Errorf("X-Cache = %s", r.HTTPHeaders["X-Cache"])
	}
	if r.HTTPHeaders["Server"] != "Cloudflare" {
		t.Errorf("Server = %s", r.HTTPHeaders["Server"])
	}
	if r.HTTPHeaders["Content-Length"] != "30288" {
		t.Errorf("Content-Length = %s", r.HTTPHeaders["Content-Length"])
	}
	if r.EdgeCity != edge.City {
		t.Errorf("EdgeCity = %s", r.EdgeCity)
	}
}

func TestValidate(t *testing.T) {
	p, _ := cloudflare(t, 0.5)
	bad := []*Provider{
		{SP: nil, HitRate: 0.5},
		{SP: p.SP, HitRate: -0.1},
		{SP: p.SP, HitRate: 1.1},
		{SP: p.SP, HitRate: 0.5, OriginPenaltyMedianMs: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad provider %d accepted", i)
		}
	}
}

func TestProviderNames(t *testing.T) {
	if len(ProviderNames) != 5 {
		t.Fatalf("the device campaign measures 5 CDNs, got %d", len(ProviderNames))
	}
	if ProviderNames[0] != "Cloudflare" {
		t.Error("Cloudflare leads the figure order")
	}
}
