// Package cdnsim models the five CDN providers of the device campaign
// (Cloudflare, Google CDN, jQuery, jsDelivr, Microsoft Ajax): POP
// selection, edge caching, and the object the campaign fetches —
// jquery.min.js v3.6.0, ~30 KB on the wire.
//
// A fetch's timing is dominated by the device↔POP RTT (handshakes plus a
// few slow-start rounds for a small object), which is why the paper's
// CDN download times track the roaming architecture so closely; the
// cache model adds the MISS-rate asymmetry observed in Thailand.
package cdnsim

import (
	"fmt"

	"roamsim/internal/inet"
	"roamsim/internal/rng"
)

// ObjectBytes is the on-the-wire size of jquery.min.js v3.6.0 (gzip).
const ObjectBytes = 30288

// CacheStatus mirrors the X-Cache/CF-Cache-Status headers the campaign
// records.
type CacheStatus string

// Cache statuses.
const (
	CacheHit  CacheStatus = "HIT"
	CacheMiss CacheStatus = "MISS"
)

// Provider is one CDN network.
type Provider struct {
	// SP is the underlying service-provider deployment (edges, AS).
	SP *inet.ServiceProvider
	// HitRate is the probability an edge fetch is served from cache.
	HitRate float64
	// OriginPenaltyMedianMs is the median extra time a MISS spends
	// fetching from origin.
	OriginPenaltyMedianMs float64
}

// Validate checks the provider's configuration.
func (p *Provider) Validate() error {
	if p.SP == nil {
		return fmt.Errorf("cdnsim: provider missing SP")
	}
	if p.HitRate < 0 || p.HitRate > 1 {
		return fmt.Errorf("cdnsim: %s hit rate %f out of range", p.SP.Name, p.HitRate)
	}
	if p.OriginPenaltyMedianMs < 0 {
		return fmt.Errorf("cdnsim: %s negative origin penalty", p.SP.Name)
	}
	return nil
}

// FetchResult is one measured CDN download, matching the curl timings
// and headers Table 1 lists.
type FetchResult struct {
	Provider    string
	EdgeCity    string
	Cache       CacheStatus
	DNSMs       float64 // resolution time, supplied by the DNS layer
	TransferMs  float64 // connect + TLS + object transfer
	TotalMs     float64
	SizeBytes   int
	HTTPHeaders map[string]string
}

// Fetch assembles a fetch result from its measured parts. transferMs is
// computed by the caller over the simulated path (netsim.DownloadTimeMs
// with 2 handshakes: TCP + TLS); cdnsim decides cache status and adds
// the origin penalty on a MISS.
func (p *Provider) Fetch(edge inet.Edge, dnsMs, transferMs float64, src *rng.Source) FetchResult {
	res := FetchResult{
		Provider:   p.SP.Name,
		EdgeCity:   edge.City,
		Cache:      CacheHit,
		DNSMs:      dnsMs,
		TransferMs: transferMs,
		SizeBytes:  ObjectBytes,
	}
	if !src.Bool(p.HitRate) {
		res.Cache = CacheMiss
		res.TransferMs += src.LogNormalMeanMedian(p.OriginPenaltyMedianMs, 0.4)
	}
	res.TotalMs = res.DNSMs + res.TransferMs
	res.HTTPHeaders = map[string]string{
		"Server":         res.Provider,
		"X-Cache":        string(res.Cache),
		"X-Served-By":    edge.City,
		"Content-Length": fmt.Sprintf("%d", ObjectBytes),
		"Content-Type":   "application/javascript; charset=utf-8",
	}
	return res
}

// ProviderNames are the five CDNs measured by the device campaign, in
// the order the paper's figures present them.
var ProviderNames = []string{
	"Cloudflare", "Google CDN", "jQuery CDN", "jsDelivr", "Microsoft Ajax",
}
