package obs

import (
	"sync"
	"time"
)

// Event is one recorded trace entry: a point event (watchdog kill,
// chaos crash, retry give-up) or a span with a duration.
type Event struct {
	// Seq is the global record sequence number (monotonic, starts at 1).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock record time. It never feeds back into
	// measurement payloads, so it does not perturb determinism.
	Time time.Time `json:"time"`
	// Name labels the event kind ("watchdog-kill", "retry-giveup", ...).
	Name string `json:"name"`
	// DurMs is the span duration in milliseconds (0 for point events).
	DurMs float64 `json:"dur_ms,omitempty"`
	// Attrs carries event attributes (ME name, op, fault kind, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is a fixed-capacity ring buffer of events: recording never
// allocates beyond the ring and never blocks on readers; once full,
// each new event overwrites the oldest. Event rates in the fleet are
// low (restarts, give-ups, faults — not per-request), so a small ring
// retains plenty of triage context.
type Trace struct {
	mu  sync.Mutex
	buf []Event
	seq uint64
}

// NewTrace returns a ring recorder retaining the last capacity events
// (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Record appends a point event. No-op on a nil recorder.
func (t *Trace) Record(name string, attrs ...Label) {
	t.RecordSpan(name, 0, attrs...)
}

// RecordSpan appends an event carrying a duration. No-op on a nil
// recorder.
func (t *Trace) RecordSpan(name string, d time.Duration, attrs ...Label) {
	if t == nil {
		return
	}
	//lint:allow wallclock trace timestamps are operator-facing wall time; they never enter a dataset (TestFleetMetricsEquivalence proves metrics/traces are determinism-neutral)
	e := Event{Time: time.Now(), Name: name, DurMs: float64(d) / float64(time.Millisecond)}
	if len(attrs) > 0 {
		e.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			e.Attrs[a.Key] = a.Value
		}
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.buf[(t.seq-1)%uint64(len(t.buf))] = e
	t.mu.Unlock()
}

// Len reports how many events are currently retained (at most the ring
// capacity).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq < uint64(len(t.buf)) {
		return int(t.seq)
	}
	return len(t.buf)
}

// Last returns up to n retained events, oldest first (so the newest
// event is the final element). It returns nil on a nil recorder.
func (t *Trace) Last(n int) []Event {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.seq
	capacity := uint64(len(t.buf))
	if have > capacity {
		have = capacity
	}
	if uint64(n) > have {
		n = int(have)
	}
	out := make([]Event, 0, n)
	for i := t.seq - uint64(n); i < t.seq; i++ {
		out = append(out, t.buf[i%capacity])
	}
	return out
}
