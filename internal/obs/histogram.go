package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram buckets are fixed log-scale bounds — powers of two from
// 0.001 upward — so the bucket layout is a constant of the binary, not
// of the observed data. That keeps snapshots deterministic-friendly:
// two runs of the same campaign fill the same bucket vector, and a
// golden exposition test can pin the exact output. The unit is
// caller-defined; the fleet instrumentation records milliseconds, for
// which the bounds span 1 µs to ~36 minutes.
const (
	histBuckets  = 32
	histMinBound = 0.001
	// histShards spreads observers across independently-locked shards.
	// With the fleet worker pool bounded by GOMAXPROCS, 8 shards keep
	// the probability of two workers colliding on one shard lock low;
	// observation is a few dozen nanoseconds under no contention.
	histShards = 8
)

// histBounds[i] is the inclusive upper bound of bucket i.
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	for i := range b {
		b[i] = histMinBound * math.Pow(2, float64(i))
	}
	return b
}()

// BucketBounds returns the fixed upper bounds of the finite buckets
// (everything above the last bound lands in the +Inf bucket).
func BucketBounds() []float64 {
	return append([]float64(nil), histBounds[:]...)
}

// bucketIndex returns the bucket for v: the first bucket whose bound is
// >= v, or histBuckets (the +Inf bucket) when v exceeds every bound.
func bucketIndex(v float64) int {
	return sort.SearchFloat64s(histBounds[:], v)
}

// histShard is one independently-locked slice of a histogram.
type histShard struct {
	mu     sync.Mutex
	counts [histBuckets + 1]uint64 // guarded by mu
	count  uint64                  // guarded by mu
	sum    float64                 // guarded by mu
	// pad keeps adjacent shards off one cache line under contention.
	_ [24]byte
}

// Histogram is a lock-sharded distribution of float64 observations over
// the fixed log-scale buckets. Observers pick a shard round-robin and
// take only that shard's lock; snapshots aggregate across shards.
type Histogram struct {
	labels []Label
	rr     atomic.Uint32
	shards [histShards]histShard
}

// Observe records one value. No-op on a nil handle. Safe for
// unbounded concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := bucketIndex(v)
	sh := &h.shards[h.rr.Add(1)%histShards]
	sh.mu.Lock()
	sh.counts[idx]++
	sh.count++
	sh.sum += v
	sh.mu.Unlock()
}

// HistSnapshot is an aggregated point-in-time view of a histogram.
// Buckets holds per-bucket (non-cumulative) counts; index histBuckets
// is the +Inf bucket.
type HistSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets [histBuckets + 1]uint64
}

// Snapshot aggregates all shards. The zero snapshot is returned for a
// nil handle.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for b, c := range sh.counts {
			s.Buckets[b] += c
		}
		s.Count += sh.count
		s.Sum += sh.sum
		sh.mu.Unlock()
	}
	return s
}
