package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety pins the no-op contract: every operation on a nil
// registry, nil handle, or nil trace must be safe — instrumented code
// carries no "is observability enabled" branches.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(-1)
	r.Histogram("h").Observe(1.5)
	r.GaugeFunc("gf", func() float64 { return 1 })
	r.CounterFunc("cf", func() float64 { return 1 })
	r.Trace().Record("ev", L("k", "v"))
	r.Trace().RecordSpan("sp", time.Second)
	if got := r.Trace().Last(10); got != nil {
		t.Errorf("nil trace Last = %v, want nil", got)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if got := r.Histogram("h").Snapshot(); got.Count != 0 {
		t.Errorf("nil histogram snapshot = %+v", got)
	}
}

// TestHandleIdentity verifies that repeated lookups return the same
// series and that label order does not matter.
func TestHandleIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("same labels in different order produced distinct series")
	}
	if c := r.Counter("x_total", L("a", "1")); c == a {
		t.Fatal("different label sets shared a series")
	}
}

// TestConcurrentHammering pounds one counter, one gauge, and one
// histogram from many goroutines; run under -race this doubles as the
// data-race proof for the lock-sharded histogram.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 5000
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_gauge")
	h := r.Histogram("hammer_ms")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Add(1)
				g.Add(1)
				h.Observe(float64(j%100) + 0.5)
				// Exercise concurrent handle lookups too.
				r.Counter("hammer_labeled_total", L("g", fmt.Sprint(id%4))).Add(1)
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	var labeled int64
	for i := 0; i < 4; i++ {
		labeled += r.Counter("hammer_labeled_total", L("g", fmt.Sprint(i))).Value()
	}
	if labeled != goroutines*perG {
		t.Errorf("labeled counters sum = %d, want %d", labeled, goroutines*perG)
	}
}

// TestHistogramBuckets pins the fixed log-scale bucket layout and the
// placement of boundary values.
func TestHistogramBuckets(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != histBuckets || bounds[0] != 0.001 || bounds[1] != 0.002 {
		t.Fatalf("unexpected bounds: %v", bounds[:2])
	}
	r := NewRegistry()
	h := r.Histogram("hb_ms")
	h.Observe(0)            // below the first bound -> bucket 0
	h.Observe(0.001)        // exactly the first bound -> bucket 0 (le semantics)
	h.Observe(0.0011)       // just above -> bucket 1
	h.Observe(math.MaxFloat64) // beyond every bound -> +Inf bucket
	s := h.Snapshot()
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[histBuckets] != 1 {
		t.Errorf("bucket placement: %v", s.Buckets)
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
}

// TestPrometheusGolden pins the full exposition output for a registry
// with one of every metric kind: family and series ordering, TYPE
// lines, label rendering, and the cumulative histogram encoding.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(3)
	r.Counter("aa_total", L("op", "lease")).Add(2)
	r.Counter("aa_total", L("op", `qu"ote`)).Add(1)
	r.Gauge("depth").Set(7)
	r.GaugeFunc("spool", func() float64 { return 1.5 })
	h := r.Histogram("dur_ms", L("route", "/v1/tasks"))
	h.Observe(0.0005)
	h.Observe(0.01)
	h.Observe(1e12)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	want.WriteString("# TYPE aa_total counter\n")
	want.WriteString("aa_total{op=\"lease\"} 2\n")
	want.WriteString("aa_total{op=\"qu\\\"ote\"} 1\n")
	want.WriteString("# TYPE depth gauge\ndepth 7\n")
	want.WriteString("# TYPE dur_ms histogram\n")
	cum := 0
	for i, bound := range BucketBounds() {
		switch {
		case i == 0, i == 4: // 0.0005 <= 0.001; 0.01 <= 0.016
			cum++
		}
		fmt.Fprintf(&want, "dur_ms_bucket{route=\"/v1/tasks\",le=\"%s\"} %d\n", formatValue(bound), cum)
	}
	want.WriteString("dur_ms_bucket{route=\"/v1/tasks\",le=\"+Inf\"} 3\n")
	fmt.Fprintf(&want, "dur_ms_sum{route=\"/v1/tasks\"} %s\n", formatValue(0.0005+0.01+1e12))
	want.WriteString("dur_ms_count{route=\"/v1/tasks\"} 3\n")
	want.WriteString("# TYPE spool gauge\nspool 1.5\n")
	want.WriteString("# TYPE zz_total counter\nzz_total 3\n")

	if b.String() != want.String() {
		t.Errorf("exposition mismatch:\n--- got\n%s\n--- want\n%s", b.String(), want.String())
	}
}

// TestTraceRingWraparound fills a small ring past capacity and checks
// that only the newest events survive, in order, with continuous
// sequence numbers.
func TestTraceRingWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 1; i <= 10; i++ {
		tr.Record(fmt.Sprintf("ev-%d", i), L("i", fmt.Sprint(i)))
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	events := tr.Last(10)
	if len(events) != 4 {
		t.Fatalf("Last(10) = %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.Name != fmt.Sprintf("ev-%d", wantSeq) {
			t.Errorf("event %d = seq %d name %s, want seq %d", i, e.Seq, e.Name, wantSeq)
		}
	}
	if last2 := tr.Last(2); len(last2) != 2 || last2[1].Seq != 10 {
		t.Errorf("Last(2) = %+v", last2)
	}
	tr2 := NewTrace(8)
	tr2.RecordSpan("span", 250*time.Millisecond, L("op", "x"))
	if e := tr2.Last(1)[0]; e.DurMs != 250 || e.Attrs["op"] != "x" {
		t.Errorf("span event = %+v", e)
	}
}

// TestConcurrentTrace hammers the ring recorder from many goroutines
// (a -race check) and verifies retained events stay well-formed.
func TestConcurrentTrace(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Record("ev")
				tr.Last(8)
			}
		}()
	}
	wg.Wait()
	events := tr.Last(64)
	if len(events) != 64 {
		t.Fatalf("retained %d events, want 64", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

// TestHandlers exercises the HTTP surface: the metrics handler must
// serve the text exposition with the right content type, the trace
// handler valid JSON; both must tolerate a nil registry.
func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total").Add(1)
	r.Trace().Record("boot")

	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/admin/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("metrics body missing series:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/admin/trace?n=5", nil))
	if !strings.Contains(rec.Body.String(), `"name":"boot"`) {
		t.Errorf("trace body = %s", rec.Body.String())
	}

	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/admin/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("nil metrics handler code = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	nilReg.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/admin/trace", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"events":[]`) {
		t.Errorf("nil trace handler: code %d body %s", rec.Code, rec.Body.String())
	}
}
