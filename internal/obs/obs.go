// Package obs is the dependency-free observability layer for the fleet
// control plane: atomic counters and gauges, lock-sharded histograms
// with fixed log-scale buckets, a ring-buffer span/event recorder, and
// a Prometheus text-format exposition endpoint.
//
// The paper's testbed lived or died on seeing what 24 remote MEs were
// doing (vitals reporting, per-tool timings, failure triage across
// volunteers); the reproduction runs thousands of simulated MEs under
// chaos injection, which needs the same observation plane at scale.
//
// # Design constraints
//
//   - Off the hot path: counters and gauges are single atomics;
//     histograms shard their locks so concurrent observers rarely
//     contend; metric handles are created once and cached by callers,
//     so the request path never takes the registry lock.
//   - Determinism-neutral: instrumentation never reads the measurement
//     rng, never alters retry timing, and never feeds back into
//     payloads — campaign datasets are byte-identical with metrics on
//     or off (pinned by TestFleetMetricsEquivalence).
//   - Nil-safe: every method works on a nil *Registry or nil metric
//     handle as a no-op, so instrumented code needs no "is observability
//     enabled" branches.
//
// Snapshots are deterministic-friendly: histogram buckets are fixed
// log-scale bounds (independent of observed data), and exposition
// output is sorted by family name and label set.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (a Prometheus label pair).
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// sortLabels returns a sorted copy of labels (stable series identity
// regardless of argument order).
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// seriesKey renders sorted labels into a map key.
func seriesKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	labels []Label
	v      atomic.Int64
}

// Add increments the counter. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	labels []Label
	v      atomic.Int64
}

// Set stores the gauge value. No-op on a nil handle.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. No-op on a nil handle.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// funcMetric is a callback-backed series (counter or gauge kind),
// evaluated at exposition time. Used for values already maintained
// elsewhere (spool depth, route-cache hit counts, chaos fault counts).
type funcMetric struct {
	labels []Label
	fn     func() float64
}

// family groups every series sharing one metric name; all series of a
// family have the same kind ("counter", "gauge", "histogram").
type family struct {
	kind   string
	series map[string]any
}

// Registry holds named metric families and the trace recorder. The
// zero registry is not usable; call NewRegistry. A nil *Registry is a
// valid no-op sink: every method returns nil handles whose operations
// do nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	trace    *Trace
}

// DefaultTraceCapacity is the ring size of a registry's trace recorder.
const DefaultTraceCapacity = 2048

// NewRegistry returns an empty registry with a trace recorder attached.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]*family{},
		trace:    NewTrace(DefaultTraceCapacity),
	}
}

// Trace returns the registry's event recorder (nil on a nil registry).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// lookup finds or creates the series for (name, labels) under kind.
// Creating a name under two different kinds is a programming error.
func (r *Registry) lookup(name, kind string, labels []Label, mk func(ls []Label) any) any {
	ls := sortLabels(labels)
	key := seriesKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{kind: kind, series: map[string]any{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk(ls)
	f.series[key] = m
	return m
}

// Counter returns the counter for (name, labels), creating it on first
// use. Handles are shared: every call with the same name and label set
// returns the same *Counter. Returns nil (a no-op handle) on a nil
// registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, "counter", labels, func(ls []Label) any { return &Counter{labels: ls} })
	return m.(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, "gauge", labels, func(ls []Label) any { return &Gauge{labels: ls} })
	return m.(*Gauge)
}

// Histogram returns the histogram for (name, labels), creating it on
// first use. Buckets are the package-wide fixed log-scale bounds.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, "histogram", labels, func(ls []Label) any { return &Histogram{labels: ls} })
	return m.(*Histogram)
}

// GaugeFunc registers (or replaces) a callback-backed gauge series.
// The callback runs at exposition time and must be safe for concurrent
// use. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.registerFunc(name, "gauge", fn, labels)
}

// CounterFunc registers (or replaces) a callback-backed counter series
// for monotonic values maintained elsewhere (e.g. route-cache hits).
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	r.registerFunc(name, "counter", fn, labels)
}

func (r *Registry) registerFunc(name, kind string, fn func() float64, labels []Label) {
	if r == nil {
		return
	}
	ls := sortLabels(labels)
	key := seriesKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{kind: kind, series: map[string]any{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	// Replace: re-registration (e.g. a Driver re-run on the same
	// registry) rebinds the callback instead of erroring.
	f.series[key] = &funcMetric{labels: ls, fn: fn}
}
