package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, a
// "# TYPE" line per family, series sorted by label set, histograms as
// cumulative _bucket/_sum/_count series. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type famSnap struct {
		name   string
		kind   string
		series []any
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.families))
	for name, f := range r.families {
		fs := famSnap{name: name, kind: f.kind, series: make([]any, 0, len(f.series))}
		for _, m := range f.series {
			fs.series = append(fs.series, m)
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		sort.Slice(f.series, func(i, j int) bool {
			return renderLabels(metricLabels(f.series[i]), "") < renderLabels(metricLabels(f.series[j]), "")
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, m := range f.series {
			if err := writeSeries(w, f.name, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func metricLabels(m any) []Label {
	switch m := m.(type) {
	case *Counter:
		return m.labels
	case *Gauge:
		return m.labels
	case *Histogram:
		return m.labels
	case *funcMetric:
		return m.labels
	}
	return nil
}

func writeSeries(w io.Writer, name string, m any) error {
	switch m := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(m.labels, ""), formatValue(float64(m.Value())))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(m.labels, ""), formatValue(float64(m.Value())))
		return err
	case *funcMetric:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(m.labels, ""), formatValue(m.fn()))
		return err
	case *Histogram:
		s := m.Snapshot()
		var cum uint64
		for i, c := range s.Buckets {
			cum += c
			le := "+Inf"
			if i < histBuckets {
				le = formatValue(histBounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(m.labels, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(m.labels, ""), formatValue(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(m.labels, ""), s.Count)
		return err
	}
	return nil
}

// renderLabels formats a label set, appending the reserved "le" label
// when non-empty (histogram buckets). An empty set renders as "".
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves the registry in Prometheus text format — the
// GET /admin/metrics route. A nil registry serves an empty (still
// valid) exposition.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// TraceHandler serves the newest ring-buffer events as JSON — the
// GET /admin/trace?n=K route (default 100 events, oldest first).
func (r *Registry) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n, err := strconv.Atoi(req.URL.Query().Get("n"))
		if err != nil || n <= 0 {
			n = 100
		}
		events := r.Trace().Last(n)
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"events": events})
	})
}
