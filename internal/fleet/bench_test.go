package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"roamsim/internal/amigo"
)

// BenchmarkFleetThroughput measures control-plane results/sec at fleet
// scale: N registered MEs draining a fixed task backlog over real HTTP
// on loopback, via the v1 one-task-per-poll protocol vs the v2 batch
// lease/upload protocol. Task execution is stubbed with a canned result
// so the benchmark isolates the serving path (registry sharding,
// lease/upload round trips, spool) rather than the measurement
// simulation. v2 should sustain >= 5x v1 at 1000 MEs.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, mes := range []int{100, 1000, 10000} {
		for _, proto := range []string{"v1", "v2"} {
			name := fmt.Sprintf("%s/mes=%d", proto, mes)
			b.Run(name, func(b *testing.B) {
				if mes >= 10000 && testing.Short() {
					b.Skip("10k MEs skipped in -short smoke runs")
				}
				benchThroughput(b, mes, proto == "v2")
			})
		}
	}
}

func benchThroughput(b *testing.B, mes int, v2 bool) {
	// The device campaign schedules 72 tasks per ME (9 tools x 2
	// configs x 4 reps); 16 keeps the 10k-ME case tractable while
	// still letting batch leases amortize round trips.
	const tasksPerME = 16
	const workers = 32
	const leaseBatch = 32

	srv := amigo.NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}}

	names := make([]string, mes)
	taskTmpl := make([]amigo.Task, tasksPerME)
	for i := range taskTmpl {
		taskTmpl[i] = amigo.Task{Kind: "speedtest", Config: "esim"}
	}
	for i := range names {
		names[i] = fmt.Sprintf("me-%05d", i)
		srv.Register(names[i], "PAK")
	}

	post := func(path string, body any) (*http.Response, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return client.Post(hs.URL+path, "application/json", bytes.NewReader(buf))
	}
	finish := func(resp *http.Response) int {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	drainV1 := func(me string) error {
		for {
			resp, err := client.Get(hs.URL + "/v1/tasks?me=" + me)
			if err != nil {
				return err
			}
			if resp.StatusCode == http.StatusNoContent {
				finish(resp)
				return nil
			}
			var task amigo.Task
			err = json.NewDecoder(resp.Body).Decode(&task)
			finish(resp)
			if err != nil {
				return err
			}
			up, err := post("/v1/results", amigo.Result{TaskID: task.ID, ME: me, Kind: task.Kind, Config: task.Config, OK: true})
			if err != nil {
				return err
			}
			if code := finish(up); code >= 300 {
				return fmt.Errorf("v1 upload: HTTP %d", code)
			}
		}
	}
	drainV2 := func(me string) error {
		ack := 0 // v2 leases are at-least-once: ack the previous batch or it is re-delivered
		for {
			resp, err := post("/v2/tasks/lease", map[string]any{"me": me, "max": leaseBatch, "ack": ack})
			if err != nil {
				return err
			}
			if resp.StatusCode == http.StatusNoContent {
				finish(resp)
				return nil
			}
			var tasks []amigo.Task
			err = json.NewDecoder(resp.Body).Decode(&tasks)
			finish(resp)
			if err != nil {
				return err
			}
			if n := len(tasks); n > 0 {
				ack = tasks[n-1].ID
			}
			results := make([]amigo.Result, len(tasks))
			for i, task := range tasks {
				results[i] = amigo.Result{TaskID: task.ID, ME: me, Kind: task.Kind, Config: task.Config, OK: true}
			}
			up, err := post("/v2/results", results)
			if err != nil {
				return err
			}
			if code := finish(up); code >= 300 {
				return fmt.Errorf("v2 upload: HTTP %d", code)
			}
		}
	}

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		for _, name := range names {
			if _, err := srv.ScheduleBatch(name, taskTmpl); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		errs := make([]error, mes)
		runPool(workers, mes, func(i int) {
			if v2 {
				errs[i] = drainV2(names[i])
			} else {
				errs[i] = drainV1(names[i])
			}
		})
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	total := float64(b.N * mes * tasksPerME)
	b.ReportMetric(total/b.Elapsed().Seconds(), "results/s")
}
