package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"roamsim/internal/amigo"
	"roamsim/internal/wire"
)

// BenchmarkFleetThroughput measures control-plane results/sec at fleet
// scale: N registered MEs draining a fixed task backlog over real HTTP
// on loopback, via the v1 one-task-per-poll protocol, the v2 JSON
// batch protocol, and the v3 binary batch protocol. Task execution is
// stubbed with a canned result so the benchmark isolates the serving
// path (registry sharding, lease/upload round trips, codec, spool)
// rather than the measurement simulation. v2 should sustain >= 5x v1
// and v3 >= 3x v2 at 1000 MEs.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, mes := range []int{100, 1000, 10000} {
		for _, proto := range []string{"v1", "v2", "v3"} {
			name := fmt.Sprintf("%s/mes=%d", proto, mes)
			b.Run(name, func(b *testing.B) {
				if mes >= 10000 && testing.Short() {
					b.Skip("10k MEs skipped in -short smoke runs")
				}
				benchThroughput(b, mes, proto, 1)
			})
		}
	}
	// The sharded row: the same v3 drain through a 4-shard gateway
	// (in-memory sinks), isolating the routing-peek overhead and the
	// registry/queue contention relief that sharding buys.
	b.Run("v3-shards4/mes=1000", func(b *testing.B) {
		benchThroughput(b, 1000, "v3", 4)
	})
}

// The device campaign schedules 72 tasks per ME (9 tools x 2 configs x
// 4 reps); 64 approximates that realistic backlog while keeping the
// 10k-ME case tractable.
const benchTasksPerME = 64

// benchFleet is the benchmark fixture: the control plane (possibly
// sharded), the registered MEs, and the per-protocol drain loop.
// Everything it takes to build one — server construction, WAL/gateway
// wiring, ME registration, HTTP transport — happens in newBenchFleet,
// strictly before b.ResetTimer; the timed region of the benchmark is
// the backlog drain alone, with per-iteration rescheduling bracketed
// out by StopTimer/StartTimer.
type benchFleet struct {
	names     []string
	serverFor func(me string) *amigo.Server
	drain     func(me string) error
	taskTmpl  []amigo.Task
}

// schedule refills every ME's backlog in-process (no HTTP); callers
// must keep it outside the benchmark timer.
func (f *benchFleet) schedule(b *testing.B) {
	b.Helper()
	for _, name := range f.names {
		if _, err := f.serverFor(name).ScheduleBatch(name, f.taskTmpl); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchFleet(b *testing.B, mes int, proto string, shards int) *benchFleet {
	const workers = 32
	const leaseBatch = 64

	// serverFor maps an ME to the amigo server owning it, so register
	// and schedule skip HTTP; the timed drain goes over the wire (and,
	// when sharded, through the gateway's routing peek).
	var serverFor func(me string) *amigo.Server
	var hs *httptest.Server
	if shards > 1 {
		f, err := NewShardedFleet(ShardedConfig{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { f.Close() })
		ring := f.Ring()
		serverFor = func(me string) *amigo.Server { return f.Server(ring.Shard(me)) }
		hs = httptest.NewServer(f.Handler())
	} else {
		srv := amigo.NewServer(nil)
		serverFor = func(string) *amigo.Server { return srv }
		hs = httptest.NewServer(srv.Handler())
	}
	b.Cleanup(hs.Close)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}}

	// Canned payloads stand in for typical observations of each tool so
	// the codecs move representative bytes: speedtests are small, mtr
	// traces carry a multi-hop list (the bulk of a real campaign's
	// upload volume), dns is in between.
	canned := map[string]json.RawMessage{
		"speedtest": json.RawMessage(`{"server":"Karachi","latency_ms":87.3,"down_mbps":9.42,"up_mbps":3.11,"cqi":9,"rat":"4G","public_ip":"203.0.113.7"}`),
		"mtr": json.RawMessage(`{"target":"Google","hops":[` +
			`{"ttl":1,"addr":"10.64.0.1","rtt_ms":31.2},{"ttl":2},{"ttl":3},` +
			`{"ttl":4,"addr":"100.66.12.9","rtt_ms":58.7},{"ttl":5,"addr":"100.66.8.1","rtt_ms":61.0},` +
			`{"ttl":6,"addr":"185.210.48.33","rtt_ms":96.4},{"ttl":7,"addr":"185.210.48.12","rtt_ms":98.9},` +
			`{"ttl":8,"addr":"62.115.120.7","rtt_ms":121.5},{"ttl":9,"addr":"62.115.140.22","rtt_ms":128.8},` +
			`{"ttl":10,"addr":"72.14.204.68","rtt_ms":141.2},{"ttl":11,"addr":"142.251.52.145","rtt_ms":143.7},` +
			`{"ttl":12,"addr":"142.250.184.14","rtt_ms":144.1}]}`),
		"dns": json.RawMessage(`{"resolver":"8.8.8.8","backend":"172.217.16.4","backend_asn":15169,"anycast":true,"lookup_ms":42.6}`),
	}

	names := make([]string, mes)
	taskTmpl := make([]amigo.Task, benchTasksPerME)
	kinds := []string{"speedtest", "mtr", "dns"}
	for i := range taskTmpl {
		taskTmpl[i] = amigo.Task{Kind: kinds[i%len(kinds)], Config: "esim"}
	}
	for i := range names {
		names[i] = fmt.Sprintf("me-%05d", i)
		serverFor(names[i]).Register(names[i], "PAK")
	}

	post := func(path string, body any) (*http.Response, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return client.Post(hs.URL+path, "application/json", bytes.NewReader(buf))
	}
	finish := func(resp *http.Response) int {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	drainV1 := func(me string) error {
		for {
			resp, err := client.Get(hs.URL + "/v1/tasks?me=" + me)
			if err != nil {
				return err
			}
			if resp.StatusCode == http.StatusNoContent {
				finish(resp)
				return nil
			}
			var task amigo.Task
			err = json.NewDecoder(resp.Body).Decode(&task)
			finish(resp)
			if err != nil {
				return err
			}
			up, err := post("/v1/results", amigo.Result{TaskID: task.ID, ME: me, Kind: task.Kind, Config: task.Config, OK: true, Payload: canned[task.Kind]})
			if err != nil {
				return err
			}
			if code := finish(up); code >= 300 {
				return fmt.Errorf("v1 upload: HTTP %d", code)
			}
		}
	}
	drainV2 := func(me string) error {
		ack := 0 // v2 leases are at-least-once: ack the previous batch or it is re-delivered
		for {
			resp, err := post("/v2/tasks/lease", map[string]any{"me": me, "max": leaseBatch, "ack": ack})
			if err != nil {
				return err
			}
			if resp.StatusCode == http.StatusNoContent {
				finish(resp)
				return nil
			}
			var tasks []amigo.Task
			err = json.NewDecoder(resp.Body).Decode(&tasks)
			finish(resp)
			if err != nil {
				return err
			}
			if n := len(tasks); n > 0 {
				ack = tasks[n-1].ID
			}
			results := make([]amigo.Result, len(tasks))
			for i, task := range tasks {
				results[i] = amigo.Result{TaskID: task.ID, ME: me, Kind: task.Kind, Config: task.Config, OK: true, Payload: canned[task.Kind]}
			}
			up, err := post("/v2/results", results)
			if err != nil {
				return err
			}
			if code := finish(up); code >= 300 {
				return fmt.Errorf("v2 upload: HTTP %d", code)
			}
		}
	}

	// drainV3 is drainV2 over binary frames: one encode buffer, read
	// buffer, decoder and scratch per ME drain, reused across rounds —
	// the steady state allocates nothing per round trip beyond what
	// net/http itself does.
	drainV3 := func(me string) error {
		ebuf := wire.GetBuf()
		defer wire.PutBuf(ebuf)
		rbuf := wire.GetBuf()
		defer wire.PutBuf(rbuf)
		dec := wire.GetDecoder()
		defer wire.PutDecoder(dec)
		var tasks []amigo.Task
		var results []amigo.Result
		ack := 0
		for {
			*ebuf = wire.AppendLeaseRequest((*ebuf)[:0],
				wire.LeaseRequest{ME: me, Max: leaseBatch, Ack: ack})
			resp, err := client.Post(hs.URL+"/v3/tasks/lease", wire.ContentType, bytes.NewReader(*ebuf))
			if err != nil {
				return err
			}
			if resp.StatusCode == http.StatusNoContent {
				finish(resp)
				return nil
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("v3 lease: HTTP %d", finish(resp))
			}
			h, payload, err := wire.ReadFrame(resp.Body, (*rbuf)[:0])
			*rbuf = payload
			finish(resp)
			if err == nil && h.Type != wire.MsgTasks {
				err = fmt.Errorf("v3 lease: unexpected frame type %#x", h.Type)
			}
			if err == nil {
				tasks, err = dec.Tasks(payload, tasks[:0])
			}
			if err != nil {
				return err
			}
			if n := len(tasks); n > 0 {
				ack = tasks[n-1].ID
			}
			results = results[:0]
			for _, task := range tasks {
				results = append(results, amigo.Result{TaskID: task.ID, ME: me, Kind: task.Kind, Config: task.Config, OK: true, Payload: canned[task.Kind]})
			}
			*ebuf = wire.AppendResults((*ebuf)[:0], results)
			up, err := client.Post(hs.URL+"/v3/results", wire.ContentType, bytes.NewReader(*ebuf))
			if err != nil {
				return err
			}
			if code := finish(up); code >= 300 {
				return fmt.Errorf("v3 upload: HTTP %d", code)
			}
		}
	}

	drain := drainV1
	switch proto {
	case "v2":
		drain = drainV2
	case "v3":
		drain = drainV3
	}
	return &benchFleet{names: names, serverFor: serverFor, drain: drain, taskTmpl: taskTmpl}
}

func benchThroughput(b *testing.B, mes int, proto string, shards int) {
	const workers = 32
	f := newBenchFleet(b, mes, proto, shards)

	// Timer discipline: fixture construction above is untimed; each
	// iteration re-schedules the backlog off the clock and times only
	// the concurrent drain over the wire.
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		f.schedule(b)
		b.StartTimer()
		errs := make([]error, mes)
		runPool(workers, mes, func(i int) {
			errs[i] = f.drain(f.names[i])
		})
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	total := float64(b.N * mes * benchTasksPerME)
	b.ReportMetric(total/b.Elapsed().Seconds(), "results/s")
}
