package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
)

// newChaosControlServer is newControlServer with the injector's storm
// middleware wrapped around the full mux, the way cmd/roam-fleet -chaos
// wires it. Admin traffic carries no chaos header and passes through.
func newChaosControlServer(t testing.TB, inj *chaos.Injector) (*amigo.Server, *httptest.Server) {
	t.Helper()
	srv := amigo.NewServer(nil)
	mux := http.NewServeMux()
	h := srv.Handler()
	mux.Handle("/v1/", h)
	mux.Handle("/v2/", h)
	mux.Handle("/v3/", h)
	mux.Handle("/admin/", srv.AdminHandler())
	hs := httptest.NewServer(inj.Middleware(mux))
	t.Cleanup(hs.Close)
	return srv, hs
}

func chaosTestPlan() Plan {
	return Plan{
		Countries: []string{"PAK", "GEO"}, MEsPerCountry: 2,
		Tasks: []amigo.Task{
			{Kind: "speedtest"}, {Kind: "mtr", Target: "Google"}, {Kind: "dns"},
		},
		Configs: []string{"sim", "esim"}, Reps: 2,
	}
}

// runChaosCampaign runs the plan under the given injector (nil = clean
// run) and returns the ingested dataset plus its rendered artifacts.
func runChaosCampaign(t *testing.T, inj *chaos.Injector, workers int) (dsBlob []byte, table4, rtt string) {
	t.Helper()
	w := testWorld(t)
	plan := chaosTestPlan()
	var hs *httptest.Server
	if inj != nil {
		_, hs = newChaosControlServer(t, inj)
	} else {
		_, hs = newControlServer(t)
	}
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: workers,
		LeaseBatch: 4, StreamLabel: "chaos-eq", Heartbeat: true, Chaos: inj}
	camp, err := d.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return blob, Table4(ds, plan).String(), RTTSummary(ds, plan).String()
}

// TestFleetChaosEquivalence is the headline differential test: a
// campaign under heavy fault injection — resets, truncation, duplicate
// deliveries, latency spikes, 503/429 storms, mid-campaign ME crashes —
// must ingest the byte-identical dataset, Table 4, and RTT summary that
// the clean run produces. Faults cost retries, never data.
func TestFleetChaosEquivalence(t *testing.T) {
	wantDS, wantT4, wantRTT := runChaosCampaign(t, nil, 4)
	if len(wantDS) == 0 || wantT4 == "" || wantRTT == "" {
		t.Fatal("empty baseline artifacts")
	}
	for _, chaosSeed := range []int64{7, 1002} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("chaosSeed=%d/workers=%d", chaosSeed, workers)
			t.Run(name, func(t *testing.T) {
				inj := chaos.NewInjector(chaosSeed, chaos.Heavy())
				gotDS, gotT4, gotRTT := runChaosCampaign(t, inj, workers)
				if !bytes.Equal(gotDS, wantDS) {
					t.Errorf("chaos dataset differs from clean run\nfault trace:\n%s", inj.TraceString())
				}
				if gotT4 != wantT4 {
					t.Errorf("Table 4 differs:\nchaos:\n%s\nclean:\n%s", gotT4, wantT4)
				}
				if gotRTT != wantRTT {
					t.Errorf("RTT summary differs:\nchaos:\n%s\nclean:\n%s", gotRTT, wantRTT)
				}
				if len(inj.Events()) == 0 {
					t.Error("chaos run injected zero faults; the test proved nothing")
				}
			})
		}
	}
}

// TestChaosDeterminism pins the replay contract: for a fixed chaos
// seed the fault schedule (canonical event trace) and the ingested
// dataset are identical run over run AND across worker counts, because
// every injection decision is keyed per (ME, incarnation, op, attempt)
// rather than on global interleaving.
func TestChaosDeterminism(t *testing.T) {
	const chaosSeed = 99
	type run struct {
		trace string
		ds    []byte
	}
	var runs []run
	for _, workers := range []int{4, 4, 1} {
		inj := chaos.NewInjector(chaosSeed, chaos.Heavy())
		ds, _, _ := runChaosCampaign(t, inj, workers)
		runs = append(runs, run{trace: inj.TraceString(), ds: ds})
	}
	if runs[0].trace == "" {
		t.Fatal("no faults injected; determinism test is vacuous")
	}
	if runs[0].trace != runs[1].trace {
		t.Errorf("same seed, same workers: fault traces differ:\n--- run 1\n%s\n--- run 2\n%s",
			runs[0].trace, runs[1].trace)
	}
	if runs[0].trace != runs[2].trace {
		t.Errorf("same seed, different workers: fault traces differ:\n--- workers=4\n%s\n--- workers=1\n%s",
			runs[0].trace, runs[2].trace)
	}
	for i := 1; i < len(runs); i++ {
		if !bytes.Equal(runs[0].ds, runs[i].ds) {
			t.Errorf("dataset differs between determinism runs 0 and %d", i)
		}
	}
}

// TestChaosStragglerWatchdog exercises the escape hatch: with a
// generous watchdog the campaign completes normally and the dataset
// still matches the clean run (a timeout that never fires changes
// nothing; one that does costs an incarnation, not data).
func TestChaosStragglerWatchdog(t *testing.T) {
	wantDS, _, _ := runChaosCampaign(t, nil, 2)
	w := testWorld(t)
	plan := chaosTestPlan()
	inj := chaos.NewInjector(7, chaos.Light())
	_, hs := newChaosControlServer(t, inj)
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: 2,
		LeaseBatch: 4, StreamLabel: "chaos-eq", Heartbeat: true,
		Chaos: inj, Straggler: 30e9} // 30s: never fires on loopback
	camp, err := d.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(ds)
	if !bytes.Equal(blob, wantDS) {
		t.Error("watchdog-enabled chaos run dataset differs from clean run")
	}
}
