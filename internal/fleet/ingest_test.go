package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"roamsim/internal/amigo"
)

// mkDNSResult fabricates an uploaded DNS result with a payload that
// encodes its identity, so tests can see WHICH copy of a duplicate
// survived ingestion.
func mkDNSResult(me string, taskID int, resolver string) amigo.Result {
	p, _ := json.Marshal(amigo.DNSPayload{Resolver: resolver, City: "X", Country: "Y", DurationMs: 1})
	return amigo.Result{TaskID: taskID, ME: me, Kind: "dns", Config: "esim", OK: true,
		Payload: p, Uploaded: time.Unix(int64(taskID), 0)}
}

func ingestCampaign(t *testing.T, scheds []MESchedule, results []amigo.Result) (*Dataset, error) {
	t.Helper()
	w := testWorld(t)
	return Ingest(w.Reg, &Campaign{Schedules: scheds, Results: results})
}

// TestIngestEdgeCases table-drives the folder over the control-plane
// edge cases a faulty fleet produces: duplicate (ME, task) uploads,
// out-of-order result pages, empty campaigns, and strays.
func TestIngestEdgeCases(t *testing.T) {
	scheds := []MESchedule{
		{Name: "me-A", ISO: "PAK"},
		{Name: "me-B", ISO: "DEU"},
	}
	cases := []struct {
		name    string
		results []amigo.Result
		wantDNS []string // resolver markers, in canonical order
		wantErr string
	}{
		{
			name:    "empty campaign",
			results: nil,
			wantDNS: nil,
		},
		{
			name: "duplicate uploads keep first arrival",
			results: []amigo.Result{
				mkDNSResult("me-A", 1, "first"),
				mkDNSResult("me-A", 1, "replayed"), // crash replay of the same task
				mkDNSResult("me-A", 2, "two"),
			},
			wantDNS: []string{"first", "two"},
		},
		{
			name: "out of order pages canonicalize",
			results: []amigo.Result{
				mkDNSResult("me-B", 4, "b4"),
				mkDNSResult("me-A", 2, "a2"),
				mkDNSResult("me-B", 3, "b3"),
				mkDNSResult("me-A", 1, "a1"),
			},
			wantDNS: []string{"a1", "a2", "b3", "b4"},
		},
		{
			name: "interleaved duplicates across MEs",
			results: []amigo.Result{
				mkDNSResult("me-B", 7, "b7"),
				mkDNSResult("me-A", 7, "a7"),
				mkDNSResult("me-B", 7, "b7-dup"),
				mkDNSResult("me-A", 8, "a8"),
				mkDNSResult("me-A", 7, "a7-dup"),
			},
			wantDNS: []string{"a7", "a8", "b7"},
		},
		{
			name:    "stray ME rejected",
			results: []amigo.Result{mkDNSResult("me-ghost", 1, "x")},
			wantErr: "outside the campaign",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ds, err := ingestCampaign(t, scheds, c.results)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("err = %v, want %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, r := range ds.DNS {
				got = append(got, r.Payload.Resolver)
			}
			if len(got) != len(c.wantDNS) {
				t.Fatalf("DNS records = %v, want %v", got, c.wantDNS)
			}
			for i := range got {
				if got[i] != c.wantDNS[i] {
					t.Fatalf("DNS records = %v, want %v", got, c.wantDNS)
				}
			}
		})
	}
}

// TestIngestEmptyCampaignRenders: the renderers must cope with a
// campaign that uploaded nothing (every ME crashed out, or the plan was
// empty) without panicking.
func TestIngestEmptyCampaignRenders(t *testing.T) {
	ds, err := ingestCampaign(t, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Countries: []string{"PAK"}}
	if got := Table4(ds, plan).String(); got == "" {
		t.Error("Table4 of empty dataset rendered nothing")
	}
	if got := RTTSummary(ds, plan).String(); got == "" {
		t.Error("RTTSummary of empty dataset rendered nothing")
	}
}

// TestIngestShuffleInvariance: ingesting any permutation of the same
// results yields the byte-identical dataset — the property the fleet's
// paged, interleaved uploads rely on.
func TestIngestShuffleInvariance(t *testing.T) {
	scheds := []MESchedule{{Name: "me-A", ISO: "PAK"}, {Name: "me-B", ISO: "DEU"}}
	results := []amigo.Result{
		mkDNSResult("me-A", 1, "a1"), mkDNSResult("me-A", 2, "a2"),
		mkDNSResult("me-B", 1, "b1"), mkDNSResult("me-B", 2, "b2"),
		{TaskID: 3, ME: "me-A", Kind: "dns", Config: "esim", OK: false, Error: "radio lost"},
	}
	var baseline []byte
	perms := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 4, 0, 3, 1}}
	for _, perm := range perms {
		shuffled := make([]amigo.Result, len(results))
		for i, j := range perm {
			shuffled[i] = results[j]
		}
		ds, err := ingestCampaign(t, scheds, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Failures) != 1 || ds.Failures[0].Error != "radio lost" {
			t.Fatalf("failures = %+v", ds.Failures)
		}
		blob, _ := json.Marshal(ds)
		if baseline == nil {
			baseline = blob
		} else if !bytes.Equal(blob, baseline) {
			t.Fatalf("dataset differs for permutation %v", perm)
		}
	}
}
