package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
	"roamsim/internal/obs"
)

// newObsControlServer is the full control-server wiring with an
// optional metrics registry and optional chaos storm middleware — the
// way cmd/roam-fleet -metrics -chaos assembles it.
func newObsControlServer(t testing.TB, reg *obs.Registry, inj *chaos.Injector) *httptest.Server {
	t.Helper()
	srv := amigo.NewServer(nil, amigo.WithObs(reg))
	mux := http.NewServeMux()
	h := srv.Handler()
	mux.Handle("/v1/", h)
	mux.Handle("/v2/", h)
	mux.Handle("/admin/", srv.AdminHandler())
	var root http.Handler = mux
	if inj != nil {
		root = inj.Middleware(root)
	}
	hs := httptest.NewServer(root)
	t.Cleanup(hs.Close)
	return hs
}

// runObsCampaign runs the chaos-test plan with the registry attached
// everywhere (server, driver, endpoints, netsim) and returns the
// ingested dataset blob plus the server URL for scraping.
func runObsCampaign(t *testing.T, reg *obs.Registry, inj *chaos.Injector, workers int) ([]byte, string) {
	t.Helper()
	w := testWorld(t)
	hs := newObsControlServer(t, reg, inj)
	RegisterNetObs(reg, w.Net)
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: workers,
		LeaseBatch: 4, StreamLabel: "obs-eq", Heartbeat: true, Chaos: inj, Obs: reg}
	camp, err := d.Run(w, chaosTestPlan())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return blob, hs.URL
}

// TestFleetMetricsEquivalence is the tentpole's determinism proof:
// attaching the observability layer must not change a single byte of
// the ingested dataset — across worker counts, and even under heavy
// chaos where instrumentation rides every retry and restart path.
func TestFleetMetricsEquivalence(t *testing.T) {
	baseline, _ := runObsCampaign(t, nil, nil, 4)
	if len(baseline) == 0 {
		t.Fatal("empty baseline dataset")
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("metrics-on/workers=%d", workers), func(t *testing.T) {
			got, _ := runObsCampaign(t, obs.NewRegistry(), nil, workers)
			if !bytes.Equal(got, baseline) {
				t.Error("dataset differs with metrics enabled")
			}
		})
	}
	t.Run("metrics-on/chaos", func(t *testing.T) {
		inj := chaos.NewInjector(7, chaos.Heavy())
		got, _ := runObsCampaign(t, obs.NewRegistry(), inj, 4)
		if !bytes.Equal(got, baseline) {
			t.Errorf("chaos+metrics dataset differs from clean baseline\nfault trace:\n%s", inj.TraceString())
		}
		if len(inj.Events()) == 0 {
			t.Error("chaos run injected zero faults; the test proved nothing")
		}
	})
}

// TestFleetMetricsEndpoint scrapes /admin/metrics over real HTTP after
// a campaign and checks the exposition is well-formed Prometheus text
// covering every instrumented layer, and that /admin/trace serves JSON.
func TestFleetMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	inj := chaos.NewInjector(7, chaos.Heavy())
	_, baseURL := runObsCampaign(t, reg, inj, 4)

	resp, err := http.Get(baseURL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	text := string(body)
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously small exposition (%d lines):\n%s", len(lines), text)
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in line %q: %v", line, err)
		}
	}

	// Every instrumented layer must be represented: the control server,
	// the ME client, the fleet driver, and the network simulator.
	for _, family := range []string{
		"amigo_server_requests_total", "amigo_server_leased_tasks_total",
		"amigo_server_request_duration_ms_bucket", "amigo_server_spool_depth",
		"amigo_endpoint_requests_total", "amigo_endpoint_task_exec_ms_bucket",
		"amigo_endpoint_connections_total",
		"fleet_incarnations_total", "fleet_tasks_executed_total",
		"fleet_chaos_faults_total",
		"netsim_route_cache_hits_total", "netsim_dijkstra_runs_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %s family", family)
		}
	}

	// The campaign actually moved: task counters must be positive.
	var executed float64
	for _, line := range lines {
		if strings.HasPrefix(line, "fleet_tasks_executed_total ") {
			executed, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
		}
	}
	if executed <= 0 {
		t.Errorf("fleet_tasks_executed_total = %v, want > 0", executed)
	}

	resp, err = http.Get(baseURL + "/admin/trace?n=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d", resp.StatusCode)
	}
	var trace struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	for _, e := range trace.Events {
		if e.Seq == 0 || e.Name == "" {
			t.Fatalf("malformed trace event: %+v", e)
		}
	}
}
