package fleet

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"

	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
	"roamsim/internal/obs"
	"roamsim/internal/shard"
	"roamsim/internal/walsink"
)

// ShardedConfig configures a self-hosted sharded control plane.
type ShardedConfig struct {
	// Shards is the shard count (default 1).
	Shards int
	// WALDir, when set, gives every shard a durable walsink WAL under
	// <WALDir>/shard-<i>; empty means in-memory sinks (no durability,
	// no shard-kill survival).
	WALDir string
	// SegmentBytes / SyncBytes tune the per-shard WALs (0 = walsink
	// defaults). Tests set a tiny SegmentBytes to force rotation.
	SegmentBytes int
	SyncBytes    int
	// Chaos, when set, draws the shard-kill schedule: after each
	// accepted upload, chaos.MaybeKillShard decides whether that shard
	// dies. The same injector's Middleware should be wrapped around
	// Handler() by the caller, exactly as with a single server.
	Chaos *chaos.Injector
	// ForceKill kills shard ForceKillShard after its first accepted
	// upload — the deterministic one-shot used by tests and the
	// -kill-shard flag, independent of any chaos schedule.
	ForceKill      bool
	ForceKillShard int
	// Reshards schedules live re-sharding mid-campaign (see
	// ReshardStep); requires WALDir — resharding replays the durable
	// log, so there is nothing to reshard from with in-memory sinks.
	Reshards []ReshardStep
	// CompactAfter, when > 0, compacts a shard's WAL whenever its
	// sealed-segment count reaches CompactAfter, folding the replayed
	// history into one canonical segment and retiring the sources.
	// Requires WALDir.
	CompactAfter int
	// ForceCompactKill kills shard ForceCompactKillShard at its first
	// compaction's post-rename crash point (compacted segment committed,
	// covered sources not yet removed) — the deterministic one-shot
	// analog of ForceKill for torn compactions, independent of any
	// chaos schedule.
	ForceCompactKill      bool
	ForceCompactKillShard int
	// Obs, when set, receives the gateway's routing counters and every
	// shard WAL's metrics (labeled shard=<i>), and backs the gateway's
	// /admin/metrics route.
	Obs *obs.Registry
}

func (c ShardedConfig) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// ShardedFleet self-hosts a horizontally sharded control plane: N
// amigo.Servers (each with its own result sink, optionally a durable
// WAL) behind a consistent-hash shard.Gateway. MEs talk to Handler()
// exactly as they would to one server; the harness also injects the
// shard-kill fault — dropping a shard's server wholesale and bringing
// up a fresh one over the dead shard's WAL — which is what the
// crash-recovery tests drive.
type ShardedFleet struct {
	cfg ShardedConfig
	gw  *shard.Gateway

	mu      sync.Mutex
	servers []*amigo.Server // current server per shard; guarded by mu
	sinks   []amigo.Sink    // survive kills, swapped by reshards; guarded by mu
	wals    []*walsink.Sink // nil entries when WALDir == ""; guarded by mu
	uploads []int           // accepted uploads per shard, this epoch; guarded by mu
	kills   int             // shard kills performed; guarded by mu
	forced  bool            // the ForceKill one-shot has fired; guarded by mu

	epoch         int               // live WAL epoch, bumped per reshard; guarded by mu
	total         int               // accepted uploads fleet-wide, across epochs; guarded by mu
	nextReshard   int               // next cfg.Reshards step to fire; guarded by mu
	resharding    bool              // a reshard is in flight; guarded by mu
	reshards      int               // reshards completed; guarded by mu
	lastReshard   shard.ReshardStats // stats of the latest reshard; guarded by mu
	reshardErr    error             // first reshard failure; guarded by mu
	compactPoints map[int]int       // compaction crash points seen per shard; guarded by mu
	compactForced bool              // the ForceCompactKill one-shot has fired; guarded by mu
	compactKills  int               // compact-kills performed; guarded by mu
	compactErr    error             // first non-crash compaction failure; guarded by mu
	wg            sync.WaitGroup    // in-flight reshard goroutine
}

// NewShardedFleet builds the shard servers, their sinks, and the
// gateway.
func NewShardedFleet(cfg ShardedConfig) (*ShardedFleet, error) {
	n := cfg.shards()
	epoch := 0
	if cfg.WALDir == "" {
		if len(cfg.Reshards) > 0 {
			return nil, fmt.Errorf("fleet: Reshards requires WALDir — resharding replays the durable log")
		}
		if cfg.CompactAfter > 0 {
			return nil, fmt.Errorf("fleet: CompactAfter requires WALDir")
		}
	} else {
		// Manifest-aware restart: an existing deployment may have
		// resharded, so the manifest — not the config — says which epoch
		// and shard count are live. A fresh directory gets the epoch-0
		// manifest written up front so cold recovery always has it.
		m, ok, err := readWALManifest(cfg.WALDir)
		if err != nil {
			return nil, err
		}
		if ok {
			epoch, n = m.Epoch, m.Shards
		} else if err := writeWALManifest(cfg.WALDir, walManifest{Epoch: 0, Shards: n}); err != nil {
			return nil, err
		}
	}
	for _, step := range cfg.Reshards {
		if step.Shards < 1 {
			return nil, fmt.Errorf("fleet: reshard step to %d shards", step.Shards)
		}
	}
	f := &ShardedFleet{
		cfg:           cfg,
		servers:       make([]*amigo.Server, n),
		sinks:         make([]amigo.Sink, n),
		wals:          make([]*walsink.Sink, n),
		uploads:       make([]int, n),
		epoch:         epoch,
		compactPoints: map[int]int{},
	}
	for i := 0; i < n; i++ {
		if cfg.WALDir != "" {
			wal, err := walsink.Open(EpochWALDir(cfg.WALDir, epoch, i), walsink.Options{
				SegmentBytes: cfg.SegmentBytes,
				SyncBytes:    cfg.SyncBytes,
				Obs:          cfg.Obs,
				Labels:       walLabels(i, epoch),
				CompactCrash: f.compactCrashFn(i),
			})
			if err != nil {
				f.Close()
				return nil, err
			}
			f.wals[i] = wal
			f.sinks[i] = wal
		} else {
			f.sinks[i] = amigo.NewMemorySink()
		}
		// Shard servers carry no registry of their own: the gateway and
		// the WALs own the sharded deployment's metrics, and a replacement
		// server after a kill must not re-register colliding gauges.
		f.servers[i] = amigo.NewServer(nil, amigo.WithSink(f.sinks[i]))
	}
	backends := make([]http.Handler, n)
	for i := 0; i < n; i++ {
		backends[i] = f.backend(i, f.servers[i])
	}
	f.gw = shard.NewGateway(backends, shard.Options{Obs: cfg.Obs})
	return f, nil
}

// ShardWALDir is the canonical WAL directory for one shard of a
// sharded deployment rooted at dir.
func ShardWALDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

// Handler is the fleet-facing control plane: the gateway. Wrap it in
// chaos middleware (and an HTTP server) exactly as with a single amigo
// server.
func (f *ShardedFleet) Handler() http.Handler { return f.gw }

// Gateway exposes the underlying gateway.
func (f *ShardedFleet) Gateway() *shard.Gateway { return f.gw }

// Ring exposes shard placement, for benchmarks that schedule directly
// against shard servers.
func (f *ShardedFleet) Ring() *shard.Ring { return f.gw.Ring() }

// Server returns shard i's current server (the replacement, after a
// kill).
func (f *ShardedFleet) Server(i int) *amigo.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.servers[i]
}

// WAL returns shard i's WAL sink, or nil for in-memory deployments.
func (f *ShardedFleet) WAL(i int) *walsink.Sink {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wals[i]
}

// Kills reports how many shard kills have been performed.
func (f *ShardedFleet) Kills() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.kills
}

// Shards reports the current shard count — the original config's until
// a reshard changes it.
func (f *ShardedFleet) Shards() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.servers)
}

// Epoch reports the live WAL epoch (0 until the first reshard).
func (f *ShardedFleet) Epoch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Reshards reports how many reshards completed and the stats of the
// latest one.
func (f *ShardedFleet) Reshards() (int, shard.ReshardStats) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reshards, f.lastReshard
}

// ReshardErr returns the first reshard failure, if any. A failed
// reshard leaves the deployment on its previous epoch, still serving.
func (f *ShardedFleet) ReshardErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reshardErr
}

// CompactKills reports how many shards died at an injected compaction
// crash point.
func (f *ShardedFleet) CompactKills() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.compactKills
}

// CompactErr returns the first non-crash compaction failure, if any.
func (f *ShardedFleet) CompactErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.compactErr
}

// WaitIdle blocks until no reshard is in flight. Campaign harnesses
// call it before asserting on WAL or topology state: the last upload
// of a run may have fired a reshard that is still swapping.
func (f *ShardedFleet) WaitIdle() { f.wg.Wait() }

// backend wraps a shard server's mounted handler with the upload
// counter that drives the shard-kill fault: kills fire after a
// successful upload response, which is the interesting moment — the ME
// believes its results are safe, and only the WAL still has them.
func (f *ShardedFleet) backend(i int, srv *amigo.Server) http.Handler {
	mounted := shard.Mount(srv.Handler(), srv.AdminHandler())
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || !isUploadPath(r.URL.Path) {
			mounted.ServeHTTP(w, r)
			return
		}
		sw := &statusRecorder{ResponseWriter: w}
		mounted.ServeHTTP(sw, r)
		if sw.code < 300 {
			f.afterUpload(i)
		}
	})
}

func isUploadPath(path string) bool {
	return path == "/v1/results" || path == "/v2/results" || path == "/v3/results"
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

// afterUpload counts shard i's accepted upload and runs the
// upload-triggered lifecycle machinery in a fixed order: maybe the
// shard dies (ForceKill one-shot or the chaos schedule), maybe its WAL
// compacts (CompactAfter threshold — which may itself die at an
// injected crash point and kill the shard), and maybe the next
// scheduled reshard fires (on its own goroutine; see maybeReshard).
func (f *ShardedFleet) afterUpload(i int) {
	f.mu.Lock()
	f.uploads[i]++
	f.total++
	n := f.uploads[i]
	total := f.total
	wal := f.wals[i]
	force := f.cfg.ForceKill && f.cfg.ForceKillShard == i && !f.forced
	if force {
		f.forced = true
	}
	f.mu.Unlock()
	if force || (f.cfg.Chaos != nil && f.cfg.Chaos.MaybeKillShard(i, n)) {
		f.KillShard(i)
	}
	f.maybeCompact(i, wal)
	f.maybeReshard(total)
}

// KillShard simulates shard i's process dying: its server — registry,
// task queues, ack cursors, idempotency keys, spool — is dropped
// wholesale and a fresh server is brought up over the same sink. For a
// WAL-backed shard that means every result drained to disk survives;
// everything in memory is gone, and MEs rediscover the shard via
// "unknown ME" responses and re-register (see Driver.runME).
//
// In-flight requests against the old server finish against it and
// drain into the shared sink; new requests route to the replacement.
func (f *ShardedFleet) KillShard(i int) {
	f.mu.Lock()
	fresh := amigo.NewServer(nil, amigo.WithSink(f.sinks[i]))
	f.servers[i] = fresh
	f.kills++
	f.mu.Unlock()
	f.gw.SetBackend(i, f.backend(i, fresh))
}

// Close waits out any in-flight reshard, then syncs and closes every
// WAL. The first error wins; in-memory deployments never error.
func (f *ShardedFleet) Close() error {
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for _, wal := range f.wals {
		if wal == nil {
			continue
		}
		if err := wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReplayWALs reopens the WALs of a sharded deployment rooted at dir
// and streams every durable result back, concatenated in shard order —
// the post-crash recovery read. The sinks are opened read-only in
// spirit (nothing is appended) and closed before returning.
func ReplayWALs(dir string, shards int) ([]amigo.Result, error) {
	var out []amigo.Result
	var err error
	for i := 0; i < shards; i++ {
		if out, err = replayDirInto(out, ShardWALDir(dir, i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
