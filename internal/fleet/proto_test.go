package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
)

// runProtoCampaign is runChaosCampaign with the endpoint protocol
// pinned: the same plan, seed, and stream label driven over the v2
// JSON codec or the v3 binary codec, clean or under fault injection.
func runProtoCampaign(t *testing.T, proto string, inj *chaos.Injector, workers int) (dsBlob []byte, table4, rtt string) {
	t.Helper()
	w := testWorld(t)
	plan := chaosTestPlan()
	var hs *httptest.Server
	if inj != nil {
		_, hs = newChaosControlServer(t, inj)
	} else {
		_, hs = newControlServer(t)
	}
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: workers,
		LeaseBatch: 4, StreamLabel: "chaos-eq", Heartbeat: true,
		Chaos: inj, Proto: proto}
	camp, err := d.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return blob, Table4(ds, plan).String(), RTTSummary(ds, plan).String()
}

// TestFleetProtoEquivalence is the codec differential test: the same
// seeded campaign must ingest the byte-identical dataset, Table 4, and
// RTT summary whether the fleet talks v2 JSON or v3 binary frames,
// serially or in parallel, on a clean network or under chaos.Heavy.
// The wire format is an encoding detail; it must never change data.
func TestFleetProtoEquivalence(t *testing.T) {
	wantDS, wantT4, wantRTT := runProtoCampaign(t, amigo.ProtoV2, nil, 1)
	if len(wantDS) == 0 || wantT4 == "" || wantRTT == "" {
		t.Fatal("empty baseline artifacts")
	}
	cases := []struct {
		proto   string
		chaos   bool
		workers int
	}{
		{amigo.ProtoV3, false, 1},
		{amigo.ProtoV3, false, 4},
		{amigo.ProtoV2, false, 4},
		{amigo.ProtoV2, true, 4},
		{amigo.ProtoV3, true, 1},
		{amigo.ProtoV3, true, 4},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/chaos=%v/workers=%d", tc.proto, tc.chaos, tc.workers)
		t.Run(name, func(t *testing.T) {
			var inj *chaos.Injector
			if tc.chaos {
				inj = chaos.NewInjector(7, chaos.Heavy())
			}
			gotDS, gotT4, gotRTT := runProtoCampaign(t, tc.proto, inj, tc.workers)
			if !bytes.Equal(gotDS, wantDS) {
				msg := "dataset differs from v2 serial clean baseline"
				if inj != nil {
					msg += "\nfault trace:\n" + inj.TraceString()
				}
				t.Error(msg)
			}
			if gotT4 != wantT4 {
				t.Errorf("Table 4 differs:\ngot:\n%s\nwant:\n%s", gotT4, wantT4)
			}
			if gotRTT != wantRTT {
				t.Errorf("RTT summary differs:\ngot:\n%s\nwant:\n%s", gotRTT, wantRTT)
			}
			if inj != nil && len(inj.Events()) == 0 {
				t.Error("chaos run injected zero faults; the test proved nothing")
			}
		})
	}
}

// TestDriverRejectsUnknownProto pins the flag-validation contract so a
// typo'd -proto fails fast instead of silently running v2.
func TestDriverRejectsUnknownProto(t *testing.T) {
	w := testWorld(t)
	_, hs := newControlServer(t)
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Proto: "v9"}
	if _, err := d.Run(w, chaosTestPlan()); err == nil {
		t.Fatal("Run accepted unknown protocol v9")
	}
}
