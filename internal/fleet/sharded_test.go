package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
	"roamsim/internal/obs"
	"roamsim/internal/shard"
	"roamsim/internal/vclock"
)

// runShardedCampaign runs the chaos test plan against a self-hosted
// sharded control plane and returns the ingested artifacts plus the
// harness and driver for post-run assertions. The WAL lives in a test
// tempdir with a tiny segment size so rotation is exercised.
func runShardedCampaign(t *testing.T, proto string, cfg ShardedConfig, inj *chaos.Injector, reg *obs.Registry, workers int, clk vclock.Clock) (dsBlob []byte, table4, rtt string, f *ShardedFleet) {
	t.Helper()
	w := testWorld(t)
	plan := chaosTestPlan()
	f, err := NewShardedFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	var handler = f.Handler()
	if inj != nil {
		handler = inj.Middleware(handler)
	}
	hs := httptest.NewServer(handler)
	t.Cleanup(hs.Close)
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: workers,
		LeaseBatch: 4, StreamLabel: "chaos-eq", Heartbeat: true,
		Chaos: inj, Proto: proto, Obs: reg, Clock: clk}
	camp, err := d.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return blob, Table4(ds, plan).String(), RTTSummary(ds, plan).String(), f
}

// TestShardedFleetEquivalence is the sharding differential test: the
// same seeded campaign, driven over v2 JSON or v3 binary frames,
// against 1 shard or 4 shards with durable WAL sinks, must ingest the
// byte-identical dataset, Table 4, and RTT summary as the clean
// single-server run. Placement is a pure function of ME name, so
// sharding — like the wire codec — is a deployment detail that must
// never change data.
func TestShardedFleetEquivalence(t *testing.T) {
	wantDS, wantT4, wantRTT := runProtoCampaign(t, amigo.ProtoV2, nil, 1)
	if len(wantDS) == 0 || wantT4 == "" || wantRTT == "" {
		t.Fatal("empty baseline artifacts")
	}
	for _, proto := range []string{amigo.ProtoV2, amigo.ProtoV3} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", proto, shards), func(t *testing.T) {
				cfg := ShardedConfig{
					Shards: shards, WALDir: t.TempDir(),
					SegmentBytes: 4096, // force rotation mid-campaign
				}
				gotDS, gotT4, gotRTT, f := runShardedCampaign(t, proto, cfg, nil, nil, 4, nil)
				if !bytes.Equal(gotDS, wantDS) {
					t.Error("sharded dataset differs from single-server baseline")
				}
				if gotT4 != wantT4 {
					t.Errorf("Table 4 differs:\nsharded:\n%s\nbaseline:\n%s", gotT4, wantT4)
				}
				if gotRTT != wantRTT {
					t.Errorf("RTT summary differs:\nsharded:\n%s\nbaseline:\n%s", gotRTT, wantRTT)
				}
				// The WALs must actually have been written and rotated, or
				// the durability half of this test proved nothing.
				records, segments := 0, 0
				for i := 0; i < shards; i++ {
					wal := f.WAL(i)
					if err := wal.Err(); err != nil {
						t.Fatalf("shard %d WAL error: %v", i, err)
					}
					records += wal.Len()
					n, _ := wal.Segments()
					segments += n
				}
				if records == 0 {
					t.Error("no results reached any WAL")
				}
				if segments <= shards {
					t.Errorf("no WAL rotated (%d segments over %d shards) — shrink SegmentBytes", segments, shards)
				}
			})
		}
	}
}

// TestShardCrashRecovery kills control-plane shards mid-campaign —
// dropping their registries, queues and idempotency state wholesale —
// under full chaos besides, and requires (a) the campaign still
// ingests the byte-identical dataset (zero lost, zero duplicated
// results), and (b) replaying the surviving WALs alone, as a cold
// post-crash recovery would, rebuilds that same dataset.
func TestShardCrashRecovery(t *testing.T) {
	runShardCrashRecoveryCases(t, func() vclock.Clock { return nil })
}

// TestShardCrashRecoveryVirtual re-runs the full crash-recovery matrix
// with the fleet driver on a virtual clock: WAL replay, shard-kill
// recovery, and cold rebuild are control-plane durability mechanics —
// they must be clock-agnostic, surviving a campaign whose waits were
// jumped instead of slept.
func TestShardCrashRecoveryVirtual(t *testing.T) {
	runShardCrashRecoveryCases(t, func() vclock.Clock { return vclock.NewVirtual() })
}

func runShardCrashRecoveryCases(t *testing.T, mkClock func() vclock.Clock) {
	wantDS, wantT4, _ := runProtoCampaign(t, amigo.ProtoV2, nil, 1)

	cases := []struct {
		name string
		cfg  chaos.Config
		mod  func(*ShardedConfig)
	}{
		{
			// Deterministic one-shot: the busiest moment variant — a shard
			// dies right after acknowledging its first upload.
			name: "force-kill",
			cfg:  chaos.Config{},
			mod: func(c *ShardedConfig) {
				c.ForceKill = true
				// Kill the shard that actually owns an ME in this small
				// plan; placement is a pure function of the name.
				c.ForceKillShard = shard.NewRing(c.Shards).Shard("me-PAK-0")
			},
		},
		{
			// Seeded schedule under heavy chaos: kills land wherever the
			// stream puts them, on top of resets, storms and ME crashes.
			name: "chaos-schedule",
			cfg: func() chaos.Config {
				c := chaos.Heavy()
				c.ShardKill = 0.6
				c.MaxShardKills = 2
				return c
			}(),
			mod: func(c *ShardedConfig) {},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var inj *chaos.Injector
			if tc.cfg != (chaos.Config{}) {
				inj = chaos.NewInjector(7, tc.cfg)
			}
			reg := obs.NewRegistry()
			walDir := t.TempDir()
			cfg := ShardedConfig{Shards: 4, WALDir: walDir, SegmentBytes: 4096, Chaos: inj}
			tc.mod(&cfg)
			gotDS, gotT4, _, f := runShardedCampaign(t, amigo.ProtoV3, cfg, inj, reg, 4, mkClock())

			if f.Kills() == 0 {
				t.Fatal("no shard was killed; the test proved nothing")
			}
			if got := reg.Counter("fleet_shard_recoveries_total").Value(); got == 0 {
				t.Error("no ME ran shard recovery despite a kill")
			}
			if !bytes.Equal(gotDS, wantDS) {
				t.Error("dataset after shard kill differs from clean single-server baseline")
			}
			if gotT4 != wantT4 {
				t.Errorf("Table 4 after shard kill differs:\ngot:\n%s\nwant:\n%s", gotT4, wantT4)
			}

			// Cold recovery: close everything, reopen the WALs from disk,
			// and rebuild the dataset from the replay alone.
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			replayed, err := ReplayWALs(walDir, cfg.Shards)
			if err != nil {
				t.Fatal(err)
			}
			w := testWorld(t)
			plan := chaosTestPlan()
			camp := &Campaign{Plan: plan, Schedules: plan.Schedules(), Results: replayed}
			ds, err := Ingest(w.Reg, camp)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := json.Marshal(ds)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, wantDS) {
				t.Error("dataset rebuilt from WAL replay differs from baseline")
			}
		})
	}
}

// TestShardKillDeterminism pins what IS deterministic about shard
// kills. The kill schedule keys on (shard, upload-index); with one
// worker the fleet's upload order is itself deterministic, so the full
// fault trace — kills included — replays exactly. With concurrent
// workers the Nth upload at a shard depends on goroutine interleaving,
// so the kill lands at a varying campaign moment; the dataset must be
// byte-identical regardless.
func TestShardKillDeterminism(t *testing.T) {
	mkInj := func() *chaos.Injector {
		cfg := chaos.Heavy()
		cfg.ShardKill = 0.6
		cfg.MaxShardKills = 2
		return chaos.NewInjector(7, cfg)
	}
	var traces []string
	var blobs [][]byte
	for _, workers := range []int{1, 1, 4} {
		inj := mkInj()
		shardCfg := ShardedConfig{Shards: 4, WALDir: t.TempDir(), Chaos: inj}
		blob, _, _, _ := runShardedCampaign(t, amigo.ProtoV2, shardCfg, inj, nil, workers, nil)
		traces = append(traces, inj.TraceString())
		blobs = append(blobs, blob)
	}
	if traces[0] != traces[1] {
		t.Errorf("serial fault traces diverged across identical runs:\n--- run 0\n%s\n--- run 1\n%s", traces[0], traces[1])
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Error("serial datasets diverged across identical runs")
	}
	if !bytes.Equal(blobs[0], blobs[2]) {
		t.Error("dataset changed with worker count under shard kills")
	}
}
