// Package fleet orchestrates fleet-scale AmiGo measurement campaigns
// over the real HTTP control plane. The paper's testbed topped out at
// ten rooted phones; fleet drives thousands of concurrent simulated
// measurement endpoints (MEs) through the same register → lease →
// execute → upload protocol (internal/amigo, v2 batch endpoints) and
// folds the uploaded payloads back into core dataset records, so Table
// 4 counts and Figure 11-style RTT aggregates can be regenerated from
// fleet output and cross-checked against the in-process campaign.
//
// The pieces:
//
//   - A Plan expands (countries × SIM configurations × task kinds ×
//     reps) into one deterministic task schedule per ME (Schedules).
//   - A Driver runs every ME schedule against a live control server on
//     a bounded worker pool. Per-ME random streams are pre-forked
//     serially in canonical schedule order before any worker starts
//     (the rng pre-fork-then-spawn discipline), and each ME executes
//     its own tasks in queue order, so the uploaded payloads are
//     byte-identical for any worker count.
//   - Ingest parses the uploaded amigo payloads into typed dataset
//     records (re-demarcating traceroutes with internal/core) after
//     sorting results into canonical (ME, task) order, making the
//     ingested dataset deterministic even though uploads interleave.
//
// RunInProcess executes the same plan serially through the v1
// one-task-per-poll protocol — the shape of the paper's original
// campaign — which is what the equivalence tests compare against.
package fleet

import (
	"fmt"

	"roamsim/internal/amigo"
)

// DeviceCountries are the paper's ten device-campaign deployments in
// display order (Table 4).
var DeviceCountries = []string{"GEO", "DEU", "KOR", "PAK", "QAT", "SAU", "ESP", "THA", "ARE", "GBR"}

// DeviceCampaignTools are Table 4's nine instrumentation columns as
// task templates (Config is filled per schedule entry).
var DeviceCampaignTools = []amigo.Task{
	{Kind: "speedtest"},
	{Kind: "mtr", Target: "Facebook"},
	{Kind: "mtr", Target: "Google"}, // YouTube also resolves to Google edges
	{Kind: "cdn", Target: "Cloudflare"},
	{Kind: "cdn", Target: "Google CDN"},
	{Kind: "cdn", Target: "jQuery CDN"},
	{Kind: "cdn", Target: "jsDelivr"},
	{Kind: "cdn", Target: "Microsoft Ajax"},
	{Kind: "video"},
}

// Plan describes a campaign: which countries to deploy MEs in, how many
// MEs per country, and the per-ME task schedule as task templates ×
// SIM configurations × reps.
type Plan struct {
	// Countries lists deployment countries (ISO3). Default: the
	// paper's ten device-campaign countries.
	Countries []string
	// MEsPerCountry is the number of simulated MEs per country
	// (default 1; the paper had one phone per country).
	MEsPerCountry int
	// Tasks are the base task templates (Kind + Target). Default:
	// Table 4's nine tools.
	Tasks []amigo.Task
	// Configs are the SIM profiles to measure ("sim", "esim").
	// Default: both, as in the device campaign.
	Configs []string
	// Reps repeats each (task, config) pair (default 1).
	Reps int
}

// DeviceCampaignPlan mirrors the paper's Table 4 schedule: ten
// countries, one ME each, nine tools × both configurations × four reps.
func DeviceCampaignPlan() Plan {
	return Plan{
		Countries:     DeviceCountries,
		MEsPerCountry: 1,
		Tasks:         DeviceCampaignTools,
		Configs:       []string{"sim", "esim"},
		Reps:          4,
	}
}

func (p Plan) withDefaults() Plan {
	if len(p.Countries) == 0 {
		p.Countries = DeviceCountries
	}
	if p.MEsPerCountry <= 0 {
		p.MEsPerCountry = 1
	}
	if len(p.Tasks) == 0 {
		p.Tasks = DeviceCampaignTools
	}
	if len(p.Configs) == 0 {
		p.Configs = []string{"sim", "esim"}
	}
	if p.Reps <= 0 {
		p.Reps = 1
	}
	return p
}

// TasksPerME is the schedule length of one ME.
func (p Plan) TasksPerME() int {
	p = p.withDefaults()
	return len(p.Tasks) * len(p.Configs) * p.Reps
}

// MECount is the total fleet size.
func (p Plan) MECount() int {
	p = p.withDefaults()
	return len(p.Countries) * p.MEsPerCountry
}

// MESchedule is the expanded task list for one ME.
type MESchedule struct {
	// Name is the ME's wire identity ("me-PAK", "me-PAK-3").
	Name string
	// Label is the ME's rng fork label; with one ME per country it is
	// the bare ISO code, matching the in-process campaign's forks.
	Label string
	// ISO is the deployment country.
	ISO string
	// Tasks is the full schedule in execution order.
	Tasks []amigo.Task
}

// Schedules expands the plan into per-ME schedules in canonical order:
// countries in plan order, ME indices within a country, and per ME the
// tasks as Tasks × Configs × Reps (task kind outermost, rep innermost —
// the same nesting the paper's device campaign used).
func (p Plan) Schedules() []MESchedule {
	p = p.withDefaults()
	out := make([]MESchedule, 0, p.MECount())
	for _, iso := range p.Countries {
		for m := 0; m < p.MEsPerCountry; m++ {
			sched := MESchedule{Name: "me-" + iso, Label: iso, ISO: iso}
			if p.MEsPerCountry > 1 {
				sched.Name = fmt.Sprintf("me-%s-%d", iso, m)
				sched.Label = fmt.Sprintf("%s/%d", iso, m)
			}
			tasks := make([]amigo.Task, 0, p.TasksPerME())
			for _, base := range p.Tasks {
				for _, config := range p.Configs {
					for rep := 0; rep < p.Reps; rep++ {
						t := base
						t.Config = config
						tasks = append(tasks, t)
					}
				}
			}
			sched.Tasks = tasks
			out = append(out, sched)
		}
	}
	return out
}
