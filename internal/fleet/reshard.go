package fleet

// Live resharding and WAL lifecycle for the sharded control plane.
//
// A reshard rebuilds the deployment onto a different shard count while
// the campaign keeps running: the gateway is paused (in-flight requests
// drain, new ones block), every durable result is replayed out of the
// current WAL set and re-routed into a fresh per-shard WAL set under
// the next epoch directory, fresh servers are brought up over the new
// WALs, and the gateway resumes on the new ring. MEs rediscover their
// (new) shards through the same "unknown ME" re-registration path a
// shard kill exercises. Placement is a pure function of (ME, shard
// count), so the post-reshard WAL set is byte-equivalent to what a
// campaign run at the new count would have produced — which is what
// TestReshardEquivalence pins.
//
// Epoch layout on disk, rooted at ShardedConfig.WALDir:
//
//	shard-<i>/...                 epoch 0 (the layout before resharding existed)
//	epoch-<e>/shard-<i>/...       epoch e >= 1
//	wal-manifest.json             {"epoch": e, "shards": n} — the live set
//
// The manifest is written with a tmp+rename so readers never observe a
// torn pointer; it is only advanced AFTER the new epoch's WALs are
// fully written and synced, so a crash at any moment leaves it naming
// a complete, replayable WAL set.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"roamsim/internal/amigo"
	"roamsim/internal/obs"
	"roamsim/internal/shard"
	"roamsim/internal/walsink"
)

// ReshardStep schedules one live reshard: once the fleet has accepted
// AfterUploads result uploads in total (across all shards and epochs),
// the control plane is rebuilt onto Shards shards. Steps fire in
// declared order; a step whose threshold has passed while an earlier
// reshard was still in flight fires on the next accepted upload.
type ReshardStep struct {
	AfterUploads int
	Shards       int
}

// walManifest pins the live WAL epoch for a sharded deployment: which
// epoch directory holds the authoritative WAL set and how many shards
// it has. Cold recovery (ReplayLatestWALs) and manifest-aware restarts
// (NewShardedFleet over an existing WALDir) follow it.
type walManifest struct {
	Epoch  int `json:"epoch"`
	Shards int `json:"shards"`
}

func manifestPath(root string) string { return filepath.Join(root, "wal-manifest.json") }

// writeWALManifest atomically replaces the manifest: write a tmp file,
// fsync it, rename over the live name. Advancing the pointer is the
// commit point of a reshard.
func writeWALManifest(root string, m walManifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return err
	}
	tmp := manifestPath(root) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifestPath(root)); err != nil {
		return err
	}
	return fsyncDir(root)
}

// fsyncDir makes the manifest rename durable. Without it the rename —
// the commit point of the whole reshard — can itself vanish on power
// loss, resurrecting the previous epoch under shards that already
// re-homed their records.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func readWALManifest(root string) (walManifest, bool, error) {
	b, err := os.ReadFile(manifestPath(root))
	if errors.Is(err, os.ErrNotExist) {
		return walManifest{}, false, nil
	}
	if err != nil {
		return walManifest{}, false, err
	}
	var m walManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return walManifest{}, false, fmt.Errorf("fleet: wal-manifest.json: %w", err)
	}
	if m.Shards < 1 || m.Epoch < 0 {
		return walManifest{}, false, fmt.Errorf("fleet: wal-manifest.json: implausible epoch=%d shards=%d", m.Epoch, m.Shards)
	}
	return m, true, nil
}

// EpochWALDir is the WAL directory for one shard of epoch `epoch` of a
// sharded deployment rooted at root. Epoch 0 keeps the original flat
// shard-<i> layout, so pre-reshard deployments stay readable in place.
func EpochWALDir(root string, epoch, i int) string {
	if epoch == 0 {
		return ShardWALDir(root, i)
	}
	return filepath.Join(root, fmt.Sprintf("epoch-%d", epoch), fmt.Sprintf("shard-%d", i))
}

// LatestWALSet resolves which WAL set is live under root: the
// manifest's (epoch, shards) when one exists, else the pre-manifest
// epoch-0 layout with as many shard-<i> directories as are present.
func LatestWALSet(root string) (epoch, shards int, err error) {
	m, ok, err := readWALManifest(root)
	if err != nil {
		return 0, 0, err
	}
	if ok {
		return m.Epoch, m.Shards, nil
	}
	n := 0
	for {
		if _, err := os.Stat(ShardWALDir(root, n)); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("fleet: no wal-manifest.json and no shard-0 WAL under %s", root)
	}
	return 0, n, nil
}

// ReplayLatestWALs reopens the live WAL set under root — following the
// manifest across reshard epochs — and streams every durable result
// back in shard order: the cold post-crash recovery read for a
// deployment that may have resharded and compacted underway.
func ReplayLatestWALs(root string) ([]amigo.Result, error) {
	epoch, shards, err := LatestWALSet(root)
	if err != nil {
		return nil, err
	}
	var out []amigo.Result
	for i := 0; i < shards; i++ {
		if out, err = replayDirInto(out, EpochWALDir(root, epoch, i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// replayDirInto opens one shard WAL read-only in spirit, appends its
// full replay to out, and closes it.
func replayDirInto(out []amigo.Result, dir string) ([]amigo.Result, error) {
	wal, err := walsink.Open(dir, walsink.Options{})
	if err != nil {
		return nil, err
	}
	_, err = wal.Replay(0, func(r amigo.Result) error {
		out = append(out, r)
		return nil
	})
	closeErr := wal.Close()
	if err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return out, nil
}

// walLabels are the obs labels for one shard WAL. Epoch 0 keeps the
// bare shard=<i> label set earlier releases registered; later epochs
// add epoch=<e> so a resharded deployment's fresh WALs never collide
// with the retired epoch's registered metrics.
func walLabels(i, epoch int) []obs.Label {
	ls := []obs.Label{obs.L("shard", strconv.Itoa(i))}
	if epoch > 0 {
		ls = append(ls, obs.L("epoch", strconv.Itoa(epoch)))
	}
	return ls
}

// compactCrashFn builds shard i's compaction crash hook: walsink calls
// it at each crash point a Compact exposes, and a true return aborts
// the compaction right there, modeling the process dying mid-compact.
// The deterministic ForceCompactKill one-shot fires at the renamed
// point — after the compacted segment is committed in place, before
// the source segments it covers are removed — so recovery has to
// arbitrate between a complete artifact and its still-present sources.
// The chaos injector draws the rest from its seeded (shard, point)
// stream under the fleet-wide budget, so chaos runs also hit the
// staged-tmp point.
func (f *ShardedFleet) compactCrashFn(i int) func(string) bool {
	return func(stage string) bool {
		f.mu.Lock()
		f.compactPoints[i]++
		n := f.compactPoints[i]
		force := f.cfg.ForceCompactKill && f.cfg.ForceCompactKillShard == i &&
			!f.compactForced && stage == walsink.CompactRenamed
		if force {
			f.compactForced = true
		}
		f.mu.Unlock()
		if force {
			return true
		}
		return f.cfg.Chaos != nil && f.cfg.Chaos.MaybeKillCompaction(i, n)
	}
}

// maybeCompact compacts shard i's WAL once its sealed-segment count
// reaches CompactAfter. It runs synchronously inside the upload request
// on purpose: the gateway's Pause() drains in-flight requests, so a
// reshard can never swap the WAL set out from under a running
// compaction. A compaction that dies at an injected crash point
// (ErrCompactCrashed) kills the shard — same-process-death semantics as
// a shard kill, over the SAME sink: the live walsink already holds
// every acked append, and only a cold reopen ever re-resolves the
// half-finished artifacts it left on disk.
func (f *ShardedFleet) maybeCompact(i int, wal *walsink.Sink) {
	if f.cfg.CompactAfter <= 0 || wal == nil {
		return
	}
	if n, _ := wal.Segments(); n-1 < f.cfg.CompactAfter {
		return
	}
	if _, err := wal.Compact(wal.Len()); err != nil {
		if errors.Is(err, walsink.ErrCompactCrashed) {
			f.mu.Lock()
			f.compactKills++
			f.mu.Unlock()
			f.KillShard(i)
			return
		}
		// A failed compaction loses nothing — the source segments stay
		// authoritative. Record the first error and march on.
		f.mu.Lock()
		if f.compactErr == nil {
			f.compactErr = err
		}
		f.mu.Unlock()
	}
}

// maybeReshard fires the next scheduled reshard step once the
// fleet-wide accepted-upload count crosses its threshold. The reshard
// itself runs on its own goroutine: Pause() blocks until every
// in-flight request drains — including the upload that tripped the
// threshold — so firing it synchronously from the request path would
// deadlock the gateway on itself.
func (f *ShardedFleet) maybeReshard(total int) {
	f.mu.Lock()
	fire := !f.resharding && f.nextReshard < len(f.cfg.Reshards) &&
		total >= f.cfg.Reshards[f.nextReshard].AfterUploads
	var step ReshardStep
	if fire {
		step = f.cfg.Reshards[f.nextReshard]
		f.nextReshard++
		f.resharding = true
		f.wg.Add(1)
	}
	f.mu.Unlock()
	if fire {
		go f.doReshard(step.Shards)
	}
}

// doReshard executes one live reshard: quiesce, copy, commit, swap.
func (f *ShardedFleet) doReshard(n int) {
	defer f.wg.Done()
	f.gw.Pause()
	defer func() {
		f.mu.Lock()
		f.resharding = false
		f.mu.Unlock()
	}()
	// On any failure the deployment stays on its current epoch: record
	// the error and resume the unchanged topology — a failed reshard
	// must degrade to "nothing happened", never to a dead gateway.
	fail := func(err error) {
		f.mu.Lock()
		if f.reshardErr == nil {
			f.reshardErr = err
		}
		f.mu.Unlock()
		f.gw.Resume(f.gw.Backends())
	}

	f.mu.Lock()
	src := append([]*walsink.Sink(nil), f.wals...)
	epoch := f.epoch + 1
	f.mu.Unlock()

	closeAll := func(ws []*walsink.Sink) {
		for _, w := range ws {
			if w != nil {
				w.Close()
			}
		}
	}
	dst := make([]*walsink.Sink, n)
	for i := range dst {
		w, err := walsink.Open(EpochWALDir(f.cfg.WALDir, epoch, i), walsink.Options{
			SegmentBytes: f.cfg.SegmentBytes,
			SyncBytes:    f.cfg.SyncBytes,
			Obs:          f.cfg.Obs,
			Labels:       walLabels(i, epoch),
			CompactCrash: f.compactCrashFn(i),
		})
		if err != nil {
			closeAll(dst)
			fail(err)
			return
		}
		dst[i] = w
	}
	st, err := shard.Reshard(src, dst)
	if err != nil {
		closeAll(dst)
		fail(err)
		return
	}
	// Commit: the new epoch's WALs are complete and synced; advance the
	// manifest pointer. A crash before this line recovers onto the old
	// epoch, after it onto the new — both complete.
	if err := writeWALManifest(f.cfg.WALDir, walManifest{Epoch: epoch, Shards: n}); err != nil {
		closeAll(dst)
		fail(err)
		return
	}

	servers := make([]*amigo.Server, n)
	sinks := make([]amigo.Sink, n)
	backends := make([]http.Handler, n)
	for i := range servers {
		servers[i] = amigo.NewServer(nil, amigo.WithSink(dst[i]))
		sinks[i] = dst[i]
		backends[i] = f.backend(i, servers[i])
	}
	f.mu.Lock()
	old := f.wals
	f.servers, f.sinks, f.wals = servers, sinks, dst
	f.uploads = make([]int, n)
	f.epoch = epoch
	f.reshards++
	f.lastReshard = st
	f.mu.Unlock()
	f.gw.Resume(backends)
	// The old epoch's sinks are unreachable now — Pause drained every
	// request that could have touched them.
	closeAll(old)

	f.cfg.Obs.Counter("fleet_reshards_total").Inc()
	f.cfg.Obs.Counter("fleet_reshard_records_total").Add(int64(st.Records))
	f.cfg.Obs.Counter("fleet_reshard_moved_results_total").Add(int64(st.Moved))
}
