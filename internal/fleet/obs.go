package fleet

import (
	"roamsim/internal/netsim"
	"roamsim/internal/obs"
)

// RegisterNetObs exports a network's route-cache effectiveness counters
// into the registry, so campaign runs serve a netsim_* family alongside
// the control-plane metrics. The counters are read-on-scrape callbacks
// over atomics the cache maintains anyway — registering them costs the
// simulation nothing. Re-registering the same registry/network pair
// (e.g. across Driver runs) replaces the callbacks and is harmless.
func RegisterNetObs(reg *obs.Registry, n *netsim.Network) {
	if reg == nil || n == nil {
		return
	}
	reg.CounterFunc("netsim_route_cache_hits_total", func() float64 {
		h, _, _ := n.RouteCacheStats()
		return float64(h)
	})
	reg.CounterFunc("netsim_route_cache_misses_total", func() float64 {
		_, m, _ := n.RouteCacheStats()
		return float64(m)
	})
	reg.CounterFunc("netsim_dijkstra_runs_total", func() float64 {
		_, _, runs := n.RouteCacheStats()
		return float64(runs)
	})
}
