package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"roamsim/internal/airalo"
	"roamsim/internal/amigo"
	"roamsim/internal/experiments"
)

const testSeed = 21

var sharedWorld *airalo.World

func testWorld(t testing.TB) *airalo.World {
	t.Helper()
	if sharedWorld == nil {
		w, err := airalo.Build(testSeed)
		if err != nil {
			t.Fatal(err)
		}
		sharedWorld = w
	}
	return sharedWorld
}

// newControlServer stands up a full control server (v1+v2+v3 + admin)
// the way cmd/amigo-server wires it.
func newControlServer(t testing.TB, opts ...amigo.Option) (*amigo.Server, *httptest.Server) {
	t.Helper()
	srv := amigo.NewServer(nil, opts...)
	mux := http.NewServeMux()
	h := srv.Handler()
	mux.Handle("/v1/", h)
	mux.Handle("/v2/", h)
	mux.Handle("/v3/", h)
	mux.Handle("/admin/", srv.AdminHandler())
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return srv, hs
}

func TestPlanSchedules(t *testing.T) {
	plan := Plan{Countries: []string{"PAK", "DEU"}, MEsPerCountry: 2,
		Tasks:   []amigo.Task{{Kind: "speedtest"}, {Kind: "mtr", Target: "Google"}},
		Configs: []string{"esim"}, Reps: 3}
	scheds := plan.Schedules()
	if len(scheds) != 4 {
		t.Fatalf("schedules = %d, want 4", len(scheds))
	}
	if scheds[0].Name != "me-PAK-0" || scheds[3].Name != "me-DEU-1" {
		t.Errorf("names = %s .. %s", scheds[0].Name, scheds[3].Name)
	}
	if got := len(scheds[0].Tasks); got != plan.TasksPerME() || got != 6 {
		t.Fatalf("tasks per ME = %d, want 6", got)
	}
	// Task kind outermost, rep innermost.
	if scheds[0].Tasks[0].Kind != "speedtest" || scheds[0].Tasks[2].Kind != "speedtest" ||
		scheds[0].Tasks[3].Kind != "mtr" {
		t.Errorf("unexpected task nesting: %+v", scheds[0].Tasks)
	}
	// One ME per country uses the bare ISO label (in-process parity).
	one := Plan{Countries: []string{"PAK"}}.Schedules()
	if one[0].Name != "me-PAK" || one[0].Label != "PAK" {
		t.Errorf("single-ME naming: %+v", one[0])
	}
}

func TestFleetEndToEnd(t *testing.T) {
	w := testWorld(t)
	srv, hs := newControlServer(t)
	plan := Plan{
		Countries: []string{"PAK", "DEU"}, MEsPerCountry: 3,
		Tasks:   []amigo.Task{{Kind: "speedtest"}, {Kind: "dns"}, {Kind: "mtr", Target: "Google"}},
		Configs: []string{"esim"}, Reps: 2,
	}
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: 4, LeaseBatch: 3, Heartbeat: true}
	camp, err := d.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	want := 6 * plan.TasksPerME()
	if camp.Stats.Results != want || len(camp.Results) != want {
		t.Fatalf("results = %d, want %d", len(camp.Results), want)
	}
	if got := len(srv.MEs()); got != 6 {
		t.Errorf("registered MEs = %d, want 6", got)
	}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Failures) != 0 {
		t.Errorf("failures: %+v", ds.Failures)
	}
	if len(ds.Speed) != 12 || len(ds.DNS) != 12 || len(ds.Traces) != 12 {
		t.Errorf("dataset sizes: speed=%d dns=%d traces=%d, want 12 each",
			len(ds.Speed), len(ds.DNS), len(ds.Traces))
	}
	for _, r := range ds.Speed {
		if r.Payload.DownMbps <= 0 || r.Payload.PublicIP == "" {
			t.Fatalf("bad speed record: %+v", r)
		}
	}
	demarcated := 0
	for _, r := range ds.Traces {
		if r.Demarcated {
			demarcated++
			if r.PA.FinalRTTms <= 0 || r.PA.UniqueASNs < 1 {
				t.Fatalf("bad demarcation: %+v", r.PA)
			}
		}
	}
	if demarcated == 0 {
		t.Error("no trace demarcated")
	}
}

// TestFleetDeterminismAcrossWorkers is the fleet determinism contract:
// for a fixed seed the ingested dataset is byte-identical no matter the
// worker count or lease batch size.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	plan := Plan{
		Countries: []string{"PAK", "DEU", "GEO"}, MEsPerCountry: 2,
		Tasks: []amigo.Task{
			{Kind: "speedtest"}, {Kind: "mtr", Target: "Facebook"},
			{Kind: "cdn", Target: "Cloudflare"}, {Kind: "video"},
		},
		Configs: []string{"sim", "esim"}, Reps: 2,
	}
	var baseline []byte
	for _, cfg := range []struct{ workers, lease int }{{1, 1}, {4, 8}, {8, 64}} {
		_, hs := newControlServer(t)
		d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: cfg.workers,
			LeaseBatch: cfg.lease, Heartbeat: true}
		camp, err := d.Run(w, plan)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := Ingest(w.Reg, camp)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(ds)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = blob
			continue
		}
		if !bytes.Equal(baseline, blob) {
			t.Fatalf("dataset differs at workers=%d lease=%d", cfg.workers, cfg.lease)
		}
	}
}

// TestFleetMatchesInProcessCampaign cross-checks the HTTP fleet driver
// against the serial v1 in-process campaign for the same seed: the
// ingested datasets, Table 4 counts, and RTT aggregates must be
// byte-identical.
func TestFleetMatchesInProcessCampaign(t *testing.T) {
	w := testWorld(t)
	plan := Plan{
		Countries: []string{"GEO", "QAT", "THA"},
		Tasks: []amigo.Task{
			{Kind: "speedtest"}, {Kind: "mtr", Target: "Facebook"},
			{Kind: "mtr", Target: "Google"}, {Kind: "cdn", Target: "jsDelivr"},
		},
		Configs: []string{"sim", "esim"}, Reps: 3,
	}
	_, hs := newControlServer(t)
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: 6, LeaseBatch: 5,
		StreamLabel: "xcheck", Heartbeat: true}
	fleetCamp, err := d.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	inprocCamp, err := RunInProcess(w, plan, testSeed, "xcheck", true)
	if err != nil {
		t.Fatal(err)
	}
	fleetDS, err := Ingest(w.Reg, fleetCamp)
	if err != nil {
		t.Fatal(err)
	}
	inprocDS, err := Ingest(w.Reg, inprocCamp)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := json.Marshal(fleetDS)
	ib, _ := json.Marshal(inprocDS)
	if !bytes.Equal(fb, ib) {
		t.Fatal("fleet dataset differs from in-process campaign dataset")
	}
	if got, want := Table4(fleetDS, plan).String(), Table4(inprocDS, plan).String(); got != want {
		t.Fatalf("Table 4 mismatch:\nfleet:\n%s\nin-process:\n%s", got, want)
	}
	if got, want := RTTSummary(fleetDS, plan).String(), RTTSummary(inprocDS, plan).String(); got != want {
		t.Fatalf("RTT summary mismatch:\nfleet:\n%s\nin-process:\n%s", got, want)
	}
}

// TestFleetTable4MatchesExperiments is the acceptance check: the
// device-campaign plan driven through the fleet control plane
// regenerates exactly the Table 4 the in-process experiments runner
// produces for the same seed.
func TestFleetTable4MatchesExperiments(t *testing.T) {
	w := testWorld(t)
	r := experiments.NewRunnerWith(w, experiments.Config{Seed: testSeed})
	wantTable, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newControlServer(t)
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: 8,
		StreamLabel: "table4", Heartbeat: true}
	camp, err := d.Run(w, DeviceCampaignPlan())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	got := Table4(ds, camp.Plan).String()
	if want := wantTable.String(); got != want {
		t.Fatalf("fleet Table 4 differs from experiments Table 4:\nfleet:\n%s\nexperiments:\n%s", got, want)
	}
}
