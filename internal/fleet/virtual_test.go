package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
	"roamsim/internal/vclock"
)

// runClockCampaign is runProtoCampaign with the campaign clock, pacing,
// and straggler watchdog under test control. It also returns the run's
// Stats.Elapsed — on a virtual clock, the campaign's final virtual
// timestamp, which the determinism test pins across worker counts.
func runClockCampaign(t *testing.T, proto string, inj *chaos.Injector, workers int,
	clk vclock.Clock, realize bool, straggler time.Duration) (dsBlob []byte, table4, rtt string, elapsed time.Duration) {
	t.Helper()
	if v, ok := clk.(*vclock.Virtual); ok {
		// A harness bug that blocks a registered waiter off-clock would
		// freeze the timeline; fail fast with the parked-waiter dump
		// instead of eating the whole go test timeout.
		stop := v.StallGuard(90*time.Second, nil)
		t.Cleanup(func() { stop() })
	}
	w := testWorld(t)
	plan := chaosTestPlan()
	var hs *httptest.Server
	if inj != nil {
		_, hs = newChaosControlServer(t, inj)
	} else {
		_, hs = newControlServer(t)
	}
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: workers,
		LeaseBatch: 4, StreamLabel: "chaos-eq", Heartbeat: true,
		Chaos: inj, Proto: proto, Clock: clk, Realize: realize, Straggler: straggler}
	camp, err := d.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return blob, Table4(ds, plan).String(), RTTSummary(ds, plan).String(), camp.Stats.Elapsed
}

// TestVirtualTimeEquivalence is the clock differential test — the PR's
// headline contract: a campaign driven on discrete-event virtual time
// must ingest the byte-identical dataset, Table 4, and RTT summary as
// the wall-clock run, across protocol (v2 JSON / v3 binary), scheduling
// (serial / parallel), fault injection (clean / chaos.Heavy), and
// pacing (instant / realized netsim durations). Time is plumbing; it
// must never touch data.
func TestVirtualTimeEquivalence(t *testing.T) {
	wantDS, wantT4, wantRTT, _ := runClockCampaign(t, amigo.ProtoV2, nil, 1, nil, false, 0)
	if len(wantDS) == 0 || wantT4 == "" || wantRTT == "" {
		t.Fatal("empty real-clock baseline artifacts")
	}
	cases := []struct {
		proto   string
		chaos   bool
		workers int
		realize bool
	}{
		{amigo.ProtoV2, false, 1, false},
		{amigo.ProtoV2, false, 4, true}, // realized pacing, jumped over
		{amigo.ProtoV2, true, 4, false},
		{amigo.ProtoV3, false, 4, false},
		{amigo.ProtoV3, true, 1, false},
		{amigo.ProtoV3, true, 4, true}, // the full stack at once
	}
	for _, tc := range cases {
		name := fmt.Sprintf("virtual/%s/chaos=%v/workers=%d/realize=%v",
			tc.proto, tc.chaos, tc.workers, tc.realize)
		t.Run(name, func(t *testing.T) {
			var inj *chaos.Injector
			if tc.chaos {
				inj = chaos.NewInjector(7, chaos.Heavy())
			}
			clk := vclock.NewVirtual()
			gotDS, gotT4, gotRTT, elapsed := runClockCampaign(t, tc.proto, inj, tc.workers, clk, tc.realize, 30*time.Minute)
			if !bytes.Equal(gotDS, wantDS) {
				msg := "virtual-clock dataset differs from real-clock baseline"
				if inj != nil {
					msg += "\nfault trace:\n" + inj.TraceString()
				}
				t.Error(msg)
			}
			if gotT4 != wantT4 {
				t.Errorf("Table 4 differs:\ngot:\n%s\nwant:\n%s", gotT4, wantT4)
			}
			if gotRTT != wantRTT {
				t.Errorf("RTT summary differs:\ngot:\n%s\nwant:\n%s", gotRTT, wantRTT)
			}
			if inj != nil && len(inj.Events()) == 0 {
				t.Error("chaos run injected zero faults; the test proved nothing")
			}
			if tc.realize && elapsed <= 0 {
				t.Error("realized virtual campaign reports zero virtual makespan")
			}
			if reg, parked := clk.Waiters(); reg != 0 || parked != 0 {
				t.Errorf("waiter registry leaked: %d registered, %d parked after Run", reg, parked)
			}
		})
	}
}

// TestVirtualDeterminism pins the stronger property virtual time buys:
// with every ME a registered waiter, quiescence is a global barrier, so
// the same (seed, plan) produces not just the same dataset but the SAME
// final virtual timestamp — regardless of the Workers setting (ignored
// under virtual time by design) and of GOMAXPROCS.
func TestVirtualDeterminism(t *testing.T) {
	type run struct {
		workers    int
		gomaxprocs int
	}
	runs := []run{{1, 1}, {4, 2}, {16, runtime.GOMAXPROCS(0)}}
	var wantDS []byte
	var wantElapsed time.Duration
	for i, rc := range runs {
		name := fmt.Sprintf("workers=%d/gomaxprocs=%d", rc.workers, rc.gomaxprocs)
		t.Run(name, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(rc.gomaxprocs)
			defer runtime.GOMAXPROCS(prev)
			inj := chaos.NewInjector(7, chaos.Heavy())
			clk := vclock.NewVirtual()
			ds, _, _, elapsed := runClockCampaign(t, amigo.ProtoV3, inj, rc.workers, clk, true, 30*time.Minute)
			if elapsed <= 0 {
				t.Fatal("virtual campaign reports non-positive makespan")
			}
			if i == 0 {
				wantDS, wantElapsed = ds, elapsed
				return
			}
			if !bytes.Equal(ds, wantDS) {
				t.Error("dataset differs across worker/GOMAXPROCS settings")
			}
			if elapsed != wantElapsed {
				t.Errorf("final virtual timestamp differs: got %v, want %v", elapsed, wantElapsed)
			}
		})
	}
}
