package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"roamsim/internal/amigo"
	"roamsim/internal/core"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/netsim"
	"roamsim/internal/report"
	"roamsim/internal/stats"
)

// Dataset holds the campaign's uploaded payloads folded into typed
// records, in canonical (ME, task) order. It is the fleet analogue of
// the in-process campaign's memoized observation slices.
type Dataset struct {
	Speed    []SpeedRecord   `json:"speed,omitempty"`
	Traces   []TraceRecord   `json:"traces,omitempty"`
	CDN      []CDNRecord     `json:"cdn,omitempty"`
	DNS      []DNSRecord     `json:"dns,omitempty"`
	Video    []VideoRecord   `json:"video,omitempty"`
	Failures []FailureRecord `json:"failures,omitempty"`
}

// SpeedRecord is one ingested speedtest observation.
type SpeedRecord struct {
	ME      string                 `json:"me"`
	ISO     string                 `json:"iso"`
	Config  string                 `json:"config"`
	Payload amigo.SpeedtestPayload `json:"payload"`
}

// TraceRecord is one ingested traceroute, re-demarcated with the core
// methodology (first public IP = PGW boundary).
type TraceRecord struct {
	ME     string `json:"me"`
	ISO    string `json:"iso"`
	Config string `json:"config"`
	Target string `json:"target"`
	Hops   int    `json:"hops"`
	// Demarcated is false when the path never showed a public IP
	// (silent CG-NAT), in which case PA is zero.
	Demarcated bool              `json:"demarcated"`
	PA         core.PathAnalysis `json:"pa"`
}

// CDNRecord is one ingested CDN fetch.
type CDNRecord struct {
	ME      string           `json:"me"`
	ISO     string           `json:"iso"`
	Config  string           `json:"config"`
	Payload amigo.CDNPayload `json:"payload"`
}

// DNSRecord is one ingested resolver identification.
type DNSRecord struct {
	ME      string           `json:"me"`
	ISO     string           `json:"iso"`
	Config  string           `json:"config"`
	Payload amigo.DNSPayload `json:"payload"`
}

// VideoRecord is one ingested video session.
type VideoRecord struct {
	ME      string             `json:"me"`
	ISO     string             `json:"iso"`
	Config  string             `json:"config"`
	Payload amigo.VideoPayload `json:"payload"`
}

// FailureRecord is one failed task (e.g. a SIM task in an eSIM-only
// country).
type FailureRecord struct {
	ME     string `json:"me"`
	ISO    string `json:"iso"`
	Kind   string `json:"kind"`
	Config string `json:"config"`
	Error  string `json:"error"`
}

// Ingest folds a campaign's uploaded results into a Dataset. Results
// are first sorted by (ME, task ID) — per-ME IDs are monotonic in
// schedule order, so this is the canonical order no matter how uploads
// interleaved — then deduplicated on (ME, task ID): a crash-replayed or
// double-delivered upload that slipped past the server's idempotency
// keys contributes only its first (arrival-order) copy. Finally
// server-assigned fields (task IDs, upload stamps) are dropped, making
// the dataset byte-identical across worker counts — and across chaos
// configurations — for a fixed seed.
func Ingest(reg *ipreg.Registry, c *Campaign) (*Dataset, error) {
	meISO := make(map[string]string, len(c.Schedules))
	for _, sc := range c.Schedules {
		meISO[sc.Name] = sc.ISO
	}
	rs := append([]amigo.Result(nil), c.Results...)
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].ME != rs[j].ME {
			return rs[i].ME < rs[j].ME
		}
		return rs[i].TaskID < rs[j].TaskID
	})

	ds := &Dataset{}
	for i, res := range rs {
		if i > 0 && res.ME == rs[i-1].ME && res.TaskID == rs[i-1].TaskID {
			continue // duplicate upload of the same task
		}
		iso, ok := meISO[res.ME]
		if !ok {
			return nil, fmt.Errorf("fleet: result from ME %q outside the campaign", res.ME)
		}
		if !res.OK {
			ds.Failures = append(ds.Failures, FailureRecord{
				ME: res.ME, ISO: iso, Kind: res.Kind, Config: res.Config, Error: res.Error,
			})
			continue
		}
		switch res.Kind {
		case "speedtest":
			var p amigo.SpeedtestPayload
			if err := json.Unmarshal(res.Payload, &p); err != nil {
				return nil, fmt.Errorf("fleet: bad speedtest payload from %s: %w", res.ME, err)
			}
			ds.Speed = append(ds.Speed, SpeedRecord{ME: res.ME, ISO: iso, Config: res.Config, Payload: p})
		case "mtr":
			var p amigo.MTRPayload
			if err := json.Unmarshal(res.Payload, &p); err != nil {
				return nil, fmt.Errorf("fleet: bad mtr payload from %s: %w", res.ME, err)
			}
			rec, err := ingestTrace(reg, res, iso, p)
			if err != nil {
				return nil, err
			}
			ds.Traces = append(ds.Traces, rec)
		case "cdn":
			var p amigo.CDNPayload
			if err := json.Unmarshal(res.Payload, &p); err != nil {
				return nil, fmt.Errorf("fleet: bad cdn payload from %s: %w", res.ME, err)
			}
			ds.CDN = append(ds.CDN, CDNRecord{ME: res.ME, ISO: iso, Config: res.Config, Payload: p})
		case "dns":
			var p amigo.DNSPayload
			if err := json.Unmarshal(res.Payload, &p); err != nil {
				return nil, fmt.Errorf("fleet: bad dns payload from %s: %w", res.ME, err)
			}
			ds.DNS = append(ds.DNS, DNSRecord{ME: res.ME, ISO: iso, Config: res.Config, Payload: p})
		case "video":
			var p amigo.VideoPayload
			if err := json.Unmarshal(res.Payload, &p); err != nil {
				return nil, fmt.Errorf("fleet: bad video payload from %s: %w", res.ME, err)
			}
			ds.Video = append(ds.Video, VideoRecord{ME: res.ME, ISO: iso, Config: res.Config, Payload: p})
		default:
			return nil, fmt.Errorf("fleet: unknown result kind %q from %s", res.Kind, res.ME)
		}
	}
	return ds, nil
}

// ingestTrace rebuilds the mtr hop list and re-runs the core
// demarcation methodology on it, exactly as the paper's parser did on
// uploaded mtr output.
func ingestTrace(reg *ipreg.Registry, res amigo.Result, iso string, p amigo.MTRPayload) (TraceRecord, error) {
	rec := TraceRecord{ME: res.ME, ISO: iso, Config: res.Config, Target: p.Target, Hops: len(p.Hops)}
	tr := netsim.TracerouteResult{Hops: make([]netsim.HopRecord, 0, len(p.Hops))}
	for _, h := range p.Hops {
		hop := netsim.HopRecord{TTL: h.TTL}
		if h.Addr != "" {
			addr, err := ipaddr.Parse(h.Addr)
			if err != nil {
				return rec, fmt.Errorf("fleet: bad hop address %q from %s: %w", h.Addr, res.ME, err)
			}
			hop.Responded = true
			hop.Addr = addr
			hop.BestRTTms = h.RTTms
		}
		tr.Hops = append(tr.Hops, hop)
	}
	if n := len(tr.Hops); n > 0 {
		tr.DestReached = tr.Hops[n-1].Responded
	}
	pa, err := core.Demarcate(tr, reg)
	if err != nil {
		if errors.Is(err, core.ErrNoPublicHop) {
			return rec, nil // fully silent path: keep the trace, skip demarcation
		}
		return rec, err
	}
	rec.Demarcated = true
	rec.PA = pa
	return rec, nil
}

// toolLabel maps a task to its Table 4 column label.
func toolLabel(kind, target string) string {
	switch kind {
	case "speedtest":
		return "Ookla"
	case "video":
		return "Video"
	case "dns":
		return "DNS"
	case "mtr":
		switch target {
		case "Facebook":
			return "MTR(FB)"
		case "Google":
			return "MTR(GGL)"
		}
		return "MTR(" + target + ")"
	case "cdn":
		switch target {
		case "Cloudflare":
			return "CDN(CF)"
		case "Google CDN":
			return "CDN(GGL)"
		case "jQuery CDN":
			return "CDN(jQ)"
		case "jsDelivr":
			return "CDN(jsD)"
		case "Microsoft Ajax":
			return "CDN(MS)"
		}
		return "CDN(" + target + ")"
	}
	return kind
}

// Table4 regenerates the paper's Table 4 from a fleet-ingested dataset:
// successful tests per (country, tool, configuration), formatted
// <SIM> // <eSIM>. Countries and columns follow the plan's order, so
// for the device-campaign plan the rendering matches the in-process
// experiments.Table4 byte for byte.
func Table4(ds *Dataset, plan Plan) *report.Table {
	plan = plan.withDefaults()
	var labels []string
	seen := map[string]bool{}
	for _, task := range plan.Tasks {
		l := toolLabel(task.Kind, task.Target)
		if !seen[l] {
			seen[l] = true
			labels = append(labels, l)
		}
	}

	type cell struct{ sim, esim int }
	counts := map[string]map[string]*cell{}
	add := func(iso, label, config string) {
		if counts[iso] == nil {
			counts[iso] = map[string]*cell{}
		}
		if counts[iso][label] == nil {
			counts[iso][label] = &cell{}
		}
		if config == "sim" {
			counts[iso][label].sim++
		} else {
			counts[iso][label].esim++
		}
	}
	for _, r := range ds.Speed {
		add(r.ISO, "Ookla", r.Config)
	}
	for _, r := range ds.Traces {
		add(r.ISO, toolLabel("mtr", r.Target), r.Config)
	}
	for _, r := range ds.CDN {
		add(r.ISO, toolLabel("cdn", r.Payload.Provider), r.Config)
	}
	for _, r := range ds.DNS {
		add(r.ISO, "DNS", r.Config)
	}
	for _, r := range ds.Video {
		add(r.ISO, "Video", r.Config)
	}

	t := &report.Table{
		Title:   "Table 4: device-based campaign (successful tests, <SIM> // <eSIM>)",
		Headers: append([]string{"Country"}, labels...),
	}
	for _, iso := range plan.Countries {
		row := []any{iso}
		for _, label := range labels {
			c := counts[iso][label]
			if c == nil {
				c = &cell{}
			}
			row = append(row, fmt.Sprintf("%d // %d", c.sim, c.esim))
		}
		t.AddRow(row...)
	}
	return t
}

// RTTSummary aggregates the dataset Figure 11-style: per (country,
// configuration), the median final-hop RTT to Facebook and Google and
// the median Ookla latency.
func RTTSummary(ds *Dataset, plan Plan) *report.Table {
	plan = plan.withDefaults()
	t := &report.Table{
		Title:   "Fleet RTT summary (Figure 11 style): final-hop RTT to Facebook / Google, Ookla latency",
		Headers: []string{"Country", "Config", "FB median (ms)", "GGL median (ms)", "Ookla median (ms)"},
	}
	median := func(v []float64) string {
		if len(v) == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", stats.Median(v))
	}
	for _, iso := range plan.Countries {
		for _, config := range plan.Configs {
			var fb, ggl, ook []float64
			for _, r := range ds.Traces {
				if r.ISO != iso || r.Config != config || !r.Demarcated {
					continue
				}
				switch r.Target {
				case "Facebook":
					fb = append(fb, r.PA.FinalRTTms)
				case "Google":
					ggl = append(ggl, r.PA.FinalRTTms)
				}
			}
			for _, r := range ds.Speed {
				if r.ISO == iso && r.Config == config {
					ook = append(ook, r.Payload.LatencyMs)
				}
			}
			if len(fb)+len(ggl)+len(ook) == 0 {
				continue
			}
			t.AddRow(iso, config, median(fb), median(ggl), median(ook))
		}
	}
	return t
}
