package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/amigo"
	"roamsim/internal/rng"
)

// Driver runs a fleet campaign against a live AmiGo control server.
type Driver struct {
	// BaseURL is the control server ("http://127.0.0.1:8080"). The
	// server must expose both the /v1+/v2 Handler and the
	// AdminHandler routes.
	BaseURL string
	// Client is the HTTP client shared by every ME; nil gets a
	// keep-alive-tuned default (the fleet would otherwise exhaust
	// ephemeral ports on connection churn).
	Client *http.Client
	// Seed roots the campaign's deterministic randomness.
	Seed int64
	// Workers bounds the ME worker pool (0 = GOMAXPROCS).
	Workers int
	// LeaseBatch is the max tasks leased per v2 round trip (default 32).
	LeaseBatch int
	// StreamLabel names the campaign's parent rng fork (default
	// "fleet"; "table4" reproduces the in-process device campaign's
	// streams exactly).
	StreamLabel string
	// Heartbeat makes each ME report vitals once after registering,
	// as the paper's device campaign did. Heartbeats draw from the
	// ME's radio stream, so this must match between runs being
	// compared.
	Heartbeat bool
}

// Stats summarizes one campaign run.
type Stats struct {
	MEs            int
	TasksScheduled int
	Results        int
	Elapsed        time.Duration
}

// Campaign is the output of a driver run: the expanded plan, every
// uploaded result fetched back from the server, and run stats.
type Campaign struct {
	Plan      Plan
	Schedules []MESchedule
	Results   []amigo.Result
	Stats     Stats
}

func (d *Driver) client() *http.Client {
	if d.Client != nil {
		return d.Client
	}
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
}

func (d *Driver) workers() int {
	if d.Workers > 0 {
		return d.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (d *Driver) leaseBatch() int {
	if d.LeaseBatch > 0 {
		return d.LeaseBatch
	}
	return 32
}

func (d *Driver) streamLabel() string {
	if d.StreamLabel != "" {
		return d.StreamLabel
	}
	return "fleet"
}

// Run executes the plan: every ME registers, receives its schedule,
// then leases, executes and uploads in batches until drained; finally
// the uploaded results are fetched back from the server.
//
// Determinism: per-ME rng streams are pre-forked serially in schedule
// order before the pool starts, and each ME's tasks execute in queue
// order within its own goroutine, so uploaded payloads depend only on
// (seed, plan), never on Workers or scheduling. Only the arrival order
// of results varies; Ingest canonicalizes it.
func (d *Driver) Run(w *airalo.World, plan Plan) (*Campaign, error) {
	plan = plan.withDefaults()
	scheds := plan.Schedules()
	for _, sc := range scheds {
		if w.Deployments[sc.ISO] == nil {
			return nil, fmt.Errorf("fleet: no deployment for country %q", sc.ISO)
		}
	}
	client := d.client()

	// Pre-fork, then spawn: one child stream per ME, serially, in
	// canonical schedule order (see internal/rng).
	parent := rng.New(d.Seed).Fork(d.streamLabel())
	eps := make([]*amigo.Endpoint, len(scheds))
	for i, sc := range scheds {
		eps[i] = amigo.NewEndpoint(sc.Name, d.BaseURL, w.Deployments[sc.ISO], parent.Fork(sc.Label))
		eps[i].Client = client
	}

	startCursor, err := d.fetchCursor(client)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	errs := make([]error, len(scheds))
	runPool(d.workers(), len(scheds), func(i int) {
		errs[i] = d.runME(client, eps[i], scheds[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	results, err := d.fetchResults(client, startCursor)
	if err != nil {
		return nil, err
	}
	camp := &Campaign{
		Plan:      plan,
		Schedules: scheds,
		Results:   results,
		Stats: Stats{
			MEs:            len(scheds),
			TasksScheduled: len(scheds) * plan.TasksPerME(),
			Results:        len(results),
			Elapsed:        time.Since(start),
		},
	}
	return camp, nil
}

// runME is the per-ME lifecycle: register, receive the schedule,
// optionally heartbeat, then lease/execute/upload until drained.
func (d *Driver) runME(client *http.Client, ep *amigo.Endpoint, sc MESchedule) error {
	if err := ep.Register(); err != nil {
		return err
	}
	if err := d.scheduleBatch(client, sc.Name, sc.Tasks); err != nil {
		return err
	}
	if d.Heartbeat {
		if err := ep.Heartbeat(); err != nil {
			return err
		}
	}
	for {
		n, err := ep.RunBatch(d.leaseBatch())
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
	}
}

func (d *Driver) scheduleBatch(client *http.Client, me string, tasks []amigo.Task) error {
	buf, err := json.Marshal(map[string]any{"me": me, "tasks": tasks})
	if err != nil {
		return err
	}
	resp, err := client.Post(d.BaseURL+"/admin/schedule", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("fleet: schedule %s: HTTP %d", me, resp.StatusCode)
	}
	return nil
}

type resultsPage struct {
	Cursor  int            `json:"cursor"`
	Results []amigo.Result `json:"results"`
}

func (d *Driver) fetchPage(client *http.Client, cursor, limit int) (resultsPage, error) {
	var page resultsPage
	url := fmt.Sprintf("%s/admin/results?cursor=%d", d.BaseURL, cursor)
	if limit > 0 {
		url += fmt.Sprintf("&limit=%d", limit)
	}
	resp, err := client.Get(url)
	if err != nil {
		return page, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return page, fmt.Errorf("fleet: results: HTTP %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&page)
	return page, err
}

func (d *Driver) fetchCursor(client *http.Client) (int, error) {
	page, err := d.fetchPage(client, -1, 0)
	return page.Cursor, err
}

// fetchResults pages through /admin/results from the given cursor.
func (d *Driver) fetchResults(client *http.Client, cursor int) ([]amigo.Result, error) {
	const pageSize = 5000
	var out []amigo.Result
	for {
		page, err := d.fetchPage(client, cursor, pageSize)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Results...)
		if len(page.Results) == 0 || page.Cursor <= cursor {
			return out, nil
		}
		cursor = page.Cursor
	}
}

// RunInProcess executes the same plan the way the paper's campaign ran:
// serially, one ME at a time, over the v1 one-task-per-poll protocol
// against a private control server. It is the oracle the fleet driver
// is cross-checked against: for equal (seed, label, heartbeat, plan) it
// produces byte-identical ingested datasets.
func RunInProcess(w *airalo.World, plan Plan, seed int64, label string, heartbeat bool) (*Campaign, error) {
	plan = plan.withDefaults()
	scheds := plan.Schedules()
	srv := amigo.NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	parent := rng.New(seed).Fork(label)
	start := time.Now()
	for _, sc := range scheds {
		dep := w.Deployments[sc.ISO]
		if dep == nil {
			return nil, fmt.Errorf("fleet: no deployment for country %q", sc.ISO)
		}
		ep := amigo.NewEndpoint(sc.Name, hs.URL, dep, parent.Fork(sc.Label))
		if err := ep.Register(); err != nil {
			return nil, err
		}
		if _, err := srv.ScheduleBatch(sc.Name, sc.Tasks); err != nil {
			return nil, err
		}
		if heartbeat {
			if err := ep.Heartbeat(); err != nil {
				return nil, err
			}
		}
		for {
			more, err := ep.RunOnce()
			if err != nil {
				return nil, err
			}
			if !more {
				break
			}
		}
	}
	results := srv.Results()
	return &Campaign{
		Plan:      plan,
		Schedules: scheds,
		Results:   results,
		Stats: Stats{
			MEs:            len(scheds),
			TasksScheduled: len(scheds) * plan.TasksPerME(),
			Results:        len(results),
			Elapsed:        time.Since(start),
		},
	}, nil
}

// runPool executes n index-addressed jobs on a bounded worker pool.
func runPool(workers, n int, job func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
