package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
	"roamsim/internal/obs"
	"roamsim/internal/rng"
	"roamsim/internal/vclock"
)

// Driver runs a fleet campaign against a live AmiGo control server.
type Driver struct {
	// BaseURL is the control server ("http://127.0.0.1:8080"). The
	// server must expose both the /v1+/v2 Handler and the
	// AdminHandler routes.
	BaseURL string
	// Client is the HTTP client shared by every ME; nil gets a
	// keep-alive-tuned default (the fleet would otherwise exhaust
	// ephemeral ports on connection churn).
	Client *http.Client
	// Seed roots the campaign's deterministic randomness.
	Seed int64
	// Workers bounds the ME worker pool (0 = GOMAXPROCS). Ignored when
	// Clock is a *vclock.Virtual: a virtual campaign spawns every ME as
	// a registered clock waiter, because a worker pool would make the
	// ME-to-worker assignment — and with it the quiescence schedule and
	// final virtual timestamp — depend on scheduling instead of the seed.
	Workers int
	// LeaseBatch is the max tasks leased per v2 round trip (default 32).
	LeaseBatch int
	// Proto selects the batch protocol every ME speaks: "v2" (JSON, the
	// default — "" means v2) or "v3" (binary wire frames). The ingested
	// dataset is identical either way (TestFleetProtoEquivalence); v3
	// exists to cut control-plane CPU at fleet scale.
	Proto string
	// StreamLabel names the campaign's parent rng fork (default
	// "fleet"; "table4" reproduces the in-process device campaign's
	// streams exactly).
	StreamLabel string
	// Heartbeat makes each ME report vitals once after registering,
	// as the paper's device campaign did. Heartbeats draw from the
	// ME's radio stream, so this must match between runs being
	// compared.
	Heartbeat bool
	// Chaos, when set, injects deterministic faults: each ME's HTTP
	// transport is wrapped per incarnation, retry jitter draws from an
	// out-of-band stream keyed on the injector's seed, and MEs may
	// crash between batches and replay their schedule. The server side
	// must be wrapped with the same injector's Middleware. The
	// ingested dataset is unchanged by chaos — faults cost retries,
	// never data.
	Chaos *chaos.Injector
	// RestartBudget caps per-ME restarts — injected crashes plus
	// straggler-watchdog kills — before the campaign errors out
	// (default: the chaos config's crash cap + 3).
	RestartBudget int
	// Straggler, when positive, is the per-incarnation watchdog on the
	// campaign clock: an ME stuck that long behind pathological faults
	// is cancelled and restarted, consuming restart budget. A watchdog
	// kill changes the fault trace (an extra incarnation) but never
	// the dataset; it is an escape hatch, off by default. On a virtual
	// clock the deadline can only fire while the ME is parked in a
	// clock wait, so kills are deterministic too.
	Straggler time.Duration
	// Clock is the campaign time source (nil = wall clock). Inject a
	// *vclock.Virtual to run the campaign on discrete-event time: waits
	// are jumped instead of slept, Stats.Elapsed becomes the campaign's
	// virtual makespan, and the ingested dataset is byte-identical to a
	// real-clock run (TestVirtualTimeEquivalence).
	Clock vclock.Clock
	// Realize makes every ME spend each task's simulated network
	// duration on Clock (see amigo.Endpoint.Realize) — realistic pacing
	// on a real clock, free on a virtual one. Datasets are unaffected.
	Realize bool
	// Obs, when set, records fleet-level metrics (incarnations, task
	// throughput, watchdog kills, chaos fault counts) and trace events
	// into the registry, and propagates it to every ME endpoint.
	// Instrumentation never touches the per-ME rng streams, so campaign
	// datasets are byte-identical with or without it.
	Obs *obs.Registry

	met driverMetrics
}

// driverMetrics are the fleet campaign counters, created once per Run
// so the per-ME and per-batch paths touch only atomics.
type driverMetrics struct {
	incarnations    *obs.Counter // ME lifetimes started (first runs + restarts)
	crashRestarts   *obs.Counter // restarts caused by injected crashes
	watchdogKills   *obs.Counter // stragglers cancelled and restarted
	tasksExecuted   *obs.Counter // tasks executed across all MEs
	meFailures      *obs.Counter // MEs whose lifecycle ended in an error
	shardRecoveries *obs.Counter // re-register/re-schedule cycles after a shard lost its state
}

// initObs creates the metric handles (nil no-ops when no registry is
// attached) and registers the chaos fault-count gauges.
func (d *Driver) initObs() {
	d.met = driverMetrics{
		incarnations:    d.Obs.Counter("fleet_incarnations_total"),
		crashRestarts:   d.Obs.Counter("fleet_crash_restarts_total"),
		watchdogKills:   d.Obs.Counter("fleet_watchdog_kills_total"),
		tasksExecuted:   d.Obs.Counter("fleet_tasks_executed_total"),
		meFailures:      d.Obs.Counter("fleet_me_failures_total"),
		shardRecoveries: d.Obs.Counter("fleet_shard_recoveries_total"),
	}
	if d.Obs != nil && d.Chaos != nil {
		inj := d.Chaos
		for _, kind := range chaos.FaultKinds {
			kind := kind
			d.Obs.CounterFunc("fleet_chaos_faults_total", func() float64 {
				return float64(inj.Counts()[kind])
			}, obs.L("kind", kind))
		}
	}
}

// Stats summarizes one campaign run.
type Stats struct {
	MEs            int
	TasksScheduled int
	Results        int
	Elapsed        time.Duration
}

// Campaign is the output of a driver run: the expanded plan, every
// uploaded result fetched back from the server, and run stats.
type Campaign struct {
	Plan      Plan
	Schedules []MESchedule
	Results   []amigo.Result
	Stats     Stats
}

func (d *Driver) client() *http.Client {
	if d.Client != nil {
		return d.Client
	}
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
}

func (d *Driver) workers() int {
	if d.Workers > 0 {
		return d.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (d *Driver) clock() vclock.Clock {
	if d.Clock != nil {
		return d.Clock
	}
	return vclock.Wall
}

func (d *Driver) leaseBatch() int {
	if d.LeaseBatch > 0 {
		return d.LeaseBatch
	}
	return 32
}

func (d *Driver) streamLabel() string {
	if d.StreamLabel != "" {
		return d.StreamLabel
	}
	return "fleet"
}

func (d *Driver) restartBudget() int {
	if d.RestartBudget > 0 {
		return d.RestartBudget
	}
	budget := 3
	if d.Chaos != nil {
		cfg := d.Chaos.Config()
		crashes := cfg.MaxCrashes
		if crashes == 0 && cfg.Crash > 0 {
			crashes = 1
		}
		budget += crashes
	}
	return budget
}

// Run executes the plan: every ME registers, receives its schedule,
// then leases, executes and uploads in batches until drained; finally
// the uploaded results are fetched back from the server.
//
// Determinism: per-ME rng streams are pre-forked serially in schedule
// order before the pool starts, and each ME's tasks execute in queue
// order within its own goroutine, so uploaded payloads depend only on
// (seed, plan), never on Workers or scheduling. Only the arrival order
// of results varies; Ingest canonicalizes it.
func (d *Driver) Run(w *airalo.World, plan Plan) (*Campaign, error) {
	plan = plan.withDefaults()
	scheds := plan.Schedules()
	for _, sc := range scheds {
		if w.Deployments[sc.ISO] == nil {
			return nil, fmt.Errorf("fleet: no deployment for country %q", sc.ISO)
		}
	}
	switch d.Proto {
	case "", amigo.ProtoV2, amigo.ProtoV3:
	default:
		return nil, fmt.Errorf("fleet: unknown protocol %q (want v2 or v3)", d.Proto)
	}
	d.initObs()
	client := d.client()
	if d.Chaos != nil {
		// Latency spikes stall on the campaign clock, not the wall.
		d.Chaos.SetClock(d.clock())
	}

	// Pre-fork, then spawn: one child SEED per ME, captured serially in
	// canonical schedule order (see internal/rng). Storing the seed
	// rather than the Source lets a crashed ME recreate its stream from
	// the top and replay its schedule byte-identically.
	parent := rng.New(d.Seed).Fork(d.streamLabel())
	seeds := make([]int64, len(scheds))
	for i, sc := range scheds {
		seeds[i] = parent.ForkSeed(sc.Label)
	}

	startCursor, err := d.fetchCursor(client)
	if err != nil {
		return nil, err
	}

	start := d.clock().Now()
	errs := make([]error, len(scheds))
	if v, ok := d.clock().(*vclock.Virtual); ok {
		// Virtual time: every ME is a registered clock waiter, all
		// spawned after the whole cohort is added (the rng pre-fork rule
		// applied to the waiter registry). Quiescence is then a global
		// barrier over the full fleet, so the advance sequence — and the
		// final virtual timestamp — is a pure function of (seed, plan),
		// independent of Workers and GOMAXPROCS.
		var wg sync.WaitGroup
		v.Add(len(scheds))
		wg.Add(len(scheds))
		for i := range scheds {
			i := i
			go func() {
				defer wg.Done()
				defer v.Done()
				errs[i] = d.runME(client, scheds[i], w.Deployments[scheds[i].ISO], seeds[i])
			}()
		}
		wg.Wait()
	} else {
		runPool(d.workers(), len(scheds), func(i int) {
			errs[i] = d.runME(client, scheds[i], w.Deployments[scheds[i].ISO], seeds[i])
		})
	}
	// Report every failed ME, not just the first: a campaign debugging
	// session needs to see whether one straggler died or half the fleet
	// did, and which MEs by name.
	var failures []error
	for i, err := range errs {
		if err != nil {
			d.met.meFailures.Add(1)
			failures = append(failures, fmt.Errorf("%s: %w", scheds[i].Name, err))
		}
	}
	if len(failures) > 0 {
		return nil, fmt.Errorf("fleet: %d/%d MEs failed: %w", len(failures), len(scheds), errors.Join(failures...))
	}

	results, err := d.fetchResults(client, startCursor)
	if err != nil {
		return nil, err
	}
	camp := &Campaign{
		Plan:      plan,
		Schedules: scheds,
		Results:   results,
		Stats: Stats{
			MEs:            len(scheds),
			TasksScheduled: len(scheds) * plan.TasksPerME(),
			Results:        len(results),
			Elapsed:        d.clock().Now().Sub(start),
		},
	}
	return camp, nil
}

// runME is the per-ME lifecycle with crash tolerance: run incarnations
// until one drains the queue cleanly. An injected crash or a straggler
// watchdog kill starts the next incarnation, which replays the full
// schedule from a recreated rng stream; the schedule is only POSTed
// once — later incarnations ask the server to re-deliver it instead, so
// task IDs (and therefore idempotency keys) are stable across restarts.
//
// Shard recovery: when the control plane answers "unknown ME"
// (amigo.ErrUnknownME) mid-campaign, the shard that knew this ME has
// lost its in-memory state — a killed shard came back as a fresh
// server over its surviving WAL. The next incarnation re-registers and
// re-POSTs the schedule with the task IDs pinned from the first
// schedule, so re-executed uploads carry the same (ME, TaskID)
// identities and dedup to nothing at ingest.
func (d *Driver) runME(client *http.Client, sc MESchedule, dep *airalo.Deployment, seed int64) error {
	scheduled := false
	recoveries := 0
	tasks := append([]amigo.Task(nil), sc.Tasks...)
	for inc := 0; ; inc++ {
		crashed, err := d.runIncarnation(client, sc, dep, seed, inc, &scheduled, tasks)
		if err != nil {
			if errors.Is(err, amigo.ErrUnknownME) && recoveries < d.restartBudget() {
				recoveries++
				scheduled = false // re-register and re-schedule with pinned IDs
				d.met.shardRecoveries.Add(1)
				d.Obs.Trace().Record("shard-recover",
					obs.L("me", sc.Name), obs.L("inc", fmt.Sprint(inc)))
				continue
			}
			if d.Straggler > 0 && errors.Is(err, context.DeadlineExceeded) && inc < d.restartBudget() {
				d.met.watchdogKills.Add(1)
				d.Obs.Trace().Record("watchdog-kill",
					obs.L("me", sc.Name), obs.L("inc", fmt.Sprint(inc)))
				continue // watchdog kill: reclaim the straggler, restart it
			}
			return err
		}
		if !crashed {
			return nil
		}
		if inc+1 > d.restartBudget() {
			return fmt.Errorf("fleet: %s exceeded restart budget (%d)", sc.Name, d.restartBudget())
		}
		d.met.crashRestarts.Add(1)
		d.Obs.Trace().Record("crash-restart",
			obs.L("me", sc.Name), obs.L("inc", fmt.Sprint(inc)))
	}
}

// runIncarnation runs one ME lifetime: register, obtain the schedule
// (POST it the first time, re-deliver it after a crash), optionally
// heartbeat, then lease/execute/upload until drained. It reports
// crashed=true when the chaos injector kills the ME between batches.
// The first successful schedule pins the server-assigned task IDs into
// tasks (in place), so a shard-recovery re-schedule reuses them.
func (d *Driver) runIncarnation(client *http.Client, sc MESchedule, dep *airalo.Deployment, seed int64, inc int, scheduled *bool, tasks []amigo.Task) (crashed bool, err error) {
	ctx := context.Background()
	if d.Straggler > 0 {
		var cancel context.CancelFunc
		ctx, cancel = vclock.ContextWithTimeout(ctx, d.clock(), d.Straggler)
		defer cancel()
	}

	// Recreating the stream from the stored seed makes every
	// incarnation's draws — heartbeat vitals included — identical to the
	// first run's, so replayed payloads are byte-identical and server
	// dedup can drop them.
	d.met.incarnations.Add(1)
	ep := amigo.NewEndpoint(sc.Name, d.BaseURL, dep, rng.New(seed))
	ep.Client = client
	ep.Ctx = ctx
	ep.Obs = d.Obs
	ep.Proto = d.Proto
	ep.Clock = d.clock()
	ep.Realize = d.Realize
	if d.Chaos != nil {
		// Fault injection wraps this incarnation's transport; retry
		// jitter draws from a stateless out-of-band stream so backoff
		// timing never perturbs the measurement stream.
		ep.Client = &http.Client{Transport: d.Chaos.Transport(sc.Name, inc, client.Transport)}
		ep.Retry.Jitter = rng.Stream(d.Chaos.Seed(), fmt.Sprintf("jitter/%s/%d", sc.Name, inc))
	}

	if err := ep.Register(); err != nil {
		return false, err
	}
	if !*scheduled {
		ids, err := d.scheduleBatch(client, sc.Name, tasks)
		if err != nil {
			return false, err
		}
		if len(ids) == len(tasks) {
			for i := range tasks {
				tasks[i].ID = ids[i]
			}
		}
		*scheduled = true
	} else if err := ep.Redeliver(); err != nil {
		return false, err
	}
	if d.Heartbeat {
		if err := ep.Heartbeat(); err != nil {
			return false, err
		}
	}
	for round := 0; ; round++ {
		n, err := ep.RunBatch(d.leaseBatch())
		if err != nil {
			return false, err
		}
		if n == 0 {
			return false, nil
		}
		d.met.tasksExecuted.Add(int64(n))
		if d.Chaos != nil && d.Chaos.MaybeCrash(sc.Name, inc, round) {
			return true, nil
		}
	}
}

// drainBody discards a bounded amount of unread body before closing so
// the connection is recycled into the keep-alive pool; a response
// bigger than the bound is cheaper to abandon than to drain.
func drainBody(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 256<<10))
	body.Close()
}

// scheduleBatch POSTs the ME's schedule and returns the task IDs the
// server assigned (or honored, when the tasks carried pinned IDs).
func (d *Driver) scheduleBatch(client *http.Client, me string, tasks []amigo.Task) ([]int, error) {
	buf, err := json.Marshal(map[string]any{"me": me, "tasks": tasks})
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(d.BaseURL+"/admin/schedule", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		drainBody(resp.Body)
		if resp.StatusCode == http.StatusNotFound {
			return nil, fmt.Errorf("fleet: schedule %s: HTTP %d: %w", me, resp.StatusCode, amigo.ErrUnknownME)
		}
		return nil, fmt.Errorf("fleet: schedule %s: HTTP %d", me, resp.StatusCode)
	}
	var out struct {
		TaskIDs []int `json:"task_ids"`
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&out)
	drainBody(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet: schedule %s: decoding response: %w", me, err)
	}
	return out.TaskIDs, nil
}

type resultsPage struct {
	Cursor  int            `json:"cursor"`
	Results []amigo.Result `json:"results"`
}

func (d *Driver) fetchPage(client *http.Client, cursor, limit int) (resultsPage, error) {
	var page resultsPage
	url := fmt.Sprintf("%s/admin/results?cursor=%d", d.BaseURL, cursor)
	if limit > 0 {
		url += fmt.Sprintf("&limit=%d", limit)
	}
	resp, err := client.Get(url)
	if err != nil {
		return page, err
	}
	defer drainBody(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return page, fmt.Errorf("fleet: results: HTTP %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&page)
	return page, err
}

func (d *Driver) fetchCursor(client *http.Client) (int, error) {
	page, err := d.fetchPage(client, -1, 0)
	return page.Cursor, err
}

// fetchResults pages through /admin/results from the given cursor.
func (d *Driver) fetchResults(client *http.Client, cursor int) ([]amigo.Result, error) {
	const pageSize = 5000
	var out []amigo.Result
	for {
		page, err := d.fetchPage(client, cursor, pageSize)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Results...)
		if len(page.Results) == 0 || page.Cursor <= cursor {
			return out, nil
		}
		cursor = page.Cursor
	}
}

// RunInProcess executes the same plan the way the paper's campaign ran:
// serially, one ME at a time, over the v1 one-task-per-poll protocol
// against a private control server. It is the oracle the fleet driver
// is cross-checked against: for equal (seed, label, heartbeat, plan) it
// produces byte-identical ingested datasets.
func RunInProcess(w *airalo.World, plan Plan, seed int64, label string, heartbeat bool) (*Campaign, error) {
	plan = plan.withDefaults()
	scheds := plan.Schedules()
	srv := amigo.NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	parent := rng.New(seed).Fork(label)
	start := vclock.Wall.Now()
	for _, sc := range scheds {
		dep := w.Deployments[sc.ISO]
		if dep == nil {
			return nil, fmt.Errorf("fleet: no deployment for country %q", sc.ISO)
		}
		ep := amigo.NewEndpoint(sc.Name, hs.URL, dep, parent.Fork(sc.Label))
		if err := ep.Register(); err != nil {
			return nil, err
		}
		if _, err := srv.ScheduleBatch(sc.Name, sc.Tasks); err != nil {
			return nil, err
		}
		if heartbeat {
			if err := ep.Heartbeat(); err != nil {
				return nil, err
			}
		}
		for {
			more, err := ep.RunOnce()
			if err != nil {
				return nil, err
			}
			if !more {
				break
			}
		}
	}
	results := srv.Results()
	return &Campaign{
		Plan:      plan,
		Schedules: scheds,
		Results:   results,
		Stats: Stats{
			MEs:            len(scheds),
			TasksScheduled: len(scheds) * plan.TasksPerME(),
			Results:        len(results),
			Elapsed:        vclock.Wall.Now().Sub(start),
		},
	}, nil
}

// runPool executes n index-addressed jobs on a bounded worker pool.
func runPool(workers, n int, job func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
