package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"roamsim/internal/amigo"
	"roamsim/internal/chaos"
	"roamsim/internal/obs"
	"roamsim/internal/shard"
)

// runReshardCampaign is runShardedCampaign with the restart budget the
// reshard scenarios need: every reshard drops every ME's server-side
// registration at once, so each ME burns one recovery per reshard on
// top of whatever chaos injects.
func runReshardCampaign(t *testing.T, proto string, cfg ShardedConfig, inj *chaos.Injector, reg *obs.Registry) (dsBlob []byte, table4, rtt string, f *ShardedFleet) {
	t.Helper()
	w := testWorld(t)
	plan := chaosTestPlan()
	f, err := NewShardedFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	var handler = f.Handler()
	if inj != nil {
		handler = inj.Middleware(handler)
	}
	hs := httptest.NewServer(handler)
	t.Cleanup(hs.Close)
	d := &Driver{BaseURL: hs.URL, Seed: testSeed, Workers: 4,
		LeaseBatch: 4, StreamLabel: "chaos-eq", Heartbeat: true,
		Chaos: inj, Proto: proto, Obs: reg, RestartBudget: 8}
	camp, err := d.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	// The campaign's last upload may have fired a reshard that is still
	// swapping; settle before anyone inspects topology or WAL state.
	f.WaitIdle()
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return blob, Table4(ds, plan).String(), RTTSummary(ds, plan).String(), f
}

// ingestReplay rebuilds the dataset blob from a raw WAL replay, the
// cold post-crash recovery path.
func ingestReplay(t *testing.T, replayed []amigo.Result) []byte {
	t.Helper()
	w := testWorld(t)
	plan := chaosTestPlan()
	camp := &Campaign{Plan: plan, Schedules: plan.Schedules(), Results: replayed}
	ds, err := Ingest(w.Reg, camp)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestReshardEquivalence is the resharding differential test: a
// campaign that live-reshards 1→4→2 mid-run — with and without WAL
// compaction riding along — must ingest the byte-identical dataset,
// Table 4, and RTT summary as the clean single-server run, and a cold
// replay of the final epoch's WAL set alone must rebuild that same
// dataset. Sharding topology changes, like shard kills and the wire
// codec, are deployment details that must never change data.
func TestReshardEquivalence(t *testing.T) {
	wantDS, wantT4, wantRTT := runProtoCampaign(t, amigo.ProtoV2, nil, 1)

	for _, compactAfter := range []int{0, 2} {
		t.Run(fmt.Sprintf("compactAfter=%d", compactAfter), func(t *testing.T) {
			reg := obs.NewRegistry()
			walDir := t.TempDir()
			cfg := ShardedConfig{
				Shards: 1, WALDir: walDir,
				SegmentBytes: 2048, // rotate briskly so compaction has prey
				CompactAfter: compactAfter,
				Obs:          reg,
				Reshards: []ReshardStep{
					{AfterUploads: 4, Shards: 4},
					{AfterUploads: 9, Shards: 2},
				},
			}
			gotDS, gotT4, gotRTT, f := runReshardCampaign(t, amigo.ProtoV3, cfg, nil, reg)

			if err := f.ReshardErr(); err != nil {
				t.Fatalf("reshard failed: %v", err)
			}
			if err := f.CompactErr(); err != nil {
				t.Fatalf("compaction failed: %v", err)
			}
			reshards, st := f.Reshards()
			if reshards != 2 {
				t.Fatalf("%d reshards completed, want 2", reshards)
			}
			if st.Records == 0 {
				t.Fatal("final reshard copied no records")
			}
			if got := f.Shards(); got != 2 {
				t.Fatalf("Shards() = %d after 1→4→2, want 2", got)
			}
			if got := f.Epoch(); got != 2 {
				t.Fatalf("Epoch() = %d after two reshards, want 2", got)
			}
			if got := reg.Counter("fleet_reshards_total").Value(); got != 2 {
				t.Fatalf("fleet_reshards_total = %d, want 2", got)
			}
			if compactAfter > 0 {
				var buf bytes.Buffer
				reg.WritePrometheus(&buf)
				if !bytes.Contains(buf.Bytes(), []byte("walsink_compactions_total")) {
					t.Error("CompactAfter set but no compaction ran — shrink SegmentBytes")
				}
			}

			if !bytes.Equal(gotDS, wantDS) {
				t.Error("resharded dataset differs from single-server baseline")
			}
			if gotT4 != wantT4 {
				t.Errorf("Table 4 differs:\nresharded:\n%s\nbaseline:\n%s", gotT4, wantT4)
			}
			if gotRTT != wantRTT {
				t.Errorf("RTT summary differs:\nresharded:\n%s\nbaseline:\n%s", gotRTT, wantRTT)
			}

			// Cold recovery across epochs: the manifest must point at the
			// final 2-shard set, and replaying it alone rebuilds the
			// byte-identical dataset.
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			epoch, shards, err := LatestWALSet(walDir)
			if err != nil {
				t.Fatal(err)
			}
			if epoch != 2 || shards != 2 {
				t.Fatalf("manifest says epoch=%d shards=%d, want 2/2", epoch, shards)
			}
			replayed, err := ReplayLatestWALs(walDir)
			if err != nil {
				t.Fatal(err)
			}
			if blob := ingestReplay(t, replayed); !bytes.Equal(blob, wantDS) {
				t.Error("dataset rebuilt from final-epoch WAL replay differs from baseline")
			}
		})
	}
}

// TestCompactionCrashRecovery kills a shard at the nastiest compaction
// crash point — the compacted segment is committed in place, the source
// segments it covers are still on disk — mid-campaign, and requires the
// campaign to ingest the byte-identical dataset and a cold replay of
// the surviving WALs (which must arbitrate artifact vs sources on
// reopen) to rebuild it.
func TestCompactionCrashRecovery(t *testing.T) {
	wantDS, wantT4, _ := runProtoCampaign(t, amigo.ProtoV2, nil, 1)

	reg := obs.NewRegistry()
	walDir := t.TempDir()
	cfg := ShardedConfig{
		Shards: 2, WALDir: walDir,
		SegmentBytes: 1024, // many small segments: compaction fires early
		CompactAfter: 2,
		Obs:          reg,
		ForceCompactKill: true,
		// Crash the shard that owns an ME in this small plan; placement
		// is a pure function of the name.
		ForceCompactKillShard: shard.NewRing(2).Shard("me-PAK-0"),
	}
	gotDS, gotT4, _, f := runReshardCampaign(t, amigo.ProtoV3, cfg, nil, reg)

	if f.CompactKills() == 0 {
		t.Fatal("no compact-kill fired; the test proved nothing")
	}
	if f.Kills() == 0 {
		t.Fatal("compact-kill did not kill the shard")
	}
	if err := f.CompactErr(); err != nil {
		t.Fatalf("compaction failed outside the injected crash: %v", err)
	}
	if got := reg.Counter("fleet_shard_recoveries_total").Value(); got == 0 {
		t.Error("no ME ran shard recovery despite a compact-kill")
	}
	if !bytes.Equal(gotDS, wantDS) {
		t.Error("dataset after compact-kill differs from clean single-server baseline")
	}
	if gotT4 != wantT4 {
		t.Errorf("Table 4 after compact-kill differs:\ngot:\n%s\nwant:\n%s", gotT4, wantT4)
	}

	// Cold recovery: reopen from disk — resolving whatever compaction
	// debris the crash left — and rebuild the dataset from replay alone.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayLatestWALs(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if blob := ingestReplay(t, replayed); !bytes.Equal(blob, wantDS) {
		t.Error("dataset rebuilt from WAL replay after compact-kill differs from baseline")
	}
}

// TestCompactionChaosSchedule runs compaction kills off the seeded
// chaos schedule — on top of heavy client/server chaos — instead of the
// deterministic one-shot, and requires the same data invariants.
func TestCompactionChaosSchedule(t *testing.T) {
	wantDS, _, _ := runProtoCampaign(t, amigo.ProtoV2, nil, 1)

	ccfg := chaos.Heavy()
	ccfg.CompactKill = 0.9
	ccfg.MaxCompactKills = 2
	inj := chaos.NewInjector(7, ccfg)
	reg := obs.NewRegistry()
	walDir := t.TempDir()
	cfg := ShardedConfig{
		Shards: 2, WALDir: walDir,
		SegmentBytes: 1024,
		CompactAfter: 2,
		Chaos:        inj,
		Obs:          reg,
	}
	gotDS, _, _, f := runReshardCampaign(t, amigo.ProtoV3, cfg, inj, reg)

	if f.CompactKills() == 0 {
		t.Skip("seeded schedule injected no compact-kill at this seed; covered by the force-kill test")
	}
	if got := inj.Counts()["compact-kill"]; got != f.CompactKills() {
		t.Errorf("injector recorded %d compact-kills, fleet performed %d", got, f.CompactKills())
	}
	if !bytes.Equal(gotDS, wantDS) {
		t.Error("dataset under chaos compact-kills differs from clean baseline")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayLatestWALs(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if blob := ingestReplay(t, replayed); !bytes.Equal(blob, wantDS) {
		t.Error("dataset rebuilt from WAL replay under chaos compact-kills differs from baseline")
	}
}
