// Package ipx models the IP Packet Exchange ecosystem: the providers
// that interconnect mobile operators, the PGW infrastructure they (and
// third parties) host, and the pre-configured breakout agreements that
// decide where a roaming session's traffic reaches the public internet.
//
// The paper's central infrastructural finding lives here: PGW selection
// is *static*, arranged per b-MNO, and frequently geographically
// suboptimal. The Selector interface captures that policy, with a
// geo-nearest alternative implemented for the ablation benchmark that
// quantifies what static arrangements cost.
package ipx

import (
	"fmt"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/rng"
)

// Architecture is a roaming data-path architecture (Figure 1).
type Architecture string

// The three roaming architectures.
const (
	HR   Architecture = "HR"   // home-routed: break out at the b-MNO
	LBO  Architecture = "LBO"  // local breakout: break out at the v-MNO
	IHBO Architecture = "IHBO" // IPX hub breakout: third-party PGW
)

// Native marks a non-roaming configuration (v-MNO == b-MNO); it is not a
// roaming architecture but shares the label space in reports.
const Native Architecture = "native"

// PGWSite is one location where a provider hosts PGWs.
type PGWSite struct {
	City    string
	Country string // ISO3
	Loc     geo.Point
	// Addrs are the PGW IP addresses at this site. Observing these (as
	// the first public traceroute hop) is how the paper counts PGWs.
	Addrs []ipaddr.Addr
}

// AssignmentPolicy is how a provider maps sessions to PGW addresses
// within a site, reproducing Section 4.3.2's observation that OVH pins
// addresses per b-MNO while Packet Host balances uniformly.
type AssignmentPolicy string

// Assignment policies.
const (
	AssignPerBMNO AssignmentPolicy = "per-bmno" // fixed subset per issuer
	AssignUniform AssignmentPolicy = "uniform"  // any address, any issuer
	AssignSticky  AssignmentPolicy = "sticky"   // one address for everyone
)

// PGWProvider is an organization hosting PGWs reachable over the IPX
// network: an IPX-P, a cloud host, or (for HR) the b-MNO itself.
type PGWProvider struct {
	Name   string
	ASN    ipreg.ASN
	Sites  []PGWSite
	Policy AssignmentPolicy
	// PrivateHops is the provider-core depth before the CG-NAT: the
	// number of private hops a traceroute sees inside this provider
	// (OVH ≈ 3, Packet Host ≈ 6-7, Singtel HR ≈ 8).
	PrivateHops int
	// CGNATSilent marks providers whose CG-NAT drops ICMP, producing the
	// single-ASN traceroutes of Figure 6.
	CGNATSilent bool
	// Assignments optionally pins issuers to PGW address subsets when
	// Policy is AssignPerBMNO (the OVH arrangement: Telna Mobile pinned
	// to one address, Play alternating among the other five). Issuers
	// not listed fall back to the full address set.
	Assignments map[string][]ipaddr.Addr
}

// Site returns the site hosting the given address.
func (p *PGWProvider) Site(addr ipaddr.Addr) (PGWSite, bool) {
	for _, s := range p.Sites {
		for _, a := range s.Addrs {
			if a == addr {
				return s, true
			}
		}
	}
	return PGWSite{}, false
}

// AllAddrs returns every PGW address across the provider's sites.
func (p *PGWProvider) AllAddrs() []ipaddr.Addr {
	var out []ipaddr.Addr
	for _, s := range p.Sites {
		out = append(out, s.Addrs...)
	}
	return out
}

// Breakout is a resolved breakout decision for one session.
type Breakout struct {
	Arch     Architecture
	Provider *PGWProvider
	Site     PGWSite
	Addr     ipaddr.Addr // the PGW address serving the session
}

// Agreement is a pre-configured arrangement between a b-MNO and one or
// more PGW providers. For HR the single provider is the b-MNO itself and
// SiteCountry pins the home country.
type Agreement struct {
	BMNOName string
	Arch     Architecture
	// Options lists the provider+site pairs the agreement allows; the
	// session-level choice alternates among them (Play and Telna Mobile
	// alternated between Packet Host/NLD and OVH/FRA).
	Options []AgreementOption
}

// AgreementOption names one allowed (provider, site) pair with a weight.
type AgreementOption struct {
	Provider *PGWProvider
	SiteCity string // must match a provider site's City
	Weight   float64
}

// Validate checks the agreement's internal consistency.
func (a *Agreement) Validate() error {
	if len(a.Options) == 0 {
		return fmt.Errorf("ipx: agreement for %s has no options", a.BMNOName)
	}
	if a.Arch != HR && a.Arch != IHBO && a.Arch != LBO {
		return fmt.Errorf("ipx: agreement for %s has bad architecture %q", a.BMNOName, a.Arch)
	}
	for _, opt := range a.Options {
		if opt.Provider == nil {
			return fmt.Errorf("ipx: agreement for %s has nil provider", a.BMNOName)
		}
		if opt.Weight < 0 {
			return fmt.Errorf("ipx: agreement for %s has negative weight", a.BMNOName)
		}
		found := false
		for _, s := range opt.Provider.Sites {
			if s.City == opt.SiteCity {
				if len(s.Addrs) == 0 {
					return fmt.Errorf("ipx: site %s of %s has no PGW addresses", s.City, opt.Provider.Name)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("ipx: provider %s has no site %q", opt.Provider.Name, opt.SiteCity)
		}
	}
	return nil
}

// Selector chooses a breakout for a session.
type Selector interface {
	// Select resolves the breakout for a session of bMNO's subscriber
	// currently attached near userLoc.
	Select(bMNO string, userLoc geo.Point, src *rng.Source) (Breakout, error)
}

// StaticSelector implements the pre-arranged selection the paper
// observes: the b-MNO fully determines the candidate set, independent of
// where the user actually is.
type StaticSelector struct {
	agreements map[string]*Agreement
}

// NewStaticSelector builds a selector from validated agreements.
func NewStaticSelector(agreements []*Agreement) (*StaticSelector, error) {
	m := make(map[string]*Agreement, len(agreements))
	for _, a := range agreements {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := m[a.BMNOName]; dup {
			return nil, fmt.Errorf("ipx: duplicate agreement for %s", a.BMNOName)
		}
		m[a.BMNOName] = a
	}
	return &StaticSelector{agreements: m}, nil
}

// Select implements Selector. The user location is deliberately ignored —
// that is the finding.
func (s *StaticSelector) Select(bMNO string, _ geo.Point, src *rng.Source) (Breakout, error) {
	a, ok := s.agreements[bMNO]
	if !ok {
		return Breakout{}, fmt.Errorf("ipx: no agreement for b-MNO %q", bMNO)
	}
	weights := make([]float64, len(a.Options))
	for i, opt := range a.Options {
		weights[i] = opt.Weight
		if weights[i] == 0 {
			weights[i] = 1
		}
	}
	opt := a.Options[src.WeightedIndex(weights)]
	site, addrs := siteOf(opt.Provider, opt.SiteCity)
	addr, err := pickAddr(opt.Provider, bMNO, addrs, src)
	if err != nil {
		return Breakout{}, err
	}
	return Breakout{Arch: a.Arch, Provider: opt.Provider, Site: site, Addr: addr}, nil
}

// Agreement returns the agreement for a b-MNO, if any.
func (s *StaticSelector) Agreement(bMNO string) (*Agreement, bool) {
	a, ok := s.agreements[bMNO]
	return a, ok
}

// GeoNearestSelector is the counterfactual policy for the ablation: pick
// the candidate site closest to the user among ALL providers' sites in
// the pool, the "dynamic routing" IHBO theoretically enables.
type GeoNearestSelector struct {
	Arch Architecture
	Pool []*PGWProvider
}

// Select implements Selector by minimizing great-circle distance to the
// user.
func (g *GeoNearestSelector) Select(bMNO string, userLoc geo.Point, src *rng.Source) (Breakout, error) {
	if len(g.Pool) == 0 {
		return Breakout{}, fmt.Errorf("ipx: empty provider pool")
	}
	var best Breakout
	bestDist := -1.0
	for _, p := range g.Pool {
		for _, site := range p.Sites {
			if len(site.Addrs) == 0 {
				continue
			}
			d := geo.DistanceKm(userLoc, site.Loc)
			if bestDist < 0 || d < bestDist {
				addr, err := pickAddr(p, bMNO, site.Addrs, src)
				if err != nil {
					continue
				}
				best = Breakout{Arch: g.Arch, Provider: p, Site: site, Addr: addr}
				bestDist = d
			}
		}
	}
	if bestDist < 0 {
		return Breakout{}, fmt.Errorf("ipx: no usable site in pool")
	}
	return best, nil
}

// PickBreakout resolves one session's breakout from an explicit option
// list, applying option weights and the chosen provider's assignment
// policy. It is the per-deployment variant of StaticSelector.Select used
// when a visited country's arrangement restricts the b-MNO-level
// agreement (e.g. Saudi Arabia's Telna eSIM using Packet Host only).
func PickBreakout(arch Architecture, options []AgreementOption, bMNO string, src *rng.Source) (Breakout, error) {
	if len(options) == 0 {
		return Breakout{}, fmt.Errorf("ipx: no breakout options")
	}
	weights := make([]float64, len(options))
	for i, opt := range options {
		weights[i] = opt.Weight
		if weights[i] == 0 {
			weights[i] = 1
		}
	}
	opt := options[src.WeightedIndex(weights)]
	site, addrs := siteOf(opt.Provider, opt.SiteCity)
	if len(addrs) == 0 {
		return Breakout{}, fmt.Errorf("ipx: provider %s has no site %q", opt.Provider.Name, opt.SiteCity)
	}
	addr, err := pickAddr(opt.Provider, bMNO, addrs, src)
	if err != nil {
		return Breakout{}, err
	}
	return Breakout{Arch: arch, Provider: opt.Provider, Site: site, Addr: addr}, nil
}

func siteOf(p *PGWProvider, city string) (PGWSite, []ipaddr.Addr) {
	for _, s := range p.Sites {
		if s.City == city {
			return s, s.Addrs
		}
	}
	return PGWSite{}, nil
}

// pickAddr applies the provider's assignment policy.
func pickAddr(p *PGWProvider, bMNO string, addrs []ipaddr.Addr, src *rng.Source) (ipaddr.Addr, error) {
	if len(addrs) == 0 {
		return 0, fmt.Errorf("ipx: no PGW addresses at %s", p.Name)
	}
	switch p.Policy {
	case AssignSticky:
		return addrs[0], nil
	case AssignPerBMNO:
		if pinned, ok := p.Assignments[bMNO]; ok && len(pinned) > 0 {
			// Intersect the pinned set with the site's addresses so the
			// assignment respects the chosen site.
			inSite := make(map[ipaddr.Addr]bool, len(addrs))
			for _, a := range addrs {
				inSite[a] = true
			}
			usable := make([]ipaddr.Addr, 0, len(pinned))
			for _, a := range pinned {
				if inSite[a] {
					usable = append(usable, a)
				}
			}
			if len(usable) > 0 {
				return rng.Pick(src, usable), nil
			}
		}
		return rng.Pick(src, addrs), nil
	default: // AssignUniform
		return rng.Pick(src, addrs), nil
	}
}
