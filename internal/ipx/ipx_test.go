package ipx

import (
	"testing"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/rng"
)

func addrs(ss ...string) []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(ss))
	for i, s := range ss {
		out[i] = ipaddr.MustParse(s)
	}
	return out
}

func testProviders() (packetHost, ovh, singtel *PGWProvider) {
	packetHost = &PGWProvider{
		Name: "Packet Host", ASN: 54825, Policy: AssignUniform, PrivateHops: 6,
		Sites: []PGWSite{
			{City: "Amsterdam", Country: "NLD", Loc: geo.MustCity("Amsterdam").Loc,
				Addrs: addrs("147.75.32.1", "147.75.32.2")},
			{City: "Ashburn", Country: "USA", Loc: geo.MustCity("Ashburn").Loc,
				Addrs: addrs("147.75.64.1", "147.75.64.2")},
		},
	}
	ovh = &PGWProvider{
		Name: "OVH SAS", ASN: 16276, Policy: AssignPerBMNO, PrivateHops: 3,
		Sites: []PGWSite{
			{City: "Lille", Country: "FRA", Loc: geo.MustCity("Lille").Loc,
				Addrs: addrs("51.38.1.1", "51.38.1.2", "51.38.1.3", "51.38.1.4", "51.38.1.5")},
			{City: "Wattrelos", Country: "FRA", Loc: geo.MustCity("Wattrelos").Loc,
				Addrs: addrs("51.38.2.1")},
		},
		Assignments: map[string][]ipaddr.Addr{
			"Telna Mobile": addrs("51.38.1.1"),
			"Play":         addrs("51.38.1.2", "51.38.1.3", "51.38.1.4", "51.38.1.5"),
		},
	}
	singtel = &PGWProvider{
		Name: "Singtel", ASN: 45143, Policy: AssignUniform, PrivateHops: 8,
		Sites: []PGWSite{
			{City: "Singapore", Country: "SGP", Loc: geo.MustCity("Singapore").Loc,
				Addrs: addrs("202.166.126.1", "202.166.126.2", "202.166.126.3", "202.166.126.4")},
		},
	}
	return
}

func TestAgreementValidate(t *testing.T) {
	ph, _, _ := testProviders()
	good := &Agreement{BMNOName: "Play", Arch: IHBO,
		Options: []AgreementOption{{Provider: ph, SiteCity: "Amsterdam", Weight: 1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid agreement rejected: %v", err)
	}
	bad := []*Agreement{
		{BMNOName: "x", Arch: IHBO},
		{BMNOName: "x", Arch: "weird", Options: good.Options},
		{BMNOName: "x", Arch: IHBO, Options: []AgreementOption{{Provider: ph, SiteCity: "Atlantis"}}},
		{BMNOName: "x", Arch: IHBO, Options: []AgreementOption{{Provider: nil, SiteCity: "Amsterdam"}}},
		{BMNOName: "x", Arch: IHBO, Options: []AgreementOption{{Provider: ph, SiteCity: "Amsterdam", Weight: -1}}},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad agreement %d accepted", i)
		}
	}
}

func TestStaticSelectorIgnoresLocation(t *testing.T) {
	ph, _, _ := testProviders()
	sel, err := NewStaticSelector([]*Agreement{
		{BMNOName: "Polkomtel", Arch: IHBO,
			Options: []AgreementOption{{Provider: ph, SiteCity: "Ashburn", Weight: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	// A user in Paris and a user in Tashkent both break out in Virginia —
	// the France/Uzbekistan finding of Figure 4.
	for _, loc := range []geo.Point{geo.MustCity("Paris").Loc, geo.MustCity("Tashkent").Loc} {
		b, err := sel.Select("Polkomtel", loc, src)
		if err != nil {
			t.Fatal(err)
		}
		if b.Site.City != "Ashburn" || b.Arch != IHBO {
			t.Errorf("breakout = %s/%s, want Ashburn/IHBO", b.Site.City, b.Arch)
		}
	}
}

func TestStaticSelectorAlternates(t *testing.T) {
	ph, ovh, _ := testProviders()
	sel, err := NewStaticSelector([]*Agreement{
		{BMNOName: "Play", Arch: IHBO, Options: []AgreementOption{
			{Provider: ph, SiteCity: "Amsterdam", Weight: 1},
			{Provider: ovh, SiteCity: "Lille", Weight: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	seen := map[string]int{}
	for i := 0; i < 400; i++ {
		b, err := sel.Select("Play", geo.Point{}, src)
		if err != nil {
			t.Fatal(err)
		}
		seen[b.Provider.Name]++
	}
	if seen["Packet Host"] < 100 || seen["OVH SAS"] < 100 {
		t.Errorf("providers should alternate, got %v", seen)
	}
}

func TestPerBMNOAssignment(t *testing.T) {
	_, ovh, _ := testProviders()
	sel, err := NewStaticSelector([]*Agreement{
		{BMNOName: "Telna Mobile", Arch: IHBO,
			Options: []AgreementOption{{Provider: ovh, SiteCity: "Lille"}}},
		{BMNOName: "Play", Arch: IHBO,
			Options: []AgreementOption{{Provider: ovh, SiteCity: "Lille"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	pinned := ipaddr.MustParse("51.38.1.1")
	playSeen := map[ipaddr.Addr]bool{}
	for i := 0; i < 300; i++ {
		bt, _ := sel.Select("Telna Mobile", geo.Point{}, src)
		if bt.Addr != pinned {
			t.Fatalf("Telna must be pinned to %s, got %s", pinned, bt.Addr)
		}
		bp, _ := sel.Select("Play", geo.Point{}, src)
		if bp.Addr == pinned {
			t.Fatalf("Play must never use Telna's pinned address")
		}
		playSeen[bp.Addr] = true
	}
	if len(playSeen) != 4 {
		t.Errorf("Play should rotate across 4 addresses, saw %d", len(playSeen))
	}
}

func TestUnknownBMNO(t *testing.T) {
	sel, _ := NewStaticSelector(nil)
	if _, err := sel.Select("Nobody", geo.Point{}, rng.New(4)); err == nil {
		t.Error("unknown b-MNO should error")
	}
}

func TestDuplicateAgreementRejected(t *testing.T) {
	ph, _, _ := testProviders()
	opts := []AgreementOption{{Provider: ph, SiteCity: "Amsterdam"}}
	_, err := NewStaticSelector([]*Agreement{
		{BMNOName: "Play", Arch: IHBO, Options: opts},
		{BMNOName: "Play", Arch: IHBO, Options: opts},
	})
	if err == nil {
		t.Error("duplicate agreements should be rejected")
	}
}

func TestGeoNearestSelector(t *testing.T) {
	ph, ovh, singtel := testProviders()
	g := &GeoNearestSelector{Arch: IHBO, Pool: []*PGWProvider{ph, ovh, singtel}}
	src := rng.New(5)
	// A user in Paris should break out at Lille/Wattrelos (OVH), not
	// Singapore or Ashburn.
	b, err := g.Select("Play", geo.MustCity("Paris").Loc, src)
	if err != nil {
		t.Fatal(err)
	}
	if b.Provider.Name != "OVH SAS" {
		t.Errorf("Paris user routed to %s/%s", b.Provider.Name, b.Site.City)
	}
	// A user in Kuala Lumpur should get Singapore.
	b, err = g.Select("Play", geo.MustCity("Kuala Lumpur").Loc, src)
	if err != nil {
		t.Fatal(err)
	}
	if b.Site.City != "Singapore" {
		t.Errorf("KL user routed to %s", b.Site.City)
	}
	empty := &GeoNearestSelector{Arch: IHBO}
	if _, err := empty.Select("Play", geo.Point{}, src); err == nil {
		t.Error("empty pool should error")
	}
}

func TestProviderSiteLookup(t *testing.T) {
	ph, _, _ := testProviders()
	s, ok := ph.Site(ipaddr.MustParse("147.75.64.2"))
	if !ok || s.City != "Ashburn" {
		t.Errorf("Site lookup: ok=%v city=%s", ok, s.City)
	}
	if _, ok := ph.Site(ipaddr.MustParse("1.2.3.4")); ok {
		t.Error("foreign address should not resolve to a site")
	}
	if got := len(ph.AllAddrs()); got != 4 {
		t.Errorf("AllAddrs = %d, want 4", got)
	}
}

func TestStickyPolicy(t *testing.T) {
	p := &PGWProvider{Name: "Wireless Logic", ASN: 51320, Policy: AssignSticky,
		Sites: []PGWSite{{City: "London", Country: "GBR", Loc: geo.MustCity("London").Loc,
			Addrs: addrs("94.1.1.1", "94.1.1.2")}}}
	sel, err := NewStaticSelector([]*Agreement{
		{BMNOName: "Telecom Italia", Arch: IHBO,
			Options: []AgreementOption{{Provider: p, SiteCity: "London"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	first, _ := sel.Select("Telecom Italia", geo.Point{}, src)
	for i := 0; i < 50; i++ {
		b, _ := sel.Select("Telecom Italia", geo.Point{}, src)
		if b.Addr != first.Addr {
			t.Fatal("sticky policy must always return the same address")
		}
	}
}

func TestAgreementLookup(t *testing.T) {
	ph, _, _ := testProviders()
	sel, err := NewStaticSelector([]*Agreement{
		{BMNOName: "Play", Arch: IHBO,
			Options: []AgreementOption{{Provider: ph, SiteCity: "Amsterdam"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, ok := sel.Agreement("Play")
	if !ok || a.Arch != IHBO {
		t.Errorf("Agreement lookup: ok=%v %+v", ok, a)
	}
	if _, ok := sel.Agreement("Nobody"); ok {
		t.Error("unknown b-MNO should miss")
	}
}

func TestPickBreakoutDirect(t *testing.T) {
	ph, ovh, _ := testProviders()
	src := rng.New(42)
	opts := []AgreementOption{
		{Provider: ph, SiteCity: "Amsterdam", Weight: 1},
		{Provider: ovh, SiteCity: "Lille", Weight: 1},
	}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		b, err := PickBreakout(IHBO, opts, "Play", src)
		if err != nil {
			t.Fatal(err)
		}
		if b.Arch != IHBO {
			t.Fatal("arch not propagated")
		}
		seen[b.Provider.Name] = true
	}
	if len(seen) != 2 {
		t.Errorf("alternation missing: %v", seen)
	}
	if _, err := PickBreakout(IHBO, nil, "Play", src); err == nil {
		t.Error("empty options should error")
	}
	bad := []AgreementOption{{Provider: ph, SiteCity: "Atlantis"}}
	if _, err := PickBreakout(IHBO, bad, "Play", src); err == nil {
		t.Error("unknown site should error")
	}
}
