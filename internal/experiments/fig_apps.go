package experiments

import (
	"fmt"

	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/report"
	"roamsim/internal/stats"
)

// cdnTable builds a per-country download-time table for one provider.
func (r *Runner) cdnTable(provider string) (*report.Table, error) {
	cdns, err := r.CDNFetches()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("CDN download time via %s (jquery.min.js)", provider),
		Headers: []string{"Country", "Config", "Median (ms)", "Mean (ms)", "MISS rate"},
	}
	for _, iso := range deviceCountries {
		esimArch := archOf(cdns, iso)
		for _, kind := range []mno.SIMKind{mno.PhysicalSIM, mno.ESIM} {
			var v []float64
			misses, total := 0, 0
			for _, o := range cdns {
				if o.ISO == iso && o.Kind == kind && o.Provider == provider {
					v = append(v, o.TotalMs)
					total++
					if o.Cache == "MISS" {
						misses++
					}
				}
			}
			if len(v) == 0 {
				continue
			}
			label := "SIM"
			if kind == mno.ESIM {
				label = configLabel(kind, esimArch)
			}
			t.AddRow(iso, label,
				fmt.Sprintf("%.0f", stats.Median(v)),
				fmt.Sprintf("%.0f", stats.Mean(v)),
				report.Pct(float64(misses)/float64(total)))
		}
	}
	return t, nil
}

func archOf(cdns []CDNObs, iso string) ipx.Architecture {
	for _, o := range cdns {
		if o.ISO == iso && o.Kind == mno.ESIM {
			return o.Arch
		}
	}
	return ipx.Native
}

// Figure14aResult bundles the Cloudflare analysis with the cross-
// architecture means the paper quotes.
type Figure14aResult struct {
	Table *report.Table
	// MeanByArch holds the mean eSIM download times per architecture
	// (paper: IHBO 1316 ms, native 306/514 ms, HR 3203/1781 ms).
	MeanByArch map[ipx.Architecture]float64
}

// Figure14a reports Cloudflare download times and the architecture-
// level means.
func (r *Runner) Figure14a() (*Figure14aResult, error) {
	t, err := r.cdnTable("Cloudflare")
	if err != nil {
		return nil, err
	}
	cdns, err := r.CDNFetches()
	if err != nil {
		return nil, err
	}
	by := map[ipx.Architecture][]float64{}
	for _, o := range cdns {
		if o.Kind == mno.ESIM && o.Provider == "Cloudflare" {
			by[o.Arch] = append(by[o.Arch], o.TotalMs)
		}
	}
	res := &Figure14aResult{Table: t, MeanByArch: map[ipx.Architecture]float64{}}
	for arch, v := range by {
		res.MeanByArch[arch] = stats.Mean(v)
	}
	return res, nil
}

// Figure20 reports the remaining four CDN providers.
func (r *Runner) Figure20() ([]*report.Table, error) {
	var out []*report.Table
	for _, prov := range []string{"Google CDN", "jQuery CDN", "jsDelivr", "Microsoft Ajax"} {
		t, err := r.cdnTable(prov)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Figure14bResult bundles the DNS analysis.
type Figure14bResult struct {
	Table *report.Table
	// GoogleResolverShareSameCountry is the fraction of IHBO lookups
	// answered by a resolver in the PGW's country (paper: 74%).
	GoogleResolverShareSameCountry float64
	// MedianIncrease maps ISO -> eSIM median / SIM median - 1.
	MedianIncrease map[string]float64
}

// Figure14b reports DNS lookup times per country and configuration.
func (r *Runner) Figure14b() (*Figure14bResult, error) {
	dnses, err := r.DNSLookups()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Figure 14b: DNS lookup time",
		Headers: []string{"Country", "Config", "Median (ms)", "DoH", "Resolver"},
	}
	res := &Figure14bResult{Table: t, MedianIncrease: map[string]float64{}}
	var ihboSame, ihboTotal int
	for _, iso := range deviceCountries {
		medians := map[mno.SIMKind]float64{}
		for _, kind := range []mno.SIMKind{mno.PhysicalSIM, mno.ESIM} {
			var v []float64
			var doh bool
			var resolver string
			var arch ipx.Architecture
			for _, o := range dnses {
				if o.ISO == iso && o.Kind == kind {
					v = append(v, o.DurationMs)
					doh = o.DoH
					arch = o.Arch
					if o.ResolverASN == 15169 {
						resolver = "Google DNS"
					} else {
						resolver = "operator"
					}
					if kind == mno.ESIM && o.Arch == ipx.IHBO {
						ihboTotal++
						if o.ResolverCountry == o.PGWCountry {
							ihboSame++
						}
					}
				}
			}
			if len(v) == 0 {
				continue
			}
			medians[kind] = stats.Median(v)
			label := "SIM"
			if kind == mno.ESIM {
				label = configLabel(kind, arch)
			}
			t.AddRow(iso, label, fmt.Sprintf("%.0f", stats.Median(v)),
				fmt.Sprintf("%v", doh), resolver)
		}
		if medians[mno.PhysicalSIM] > 0 && medians[mno.ESIM] > 0 {
			res.MedianIncrease[iso] = medians[mno.ESIM]/medians[mno.PhysicalSIM] - 1
		}
	}
	if ihboTotal > 0 {
		res.GoogleResolverShareSameCountry = float64(ihboSame) / float64(ihboTotal)
	}
	return res, nil
}

// Figure15 reports the YouTube playback resolution distribution per
// country and configuration.
func (r *Runner) Figure15() (*report.Table, error) {
	videos, err := r.Videos()
	if err != nil {
		return nil, err
	}
	rungs := []string{"480p", "720p", "1080p", "1440p"}
	t := &report.Table{
		Title:   "Figure 15: YouTube playback resolution shares",
		Headers: append([]string{"Country", "Config"}, rungs...),
	}
	for _, iso := range deviceCountries {
		if iso == "ESP" || iso == "GBR" {
			continue
		}
		for _, kind := range []mno.SIMKind{mno.PhysicalSIM, mno.ESIM} {
			shareSum := map[string]float64{}
			n := 0
			var arch ipx.Architecture
			for _, o := range videos {
				if o.ISO == iso && o.Kind == kind {
					for rung, share := range o.Shares {
						shareSum[rung] += share
					}
					arch = o.Arch
					n++
				}
			}
			if n == 0 {
				continue
			}
			label := "SIM"
			if kind == mno.ESIM {
				label = configLabel(kind, arch)
			}
			row := []any{iso, label}
			for _, rung := range rungs {
				row = append(row, report.Pct(shareSum[rung]/float64(n)))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}
