package experiments

import (
	"fmt"
	"net/http/httptest"

	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/report"
	"roamsim/internal/rng"
	"roamsim/internal/stats"
	"roamsim/internal/webcampaign"
)

// Figure11Result bundles the latency comparison and its headline
// statistics.
type Figure11Result struct {
	Table *report.Table
	// HRInflation / IHBOInflation are the mean latency increases of
	// roaming eSIMs over their physical SIMs (the paper: 621% and 64%).
	HRInflation, IHBOInflation float64
	// ESIMFracAbove150 / SIMFracAbove150 are the "less desirable
	// latency" fractions (the paper: 14.5% vs 3%).
	ESIMFracAbove150, SIMFracAbove150 float64
	// RoamingTTestP is Welch's p-value for SIM vs roaming-eSIM RTTs;
	// NativeTTestP the same for the native-eSIM countries.
	RoamingTTestP, NativeTTestP float64
	// LeveneP tests variance homogeneity between SIM and eSIM RTTs.
	LeveneP float64
}

// Figure11 reports RTT to Facebook, Google (final traceroute hop) and
// Ookla per country and configuration, plus the paper's headline
// statistics.
func (r *Runner) Figure11() (*Figure11Result, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	speeds, err := r.Speedtests()
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "Figure 11: RTT to Facebook / Google / Ookla",
		Headers: []string{"Country", "Config", "FB median (ms)", "GGL median (ms)", "Ookla median (ms)"},
	}
	// Collect per-country/config RTT sets.
	rttOf := func(iso string, kind mno.SIMKind, target string) []float64 {
		var v []float64
		for _, o := range traces {
			if o.ISO == iso && o.Kind == kind && o.Target == target {
				v = append(v, o.PA.FinalRTTms)
			}
		}
		return v
	}
	ooklaOf := func(iso string, kind mno.SIMKind) []float64 {
		var v []float64
		for _, o := range speeds {
			if o.ISO == iso && o.Kind == kind {
				v = append(v, o.LatencyMs)
			}
		}
		return v
	}
	var simAll, esimRoamAll, esimNativeAll, simNativeAll []float64
	var hrRatios, ihboRatios []float64
	for _, iso := range deviceCountries {
		var arch ipx.Architecture
		for _, o := range traces {
			if o.ISO == iso && o.Kind == mno.ESIM {
				arch = o.Arch
				break
			}
		}
		for _, kind := range []mno.SIMKind{mno.PhysicalSIM, mno.ESIM} {
			fb, ggl := rttOf(iso, kind, "Facebook"), rttOf(iso, kind, "Google")
			ook := ooklaOf(iso, kind)
			if len(fb) == 0 {
				continue
			}
			t.AddRow(iso, configLabel(kind, arch),
				fmt.Sprintf("%.0f", stats.Median(fb)),
				fmt.Sprintf("%.0f", stats.Median(ggl)),
				fmt.Sprintf("%.0f", stats.Median(ook)))
			all := append(append([]float64{}, fb...), ggl...)
			switch {
			case kind == mno.PhysicalSIM && arch == ipx.Native:
				simNativeAll = append(simNativeAll, all...)
				simAll = append(simAll, all...)
			case kind == mno.PhysicalSIM:
				simAll = append(simAll, all...)
			case arch == ipx.Native:
				esimNativeAll = append(esimNativeAll, all...)
			default:
				esimRoamAll = append(esimRoamAll, all...)
			}
		}
		// Per-country inflation ratios (eSIM mean / SIM mean - 1).
		simMean := stats.Mean(append(rttOf(iso, mno.PhysicalSIM, "Google"), rttOf(iso, mno.PhysicalSIM, "Facebook")...))
		esimMean := stats.Mean(append(rttOf(iso, mno.ESIM, "Google"), rttOf(iso, mno.ESIM, "Facebook")...))
		if simMean > 0 && esimMean > 0 {
			ratio := esimMean/simMean - 1
			switch arch {
			case ipx.HR:
				hrRatios = append(hrRatios, ratio)
			case ipx.IHBO:
				ihboRatios = append(ihboRatios, ratio)
			}
		}
	}

	res := &Figure11Result{
		Table:            t,
		HRInflation:      stats.Mean(hrRatios),
		IHBOInflation:    stats.Mean(ihboRatios),
		ESIMFracAbove150: stats.FractionAbove(esimRoamAll, 150),
		SIMFracAbove150:  stats.FractionAbove(simAll, 150),
	}
	if tt, err := stats.WelchTTest(simAll, esimRoamAll); err == nil {
		res.RoamingTTestP = tt.P
	}
	if tt, err := stats.WelchTTest(simNativeAll, esimNativeAll); err == nil {
		res.NativeTTestP = tt.P
	}
	if _, p, err := stats.LeveneTest(simAll, esimRoamAll); err == nil {
		res.LeveneP = p
	}
	return res, nil
}

// Figure12Result holds the private-latency-fraction CDFs.
type Figure12Result struct {
	Series []report.Series
	// MedianFraction per group label.
	MedianFraction map[string]float64
}

// Figure12 reports the fraction of end-to-end latency spent before the
// PGW, grouped by configuration: (a) native, (b) HR, (c) IHBO, each with
// the physical-SIM baseline.
func (r *Runner) Figure12() (*Figure12Result, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	groupOf := func(o TraceObs) string {
		if o.Kind == mno.PhysicalSIM {
			switch o.Arch {
			default:
			}
			// Group SIMs by their eSIM counterpart's panel.
			switch o.ISO {
			case "KOR", "THA":
				return "SIM (native panel)"
			case "PAK", "ARE":
				return "SIM (HR panel)"
			default:
				return "SIM (IHBO panel)"
			}
		}
		switch o.Arch {
		case ipx.Native:
			return "eSIM native"
		case ipx.HR:
			return "eSIM HR"
		default:
			return "eSIM IHBO"
		}
	}
	groups := map[string][]float64{}
	for _, o := range traces {
		groups[groupOf(o)] = append(groups[groupOf(o)], o.PA.PrivateFraction)
	}
	res := &Figure12Result{MedianFraction: map[string]float64{}}
	for _, name := range []string{
		"SIM (native panel)", "eSIM native",
		"SIM (HR panel)", "eSIM HR",
		"SIM (IHBO panel)", "eSIM IHBO",
	} {
		v := groups[name]
		if len(v) == 0 {
			continue
		}
		cdf := stats.CDF(v)
		s := report.Series{Name: name}
		for _, p := range cdf {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.P)
		}
		res.Series = append(res.Series, s)
		res.MedianFraction[name] = stats.Median(v)
	}
	return res, nil
}

// Figure13Result bundles the bandwidth analysis.
type Figure13Result struct {
	WebTable    *report.Table // (a) fast.com downloads, web campaign
	DeviceTable *report.Table // (b)(c) Ookla down/up, device campaign
	// Slow/fast shares for roaming eSIMs and their SIMs (paper: 78.8%
	// of roaming eSIM tests <= 15 Mbps; 4.5% >= 30; SIM 31.9% / 48%).
	ESIMSlowShare, ESIMFastShare float64
	SIMSlowShare, SIMFastShare   float64
}

// Figure13 reports download/upload speeds: the web campaign's fast.com
// runs and the device campaign's CQI-filtered Ookla runs.
func (r *Runner) Figure13() (*Figure13Result, error) {
	res := &Figure13Result{}

	// (a) web campaign via the real collection server.
	srv := webcampaign.NewServer("airalo")
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	src := rng.New(r.Cfg.Seed).Fork("fig13web")
	// One volunteer per country, streams pre-forked in canonical order,
	// executed on the worker pool; the server's per-country stats are
	// insensitive to upload order.
	isos := r.W.DeploymentKeys(true, false)
	vols := make([]*webcampaign.Volunteer, len(isos))
	for i, iso := range isos {
		vols[i] = &webcampaign.Volunteer{
			Name: "v-" + iso, BaseURL: hs.URL,
			Dep: r.W.Deployments[iso], Src: src.Fork(iso),
		}
	}
	volErrs := make([]error, len(vols))
	runParallel(r.Cfg.workers(), len(vols), func(i int) {
		for m := 0; m < r.Cfg.WebMeasurements; m++ {
			if err := vols[i].RunMeasurement(); err != nil {
				volErrs[i] = err
				return
			}
		}
	})
	for _, err := range volErrs {
		if err != nil {
			return nil, err
		}
	}
	byCountry := map[string][]float64{}
	for _, m := range srv.Completed() {
		byCountry[m.Country] = append(byCountry[m.Country], m.DownMbps)
	}
	wt := &report.Table{
		Title:   "Figure 13a: fast.com download speed, web campaign eSIMs",
		Headers: []string{"Country", "b-MNO", "Median (Mbps)", "Q1", "Q3"},
	}
	for _, iso := range r.W.DeploymentKeys(true, false) {
		v := byCountry[iso]
		if len(v) == 0 {
			continue
		}
		b := stats.NewBoxplot(v)
		wt.AddRow(iso, r.W.Deployments[iso].BMNO.Name,
			fmt.Sprintf("%.1f", b.Median), fmt.Sprintf("%.1f", b.Q1), fmt.Sprintf("%.1f", b.Q3))
	}
	res.WebTable = wt

	// (b)(c) device campaign, CQI-filtered.
	speeds, err := r.Speedtests()
	if err != nil {
		return nil, err
	}
	speeds = usable(speeds)
	dt := &report.Table{
		Title:   "Figure 13b/c: Ookla down/up (CQI >= 7), device campaign",
		Headers: []string{"Country", "Config", "Down median", "Down mean±CI", "Up median"},
	}
	var esimRoamDown, simDown []float64
	for _, iso := range deviceCountries {
		// The country's eSIM architecture decides which bucket its
		// physical SIM contributes to (the paper compares SIMs in the
		// eight roaming-eSIM countries).
		var esimArch ipx.Architecture
		for _, o := range speeds {
			if o.ISO == iso && o.Kind == mno.ESIM {
				esimArch = o.Arch
				break
			}
		}
		for _, kind := range []mno.SIMKind{mno.PhysicalSIM, mno.ESIM} {
			var down, up []float64
			for _, o := range speeds {
				if o.ISO == iso && o.Kind == kind {
					down = append(down, o.Down)
					up = append(up, o.Up)
				}
			}
			if len(down) == 0 {
				continue
			}
			label := configLabel(kind, esimArch)
			if kind == mno.PhysicalSIM {
				label = "SIM"
			}
			mean, ci := stats.MeanCI(down, 1.96)
			dt.AddRow(iso, label,
				fmt.Sprintf("%.1f", stats.Median(down)),
				fmt.Sprintf("%.1f±%.2f", mean, ci),
				fmt.Sprintf("%.1f", stats.Median(up)))
			if esimArch != ipx.Native {
				if kind == mno.ESIM {
					esimRoamDown = append(esimRoamDown, down...)
				} else {
					simDown = append(simDown, down...)
				}
			}
		}
	}
	res.DeviceTable = dt
	res.ESIMSlowShare = stats.FractionBelow(esimRoamDown, 15)
	res.ESIMFastShare = stats.FractionAbove(esimRoamDown, 30)
	res.SIMSlowShare = stats.FractionBelow(simDown, 15)
	res.SIMFastShare = stats.FractionAbove(simDown, 30)
	return res, nil
}
