package experiments

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"

	"roamsim/internal/amigo"
	"roamsim/internal/core"
	"roamsim/internal/ipx"
	"roamsim/internal/report"
	"roamsim/internal/rng"
	"roamsim/internal/webcampaign"
)

// Table2 re-derives the paper's Table 2 purely from measurements: for
// every visited country, attach the eSIM repeatedly, classify the public
// IP, and group countries by (b-MNO, PGW provider set).
func (r *Runner) Table2() (*report.Table, error) {
	cl := &core.Classifier{Reg: r.W.Reg}
	src := rng.New(r.Cfg.Seed).Fork("table2")

	type row struct {
		bMNO      string
		bCountry  string
		providers map[string]bool
		countries map[string]bool
		arch      ipx.Architecture
		visited   []string
	}
	rows := map[string]*row{}
	for _, key := range r.W.DeploymentKeys(false, false) {
		d := r.W.Deployments[key]
		if d.BMNO.Name == d.VMNO.Name {
			continue // native eSIMs are not part of Table 2's roaming rows
		}
		entry, ok := rows[d.BMNO.Name]
		if !ok {
			entry = &row{
				bMNO: d.BMNO.Name, bCountry: d.BMNO.Country,
				providers: map[string]bool{}, countries: map[string]bool{},
			}
			rows[d.BMNO.Name] = entry
		}
		entry.visited = append(entry.visited, key)
		// Attach enough times to observe provider alternation.
		for i := 0; i < 12; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				return nil, err
			}
			c, err := cl.Classify(s.PublicIP, d.BMNO, d.VMNO)
			if err != nil {
				return nil, err
			}
			entry.providers[fmt.Sprintf("%s (%s)", c.PGWAS.Org, c.PGWAS.Number)] = true
			entry.countries[c.PGWCountry] = true
			entry.arch = c.Arch
		}
	}

	t := &report.Table{
		Title:   "Table 2: roaming eSIM inventory (re-derived from classified public IPs)",
		Headers: []string{"Visited Countries", "b-MNO (Country)", "PGW Provider(s) (ASN)", "PGW Country", "Type"},
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := rows[n]
		sort.Strings(e.visited)
		t.AddRow(
			strings.Join(e.visited, ", "),
			fmt.Sprintf("%s (%s)", e.bMNO, e.bCountry),
			joinSet(e.providers),
			joinSet(e.countries),
			string(e.arch),
		)
	}
	return t, nil
}

func joinSet(m map[string]bool) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

// Table3 reruns the web-based campaign through the real collection
// server and reports completed measurements per country.
func (r *Runner) Table3() (*report.Table, error) {
	srv := webcampaign.NewServer("airalo")
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	src := rng.New(r.Cfg.Seed).Fork("table3")

	// Volunteer counts per country follow the paper's Table 3 (France
	// had two volunteers on non-overlapping dates).
	volunteers := map[string]int{"FRA": 2}
	attempted := map[string]int{}
	// Enumerate volunteers serially — forking each volunteer's stream and
	// pre-drawing its Wi-Fi flags in canonical order — then run them on
	// the worker pool. The server tallies counts, which are insensitive
	// to upload order, so the table is identical for any worker count.
	type volJob struct {
		vol    *webcampaign.Volunteer
		onWiFi []bool
	}
	var jobs []volJob
	for _, iso := range r.W.DeploymentKeys(true, false) {
		nVol := volunteers[iso]
		if nVol == 0 {
			nVol = 1
		}
		for v := 0; v < nVol; v++ {
			vol := &webcampaign.Volunteer{
				Name: fmt.Sprintf("vol-%s-%d", iso, v), BaseURL: hs.URL,
				Dep: r.W.Deployments[iso], Src: src.Fork(iso + fmt.Sprint(v)),
			}
			flags := make([]bool, r.Cfg.WebMeasurements)
			for i := range flags {
				attempted[iso]++
				// Volunteers occasionally measure from Wi-Fi; the vision
				// check rejects those uploads.
				flags[i] = src.Bool(0.12)
			}
			jobs = append(jobs, volJob{vol: vol, onWiFi: flags})
		}
	}
	runParallel(r.Cfg.workers(), len(jobs), func(j int) {
		for _, w := range jobs[j].onWiFi {
			jobs[j].vol.OnWiFi = w
			_ = jobs[j].vol.RunMeasurement() // rejected attempts simply don't count
		}
	})
	completed := srv.CompletedByCountry()

	t := &report.Table{
		Title:   "Table 3: web-based campaign overview",
		Headers: []string{"Country", "# Volunteers", "Attempted", "# Measurements"},
	}
	for _, iso := range r.W.DeploymentKeys(true, false) {
		nVol := volunteers[iso]
		if nVol == 0 {
			nVol = 1
		}
		t.AddRow(iso, nVol, attempted[iso], completed[iso])
	}
	return t, nil
}

// Table4 reruns the device-based campaign through the AmiGo control
// server: per country, the number of successful tests per tool and
// configuration, formatted <SIM> // <eSIM> like the paper.
func (r *Runner) Table4() (*report.Table, error) {
	srv := amigo.NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	src := rng.New(r.Cfg.Seed).Fork("table4")

	kinds := []amigo.Task{
		{Kind: "speedtest"},
		{Kind: "mtr", Target: "Facebook"},
		{Kind: "mtr", Target: "Google"}, // YouTube also resolves to Google edges
		{Kind: "cdn", Target: "Cloudflare"},
		{Kind: "cdn", Target: "Google CDN"},
		{Kind: "cdn", Target: "jQuery CDN"},
		{Kind: "cdn", Target: "jsDelivr"},
		{Kind: "cdn", Target: "Microsoft Ajax"},
		{Kind: "video"},
	}
	labels := []string{
		"Ookla", "MTR(FB)", "MTR(GGL)",
		"CDN(CF)", "CDN(GGL)", "CDN(jQ)", "CDN(jsD)", "CDN(MS)", "Video",
	}
	const perTool = 4

	for _, iso := range deviceCountries {
		ep := amigo.NewEndpoint("me-"+iso, hs.URL, r.W.Deployments[iso], src.Fork(iso))
		if err := ep.Register(); err != nil {
			return nil, err
		}
		if err := ep.Heartbeat(); err != nil {
			return nil, err
		}
		for _, base := range kinds {
			for _, config := range []string{"sim", "esim"} {
				for i := 0; i < perTool; i++ {
					task := base
					task.Config = config
					if _, err := srv.Schedule("me-"+iso, task); err != nil {
						return nil, err
					}
				}
			}
		}
		for {
			more, err := ep.RunOnce()
			if err != nil {
				return nil, err
			}
			if !more {
				break
			}
		}
	}

	// Tally successes per (country, tool, config).
	type cell struct{ sim, esim int }
	counts := map[string]map[string]*cell{}
	for _, res := range srv.Results() {
		if !res.OK {
			continue
		}
		iso := strings.TrimPrefix(res.ME, "me-")
		label := labelFor(res, labels)
		if counts[iso] == nil {
			counts[iso] = map[string]*cell{}
		}
		if counts[iso][label] == nil {
			counts[iso][label] = &cell{}
		}
		if res.Config == "sim" {
			counts[iso][label].sim++
		} else {
			counts[iso][label].esim++
		}
	}

	t := &report.Table{
		Title:   "Table 4: device-based campaign (successful tests, <SIM> // <eSIM>)",
		Headers: append([]string{"Country"}, labels...),
	}
	for _, iso := range deviceCountries {
		row := []any{iso}
		for _, label := range labels {
			c := counts[iso][label]
			if c == nil {
				c = &cell{}
			}
			row = append(row, fmt.Sprintf("%d // %d", c.sim, c.esim))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// labelFor maps a result back to its column label. MTR and CDN columns
// are disambiguated by target recorded in the payload; speedtest and
// video are unique.
func labelFor(res amigo.Result, labels []string) string {
	switch res.Kind {
	case "speedtest":
		return "Ookla"
	case "video":
		return "Video"
	case "mtr":
		if strings.Contains(string(res.Payload), `"target":"Facebook"`) {
			return "MTR(FB)"
		}
		return "MTR(GGL)"
	case "cdn":
		switch {
		case strings.Contains(string(res.Payload), "Cloudflare"):
			return "CDN(CF)"
		case strings.Contains(string(res.Payload), "Google CDN"):
			return "CDN(GGL)"
		case strings.Contains(string(res.Payload), "jQuery CDN"):
			return "CDN(jQ)"
		case strings.Contains(string(res.Payload), "jsDelivr"):
			return "CDN(jsD)"
		default:
			return "CDN(MS)"
		}
	}
	return res.Kind
}
