package experiments

import (
	"fmt"
	"sort"

	"roamsim/internal/core"
	"roamsim/internal/geo"
	"roamsim/internal/ipx"
	"roamsim/internal/measure"
	"roamsim/internal/report"
	"roamsim/internal/rng"
	"roamsim/internal/stats"
)

// AblationPGWSelection quantifies what the static pre-arranged PGW
// selection costs versus the geo-nearest selection IHBO theoretically
// enables: per IHBO deployment, the actual tunnel span and PGW RTT vs
// the nearest available site in the *same provider pool*.
func (r *Runner) AblationPGWSelection() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("abl-pgw")
	pool := []*ipx.PGWProvider{
		r.W.Providers["Packet Host"], r.W.Providers["OVH SAS"],
		r.W.Providers["Wireless Logic"], r.W.Providers["Webbing USA"],
	}
	nearest := &ipx.GeoNearestSelector{Arch: ipx.IHBO, Pool: pool}

	t := &report.Table{
		Title: "Ablation: static pre-arranged vs geo-nearest PGW selection (IHBO eSIMs)",
		Headers: []string{"Country", "Static site", "Static km", "Nearest site", "Nearest km",
			"Span saved", "Est. RTT saved (ms)"},
	}
	var farther int
	var total int
	for _, key := range r.W.DeploymentKeys(false, false) {
		d := r.W.Deployments[key]
		s, err := d.AttachESIM(src)
		if err != nil {
			return nil, err
		}
		if s.Arch != ipx.IHBO {
			continue
		}
		total++
		actualKm := geo.DistanceKm(d.Loc, s.Site.Loc)
		alt, err := nearest.Select(d.BMNO.Name, d.Loc, src)
		if err != nil {
			return nil, err
		}
		altKm := geo.DistanceKm(d.Loc, alt.Site.Loc)
		saved := actualKm - altKm
		// RTT saved ≈ 2 × one-way propagation of the extra distance.
		rttSaved := 2 * saved * geo.FiberRouteFactor / geo.FiberKmPerMs
		if saved > 500 {
			farther++
		}
		t.AddRow(key, s.Site.City, fmt.Sprintf("%.0f", actualKm),
			alt.Site.City, fmt.Sprintf("%.0f", altKm),
			fmt.Sprintf("%.0f km", saved), fmt.Sprintf("%.0f", rttSaved))
	}
	t.AddRow("SUMMARY", "", "", "", "",
		fmt.Sprintf("%d/%d eSIMs break out >500 km farther than needed", farther, total), "")
	return t, nil
}

// AblationPolicyCaps contrasts measured eSIM downlink with the downlink
// the same paths would sustain without v-MNO policy caps: if throughput
// were governed by the roaming topology, removing the caps would leave
// the ordering unchanged; instead the architecture signal disappears —
// the paper's "v-MNO policy dominates" takeaway.
func (r *Runner) AblationPolicyCaps() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("abl-policy")
	t := &report.Table{
		Title:   "Ablation: eSIM downlink with and without v-MNO policy caps",
		Headers: []string{"Country", "Arch", "Capped median (Mbps)", "Uncapped median (Mbps)"},
	}
	type pair struct {
		arch             ipx.Architecture
		capped, uncapped float64
	}
	var rows []pair
	for _, iso := range deviceCountries {
		d := r.W.Deployments[iso]
		var capped, uncapped []float64
		var arch ipx.Architecture
		for i := 0; i < 30; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				return nil, err
			}
			arch = s.Arch
			res, err := measure.Speedtest(s, src)
			if err != nil {
				return nil, err
			}
			capped = append(capped, res.DownMbps)
			// Remove the policy caps and re-measure the same session.
			s.DownCapMbps, s.UpCapMbps = 0, 0
			res2, err := measure.Speedtest(s, src)
			if err != nil {
				return nil, err
			}
			uncapped = append(uncapped, res2.DownMbps)
		}
		cm, um := stats.Median(capped), stats.Median(uncapped)
		rows = append(rows, pair{arch, cm, um})
		t.AddRow(iso, string(arch), fmt.Sprintf("%.1f", cm), fmt.Sprintf("%.1f", um))
	}
	// Summary: correlation between architecture and throughput under
	// each regime (does IHBO beat HR?).
	med := func(sel func(pair) bool, get func(pair) float64) float64 {
		var v []float64
		for _, p := range rows {
			if sel(p) {
				v = append(v, get(p))
			}
		}
		return stats.Median(v)
	}
	t.AddRow("IHBO/HR ratio (capped)", "",
		fmt.Sprintf("%.2f", med(func(p pair) bool { return p.arch == ipx.IHBO }, func(p pair) float64 { return p.capped })/
			med(func(p pair) bool { return p.arch == ipx.HR }, func(p pair) float64 { return p.capped })), "")
	t.AddRow("IHBO/HR ratio (uncapped)", "", "",
		fmt.Sprintf("%.2f", med(func(p pair) bool { return p.arch == ipx.IHBO }, func(p pair) float64 { return p.uncapped })/
			med(func(p pair) bool { return p.arch == ipx.HR }, func(p pair) float64 { return p.uncapped })))
	return t, nil
}

// AblationPeering separates distance from peering-agreement quality in
// PGW RTTs: for each roaming deployment, the geometric RTT floor
// (pure propagation) vs the measured RTT including penalties. The gap is
// the interconnection cost the paper identifies as dominant.
func (r *Runner) AblationPeering() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("abl-peering")
	t := &report.Table{
		Title:   "Ablation: distance-only RTT floor vs measured PGW RTT",
		Headers: []string{"Country", "Provider", "Geo floor (ms)", "Measured (ms)", "Peering cost (ms)"},
	}
	for _, iso := range deviceCountries {
		d := r.W.Deployments[iso]
		byProv := map[string][]float64{}
		siteOf := map[string]geo.Point{}
		for i := 0; i < 40; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				return nil, err
			}
			if s.Arch == ipx.Native {
				continue
			}
			rtt, err := measure.PGWHopRTT(s, src)
			if err != nil {
				return nil, err
			}
			byProv[s.Provider.Name] = append(byProv[s.Provider.Name], rtt)
			siteOf[s.Provider.Name] = s.Site.Loc
		}
		// Emit rows in sorted provider order: map iteration order would
		// otherwise leak into the table and break determinism per seed.
		provs := make([]string, 0, len(byProv))
		for prov := range byProv {
			provs = append(provs, prov)
		}
		sort.Strings(provs)
		for _, prov := range provs {
			floor := 2 * geo.PropagationDelayMs(d.Loc, siteOf[prov])
			measured := stats.Median(byProv[prov])
			t.AddRow(iso, prov, fmt.Sprintf("%.0f", floor),
				fmt.Sprintf("%.0f", measured), fmt.Sprintf("%.0f", measured-floor))
		}
	}
	return t, nil
}

// Validation reruns the Section 4.3.1 methodology check: traceroutes
// from the emnify eSIM must localize the PGW at AS16509 in Dublin.
func (r *Runner) Validation() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("validation")
	d := r.W.Deployments["EMNIFY"]
	t := &report.Table{
		Title:   "Methodology validation (emnify eSIM, O2 UK v-MNO)",
		Headers: []string{"Target", "Traceroutes", "PGW AS", "PGW City", "Matches ground truth"},
	}
	for _, target := range []string{"Google", "Facebook"} {
		counts := map[string]int{}
		n := 0
		for i := 0; i < 30; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				return nil, err
			}
			tr, err := measure.Traceroute(s, target, src)
			if err != nil {
				return nil, err
			}
			pa, err := core.Demarcate(tr.Raw, r.W.Reg)
			if err != nil {
				continue
			}
			counts[fmt.Sprintf("%s/%s", pa.PGW.AS.Number, pa.PGW.City)]++
			n++
		}
		best, bestN := "", 0
		for k, c := range counts {
			// Tie-break on the key so a split vote resolves the same way
			// every run (map iteration order is randomized).
			if c > bestN || (c == bestN && (best == "" || k < best)) {
				best, bestN = k, c
			}
		}
		match := "NO"
		if best == "AS16509/Dublin" {
			match = "YES"
		}
		t.AddRow(target, n, best, "", match)
	}
	return t, nil
}
