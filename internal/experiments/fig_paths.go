package experiments

import (
	"fmt"

	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/report"
	"roamsim/internal/stats"
)

// Figure6 reports the median number of unique ASNs observed in
// traceroutes to Google and Facebook, per country and configuration.
func (r *Runner) Figure6() (*report.Table, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Figure 6: median unique ASNs in traceroutes",
		Headers: []string{"Country", "Target", "SIM", "eSIM"},
	}
	for _, iso := range deviceCountries {
		for _, target := range []string{"Google", "Facebook"} {
			med := func(kind mno.SIMKind) string {
				var v []float64
				for _, o := range traces {
					if o.ISO == iso && o.Target == target && o.Kind == kind {
						v = append(v, float64(o.PA.UniqueASNs))
					}
				}
				if len(v) == 0 {
					return "-"
				}
				return fmt.Sprintf("%.0f", stats.Median(v))
			}
			t.AddRow(iso, target, med(mno.PhysicalSIM), med(mno.ESIM))
		}
	}
	return t, nil
}

// Figure7 reports private path length (hops before the first public IP)
// per country and configuration, from traceroutes to Google.
func (r *Runner) Figure7() (*report.Table, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Figure 7: private path length (traceroutes to Google)",
		Headers: []string{"Country", "Arch", "Config", "Median", "Q1", "Q3", "Min", "Max"},
	}
	for _, iso := range deviceCountries {
		for _, kind := range []mno.SIMKind{mno.PhysicalSIM, mno.ESIM} {
			var v []float64
			var arch ipx.Architecture
			for _, o := range traces {
				if o.ISO == iso && o.Target == "Google" && o.Kind == kind {
					v = append(v, float64(o.PA.PrivateHops))
					arch = o.Arch
				}
			}
			if len(v) == 0 {
				continue
			}
			b := stats.NewBoxplot(v)
			t.AddRow(iso, string(arch), string(kind),
				fmt.Sprintf("%.0f", b.Median), fmt.Sprintf("%.0f", b.Q1),
				fmt.Sprintf("%.0f", b.Q3), fmt.Sprintf("%.0f", b.Min), fmt.Sprintf("%.0f", b.Max))
		}
	}
	return t, nil
}

// Figure8Result holds the HR PGW RTT CDFs.
type Figure8Result struct {
	Series  []report.Series
	Medians map[string]float64
}

// Figure8 compares the RTT to the Singtel PGWs from the two HR eSIMs
// (Pakistan and UAE): the UAE is farther but faster.
func (r *Runner) Figure8() (*Figure8Result, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{Medians: map[string]float64{}}
	for _, iso := range []string{"PAK", "ARE"} {
		var v []float64
		for _, o := range traces {
			if o.ISO == iso && o.Kind == mno.ESIM && o.Arch == ipx.HR {
				v = append(v, o.PA.PGWHopRTTms)
			}
		}
		if len(v) == 0 {
			return nil, fmt.Errorf("experiments: no HR PGW RTTs for %s", iso)
		}
		cdf := stats.CDF(v)
		s := report.Series{Name: iso}
		for _, p := range cdf {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.P)
		}
		res.Series = append(res.Series, s)
		res.Medians[iso] = stats.Median(v)
	}
	return res, nil
}

// Figure9Result holds the IHBO PGW RTT CDFs per provider.
type Figure9Result struct {
	Series  []report.Series
	Medians map[string]float64 // "ISO/provider" -> median
}

// Figure9 compares OVH SAS and Packet Host PGW RTTs from the Play eSIMs
// in Georgia, Germany and Spain: Packet Host wins everywhere but
// Georgia.
func (r *Runner) Figure9() (*Figure9Result, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	res := &Figure9Result{Medians: map[string]float64{}}
	for _, iso := range []string{"GEO", "DEU", "ESP"} {
		for _, prov := range []string{"OVH SAS", "Packet Host"} {
			var v []float64
			for _, o := range traces {
				if o.ISO == iso && o.Kind == mno.ESIM && o.Provider == prov {
					v = append(v, o.PA.PGWHopRTTms)
				}
			}
			if len(v) == 0 {
				continue
			}
			name := fmt.Sprintf("%s/%s", iso, shortProv(prov))
			cdf := stats.CDF(v)
			s := report.Series{Name: name}
			for _, p := range cdf {
				s.X = append(s.X, p.X)
				s.Y = append(s.Y, p.P)
			}
			res.Series = append(res.Series, s)
			res.Medians[name] = stats.Median(v)
		}
	}
	return res, nil
}

func shortProv(p string) string {
	switch p {
	case "OVH SAS":
		return "OS"
	case "Packet Host":
		return "PH"
	}
	return p
}

// Figure10 reports public path length per country, configuration and
// target.
func (r *Runner) Figure10() (*report.Table, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Figure 10: public path length (hops after breakout)",
		Headers: []string{"Country", "Target", "Config", "Median", "Q1", "Q3"},
	}
	for _, iso := range deviceCountries {
		for _, target := range []string{"Google", "Facebook"} {
			for _, kind := range []mno.SIMKind{mno.PhysicalSIM, mno.ESIM} {
				var v []float64
				for _, o := range traces {
					if o.ISO == iso && o.Target == target && o.Kind == kind {
						v = append(v, float64(o.PA.PublicHops))
					}
				}
				if len(v) == 0 {
					continue
				}
				b := stats.NewBoxplot(v)
				t.AddRow(iso, target, string(kind),
					fmt.Sprintf("%.0f", b.Median), fmt.Sprintf("%.0f", b.Q1), fmt.Sprintf("%.0f", b.Q3))
			}
		}
	}
	return t, nil
}
