package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roamsim/internal/ipx"
	"roamsim/internal/rng"
)

// The runner is shared across tests: the campaigns are the expensive
// part and every figure reads from the same memoized datasets, exactly
// like the real analysis pipeline.
var shared *Runner

func runner(t *testing.T) *Runner {
	t.Helper()
	if shared == nil {
		cfg := DefaultConfig()
		cfg.TracesPerCountry = 15
		cfg.SpeedtestsPerCountry = 30
		cfg.CDNFetchesPerCountry = 8
		cfg.DNSPerCountry = 20
		cfg.VideosPerCountry = 5
		cfg.WebMeasurements = 5
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		shared = r
	}
	return shared
}

func TestTable2Rederivation(t *testing.T) {
	tab, err := runner(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 2 rows = %d, want 6 b-MNOs", len(tab.Rows))
	}
	s := tab.String()
	for _, want := range []string{"Singtel", "Play", "Telna Mobile", "Telecom Italia", "Orange", "Polkomtel",
		"AS45143", "AS54825", "AS16276", "AS51320", "AS393559", "HR", "IHBO"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	if strings.Contains(s, "LBO") {
		t.Error("no LBO should be observed (paper found none)")
	}
}

func TestTable3Counts(t *testing.T) {
	tab, err := runner(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 14 {
		t.Fatalf("Table 3 rows = %d, want 14 web-campaign countries", len(tab.Rows))
	}
	// France has two volunteers; completed <= attempted everywhere.
	var sawFrance bool
	for _, row := range tab.Rows {
		if row[0] == "FRA" {
			sawFrance = true
			if row[1] != "2" {
				t.Errorf("France volunteers = %s, want 2", row[1])
			}
		}
	}
	if !sawFrance {
		t.Error("France missing from Table 3")
	}
}

func TestTable4AllToolsSucceed(t *testing.T) {
	tab, err := runner(t).Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("Table 4 rows = %d, want 10 device-campaign countries", len(tab.Rows))
	}
	s := tab.String()
	if !strings.Contains(s, "4 // 4") {
		t.Errorf("expected full success cells '4 // 4' in:\n%s", s)
	}
}

func TestFigure3Spans(t *testing.T) {
	tab, err := runner(t).Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// 21 roaming eSIMs; alternating ones contribute one row per site.
	if len(tab.Rows) < 21 {
		t.Errorf("Figure 3 rows = %d, want >= 21", len(tab.Rows))
	}
	s := tab.String()
	if !strings.Contains(s, "solid (HR)") || !strings.Contains(s, "dashed (IHBO)") {
		t.Error("Figure 3 must show both line styles")
	}
}

func TestFigure4Suboptimality(t *testing.T) {
	tab, err := runner(t).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	// France and Uzbekistan must appear (Ashburn breakouts) and be
	// flagged suboptimal (Amsterdam would be closer).
	for _, iso := range []string{"FRA", "UZB"} {
		found := false
		for _, row := range tab.Rows {
			if row[0] == iso {
				found = true
				if row[2] != "Ashburn" {
					t.Errorf("%s PGW site = %s, want Ashburn", iso, row[2])
				}
				if row[6] != "YES" {
					t.Errorf("%s should be flagged suboptimal", iso)
				}
			}
		}
		if !found {
			t.Errorf("%s missing from Figure 4:\n%s", iso, s)
		}
	}
}

func TestFigure5Pipeline(t *testing.T) {
	res, err := runner(t).Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall < 1 {
		t.Errorf("recall = %f, mining must find every Airalo user", res.Recall)
	}
	if res.Precision < 0.8 {
		t.Errorf("precision = %f", res.Precision)
	}
	air := res.DataMedians["airalo (inferred)"]
	nat := res.DataMedians["native"]
	play := res.DataMedians["play roamers"]
	if air < nat*0.7 || air > nat*1.4 {
		t.Errorf("inferred Airalo data median %f should track native %f", air, nat)
	}
	if play > nat*0.7 {
		t.Errorf("Play roamers %f should differ from native %f", play, nat)
	}
	if res.SigMedians["airalo (inferred)"] <= res.SigMedians["native"] {
		t.Error("Airalo signalling should run slightly above native")
	}
}

func TestFigure6TwoASNs(t *testing.T) {
	tab, err := runner(t).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	// Most traceroutes see about two unique ASNs (provider + SP).
	twoish := 0
	total := 0
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			if cell == "2" || cell == "3" {
				twoish++
			}
			if cell != "-" {
				total++
			}
		}
	}
	if total == 0 || float64(twoish)/float64(total) < 0.5 {
		t.Errorf("expected mostly 2-3 unique ASNs, got %d/%d:\n%s", twoish, total, tab)
	}
}

func TestFigure7PrivatePathOrdering(t *testing.T) {
	tab, err := runner(t).Figure7()
	if err != nil {
		t.Fatal(err)
	}
	med := map[string]float64{}
	for _, row := range tab.Rows {
		med[row[0]+"/"+row[2]] = atof(row[3])
	}
	// Roaming eSIMs have much longer private paths than their SIMs.
	if med["PAK/esim"] <= med["PAK/sim"] {
		t.Errorf("PAK: eSIM private path %v should exceed SIM %v", med["PAK/esim"], med["PAK/sim"])
	}
	// HR (Singtel) private paths are the longest.
	if med["PAK/esim"] <= med["GEO/esim"] {
		t.Errorf("HR private path %v should exceed IHBO %v", med["PAK/esim"], med["GEO/esim"])
	}
}

func TestFigure8UAEBeatsPakistan(t *testing.T) {
	res, err := runner(t).Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if res.Medians["ARE"] >= res.Medians["PAK"] {
		t.Errorf("UAE median %f should beat Pakistan %f", res.Medians["ARE"], res.Medians["PAK"])
	}
}

func TestFigure9ProviderContrast(t *testing.T) {
	res, err := runner(t).Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if res.Medians["DEU/PH"] >= res.Medians["DEU/OS"] {
		t.Errorf("Germany: PH %f should beat OVH %f", res.Medians["DEU/PH"], res.Medians["DEU/OS"])
	}
	if res.Medians["ESP/PH"] >= res.Medians["ESP/OS"] {
		t.Errorf("Spain: PH %f should beat OVH %f", res.Medians["ESP/PH"], res.Medians["ESP/OS"])
	}
	if res.Medians["GEO/PH"] <= res.Medians["GEO/OS"] {
		t.Errorf("Georgia: PH %f should LOSE to OVH %f", res.Medians["GEO/PH"], res.Medians["GEO/OS"])
	}
}

func TestFigure10PublicPaths(t *testing.T) {
	tab, err := runner(t).Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 30 {
		t.Errorf("Figure 10 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if atof(row[3]) < 1 {
			t.Errorf("public path median < 1 hop in %v", row)
		}
	}
}

func TestFigure11Headlines(t *testing.T) {
	res, err := runner(t).Figure11()
	if err != nil {
		t.Fatal(err)
	}
	// Shape: HR inflation an order of magnitude above IHBO inflation
	// (paper: 621% vs 64%).
	if res.HRInflation < 4*res.IHBOInflation {
		t.Errorf("HR inflation %.2f should dwarf IHBO %.2f", res.HRInflation, res.IHBOInflation)
	}
	if res.HRInflation < 1.5 {
		t.Errorf("HR inflation = %.2f, want > 150%%", res.HRInflation)
	}
	if res.IHBOInflation < 0.1 || res.IHBOInflation > 2.5 {
		t.Errorf("IHBO inflation = %.2f, want modest", res.IHBOInflation)
	}
	// 150 ms exceedance: eSIM well above SIM.
	if res.ESIMFracAbove150 <= res.SIMFracAbove150 {
		t.Errorf("eSIM >150ms fraction %.3f should exceed SIM %.3f",
			res.ESIMFracAbove150, res.SIMFracAbove150)
	}
	// Significance mirrors the paper: roaming difference significant,
	// native difference not.
	if res.RoamingTTestP > 0.01 {
		t.Errorf("roaming t-test p = %g, want significant", res.RoamingTTestP)
	}
	if res.NativeTTestP < 0.01 {
		t.Errorf("native t-test p = %g, want non-significant", res.NativeTTestP)
	}
}

func TestFigure12PrivateFractions(t *testing.T) {
	res, err := runner(t).Figure12()
	if err != nil {
		t.Fatal(err)
	}
	hr := res.MedianFraction["eSIM HR"]
	ihbo := res.MedianFraction["eSIM IHBO"]
	native := res.MedianFraction["eSIM native"]
	if hr < 0.9 {
		t.Errorf("HR private fraction median = %.2f, want >= 0.9 (the 98%% finding)", hr)
	}
	if !(hr > ihbo && ihbo > native) {
		t.Errorf("fractions should order HR (%.2f) > IHBO (%.2f) > native (%.2f)", hr, ihbo, native)
	}
}

func TestFigure13BandwidthShares(t *testing.T) {
	res, err := runner(t).Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WebTable.Rows) < 10 {
		t.Errorf("web table rows = %d", len(res.WebTable.Rows))
	}
	// Paper shape: most roaming eSIM tests are slow (<=15), few fast;
	// SIMs are much better off.
	if res.ESIMSlowShare < 0.5 {
		t.Errorf("eSIM slow share = %.2f, want majority", res.ESIMSlowShare)
	}
	if res.ESIMSlowShare <= res.SIMSlowShare {
		t.Errorf("eSIM slow share %.2f should exceed SIM %.2f", res.ESIMSlowShare, res.SIMSlowShare)
	}
	if res.SIMFastShare <= res.ESIMFastShare {
		t.Errorf("SIM fast share %.2f should exceed eSIM %.2f", res.SIMFastShare, res.ESIMFastShare)
	}
}

func TestFigure14aCDNOrdering(t *testing.T) {
	res, err := runner(t).Figure14a()
	if err != nil {
		t.Fatal(err)
	}
	hr := res.MeanByArch[ipx.HR]
	ihbo := res.MeanByArch[ipx.IHBO]
	native := res.MeanByArch[ipx.Native]
	if !(hr > ihbo && ihbo > native) {
		t.Errorf("CDN means should order HR (%.0f) > IHBO (%.0f) > native (%.0f)", hr, ihbo, native)
	}
}

func TestFigure14bDNS(t *testing.T) {
	res, err := runner(t).Figure14b()
	if err != nil {
		t.Fatal(err)
	}
	// Most IHBO lookups land in the PGW's country (paper: 74%).
	if res.GoogleResolverShareSameCountry < 0.5 {
		t.Errorf("same-country resolver share = %.2f, want majority", res.GoogleResolverShareSameCountry)
	}
	// HR DNS inflation enormous; every roaming country slower on eSIM.
	if res.MedianIncrease["PAK"] < 2 {
		t.Errorf("PAK DNS increase = %.2f, want > 200%%", res.MedianIncrease["PAK"])
	}
	for iso, inc := range res.MedianIncrease {
		if iso == "KOR" || iso == "THA" {
			continue // native: no inflation expected
		}
		if inc < 0 {
			t.Errorf("%s eSIM DNS should not beat its SIM (%.2f)", iso, inc)
		}
	}
}

func TestFigure15Resolutions(t *testing.T) {
	tab, err := runner(t).Figure15()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "720p") {
		t.Fatalf("table lacks 720p column:\n%s", s)
	}
	if len(tab.Rows) < 10 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	// Shape checks against the paper: 720p is the most common rung
	// overall; the HR countries sit at constant 720p on BOTH SIMs
	// (traffic differentiation); Germany/Qatar/KSA eSIMs stream 1080p
	// less often than their SIMs.
	share := map[string]map[string]float64{} // "ISO/config" -> rung -> share
	for _, row := range tab.Rows {
		key := row[0] + "/" + row[1]
		share[key] = map[string]float64{
			"480p": atof(row[2]), "720p": atof(row[3]),
			"1080p": atof(row[4]), "1440p": atof(row[5]),
		}
	}
	var sum720, sum1080 float64
	for _, m := range share {
		sum720 += m["720p"]
		sum1080 += m["1080p"]
	}
	if sum720 <= sum1080 {
		t.Errorf("720p (%f) should be the most common rung overall vs 1080p (%f)", sum720, sum1080)
	}
	for _, key := range []string{"PAK/SIM", "PAK/eSIM/HR", "ARE/SIM", "ARE/eSIM/HR"} {
		if m, ok := share[key]; ok && m["720p"] < 90 {
			t.Errorf("%s should hold constant 720p, got %v", key, m)
		}
	}
	for _, iso := range []string{"DEU", "QAT", "SAU"} {
		simHi := share[iso+"/SIM"]["1080p"] + share[iso+"/SIM"]["1440p"]
		esimHi := share[iso+"/eSIM/IHBO"]["1080p"] + share[iso+"/eSIM/IHBO"]["1440p"]
		if esimHi >= simHi {
			t.Errorf("%s: eSIM high-res share %.0f%% should be below SIM %.0f%%", iso, esimHi, simHi)
		}
	}
}

func TestFigure16Evolution(t *testing.T) {
	tab, err := runner(t).Figure16()
	if err != nil {
		t.Fatal(err)
	}
	var asiaRow, euRow, njRow []string
	for _, row := range tab.Rows {
		switch row[0] {
		case "Asia":
			asiaRow = row
		case "Europe":
			euRow = row
		case "NorthAmerica (NJ vantage)":
			njRow = row
		}
	}
	if asiaRow == nil || euRow == nil || njRow == nil {
		t.Fatalf("missing rows:\n%s", tab)
	}
	// Asia rises ~Apr 1 (col 1 -> col 3/4); Europe ~half North America.
	if atof(asiaRow[4]) <= atof(asiaRow[1])*1.05 {
		t.Errorf("Asia should rise: %v", asiaRow)
	}
}

func TestFigure17ProviderOrdering(t *testing.T) {
	res, err := runner(t).Figure17()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Medians
	if !(m["Airhub"] < m["MobiMatter"] && m["MobiMatter"] < m["Airalo"] && m["Airalo"] < m["Keepgo"]) {
		t.Errorf("provider ordering broken: %v", m)
	}
	// Local SIMs are the cheapest per GB.
	if res.LocalSIMMedianPerGB >= m["Airalo"] {
		t.Errorf("local SIM per-GB %.2f should undercut Airalo %.2f", res.LocalSIMMedianPerGB, m["Airalo"])
	}
}

func TestFigure18And19(t *testing.T) {
	t18, err := runner(t).Figure18()
	if err != nil {
		t.Fatal(err)
	}
	if len(t18.Rows) < 12 {
		t.Errorf("Figure 18 rows = %d", len(t18.Rows))
	}
	t19, err := runner(t).Figure19()
	if err != nil {
		t.Fatal(err)
	}
	if len(t19.Rows) < 10 {
		t.Errorf("Figure 19 rows = %d", len(t19.Rows))
	}
	if !strings.Contains(t19.String(), "Play") {
		t.Error("Figure 19 must group by b-MNO")
	}
}

func TestFigure20FourProviders(t *testing.T) {
	tabs, err := runner(t).Figure20()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 4 {
		t.Fatalf("tables = %d, want 4", len(tabs))
	}
}

func TestAblationPGWSelection(t *testing.T) {
	tab, err := runner(t).AblationPGWSelection()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "SUMMARY") {
		t.Fatalf("missing summary:\n%s", s)
	}
	// France's Ashburn breakout is the canonical waste case.
	found := false
	for _, row := range tab.Rows {
		if row[0] == "FRA" && row[1] == "Ashburn" {
			found = true
		}
	}
	if !found {
		t.Error("France/Ashburn missing from ablation")
	}
}

func TestAblationPolicyCaps(t *testing.T) {
	tab, err := runner(t).AblationPolicyCaps()
	if err != nil {
		t.Fatal(err)
	}
	// Uncapped must be >= capped everywhere.
	for _, row := range tab.Rows {
		if len(row) < 4 || row[2] == "" || row[3] == "" || strings.HasPrefix(row[0], "IHBO") {
			continue
		}
		if atof(row[3]) < atof(row[2])*0.9 {
			t.Errorf("uncapped below capped in %v", row)
		}
	}
}

func TestAblationPeering(t *testing.T) {
	tab, err := runner(t).AblationPeering()
	if err != nil {
		t.Fatal(err)
	}
	// Peering cost must be positive and large for Pakistan (the worst
	// agreement), small for e.g. Germany/Packet Host.
	var pak, deu float64
	for _, row := range tab.Rows {
		if row[0] == "PAK" {
			pak = atof(row[4])
		}
		if row[0] == "DEU" && row[1] == "Packet Host" {
			deu = atof(row[4])
		}
	}
	if pak < 50 {
		t.Errorf("PAK peering cost = %.0f ms, want large", pak)
	}
	if deu > pak/2 {
		t.Errorf("DEU/PH peering cost %.0f should be far below PAK %.0f", deu, pak)
	}
}

func TestValidation(t *testing.T) {
	tab, err := runner(t).Validation()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "YES" {
			t.Errorf("validation failed for %s: inferred %s", row[0], row[2])
		}
	}
}

func atof(s string) float64 {
	var v float64
	var neg bool
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	frac := 0.0
	div := 1.0
	seenDot := false
	for ; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if seenDot {
				div *= 10
				frac += float64(c-'0') / div
			} else {
				v = v*10 + float64(c-'0')
			}
		case c == '.':
			seenDot = true
		default:
			i = len(s)
		}
	}
	v += frac
	if neg {
		return -v
	}
	return v
}

func TestFutureVoIP(t *testing.T) {
	tab, err := runner(t).FutureVoIP()
	if err != nil {
		t.Fatal(err)
	}
	// HR eSIMs must fall out of the "satisfied" band; native/SIM stay in.
	grades := map[string]string{}
	rf := map[string]float64{}
	for _, row := range tab.Rows {
		grades[row[0]+"/"+row[1]] = row[7]
		rf[row[0]+"/"+row[1]] = atof(row[5])
	}
	if rf["PAK/eSIM/HR"] >= 80 {
		t.Errorf("PAK HR call should not be in the satisfied band, R = %f", rf["PAK/eSIM/HR"])
	}
	if rf["PAK/SIM"] < 80 {
		t.Errorf("PAK SIM call should be satisfied, R = %f", rf["PAK/SIM"])
	}
	if rf["THA/eSIM/native"] < 80 {
		t.Errorf("native eSIM call should be satisfied, R = %f", rf["THA/eSIM/native"])
	}
	if rf["PAK/eSIM/HR"] >= rf["DEU/eSIM/IHBO"] {
		t.Errorf("HR call quality (%f) must trail IHBO (%f)", rf["PAK/eSIM/HR"], rf["DEU/eSIM/IHBO"])
	}
}

func TestAblationLBO(t *testing.T) {
	tab, err := runner(t).AblationLBO()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		iso, arch := row[0], row[1]
		today, lbo := atof(row[2]), atof(row[3])
		switch arch {
		case "HR", "IHBO":
			if lbo >= today {
				t.Errorf("%s (%s): LBO RTT %f should beat today's %f", iso, arch, lbo, today)
			}
		case "native":
			// Native already breaks out locally: LBO ~= today.
			if lbo > today*1.5 {
				t.Errorf("%s native: LBO %f should be similar to today %f", iso, lbo, today)
			}
		}
	}
}

func TestDiscussionJurisdiction(t *testing.T) {
	tab, err := runner(t).DiscussionJurisdiction()
	if err != nil {
		t.Fatal(err)
	}
	byISO := map[string]string{}
	for _, row := range tab.Rows {
		byISO[row[0]] = row[4]
	}
	// Roaming eSIMs egress abroad — except the USA one, whose Webbing
	// PGW is in Dallas (domestic). Native eSIMs stay local.
	for _, iso := range []string{"DEU", "PAK", "FRA", "UZB", "KEN"} {
		if byISO[iso] != "YES" {
			t.Errorf("%s should be flagged foreign-jurisdiction", iso)
		}
	}
	for _, iso := range []string{"KOR", "MDV", "THA", "USA"} {
		if byISO[iso] != "no" {
			t.Errorf("%s eSIM should stay under local jurisdiction", iso)
		}
	}
	if !strings.Contains(tab.String(), "20/24") {
		t.Errorf("summary should report 20/24 foreign egress (USA egresses domestically):\n%s", tab)
	}
}

func TestConfounders(t *testing.T) {
	tab, err := runner(t).Confounders()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// RTT at the 20:00 peak must exceed the 08:00 trough; downlink the
	// reverse.
	vals := map[string][2]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = [2]float64{atof(row[2]), atof(row[3])}
	}
	if vals["20:00"][0] <= vals["08:00"][0] {
		t.Errorf("busy-hour RTT %f should exceed trough %f", vals["20:00"][0], vals["08:00"][0])
	}
	if vals["20:00"][1] >= vals["08:00"][1] {
		t.Errorf("busy-hour downlink %f should trail trough %f", vals["20:00"][1], vals["08:00"][1])
	}
	// The model must be cleared afterwards (no leakage into other
	// experiments).
	s, err := runner(t).W.Deployments["DEU"].AttachESIM(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	_ = s
}

func TestSignalingBreakdown(t *testing.T) {
	tab, err := runner(t).SignalingBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	vals := map[string][2]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = [2]float64{atof(row[2]), atof(row[3])}
	}
	if vals["Play roamer"][0] <= vals["native (UK)"][0]*2 {
		t.Errorf("roamer attach (%f ms) should far exceed native (%f ms)",
			vals["Play roamer"][0], vals["native (UK)"][0])
	}
	if vals["Airalo on Play"][1] <= vals["native (UK)"][1] {
		t.Errorf("Airalo daily messages (%f) must exceed native (%f) — Figure 5b",
			vals["Airalo on Play"][1], vals["native (UK)"][1])
	}
}

func TestWriteAll(t *testing.T) {
	dir := t.TempDir()
	files, err := runner(t).WriteAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 50 {
		t.Fatalf("exported %d files, want >= 50", len(files))
	}
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatalf("missing export %s: %v", f, err)
		}
		if info.Size() == 0 {
			t.Errorf("empty export %s", f)
		}
	}
	// Spot-check contents.
	b, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "Singtel") {
		t.Error("table2.csv lacks content")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig8_cdf.csv")); err != nil {
		t.Error("CDF series export missing")
	}
}
