package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"roamsim/internal/rng"
)

// unit is one independently executable slice of a measurement campaign —
// in the paper's terms one (country, SIM kind, target/provider, rep)
// tuple. Units carry a descriptive label used to fork their private
// random stream, so a unit's observations depend only on the campaign
// seed and its position in the canonical enumeration order, never on
// which worker ran it or when.
type unit[T any] struct {
	label string
	run   func(src *rng.Source) ([]T, error)
}

// workers resolves the configured pool size: Workers if positive,
// otherwise GOMAXPROCS at call time.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runUnits executes campaign units on a bounded worker pool and returns
// the concatenated results in canonical unit order.
//
// Determinism contract: every unit's rng.Source is pre-forked serially,
// in enumeration order, BEFORE any goroutine starts (Fork consumes a
// parent draw, so fork order is part of the stream identity — see the
// internal/rng package doc). Workers then claim unit indices from an
// atomic counter and write into a per-unit slot, and the final merge
// walks slots in order. The result is byte-identical for any worker
// count and any GOMAXPROCS, including workers == 1.
//
// If any unit fails, the error of the earliest failing unit (in
// canonical order) is returned and results are discarded.
func runUnits[T any](parent *rng.Source, workers int, units []unit[T]) ([]T, error) {
	srcs := make([]*rng.Source, len(units))
	for i := range units {
		srcs[i] = parent.Fork(units[i].label)
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([][]T, len(units))
	errs := make([]error, len(units))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				results[i], errs[i] = units[i].run(srcs[i])
			}
		}()
	}
	wg.Wait()
	out := make([]T, 0, len(units))
	for i := range units {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}

// runParallel executes n index-addressed jobs on a bounded worker pool.
// It is the side-effect twin of runUnits, for work whose results flow
// through an order-insensitive sink (e.g. the web campaign's collection
// server, which tallies counts). The caller must pre-fork any random
// streams the jobs consume before calling.
func runParallel(workers, n int, job func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
