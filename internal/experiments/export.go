package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"roamsim/internal/report"
)

// WriteAll regenerates every artifact and writes each as both an
// aligned text table (.txt) and CSV (.csv) under dir, returning the
// list of files written. It is the library-level equivalent of running
// `roam-experiments -exp all` twice with and without -csv.
func (r *Runner) WriteAll(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	put := func(name string, t *report.Table) error {
		txt := filepath.Join(dir, name+".txt")
		if err := os.WriteFile(txt, []byte(t.String()), 0o644); err != nil {
			return err
		}
		csv := filepath.Join(dir, name+".csv")
		if err := os.WriteFile(csv, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		written = append(written, txt, csv)
		return nil
	}
	putSeries := func(name string, s []report.Series) error {
		p := filepath.Join(dir, name+".csv")
		if err := os.WriteFile(p, []byte(report.SeriesCSV(s)), 0o644); err != nil {
			return err
		}
		written = append(written, p)
		return nil
	}

	type job struct {
		name string
		run  func() error
	}
	jobs := []job{
		{"table2", func() error { t, err := r.Table2(); return putOr(err, "table2", t, put) }},
		{"table3", func() error { t, err := r.Table3(); return putOr(err, "table3", t, put) }},
		{"table4", func() error { t, err := r.Table4(); return putOr(err, "table4", t, put) }},
		{"fig3", func() error { t, err := r.Figure3(); return putOr(err, "fig3", t, put) }},
		{"fig4", func() error { t, err := r.Figure4(); return putOr(err, "fig4", t, put) }},
		{"fig5", func() error {
			res, err := r.Figure5()
			if err != nil {
				return err
			}
			return put("fig5", res.Table)
		}},
		{"fig6", func() error { t, err := r.Figure6(); return putOr(err, "fig6", t, put) }},
		{"fig7", func() error { t, err := r.Figure7(); return putOr(err, "fig7", t, put) }},
		{"fig8", func() error {
			res, err := r.Figure8()
			if err != nil {
				return err
			}
			return putSeries("fig8_cdf", res.Series)
		}},
		{"fig9", func() error {
			res, err := r.Figure9()
			if err != nil {
				return err
			}
			return putSeries("fig9_cdf", res.Series)
		}},
		{"fig10", func() error { t, err := r.Figure10(); return putOr(err, "fig10", t, put) }},
		{"fig11", func() error {
			res, err := r.Figure11()
			if err != nil {
				return err
			}
			return put("fig11", res.Table)
		}},
		{"fig12", func() error {
			res, err := r.Figure12()
			if err != nil {
				return err
			}
			return putSeries("fig12_cdf", res.Series)
		}},
		{"fig13", func() error {
			res, err := r.Figure13()
			if err != nil {
				return err
			}
			if err := put("fig13a_web", res.WebTable); err != nil {
				return err
			}
			return put("fig13bc_device", res.DeviceTable)
		}},
		{"fig14a", func() error {
			res, err := r.Figure14a()
			if err != nil {
				return err
			}
			return put("fig14a", res.Table)
		}},
		{"fig14b", func() error {
			res, err := r.Figure14b()
			if err != nil {
				return err
			}
			return put("fig14b", res.Table)
		}},
		{"fig15", func() error { t, err := r.Figure15(); return putOr(err, "fig15", t, put) }},
		{"fig16", func() error { t, err := r.Figure16(); return putOr(err, "fig16", t, put) }},
		{"fig17", func() error {
			res, err := r.Figure17()
			if err != nil {
				return err
			}
			return put("fig17", res.Table)
		}},
		{"fig18", func() error { t, err := r.Figure18(); return putOr(err, "fig18", t, put) }},
		{"fig19", func() error { t, err := r.Figure19(); return putOr(err, "fig19", t, put) }},
		{"fig20", func() error {
			tabs, err := r.Figure20()
			if err != nil {
				return err
			}
			for i, t := range tabs {
				if err := put(fmt.Sprintf("fig20_%d", i+1), t); err != nil {
					return err
				}
			}
			return nil
		}},
		{"validation", func() error { t, err := r.Validation(); return putOr(err, "validation", t, put) }},
		{"ablation_pgw", func() error { t, err := r.AblationPGWSelection(); return putOr(err, "ablation_pgw", t, put) }},
		{"ablation_policy", func() error { t, err := r.AblationPolicyCaps(); return putOr(err, "ablation_policy", t, put) }},
		{"ablation_peering", func() error { t, err := r.AblationPeering(); return putOr(err, "ablation_peering", t, put) }},
		{"ablation_lbo", func() error { t, err := r.AblationLBO(); return putOr(err, "ablation_lbo", t, put) }},
		{"voip", func() error { t, err := r.FutureVoIP(); return putOr(err, "voip", t, put) }},
		{"jurisdiction", func() error { t, err := r.DiscussionJurisdiction(); return putOr(err, "jurisdiction", t, put) }},
		{"confounders", func() error { t, err := r.Confounders(); return putOr(err, "confounders", t, put) }},
		{"signaling", func() error { t, err := r.SignalingBreakdown(); return putOr(err, "signaling", t, put) }},
	}
	for _, j := range jobs {
		if err := j.run(); err != nil {
			return written, fmt.Errorf("experiments: export %s: %w", j.name, err)
		}
	}
	return written, nil
}

func putOr(err error, name string, t *report.Table, put func(string, *report.Table) error) error {
	if err != nil {
		return err
	}
	return put(name, t)
}
