package experiments

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"time"

	"roamsim/internal/esimdb"
	"roamsim/internal/geo"
	"roamsim/internal/report"
	"roamsim/internal/stats"
)

// marketplace builds the synthetic aggregator once per runner.
func (r *Runner) marketplace() *esimdb.Marketplace {
	return esimdb.New(r.Cfg.Seed, 54)
}

// Figure16 reports the evolution of median $/GB per continent over the
// crawl period, plus the New Jersey vantage check.
func (r *Runner) Figure16() (*report.Table, error) {
	m := r.marketplace()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	dates := []time.Time{
		time.Date(2024, 2, 14, 0, 0, 0, 0, time.UTC),
		time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC),
	}
	continents := []geo.Continent{geo.Africa, geo.Asia, geo.Europe, geo.NorthAmerica, geo.SouthAmerica, geo.Oceania}

	t := &report.Table{
		Title:   "Figure 16: median Airalo $/GB per continent over time",
		Headers: append([]string{"Continent"}, datesToStrings(dates)...),
	}
	crawler := &esimdb.Crawler{BaseURL: srv.URL, Vantage: "Madrid"}
	perDate := make([]map[geo.Continent][]float64, len(dates))
	for i, d := range dates {
		plans, err := crawler.Crawl(d)
		if err != nil {
			return nil, err
		}
		perDate[i] = esimdb.ContinentDistribution(plans, "Airalo")
	}
	for _, ct := range continents {
		row := []any{string(ct)}
		for i := range dates {
			row = append(row, fmt.Sprintf("%.2f", stats.Median(perDate[i][ct])))
		}
		t.AddRow(row...)
	}
	// Vantage check: the New Jersey crawl of the last date must match.
	nj := &esimdb.Crawler{BaseURL: srv.URL, Vantage: "New Jersey"}
	njPlans, err := nj.Crawl(dates[len(dates)-1])
	if err != nil {
		return nil, err
	}
	njDist := esimdb.ContinentDistribution(njPlans, "Airalo")
	row := []any{"NorthAmerica (NJ vantage)"}
	for range dates[:len(dates)-1] {
		row = append(row, "-")
	}
	row = append(row, fmt.Sprintf("%.2f", stats.Median(njDist[geo.NorthAmerica])))
	t.AddRow(row...)
	return t, nil
}

func datesToStrings(dates []time.Time) []string {
	out := make([]string, len(dates))
	for i, d := range dates {
		out[i] = d.Format("2006-01-02")
	}
	return out
}

// Figure17Result bundles the provider comparison.
type Figure17Result struct {
	Table *report.Table
	// Medians per headline provider.
	Medians map[string]float64
	// LocalSIMMedianPerGB is the dashed-line reference.
	LocalSIMMedianPerGB float64
}

// Figure17 reports the CDF of median $/GB per country for the headline
// providers plus the volunteer-collected local-SIM baseline.
func (r *Runner) Figure17() (*Figure17Result, error) {
	m := r.marketplace()
	plans := m.Offers(esimdb.SnapshotDate)
	pm := esimdb.ProviderMedianPerGB(plans)

	t := &report.Table{
		Title:   "Figure 17: median $/GB per provider (2024-05-01 snapshot)",
		Headers: []string{"Provider", "Median $/GB", "Countries", "Offers", "% of catalog"},
	}
	var total int
	for _, info := range pm {
		total += info.Offers
	}
	res := &Figure17Result{Medians: map[string]float64{}}
	for _, name := range []string{"Airhub", "MobiMatter", "Nomad", "Airalo", "Keepgo"} {
		info := pm[name]
		res.Medians[name] = info.Median
		t.AddRow(name, fmt.Sprintf("%.2f", info.Median), info.Countries, info.Offers,
			report.Pct(float64(info.Offers)/float64(total)))
	}
	var localPerGB []float64
	for _, o := range esimdb.LocalSIMOffers {
		localPerGB = append(localPerGB, o.PerGB())
	}
	res.LocalSIMMedianPerGB = stats.Median(localPerGB)
	t.AddRow("local physical SIM", fmt.Sprintf("%.2f", res.LocalSIMMedianPerGB),
		len(esimdb.LocalSIMOffers), len(esimdb.LocalSIMOffers), "-")
	res.Table = t
	return res, nil
}

// Figure18 reports the decile boundaries of country-level median $/GB
// and the most/least expensive countries — the data behind the map.
func (r *Runner) Figure18() (*report.Table, error) {
	m := r.marketplace()
	plans := m.Offers(esimdb.SnapshotDate)
	medians := esimdb.MedianPerGBByCountry(plans, "Airalo")
	deciles := esimdb.PriceDeciles(plans, "Airalo")

	t := &report.Table{
		Title:   "Figure 18: Airalo median $/GB per country (deciles + extremes)",
		Headers: []string{"Metric", "Value"},
	}
	for i, d := range deciles {
		t.AddRow(fmt.Sprintf("decile %d0%%", i+1), fmt.Sprintf("%.2f", d))
	}
	type kv struct {
		iso string
		v   float64
	}
	var all []kv
	for iso, v := range medians {
		all = append(all, kv{iso, v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	if len(all) > 0 {
		t.AddRow("cheapest country", fmt.Sprintf("%s (%.2f)", all[0].iso, all[0].v))
		t.AddRow("priciest country", fmt.Sprintf("%s (%.2f)", all[len(all)-1].iso, all[len(all)-1].v))
	}
	var worldwide []float64
	for _, e := range all {
		worldwide = append(worldwide, e.v)
	}
	t.AddRow("worldwide median", fmt.Sprintf("%.2f", stats.Median(worldwide)))
	// Central America's consistent premium (the red cluster).
	var central []float64
	for _, e := range all {
		switch e.iso {
		case "CRI", "PAN", "GTM", "HND", "NIC", "SLV", "BLZ":
			central = append(central, e.v)
		}
	}
	t.AddRow("Central America median", fmt.Sprintf("%.2f", stats.Median(central)))
	return t, nil
}

// Figure19 reports plan size vs price for Airalo plans sharing a b-MNO
// (plans <= 5 GB, the paper's visibility cut).
func (r *Runner) Figure19() (*report.Table, error) {
	m := r.marketplace()
	plans := m.Offers(esimdb.SnapshotDate)
	t := &report.Table{
		Title:   "Figure 19: Airalo price ($) by plan size and b-MNO (plans <= 5 GB)",
		Headers: []string{"b-MNO", "Country", "1 GB", "2 GB", "3 GB", "5 GB"},
	}
	type key struct{ bmno, iso string }
	prices := map[key]map[float64]float64{}
	for _, p := range plans {
		if p.Provider != "Airalo" || p.BMNOName == "" || p.SizeGB > 5 || p.SizeGB < 1 {
			continue
		}
		k := key{p.BMNOName, p.Country}
		if prices[k] == nil {
			prices[k] = map[float64]float64{}
		}
		prices[k][p.SizeGB] = p.PriceUSD
	}
	var keys []key
	for k := range prices {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bmno != keys[j].bmno {
			return keys[i].bmno < keys[j].bmno
		}
		return keys[i].iso < keys[j].iso
	})
	for _, k := range keys {
		row := []any{k.bmno, k.iso}
		for _, size := range []float64{1, 2, 3, 5} {
			if v, ok := prices[k][size]; ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}
