package experiments

import (
	"fmt"

	"roamsim/internal/geo"
	"roamsim/internal/ipx"
	"roamsim/internal/measure"
	"roamsim/internal/mno"
	"roamsim/internal/netsim"
	"roamsim/internal/report"
	"roamsim/internal/rng"
	"roamsim/internal/signaling"
	"roamsim/internal/stats"
	"roamsim/internal/voip"
)

// FutureVoIP implements the paper's named future work: jitter and
// packet-loss measurement for real-time services, scored with the
// ITU-T E-model. It shows that HR roaming pushes calls out of the
// "satisfied" band purely through mouth-to-ear delay.
func (r *Runner) FutureVoIP() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("voip")
	t := &report.Table{
		Title:   "Future work: VoIP quality per configuration (E-model, G.711)",
		Headers: []string{"Country", "Config", "One-way (ms)", "Jitter (ms)", "Loss %", "R", "MOS", "Verdict"},
	}
	e := voip.EModel{}
	for _, iso := range deviceCountries {
		d := r.W.Deployments[iso]
		for _, kind := range kindsFor(d) {
			s, err := attach(d, kind, src)
			if err != nil {
				return nil, err
			}
			probe, err := measure.VoIPProbe(s, 200, src)
			if err != nil {
				return nil, err
			}
			rf, mos := e.Score(probe)
			label := "SIM"
			if kind == mno.ESIM {
				label = configLabel(kind, s.Arch)
			}
			t.AddRow(iso, label,
				fmt.Sprintf("%.0f", probe.OneWayMs),
				fmt.Sprintf("%.1f", probe.JitterMs),
				fmt.Sprintf("%.1f", probe.LossPercent),
				fmt.Sprintf("%.0f", rf),
				fmt.Sprintf("%.2f", mos),
				voip.Grade(rf))
		}
	}
	return t, nil
}

// AblationLBO quantifies the paper's concluding suggestion — "realizing
// Local Breakouts where traffic is directly handled by v-MNOs" — by
// comparing each device-campaign eSIM's measured latency against a
// hypothetical LBO session on the same v-MNO (roamer policy caps kept).
func (r *Runner) AblationLBO() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("abl-lbo")
	t := &report.Table{
		Title:   "Ablation: today's eSIM vs hypothetical Local Breakout (LBO)",
		Headers: []string{"Country", "Arch today", "RTT today (ms)", "RTT w/ LBO (ms)", "Saved", "Down today", "Down w/ LBO"},
	}
	for _, iso := range deviceCountries {
		d := r.W.Deployments[iso]
		var today, lbo, downToday, downLBO []float64
		var arch ipx.Architecture
		for i := 0; i < 25; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				return nil, err
			}
			arch = s.Arch
			rtt, err := measure.Ping(s, "Google", src)
			if err != nil {
				return nil, err
			}
			today = append(today, rtt)
			st, err := measure.Speedtest(s, src)
			if err != nil {
				return nil, err
			}
			downToday = append(downToday, st.DownMbps)

			ls, err := d.AttachHypotheticalLBO(src)
			if err != nil {
				return nil, err
			}
			lrtt, err := measure.Ping(ls, "Google", src)
			if err != nil {
				return nil, err
			}
			lbo = append(lbo, lrtt)
			lst, err := measure.Speedtest(ls, src)
			if err != nil {
				return nil, err
			}
			downLBO = append(downLBO, lst.DownMbps)
		}
		mt, ml := stats.Median(today), stats.Median(lbo)
		t.AddRow(iso, string(arch),
			fmt.Sprintf("%.0f", mt), fmt.Sprintf("%.0f", ml),
			fmt.Sprintf("%.0f%%", (1-ml/mt)*100),
			fmt.Sprintf("%.1f", stats.Median(downToday)),
			fmt.Sprintf("%.1f", stats.Median(downLBO)))
	}
	return t, nil
}

// DiscussionJurisdiction reproduces the Discussion's QoE implication:
// for every eSIM, which country's digital jurisdiction the user's
// traffic is subject to — the PGW country for content policies and the
// resolver country for DNS — versus where the user actually is.
func (r *Runner) DiscussionJurisdiction() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("jurisdiction")
	t := &report.Table{
		Title:   "Discussion: digital jurisdiction of eSIM traffic",
		Headers: []string{"Country", "Arch", "Egress country", "DNS country", "Foreign jurisdiction"},
	}
	var foreign, total int
	for _, key := range r.W.DeploymentKeys(false, false) {
		d := r.W.Deployments[key]
		s, err := d.AttachESIM(src)
		if err != nil {
			return nil, err
		}
		var dnsCountry string
		if s.DNS.Resolver != nil {
			dnsCountry = s.DNS.Resolver.Country
		} else {
			eff, err := s.DNS.Effective(s.Site.Loc)
			if err != nil {
				return nil, err
			}
			dnsCountry = eff.Country
		}
		total++
		mismatch := "no"
		if s.Site.Country != key {
			foreign++
			mismatch = "YES"
		}
		t.AddRow(key, string(s.Arch), s.Site.Country, dnsCountry, mismatch)
	}
	t.AddRow("SUMMARY", "", "", "",
		fmt.Sprintf("%d/%d eSIMs egress under a foreign jurisdiction", foreign, total))
	return t, nil
}

// Confounders quantifies the time-of-day effect the paper's Discussion
// lists among its unmodeled confounders: the same eSIM measured across
// the day under a diurnal load model. The busy-hour penalty is of the
// same order as the IHBO architecture penalty — which is exactly why
// the paper warns against reading its per-country numbers as absolute.
func (r *Runner) Confounders() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("confounders")
	t := &report.Table{
		Title:   "Confounder: time-of-day load vs eSIM RTT and downlink (Germany, IHBO)",
		Headers: []string{"Hour", "Load", "RTT median (ms)", "Down median (Mbps)"},
	}
	hour := 0.0
	model := netsim.Diurnal(20, 1, func() float64 { return hour })
	r.W.Net.SetLoadModel(model)
	defer r.W.Net.SetLoadModel(nil)
	d := r.W.Deployments["DEU"]
	for _, h := range []float64{4, 8, 12, 16, 20} {
		hour = h
		var rtts, downs []float64
		for i := 0; i < 20; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				return nil, err
			}
			rtt, err := measure.Ping(s, "Google", src)
			if err != nil {
				return nil, err
			}
			rtts = append(rtts, rtt)
			st, err := measure.Speedtest(s, src)
			if err != nil {
				return nil, err
			}
			downs = append(downs, st.DownMbps)
		}
		t.AddRow(fmt.Sprintf("%02.0f:00", h), fmt.Sprintf("%.2f", model()),
			fmt.Sprintf("%.0f", stats.Median(rtts)), fmt.Sprintf("%.1f", stats.Median(downs)))
	}
	return t, nil
}

// SignalingBreakdown explains Figure 5b mechanistically: attach
// procedure durations and expected daily control-message counts for a
// native subscriber, a plain inbound roamer, and an Airalo (touristy
// roamer) user. The roamer's S6a legs cross the IPX to the home HSS.
func (r *Runner) SignalingBreakdown() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("signaling")
	t := &report.Table{
		Title:   "Signalling mechanism behind Figure 5b (UK v-MNO)",
		Headers: []string{"Subscriber", "Attach msgs", "Attach time (ms)", "Daily msgs (expected)"},
	}
	// The UK partner v-MNO core; Play's HSS is in Poland across the IPX.
	london := geo.MustCity("London")
	warsaw := geo.MustCity("Warsaw")
	ipxRTT := 2 * geo.PropagationDelayMs(london.Loc, warsaw.Loc) * 4 // Diameter agents + IPX detours
	rows := []struct {
		label   string
		cfg     signaling.Config
		profile signaling.DayProfile
	}{
		{"native (UK)", signaling.Config{LocalRTTms: 18, HomeHSS: "UK-HSS"},
			signaling.DefaultDayProfile(false, false)},
		{"Play roamer", signaling.Config{Roaming: true, LocalRTTms: 18, IPXRTTms: ipxRTT, HomeHSS: "Play-HSS"},
			signaling.DefaultDayProfile(true, false)},
		{"Airalo on Play", signaling.Config{Roaming: true, LocalRTTms: 18, IPXRTTms: ipxRTT, HomeHSS: "Play-HSS"},
			signaling.DefaultDayProfile(true, true)},
	}
	for _, row := range rows {
		var dur float64
		var msgs int
		const n = 30
		for i := 0; i < n; i++ {
			tr, err := signaling.Attach(row.cfg, src)
			if err != nil {
				return nil, err
			}
			dur += tr.DurationMs
			msgs = tr.Messages()
		}
		t.AddRow(row.label, msgs, fmt.Sprintf("%.0f", dur/n),
			fmt.Sprintf("%.0f", signaling.ExpectedDailyMessages(row.profile)))
	}
	return t, nil
}
