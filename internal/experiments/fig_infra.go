package experiments

import (
	"fmt"
	"sort"

	"roamsim/internal/core"
	"roamsim/internal/geo"
	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/report"
	"roamsim/internal/rng"
	"roamsim/internal/stats"
	"roamsim/internal/vmnocore"
)

// Figure3 maps the 21 roaming eSIMs: SGW (user) location, PGW location,
// tunnel span, and architecture — the data behind the world map.
func (r *Runner) Figure3() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("fig3")
	t := &report.Table{
		Title: "Figure 3: SGW->PGW mapping for roaming eSIMs",
		Headers: []string{"Country", "b-MNO", "User City", "PGW Site", "PGW Country",
			"Distance (km)", "Arch", "Line", "Farther than b-MNO home"},
	}
	var farther, ihboSites int
	for _, key := range r.W.DeploymentKeys(false, false) {
		d := r.W.Deployments[key]
		if d.BMNO.Name == d.VMNO.Name {
			continue
		}
		// One representative attachment per allowed breakout.
		seen := map[string]bool{}
		for i := 0; i < 12; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				return nil, err
			}
			siteKey := s.Provider.Name + "/" + s.Site.City
			if seen[siteKey] {
				continue
			}
			seen[siteKey] = true
			line := "dashed (IHBO)"
			if s.Arch == ipx.HR {
				line = "solid (HR)"
			}
			// The conclusion's headline: does the eSIM break out FARTHER
			// from the user than the b-MNO's own country?
			bmnoHome := geo.MustCountry(d.BMNO.Country).Center
			pgwDist := geo.DistanceKm(d.Loc, s.Site.Loc)
			homeDist := geo.DistanceKm(d.Loc, bmnoHome)
			fartherStr := "no"
			if s.Arch == ipx.IHBO {
				ihboSites++
				if pgwDist > homeDist {
					farther++
					fartherStr = "YES"
				}
			} else {
				fartherStr = "-"
			}
			t.AddRow(key, d.BMNO.Name, d.Spec.City, s.Site.City, s.Site.Country,
				fmt.Sprintf("%.0f", pgwDist), string(s.Arch), line, fartherStr)
		}
	}
	t.AddRow("SUMMARY", "", "", "", "", "", "", "",
		fmt.Sprintf("%d/%d IHBO breakouts farther than the b-MNO country (paper: 8/16)", farther, ihboSites))
	return t, nil
}

// Figure4 focuses on the AS54825 (Packet Host) breakouts: which
// countries' traffic lands in Amsterdam vs Virginia, and the suboptimal
// cases where a closer PGW exists but isn't used.
func (r *Runner) Figure4() (*report.Table, error) {
	src := rng.New(r.Cfg.Seed).Fork("fig4")
	ph := r.W.Providers["Packet Host"]
	t := &report.Table{
		Title: "Figure 4: eSIMs breaking out via Packet Host (AS54825)",
		Headers: []string{"Country", "b-MNO", "PGW Site", "Distance (km)",
			"Nearest PH Site", "Nearest (km)", "Suboptimal"},
	}
	for _, key := range r.W.DeploymentKeys(false, false) {
		d := r.W.Deployments[key]
		usesPH := false
		var site ipx.PGWSite
		for i := 0; i < 20 && !usesPH; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				return nil, err
			}
			if s.Provider.Name == "Packet Host" {
				usesPH = true
				site = s.Site
			}
		}
		if !usesPH {
			continue
		}
		dist := geo.DistanceKm(d.Loc, site.Loc)
		// Nearest Packet Host site regardless of agreements.
		nearest := ph.Sites[0]
		nd := geo.DistanceKm(d.Loc, nearest.Loc)
		for _, cand := range ph.Sites[1:] {
			if dd := geo.DistanceKm(d.Loc, cand.Loc); dd < nd {
				nearest, nd = cand, dd
			}
		}
		sub := "no"
		if dist > nd*1.2 {
			sub = "YES"
		}
		t.AddRow(key, d.BMNO.Name, site.City, fmt.Sprintf("%.0f", dist),
			nearest.City, fmt.Sprintf("%.0f", nd), sub)
	}
	return t, nil
}

// Figure5Result carries the v-MNO core comparison.
type Figure5Result struct {
	Table *report.Table
	// Medians per group for data (MB/day) and signalling (msgs/day).
	DataMedians map[string]float64
	SigMedians  map[string]float64
	// MinedRanges is the number of IMSI prefixes the miner extracted.
	MinedRanges int
	// Precision/Recall of the Airalo identification.
	Precision, Recall float64
}

// Figure5 runs the full collaboration pipeline: seed 10 Airalo devices
// in the UK v-MNO, look up their IMSIs by IMEI, mine the leased ranges,
// partition the inbound Play roamers, and compare the data/signalling
// consumption of inferred Airalo users vs ordinary Play roamers vs the
// v-MNO's native users.
func (r *Runner) Figure5() (*Figure5Result, error) {
	src := rng.New(r.Cfg.Seed).Fork("fig5")
	vmno := r.W.Operators["UK Partner MNO"]
	play := r.W.Operators["Play"]
	var airaloRange mno.IMSIRange
	for _, rg := range play.Ranges() {
		if rg.Label == "airalo" {
			airaloRange = rg
		}
	}
	if airaloRange.Prefix == "" {
		return nil, fmt.Errorf("experiments: Play has no leased airalo range")
	}
	sim := vmnocore.New(vmno, play, airaloRange, src)
	pop := sim.Population(1200, 500, 250)
	seeded := sim.SeedDevices(10)
	all := append(append([]vmnocore.Subscriber(nil), pop...), seeded...)

	var seedIMSIs []mno.IMSI
	for _, dev := range seeded {
		imsi, ok := vmnocore.LookupIMSIByIMEI(all, dev.IMEI)
		if !ok {
			return nil, fmt.Errorf("experiments: seeded device missing from core")
		}
		seedIMSIs = append(seedIMSIs, imsi)
	}
	ranges, err := core.MineIMSIRanges(seedIMSIs, core.MineOptions{})
	if err != nil {
		return nil, err
	}

	obs := sim.ObserveMonth(all, 30)
	groups := map[string][]float64{}
	sig := map[string][]float64{}
	var tp, fp, fn int
	for _, o := range obs {
		var label string
		switch {
		case o.Sub.IMSI.PLMNOf(2) == vmno.PLMN:
			label = "native"
		case ranges.Match(o.Sub.IMSI):
			label = "airalo (inferred)"
		default:
			label = "play roamers"
		}
		groups[label] = append(groups[label], o.DataMB/30)
		sig[label] = append(sig[label], o.SignallingMsg/30)
		if o.Sub.IMSI.PLMNOf(2) == play.PLMN {
			inferred := ranges.Match(o.Sub.IMSI)
			truth := o.Sub.TrueGroup == vmnocore.GroupAiralo
			switch {
			case inferred && truth:
				tp++
			case inferred && !truth:
				fp++
			case !inferred && truth:
				fn++
			}
		}
	}

	res := &Figure5Result{
		DataMedians: map[string]float64{},
		SigMedians:  map[string]float64{},
		MinedRanges: len(ranges.Ranges),
	}
	if tp+fp > 0 {
		res.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		res.Recall = float64(tp) / float64(tp+fn)
	}
	t := &report.Table{
		Title:   "Figure 5: daily data/signalling per subscriber group (UK v-MNO core)",
		Headers: []string{"Group", "N", "Data median (MB)", "Data Q1-Q3", "Signalling median (msg)", "Sig Q1-Q3"},
	}
	var labels []string
	for l := range groups {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		db := stats.NewBoxplot(groups[l])
		sb := stats.NewBoxplot(sig[l])
		res.DataMedians[l] = db.Median
		res.SigMedians[l] = sb.Median
		t.AddRow(l, db.N,
			fmt.Sprintf("%.0f", db.Median), fmt.Sprintf("%.0f-%.0f", db.Q1, db.Q3),
			fmt.Sprintf("%.0f", sb.Median), fmt.Sprintf("%.0f-%.0f", sb.Q1, sb.Q3))
	}
	res.Table = t
	return res, nil
}
