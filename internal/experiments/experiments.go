// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated world: the infrastructure inventory
// (Table 2, Figures 3-5), the path analysis (Figures 6-10), the
// performance comparison (Figures 11-14, 20), user experience
// (Figure 15), and the marketplace economics (Figures 16-19), plus the
// ablations DESIGN.md calls out.
//
// A Runner owns the world and memoizes the raw measurement datasets so
// figures that share inputs (e.g. Figures 7/8/9/10 all come from the
// traceroute campaign) don't re-measure.
//
// # Parallel campaigns
//
// Each campaign enumerates its work as (country, SIM kind,
// target/provider, rep) units, pre-forks one labeled rng.Source per unit
// in canonical order, and executes the units on a bounded worker pool
// (Config.Workers, default GOMAXPROCS); see parallel.go. Observations
// are merged back in canonical unit order, so the memoized datasets are
// byte-identical no matter the worker count or GOMAXPROCS.
package experiments

import (
	"fmt"
	"sync"

	"roamsim/internal/airalo"
	"roamsim/internal/core"
	"roamsim/internal/ipx"
	"roamsim/internal/measure"
	"roamsim/internal/mno"
	"roamsim/internal/rng"
	"roamsim/internal/video"
)

// Config sizes the measurement campaigns.
type Config struct {
	Seed                 int64
	TracesPerCountry     int // per (country, config, target)
	SpeedtestsPerCountry int // per (country, config)
	CDNFetchesPerCountry int // per (country, config, provider)
	DNSPerCountry        int // per (country, config)
	VideosPerCountry     int // per (country, config)
	WebMeasurements      int // per web-campaign country

	// Workers bounds the campaign worker pool. 0 (the default) means
	// GOMAXPROCS at campaign time; 1 forces serial execution. Results
	// are identical for every value — see the package doc.
	Workers int
}

// DefaultConfig returns campaign sizes comparable to Table 4's counts.
func DefaultConfig() Config {
	return Config{
		Seed:                 42,
		TracesPerCountry:     40,
		SpeedtestsPerCountry: 60,
		CDNFetchesPerCountry: 25,
		DNSPerCountry:        40,
		VideosPerCountry:     12,
		WebMeasurements:      9,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.TracesPerCountry == 0 {
		c.TracesPerCountry = d.TracesPerCountry
	}
	if c.SpeedtestsPerCountry == 0 {
		c.SpeedtestsPerCountry = d.SpeedtestsPerCountry
	}
	if c.CDNFetchesPerCountry == 0 {
		c.CDNFetchesPerCountry = d.CDNFetchesPerCountry
	}
	if c.DNSPerCountry == 0 {
		c.DNSPerCountry = d.DNSPerCountry
	}
	if c.VideosPerCountry == 0 {
		c.VideosPerCountry = d.VideosPerCountry
	}
	if c.WebMeasurements == 0 {
		c.WebMeasurements = d.WebMeasurements
	}
	return c
}

// Runner executes and memoizes the measurement campaigns. Methods are
// safe for concurrent use: memoization is guarded by a mutex, and the
// campaigns themselves parallelize internally.
type Runner struct {
	W   *airalo.World
	Cfg Config

	mu     sync.Mutex
	traces []TraceObs // guarded by mu
	speeds []SpeedObs // guarded by mu
	cdns   []CDNObs   // guarded by mu
	dnses  []DNSObs   // guarded by mu
	videos []VideoObs // guarded by mu
}

// NewRunner builds a world and runner from the config.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	w, err := airalo.Build(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Runner{W: w, Cfg: cfg}, nil
}

// NewRunnerWith reuses an existing world.
func NewRunnerWith(w *airalo.World, cfg Config) *Runner {
	return &Runner{W: w, Cfg: cfg.withDefaults()}
}

// TraceObs is one demarcated traceroute observation.
type TraceObs struct {
	ISO      string
	Kind     mno.SIMKind
	Arch     ipx.Architecture
	Target   string
	Provider string // PGW provider org (from demarcation)
	PA       core.PathAnalysis
	RAT      mno.RAT
}

// SpeedObs is one speedtest observation.
type SpeedObs struct {
	ISO        string
	Kind       mno.SIMKind
	Arch       ipx.Architecture
	RAT        mno.RAT
	CQI        int
	Down, Up   float64
	LatencyMs  float64
	ServerCity string
}

// CDNObs is one CDN fetch observation.
type CDNObs struct {
	ISO      string
	Kind     mno.SIMKind
	Arch     ipx.Architecture
	Provider string
	TotalMs  float64
	Cache    string
}

// DNSObs is one DNS lookup observation.
type DNSObs struct {
	ISO             string
	Kind            mno.SIMKind
	Arch            ipx.Architecture
	DurationMs      float64
	DoH             bool
	ResolverASN     uint32
	ResolverCountry string
	PGWCountry      string
}

// VideoObs is one video session observation.
type VideoObs struct {
	ISO      string
	Kind     mno.SIMKind
	Arch     ipx.Architecture
	Dominant string
	Shares   map[string]float64
}

// deviceCountries are the device-campaign deployments in display order.
var deviceCountries = []string{"GEO", "DEU", "KOR", "PAK", "QAT", "SAU", "ESP", "THA", "ARE", "GBR"}

// kindsFor returns the configurations measured in a country.
func kindsFor(d *airalo.Deployment) []mno.SIMKind {
	if d.SIMProfile != nil {
		return []mno.SIMKind{mno.PhysicalSIM, mno.ESIM}
	}
	return []mno.SIMKind{mno.ESIM}
}

func attach(d *airalo.Deployment, kind mno.SIMKind, src *rng.Source) (*airalo.Session, error) {
	if kind == mno.PhysicalSIM {
		return d.AttachSIM(src)
	}
	return d.AttachESIM(src)
}

// Traces runs (or returns the memoized) traceroute campaign: every
// device-campaign country, both configurations, Google and Facebook.
func (r *Runner) Traces() ([]TraceObs, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traces != nil {
		return r.traces, nil
	}
	var units []unit[TraceObs]
	for _, iso := range deviceCountries {
		d := r.W.Deployments[iso]
		for _, kind := range kindsFor(d) {
			for _, target := range []string{"Google", "Facebook"} {
				for i := 0; i < r.Cfg.TracesPerCountry; i++ {
					units = append(units, unit[TraceObs]{
						label: fmt.Sprintf("%s/%s/%s/%d", iso, kind, target, i),
						run: func(src *rng.Source) ([]TraceObs, error) {
							s, err := attach(d, kind, src)
							if err != nil {
								return nil, err
							}
							tr, err := measure.Traceroute(s, target, src)
							if err != nil {
								return nil, err
							}
							pa, err := core.Demarcate(tr.Raw, r.W.Reg)
							if err != nil {
								// Fully silent paths happen (e.g. a mute CG-NAT plus
								// unlucky ICMP); skip like the paper's parser would.
								return nil, nil
							}
							return []TraceObs{{
								ISO: iso, Kind: kind, Arch: s.Arch, Target: target,
								Provider: pa.PGW.AS.Org, PA: pa,
								RAT: s.Radio.Sample(src).RAT,
							}}, nil
						},
					})
				}
			}
		}
	}
	out, err := runUnits(rng.New(r.Cfg.Seed).Fork("traces"), r.Cfg.workers(), units)
	if err != nil {
		return nil, err
	}
	r.traces = out
	return out, nil
}

// Speedtests runs (or returns) the Ookla campaign.
func (r *Runner) Speedtests() ([]SpeedObs, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.speeds != nil {
		return r.speeds, nil
	}
	var units []unit[SpeedObs]
	for _, iso := range deviceCountries {
		d := r.W.Deployments[iso]
		for _, kind := range kindsFor(d) {
			for i := 0; i < r.Cfg.SpeedtestsPerCountry; i++ {
				units = append(units, unit[SpeedObs]{
					label: fmt.Sprintf("%s/%s/%d", iso, kind, i),
					run: func(src *rng.Source) ([]SpeedObs, error) {
						s, err := attach(d, kind, src)
						if err != nil {
							return nil, err
						}
						res, err := measure.Speedtest(s, src)
						if err != nil {
							return nil, err
						}
						return []SpeedObs{{
							ISO: iso, Kind: kind, Arch: s.Arch,
							RAT: res.Radio.RAT, CQI: res.Radio.CQI,
							Down: res.DownMbps, Up: res.UpMbps,
							LatencyMs: res.LatencyMs, ServerCity: res.ServerCity,
						}}, nil
					},
				})
			}
		}
	}
	out, err := runUnits(rng.New(r.Cfg.Seed).Fork("speedtests"), r.Cfg.workers(), units)
	if err != nil {
		return nil, err
	}
	r.speeds = out
	return out, nil
}

// CDNFetches runs (or returns) the five-provider CDN campaign.
func (r *Runner) CDNFetches() ([]CDNObs, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cdns != nil {
		return r.cdns, nil
	}
	providers := []string{"Cloudflare", "Google CDN", "jQuery CDN", "jsDelivr", "Microsoft Ajax"}
	var units []unit[CDNObs]
	for _, iso := range deviceCountries {
		d := r.W.Deployments[iso]
		for _, kind := range kindsFor(d) {
			for _, prov := range providers {
				for i := 0; i < r.Cfg.CDNFetchesPerCountry; i++ {
					units = append(units, unit[CDNObs]{
						label: fmt.Sprintf("%s/%s/%s/%d", iso, kind, prov, i),
						run: func(src *rng.Source) ([]CDNObs, error) {
							s, err := attach(d, kind, src)
							if err != nil {
								return nil, err
							}
							res, err := measure.CDNFetch(s, prov, src)
							if err != nil {
								return nil, err
							}
							return []CDNObs{{
								ISO: iso, Kind: kind, Arch: s.Arch,
								Provider: prov, TotalMs: res.TotalMs, Cache: string(res.Cache),
							}}, nil
						},
					})
				}
			}
		}
	}
	out, err := runUnits(rng.New(r.Cfg.Seed).Fork("cdn"), r.Cfg.workers(), units)
	if err != nil {
		return nil, err
	}
	r.cdns = out
	return out, nil
}

// DNSLookups runs (or returns) the resolver campaign.
func (r *Runner) DNSLookups() ([]DNSObs, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dnses != nil {
		return r.dnses, nil
	}
	var units []unit[DNSObs]
	for _, iso := range deviceCountries {
		d := r.W.Deployments[iso]
		for _, kind := range kindsFor(d) {
			for i := 0; i < r.Cfg.DNSPerCountry; i++ {
				units = append(units, unit[DNSObs]{
					label: fmt.Sprintf("%s/%s/%d", iso, kind, i),
					run: func(src *rng.Source) ([]DNSObs, error) {
						s, err := attach(d, kind, src)
						if err != nil {
							return nil, err
						}
						res, err := measure.DNSLookup(s, src)
						if err != nil {
							return nil, err
						}
						return []DNSObs{{
							ISO: iso, Kind: kind, Arch: s.Arch,
							DurationMs: res.DurationMs, DoH: res.DoH,
							ResolverASN:     uint32(res.Resolver.ASN),
							ResolverCountry: res.Resolver.Country,
							PGWCountry:      s.Site.Country,
						}}, nil
					},
				})
			}
		}
	}
	out, err := runUnits(rng.New(r.Cfg.Seed).Fork("dns"), r.Cfg.workers(), units)
	if err != nil {
		return nil, err
	}
	r.dnses = out
	return out, nil
}

// Videos runs (or returns) the YouTube campaign. Spain and the UK are
// excluded as in the paper (insufficient samples there).
func (r *Runner) Videos() ([]VideoObs, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.videos != nil {
		return r.videos, nil
	}
	var units []unit[VideoObs]
	for _, iso := range deviceCountries {
		if iso == "ESP" || iso == "GBR" {
			continue
		}
		d := r.W.Deployments[iso]
		for _, kind := range kindsFor(d) {
			for i := 0; i < r.Cfg.VideosPerCountry; i++ {
				units = append(units, unit[VideoObs]{
					label: fmt.Sprintf("%s/%s/%d", iso, kind, i),
					run: func(src *rng.Source) ([]VideoObs, error) {
						s, err := attach(d, kind, src)
						if err != nil {
							return nil, err
						}
						st, err := measure.StreamVideo(s, video.Config{DurationSec: 120}, src)
						if err != nil {
							return nil, err
						}
						shares := map[string]float64{}
						for name := range st.SecondsAt {
							shares[name] = st.Share(name)
						}
						return []VideoObs{{
							ISO: iso, Kind: kind, Arch: s.Arch,
							Dominant: st.DominantResolution, Shares: shares,
						}}, nil
					},
				})
			}
		}
	}
	out, err := runUnits(rng.New(r.Cfg.Seed).Fork("video"), r.Cfg.workers(), units)
	if err != nil {
		return nil, err
	}
	r.videos = out
	return out, nil
}

// filterTraces selects trace observations.
func filterTraces(obs []TraceObs, pred func(TraceObs) bool) []TraceObs {
	var out []TraceObs
	for _, o := range obs {
		if pred(o) {
			out = append(out, o)
		}
	}
	return out
}

// usable applies the CQI filter of Section 5.1.
func usable(obs []SpeedObs) []SpeedObs {
	var out []SpeedObs
	for _, o := range obs {
		if o.CQI >= mno.MinUsableCQI {
			out = append(out, o)
		}
	}
	return out
}

func configLabel(kind mno.SIMKind, arch ipx.Architecture) string {
	if kind == mno.PhysicalSIM {
		return "SIM"
	}
	return fmt.Sprintf("eSIM/%s", arch)
}
