package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"roamsim/internal/airalo"
	"roamsim/internal/rng"
)

// campaignBundle is every observation dataset a runner produces.
type campaignBundle struct {
	traces []TraceObs
	speeds []SpeedObs
	cdns   []CDNObs
	dnses  []DNSObs
	videos []VideoObs
}

func runAllCampaigns(t *testing.T, r *Runner) campaignBundle {
	t.Helper()
	var b campaignBundle
	var err error
	if b.traces, err = r.Traces(); err != nil {
		t.Fatalf("Traces: %v", err)
	}
	if b.speeds, err = r.Speedtests(); err != nil {
		t.Fatalf("Speedtests: %v", err)
	}
	if b.cdns, err = r.CDNFetches(); err != nil {
		t.Fatalf("CDNFetches: %v", err)
	}
	if b.dnses, err = r.DNSLookups(); err != nil {
		t.Fatalf("DNSLookups: %v", err)
	}
	if b.videos, err = r.Videos(); err != nil {
		t.Fatalf("Videos: %v", err)
	}
	return b
}

// TestCampaignDeterminismAcrossSchedulers is the parallel engine's core
// regression test: the full campaign run twice with the same seed — once
// serial at GOMAXPROCS=1, once on a wide worker pool at GOMAXPROCS >=
// NumCPU — must produce deeply-equal observation slices. Both runners
// share one world, so any scheduling-dependent draw, stray shared-state
// mutation, or out-of-order merge shows up as a diff.
func TestCampaignDeterminismAcrossSchedulers(t *testing.T) {
	w, err := airalo.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed:                 42,
		TracesPerCountry:     4,
		SpeedtestsPerCountry: 6,
		CDNFetchesPerCountry: 2,
		DNSPerCountry:        4,
		VideosPerCountry:     2,
		WebMeasurements:      2,
	}

	run := func(workers, procs int) campaignBundle {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		c := cfg
		c.Workers = workers
		return runAllCampaigns(t, NewRunnerWith(w, c))
	}

	wide := runtime.NumCPU()
	if wide < 4 {
		wide = 4 // GOMAXPROCS may exceed NumCPU; keep real scheduling pressure
	}
	serial := run(1, 1)
	parallel := run(8, wide)

	if !reflect.DeepEqual(serial.traces, parallel.traces) {
		t.Error("trace observations differ between serial and parallel runs")
	}
	if !reflect.DeepEqual(serial.speeds, parallel.speeds) {
		t.Error("speedtest observations differ between serial and parallel runs")
	}
	if !reflect.DeepEqual(serial.cdns, parallel.cdns) {
		t.Error("CDN observations differ between serial and parallel runs")
	}
	if !reflect.DeepEqual(serial.dnses, parallel.dnses) {
		t.Error("DNS observations differ between serial and parallel runs")
	}
	if !reflect.DeepEqual(serial.videos, parallel.videos) {
		t.Error("video observations differ between serial and parallel runs")
	}
}

// TestRunUnitsCanonicalOrder pins the merge contract: results come back
// in enumeration order regardless of which worker finishes first, and a
// unit's stream depends only on its label and fork position.
func TestRunUnitsCanonicalOrder(t *testing.T) {
	mk := func(workers int) []int {
		var units []unit[int]
		for i := 0; i < 50; i++ {
			units = append(units, unit[int]{
				label: fmt.Sprintf("u%d", i),
				run: func(src *rng.Source) ([]int, error) {
					return []int{src.Intn(1 << 30)}, nil
				},
			})
		}
		out, err := runUnits(rng.New(5).Fork("order"), workers, units)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := mk(1)
	for _, workers := range []int{2, 7, 64} {
		if got := mk(workers); !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d: results differ from serial", workers)
		}
	}
}

// TestRunUnitsErrorIsCanonical checks the earliest failing unit (in
// enumeration order) wins, not whichever goroutine fails first.
func TestRunUnitsErrorIsCanonical(t *testing.T) {
	var units []unit[int]
	for i := 0; i < 20; i++ {
		fail := i == 3 || i == 17
		units = append(units, unit[int]{
			label: fmt.Sprintf("u%d", i),
			run: func(src *rng.Source) ([]int, error) {
				if fail {
					return nil, fmt.Errorf("unit failed")
				}
				return []int{1}, nil
			},
		})
	}
	for _, workers := range []int{1, 8} {
		if _, err := runUnits(rng.New(1).Fork("err"), workers, units); err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
	}
}

// TestRunnerConcurrentMemoization checks the memo layer: many goroutines
// requesting the same campaign get one consistent dataset.
func TestRunnerConcurrentMemoization(t *testing.T) {
	w, err := airalo.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerWith(w, Config{Seed: 42, TracesPerCountry: 2, SpeedtestsPerCountry: 2,
		CDNFetchesPerCountry: 1, DNSPerCountry: 2, VideosPerCountry: 1, WebMeasurements: 1})

	const goroutines = 8
	results := make([][]TraceObs, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			obs, err := r.Traces()
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			results[g] = obs
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("goroutine %d saw %d traces, goroutine 0 saw %d",
				g, len(results[g]), len(results[0]))
		}
	}
}
