package inet

import (
	"testing"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/netsim"
	"roamsim/internal/rng"
)

func newBuilder() *Builder {
	return NewBuilder(netsim.New(), ipreg.NewRegistry(), rng.New(1))
}

func googleSpec() SPSpec {
	return SPSpec{
		Name: "Google", ASN: 15169, Kind: ipreg.KindContent,
		Prefix:          ipaddr.MustParsePrefix("142.250.0.0/16"),
		EdgeCities:      []string{"Amsterdam", "Singapore", "Ashburn", "Frankfurt", "Mumbai"},
		MinInternalHops: 2, MaxInternalHops: 6,
	}
}

func TestAddServiceProvider(t *testing.T) {
	b := newBuilder()
	sp, err := b.AddServiceProvider(googleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Edges) != 5 {
		t.Fatalf("edges = %d", len(sp.Edges))
	}
	for _, e := range sp.Edges {
		if e.InternalHops < 2 || e.InternalHops > 6 {
			t.Errorf("edge %s internal hops = %d", e.City, e.InternalHops)
		}
		// Server address resolves to Google's AS at the edge city.
		info, ok := b.Reg.Lookup(e.ServerAddr)
		if !ok {
			t.Fatalf("server addr %s not registered", e.ServerAddr)
		}
		if info.AS.Number != 15169 || info.City != e.City {
			t.Errorf("edge %s resolves to %s/%s", e.City, info.AS.Number, info.City)
		}
		// Peering router to server must be routable.
		p, err := b.Net.Route(e.Peering, e.Server)
		if err != nil {
			t.Fatalf("edge %s not internally routable: %v", e.City, err)
		}
		if p.Hops() != e.InternalHops+1 {
			t.Errorf("edge %s path hops = %d, want %d", e.City, p.Hops(), e.InternalHops+1)
		}
	}
}

func TestAddServiceProviderValidation(t *testing.T) {
	b := newBuilder()
	if _, err := b.AddServiceProvider(googleSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddServiceProvider(googleSpec()); err == nil {
		t.Error("duplicate SP accepted")
	}
	bad := googleSpec()
	bad.Name = "NoEdges"
	bad.EdgeCities = nil
	if _, err := b.AddServiceProvider(bad); err == nil {
		t.Error("SP without edges accepted")
	}
	bad2 := googleSpec()
	bad2.Name = "BadCity"
	bad2.Prefix = ipaddr.MustParsePrefix("9.0.0.0/16")
	bad2.EdgeCities = []string{"Atlantis"}
	if _, err := b.AddServiceProvider(bad2); err == nil {
		t.Error("unknown city accepted")
	}
	bad3 := googleSpec()
	bad3.Name = "BadHops"
	bad3.Prefix = ipaddr.MustParsePrefix("11.0.0.0/16")
	bad3.MinInternalHops = 5
	bad3.MaxInternalHops = 2
	if _, err := b.AddServiceProvider(bad3); err == nil {
		t.Error("inverted hop bounds accepted")
	}
}

func TestNearestEdgeAnycast(t *testing.T) {
	b := newBuilder()
	sp, _ := b.AddServiceProvider(googleSpec())
	e, err := sp.NearestEdge(geo.MustCity("Paris").Loc)
	if err != nil {
		t.Fatal(err)
	}
	if e.City != "Amsterdam" && e.City != "Frankfurt" {
		t.Errorf("Paris user got edge %s", e.City)
	}
	e, _ = sp.NearestEdge(geo.MustCity("Kuala Lumpur").Loc)
	if e.City != "Singapore" {
		t.Errorf("KL user got edge %s", e.City)
	}
	var empty ServiceProvider
	if _, err := empty.NearestEdge(geo.Point{}); err == nil {
		t.Error("empty SP should error")
	}
}

func TestEdgeIn(t *testing.T) {
	b := newBuilder()
	sp, _ := b.AddServiceProvider(googleSpec())
	if _, ok := sp.EdgeIn("Singapore"); !ok {
		t.Error("EdgeIn Singapore failed")
	}
	if _, ok := sp.EdgeIn("Paris"); ok {
		t.Error("EdgeIn Paris should miss")
	}
}

func TestPeerWithConnectsNearestEdges(t *testing.T) {
	b := newBuilder()
	sp, _ := b.AddServiceProvider(googleSpec())
	pgw := b.Net.AddNode(netsim.Node{
		Name: "pgw-ams", Kind: netsim.KindPGW,
		Loc:  geo.MustCity("Amsterdam").Loc,
		Addr: ipaddr.MustParse("147.75.32.1"),
	})
	b.PeerWith(pgw, sp, 2, netsim.Link{})
	if d := b.Net.Degree(pgw); d != 2 {
		t.Fatalf("pgw degree = %d, want 2", d)
	}
	// The PGW must now reach the Amsterdam edge server in few hops.
	ams, _ := sp.EdgeIn("Amsterdam")
	p, err := b.Net.Route(pgw, ams.Server)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() > ams.InternalHops+2 {
		t.Errorf("hops = %d, want <= %d", p.Hops(), ams.InternalHops+2)
	}
	// And its latency must be tiny (same city).
	if ow := p.BaseOneWayMs(); ow > 5 {
		t.Errorf("one-way to local edge = %f ms", ow)
	}
}

func TestPeeringPenaltyAffectsRTT(t *testing.T) {
	b := newBuilder()
	sp, _ := b.AddServiceProvider(googleSpec())
	good := b.Net.AddNode(netsim.Node{Name: "good", Kind: netsim.KindPGW, Loc: geo.MustCity("Amsterdam").Loc})
	bad := b.Net.AddNode(netsim.Node{Name: "bad", Kind: netsim.KindPGW, Loc: geo.MustCity("Amsterdam").Loc})
	b.PeerWith(good, sp, 1, netsim.Link{})
	b.PeerWith(bad, sp, 1, netsim.Link{PeeringPenaltyMs: 25})
	ams, _ := sp.EdgeIn("Amsterdam")
	pg, _ := b.Net.Route(good, ams.Server)
	pb, _ := b.Net.Route(bad, ams.Server)
	if pb.BaseOneWayMs() <= pg.BaseOneWayMs()+20 {
		t.Errorf("penalty not reflected: good=%f bad=%f", pg.BaseOneWayMs(), pb.BaseOneWayMs())
	}
}

func TestSPsSorted(t *testing.T) {
	b := newBuilder()
	b.AddServiceProvider(googleSpec())
	fb := SPSpec{Name: "Facebook", ASN: 32934, Kind: ipreg.KindContent,
		Prefix: ipaddr.MustParsePrefix("157.240.0.0/16"), EdgeCities: []string{"Amsterdam"},
		MinInternalHops: 1, MaxInternalHops: 3}
	if _, err := b.AddServiceProvider(fb); err != nil {
		t.Fatal(err)
	}
	sps := b.SPs()
	if len(sps) != 2 || sps[0].Name != "Facebook" || sps[1].Name != "Google" {
		t.Errorf("SPs order wrong: %v", []string{sps[0].Name, sps[1].Name})
	}
	if _, ok := b.SP("Google"); !ok {
		t.Error("SP lookup failed")
	}
}

func TestNearestEdgeIsArgmin(t *testing.T) {
	b := newBuilder()
	sp, _ := b.AddServiceProvider(googleSpec())
	src := rng.New(9)
	for trial := 0; trial < 200; trial++ {
		p := geo.Point{Lat: src.Uniform(-60, 70), Lon: src.Uniform(-180, 180)}
		got, err := sp.NearestEdge(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range sp.Edges {
			if geo.DistanceKm(p, e.Loc) < geo.DistanceKm(p, got.Loc)-1e-9 {
				t.Fatalf("NearestEdge(%v) = %s, but %s is closer", p, got.City, e.City)
			}
		}
	}
}
