// Package inet builds the public-internet side of the topology: the
// service providers (Google, Facebook, Ookla, the five CDNs) with their
// globally distributed edge sites, and the peering fabric that connects
// PGW providers to them.
//
// Each edge site is a small stack of netsim nodes: a peering (border)
// router announced in the SP's AS, a configurable number of internal
// routers, and the server itself. Internal depth varies per site, which
// is what produces the public-path-length variance of Figure 10 — the
// paper attributes that variance to "SPs' internal routing policies",
// and here it literally is one.
package inet

import (
	"fmt"
	"sort"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/netsim"
	"roamsim/internal/rng"
)

// Edge is one service-provider point of presence.
type Edge struct {
	City    string
	Country string
	Loc     geo.Point
	// Peering is the border router other networks connect to.
	Peering netsim.NodeID
	// Server is the measurement target (answers pings, serves objects).
	Server netsim.NodeID
	// ServerAddr is the public address of the server.
	ServerAddr ipaddr.Addr
	// InternalHops is the number of routers between Peering and Server.
	InternalHops int
}

// ServiceProvider is a content/service network with many edges.
type ServiceProvider struct {
	Name  string
	ASN   ipreg.ASN
	Kind  ipreg.OrgKind
	Edges []Edge
}

// NearestEdge returns the edge closest to loc (anycast routing).
func (sp *ServiceProvider) NearestEdge(loc geo.Point) (Edge, error) {
	if len(sp.Edges) == 0 {
		return Edge{}, fmt.Errorf("inet: %s has no edges", sp.Name)
	}
	best := sp.Edges[0]
	bestD := geo.DistanceKm(loc, best.Loc)
	for _, e := range sp.Edges[1:] {
		if d := geo.DistanceKm(loc, e.Loc); d < bestD {
			best, bestD = e, d
		}
	}
	return best, nil
}

// EdgeIn returns the edge in the given city, if any.
func (sp *ServiceProvider) EdgeIn(city string) (Edge, bool) {
	for _, e := range sp.Edges {
		if e.City == city {
			return e, true
		}
	}
	return Edge{}, false
}

// SPSpec describes a service provider to build.
type SPSpec struct {
	Name   string
	ASN    ipreg.ASN
	Kind   ipreg.OrgKind
	Prefix ipaddr.Prefix // address space for servers and border routers
	// EdgeCities are the POP locations (must exist in the geo database).
	EdgeCities []string
	// MinInternalHops/MaxInternalHops bound the per-edge internal router
	// chain; the exact depth is drawn once per edge at build time.
	MinInternalHops, MaxInternalHops int
}

// Builder assembles the public internet into a network + registry.
type Builder struct {
	Net *netsim.Network
	Reg *ipreg.Registry
	Rnd *rng.Source

	sps map[string]*ServiceProvider
}

// NewBuilder returns a Builder over the given network and registry.
func NewBuilder(n *netsim.Network, reg *ipreg.Registry, src *rng.Source) *Builder {
	return &Builder{Net: n, Reg: reg, Rnd: src, sps: make(map[string]*ServiceProvider)}
}

// AddServiceProvider creates the SP's AS, address space and edge stacks.
func (b *Builder) AddServiceProvider(spec SPSpec) (*ServiceProvider, error) {
	if _, dup := b.sps[spec.Name]; dup {
		return nil, fmt.Errorf("inet: duplicate SP %s", spec.Name)
	}
	if len(spec.EdgeCities) == 0 {
		return nil, fmt.Errorf("inet: SP %s has no edges", spec.Name)
	}
	if spec.MinInternalHops < 0 || spec.MaxInternalHops < spec.MinInternalHops {
		return nil, fmt.Errorf("inet: SP %s has bad internal hop bounds", spec.Name)
	}
	b.Reg.RegisterAS(ipreg.AS{Number: spec.ASN, Org: spec.Name, Country: "USA", Kind: spec.Kind})
	alloc := ipaddr.NewAllocator(spec.Prefix)
	sp := &ServiceProvider{Name: spec.Name, ASN: spec.ASN, Kind: spec.Kind}

	for _, cityName := range spec.EdgeCities {
		city, err := geo.LookupCity(cityName)
		if err != nil {
			return nil, fmt.Errorf("inet: SP %s: %w", spec.Name, err)
		}
		sitePrefix, err := alloc.NextPrefix(27)
		if err != nil {
			return nil, fmt.Errorf("inet: SP %s out of address space: %w", spec.Name, err)
		}
		b.Reg.MustRegisterPrefix(sitePrefix, spec.ASN, city.Name, city.Country, city.Loc)
		siteAlloc := ipaddr.NewAllocator(sitePrefix)

		peering := b.Net.AddNode(netsim.Node{
			Name: fmt.Sprintf("%s-peer-%s", spec.Name, city.Name),
			Kind: netsim.KindRouter, Loc: city.Loc,
			Addr: siteAlloc.MustNextAddr(), ASN: spec.ASN,
		})
		prev := peering
		depth := spec.MinInternalHops
		if spec.MaxInternalHops > spec.MinInternalHops {
			depth = b.Rnd.IntBetween(spec.MinInternalHops, spec.MaxInternalHops)
		}
		for i := 0; i < depth; i++ {
			r := b.Net.AddNode(netsim.Node{
				Name: fmt.Sprintf("%s-core%d-%s", spec.Name, i, city.Name),
				Kind: netsim.KindRouter, Loc: city.Loc,
				Addr: siteAlloc.MustNextAddr(), ASN: spec.ASN,
			})
			b.Net.Connect(prev, r, netsim.Link{DelayMs: 0.2, BandwidthMbps: 100000})
			prev = r
		}
		serverAddr := siteAlloc.MustNextAddr()
		server := b.Net.AddNode(netsim.Node{
			Name: fmt.Sprintf("%s-edge-%s", spec.Name, city.Name),
			Kind: netsim.KindServer, Loc: city.Loc,
			Addr: serverAddr, ASN: spec.ASN,
		})
		b.Net.Connect(prev, server, netsim.Link{DelayMs: 0.2, BandwidthMbps: 100000})
		sp.Edges = append(sp.Edges, Edge{
			City: city.Name, Country: city.Country, Loc: city.Loc,
			Peering: peering, Server: server, ServerAddr: serverAddr,
			InternalHops: depth,
		})
	}
	b.sps[spec.Name] = sp
	return sp, nil
}

// SP returns a built service provider by name.
func (b *Builder) SP(name string) (*ServiceProvider, bool) {
	sp, ok := b.sps[name]
	return sp, ok
}

// SPs returns all built providers sorted by name.
func (b *Builder) SPs() []*ServiceProvider {
	out := make([]*ServiceProvider, 0, len(b.sps))
	for _, sp := range b.sps {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PeerWith connects a node (typically a PGW provider's CG-NAT or border
// router) to the nearest edges of the SP. count limits how many edges to
// peer with (anycast needs only the nearby ones); link carries optional
// peering-quality parameters.
func (b *Builder) PeerWith(from netsim.NodeID, sp *ServiceProvider, count int, link netsim.Link) {
	loc := b.Net.Node(from).Loc
	edges := append([]Edge(nil), sp.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		return geo.DistanceKm(loc, edges[i].Loc) < geo.DistanceKm(loc, edges[j].Loc)
	})
	if count > len(edges) {
		count = len(edges)
	}
	for _, e := range edges[:count] {
		b.Net.Connect(from, e.Peering, link)
	}
}
