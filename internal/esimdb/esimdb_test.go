package esimdb

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"roamsim/internal/geo"
	"roamsim/internal/stats"
)

func market() *Marketplace { return New(42, 54) }

func TestProvidersCount(t *testing.T) {
	m := market()
	ps := m.Providers()
	if len(ps) != 54 {
		t.Fatalf("providers = %d, want 54", len(ps))
	}
	found := map[string]bool{}
	for _, p := range ps {
		found[p] = true
	}
	for _, want := range []string{"Airalo", "Airhub", "MobiMatter", "Keepgo", "Nomad"} {
		if !found[want] {
			t.Errorf("missing headline provider %s", want)
		}
	}
}

func TestOffersDeterministicPerDay(t *testing.T) {
	m := market()
	a := m.Offers(SnapshotDate)
	b := m.Offers(SnapshotDate)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("offer counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-day catalogs differ")
		}
	}
}

func TestOfferSanity(t *testing.T) {
	m := market()
	offers := m.Offers(SnapshotDate)
	if len(offers) < 2000 {
		t.Fatalf("catalog too small: %d", len(offers))
	}
	for _, p := range offers {
		if p.PriceUSD <= 0 || p.SizeGB <= 0 || p.Days <= 0 {
			t.Fatalf("degenerate plan: %+v", p)
		}
		if _, err := geo.LookupCountry(p.Country); err != nil {
			t.Fatalf("plan in unknown country %s", p.Country)
		}
	}
}

func TestProviderPriceOrdering(t *testing.T) {
	m := market()
	offers := m.Offers(SnapshotDate)
	pm := ProviderMedianPerGB(offers)
	airalo, airhub, mobi, keepgo := pm["Airalo"], pm["Airhub"], pm["MobiMatter"], pm["Keepgo"]
	// Figure 17 ordering: Airhub < MobiMatter < Airalo < Keepgo.
	if !(airhub.Median < mobi.Median && mobi.Median < airalo.Median && airalo.Median < keepgo.Median) {
		t.Errorf("provider ordering broken: airhub=%.2f mobi=%.2f airalo=%.2f keepgo=%.2f",
			airhub.Median, mobi.Median, airalo.Median, keepgo.Median)
	}
	// MobiMatter ≈ 60% cheaper than Airalo.
	ratio := mobi.Median / airalo.Median
	if ratio < 0.3 || ratio > 0.55 {
		t.Errorf("MobiMatter/Airalo ratio = %.2f, want ~0.4", ratio)
	}
	// MobiMatter has the deepest catalog.
	if mobi.Offers <= airalo.Offers {
		t.Errorf("MobiMatter offers (%d) should exceed Airalo's (%d)", mobi.Offers, airalo.Offers)
	}
}

func TestContinentOrdering(t *testing.T) {
	m := market()
	offers := m.Offers(CampaignStart)
	dist := ContinentDistribution(offers, "Airalo")
	eu := stats.Median(dist[geo.Europe])
	na := stats.Median(dist[geo.NorthAmerica])
	// Europe about half of North America (Figure 16).
	if eu >= na*0.75 {
		t.Errorf("Europe %.2f should be well below North America %.2f", eu, na)
	}
}

func TestAsiaPriceRise(t *testing.T) {
	m := market()
	before := ContinentDistribution(m.Offers(CampaignStart), "Airalo")
	after := ContinentDistribution(m.Offers(time.Date(2024, 4, 15, 0, 0, 0, 0, time.UTC)), "Airalo")
	b := stats.Median(before[geo.Asia])
	a := stats.Median(after[geo.Asia])
	if a <= b*1.05 {
		t.Errorf("Asia median should rise ~18%% (got %.2f -> %.2f)", b, a)
	}
	// Europe stays flat.
	be := stats.Median(before[geo.Europe])
	ae := stats.Median(after[geo.Europe])
	if ae < be*0.9 || ae > be*1.1 {
		t.Errorf("Europe should be stable: %.2f -> %.2f", be, ae)
	}
}

func TestCentralAmericaExpensive(t *testing.T) {
	m := market()
	med := MedianPerGBByCountry(m.Offers(SnapshotDate), "Airalo")
	var central, europe []float64
	for iso, v := range med {
		c := geo.MustCountry(iso)
		if centralAmerica[iso] {
			central = append(central, v)
		} else if c.Continent == geo.Europe {
			europe = append(europe, v)
		}
	}
	if len(central) < 4 {
		t.Fatalf("only %d central american countries priced", len(central))
	}
	if stats.Median(central) <= stats.Median(europe)*1.5 {
		t.Errorf("Central America (%.2f) should clearly exceed Europe (%.2f)",
			stats.Median(central), stats.Median(europe))
	}
}

func TestFigure19SameBMNODifferentPrices(t *testing.T) {
	m := market()
	offers := m.Offers(SnapshotDate)
	perGB := func(iso string) []float64 {
		var out []float64
		for _, p := range offers {
			if p.Provider == "Airalo" && p.Country == iso && p.SizeGB <= 5 {
				out = append(out, p.PerGB())
			}
		}
		return out
	}
	geoP, esp := perGB("GEO"), perGB("ESP")
	if len(geoP) == 0 || len(esp) == 0 {
		t.Skip("Airalo does not serve one of the countries in this seed")
	}
	// Same b-MNO (Play), but per-country factors make prices differ.
	g, e := stats.Median(geoP), stats.Median(esp)
	if g == e {
		t.Error("same-b-MNO plans should still differ across countries")
	}
	// Figure 19's specific observation: Play/Georgia is pricier than
	// Play/Spain. Verify our calibration reproduces the direction.
	for _, p := range offers {
		if p.Provider == "Airalo" && (p.Country == "GEO" || p.Country == "ESP") {
			if p.BMNOName != "Play" {
				t.Fatalf("expected Play as b-MNO, got %q", p.BMNOName)
			}
		}
	}
}

func TestCrawlerRoundTrip(t *testing.T) {
	m := market()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL, Vantage: "New Jersey"}
	got, err := c.Crawl(SnapshotDate)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Offers(SnapshotDate)
	if len(got) != len(want) {
		t.Fatalf("crawled %d offers, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("offer %d differs after crawl", i)
		}
	}
}

func TestNoPriceDiscriminationAcrossVantages(t *testing.T) {
	m := market()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	var catalogs [][]Plan
	for _, vantage := range []string{"Madrid", "Abu Dhabi", "New Jersey"} {
		c := &Crawler{BaseURL: srv.URL, Vantage: vantage}
		plans, err := c.Crawl(SnapshotDate)
		if err != nil {
			t.Fatal(err)
		}
		catalogs = append(catalogs, plans)
	}
	for i := 1; i < len(catalogs); i++ {
		if len(catalogs[i]) != len(catalogs[0]) {
			t.Fatal("catalog sizes differ across vantages")
		}
		for j := range catalogs[i] {
			if catalogs[i][j] != catalogs[0][j] {
				t.Fatalf("price discrimination detected at offer %d", j)
			}
		}
	}
}

func TestCrawlerBadRequests(t *testing.T) {
	m := market()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/offers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing date should 400, got %d", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/v1/offers?date=2024-05-01&page=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("negative page should 400, got %d", resp.StatusCode)
	}
}

func TestLocalSIMOffers(t *testing.T) {
	var esp, are LocalSIMOffer
	for _, o := range LocalSIMOffers {
		if o.Country == "ESP" {
			esp = o
		}
		if o.Country == "ARE" {
			are = o
		}
		if o.PerGB() <= 0 || o.TotalUSD() <= 0 {
			t.Fatalf("degenerate local offer %+v", o)
		}
	}
	if esp.PerGB() > 1 {
		t.Errorf("Spain local SIM per-GB = %.2f, should be well under Airalo", esp.PerGB())
	}
	if are.TotalUSD() < 30 {
		t.Errorf("UAE total = %.2f should include the SIM fee", are.TotalUSD())
	}
}

func TestPriceDeciles(t *testing.T) {
	m := market()
	d := PriceDeciles(m.Offers(SnapshotDate), "Airalo")
	if len(d) != 9 {
		t.Fatalf("deciles = %d", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i] < d[i-1] {
			t.Fatal("deciles not monotone")
		}
	}
}

func TestAiraloPlanCount(t *testing.T) {
	m := market()
	offers := m.Offers(SnapshotDate)
	var airalo int
	for _, p := range offers {
		if p.Provider == "Airalo" {
			airalo++
		}
	}
	// The paper reports 2,243 Airalo plans over 219 countries (~9 per
	// country); our world has ~70 countries, so expect ~9 per covered
	// country at reduced absolute scale.
	if airalo < 300 {
		t.Errorf("Airalo catalog too small: %d", airalo)
	}
}

func TestCrawlerServerFailure(t *testing.T) {
	// A failing aggregator (HTTP 500) must surface as an error, not a
	// silent empty catalog.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL}
	if _, err := c.Crawl(SnapshotDate); err == nil {
		t.Error("500 response should produce an error")
	}
}

func TestCrawlerGarbageBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not json"))
	}))
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL}
	if _, err := c.Crawl(SnapshotDate); err == nil {
		t.Error("garbage body should produce an error")
	}
}

func TestCrawlerDeadServer(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // connection refused from here on
	c := &Crawler{BaseURL: srv.URL}
	if _, err := c.Crawl(SnapshotDate); err == nil {
		t.Error("dead server should produce an error")
	}
}

func TestPlanPerGBProperty(t *testing.T) {
	m := market()
	for _, p := range m.Offers(SnapshotDate) {
		if p.PerGB() <= 0 {
			t.Fatalf("non-positive per-GB for %+v", p)
		}
	}
	if (Plan{SizeGB: 0, PriceUSD: 5}).PerGB() != 0 {
		t.Error("zero-size plan should return 0, not panic")
	}
}

func TestBestOffer(t *testing.T) {
	m := market()
	plans := m.Offers(SnapshotDate)
	best, ok := BestOffer(plans, "ESP", 3, "Airalo")
	if !ok {
		t.Fatal("no Airalo offer for Spain")
	}
	if best.Country != "ESP" || best.Provider != "Airalo" || best.SizeGB < 3 {
		t.Errorf("bad best offer: %+v", best)
	}
	// It really is the cheapest per GB among qualifying plans.
	for _, p := range plans {
		if p.Country == "ESP" && p.Provider == "Airalo" && p.SizeGB >= 3 {
			if p.PerGB() < best.PerGB()-1e-9 {
				t.Errorf("cheaper plan missed: %+v vs %+v", p, best)
			}
		}
	}
	if _, ok := BestOffer(plans, "XXX", 1, ""); ok {
		t.Error("unknown country should have no offers")
	}
}

func TestPlanTrip(t *testing.T) {
	m := market()
	plans := m.Offers(SnapshotDate)
	stops := []TripStop{{"ESP", 3}, {"ARE", 3}, {"THA", 3}}
	tc := PlanTrip(plans, "Airalo", stops)
	if tc.Covered+len(tc.Uncovered) != len(stops) {
		t.Error("coverage accounting broken")
	}
	if tc.Covered > 0 && tc.ESIMTotalUSD <= 0 {
		t.Error("covered stops must cost something")
	}
	// All three stops have volunteer-collected local offers.
	if tc.LocalKnown != 3 || tc.LocalTotalUSD <= 0 {
		t.Errorf("local accounting: known=%d total=%f", tc.LocalKnown, tc.LocalTotalUSD)
	}
	// The paper's observation: local SIM bundles cost more in total for
	// short multi-country trips (big bundles, SIM fees at each stop).
	if tc.Covered == 3 && tc.ESIMTotalUSD >= tc.LocalTotalUSD {
		t.Logf("note: eSIM total %.2f vs local %.2f (direction can vary by seed)",
			tc.ESIMTotalUSD, tc.LocalTotalUSD)
	}
}
