package esimdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"roamsim/internal/geo"
	"roamsim/internal/stats"
)

// pageSize is the API pagination size.
const pageSize = 200

// offersResponse is the wire format of the aggregator API.
type offersResponse struct {
	Date    string `json:"date"`
	Page    int    `json:"page"`
	Pages   int    `json:"pages"`
	Total   int    `json:"total"`
	Vantage string `json:"vantage,omitempty"`
	Offers  []Plan `json:"offers"`
}

// Handler exposes the marketplace as an HTTP API:
//
//	GET /v1/offers?date=2024-05-01&page=0
//
// The X-Vantage-Location header is echoed back but deliberately does not
// influence pricing — the no-price-discrimination finding.
func (m *Marketplace) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/offers", func(w http.ResponseWriter, r *http.Request) {
		dateStr := r.URL.Query().Get("date")
		date, err := time.Parse("2006-01-02", dateStr)
		if err != nil {
			http.Error(w, "bad or missing date", http.StatusBadRequest)
			return
		}
		page := 0
		if ps := r.URL.Query().Get("page"); ps != "" {
			page, err = strconv.Atoi(ps)
			if err != nil || page < 0 {
				http.Error(w, "bad page", http.StatusBadRequest)
				return
			}
		}
		all := m.Offers(date)
		pages := (len(all) + pageSize - 1) / pageSize
		resp := offersResponse{
			Date:    dateStr,
			Page:    page,
			Pages:   pages,
			Total:   len(all),
			Vantage: r.Header.Get("X-Vantage-Location"),
		}
		lo := page * pageSize
		if lo < len(all) {
			hi := lo + pageSize
			if hi > len(all) {
				hi = len(all)
			}
			resp.Offers = all[lo:hi]
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// Connection-level failure; nothing more to do.
			return
		}
	})
	return mux
}

// Crawler retrieves full daily catalogs from an aggregator API, as the
// paper's crawler did daily from three vantage points.
type Crawler struct {
	BaseURL string
	Vantage string // e.g. "Madrid", "Abu Dhabi", "New Jersey"
	Client  *http.Client
}

// Crawl fetches every page of the catalog for one date.
func (c *Crawler) Crawl(date time.Time) ([]Plan, error) {
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	var out []Plan
	for page := 0; ; page++ {
		url := fmt.Sprintf("%s/v1/offers?date=%s&page=%d", c.BaseURL, date.UTC().Format("2006-01-02"), page)
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if c.Vantage != "" {
			req.Header.Set("X-Vantage-Location", c.Vantage)
		}
		httpResp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("esimdb: crawl page %d: %w", page, err)
		}
		var resp offersResponse
		err = json.NewDecoder(httpResp.Body).Decode(&resp)
		// Drain whatever the decoder left (bounded) before closing so
		// the connection returns to the keep-alive pool: a daily crawl
		// is thousands of pages over the same three vantage origins.
		io.Copy(io.Discard, io.LimitReader(httpResp.Body, 256<<10))
		httpResp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("esimdb: decode page %d: %w", page, err)
		}
		if httpResp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("esimdb: page %d: HTTP %d", page, httpResp.StatusCode)
		}
		out = append(out, resp.Offers...)
		if page >= resp.Pages-1 {
			break
		}
	}
	return out, nil
}

// --- Snapshot analysis helpers (Figures 16-19) ---

// MedianPerGBByCountry returns country ISO3 -> median $/GB for one
// provider ("" = all providers).
func MedianPerGBByCountry(plans []Plan, provider string) map[string]float64 {
	byCountry := map[string][]float64{}
	for _, p := range plans {
		if provider != "" && p.Provider != provider {
			continue
		}
		if p.SizeGB > 0 {
			byCountry[p.Country] = append(byCountry[p.Country], p.PerGB())
		}
	}
	out := make(map[string]float64, len(byCountry))
	for c, v := range byCountry {
		out[c] = stats.Median(v)
	}
	return out
}

// ContinentDistribution returns, per continent, the distribution of
// country-level median $/GB values (the Figure 16 boxplot input).
func ContinentDistribution(plans []Plan, provider string) map[geo.Continent][]float64 {
	medians := MedianPerGBByCountry(plans, provider)
	out := map[geo.Continent][]float64{}
	for iso3, med := range medians {
		c, err := geo.LookupCountry(iso3)
		if err != nil {
			continue
		}
		out[c.Continent] = append(out[c.Continent], med)
	}
	for _, v := range out {
		sort.Float64s(v)
	}
	return out
}

// ProviderMedianPerGB returns each provider's median across its
// country-level medians plus its country count (the Figure 17 legend).
func ProviderMedianPerGB(plans []Plan) map[string]struct {
	Median    float64
	Countries int
	Offers    int
} {
	type agg struct {
		perCountry map[string][]float64
		offers     int
	}
	byProv := map[string]*agg{}
	for _, p := range plans {
		a, ok := byProv[p.Provider]
		if !ok {
			a = &agg{perCountry: map[string][]float64{}}
			byProv[p.Provider] = a
		}
		a.offers++
		a.perCountry[p.Country] = append(a.perCountry[p.Country], p.PerGB())
	}
	out := map[string]struct {
		Median    float64
		Countries int
		Offers    int
	}{}
	for name, a := range byProv {
		var medians []float64
		for _, v := range a.perCountry {
			medians = append(medians, stats.Median(v))
		}
		// Canonical order before the final median: the values were
		// collected in map-iteration order.
		sort.Float64s(medians)
		out[name] = struct {
			Median    float64
			Countries int
			Offers    int
		}{Median: stats.Median(medians), Countries: len(a.perCountry), Offers: a.offers}
	}
	return out
}

// PriceDeciles returns the decile boundaries of country-level medians
// (the Figure 18 color scale).
func PriceDeciles(plans []Plan, provider string) []float64 {
	medians := MedianPerGBByCountry(plans, provider)
	var v []float64
	for _, m := range medians {
		v = append(v, m)
	}
	sort.Float64s(v)
	out := make([]float64, 0, 9)
	for d := 1; d <= 9; d++ {
		out = append(out, stats.Quantile(v, float64(d)/10))
	}
	return out
}

// BestOffer returns the cheapest per-GB plan for a country with at
// least minGB of data from the given provider ("" = any provider).
func BestOffer(plans []Plan, country string, minGB float64, provider string) (Plan, bool) {
	var best Plan
	found := false
	for _, p := range plans {
		if p.Country != country || p.SizeGB < minGB {
			continue
		}
		if provider != "" && p.Provider != provider {
			continue
		}
		if !found || p.PerGB() < best.PerGB() {
			best, found = p, true
		}
	}
	return best, found
}

// TripStop is one country visit with its expected data need.
type TripStop struct {
	Country string
	GB      float64
}

// TripCost compares the total cost of covering an itinerary with one
// provider's eSIM plans versus buying a local physical SIM at each
// stop (where a local offer is known). It mirrors the paper's Figure 17
// point: local SIMs win per GB, eSIMs often win on total cost.
type TripCost struct {
	ESIMTotalUSD  float64
	LocalTotalUSD float64
	// Covered counts stops the eSIM provider could serve; stops without
	// a suitable plan are skipped in ESIMTotalUSD (and listed).
	Covered   int
	Uncovered []string
	// LocalKnown counts stops with a volunteer-collected local offer.
	LocalKnown int
}

// PlanTrip computes the comparison for an itinerary.
func PlanTrip(plans []Plan, provider string, stops []TripStop) TripCost {
	localByCountry := map[string]LocalSIMOffer{}
	for _, o := range LocalSIMOffers {
		localByCountry[o.Country] = o
	}
	var tc TripCost
	for _, stop := range stops {
		if offer, ok := BestOffer(plans, stop.Country, stop.GB, provider); ok {
			tc.ESIMTotalUSD += offer.PriceUSD
			tc.Covered++
		} else {
			tc.Uncovered = append(tc.Uncovered, stop.Country)
		}
		if local, ok := localByCountry[stop.Country]; ok {
			tc.LocalTotalUSD += local.TotalUSD()
			tc.LocalKnown++
		}
	}
	return tc
}
