// Package esimdb reproduces the crawler-based campaign: a synthetic
// eSIM marketplace aggregator (the EsimDB substitute) with 54 providers,
// per-country plan catalogs, and a pricing model calibrated to the
// paper's Section 6 findings; plus a real HTTP API and crawler client so
// the data-collection code path (pagination, vantage headers, daily
// retrievals) is genuinely exercised.
//
// Calibration anchors (Figure 16–19):
//   - continent-level median $/GB: Europe ≈ 4.5, North America ≈ 9 (driven
//     by Central America), Asia 5.5 rising to 6.5 in April, Africa rising;
//   - provider medians: Airhub ≈ 2.3, MobiMatter ≈ 60% below Airalo,
//     Airalo ≈ 7.9 worldwide, Keepgo ≈ 16.2;
//   - no price discrimination across crawl vantage points;
//   - plan prices grow non-linearly with size, and same-b-MNO plans still
//     differ across countries (Georgia > Spain for Play-based eSIMs).
package esimdb

import (
	"fmt"
	"math"
	"sort"
	"time"

	"roamsim/internal/geo"
	"roamsim/internal/rng"
)

// Plan is one eSIM offer as the aggregator lists it.
type Plan struct {
	Provider string  `json:"provider"`
	Country  string  `json:"country"` // ISO3
	SizeGB   float64 `json:"size_gb"`
	Days     int     `json:"days"`
	PriceUSD float64 `json:"price_usd"`
	// BMNOName is the issuing operator when known (Airalo plans expose it
	// via the APN settings; most competitors don't).
	BMNOName string `json:"b_mno,omitempty"`
}

// PerGB returns the plan's cost per gigabyte.
func (p Plan) PerGB() float64 {
	if p.SizeGB == 0 {
		return 0
	}
	return p.PriceUSD / p.SizeGB
}

// ProviderSpec configures one marketplace provider.
type ProviderSpec struct {
	Name string
	// PriceFactor scales the country base price (1.0 = market median).
	PriceFactor float64
	// Coverage is the fraction of countries the provider serves.
	Coverage float64
	// PlansPerCountry is the catalog depth.
	PlansPerCountry int
	// SizeExponent shapes price growth with plan size: price =
	// unit·size^SizeExponent. Values near 1 are linear; Airalo's
	// catalogs show super-linear steps in some countries.
	SizeExponent float64
}

// Campaign period of the paper's crawler.
var (
	CampaignStart = time.Date(2024, 2, 14, 0, 0, 0, 0, time.UTC)
	CampaignEnd   = time.Date(2024, 5, 31, 0, 0, 0, 0, time.UTC)
	// SnapshotDate is the reference snapshot (Figure 17/18: 2024-05-01).
	SnapshotDate = time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
)

// headlineProviders are the providers the paper compares, with factors
// chosen so their median $/GB land near the reported values given the
// worldwide median base of ≈ 7.9.
var headlineProviders = []ProviderSpec{
	{Name: "Airalo", PriceFactor: 1.00, Coverage: 0.95, PlansPerCountry: 9, SizeExponent: 1.08},
	{Name: "Airhub", PriceFactor: 0.29, Coverage: 0.80, PlansPerCountry: 5, SizeExponent: 0.95},
	{Name: "MobiMatter", PriceFactor: 0.40, Coverage: 0.88, PlansPerCountry: 14, SizeExponent: 0.92},
	{Name: "Keepgo", PriceFactor: 2.05, Coverage: 0.78, PlansPerCountry: 4, SizeExponent: 0.90},
	{Name: "Nomad", PriceFactor: 0.85, Coverage: 0.70, PlansPerCountry: 6, SizeExponent: 1.0},
}

// continentBase is the continent-level base $/GB (median across its
// countries) at campaign start.
var continentBase = map[geo.Continent]float64{
	geo.Europe:       4.5,
	geo.Asia:         5.5,
	geo.Africa:       7.0,
	geo.NorthAmerica: 9.0,
	geo.SouthAmerica: 8.0,
	geo.Oceania:      7.5,
}

// centralAmerica lists the consistently expensive countries of Fig 18.
var centralAmerica = map[string]bool{
	"CRI": true, "PAN": true, "GTM": true, "HND": true,
	"NIC": true, "SLV": true, "BLZ": true,
}

// planSizesGB is the offered plan ladder.
var planSizesGB = []float64{0.5, 1, 2, 3, 5, 10, 20}

// Marketplace is the synthetic aggregator.
type Marketplace struct {
	providers []ProviderSpec
	countries []geo.Country
	// countryFactor is a per-country price multiplier (stable over time).
	countryFactor map[string]float64
	// providerCountry marks which providers serve which countries.
	providerCountry map[string]map[string]bool
	seed            int64
}

// New builds a marketplace with the 5 headline providers plus enough
// generic providers to reach total (54 in the paper).
func New(seed int64, totalProviders int) *Marketplace {
	src := rng.New(seed)
	m := &Marketplace{
		countries:       geo.Countries(),
		countryFactor:   map[string]float64{},
		providerCountry: map[string]map[string]bool{},
		seed:            seed,
	}
	m.providers = append(m.providers, headlineProviders...)
	for i := len(m.providers); i < totalProviders; i++ {
		m.providers = append(m.providers, ProviderSpec{
			Name:            fmt.Sprintf("esim-provider-%02d", i),
			PriceFactor:     src.Uniform(0.5, 1.8),
			Coverage:        src.Uniform(0.2, 0.9),
			PlansPerCountry: src.IntBetween(3, 10),
			SizeExponent:    src.Uniform(0.85, 1.1),
		})
	}
	for _, c := range m.countries {
		f := src.LogNormalMeanMedian(1.0, 0.25)
		if centralAmerica[c.ISO3] {
			f *= src.Uniform(1.5, 2.1) // the red cluster of Figure 18
		}
		m.countryFactor[c.ISO3] = f
	}
	for _, p := range m.providers {
		served := map[string]bool{}
		for _, c := range m.countries {
			if src.Bool(p.Coverage) {
				served[c.ISO3] = true
			}
		}
		m.providerCountry[p.Name] = served
	}
	return m
}

// Providers returns provider names sorted alphabetically.
func (m *Marketplace) Providers() []string {
	out := make([]string, len(m.providers))
	for i, p := range m.providers {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// timeDrift returns the multiplicative price drift of a continent at the
// given date (the Figure 16 dynamics: Asia and Africa rise ~Apr 1).
func timeDrift(ct geo.Continent, date time.Time) float64 {
	after := date.After(time.Date(2024, 3, 28, 0, 0, 0, 0, time.UTC))
	switch ct {
	case geo.Asia:
		if after {
			return 6.5 / 5.5
		}
	case geo.Africa:
		if after {
			return 1.25
		}
	}
	return 1.0
}

// Offers generates the full catalog visible on the given date. The
// catalog is a deterministic function of (seed, date): crawling the same
// day twice yields identical offers, and vantage location never enters.
func (m *Marketplace) Offers(date time.Time) []Plan {
	day := date.UTC().Format("2006-01-02")
	var out []Plan
	for _, p := range m.providers {
		src := rng.New(m.seed).Fork("offers/" + p.Name + "/" + day)
		for _, c := range m.countries {
			if !m.providerCountry[p.Name][c.ISO3] {
				continue
			}
			base := continentBase[c.Continent] * m.countryFactor[c.ISO3] * timeDrift(c.Continent, date)
			unit := base * p.PriceFactor * src.Uniform(0.9, 1.1)
			for i := 0; i < p.PlansPerCountry; i++ {
				size := planSizesGB[i%len(planSizesGB)]
				price := unit * pow(size, p.SizeExponent)
				out = append(out, Plan{
					Provider: p.Name,
					Country:  c.ISO3,
					SizeGB:   size,
					Days:     validityFor(size),
					PriceUSD: round2(price),
					BMNOName: m.bMNOFor(p.Name, c.ISO3),
				})
			}
		}
	}
	return out
}

// bMNOFor exposes the issuing operator for Airalo plans, matching the
// paper's Table 2 grouping (used by Figure 19).
func (m *Marketplace) bMNOFor(provider, iso3 string) string {
	if provider != "Airalo" {
		return ""
	}
	switch iso3 {
	case "ARE", "JPN", "PAK", "MYS", "CHN":
		return "Singtel"
	case "GBR", "DEU", "GEO", "ESP":
		return "Play"
	case "QAT", "SAU", "TUR", "EGY":
		return "Telna Mobile"
	case "MDA", "KEN", "FIN", "AZE":
		return "Telecom Italia"
	case "ITA", "USA":
		return "Orange"
	case "FRA", "UZB":
		return "Polkomtel"
	case "KOR":
		return "LG U+"
	case "MDV":
		return "Ooredoo Maldives"
	case "THA":
		return "dtac"
	default:
		return ""
	}
}

func validityFor(sizeGB float64) int {
	switch {
	case sizeGB <= 1:
		return 7
	case sizeGB <= 5:
		return 30
	default:
		return 30
	}
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}

// LocalSIMOffer is a physical-SIM price point collected by volunteers
// (the dashed line of Figure 17).
type LocalSIMOffer struct {
	Country   string
	PlanGB    float64
	PriceUSD  float64
	SIMFeeUSD float64 // cost of the physical card itself, if any
	Note      string
}

// LocalSIMOffers are the volunteer-collected local offers; values follow
// the examples the paper cites (Spain 40 GB for $22.59; UAE SIM fee
// $15.72) with plausible entries for the remaining device-campaign
// countries.
var LocalSIMOffers = []LocalSIMOffer{
	{Country: "ESP", PlanGB: 40, PriceUSD: 22.59, SIMFeeUSD: 0, Note: "prepaid bundle"},
	{Country: "ARE", PlanGB: 6, PriceUSD: 16.30, SIMFeeUSD: 15.72, Note: "SIM fee applies"},
	{Country: "PAK", PlanGB: 25, PriceUSD: 4.10, SIMFeeUSD: 0.70, Note: "local prepaid"},
	{Country: "DEU", PlanGB: 10, PriceUSD: 11.00, SIMFeeUSD: 0, Note: "discount brand"},
	{Country: "GEO", PlanGB: 15, PriceUSD: 6.50, SIMFeeUSD: 1.00, Note: "local prepaid"},
	{Country: "THA", PlanGB: 15, PriceUSD: 8.40, SIMFeeUSD: 1.50, Note: "tourist SIM"},
	{Country: "KOR", PlanGB: 10, PriceUSD: 27.00, SIMFeeUSD: 0, Note: "tourist SIM"},
	{Country: "QAT", PlanGB: 12, PriceUSD: 13.50, SIMFeeUSD: 2.70, Note: "local prepaid"},
	{Country: "SAU", PlanGB: 20, PriceUSD: 18.70, SIMFeeUSD: 2.70, Note: "local prepaid"},
	{Country: "GBR", PlanGB: 20, PriceUSD: 12.60, SIMFeeUSD: 0, Note: "prepaid bundle"},
}

// PerGB returns the effective cost per GB including the SIM fee.
func (o LocalSIMOffer) PerGB() float64 {
	if o.PlanGB == 0 {
		return 0
	}
	return (o.PriceUSD + o.SIMFeeUSD) / o.PlanGB
}

// TotalUSD returns the up-front cost of acquiring the offer.
func (o LocalSIMOffer) TotalUSD() float64 { return o.PriceUSD + o.SIMFeeUSD }

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
