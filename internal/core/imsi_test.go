package core

import (
	"fmt"
	"testing"

	"roamsim/internal/mno"
	"roamsim/internal/rng"
)

func TestMineIMSIRangesSimple(t *testing.T) {
	// 10 devices all inside Play's leased block 26006731x.
	var seeded []mno.IMSI
	for i := 0; i < 10; i++ {
		seeded = append(seeded, mno.IMSI(fmt.Sprintf("26006731%07d", i*137)))
	}
	rs, err := MineIMSIRanges(seeded, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Coverage(seeded) != 1 {
		t.Fatal("mining must cover all seeded IMSIs")
	}
	// All seeded share 26006731 then fan out: the miner should
	// generalize at or below 9 digits, not emit one range per device.
	if len(rs.Ranges) > 3 {
		t.Errorf("expected generalized ranges, got %d: %v", len(rs.Ranges), rs.Ranges)
	}
	for _, r := range rs.Ranges {
		if len(r.Prefix) < 7 || len(r.Prefix) > 9 {
			t.Errorf("range %q outside [7,9] digits", r.Prefix)
		}
		if r.Prefix[:5] != "26006" {
			t.Errorf("range %q escaped the PLMN", r.Prefix)
		}
	}
}

func TestMineIMSIRangesTwoBlocks(t *testing.T) {
	// Devices split between two distant leased blocks.
	var seeded []mno.IMSI
	for i := 0; i < 5; i++ {
		seeded = append(seeded, mno.IMSI(fmt.Sprintf("26006731%07d", i*1111)))
		seeded = append(seeded, mno.IMSI(fmt.Sprintf("26006890%07d", i*1111)))
	}
	rs, err := MineIMSIRanges(seeded, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Coverage(seeded) != 1 {
		t.Fatal("coverage must be 1")
	}
	// The two blocks must not be merged into one covering range wider
	// than the PLMN+2 floor that would sweep in ordinary Play customers.
	if rs.Match(mno.IMSI("260060000000001")) {
		t.Error("a retail Play IMSI far from both blocks must not match")
	}
	if !rs.Match(mno.IMSI("260067310009999")) || !rs.Match(mno.IMSI("260068900001234")) {
		t.Error("IMSIs inside the leased blocks must match")
	}
}

func TestMineIMSIRangesValidation(t *testing.T) {
	if _, err := MineIMSIRanges(nil, MineOptions{}); err == nil {
		t.Error("empty seed should error")
	}
	if _, err := MineIMSIRanges([]mno.IMSI{"123"}, MineOptions{}); err == nil {
		t.Error("invalid IMSI should error")
	}
	mixed := []mno.IMSI{"260067310000001", "310260731000001"}
	if _, err := MineIMSIRanges(mixed, MineOptions{}); err == nil {
		t.Error("cross-PLMN seed should error")
	}
	one := []mno.IMSI{"260067310000001"}
	if _, err := MineIMSIRanges(one, MineOptions{MinPrefixLen: 3}); err == nil {
		t.Error("MinPrefixLen < 5 should error")
	}
	if _, err := MineIMSIRanges(one, MineOptions{MinPrefixLen: 9, MaxPrefixLen: 7}); err == nil {
		t.Error("inverted bounds should error")
	}
}

func TestPartitionRoamers(t *testing.T) {
	play := &mno.Operator{Name: "Play", PLMN: mno.PLMN{MCC: "260", MNC: "06"}, Country: "POL"}
	airaloRange := play.MustLeaseRange("731", "airalo")

	// Seed 10 devices from the leased range, as the paper did in the UK.
	var seeded []mno.IMSI
	for i := 0; i < 10; i++ {
		seeded = append(seeded, play.NewIMSI(airaloRange))
	}
	rs, err := MineIMSIRanges(seeded, MineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Observed population at the v-MNO: Airalo users + ordinary Play
	// roamers (outside the leased block).
	src := rng.New(1)
	var observed []mno.IMSI
	wantAiralo := 0
	for i := 0; i < 2000; i++ {
		if src.Bool(0.4) {
			observed = append(observed, play.NewIMSI(airaloRange))
			wantAiralo++
		} else {
			suffix := src.IntBetween(0, 999999999)
			observed = append(observed, mno.IMSI(fmt.Sprintf("260060%09d", suffix)))
		}
	}
	matched, unmatched := rs.Partition(observed)
	if len(matched)+len(unmatched) != len(observed) {
		t.Fatal("partition lost IMSIs")
	}
	// Every true Airalo user must match (ranges cover the lease)...
	if len(matched) < wantAiralo {
		t.Errorf("matched %d < true %d — pattern match missed aggregator users", len(matched), wantAiralo)
	}
	// ...and false positives are bounded: the mined prefixes are at most
	// 2 digits wider than the true lease.
	if len(matched) > wantAiralo+wantAiralo/5 {
		t.Errorf("matched %d >> true %d — over-generalized", len(matched), wantAiralo)
	}
}

func TestMineRespectsMaxDepth(t *testing.T) {
	seeded := []mno.IMSI{"260067310000001"}
	rs, err := MineIMSIRanges(seeded, MineOptions{MinPrefixLen: 7, MaxPrefixLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Ranges) != 1 || rs.Ranges[0].Prefix != "26006731" {
		t.Errorf("single seed should yield its 8-digit prefix, got %v", rs.Ranges)
	}
}
