package core

import (
	"fmt"

	"roamsim/internal/geo"
	"roamsim/internal/ipreg"
	"roamsim/internal/netsim"
)

// PathAnalysis is the demarcated view of one traceroute: the private
// segment (GTP tunnel and provider core, before breakout), the public
// segment (after breakout), and the quantities the paper derives from
// them.
type PathAnalysis struct {
	// PrivateHops is the count of hops before the first public IP.
	PrivateHops int
	// PublicHops is the count of hops from the first public IP onward.
	PublicHops int
	// PGW is the WHOIS record of the first public hop, interpreted as
	// the PGW/CG-NAT of the breakout provider.
	PGW ipreg.Info
	// PGWHopRTTms is the best RTT at the PGW hop, the Figure 8/9 metric.
	PGWHopRTTms float64
	// FinalRTTms is the best RTT at the last responding hop.
	FinalRTTms float64
	// PrivateFraction is PGWHopRTTms / FinalRTTms — the Figure 12 metric.
	PrivateFraction float64
	// UniqueASNs is the count of distinct ASNs observed across all
	// responding public hops (Figure 6).
	UniqueASNs int
	// ASNs lists the distinct ASNs in path order.
	ASNs []ipreg.ASN
	// DestReached reports whether the traceroute reached a responding
	// final hop.
	DestReached bool
}

// ErrNoPublicHop is returned when the traceroute never leaves private
// address space (no breakout visible).
var ErrNoPublicHop = fmt.Errorf("core: no public hop in traceroute")

// Demarcate splits a traceroute at the first public IP address and
// derives the paper's per-traceroute metrics. Hops that did not respond
// are skipped for RTT purposes but still counted for path lengths by
// position (exactly how mtr output is read).
func Demarcate(tr netsim.TracerouteResult, reg *ipreg.Registry) (PathAnalysis, error) {
	pa := PathAnalysis{DestReached: tr.DestReached}
	firstPublic := -1
	for i, hop := range tr.Hops {
		if !hop.Responded {
			continue
		}
		if !hop.Addr.IsPrivate() {
			firstPublic = i
			break
		}
	}
	if firstPublic < 0 {
		return pa, ErrNoPublicHop
	}
	pa.PrivateHops = firstPublic
	pa.PublicHops = len(tr.Hops) - firstPublic

	info, ok := reg.Lookup(tr.Hops[firstPublic].Addr)
	if !ok {
		return pa, fmt.Errorf("core: first public hop %s not in registry", tr.Hops[firstPublic].Addr)
	}
	pa.PGW = info
	pa.PGWHopRTTms = tr.Hops[firstPublic].BestRTTms

	seen := map[ipreg.ASN]bool{}
	for _, hop := range tr.Hops[firstPublic:] {
		if !hop.Responded {
			continue
		}
		pa.FinalRTTms = hop.BestRTTms
		if hi, ok := reg.Lookup(hop.Addr); ok && !seen[hi.AS.Number] {
			seen[hi.AS.Number] = true
			pa.ASNs = append(pa.ASNs, hi.AS.Number)
		}
	}
	pa.UniqueASNs = len(pa.ASNs)
	if pa.FinalRTTms > 0 {
		pa.PrivateFraction = pa.PGWHopRTTms / pa.FinalRTTms
		if pa.PrivateFraction > 1 {
			// Jitter can make an intermediate hop beat the final hop;
			// clamp as the paper's percentage plots implicitly do.
			pa.PrivateFraction = 1
		}
	}
	return pa, nil
}

// PGWDistanceKm returns the great-circle distance between the inferred
// PGW and a reference point (the user location for the "farther than the
// b-MNO country" analysis).
func (pa PathAnalysis) PGWDistanceKm(from geo.Point) float64 {
	return geo.DistanceKm(from, pa.PGW.Loc)
}

// VerifyPGWConsistency cross-checks the demarcation against the session's
// separately observed public IP (the Ookla-speedtest validation step of
// Section 4.3): both must be announced by the same AS.
func (pa PathAnalysis) VerifyPGWConsistency(sessionPublicIP ipreg.Info) error {
	if pa.PGW.AS.Number != sessionPublicIP.AS.Number {
		return fmt.Errorf("core: PGW AS %s does not match session public IP AS %s — possible misclassification",
			pa.PGW.AS.Number, sessionPublicIP.AS.Number)
	}
	return nil
}
