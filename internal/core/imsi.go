package core

import (
	"fmt"
	"sort"

	"roamsim/internal/mno"
)

// MineOptions tune IMSI-range mining.
type MineOptions struct {
	// MinPrefixLen is the shortest prefix the miner may generalize to
	// (default 7: PLMN plus two digits — never the whole operator).
	MinPrefixLen int
	// MaxPrefixLen is the deepest prefix emitted (default 9). Deeper
	// prefixes would overfit to the seeded devices.
	MaxPrefixLen int
	// MergeThreshold is the number of distinct child digits at which the
	// miner generalizes to the parent prefix (default 3): seeing devices
	// spread across ≥3 sub-blocks is evidence the whole parent block is
	// leased.
	MergeThreshold int
}

func (o MineOptions) withDefaults() MineOptions {
	if o.MinPrefixLen == 0 {
		o.MinPrefixLen = 7
	}
	if o.MaxPrefixLen == 0 {
		o.MaxPrefixLen = 9
	}
	if o.MergeThreshold == 0 {
		o.MergeThreshold = 3
	}
	return o
}

// RangeSet is a set of mined IMSI ranges with fast matching.
type RangeSet struct {
	Ranges []mno.IMSIRange
}

// Match reports whether the IMSI falls in any mined range.
func (rs RangeSet) Match(i mno.IMSI) bool {
	for _, r := range rs.Ranges {
		if r.Contains(i) {
			return true
		}
	}
	return false
}

// trieNode is a digit trie over IMSIs.
type trieNode struct {
	children map[byte]*trieNode
	count    int
}

func newTrieNode() *trieNode {
	return &trieNode{children: make(map[byte]*trieNode)}
}

// MineIMSIRanges reproduces the Section 4.2 pattern-matching analysis:
// given the IMSIs observed for devices known (by IMEI) to run the
// aggregator's eSIMs, infer the prefix ranges the b-MNO leases to the
// aggregator.
//
// All seeded IMSIs must be valid and share a PLMN prefix of at least 5
// digits (they are, by construction, issued by one b-MNO).
func MineIMSIRanges(seeded []mno.IMSI, opts MineOptions) (RangeSet, error) {
	opts = opts.withDefaults()
	if len(seeded) == 0 {
		return RangeSet{}, fmt.Errorf("core: no seeded IMSIs")
	}
	if opts.MinPrefixLen < 5 || opts.MaxPrefixLen < opts.MinPrefixLen || opts.MaxPrefixLen >= 15 {
		return RangeSet{}, fmt.Errorf("core: bad prefix bounds [%d, %d]", opts.MinPrefixLen, opts.MaxPrefixLen)
	}
	for _, i := range seeded {
		if !i.Valid() {
			return RangeSet{}, fmt.Errorf("core: invalid seeded IMSI %q", i)
		}
		if string(i)[:5] != string(seeded[0])[:5] {
			return RangeSet{}, fmt.Errorf("core: seeded IMSIs span multiple PLMNs (%q vs %q)", i, seeded[0])
		}
	}

	root := newTrieNode()
	for _, imsi := range seeded {
		node := root
		node.count++
		for d := 0; d < opts.MaxPrefixLen; d++ {
			c := string(imsi)[d]
			child, ok := node.children[c]
			if !ok {
				child = newTrieNode()
				node.children[c] = child
			}
			child.count++
			node = child
		}
	}

	var prefixes []string
	var walk func(n *trieNode, prefix string)
	walk = func(n *trieNode, prefix string) {
		if len(prefix) == opts.MaxPrefixLen {
			prefixes = append(prefixes, prefix)
			return
		}
		// Generalize when the devices fan out across many sub-blocks.
		if len(prefix) >= opts.MinPrefixLen && len(n.children) >= opts.MergeThreshold {
			prefixes = append(prefixes, prefix)
			return
		}
		keys := make([]byte, 0, len(n.children))
		for c := range n.children {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, c := range keys {
			walk(n.children[c], prefix+string(c))
		}
	}
	walk(root, "")

	rs := RangeSet{}
	for _, p := range prefixes {
		rs.Ranges = append(rs.Ranges, mno.IMSIRange{Prefix: p, Label: "mined"})
	}
	return rs, nil
}

// Coverage verifies every seeded IMSI matches the mined set; mining must
// never lose a known device.
func (rs RangeSet) Coverage(seeded []mno.IMSI) float64 {
	if len(seeded) == 0 {
		return 0
	}
	hit := 0
	for _, i := range seeded {
		if rs.Match(i) {
			hit++
		}
	}
	return float64(hit) / float64(len(seeded))
}

// Partition splits an observed IMSI population into matched (inferred
// aggregator users) and unmatched (other inbound roamers of the same
// b-MNO), the Figure 5 grouping.
func (rs RangeSet) Partition(observed []mno.IMSI) (matched, unmatched []mno.IMSI) {
	for _, i := range observed {
		if rs.Match(i) {
			matched = append(matched, i)
		} else {
			unmatched = append(unmatched, i)
		}
	}
	return matched, unmatched
}
