package core

import (
	"testing"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/netsim"
)

func testWorld() (*ipreg.Registry, *mno.Operator, *mno.Operator, *mno.Operator) {
	reg := ipreg.NewRegistry()
	reg.RegisterAS(ipreg.AS{Number: 45143, Org: "Singtel", Country: "SGP", Kind: ipreg.KindMNO})
	reg.RegisterAS(ipreg.AS{Number: 5384, Org: "Etisalat", Country: "ARE", Kind: ipreg.KindMNO})
	reg.RegisterAS(ipreg.AS{Number: 54825, Org: "Packet Host", Country: "USA", Kind: ipreg.KindIPX})
	reg.RegisterAS(ipreg.AS{Number: 15169, Org: "Google", Country: "USA", Kind: ipreg.KindContent})
	sgp, ams, dxb, ash := geo.MustCity("Singapore"), geo.MustCity("Amsterdam"), geo.MustCity("Dubai"), geo.MustCity("Ashburn")
	reg.MustRegisterPrefix(ipaddr.MustParsePrefix("202.166.126.0/24"), 45143, sgp.Name, "SGP", sgp.Loc)
	reg.MustRegisterPrefix(ipaddr.MustParsePrefix("147.75.32.0/20"), 54825, ams.Name, "NLD", ams.Loc)
	reg.MustRegisterPrefix(ipaddr.MustParsePrefix("94.200.0.0/16"), 5384, dxb.Name, "ARE", dxb.Loc)
	reg.MustRegisterPrefix(ipaddr.MustParsePrefix("142.250.0.0/16"), 15169, ash.Name, "USA", ash.Loc)

	singtel := &mno.Operator{Name: "Singtel", PLMN: mno.PLMN{MCC: "525", MNC: "01"}, Country: "SGP", ASN: 45143}
	etisalat := &mno.Operator{Name: "Etisalat", PLMN: mno.PLMN{MCC: "424", MNC: "02"}, Country: "ARE", ASN: 5384}
	dtac := &mno.Operator{Name: "dtac", PLMN: mno.PLMN{MCC: "520", MNC: "05"}, Country: "THA", ASN: 9587}
	return reg, singtel, etisalat, dtac
}

func TestClassifyHR(t *testing.T) {
	reg, singtel, etisalat, _ := testWorld()
	c := &Classifier{Reg: reg}
	cl, err := c.Classify(ipaddr.MustParse("202.166.126.9"), singtel, etisalat)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Arch != ipx.HR {
		t.Errorf("arch = %s, want HR", cl.Arch)
	}
	if cl.PGWCountry != "SGP" || cl.PGWAS.Org != "Singtel" {
		t.Errorf("PGW = %s/%s", cl.PGWAS.Org, cl.PGWCountry)
	}
}

func TestClassifyIHBO(t *testing.T) {
	reg, singtel, etisalat, _ := testWorld()
	_ = singtel
	c := &Classifier{Reg: reg}
	play := &mno.Operator{Name: "Play", PLMN: mno.PLMN{MCC: "260", MNC: "06"}, Country: "POL", ASN: 12912}
	cl, err := c.Classify(ipaddr.MustParse("147.75.33.1"), play, etisalat)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Arch != ipx.IHBO {
		t.Errorf("arch = %s, want IHBO", cl.Arch)
	}
	if cl.PGWCity != "Amsterdam" {
		t.Errorf("PGW city = %s", cl.PGWCity)
	}
}

func TestClassifyLBO(t *testing.T) {
	reg, singtel, etisalat, _ := testWorld()
	c := &Classifier{Reg: reg}
	cl, err := c.Classify(ipaddr.MustParse("94.200.1.1"), singtel, etisalat)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Arch != ipx.LBO {
		t.Errorf("arch = %s, want LBO", cl.Arch)
	}
}

func TestClassifyNative(t *testing.T) {
	reg, _, _, dtac := testWorld()
	c := &Classifier{Reg: reg}
	// Same operator on both sides is native even from third-party space.
	reg.RegisterAS(ipreg.AS{Number: 9587, Org: "dtac", Country: "THA", Kind: ipreg.KindMNO})
	bkk := geo.MustCity("Bangkok")
	reg.MustRegisterPrefix(ipaddr.MustParsePrefix("1.46.0.0/16"), 9587, bkk.Name, "THA", bkk.Loc)
	cl, err := c.Classify(ipaddr.MustParse("1.46.3.3"), dtac, dtac)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Arch != ipx.Native {
		t.Errorf("arch = %s, want native", cl.Arch)
	}
}

func TestClassifyErrors(t *testing.T) {
	reg, singtel, etisalat, _ := testWorld()
	c := &Classifier{Reg: reg}
	if _, err := c.Classify(ipaddr.MustParse("203.0.113.1"), singtel, etisalat); err == nil {
		t.Error("unregistered IP should error")
	}
	if _, err := c.Classify(ipaddr.MustParse("202.166.126.1"), nil, etisalat); err == nil {
		t.Error("nil operator should error")
	}
	if _, err := c.ArchOf(ipaddr.MustParse("202.166.126.1"), singtel, etisalat); err != nil {
		t.Errorf("ArchOf failed: %v", err)
	}
}

// buildTrace fabricates an mtr-style result.
func buildTrace(entries []struct {
	addr      string
	responded bool
	rtt       float64
}) netsim.TracerouteResult {
	tr := netsim.TracerouteResult{}
	for i, e := range entries {
		tr.Hops = append(tr.Hops, netsim.HopRecord{
			TTL: i + 1, Responded: e.responded,
			Addr: ipaddr.MustParse(e.addr), BestRTTms: e.rtt,
		})
	}
	if n := len(tr.Hops); n > 0 {
		tr.DestReached = tr.Hops[n-1].Responded
	}
	return tr
}

func TestDemarcateHRTrace(t *testing.T) {
	reg, _, _, _ := testWorld()
	// UAE HR eSIM: 3 private hops, PGW in Singapore, then Google.
	tr := buildTrace([]struct {
		addr      string
		responded bool
		rtt       float64
	}{
		{"10.1.0.1", true, 20},
		{"10.1.0.2", true, 45},
		{"100.64.0.1", true, 160},
		{"202.166.126.4", true, 170}, // first public: Singtel PGW
		{"142.250.1.1", true, 176},   // Google edge
		{"142.250.1.9", true, 178},
	})
	pa, err := Demarcate(tr, reg)
	if err != nil {
		t.Fatal(err)
	}
	if pa.PrivateHops != 3 || pa.PublicHops != 3 {
		t.Errorf("split = %d/%d, want 3/3", pa.PrivateHops, pa.PublicHops)
	}
	if pa.PGW.AS.Number != 45143 || pa.PGW.Country != "SGP" {
		t.Errorf("PGW = %+v", pa.PGW.AS)
	}
	if pa.PGWHopRTTms != 170 || pa.FinalRTTms != 178 {
		t.Errorf("RTTs = %f/%f", pa.PGWHopRTTms, pa.FinalRTTms)
	}
	if pa.PrivateFraction < 0.94 || pa.PrivateFraction > 0.96 {
		t.Errorf("private fraction = %f, want ~0.955", pa.PrivateFraction)
	}
	if pa.UniqueASNs != 2 {
		t.Errorf("unique ASNs = %d, want 2 (Singtel + Google)", pa.UniqueASNs)
	}
	if !pa.DestReached {
		t.Error("destination reached flag lost")
	}
}

func TestDemarcateSilentCGNAT(t *testing.T) {
	reg, _, _, _ := testWorld()
	// German IHBO case: the CG-NAT never answers, so the first public
	// *responding* hop is already inside Google — one unique ASN.
	tr := buildTrace([]struct {
		addr      string
		responded bool
		rtt       float64
	}{
		{"10.2.0.1", true, 12},
		{"147.75.33.7", false, 0}, // silent CG-NAT (would be Packet Host)
		{"142.250.1.1", true, 48},
		{"142.250.1.9", true, 50},
	})
	pa, err := Demarcate(tr, reg)
	if err != nil {
		t.Fatal(err)
	}
	if pa.UniqueASNs != 1 {
		t.Errorf("unique ASNs = %d, want 1 (only the SP visible)", pa.UniqueASNs)
	}
	if pa.PGW.AS.Number != 15169 {
		t.Errorf("with a silent CG-NAT the first responding public hop is the SP, got %s", pa.PGW.AS.Number)
	}
}

func TestDemarcateNoPublicHop(t *testing.T) {
	reg, _, _, _ := testWorld()
	tr := buildTrace([]struct {
		addr      string
		responded bool
		rtt       float64
	}{
		{"10.0.0.1", true, 5},
		{"10.0.0.2", true, 9},
	})
	if _, err := Demarcate(tr, reg); err != ErrNoPublicHop {
		t.Errorf("want ErrNoPublicHop, got %v", err)
	}
}

func TestDemarcatePrivateFractionClamped(t *testing.T) {
	reg, _, _, _ := testWorld()
	tr := buildTrace([]struct {
		addr      string
		responded bool
		rtt       float64
	}{
		{"202.166.126.4", true, 120},
		{"142.250.1.1", true, 100}, // jitter: final hop beats PGW hop
	})
	pa, err := Demarcate(tr, reg)
	if err != nil {
		t.Fatal(err)
	}
	if pa.PrivateFraction != 1 {
		t.Errorf("fraction should clamp to 1, got %f", pa.PrivateFraction)
	}
	if pa.PrivateHops != 0 {
		t.Errorf("private hops = %d", pa.PrivateHops)
	}
}

func TestVerifyPGWConsistency(t *testing.T) {
	reg, _, _, _ := testWorld()
	tr := buildTrace([]struct {
		addr      string
		responded bool
		rtt       float64
	}{
		{"202.166.126.4", true, 150},
		{"142.250.1.1", true, 160},
	})
	pa, _ := Demarcate(tr, reg)
	sessionInfo, _ := reg.Lookup(ipaddr.MustParse("202.166.126.200"))
	if err := pa.VerifyPGWConsistency(sessionInfo); err != nil {
		t.Errorf("same-AS session IP should verify: %v", err)
	}
	otherInfo, _ := reg.Lookup(ipaddr.MustParse("147.75.32.1"))
	if err := pa.VerifyPGWConsistency(otherInfo); err == nil {
		t.Error("cross-AS mismatch must be flagged")
	}
}

func TestPGWDistance(t *testing.T) {
	reg, _, _, _ := testWorld()
	tr := buildTrace([]struct {
		addr      string
		responded bool
		rtt       float64
	}{{"202.166.126.4", true, 150}})
	pa, _ := Demarcate(tr, reg)
	d := pa.PGWDistanceKm(geo.MustCity("Dubai").Loc)
	if d < 5500 || d > 6200 {
		t.Errorf("Dubai -> Singapore PGW distance = %f", d)
	}
}
