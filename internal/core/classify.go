// Package core implements the paper's primary contribution: the
// tomography methodology that maps a thick MNA's hidden infrastructure
// from end-to-end measurements.
//
// Its three pillars, each validated in the paper:
//
//  1. Roaming-architecture classification (Section 3.1): match the ASN of
//     a session's public IP against the b-MNO (HR), the v-MNO (LBO), or a
//     third party (IHBO).
//  2. Traceroute demarcation (Section 4.3): the first public IP in a
//     traceroute marks the PGW/CG-NAT boundary; hops before it are the
//     private path (GTP tunnel + provider core), hops after it the public
//     path. PGW geolocation is the geolocation of that first public IP.
//  3. IMSI-range mining (Section 4.2): from IMSIs observed for seeded
//     devices in a v-MNO core, extract the prefix ranges the b-MNO leases
//     to the aggregator, then classify all inbound roamers.
package core

import (
	"fmt"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/ipx"
	"roamsim/internal/mno"
)

// Classification is the outcome of architecture classification for one
// session/eSIM.
type Classification struct {
	Arch ipx.Architecture
	// PGWAS is the AS announcing the session's public IP.
	PGWAS ipreg.AS
	// PGWCity/PGWCountry/PGWLoc geolocate the breakout.
	PGWCity    string
	PGWCountry string
	PGWLoc     geo.Point
}

// Classifier resolves public IPs against a registry and operator records.
type Classifier struct {
	Reg *ipreg.Registry
}

// Classify determines the roaming architecture of a session given its
// observed public IP and the session's issuer (b-MNO) and visited
// operator (v-MNO). When the two operators are the same the session is
// native regardless of addressing.
func (c *Classifier) Classify(publicIP ipaddr.Addr, bMNO, vMNO *mno.Operator) (Classification, error) {
	if bMNO == nil || vMNO == nil {
		return Classification{}, fmt.Errorf("core: nil operator")
	}
	info, ok := c.Reg.Lookup(publicIP)
	if !ok {
		return Classification{}, fmt.Errorf("core: public IP %s not announced by any AS", publicIP)
	}
	cl := Classification{
		PGWAS:      info.AS,
		PGWCity:    info.City,
		PGWCountry: info.Country,
		PGWLoc:     info.Loc,
	}
	switch {
	case bMNO.Name == vMNO.Name:
		cl.Arch = ipx.Native
	case info.AS.Number == bMNO.ASN:
		cl.Arch = ipx.HR
	case info.AS.Number == vMNO.ASN:
		cl.Arch = ipx.LBO
	default:
		cl.Arch = ipx.IHBO
	}
	return cl, nil
}

// ArchOf is a convenience wrapper returning only the architecture.
func (c *Classifier) ArchOf(publicIP ipaddr.Addr, bMNO, vMNO *mno.Operator) (ipx.Architecture, error) {
	cl, err := c.Classify(publicIP, bMNO, vMNO)
	if err != nil {
		return "", err
	}
	return cl.Arch, nil
}
