package core

import (
	"testing"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/netsim"
)

// fuzzRegistry covers the whole public IPv4 space with two halves plus
// a finer /24, so most fuzz-decoded public addresses resolve and the
// success path (not just the error paths) gets explored.
func fuzzRegistry() *ipreg.Registry {
	reg := ipreg.NewRegistry()
	reg.RegisterAS(ipreg.AS{Number: 100, Org: "FuzzLow", Country: "PAK"})
	reg.RegisterAS(ipreg.AS{Number: 200, Org: "FuzzHigh", Country: "DEU"})
	reg.RegisterAS(ipreg.AS{Number: 300, Org: "FuzzFine", Country: "QAT"})
	reg.MustRegisterPrefix(ipaddr.MustParsePrefix("0.0.0.0/1"), 100, "Karachi", "PAK", geo.Point{})
	reg.MustRegisterPrefix(ipaddr.MustParsePrefix("128.0.0.0/1"), 200, "Berlin", "DEU", geo.Point{})
	reg.MustRegisterPrefix(ipaddr.MustParsePrefix("65.66.67.0/24"), 300, "Doha", "QAT", geo.Point{})
	return reg
}

// decodeTraceroute turns fuzz bytes into a traceroute: byte 0 is the
// DestReached flag, then 6-byte hop records [flags, addr x4, rtt].
func decodeTraceroute(data []byte) (netsim.TracerouteResult, bool) {
	if len(data) < 1 {
		return netsim.TracerouteResult{}, false
	}
	tr := netsim.TracerouteResult{DestReached: data[0]&1 == 1}
	data = data[1:]
	for i := 0; i+6 <= len(data) && i/6 < 64; i += 6 {
		rec := data[i : i+6]
		addr := ipaddr.Addr(uint32(rec[1])<<24 | uint32(rec[2])<<16 | uint32(rec[3])<<8 | uint32(rec[4]))
		tr.Hops = append(tr.Hops, netsim.HopRecord{
			TTL:       i/6 + 1,
			Responded: rec[0]&1 == 1,
			Addr:      addr,
			BestRTTms: float64(rec[5]),
		})
	}
	return tr, true
}

// FuzzDemarcate hammers the PGW demarcation with arbitrary hop lists.
// Whatever the input, Demarcate must not panic, and on success its
// derived metrics must satisfy the paper's invariants: hop counts
// partition the path, PrivateFraction stays inside [0, 1] (RTTs decoded
// here are never negative), and the ASN list is duplicate-free with a
// matching count.
func FuzzDemarcate(f *testing.F) {
	// A canonical path: one private hop (10.0.0.1) then a registered
	// public hop (65.66.67.1), dest reached.
	f.Add([]byte("\x01\x01\x0a\x00\x00\x01\x05\x01\x41\x42\x43\x01\x09"))
	// All-private path (silent CG-NAT): must yield ErrNoPublicHop.
	f.Add([]byte("\x00\x01\x0a\x00\x00\x01\x05\x01\xc0\xa8\x01\x01\x07"))
	// Unresponsive middle hop, CG-NAT 100.64/10 space, zero RTTs.
	f.Add([]byte("\x01\x00\x64\x40\x00\x01\x00\x01\x08\x08\x08\x08\x00"))
	f.Add([]byte{})
	reg := fuzzRegistry()
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, ok := decodeTraceroute(data)
		if !ok {
			return
		}
		pa, err := Demarcate(tr, reg)
		if err != nil {
			return // no public hop, or unregistered first hop: both legal
		}
		if pa.PrivateHops < 0 || pa.PublicHops < 1 {
			t.Fatalf("hop counts: private=%d public=%d", pa.PrivateHops, pa.PublicHops)
		}
		if pa.PrivateHops+pa.PublicHops != len(tr.Hops) {
			t.Fatalf("hop counts %d+%d do not partition %d hops",
				pa.PrivateHops, pa.PublicHops, len(tr.Hops))
		}
		if pa.PrivateFraction < 0 || pa.PrivateFraction > 1 {
			t.Fatalf("PrivateFraction = %v outside [0,1]", pa.PrivateFraction)
		}
		if pa.UniqueASNs != len(pa.ASNs) {
			t.Fatalf("UniqueASNs = %d but len(ASNs) = %d", pa.UniqueASNs, len(pa.ASNs))
		}
		seen := map[ipreg.ASN]bool{}
		for _, asn := range pa.ASNs {
			if seen[asn] {
				t.Fatalf("duplicate ASN %v in %v", asn, pa.ASNs)
			}
			seen[asn] = true
		}
	})
}
