// Package report renders experiment outputs as aligned text tables and
// CSV, the formats the benchmark harness prints when regenerating the
// paper's tables and figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with quoting of
// commas and quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named (x, y) data series (a CDF or a timeline).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// SeriesCSV renders multiple series long-form: series,x,y.
func SeriesCSV(series []Series) string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Ms formats a millisecond value.
func Ms(v float64) string { return fmt.Sprintf("%.1f ms", v) }

// Mbps formats a bandwidth value.
func Mbps(v float64) string { return fmt.Sprintf("%.1f Mbps", v) }
