package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Demo",
		Headers: []string{"Country", "Median", "Note"},
	}
	t.AddRow("PAK", 389.0, "HR eSIM")
	t.AddRow("DEU", 47.5, "IHBO")
	return t
}

func TestTableString(t *testing.T) {
	s := sample().String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title + header + rule + 2 rows = 5? title(1)+header(1)+rule(1)+rows(2)=5
		if len(lines) != 5 {
			t.Fatalf("lines = %d:\n%s", len(lines), s)
		}
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Country") || !strings.Contains(lines[1], "Median") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule line = %q", lines[2])
	}
	// Column alignment: "Median" values start at the same offset.
	idx1 := strings.Index(lines[3], "389.00")
	idx2 := strings.Index(lines[4], "47.50")
	if idx1 != idx2 {
		t.Errorf("misaligned columns: %d vs %d\n%s", idx1, idx2, s)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := &Table{Headers: []string{"v"}}
	tab.AddRow(3.14159)
	tab.AddRow(42) // int keeps %v
	if tab.Rows[0][0] != "3.14" {
		t.Errorf("float cell = %q", tab.Rows[0][0])
	}
	if tab.Rows[1][0] != "42" {
		t.Errorf("int cell = %q", tab.Rows[1][0])
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow(`with,comma`, `with "quote"`)
	csv := tab.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"with,comma","with ""quote"""` {
		t.Errorf("quoted row = %q", lines[1])
	}
}

func TestCSVPlain(t *testing.T) {
	csv := sample().CSV()
	if !strings.Contains(csv, "PAK,389.00,HR eSIM\n") {
		t.Errorf("csv:\n%s", csv)
	}
	if strings.Contains(csv, "Demo") {
		t.Error("CSV should not include the title")
	}
}

func TestSeriesCSV(t *testing.T) {
	out := SeriesCSV([]Series{
		{Name: "PAK", X: []float64{1, 2}, Y: []float64{0.5, 1}},
		{Name: "ARE", X: []float64{3}, Y: []float64{1}},
	})
	want := "series,x,y\nPAK,1,0.5\nPAK,2,1\nARE,3,1\n"
	if out != want {
		t.Errorf("got:\n%s\nwant:\n%s", out, want)
	}
	// Ragged series truncate to the shorter side.
	out = SeriesCSV([]Series{{Name: "r", X: []float64{1, 2, 3}, Y: []float64{9}}})
	if strings.Count(out, "\n") != 2 {
		t.Errorf("ragged series output:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.145) != "14.5%" {
		t.Errorf("Pct = %s", Pct(0.145))
	}
	if Ms(389.04) != "389.0 ms" {
		t.Errorf("Ms = %s", Ms(389.04))
	}
	if Mbps(31.74) != "31.7 Mbps" {
		t.Errorf("Mbps = %s", Mbps(31.74))
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{Headers: []string{"only"}}
	s := tab.String()
	if !strings.Contains(s, "only") || !strings.Contains(s, "----") {
		t.Errorf("empty table render:\n%s", s)
	}
}
