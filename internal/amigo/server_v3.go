package amigo

import (
	"net/http"
	"sync"

	"roamsim/internal/wire"
)

// v3 binary routes. Same protocol semantics as v2 — ack-cursor leases,
// idempotency-keyed uploads, 429 + Retry-After backpressure — but the
// bodies are internal/wire frames instead of JSON, and the serving
// path is allocation-free in steady state: frame buffers, decoders and
// []Task/[]Result scratch all cycle through pools, and decoded result
// payloads are detached onto one owned slab per batch before they
// reach the spool.

var taskSlicePool = sync.Pool{
	New: func() any {
		s := make([]Task, 0, maxLeaseBatch)
		return &s
	},
}

var resultSlicePool = sync.Pool{
	New: func() any {
		s := make([]Result, 0, 256)
		return &s
	},
}

// readV3Frame negotiates the content type and reads one frame of the
// wanted message type into the pooled buffer, writing the HTTP error
// itself on failure. The returned payload aliases *buf.
func (s *Server) readV3Frame(w http.ResponseWriter, r *http.Request, want byte, buf *[]byte) ([]byte, bool) {
	if ct := r.Header.Get("Content-Type"); ct != wire.ContentType {
		http.Error(w, "expected "+wire.ContentType, http.StatusUnsupportedMediaType)
		return nil, false
	}
	h, payload, err := wire.ReadFrame(r.Body, (*buf)[:0])
	*buf = payload // keep any growth pooled
	if err != nil || h.Type != want {
		http.Error(w, "bad v3 frame", http.StatusBadRequest)
		return nil, false
	}
	return payload, true
}

// handleV3Lease is POST /v3/tasks/lease: a MsgLeaseRequest frame in, a
// MsgTasks frame out (204 when nothing is queued). Validation matches
// parseLeaseRequest: ME required, Max clamped to [1, maxLeaseBatch]
// (Ack cannot be negative on the wire — uvarints are unsigned).
func (s *Server) handleV3Lease(w http.ResponseWriter, r *http.Request) {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	payload, ok := s.readV3Frame(w, r, wire.MsgLeaseRequest, buf)
	if !ok {
		return
	}
	dec := wire.GetDecoder()
	req, err := dec.LeaseRequest(payload)
	wire.PutDecoder(dec)
	if err != nil || req.ME == "" {
		http.Error(w, "bad lease", http.StatusBadRequest)
		return
	}
	if req.Max < 1 {
		req.Max = 1
	}
	if req.Max > maxLeaseBatch {
		req.Max = maxLeaseBatch
	}
	tp := taskSlicePool.Get().(*[]Task)
	tasks, err := s.LeaseAckInto(req.ME, req.Max, req.Ack, (*tp)[:0])
	*tp = tasks
	defer taskSlicePool.Put(tp)
	if err != nil {
		http.Error(w, "unknown me", http.StatusNotFound)
		return
	}
	if len(tasks) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	*buf = wire.AppendTasks((*buf)[:0], tasks)
	s.writeFrame(w, *buf)
}

// handleV3Results is POST /v3/results: a MsgResults frame in, 204 out
// (429 + Retry-After when the spool is full, exactly like v2). The
// Idempotency-Key header works unchanged — keys are codec-independent,
// so a batch first attempted over v2 and retried over v3 still dedups.
func (s *Server) handleV3Results(w http.ResponseWriter, r *http.Request) {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	payload, ok := s.readV3Frame(w, r, wire.MsgResults, buf)
	if !ok {
		return
	}
	dec := wire.GetDecoder()
	rp := resultSlicePool.Get().(*[]Result)
	defer resultSlicePool.Put(rp)
	batch, err := dec.Results(payload, (*rp)[:0])
	*rp = batch
	wire.PutDecoder(dec)
	if err != nil {
		http.Error(w, "bad results", http.StatusBadRequest)
		return
	}
	// The decoded payloads alias the pooled frame buffer; move them onto
	// owned storage before they outlive this request (Submit copies the
	// Result structs, not the bytes their Payload fields point at).
	detachPayloads(batch)
	if err := s.SubmitKeyed(r.Header.Get("Idempotency-Key"), batch); err != nil {
		s.rejectBusy(w)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// detachPayloads copies every payload in the batch onto one freshly
// allocated slab — a single allocation per batch whose ownership
// transfers to the sink — so the frame buffer the payloads currently
// alias can be safely recycled.
func detachPayloads(batch []Result) {
	total := 0
	for i := range batch {
		total += len(batch[i].Payload)
	}
	if total == 0 {
		return
	}
	slab := make([]byte, 0, total)
	for i := range batch {
		if len(batch[i].Payload) == 0 {
			continue
		}
		slab = append(slab, batch[i].Payload...)
		batch[i].Payload = slab[len(slab)-len(batch[i].Payload):]
	}
}
