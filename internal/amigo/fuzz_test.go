package amigo

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLeaseDecode hammers the v2 lease request decoder with arbitrary
// bodies. It must never panic, and every request it accepts must come
// out normalized: a non-empty ME, Max clamped into [1, maxLeaseBatch],
// and a non-negative Ack — the guarantees LeaseAck relies on.
func FuzzLeaseDecode(f *testing.F) {
	f.Add([]byte(`{"me":"me-PAK","max":32,"ack":7}`))
	f.Add([]byte(`{"me":"m","max":0}`))
	f.Add([]byte(`{"me":"m","max":-3,"ack":-9}`))
	f.Add([]byte(`{"me":"m","max":999999}`))
	f.Add([]byte(`{"max":5}`))
	f.Add([]byte(`{"me":`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(strings.Repeat("9", 4096)))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := parseLeaseRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if req.ME == "" {
			t.Fatal("accepted request with empty ME")
		}
		if req.Max < 1 || req.Max > maxLeaseBatch {
			t.Fatalf("accepted Max = %d outside [1, %d]", req.Max, maxLeaseBatch)
		}
		if req.Ack < 0 {
			t.Fatalf("accepted negative Ack = %d", req.Ack)
		}
	})
}
