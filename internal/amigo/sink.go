package amigo

import "sync"

// Sink receives drained result batches from the server's bounded spool.
// Implementations must be safe for concurrent use; the server serializes
// Append calls itself, but a sink may also be read while appending (the
// MemorySink is, by admin pollers).
type Sink interface {
	Append(batch []Result)
}

// CursorSink is a Sink that can also be read back incrementally by
// cursor, which is what backs Server.Results / Server.ResultsSince and
// the paged GET /admin/results route. MemorySink and walsink.Sink both
// implement it; a write-only Sink (a forwarding pipe, say) may not, in
// which case the admin results route answers 501 instead of silently
// serving an empty page.
type CursorSink interface {
	Sink
	// Since returns results at positions >= cursor plus the cursor one
	// past the last returned result. Implementations MAY return a
	// bounded page rather than everything retained (a disk-backed sink
	// does); callers must loop until the cursor stops advancing.
	Since(cursor int) ([]Result, int)
	// Len is the cursor one past the newest retained result.
	Len() int
}

// MemorySink is the default sink: it retains every drained result in
// arrival order and supports incremental cursor reads, which is what
// backs Server.Results and Server.ResultsSince.
type MemorySink struct {
	mu      sync.RWMutex
	results []Result
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Append implements Sink.
func (m *MemorySink) Append(batch []Result) {
	m.mu.Lock()
	m.results = append(m.results, batch...)
	m.mu.Unlock()
}

// Len returns the number of retained results, which is also the cursor
// one past the newest result.
func (m *MemorySink) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.results)
}

// Since returns a copy of the results at positions >= cursor and the
// cursor one past the newest result. Out-of-range cursors are clamped.
func (m *MemorySink) Since(cursor int) ([]Result, int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(m.results) {
		cursor = len(m.results)
	}
	return append([]Result(nil), m.results[cursor:]...), len(m.results)
}
