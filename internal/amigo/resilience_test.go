package amigo

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestLeaseAckRedeliversUnacked pins the at-least-once lease contract:
// a batch stays outstanding until the next lease acknowledges it, so a
// lease response lost in flight is re-delivered rather than dropped.
func TestLeaseAckRedeliversUnacked(t *testing.T) {
	srv := NewServer(nil)
	srv.Register("me", "PAK")
	ids, err := srv.ScheduleBatch("me", []Task{
		{Kind: "dns", Config: "esim"}, {Kind: "dns", Config: "esim"}, {Kind: "dns", Config: "esim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := srv.LeaseAck("me", 2, 0)
	if err != nil || len(first) != 2 {
		t.Fatalf("first lease = %v, %v", first, err)
	}
	// The "client" never saw the response: leasing again without an ack
	// must re-deliver the same two tasks, not advance the queue.
	again, err := srv.LeaseAck("me", 2, 0)
	if err != nil || len(again) != 2 || again[0].ID != first[0].ID || again[1].ID != first[1].ID {
		t.Fatalf("unacked release = %v, %v; want redelivery of %v", again, err, first)
	}
	// Acking the batch retires it and hands out fresh work.
	next, err := srv.LeaseAck("me", 2, first[1].ID)
	if err != nil || len(next) != 1 || next[0].ID != ids[2] {
		t.Fatalf("acked lease = %v, %v; want [%d]", next, err, ids[2])
	}
	// Ack the tail; the queue is drained.
	empty, err := srv.LeaseAck("me", 2, next[0].ID)
	if err != nil || len(empty) != 0 {
		t.Fatalf("drained lease = %v, %v", empty, err)
	}
}

// TestRequeueRestoresFullSchedule pins the crash-replay contract: after
// any mix of acked, outstanding, and queued tasks, Requeue restores the
// ME's entire schedule with its ORIGINAL task IDs in original order, so
// a restarted ME replays from the top and idempotency keys line up.
func TestRequeueRestoresFullSchedule(t *testing.T) {
	srv := NewServer(nil)
	srv.Register("me", "PAK")
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, Task{Kind: "dns", Config: "esim"})
	}
	ids, err := srv.ScheduleBatch("me", tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1 leased and acked (done); batch 2 leased, never acked
	// (outstanding); the rest still queued. Then the ME "crashes".
	b1, _ := srv.LeaseAck("me", 2, 0)
	b2, _ := srv.LeaseAck("me", 2, b1[1].ID)
	if len(b1) != 2 || len(b2) != 2 {
		t.Fatalf("setup leases: %v / %v", b1, b2)
	}
	// 4 tasks had been delivered (2 acked + 2 outstanding); those are
	// what Requeue restores ahead of the 2 never-delivered ones.
	n, err := srv.Requeue("me")
	if err != nil || n != 4 {
		t.Fatalf("Requeue = %d, %v; want 4", n, err)
	}
	replay, err := srv.LeaseAck("me", 10, 0)
	if err != nil || len(replay) != 6 {
		t.Fatalf("replay lease = %v, %v", replay, err)
	}
	for i, task := range replay {
		if task.ID != ids[i] {
			t.Fatalf("replay[%d].ID = %d, want original %d", i, task.ID, ids[i])
		}
	}
	// Requeue for an unknown ME is an error; repeating it for a known
	// ME is harmless (the restart path may race a watchdog restart).
	if _, err := srv.Requeue("ghost"); err == nil {
		t.Error("Requeue(ghost) succeeded, want error")
	}
	if _, err := srv.Requeue("me"); err != nil {
		t.Errorf("second Requeue: %v", err)
	}
}

// TestSubmitKeyedDedup pins upload idempotency: a batch resent under
// the same Idempotency-Key is dropped, distinct keys both land, and an
// empty key keeps the legacy non-idempotent behavior.
func TestSubmitKeyedDedup(t *testing.T) {
	srv := NewServer(nil)
	srv.Register("me", "PAK")
	batch := []Result{{TaskID: 1, ME: "me", Kind: "dns", Config: "esim", OK: true}}
	for i := 0; i < 3; i++ { // original + two replays
		if err := srv.SubmitKeyed("k1", batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(srv.Results()); got != 1 {
		t.Fatalf("results after keyed replays = %d, want 1", got)
	}
	if err := srv.SubmitKeyed("k2", batch); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Results()); got != 2 {
		t.Fatalf("results after distinct key = %d, want 2", got)
	}
	srv.SubmitKeyed("", batch)
	srv.SubmitKeyed("", batch)
	if got := len(srv.Results()); got != 4 {
		t.Fatalf("results after unkeyed submits = %d, want 4", got)
	}
}

// TestUploadRetryAfterClamped pins satellite #1: the endpoint must not
// blindly trust a server-sent Retry-After. A hostile 3600s hint is
// clamped to the backoff policy's Max, and the upload errors out after
// MaxAttempts instead of spinning forever.
func TestUploadRetryAfterClamped(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer hs.Close()
	ep := &Endpoint{Name: "me", BaseURL: hs.URL, Client: hs.Client(),
		Retry: Backoff{MaxAttempts: 3, Base: time.Millisecond, Max: 5 * time.Millisecond}}
	start := time.Now()
	err := ep.Upload([]Result{{TaskID: 1, ME: "me", Kind: "dns", OK: true}})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Upload succeeded against an always-429 server")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("error = %v, want attempt-budget failure", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	// Two sleeps, each clamped to <= 5ms (plus jitterless slack): if the
	// 3600s hint had been honoured this would take hours.
	if elapsed > 2*time.Second {
		t.Errorf("upload took %v; Retry-After was not clamped", elapsed)
	}
}

// TestPostRetriesTransient5xx: control-plane posts ride the same
// backoff policy, so a server that fails twice and then recovers does
// not fail the campaign.
func TestPostRetriesTransient5xx(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer hs.Close()
	ep := &Endpoint{Name: "me", BaseURL: hs.URL, Client: hs.Client(),
		Retry: Backoff{MaxAttempts: 5, Base: time.Millisecond, Max: 5 * time.Millisecond}}
	if err := ep.post("/v1/register", map[string]string{"me": "me"}); err != nil {
		t.Fatalf("post after transient 5xx: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	// A permanent client error must NOT be retried.
	hits.Store(100)
	if err := ep.post("/v1/register", map[string]string{"me": "me"}); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
}

// TestBackoffDelayClamp unit-tests the schedule: exponential growth,
// the Max cap, and hint clamping.
func TestBackoffDelayClamp(t *testing.T) {
	b := Backoff{MaxAttempts: 10, Base: 25 * time.Millisecond, Max: 2 * time.Second}.withDefaults()
	cases := []struct {
		attempt int
		hint    time.Duration
		want    time.Duration
	}{
		{0, 0, 25 * time.Millisecond},
		{1, 0, 50 * time.Millisecond},
		{3, 0, 200 * time.Millisecond},
		{20, 0, 2 * time.Second},                            // exponential overflow capped
		{0, time.Hour, 2 * time.Second},                     // hostile hint clamped
		{5, 100 * time.Millisecond, 100 * time.Millisecond}, // sane hint honoured
	}
	for _, c := range cases {
		if got := b.delay(c.attempt, c.hint); got != c.want {
			t.Errorf("delay(%d, %v) = %v, want %v", c.attempt, c.hint, got, c.want)
		}
	}
}

// TestParseLeaseRequest covers the v2 lease request decoder the fuzz
// target explores: clamping, missing fields, garbage.
func TestParseLeaseRequest(t *testing.T) {
	cases := []struct {
		name, body string
		wantErr    bool
		wantMax    int
		wantAck    int
	}{
		{"normal", `{"me":"m","max":8,"ack":3}`, false, 8, 3},
		{"missing me", `{"max":8}`, true, 0, 0},
		{"zero max clamped", `{"me":"m","max":0}`, false, 1, 0},
		{"negative max clamped", `{"me":"m","max":-5}`, false, 1, 0},
		{"huge max clamped", `{"me":"m","max":99999}`, false, maxLeaseBatch, 0},
		{"negative ack clamped", `{"me":"m","max":1,"ack":-7}`, false, 1, 0},
		{"garbage", `{"me":`, true, 0, 0},
		{"empty", ``, true, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := parseLeaseRequest(strings.NewReader(c.body))
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, c.wantErr)
			}
			if err != nil {
				return
			}
			if req.Max != c.wantMax || req.Ack != c.wantAck {
				t.Errorf("parsed = %+v, want max=%d ack=%d", req, c.wantMax, c.wantAck)
			}
		})
	}
}

// TestEndpointLeaseSurvivesLostResponse drives the full client path: a
// proxy that drops the first lease response mid-body forces the
// endpoint's decode-failure retry, which must land the same batch.
func TestEndpointLeaseSurvivesLostResponse(t *testing.T) {
	srv := NewServer(nil)
	inner := srv.Handler()
	var leases atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v2/tasks/lease" && leases.Add(1) == 1 {
			// Claim a body is coming, send half a JSON array, cut it off.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			w.Header().Set("Content-Length", fmt.Sprint(len(body)))
			w.WriteHeader(rec.Code)
			w.Write(body[:len(body)/2])
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()
	srv.Register("me", "PAK")
	ids, err := srv.ScheduleBatch("me", []Task{
		{Kind: "dns", Config: "esim"}, {Kind: "dns", Config: "esim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := &Endpoint{Name: "me", BaseURL: hs.URL, Client: hs.Client(),
		Retry: Backoff{MaxAttempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond}}
	tasks, err := ep.Lease(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[0].ID != ids[0] || tasks[1].ID != ids[1] {
		t.Fatalf("leased %v, want original %v", tasks, ids)
	}
	if leases.Load() < 2 {
		t.Error("lease was not retried after the truncated response")
	}
}
