package amigo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/measure"
	"roamsim/internal/mno"
	"roamsim/internal/rng"
	"roamsim/internal/video"
)

// Endpoint is a measurement endpoint: the rooted-phone replacement that
// executes instrumentation against the simulated world and talks to the
// control server over HTTP.
type Endpoint struct {
	Name    string
	BaseURL string
	Client  *http.Client
	Dep     *airalo.Deployment
	Src     *rng.Source

	battery float64
}

// NewEndpoint creates an ME bound to a deployment.
func NewEndpoint(name, baseURL string, dep *airalo.Deployment, src *rng.Source) *Endpoint {
	return &Endpoint{
		Name: name, BaseURL: baseURL, Client: http.DefaultClient,
		Dep: dep, Src: src, battery: 1,
	}
}

// drainClose discards any unread body bytes before closing, so the
// underlying connection goes back into the keep-alive pool instead of
// being torn down (a fleet of MEs would otherwise churn one TCP
// connection per request).
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func (e *Endpoint) post(path string, body any) error {
	resp, err := e.postResp(path, body)
	if err != nil {
		return err
	}
	drainClose(resp)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("amigo: %s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}

func (e *Endpoint) postResp(path string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return e.Client.Post(e.BaseURL+path, "application/json", bytes.NewReader(buf))
}

// Register announces the ME to the control server.
func (e *Endpoint) Register() error {
	return e.post("/v1/register", map[string]string{
		"me": e.Name, "country": e.Dep.Country.ISO3,
	})
}

// Heartbeat reports current vitals, sampling the radio of the eSIM side.
func (e *Endpoint) Heartbeat() error {
	e.battery -= 0.002 // measurement drains the battery
	if e.battery < 0.05 {
		e.battery = 1 // the volunteer charged the phone
	}
	radio := e.Dep.Spec.RadioESIM.Sample(e.Src)
	return e.post("/v1/status", map[string]any{
		"me": e.Name,
		"vitals": Vitals{
			Battery: e.battery, RSSI: radio.RSSI, SNR: radio.SNR,
			CQI: radio.CQI, RAT: string(radio.RAT), ActiveID: "esim",
		},
	})
}

// RunOnce polls for one task, executes it, and uploads the result.
// It returns false when the queue is empty.
func (e *Endpoint) RunOnce() (bool, error) {
	resp, err := e.Client.Get(e.BaseURL + "/v1/tasks?me=" + url.QueryEscape(e.Name))
	if err != nil {
		return false, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return false, nil
	case http.StatusOK:
	default:
		return false, fmt.Errorf("amigo: tasks: HTTP %d", resp.StatusCode)
	}
	var task Task
	if err := json.NewDecoder(resp.Body).Decode(&task); err != nil {
		return false, err
	}
	result := e.Execute(task)
	if err := e.post("/v1/results", result); err != nil {
		return false, err
	}
	return true, nil
}

// Lease asks the server for up to max tasks over the v2 batch protocol.
// An empty slice means the queue is drained.
func (e *Endpoint) Lease(max int) ([]Task, error) {
	resp, err := e.postResp("/v2/tasks/lease", map[string]any{"me": e.Name, "max": max})
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
	default:
		return nil, fmt.Errorf("amigo: lease: HTTP %d", resp.StatusCode)
	}
	var tasks []Task
	if err := json.NewDecoder(resp.Body).Decode(&tasks); err != nil {
		return nil, err
	}
	return tasks, nil
}

// uploadAttempts bounds how long Upload keeps retrying a backpressured
// (429) server before giving up.
const uploadAttempts = 400

// Upload posts a result batch over the v2 protocol, honouring the
// server's 429 + Retry-After backpressure by waiting and retrying.
func (e *Endpoint) Upload(results []Result) error {
	if len(results) == 0 {
		return nil
	}
	for attempt := 0; attempt < uploadAttempts; attempt++ {
		resp, err := e.postResp("/v2/results", results)
		if err != nil {
			return err
		}
		wait := retryAfter(resp)
		drainClose(resp)
		switch {
		case resp.StatusCode < 300:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests:
			if wait <= 0 {
				wait = 25 * time.Millisecond
			}
			time.Sleep(wait)
		default:
			return fmt.Errorf("amigo: results: HTTP %d", resp.StatusCode)
		}
	}
	return fmt.Errorf("amigo: results upload still backpressured after %d attempts", uploadAttempts)
}

func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// RunBatch leases up to max tasks, executes them in order, and uploads
// the results as one batch. It returns the number of tasks executed;
// zero means the queue is drained.
func (e *Endpoint) RunBatch(max int) (int, error) {
	tasks, err := e.Lease(max)
	if err != nil || len(tasks) == 0 {
		return 0, err
	}
	results := make([]Result, len(tasks))
	for i, task := range tasks {
		results[i] = e.Execute(task)
	}
	if err := e.Upload(results); err != nil {
		return 0, err
	}
	return len(tasks), nil
}

// Execute runs the instrumentation for a task against the right session.
func (e *Endpoint) Execute(task Task) Result {
	res := Result{TaskID: task.ID, ME: e.Name, Kind: task.Kind, Config: task.Config}
	session, err := e.attach(task.Config)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var payload any
	switch task.Kind {
	case "speedtest":
		payload, err = runSpeedtest(session, e.Src)
	case "mtr":
		payload, err = runMTR(session, task.Target, e.Src)
	case "cdn":
		payload, err = runCDN(session, task.Target, e.Src)
	case "dns":
		payload, err = runDNS(session, e.Src)
	case "video":
		payload, err = runVideo(session, e.Src)
	default:
		err = fmt.Errorf("amigo: unknown task kind %q", task.Kind)
	}
	if err != nil {
		res.Error = err.Error()
		return res
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.OK = true
	res.Payload = raw
	return res
}

func (e *Endpoint) attach(config string) (*airalo.Session, error) {
	switch config {
	case string(mno.ESIM):
		return e.Dep.AttachESIM(e.Src)
	case string(mno.PhysicalSIM):
		return e.Dep.AttachSIM(e.Src)
	default:
		return nil, fmt.Errorf("amigo: unknown config %q", config)
	}
}

// Payload types (the JSON the MEs upload).

// SpeedtestPayload is the uploaded Ookla-style observation.
type SpeedtestPayload struct {
	Server    string  `json:"server"`
	LatencyMs float64 `json:"latency_ms"`
	DownMbps  float64 `json:"down_mbps"`
	UpMbps    float64 `json:"up_mbps"`
	CQI       int     `json:"cqi"`
	RAT       string  `json:"rat"`
	PublicIP  string  `json:"public_ip"`
}

func runSpeedtest(s *airalo.Session, src *rng.Source) (SpeedtestPayload, error) {
	r, err := measure.Speedtest(s, src)
	if err != nil {
		return SpeedtestPayload{}, err
	}
	return SpeedtestPayload{
		Server: r.ServerCity, LatencyMs: r.LatencyMs,
		DownMbps: r.DownMbps, UpMbps: r.UpMbps,
		CQI: r.Radio.CQI, RAT: string(r.Radio.RAT),
		PublicIP: s.PublicIP.String(),
	}, nil
}

// MTRPayload is one uploaded traceroute.
type MTRPayload struct {
	Target string   `json:"target"`
	Hops   []MTRHop `json:"hops"`
}

// MTRHop is one hop line.
type MTRHop struct {
	TTL   int     `json:"ttl"`
	Addr  string  `json:"addr,omitempty"` // empty when the hop timed out
	RTTms float64 `json:"rtt_ms,omitempty"`
}

func runMTR(s *airalo.Session, target string, src *rng.Source) (MTRPayload, error) {
	tr, err := measure.Traceroute(s, target, src)
	if err != nil {
		return MTRPayload{}, err
	}
	p := MTRPayload{Target: target}
	for _, h := range tr.Raw.Hops {
		hop := MTRHop{TTL: h.TTL}
		if h.Responded {
			hop.Addr = h.Addr.String()
			hop.RTTms = h.BestRTTms
		}
		p.Hops = append(p.Hops, hop)
	}
	return p, nil
}

// CDNPayload is one uploaded CDN fetch.
type CDNPayload struct {
	Provider string  `json:"provider"`
	Cache    string  `json:"cache"`
	DNSMs    float64 `json:"dns_ms"`
	TotalMs  float64 `json:"total_ms"`
	Bytes    int     `json:"bytes"`
}

func runCDN(s *airalo.Session, provider string, src *rng.Source) (CDNPayload, error) {
	r, err := measure.CDNFetch(s, provider, src)
	if err != nil {
		return CDNPayload{}, err
	}
	return CDNPayload{
		Provider: r.Provider, Cache: string(r.Cache),
		DNSMs: r.DNSMs, TotalMs: r.TotalMs, Bytes: r.SizeBytes,
	}, nil
}

// DNSPayload is one uploaded resolver identification.
type DNSPayload struct {
	Resolver   string  `json:"resolver"`
	City       string  `json:"city"`
	Country    string  `json:"country"`
	DurationMs float64 `json:"duration_ms"`
	DoH        bool    `json:"doh"`
}

func runDNS(s *airalo.Session, src *rng.Source) (DNSPayload, error) {
	r, err := measure.DNSLookup(s, src)
	if err != nil {
		return DNSPayload{}, err
	}
	return DNSPayload{
		Resolver: r.Resolver.Addr.String(), City: r.Resolver.City,
		Country: r.Resolver.Country, DurationMs: r.DurationMs, DoH: r.DoH,
	}, nil
}

// VideoPayload is one uploaded stats-for-nerds summary.
type VideoPayload struct {
	Dominant  string             `json:"dominant"`
	Rebuffers int                `json:"rebuffers"`
	Shares    map[string]float64 `json:"shares"`
}

func runVideo(s *airalo.Session, src *rng.Source) (VideoPayload, error) {
	st, err := measure.StreamVideo(s, video.Config{DurationSec: 120}, src)
	if err != nil {
		return VideoPayload{}, err
	}
	shares := map[string]float64{}
	for name := range st.SecondsAt {
		shares[name] = st.Share(name)
	}
	return VideoPayload{Dominant: st.DominantResolution, Rebuffers: st.Rebuffers, Shares: shares}, nil
}
