package amigo

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptrace"
	"net/url"
	"strconv"
	"sync"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/measure"
	"roamsim/internal/mno"
	"roamsim/internal/obs"
	"roamsim/internal/rng"
	"roamsim/internal/vclock"
	"roamsim/internal/video"
)

// Backoff is the endpoint's retry policy: capped exponential backoff
// with optional jitter, shared by every control-plane operation. The
// zero value means defaults.
type Backoff struct {
	// MaxAttempts caps the tries per logical operation (default 10);
	// the operation fails with the last error once exhausted — the
	// endpoint never loops forever against a broken server.
	MaxAttempts int
	// Base is the first retry delay; it doubles each attempt (default
	// 25ms).
	Base time.Duration
	// Max caps the backoff delay AND clamps any server-sent
	// Retry-After hint (default 2s) — a confused or hostile server
	// cannot park the fleet for an hour with one header.
	Max time.Duration
	// Jitter, when set, scales every delay by a uniform factor in
	// [0.5, 1.5) drawn from this stream, de-synchronizing fleet
	// retries. It must be a stream separate from the measurement
	// source (rng.Stream), so retry timing never perturbs payloads.
	Jitter *rng.Source
}

func (b Backoff) withDefaults() Backoff {
	if b.MaxAttempts <= 0 {
		b.MaxAttempts = 10
	}
	if b.Base <= 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	return b
}

// delay returns the wait before retry number attempt (0-based). A
// positive server hint (Retry-After) wins over the exponential
// schedule, but is clamped to Max rather than trusted blindly.
func (b Backoff) delay(attempt int, hint time.Duration) time.Duration {
	d := hint
	if d <= 0 {
		d = b.Base << attempt
		if d <= 0 { // shift overflow
			d = b.Max
		}
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter != nil {
		d = time.Duration(b.Jitter.Uniform(0.5, 1.5) * float64(d))
	}
	return d
}

// ErrUnknownME is wrapped into any control-plane error caused by an
// HTTP 404: the server does not know this ME. In a sharded deployment
// that is the signature of a control-shard crash — the replacement
// shard lost every registration — and the fleet driver treats it as
// recoverable (re-register, re-schedule under the original task IDs,
// replay). Test with errors.Is.
var ErrUnknownME = errors.New("amigo: server does not know this ME")

// httpStatusErr builds the error for a non-2xx control-plane response,
// wrapping ErrUnknownME for 404 so callers can detect lost
// registrations with errors.Is instead of parsing messages.
func httpStatusErr(op string, code int) error {
	if code == http.StatusNotFound {
		return fmt.Errorf("amigo: %s: HTTP %d: %w", op, code, ErrUnknownME)
	}
	return fmt.Errorf("amigo: %s: HTTP %d", op, code)
}

// Endpoint is a measurement endpoint: the rooted-phone replacement that
// executes instrumentation against the simulated world and talks to the
// control server over HTTP.
type Endpoint struct {
	Name    string
	BaseURL string
	Client  *http.Client
	Dep     *airalo.Deployment
	Src     *rng.Source
	// Retry is the control-plane retry policy (zero value = defaults).
	Retry Backoff
	// Ctx, when set, bounds every request and backoff sleep — the
	// fleet driver's straggler watchdog cancels it to reclaim an ME
	// stuck behind pathological faults.
	Ctx context.Context
	// Obs, when set, records client-side metrics: per-path request
	// counts, retries and give-ups, 429 backpressure hits, connection
	// reuse vs churn, and per-kind task execution histograms. It must
	// be set before the first operation; instrumentation never touches
	// the measurement rng, so datasets are identical with or without it.
	Obs *obs.Registry
	// Proto selects the batch protocol for Lease/Upload: ProtoV2 (JSON,
	// the default — "" means v2) or ProtoV3 (binary wire frames).
	// Delivery semantics are identical either way; see endpoint_v3.go.
	Proto string
	// Clock is the time source for backoff sleeps, Retry-After waits,
	// realized task durations, and execution metrics (nil = wall clock).
	// On a vclock.Virtual the ME's goroutine must be a registered waiter.
	Clock vclock.Clock
	// Realize, when set, makes Execute sleep each task's simulated
	// network duration on Clock — the netsim delay realization. A real
	// ME spends the observed latencies and transfer times; with Realize
	// a simulated campaign spends them too (and a virtual-clock campaign
	// skips over them). Payloads are computed before the sleep, so the
	// dataset is byte-identical with Realize on or off.
	Realize bool

	battery float64
	acked   int // highest task ID leased so far (v2 ack cursor)

	metOnce sync.Once
	met     epMetrics
}

// epMetrics caches the endpoint's metric handles so the request path
// never takes the registry lock; all handles are nil no-ops when no
// registry is attached.
type epMetrics struct {
	requests map[string]*obs.Counter   // per control-plane path
	other    *obs.Counter              // fallback for unexpected paths
	c429     *obs.Counter              // 429 backpressure responses seen
	exec     map[string]*obs.Histogram // task execution time per kind
	// connTrace observes connection reuse (nil without a registry, so
	// the uninstrumented path allocates nothing per request).
	connTrace *httptrace.ClientTrace
}

var (
	epPaths = []string{
		"/v1/register", "/v1/status", "/v1/tasks", "/v1/results",
		"/v2/tasks/lease", "/v2/tasks/requeue", "/v2/results",
		"/v3/tasks/lease", "/v3/results",
	}
	taskKinds = []string{"speedtest", "mtr", "cdn", "dns", "video", "other"}
)

// metrics lazily builds the handle cache. Lazy because the fleet driver
// attaches Obs after construction; Once because handles must be built
// exactly once even with concurrent first calls.
func (e *Endpoint) metrics() *epMetrics {
	e.metOnce.Do(func() {
		m := &e.met
		m.requests = make(map[string]*obs.Counter, len(epPaths))
		for _, p := range epPaths {
			m.requests[p] = e.Obs.Counter("amigo_endpoint_requests_total", obs.L("path", p))
		}
		m.other = e.Obs.Counter("amigo_endpoint_requests_total", obs.L("path", "other"))
		m.c429 = e.Obs.Counter("amigo_endpoint_backpressure_429_total")
		m.exec = make(map[string]*obs.Histogram, len(taskKinds))
		for _, k := range taskKinds {
			m.exec[k] = e.Obs.Histogram("amigo_endpoint_task_exec_ms", obs.L("kind", k))
		}
		if e.Obs != nil {
			connNew := e.Obs.Counter("amigo_endpoint_connections_total", obs.L("reused", "false"))
			connReused := e.Obs.Counter("amigo_endpoint_connections_total", obs.L("reused", "true"))
			m.connTrace = &httptrace.ClientTrace{
				GotConn: func(info httptrace.GotConnInfo) {
					if info.Reused {
						connReused.Add(1)
					} else {
						connNew.Add(1)
					}
				},
			}
		}
	})
	return &e.met
}

func (m *epMetrics) request(path string) {
	if c, ok := m.requests[path]; ok {
		c.Add(1)
		return
	}
	m.other.Add(1)
}

// reqContext is the request context, instrumented to observe connection
// reuse when a registry is attached.
func (e *Endpoint) reqContext() context.Context {
	ctx := e.ctx()
	if t := e.metrics().connTrace; t != nil {
		ctx = httptrace.WithClientTrace(ctx, t)
	}
	return ctx
}

// NewEndpoint creates an ME bound to a deployment.
func NewEndpoint(name, baseURL string, dep *airalo.Deployment, src *rng.Source) *Endpoint {
	return &Endpoint{
		Name: name, BaseURL: baseURL, Client: http.DefaultClient,
		Dep: dep, Src: src, battery: 1,
	}
}

func (e *Endpoint) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

func (e *Endpoint) httpClient() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return http.DefaultClient
}

func (e *Endpoint) clock() vclock.Clock {
	if e.Clock != nil {
		return e.Clock
	}
	return vclock.Wall
}

// sleep waits d on the endpoint's clock, or returns early with the
// context error if the endpoint is cancelled (watchdog, shutdown).
func (e *Endpoint) sleep(d time.Duration) error {
	return vclock.SleepCtx(e.clock(), e.ctx(), d)
}

// retry runs attempt under the endpoint's backoff policy. attempt
// returns done=true to stop (success or permanent failure), done=false
// to back off and try again; hint carries a server Retry-After to honour
// (clamped by the policy).
func (e *Endpoint) retry(op string, attempt func() (done bool, hint time.Duration, err error)) error {
	b := e.Retry.withDefaults()
	var lastErr error
	var lastHint time.Duration
	for i := 0; i < b.MaxAttempts; i++ {
		if i > 0 {
			e.Obs.Counter("amigo_endpoint_retries_total", obs.L("op", op)).Add(1)
			if err := e.sleep(b.delay(i-1, lastHint)); err != nil {
				return err
			}
		}
		done, hint, err := attempt()
		if done {
			return err
		}
		lastErr, lastHint = err, hint
		if ctxErr := e.ctx().Err(); ctxErr != nil {
			return ctxErr
		}
	}
	e.Obs.Counter("amigo_endpoint_retry_giveups_total", obs.L("op", op)).Add(1)
	e.Obs.Trace().Record("retry-giveup", obs.L("me", e.Name), obs.L("op", op))
	return fmt.Errorf("amigo: %s: giving up after %d attempts: %w", op, b.MaxAttempts, lastErr)
}

// retryableStatus reports whether a response status is worth retrying:
// backpressure (429) and server-side failures (5xx). Client errors are
// permanent.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// drainLimit bounds how many leftover body bytes drainClose will read
// to recycle a connection. Control-plane responses are tiny; a body
// bigger than this (a confused proxy, a fault-truncated stream that
// never ends) is cheaper to abandon than to drain.
const drainLimit = 256 << 10

// drainClose discards any unread body bytes (up to drainLimit) before
// closing, so the underlying connection goes back into the keep-alive
// pool instead of being torn down (a fleet of MEs would otherwise churn
// one TCP connection per request).
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
	resp.Body.Close()
}

// post sends a JSON body and retries transport errors, 429s, and 5xx
// under the backoff policy. Control-plane posts (register, status,
// requeue) are idempotent on the server, so resending is always safe.
func (e *Endpoint) post(path string, body any) error {
	return e.retry(path, func() (bool, time.Duration, error) {
		resp, err := e.postResp(path, body, nil)
		if err != nil {
			return false, 0, err
		}
		wait := retryAfter(resp)
		drainClose(resp)
		switch {
		case resp.StatusCode < 300:
			return true, 0, nil
		case retryableStatus(resp.StatusCode):
			return false, wait, fmt.Errorf("amigo: %s: HTTP %d", path, resp.StatusCode)
		default:
			return true, 0, httpStatusErr(path, resp.StatusCode)
		}
	})
}

func (e *Endpoint) postResp(path string, body any, header map[string]string) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return e.postRaw(path, "application/json", buf, header)
}

// postRaw sends pre-encoded bytes — the shared tail of the JSON and
// binary post paths (request metrics, connection tracing, 429
// counting).
func (e *Endpoint) postRaw(path, contentType string, body []byte, header map[string]string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(e.reqContext(), http.MethodPost, e.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	m := e.metrics()
	m.request(path)
	resp, err := e.httpClient().Do(req)
	if err == nil && resp.StatusCode == http.StatusTooManyRequests {
		m.c429.Add(1)
	}
	return resp, err
}

// Register announces the ME to the control server.
func (e *Endpoint) Register() error {
	return e.post("/v1/register", map[string]string{
		"me": e.Name, "country": e.Dep.Country.ISO3,
	})
}

// Heartbeat reports current vitals, sampling the radio of the eSIM side.
func (e *Endpoint) Heartbeat() error {
	e.battery -= 0.002 // measurement drains the battery
	if e.battery < 0.05 {
		e.battery = 1 // the volunteer charged the phone
	}
	radio := e.Dep.Spec.RadioESIM.Sample(e.Src)
	return e.post("/v1/status", map[string]any{
		"me": e.Name,
		"vitals": Vitals{
			Battery: e.battery, RSSI: radio.RSSI, SNR: radio.SNR,
			CQI: radio.CQI, RAT: string(radio.RAT), ActiveID: "esim",
		},
	})
}

// RunOnce polls for one task, executes it, and uploads the result.
// It returns false when the queue is empty.
func (e *Endpoint) RunOnce() (bool, error) {
	req, err := http.NewRequestWithContext(e.reqContext(), http.MethodGet,
		e.BaseURL+"/v1/tasks?me="+url.QueryEscape(e.Name), nil)
	if err != nil {
		return false, err
	}
	e.metrics().request("/v1/tasks")
	resp, err := e.httpClient().Do(req)
	if err != nil {
		return false, err
	}
	switch resp.StatusCode {
	case http.StatusNoContent:
		drainClose(resp)
		return false, nil
	case http.StatusOK:
	default:
		code := resp.StatusCode
		drainClose(resp)
		return false, httpStatusErr("tasks", code)
	}
	var task Task
	err = json.NewDecoder(resp.Body).Decode(&task)
	// Drain now, not after the task runs: a deferred close would pin
	// the connection out of the keep-alive pool for the whole task
	// execution plus the result upload, forcing the next poll onto a
	// fresh dial.
	drainClose(resp)
	if err != nil {
		return false, err
	}
	result := e.Execute(task)
	if err := e.post("/v1/results", result); err != nil {
		return false, err
	}
	return true, nil
}

// Lease asks the server for up to max tasks over the v2 batch
// protocol, acknowledging everything leased so far (the server retires
// acked tasks and re-delivers unacked ones, so a lease response lost to
// a fault is recovered on the next call). An empty slice means the
// queue is drained. Transport errors, truncated responses, 429s, and
// 5xx are retried under the backoff policy. With Proto set to ProtoV3
// the same exchange runs over the binary v3 route.
func (e *Endpoint) Lease(max int) ([]Task, error) {
	if e.Proto == ProtoV3 {
		return e.leaseV3(max)
	}
	var tasks []Task
	err := e.retry("lease", func() (bool, time.Duration, error) {
		resp, err := e.postResp("/v2/tasks/lease",
			map[string]any{"me": e.Name, "max": max, "ack": e.acked}, nil)
		if err != nil {
			return false, 0, err
		}
		switch resp.StatusCode {
		case http.StatusNoContent:
			drainClose(resp)
			tasks = nil
			return true, 0, nil
		case http.StatusOK:
		default:
			wait := retryAfter(resp)
			drainClose(resp)
			if retryableStatus(resp.StatusCode) {
				return false, wait, fmt.Errorf("amigo: lease: HTTP %d", resp.StatusCode)
			}
			return true, 0, httpStatusErr("lease", resp.StatusCode)
		}
		var got []Task
		err = json.NewDecoder(resp.Body).Decode(&got)
		drainClose(resp)
		if err != nil {
			// Truncated or garbled response: the batch stays unacked on
			// the server and the retry re-delivers the same tasks.
			return false, 0, fmt.Errorf("amigo: lease: decoding response: %w", err)
		}
		tasks = got
		return true, 0, nil
	})
	if err != nil {
		return nil, err
	}
	if n := len(tasks); n > 0 {
		e.acked = tasks[n-1].ID
	}
	return tasks, nil
}

// Redeliver asks the server to restore this ME's full schedule — done,
// outstanding, and queued tasks, in original order — and resets the
// lease ack cursor. A restarted ME calls it after re-registering so a
// full replay re-leases every task; server-side idempotency keys keep
// the re-uploaded duplicates out of the dataset.
func (e *Endpoint) Redeliver() error {
	e.acked = 0
	return e.post("/v2/tasks/requeue", map[string]string{"me": e.Name})
}

// Upload posts a result batch over the v2 protocol under an
// Idempotency-Key derived from the batch content, retrying transport
// errors, 429 + Retry-After backpressure (clamped by the backoff
// policy), and 5xx. The key makes resending always safe: if the server
// processed a batch but the response was lost, the retry is dropped as
// a duplicate rather than double-ingested.
func (e *Endpoint) Upload(results []Result) error {
	if len(results) == 0 {
		return nil
	}
	if e.Proto == ProtoV3 {
		return e.uploadV3(results)
	}
	header := map[string]string{"Idempotency-Key": uploadKey(e.Name, results)}
	return e.retry("results", func() (bool, time.Duration, error) {
		resp, err := e.postResp("/v2/results", results, header)
		if err != nil {
			return false, 0, err
		}
		wait := retryAfter(resp)
		drainClose(resp)
		switch {
		case resp.StatusCode < 300:
			return true, 0, nil
		case retryableStatus(resp.StatusCode):
			return false, wait, fmt.Errorf("amigo: results: HTTP %d", resp.StatusCode)
		default:
			return true, 0, httpStatusErr("results", resp.StatusCode)
		}
	})
}

// uploadKey derives a batch's idempotency key from its content: the ME
// name plus every result's (task ID, kind, config). A replayed or
// duplicated batch hashes identically, so the server keeps only the
// first copy; distinct batches differ because task IDs are unique per
// ME schedule.
func uploadKey(me string, results []Result) string {
	h := fnv.New64a()
	io.WriteString(h, me)
	for _, r := range results {
		fmt.Fprintf(h, "|%d/%s/%s", r.TaskID, r.Kind, r.Config)
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// retryAfter reads a Retry-After header as whole seconds. The backoff
// policy clamps the hint before sleeping, so a bogus huge value cannot
// stall an ME.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// RunBatch leases up to max tasks, executes them in order, and uploads
// the results as one batch. It returns the number of tasks executed;
// zero means the queue is drained.
func (e *Endpoint) RunBatch(max int) (int, error) {
	tasks, err := e.Lease(max)
	if err != nil || len(tasks) == 0 {
		return 0, err
	}
	results := make([]Result, len(tasks))
	for i, task := range tasks {
		results[i] = e.Execute(task)
	}
	if err := e.Upload(results); err != nil {
		return 0, err
	}
	return len(tasks), nil
}

// Execute runs the instrumentation for a task against the right session.
func (e *Endpoint) Execute(task Task) Result {
	m := e.metrics()
	h, ok := m.exec[task.Kind]
	if !ok {
		h = m.exec["other"]
	}
	start := e.clock().Now()
	res := e.execute(task)
	if e.Realize {
		// Spend the task's simulated network time on the clock, after
		// the payload is sealed: pacing can never perturb the dataset.
		e.sleep(realizeDuration(task.Kind, res))
	}
	h.Observe(float64(e.clock().Now().Sub(start)) / float64(time.Millisecond))
	return res
}

// realizeDuration maps a finished result to the network time an actual
// ME would have spent producing it, derived only from the uploaded
// payload so the pacing is as deterministic as the dataset itself.
func realizeDuration(kind string, res Result) time.Duration {
	if !res.OK {
		return 0
	}
	var ms float64
	switch kind {
	case "speedtest":
		var p SpeedtestPayload
		if json.Unmarshal(res.Payload, &p) != nil {
			return 0
		}
		ms = 2 * p.LatencyMs // probe round trips
		if p.DownMbps > 0 {
			ms += 8 * 16 / p.DownMbps * 1e3 // 16 MB down at the observed rate
		}
		if p.UpMbps > 0 {
			ms += 8 * 8 / p.UpMbps * 1e3 // 8 MB up
		}
	case "mtr":
		var p MTRPayload
		if json.Unmarshal(res.Payload, &p) != nil {
			return 0
		}
		for _, h := range p.Hops {
			if h.RTTms > 0 {
				ms += 3 * h.RTTms // three probes per TTL
			} else {
				ms += 500 // timed-out hop: one probe-timeout window
			}
		}
	case "cdn":
		var p CDNPayload
		if json.Unmarshal(res.Payload, &p) != nil {
			return 0
		}
		ms = p.TotalMs
	case "dns":
		var p DNSPayload
		if json.Unmarshal(res.Payload, &p) != nil {
			return 0
		}
		ms = p.DurationMs
	case "video":
		ms = 120 * 1e3 // the fixed stats-for-nerds watch window
	}
	return time.Duration(ms * float64(time.Millisecond))
}

func (e *Endpoint) execute(task Task) Result {
	res := Result{TaskID: task.ID, ME: e.Name, Kind: task.Kind, Config: task.Config}
	session, err := e.attach(task.Config)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var payload any
	switch task.Kind {
	case "speedtest":
		payload, err = runSpeedtest(session, e.Src)
	case "mtr":
		payload, err = runMTR(session, task.Target, e.Src)
	case "cdn":
		payload, err = runCDN(session, task.Target, e.Src)
	case "dns":
		payload, err = runDNS(session, e.Src)
	case "video":
		payload, err = runVideo(session, e.Src)
	default:
		err = fmt.Errorf("amigo: unknown task kind %q", task.Kind)
	}
	if err != nil {
		res.Error = err.Error()
		return res
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.OK = true
	res.Payload = raw
	return res
}

func (e *Endpoint) attach(config string) (*airalo.Session, error) {
	switch config {
	case string(mno.ESIM):
		return e.Dep.AttachESIM(e.Src)
	case string(mno.PhysicalSIM):
		return e.Dep.AttachSIM(e.Src)
	default:
		return nil, fmt.Errorf("amigo: unknown config %q", config)
	}
}

// Payload types (the JSON the MEs upload).

// SpeedtestPayload is the uploaded Ookla-style observation.
type SpeedtestPayload struct {
	Server    string  `json:"server"`
	LatencyMs float64 `json:"latency_ms"`
	DownMbps  float64 `json:"down_mbps"`
	UpMbps    float64 `json:"up_mbps"`
	CQI       int     `json:"cqi"`
	RAT       string  `json:"rat"`
	PublicIP  string  `json:"public_ip"`
}

func runSpeedtest(s *airalo.Session, src *rng.Source) (SpeedtestPayload, error) {
	r, err := measure.Speedtest(s, src)
	if err != nil {
		return SpeedtestPayload{}, err
	}
	return SpeedtestPayload{
		Server: r.ServerCity, LatencyMs: r.LatencyMs,
		DownMbps: r.DownMbps, UpMbps: r.UpMbps,
		CQI: r.Radio.CQI, RAT: string(r.Radio.RAT),
		PublicIP: s.PublicIP.String(),
	}, nil
}

// MTRPayload is one uploaded traceroute.
type MTRPayload struct {
	Target string   `json:"target"`
	Hops   []MTRHop `json:"hops"`
}

// MTRHop is one hop line.
type MTRHop struct {
	TTL   int     `json:"ttl"`
	Addr  string  `json:"addr,omitempty"` // empty when the hop timed out
	RTTms float64 `json:"rtt_ms,omitempty"`
}

func runMTR(s *airalo.Session, target string, src *rng.Source) (MTRPayload, error) {
	tr, err := measure.Traceroute(s, target, src)
	if err != nil {
		return MTRPayload{}, err
	}
	p := MTRPayload{Target: target}
	for _, h := range tr.Raw.Hops {
		hop := MTRHop{TTL: h.TTL}
		if h.Responded {
			hop.Addr = h.Addr.String()
			hop.RTTms = h.BestRTTms
		}
		p.Hops = append(p.Hops, hop)
	}
	return p, nil
}

// CDNPayload is one uploaded CDN fetch.
type CDNPayload struct {
	Provider string  `json:"provider"`
	Cache    string  `json:"cache"`
	DNSMs    float64 `json:"dns_ms"`
	TotalMs  float64 `json:"total_ms"`
	Bytes    int     `json:"bytes"`
}

func runCDN(s *airalo.Session, provider string, src *rng.Source) (CDNPayload, error) {
	r, err := measure.CDNFetch(s, provider, src)
	if err != nil {
		return CDNPayload{}, err
	}
	return CDNPayload{
		Provider: r.Provider, Cache: string(r.Cache),
		DNSMs: r.DNSMs, TotalMs: r.TotalMs, Bytes: r.SizeBytes,
	}, nil
}

// DNSPayload is one uploaded resolver identification.
type DNSPayload struct {
	Resolver   string  `json:"resolver"`
	City       string  `json:"city"`
	Country    string  `json:"country"`
	DurationMs float64 `json:"duration_ms"`
	DoH        bool    `json:"doh"`
}

func runDNS(s *airalo.Session, src *rng.Source) (DNSPayload, error) {
	r, err := measure.DNSLookup(s, src)
	if err != nil {
		return DNSPayload{}, err
	}
	return DNSPayload{
		Resolver: r.Resolver.Addr.String(), City: r.Resolver.City,
		Country: r.Resolver.Country, DurationMs: r.DurationMs, DoH: r.DoH,
	}, nil
}

// VideoPayload is one uploaded stats-for-nerds summary.
type VideoPayload struct {
	Dominant  string             `json:"dominant"`
	Rebuffers int                `json:"rebuffers"`
	Shares    map[string]float64 `json:"shares"`
}

func runVideo(s *airalo.Session, src *rng.Source) (VideoPayload, error) {
	st, err := measure.StreamVideo(s, video.Config{DurationSec: 120}, src)
	if err != nil {
		return VideoPayload{}, err
	}
	shares := map[string]float64{}
	for name := range st.SecondsAt {
		shares[name] = st.Share(name)
	}
	return VideoPayload{Dominant: st.DominantResolution, Rebuffers: st.Rebuffers, Shares: shares}, nil
}
