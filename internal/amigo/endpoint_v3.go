package amigo

import (
	"fmt"
	"net/http"
	"time"

	"roamsim/internal/wire"
)

// Protocol selectors for Endpoint.Proto.
const (
	ProtoV2 = "v2" // JSON batch protocol (the default; "" means v2)
	ProtoV3 = "v3" // binary wire protocol (internal/wire frames)
)

// v3 client path: the same lease/upload state machine as the v2
// methods — identical retry policy, ack-cursor updates and idempotency
// keys — with wire frames in place of JSON bodies. Encode buffers are
// pooled; a frame is encoded once per logical operation and reused
// across retries. Register, heartbeat and requeue stay on their JSON
// routes: they are per-incarnation, not per-batch, so they are not on
// the hot path the binary codec exists for.

// leaseV3 is Lease over POST /v3/tasks/lease.
func (e *Endpoint) leaseV3(max int) ([]Task, error) {
	ebuf := wire.GetBuf()
	defer wire.PutBuf(ebuf)
	*ebuf = wire.AppendLeaseRequest((*ebuf)[:0],
		wire.LeaseRequest{ME: e.Name, Max: max, Ack: e.acked})
	var tasks []Task
	err := e.retry("lease", func() (bool, time.Duration, error) {
		resp, err := e.postRaw("/v3/tasks/lease", wire.ContentType, *ebuf, nil)
		if err != nil {
			return false, 0, err
		}
		switch resp.StatusCode {
		case http.StatusNoContent:
			drainClose(resp)
			tasks = nil
			return true, 0, nil
		case http.StatusOK:
		default:
			wait := retryAfter(resp)
			drainClose(resp)
			if retryableStatus(resp.StatusCode) {
				return false, wait, fmt.Errorf("amigo: lease: HTTP %d", resp.StatusCode)
			}
			return true, 0, httpStatusErr("lease", resp.StatusCode)
		}
		rbuf := wire.GetBuf()
		h, payload, err := wire.ReadFrame(resp.Body, (*rbuf)[:0])
		*rbuf = payload
		drainClose(resp)
		if err == nil && h.Type != wire.MsgTasks {
			err = fmt.Errorf("wire: unexpected message type 0x%02x", h.Type)
		}
		var got []Task
		if err == nil {
			dec := wire.GetDecoder()
			// Tasks carry no byte fields, so the decoded batch owns all
			// its data and rbuf can go straight back to the pool.
			got, err = dec.Tasks(payload, nil)
			wire.PutDecoder(dec)
		}
		wire.PutBuf(rbuf)
		if err != nil {
			// Truncated or garbled frame: the batch stays unacked on the
			// server and the retry re-delivers the same tasks.
			return false, 0, fmt.Errorf("amigo: lease: decoding response: %w", err)
		}
		tasks = got
		return true, 0, nil
	})
	if err != nil {
		return nil, err
	}
	if n := len(tasks); n > 0 {
		e.acked = tasks[n-1].ID
	}
	return tasks, nil
}

// uploadV3 is Upload over POST /v3/results. The Idempotency-Key is the
// same content-derived uploadKey as v2 — it hashes field values, not
// encoded bytes, so the same batch dedups across codecs.
func (e *Endpoint) uploadV3(results []Result) error {
	header := map[string]string{"Idempotency-Key": uploadKey(e.Name, results)}
	ebuf := wire.GetBuf()
	defer wire.PutBuf(ebuf)
	*ebuf = wire.AppendResults((*ebuf)[:0], results)
	return e.retry("results", func() (bool, time.Duration, error) {
		resp, err := e.postRaw("/v3/results", wire.ContentType, *ebuf, header)
		if err != nil {
			return false, 0, err
		}
		wait := retryAfter(resp)
		drainClose(resp)
		switch {
		case resp.StatusCode < 300:
			return true, 0, nil
		case retryableStatus(resp.StatusCode):
			return false, wait, fmt.Errorf("amigo: results: HTTP %d", resp.StatusCode)
		default:
			return true, 0, httpStatusErr("results", resp.StatusCode)
		}
	})
}
