package amigo

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"roamsim/internal/vclock"
)

// TestUploadRetryAfterClampedVirtual is the virtual-clock regression
// for the Retry-After clamp. The real-time variant
// (TestUploadRetryAfterClamped) can only bound the elapsed time from
// above; on a virtual clock the backoff sleeps are exact events, so
// this test asserts the precise amount of time a hostile
// `Retry-After: 999999` is allowed to cost: (MaxAttempts-1) sleeps of
// exactly Backoff.Max each — not 999999 seconds of it.
func TestUploadRetryAfterClampedVirtual(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "999999") // ~11.6 days, per attempt
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer hs.Close()

	v := vclock.NewVirtual()
	const maxAttempts = 3
	const maxDelay = 2 * time.Second
	ep := &Endpoint{Name: "me", BaseURL: hs.URL, Client: hs.Client(), Clock: v,
		Retry: Backoff{MaxAttempts: maxAttempts, Base: time.Millisecond, Max: maxDelay}}

	errs := make(chan error, 1)
	v.Go(func() {
		errs <- ep.Upload([]Result{{TaskID: 1, ME: "me", Kind: "dns", OK: true}})
	})
	err := <-errs
	if err == nil {
		t.Fatal("Upload succeeded against an always-429 server")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("error = %v, want attempt-budget failure", err)
	}
	if got := hits.Load(); got != maxAttempts {
		t.Errorf("server saw %d attempts, want %d", got, maxAttempts)
	}
	// The exact-cost assertion: every retry slept the clamped Max, no
	// more, no less — the virtual clock makes "clamped" checkable as an
	// equality instead of a generous upper bound.
	want := vclock.Instant(0).Add((maxAttempts - 1) * maxDelay)
	if got := v.Now(); got != want {
		t.Errorf("virtual elapsed = %v, want exactly %v (the clamped backoff schedule)",
			got.Duration(), want.Duration())
	}
}
