// Package amigo reimplements the AmiGo testbed the paper extended: a
// control server that manages remote measurement endpoints (MEs) over a
// REST API, and the ME client that reports device vitals, fetches
// instrumentation, and uploads results.
//
// The paper's MEs were rooted Samsung S21+ phones running termux; here
// the ME drives sessions of the simulated world instead of a radio, but
// the control-plane protocol — register, heartbeat with vitals, poll for
// tasks, upload observations — is the same shape, over real HTTP.
//
// # Protocol
//
// The v1 protocol is one task per round trip, exactly what a handful of
// phones needs:
//
//	POST /v1/register   {"me": ..., "country": ...}
//	POST /v1/status     {"me": ..., "vitals": {...}}
//	GET  /v1/tasks?me=X          -> next queued task (204 if none)
//	POST /v1/results    Result
//
// The v2 batch protocol is the fleet-scale path (see internal/fleet):
// an ME leases up to K tasks in one round trip and uploads results in
// batches, cutting control-plane round trips by ~K×:
//
//	POST /v2/tasks/lease   {"me": ..., "max": K, "ack": N} -> up to K tasks (204 if none)
//	POST /v2/tasks/requeue {"me": ...}                     -> 204
//	POST /v2/results       [Result, ...]                   -> 204, or 429 + Retry-After
//
// v2 delivery is at-least-once and loss-tolerant: "ack" acknowledges
// every previously delivered task ID <= N, and unacked deliveries are
// re-sent before fresh work is popped, so a lease response lost or
// truncated on a flaky link is simply re-fetched (LeaseAck). A crashed
// ME calls /v2/tasks/requeue after re-registering to get its entire
// schedule back, original task IDs included. Uploads may carry an
// Idempotency-Key header; a batch whose key was already accepted is
// dropped server-side (SubmitKeyed), so retried and duplicated uploads
// never double-count results.
//
// The v3 binary protocol is the same lease/upload pair with
// internal/wire frames in place of JSON bodies (see server_v3.go and
// DESIGN.md "v3 wire format"):
//
//	POST /v3/tasks/lease   MsgLeaseRequest frame -> MsgTasks frame (204 if none)
//	POST /v3/results       MsgResults frame      -> 204, or 429 + Retry-After
//
// Requests must carry Content-Type application/vnd.amigo.v3 (else 415).
// Ack cursors, Idempotency-Key dedup and backpressure behave exactly as
// in v2 — the codec changes, the protocol semantics do not.
//
// # Backpressure
//
// Uploaded results flow through a bounded spool into a pluggable Sink
// (MemorySink by default, which retains results for Results /
// ResultsSince). An upload returns only after its batch has reached the
// sink, so Results() observed after a 2xx upload always includes it.
// When the sink cannot keep up and the spool is full, uploads are shed
// with HTTP 429 and a Retry-After hint instead of growing memory without
// bound.
//
// The ME registry is sharded by endpoint name, so registration,
// heartbeats, leases and scheduling for different MEs do not contend on
// one mutex at fleet scale.
package amigo

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"roamsim/internal/obs"
	"roamsim/internal/wire"
)

// Vitals are the device-health metrics an ME reports with heartbeats.
type Vitals struct {
	Battery  float64 `json:"battery"`   // 0..1
	RSSI     float64 `json:"rssi"`      // dBm
	SNR      float64 `json:"snr"`       // dB
	CQI      int     `json:"cqi"`       //
	RAT      string  `json:"rat"`       // "4G" / "5G"
	ActiveID string  `json:"active_id"` // active SIM profile ("sim"/"esim")
}

// Task is one instrumentation command for an ME. The struct lives in
// internal/wire (aliased here) so the JSON (v1/v2) and binary (v3)
// codecs share one canonical definition; every existing amigo.Task
// call site is unchanged.
type Task = wire.Task

// Result is an uploaded observation (canonical struct in
// internal/wire, see Task).
type Result = wire.Result

// ErrSpoolFull is returned by Submit when the bounded result spool has
// no room for a batch; HTTP handlers translate it to 429 + Retry-After.
var ErrSpoolFull = errors.New("amigo: result spool full")

// meState tracks one registered endpoint.
type meState struct {
	Country    string
	LastVitals Vitals
	LastSeen   time.Time
	queue      []Task
	// outstanding are tasks delivered over the v2 ack'd lease protocol
	// that the ME has not acknowledged yet. A lease whose response was
	// lost on the wire is retried with an unchanged ack, and the server
	// re-delivers these instead of popping fresh work — so a flaky link
	// can cost round trips but never lose tasks.
	outstanding []Task
	// done are acknowledged v2 deliveries, retained so Requeue can
	// restore a crashed ME's entire schedule in original ID order.
	done []Task
}

// registryShard holds a slice of the ME registry under its own lock.
type registryShard struct {
	mu  sync.Mutex
	mes map[string]*meState // guarded by mu
}

const (
	defaultShardCount = 16
	defaultSpoolCap   = 8192
)

// Server is the AmiGo control server.
type Server struct {
	shards []registryShard
	nextID atomic.Int64
	clock  func() time.Time

	retryAfter time.Duration
	maxProto   int // highest protocol Handler mounts (2 or 3)

	spoolMu  sync.Mutex
	spool    []Result // guarded by spoolMu
	spoolCap int

	drainMu sync.Mutex
	sink    Sink
	cur     CursorSink // nil when the sink supports no cursor reads

	idemMu   sync.Mutex
	idemSeen map[string]struct{} // guarded by idemMu

	// obs is the optional metrics/trace registry (see WithObs). All
	// metric handles below are nil-safe no-ops when obs is nil, so the
	// serving path carries no "is observability enabled" branches.
	obs *obs.Registry
	met serverMetrics
}

// serverMetrics are the control-plane counters, created once at
// construction so the request path touches only atomics (never the
// registry lock).
type serverMetrics struct {
	scheduled     *obs.Counter // tasks queued via Schedule/ScheduleBatch
	leased        *obs.Counter // fresh task deliveries (v1 + v2)
	redelivered   *obs.Counter // unacked v2 tasks re-sent after a lost response
	acked         *obs.Counter // v2 tasks retired by a lease ack
	requeued      *obs.Counter // tasks restored by /v2/tasks/requeue
	submitted     *obs.Counter // results accepted into the spool
	dedupDropped  *obs.Counter // duplicate idempotency-key batches dropped
	spoolRejected *obs.Counter // batches shed with 429 (spool full)
	encodeErrors  *obs.Counter // response encode/write failures (client gone mid-response)
}

// Option configures a Server.
type Option func(*Server)

// WithSink replaces the default MemorySink. The server itself retains
// nothing: Results / ResultsSince / Cursor are served by the sink when
// it implements CursorSink (MemorySink and walsink.Sink do), and the
// admin results route answers 501 when it does not — a write-only sink
// is a configuration the operator should see, not an empty page.
func WithSink(sink Sink) Option {
	return func(s *Server) {
		s.sink = sink
		s.cur, _ = sink.(CursorSink)
	}
}

// WithSpoolCapacity bounds the result spool (default 8192 results).
func WithSpoolCapacity(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.spoolCap = n
		}
	}
}

// WithShardCount sets the ME registry shard count (default 16).
func WithShardCount(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.shards = make([]registryShard, n)
		}
	}
}

// WithRetryAfter sets the Retry-After hint sent with 429 responses
// (default 1s; rounded up to whole seconds on the wire).
func WithRetryAfter(d time.Duration) Option {
	return func(s *Server) { s.retryAfter = d }
}

// WithMaxProto caps the protocol generation Handler serves: 2 mounts
// only the v1/v2 JSON routes (the v3 binary routes 404), 3 (the
// default) mounts everything. Operators pin 2 to force a fleet onto
// the JSON oracle path, e.g. when bisecting a codec suspicion.
func WithMaxProto(p int) Option {
	return func(s *Server) {
		if p == 2 || p == 3 {
			s.maxProto = p
		}
	}
}

// WithObs attaches a metrics/trace registry: per-route request counts
// and latency histograms, lease/ack/redelivery/dedup counters, and
// spool gauges are recorded into it, and AdminHandler serves it at
// GET /admin/metrics (Prometheus text format) and GET /admin/trace.
// Without it the server collects nothing and the admin routes serve an
// empty exposition. Instrumentation is off the hot path — counters are
// single atomics created up front — and never perturbs determinism:
// campaign datasets are byte-identical with metrics on or off.
func WithObs(reg *obs.Registry) Option {
	return func(s *Server) { s.obs = reg }
}

// NewServer returns a control server. clock may be nil (wall clock).
func NewServer(clock func() time.Time, opts ...Option) *Server {
	if clock == nil {
		clock = time.Now
	}
	mem := NewMemorySink()
	s := &Server{
		shards:     make([]registryShard, defaultShardCount),
		clock:      clock,
		retryAfter: time.Second,
		maxProto:   3,
		spoolCap:   defaultSpoolCap,
		sink:       mem,
		cur:        mem,
		idemSeen:   map[string]struct{}{},
	}
	for _, opt := range opts {
		opt(s)
	}
	for i := range s.shards {
		//lint:allow guardedfield constructor: the server is not shared until New returns
		s.shards[i].mes = map[string]*meState{}
	}
	s.initObs()
	return s
}

// initObs creates the metric handles (nil no-ops when no registry is
// attached) and registers the liveness gauges.
func (s *Server) initObs() {
	s.met = serverMetrics{
		scheduled:     s.obs.Counter("amigo_server_tasks_scheduled_total"),
		leased:        s.obs.Counter("amigo_server_leased_tasks_total"),
		redelivered:   s.obs.Counter("amigo_server_redelivered_tasks_total"),
		acked:         s.obs.Counter("amigo_server_acked_tasks_total"),
		requeued:      s.obs.Counter("amigo_server_requeued_tasks_total"),
		submitted:     s.obs.Counter("amigo_server_results_submitted_total"),
		dedupDropped:  s.obs.Counter("amigo_server_dedup_dropped_batches_total"),
		spoolRejected: s.obs.Counter("amigo_server_spool_rejections_total"),
		encodeErrors:  s.obs.Counter("amigo_server_response_encode_errors_total"),
	}
	s.obs.GaugeFunc("amigo_server_spool_depth", func() float64 { return float64(s.SpoolDepth()) })
	s.obs.GaugeFunc("amigo_server_registered_mes", func() float64 { return float64(len(s.MEs())) })
}

func (s *Server) shardFor(me string) *registryShard {
	h := fnv.New32a()
	h.Write([]byte(me))
	return &s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Register creates (or refreshes) an ME registration.
func (s *Server) Register(me, country string) {
	sh := s.shardFor(me)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.mes[me]; !ok {
		sh.mes[me] = &meState{Country: country}
	}
	sh.mes[me].LastSeen = s.clock()
}

// Schedule queues a task for the named ME and returns its ID.
func (s *Server) Schedule(me string, task Task) (int, error) {
	ids, err := s.ScheduleBatch(me, []Task{task})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// ScheduleBatch queues tasks for the named ME in order and returns their
// IDs. Tasks with ID 0 get fresh server-assigned IDs (globally unique,
// monotonically increasing per ME); a task carrying a positive ID keeps
// it, and the allocator advances past it so later fresh IDs never
// collide. Pre-set IDs are how the fleet driver re-schedules an ME on a
// replacement control shard after a crash: the re-executed tasks upload
// under their original (ME, task ID), so ingest dedup absorbs the
// replay instead of double-counting it.
func (s *Server) ScheduleBatch(me string, tasks []Task) ([]int, error) {
	sh := s.shardFor(me)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.mes[me]
	if !ok {
		return nil, fmt.Errorf("amigo: unknown ME %q", me)
	}
	ids := make([]int, len(tasks))
	for i, t := range tasks {
		if t.ID > 0 {
			s.reserveID(int64(t.ID))
		} else {
			t.ID = int(s.nextID.Add(1))
		}
		st.queue = append(st.queue, t)
		ids[i] = t.ID
	}
	s.met.scheduled.Add(int64(len(tasks)))
	return ids, nil
}

// reserveID advances the ID allocator to at least id, so explicitly
// scheduled IDs and fresh ones never collide.
func (s *Server) reserveID(id int64) {
	for {
		cur := s.nextID.Load()
		if cur >= id || s.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Lease pops up to max queued tasks for the named ME, in queue order.
// It returns an empty slice when the queue is empty and an error when
// the ME is unknown.
func (s *Server) Lease(me string, max int) ([]Task, error) {
	if max < 1 {
		max = 1
	}
	sh := s.shardFor(me)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.mes[me]
	if !ok {
		return nil, fmt.Errorf("amigo: unknown ME %q", me)
	}
	n := min(max, len(st.queue))
	leased := append([]Task(nil), st.queue[:n]...)
	st.queue = st.queue[n:]
	if len(st.queue) == 0 {
		st.queue = nil // release the drained backing array
	}
	s.met.leased.Add(int64(n))
	return leased, nil
}

// LeaseAck is the at-least-once v2 lease: ack acknowledges every
// previously delivered task with ID <= ack, and any still-unacked
// deliveries are re-sent (in the original order) before fresh work is
// popped. A client that lost a lease response simply retries with its
// unchanged ack and receives the same tasks again, so response loss or
// truncation never drops scheduled work. ack 0 (a fresh client)
// acknowledges nothing.
func (s *Server) LeaseAck(me string, max, ack int) ([]Task, error) {
	return s.LeaseAckInto(me, max, ack, nil)
}

// LeaseAckInto is LeaseAck appending the leased tasks onto dst — the
// v3 hot path passes a pooled slice re-sliced to [:0] so the
// steady-state lease copies into recycled capacity instead of
// allocating per response.
func (s *Server) LeaseAckInto(me string, max, ack int, dst []Task) ([]Task, error) {
	if max < 1 {
		max = 1
	}
	sh := s.shardFor(me)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.mes[me]
	if !ok {
		return dst, fmt.Errorf("amigo: unknown ME %q", me)
	}
	// Retire acknowledged deliveries into the done log (kept for Requeue).
	for len(st.outstanding) > 0 && st.outstanding[0].ID <= ack {
		st.done = append(st.done, st.outstanding[0])
		st.outstanding = st.outstanding[1:]
		s.met.acked.Add(1)
	}
	if len(st.outstanding) > 0 {
		// Unacked deliveries: the previous response was lost — re-deliver.
		n := min(max, len(st.outstanding))
		s.met.redelivered.Add(int64(n))
		return append(dst, st.outstanding[:n]...), nil
	}
	n := min(max, len(st.queue))
	dst = append(dst, st.queue[:n]...)
	st.outstanding = append(st.outstanding, st.queue[:n]...)
	st.queue = st.queue[n:]
	if len(st.queue) == 0 {
		st.queue = nil
	}
	s.met.leased.Add(int64(n))
	return dst, nil
}

// Requeue restores the ME's full v2 schedule — acknowledged, outstanding
// and undelivered tasks, in original ID order — to the head of its
// queue. It is how a crashed-and-restarted ME gets its work re-delivered
// with the original task IDs (so replayed uploads dedup instead of
// duplicating). Requeue is idempotent: a second call with nothing
// delivered since is a no-op. It returns how many tasks were restored.
func (s *Server) Requeue(me string) (int, error) {
	sh := s.shardFor(me)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.mes[me]
	if !ok {
		return 0, fmt.Errorf("amigo: unknown ME %q", me)
	}
	restored := len(st.done) + len(st.outstanding)
	if restored == 0 {
		return 0, nil
	}
	q := make([]Task, 0, restored+len(st.queue))
	q = append(q, st.done...)
	q = append(q, st.outstanding...)
	q = append(q, st.queue...)
	st.queue = q
	st.done, st.outstanding = nil, nil
	s.met.requeued.Add(int64(restored))
	s.obs.Trace().Record("requeue", obs.L("me", me), obs.L("restored", strconv.Itoa(restored)))
	return restored, nil
}

// Submit stamps a batch with the server clock and routes it through the
// bounded spool into the sink. It returns ErrSpoolFull when the spool
// cannot absorb the batch; otherwise it returns only after the batch has
// reached the sink, so a subsequent Results call observes it.
func (s *Server) Submit(batch []Result) error {
	if len(batch) == 0 {
		return nil
	}
	now := s.clock()
	stamped := make([]Result, len(batch))
	copy(stamped, batch)
	for i := range stamped {
		stamped[i].Uploaded = now
	}
	s.spoolMu.Lock()
	if len(s.spool)+len(stamped) > s.spoolCap {
		s.spoolMu.Unlock()
		s.met.spoolRejected.Add(1)
		s.obs.Trace().Record("spool-full", obs.L("batch", strconv.Itoa(len(stamped))))
		return ErrSpoolFull
	}
	s.spool = append(s.spool, stamped...)
	s.spoolMu.Unlock()
	s.drain()
	s.met.submitted.Add(int64(len(stamped)))
	return nil
}

// SubmitKeyed is Submit with at-most-once semantics: a batch whose
// idempotency key was already accepted is dropped silently (the first
// copy is durable by the time its key is recorded, so read-your-writes
// still holds for the duplicate's 2xx). Keys are recorded only on
// success — a batch shed with ErrSpoolFull may retry under the same key.
// An empty key degrades to plain Submit. Uploads for one ME are
// sequential in every supported client, so the check-then-record window
// is not raced in practice; a pathological concurrent duplicate would
// merely double-submit, which Ingest's (ME, task ID) dedup absorbs.
func (s *Server) SubmitKeyed(key string, batch []Result) error {
	if key == "" {
		return s.Submit(batch)
	}
	s.idemMu.Lock()
	_, dup := s.idemSeen[key]
	s.idemMu.Unlock()
	if dup {
		s.met.dedupDropped.Add(1)
		return nil
	}
	if err := s.Submit(batch); err != nil {
		return err
	}
	s.idemMu.Lock()
	s.idemSeen[key] = struct{}{}
	s.idemMu.Unlock()
	return nil
}

// drain moves spooled results into the sink. Sink writes are serialized
// under drainMu; a submitter whose batch was claimed by a concurrent
// drainer blocks here until that drainer has sunk it, preserving
// read-your-writes for uploads.
func (s *Server) drain() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	for {
		s.spoolMu.Lock()
		batch := s.spool
		s.spool = nil
		s.spoolMu.Unlock()
		if len(batch) == 0 {
			return
		}
		s.sink.Append(batch)
	}
}

// SpoolDepth reports how many results are parked in the spool awaiting
// the sink — a liveness metric; nonzero values mean the sink is behind.
func (s *Server) SpoolDepth() int {
	s.spoolMu.Lock()
	defer s.spoolMu.Unlock()
	return len(s.spool)
}

// Results returns a copy of every retained result. It pages through
// ResultsSince because a disk-backed CursorSink may serve bounded pages
// rather than the whole history in one call.
func (s *Server) Results() []Result {
	var out []Result
	cursor := 0
	for {
		rs, next := s.ResultsSince(cursor)
		if len(rs) == 0 || next <= cursor {
			return out
		}
		out = append(out, rs...)
		cursor = next
	}
}

// ResultsSince returns the retained results at positions >= cursor and
// the cursor one past the last returned result (which may trail the
// newest: a disk-backed sink serves bounded pages — loop until the
// cursor stops advancing). It returns nothing when the installed sink
// is not a CursorSink; HTTP callers get 501 instead (SupportsCursor).
func (s *Server) ResultsSince(cursor int) ([]Result, int) {
	if s.cur == nil {
		return nil, 0
	}
	return s.cur.Since(cursor)
}

// Cursor returns the current result cursor (see ResultsSince).
func (s *Server) Cursor() int {
	if s.cur == nil {
		return 0
	}
	return s.cur.Len()
}

// SupportsCursor reports whether the installed sink can serve cursor
// reads (Results / ResultsSince / GET /admin/results).
func (s *Server) SupportsCursor() bool { return s.cur != nil }

// MEs lists registered endpoints, sorted.
func (s *Server) MEs() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for name := range sh.mes {
			out = append(out, name)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Vitals returns the last-reported vitals for an ME.
func (s *Server) Vitals(me string) (Vitals, bool) {
	sh := s.shardFor(me)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.mes[me]
	if !ok {
		return Vitals{}, false
	}
	return st.LastVitals, true
}

// rejectBusy writes the 429 + Retry-After backpressure response.
func (s *Server) rejectBusy(w http.ResponseWriter) {
	secs := 0
	if s.retryAfter > 0 {
		secs = int(math.Ceil(s.retryAfter.Seconds()))
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "result spool full", http.StatusTooManyRequests)
}

// writeJSON encodes v as the JSON response body. Encode failures here
// mean the client vanished mid-response (the headers are already out,
// so no status change is possible); they were previously dropped on
// the floor — now they count, so a fleet tearing connections down
// mid-read is visible in /admin/metrics instead of silent.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.met.encodeErrors.Add(1)
	}
}

// atoiParam parses an optional integer query parameter: empty means 0,
// anything else must be a well-formed integer.
func atoiParam(raw string) (int, error) {
	if raw == "" {
		return 0, nil
	}
	return strconv.Atoi(raw)
}

// writeFrame writes an encoded v3 frame, counting short/failed writes
// like writeJSON counts encode failures.
func (s *Server) writeFrame(w http.ResponseWriter, frame []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	if _, err := w.Write(frame); err != nil {
		s.met.encodeErrors.Add(1)
	}
}

// statusWriter captures the response status code for route metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statusClass buckets a status code for the request counter. 429 gets
// its own class — it is the backpressure signal, not a generic client
// error — and everything else collapses to a class to bound cardinality.
func statusClass(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return "429"
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// requestClasses are the pre-created status classes per route.
var requestClasses = []string{"2xx", "3xx", "4xx", "429", "5xx"}

// instrument registers a route with per-route request counters and a
// latency histogram. All handles are created here, at mux construction,
// so the request path adds one clock read, one atomic counter bump and
// one histogram shard lock. With no registry attached the handler is
// registered bare.
func (s *Server) instrument(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	if s.obs == nil {
		mux.HandleFunc(pattern, h)
		return
	}
	route := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		route = pattern[i+1:]
	}
	byClass := make(map[string]*obs.Counter, len(requestClasses))
	for _, class := range requestClasses {
		byClass[class] = s.obs.Counter("amigo_server_requests_total",
			obs.L("route", route), obs.L("class", class))
	}
	dur := s.obs.Histogram("amigo_server_request_duration_ms", obs.L("route", route))
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		dur.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		code := sw.code
		if code == 0 {
			code = http.StatusOK // handler wrote nothing: implicit 200
		}
		byClass[statusClass(code)].Add(1)
	})
}

// Handler exposes the v1/v2/v3 measurement-endpoint API (see the
// package comment for the protocol; WithMaxProto(2) leaves the v3
// binary routes unmounted).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.instrument(mux, "POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ME      string `json:"me"`
			Country string `json:"country"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ME == "" {
			http.Error(w, "bad register", http.StatusBadRequest)
			return
		}
		s.Register(req.ME, req.Country)
		w.WriteHeader(http.StatusNoContent)
	})
	s.instrument(mux, "POST /v1/status", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ME     string `json:"me"`
			Vitals Vitals `json:"vitals"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad status", http.StatusBadRequest)
			return
		}
		sh := s.shardFor(req.ME)
		sh.mu.Lock()
		st, ok := sh.mes[req.ME]
		if ok {
			st.LastVitals = req.Vitals
			st.LastSeen = s.clock()
		}
		sh.mu.Unlock()
		if !ok {
			http.Error(w, "unknown me", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	s.instrument(mux, "GET /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		tasks, err := s.Lease(r.URL.Query().Get("me"), 1)
		if err != nil {
			http.Error(w, "unknown me", http.StatusNotFound)
			return
		}
		if len(tasks) == 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s.writeJSON(w, tasks[0])
	})
	s.instrument(mux, "POST /v1/results", func(w http.ResponseWriter, r *http.Request) {
		var res Result
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			http.Error(w, "bad result", http.StatusBadRequest)
			return
		}
		if err := s.Submit([]Result{res}); err != nil {
			s.rejectBusy(w)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	s.instrument(mux, "POST /v2/tasks/lease", func(w http.ResponseWriter, r *http.Request) {
		req, err := parseLeaseRequest(r.Body)
		if err != nil {
			http.Error(w, "bad lease", http.StatusBadRequest)
			return
		}
		tasks, err := s.LeaseAck(req.ME, req.Max, req.Ack)
		if err != nil {
			http.Error(w, "unknown me", http.StatusNotFound)
			return
		}
		if len(tasks) == 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s.writeJSON(w, tasks)
	})
	s.instrument(mux, "POST /v2/tasks/requeue", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ME string `json:"me"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ME == "" {
			http.Error(w, "bad requeue", http.StatusBadRequest)
			return
		}
		if _, err := s.Requeue(req.ME); err != nil {
			http.Error(w, "unknown me", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	s.instrument(mux, "POST /v2/results", func(w http.ResponseWriter, r *http.Request) {
		var batch []Result
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			http.Error(w, "bad results", http.StatusBadRequest)
			return
		}
		if err := s.SubmitKeyed(r.Header.Get("Idempotency-Key"), batch); err != nil {
			s.rejectBusy(w)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	if s.maxProto >= 3 {
		s.instrument(mux, "POST /v3/tasks/lease", s.handleV3Lease)
		s.instrument(mux, "POST /v3/results", s.handleV3Results)
	}
	return mux
}

// maxLeaseBatch bounds how many tasks one v2 lease round trip may
// request, so a malformed or hostile client cannot drain an entire
// fleet-sized queue into one response.
const maxLeaseBatch = 1024

// leaseRequest is the decoded v2 lease body.
type leaseRequest struct {
	ME  string `json:"me"`
	Max int    `json:"max"`
	// Ack acknowledges all previously delivered task IDs <= Ack; see
	// LeaseAck. Omitted (0) acknowledges nothing.
	Ack int `json:"ack"`
}

// parseLeaseRequest decodes and validates a v2 lease body: the ME name
// is required, Max is clamped to [1, maxLeaseBatch], and a negative Ack
// is treated as 0. It is fuzzed by FuzzLeaseDecode.
func parseLeaseRequest(body io.Reader) (leaseRequest, error) {
	var req leaseRequest
	if err := json.NewDecoder(io.LimitReader(body, 1<<20)).Decode(&req); err != nil {
		return leaseRequest{}, err
	}
	if req.ME == "" {
		return leaseRequest{}, errors.New("amigo: lease request missing me")
	}
	if req.Max < 1 {
		req.Max = 1
	}
	if req.Max > maxLeaseBatch {
		req.Max = maxLeaseBatch
	}
	if req.Ack < 0 {
		req.Ack = 0
	}
	return req, nil
}

// AdminHandler exposes the operator API:
//
//	POST /admin/schedule  {"me":..., "kind":..., "target":..., "config":..., "count":N}
//	                      or {"me":..., "tasks":[Task, ...]} for a batch
//	GET  /admin/results?cursor=N[&limit=M] -> {"cursor": next, "results": [...]}
//	                      cursor=-1 returns just the current cursor
//	GET  /admin/mes
//	GET  /admin/metrics        -> Prometheus text exposition (see WithObs)
//	GET  /admin/trace?n=K      -> newest K trace events as JSON
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	s.instrument(mux, "POST /admin/schedule", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ME     string `json:"me"`
			Kind   string `json:"kind"`
			Target string `json:"target"`
			Config string `json:"config"`
			Count  int    `json:"count"`
			Tasks  []Task `json:"tasks"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		tasks := req.Tasks
		if len(tasks) == 0 {
			if req.Count <= 0 {
				req.Count = 1
			}
			for i := 0; i < req.Count; i++ {
				tasks = append(tasks, Task{Kind: req.Kind, Target: req.Target, Config: req.Config})
			}
		}
		ids, err := s.ScheduleBatch(req.ME, tasks)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		s.writeJSON(w, map[string]any{"task_ids": ids})
	})
	s.instrument(mux, "GET /admin/results", func(w http.ResponseWriter, r *http.Request) {
		if !s.SupportsCursor() {
			http.Error(w, "results not readable: installed sink has no cursor support", http.StatusNotImplemented)
			return
		}
		q := r.URL.Query()
		// Missing parameters default to zero; malformed ones are 400s —
		// silently reading garbage as cursor 0 would replay the whole
		// log as a "successful" page.
		cursor, err := atoiParam(q.Get("cursor"))
		if err != nil {
			http.Error(w, "bad cursor", http.StatusBadRequest)
			return
		}
		limit, err := atoiParam(q.Get("limit"))
		if err != nil {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		var rs []Result
		var next int
		if cursor < 0 {
			rs, next = nil, s.Cursor()
		} else {
			rs, next = s.ResultsSince(cursor)
			if limit > 0 && len(rs) > limit {
				rs = rs[:limit]
				next = cursor + limit
			}
		}
		if rs == nil {
			rs = []Result{}
		}
		s.writeJSON(w, map[string]any{"cursor": next, "results": rs})
	})
	s.instrument(mux, "GET /admin/mes", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, s.MEs())
	})
	// Observability routes. Both are valid (empty) with no registry
	// attached, and deliberately uninstrumented: scraping the metrics
	// endpoint should not move the metrics it reports.
	mux.Handle("GET /admin/metrics", s.obs.MetricsHandler())
	mux.Handle("GET /admin/trace", s.obs.TraceHandler())
	return mux
}
