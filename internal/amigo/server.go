// Package amigo reimplements the AmiGo testbed the paper extended: a
// control server that manages remote measurement endpoints (MEs) over a
// REST API, and the ME client that reports device vitals, fetches
// instrumentation, and uploads results.
//
// The paper's MEs were rooted Samsung S21+ phones running termux; here
// the ME drives sessions of the simulated world instead of a radio, but
// the control-plane protocol — register, heartbeat with vitals, poll for
// tasks, upload observations — is the same shape, over real HTTP.
package amigo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Vitals are the device-health metrics an ME reports with heartbeats.
type Vitals struct {
	Battery  float64 `json:"battery"`   // 0..1
	RSSI     float64 `json:"rssi"`      // dBm
	SNR      float64 `json:"snr"`       // dB
	CQI      int     `json:"cqi"`       //
	RAT      string  `json:"rat"`       // "4G" / "5G"
	ActiveID string  `json:"active_id"` // active SIM profile ("sim"/"esim")
}

// Task is one instrumentation command for an ME.
type Task struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"` // "speedtest", "mtr", "cdn", "dns", "video"
	// Target parameterizes the task (SP name, CDN provider, ...).
	Target string `json:"target,omitempty"`
	// Config selects the SIM profile: "sim" or "esim".
	Config string `json:"config"`
}

// Result is an uploaded observation.
type Result struct {
	TaskID   int             `json:"task_id"`
	ME       string          `json:"me"`
	Kind     string          `json:"kind"`
	Config   string          `json:"config"`
	OK       bool            `json:"ok"`
	Error    string          `json:"error,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Uploaded time.Time       `json:"uploaded"`
}

// meState tracks one registered endpoint.
type meState struct {
	Country    string
	LastVitals Vitals
	LastSeen   time.Time
	queue      []Task
}

// Server is the AmiGo control server.
type Server struct {
	mu      sync.Mutex
	mes     map[string]*meState
	results []Result
	nextID  int
	clock   func() time.Time
}

// NewServer returns a control server. clock may be nil (wall clock).
func NewServer(clock func() time.Time) *Server {
	if clock == nil {
		clock = time.Now
	}
	return &Server{mes: map[string]*meState{}, clock: clock}
}

// Schedule queues a task for the named ME and returns its ID.
func (s *Server) Schedule(me string, task Task) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.mes[me]
	if !ok {
		return 0, fmt.Errorf("amigo: unknown ME %q", me)
	}
	s.nextID++
	task.ID = s.nextID
	st.queue = append(st.queue, task)
	return task.ID, nil
}

// Results returns a copy of the uploaded results.
func (s *Server) Results() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Result(nil), s.results...)
}

// MEs lists registered endpoints, sorted.
func (s *Server) MEs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.mes))
	for name := range s.mes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Vitals returns the last-reported vitals for an ME.
func (s *Server) Vitals(me string) (Vitals, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.mes[me]
	if !ok {
		return Vitals{}, false
	}
	return st.LastVitals, true
}

// Handler exposes the REST API:
//
//	POST /v1/register   {"me": ..., "country": ...}
//	POST /v1/status     {"me": ..., "vitals": {...}}
//	GET  /v1/tasks?me=X          -> next queued task (204 if none)
//	POST /v1/results    Result
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ME      string `json:"me"`
			Country string `json:"country"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ME == "" {
			http.Error(w, "bad register", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		if _, ok := s.mes[req.ME]; !ok {
			s.mes[req.ME] = &meState{Country: req.Country}
		}
		s.mes[req.ME].LastSeen = s.clock()
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/status", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ME     string `json:"me"`
			Vitals Vitals `json:"vitals"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad status", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		st, ok := s.mes[req.ME]
		if ok {
			st.LastVitals = req.Vitals
			st.LastSeen = s.clock()
		}
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unknown me", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		me := r.URL.Query().Get("me")
		s.mu.Lock()
		st, ok := s.mes[me]
		var task Task
		var have bool
		if ok && len(st.queue) > 0 {
			task, st.queue = st.queue[0], st.queue[1:]
			have = true
		}
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unknown me", http.StatusNotFound)
			return
		}
		if !have {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(task)
	})
	mux.HandleFunc("POST /v1/results", func(w http.ResponseWriter, r *http.Request) {
		var res Result
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			http.Error(w, "bad result", http.StatusBadRequest)
			return
		}
		res.Uploaded = s.clock()
		s.mu.Lock()
		s.results = append(s.results, res)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
