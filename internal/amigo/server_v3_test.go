package amigo

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"roamsim/internal/rng"
	"roamsim/internal/wire"
)

func v3Testbed(t *testing.T, iso string, opts ...Option) (*Server, *Endpoint, func()) {
	t.Helper()
	fixed := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	srv := NewServer(func() time.Time { return fixed }, opts...)
	hs := httptest.NewServer(srv.Handler())
	ep := NewEndpoint("me-"+iso, hs.URL, world(t).Deployments[iso], rng.New(5))
	ep.Proto = ProtoV3
	return srv, ep, hs.Close
}

// TestV3EndToEnd runs the full register/lease/execute/upload loop over
// the binary protocol and checks the results landed server-side.
func TestV3EndToEnd(t *testing.T) {
	srv, ep, done := v3Testbed(t, "PAK")
	defer done()
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	tasks := []Task{
		{Kind: "speedtest", Config: "esim"},
		{Kind: "dns", Config: "sim"},
		{Kind: "mtr", Target: "WhatsApp", Config: "esim"},
	}
	if _, err := srv.ScheduleBatch("me-PAK", tasks); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		n, err := ep.RunBatch(2)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != len(tasks) {
		t.Fatalf("executed %d tasks, want %d", total, len(tasks))
	}
	rs := srv.Results()
	if len(rs) != len(tasks) {
		t.Fatalf("server retained %d results, want %d", len(rs), len(tasks))
	}
	for _, r := range rs {
		if r.ME != "me-PAK" || r.TaskID == 0 {
			t.Errorf("bad result: %+v", r)
		}
		if r.Uploaded.IsZero() {
			t.Errorf("result %d not stamped", r.TaskID)
		}
		if r.OK && len(r.Payload) == 0 {
			t.Errorf("result %d OK but empty payload", r.TaskID)
		}
	}
}

// TestV3LeaseAckRedelivery checks the ack-cursor semantics survive the
// codec swap: an unacked lease is re-delivered byte-identically.
func TestV3LeaseAckRedelivery(t *testing.T) {
	srv, ep, done := v3Testbed(t, "PAK")
	defer done()
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	ids, err := srv.ScheduleBatch("me-PAK", []Task{
		{Kind: "dns", Config: "esim"}, {Kind: "dns", Config: "sim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := ep.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || first[0].ID != ids[0] {
		t.Fatalf("lease = %+v", first)
	}
	// A second endpoint incarnation that never acked re-leases the same
	// tasks (fresh ack cursor, server redelivers outstanding).
	ep2 := NewEndpoint("me-PAK", ep.BaseURL, ep.Dep, rng.New(6))
	ep2.Proto = ProtoV3
	again, err := ep2.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0] != first[0] || again[1] != first[1] {
		t.Fatalf("redelivery mismatch: %+v vs %+v", again, first)
	}
}

// TestV3UploadIdempotency re-uploads the same batch and expects the
// duplicate to be dropped by the codec-independent idempotency key.
func TestV3UploadIdempotency(t *testing.T) {
	srv, ep, done := v3Testbed(t, "PAK")
	defer done()
	batch := []Result{{TaskID: 7, ME: "me-PAK", Kind: "dns", Config: "esim", OK: true,
		Payload: []byte(`{"rtt_ms":3}`)}}
	if err := ep.Upload(batch); err != nil {
		t.Fatal(err)
	}
	if err := ep.Upload(batch); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Results()); got != 1 {
		t.Fatalf("server retained %d results, want 1 (dedup)", got)
	}
	// The same batch over v2 must also dedup: the key hashes content,
	// not encoding.
	ep.Proto = ProtoV2
	if err := ep.Upload(batch); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Results()); got != 1 {
		t.Fatalf("cross-codec duplicate ingested: %d results", got)
	}
}

// TestV3Backpressure fills the spool with a blocked sink and expects
// 429 + Retry-After on the v3 route, like v2.
func TestV3Backpressure(t *testing.T) {
	block := make(chan struct{})
	sink := &blockingSink{release: block, busy: make(chan struct{})}
	srv, ep, done := v3Testbed(t, "PAK", WithSink(sink), WithSpoolCapacity(1), WithRetryAfter(2*time.Second))
	defer done()
	_ = srv
	// First upload occupies the sink; its spool slot drains.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = ep.Upload([]Result{{TaskID: 1, ME: "me-PAK", Kind: "dns", Config: "esim"}})
	}()
	sink.waitBusy(t)

	// With the sink wedged, fill the spool from a second submitter (it
	// spools its batch, then parks waiting to drain), then try an
	// upload over v3: it must see 429 and the Retry-After hint.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Submit([]Result{{TaskID: 2, ME: "me-PAK"}})
	}()
	waitFor(t, func() bool { return srv.SpoolDepth() == 1 })
	frame := wire.AppendResults(nil, []Result{{TaskID: 3, ME: "me-PAK", Kind: "dns", Config: "sim"}})
	req, _ := http.NewRequest(http.MethodPost, ep.BaseURL+"/v3/results", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
	}
	close(block)
	wg.Wait()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// blockingSink parks the first Append until released, wedging the
// spool behind it.
type blockingSink struct {
	release <-chan struct{}
	busy    chan struct{}
	once    sync.Once
}

func (s *blockingSink) Append(batch []Result) {
	s.once.Do(func() {
		close(s.busy)
		<-s.release
	})
}

func (s *blockingSink) waitBusy(t *testing.T) {
	t.Helper()
	select {
	case <-s.busy:
	case <-time.After(5 * time.Second):
		t.Fatal("sink never engaged")
	}
}

// TestV3RejectsBadRequests covers the negotiation and validation
// surface: wrong content type (415), garbage frames, wrong message
// type, and unknown MEs (404).
func TestV3RejectsBadRequests(t *testing.T) {
	_, ep, done := v3Testbed(t, "PAK")
	defer done()

	post := func(path, ct string, body []byte) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ep.BaseURL+path, bytes.NewReader(body))
		req.Header.Set("Content-Type", ct)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		drainClose(resp)
		return resp
	}

	leaseFrame := wire.AppendLeaseRequest(nil, wire.LeaseRequest{ME: "me-PAK", Max: 2})
	resultFrame := wire.AppendResults(nil, []Result{{TaskID: 1, ME: "me-PAK"}})

	if resp := post("/v3/tasks/lease", "application/json", []byte(`{"me":"me-PAK"}`)); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("JSON to v3 lease: %d, want 415", resp.StatusCode)
	}
	if resp := post("/v3/results", "text/plain", resultFrame); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("wrong content type to v3 results: %d, want 415", resp.StatusCode)
	}
	if resp := post("/v3/tasks/lease", wire.ContentType, []byte("XX garbage")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage frame: %d, want 400", resp.StatusCode)
	}
	if resp := post("/v3/tasks/lease", wire.ContentType, leaseFrame[:len(leaseFrame)-2]); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated frame: %d, want 400", resp.StatusCode)
	}
	// A results frame on the lease route is a type mismatch.
	if resp := post("/v3/tasks/lease", wire.ContentType, resultFrame); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong message type: %d, want 400", resp.StatusCode)
	}
	// Empty ME is invalid even though the frame is well-formed.
	noME := wire.AppendLeaseRequest(nil, wire.LeaseRequest{Max: 2})
	if resp := post("/v3/tasks/lease", wire.ContentType, noME); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing ME: %d, want 400", resp.StatusCode)
	}
	ghost := wire.AppendLeaseRequest(nil, wire.LeaseRequest{ME: "ghost", Max: 2})
	if resp := post("/v3/tasks/lease", wire.ContentType, ghost); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown ME: %d, want 404", resp.StatusCode)
	}
}

// TestV3LeaseClampsMax mirrors the v2 clamp: a huge Max must not drain
// more than maxLeaseBatch tasks in one response.
func TestV3LeaseClampsMax(t *testing.T) {
	srv, ep, done := v3Testbed(t, "PAK")
	defer done()
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	batch := make([]Task, maxLeaseBatch+10)
	for i := range batch {
		batch[i] = Task{Kind: "dns", Config: "esim"}
	}
	if _, err := srv.ScheduleBatch("me-PAK", batch); err != nil {
		t.Fatal(err)
	}
	tasks, err := ep.Lease(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != maxLeaseBatch {
		t.Fatalf("leased %d tasks, want clamp at %d", len(tasks), maxLeaseBatch)
	}
}

// TestWithMaxProtoV2 pins that WithMaxProto(2) leaves the v3 routes
// unmounted.
func TestWithMaxProtoV2(t *testing.T) {
	srv := NewServer(nil, WithMaxProto(2))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	frame := wire.AppendLeaseRequest(nil, wire.LeaseRequest{ME: "me-X", Max: 1})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v3/tasks/lease", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("v3 route with WithMaxProto(2): %d, want 404", resp.StatusCode)
	}
	// The v2 routes still work.
	resp2, err := http.Post(hs.URL+"/v1/register", "application/json",
		strings.NewReader(`{"me":"me-X","country":"PAK"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(resp2)
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("v1 register under WithMaxProto(2): %d", resp2.StatusCode)
	}
}

// TestDetachPayloads pins the slab copy: detached payloads must not
// alias the original buffer.
func TestDetachPayloads(t *testing.T) {
	frame := wire.AppendResults(nil, []Result{
		{TaskID: 1, ME: "m", OK: true, Payload: []byte(`{"a":1}`)},
		{TaskID: 2, ME: "m", Error: "x"},
		{TaskID: 3, ME: "m", OK: true, Payload: []byte(`{"b":2}`)},
	})
	batch, err := wire.NewDecoder().Results(frame[wire.HeaderLen:], nil)
	if err != nil {
		t.Fatal(err)
	}
	detachPayloads(batch)
	for i := range frame {
		frame[i] = 0xee // scribble over the frame buffer
	}
	if string(batch[0].Payload) != `{"a":1}` || string(batch[2].Payload) != `{"b":2}` {
		t.Fatalf("payloads still alias the frame buffer: %q %q", batch[0].Payload, batch[2].Payload)
	}
	if batch[1].Payload != nil {
		t.Fatalf("empty payload grew bytes: %q", batch[1].Payload)
	}
}
