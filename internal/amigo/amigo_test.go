package amigo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/rng"
)

var sharedWorld *airalo.World

func world(t *testing.T) *airalo.World {
	t.Helper()
	if sharedWorld == nil {
		w, err := airalo.Build(21)
		if err != nil {
			t.Fatal(err)
		}
		sharedWorld = w
	}
	return sharedWorld
}

func testbed(t *testing.T, iso string) (*Server, *Endpoint, func()) {
	t.Helper()
	fixed := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	srv := NewServer(func() time.Time { return fixed })
	hs := httptest.NewServer(srv.Handler())
	ep := NewEndpoint("me-"+iso, hs.URL, world(t).Deployments[iso], rng.New(5))
	return srv, ep, hs.Close
}

func TestRegisterAndHeartbeat(t *testing.T) {
	srv, ep, done := testbed(t, "PAK")
	defer done()
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	if got := srv.MEs(); len(got) != 1 || got[0] != "me-PAK" {
		t.Fatalf("MEs = %v", got)
	}
	if err := ep.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	v, ok := srv.Vitals("me-PAK")
	if !ok {
		t.Fatal("vitals missing")
	}
	if v.CQI < 1 || v.CQI > 15 || v.Battery <= 0 {
		t.Errorf("implausible vitals: %+v", v)
	}
	if v.RAT != "4G" && v.RAT != "5G" {
		t.Errorf("RAT = %s", v.RAT)
	}
}

func TestScheduleRequiresRegistration(t *testing.T) {
	srv, _, done := testbed(t, "PAK")
	defer done()
	if _, err := srv.Schedule("ghost", Task{Kind: "speedtest", Config: "esim"}); err == nil {
		t.Error("scheduling to unknown ME should fail")
	}
}

func TestTaskRoundTripAllKinds(t *testing.T) {
	srv, ep, done := testbed(t, "DEU")
	defer done()
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	tasks := []Task{
		{Kind: "speedtest", Config: "esim"},
		{Kind: "speedtest", Config: "sim"},
		{Kind: "mtr", Target: "Google", Config: "esim"},
		{Kind: "mtr", Target: "Facebook", Config: "sim"},
		{Kind: "cdn", Target: "Cloudflare", Config: "esim"},
		{Kind: "dns", Config: "sim"},
		{Kind: "video", Config: "esim"},
	}
	for _, task := range tasks {
		if _, err := srv.Schedule("me-DEU", task); err != nil {
			t.Fatal(err)
		}
	}
	for {
		more, err := ep.RunOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	results := srv.Results()
	if len(results) != len(tasks) {
		t.Fatalf("results = %d, want %d", len(results), len(tasks))
	}
	for i, r := range results {
		if !r.OK {
			t.Errorf("task %d (%s) failed: %s", i, r.Kind, r.Error)
		}
		if len(r.Payload) == 0 {
			t.Errorf("task %d has empty payload", i)
		}
	}
	// Spot-check a payload: the speedtest carries a public IP and caps.
	var st SpeedtestPayload
	if err := json.Unmarshal(results[0].Payload, &st); err != nil {
		t.Fatal(err)
	}
	if st.DownMbps <= 0 || st.PublicIP == "" {
		t.Errorf("bad speedtest payload: %+v", st)
	}
	// And an mtr payload: multiple hops, at least one with an address.
	var mtr MTRPayload
	if err := json.Unmarshal(results[2].Payload, &mtr); err != nil {
		t.Fatal(err)
	}
	if len(mtr.Hops) < 4 {
		t.Errorf("mtr hops = %d", len(mtr.Hops))
	}
	withAddr := 0
	for _, h := range mtr.Hops {
		if h.Addr != "" {
			withAddr++
		}
	}
	if withAddr == 0 {
		t.Error("no responding hops in mtr payload")
	}
}

func TestUnknownTaskKindReported(t *testing.T) {
	srv, ep, done := testbed(t, "PAK")
	defer done()
	ep.Register()
	srv.Schedule("me-PAK", Task{Kind: "teleport", Config: "esim"})
	if _, err := ep.RunOnce(); err != nil {
		t.Fatal(err)
	}
	rs := srv.Results()
	if len(rs) != 1 || rs[0].OK || rs[0].Error == "" {
		t.Errorf("bad error result: %+v", rs)
	}
}

func TestSIMTaskOnWebOnlyCountryFails(t *testing.T) {
	srv, ep, done := testbed(t, "FRA") // web campaign: eSIM only
	defer done()
	ep.Register()
	srv.Schedule("me-FRA", Task{Kind: "speedtest", Config: "sim"})
	if _, err := ep.RunOnce(); err != nil {
		t.Fatal(err)
	}
	rs := srv.Results()
	if rs[0].OK {
		t.Error("SIM task in a web-only country should fail (no physical SIM)")
	}
}

func TestEmptyQueueReturnsNoTask(t *testing.T) {
	_, ep, done := testbed(t, "PAK")
	defer done()
	ep.Register()
	more, err := ep.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if more {
		t.Error("empty queue should report no more tasks")
	}
}

func TestBadRequests(t *testing.T) {
	srv := NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/v1/tasks?me=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown ME tasks: HTTP %d, want 404", resp.StatusCode)
	}
	resp, err = hs.Client().Post(hs.URL+"/v1/register", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("empty register: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestConcurrentEndpoints(t *testing.T) {
	// Several MEs in different countries share one control server, as in
	// the real campaign; results must all arrive and stay attributed.
	fixed := time.Date(2024, 3, 2, 9, 0, 0, 0, time.UTC)
	srv := NewServer(func() time.Time { return fixed })
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	countries := []string{"PAK", "DEU", "THA", "GEO"}
	const tasksPer = 3
	done := make(chan error, len(countries))
	for i, iso := range countries {
		ep := NewEndpoint("me-"+iso, hs.URL, world(t).Deployments[iso], rng.New(int64(100+i)))
		if err := ep.Register(); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < tasksPer; j++ {
			if _, err := srv.Schedule("me-"+iso, Task{Kind: "speedtest", Config: "esim"}); err != nil {
				t.Fatal(err)
			}
		}
		go func(e *Endpoint) {
			for {
				more, err := e.RunOnce()
				if err != nil {
					done <- err
					return
				}
				if !more {
					done <- nil
					return
				}
			}
		}(ep)
	}
	for range countries {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	results := srv.Results()
	if len(results) != len(countries)*tasksPer {
		t.Fatalf("results = %d, want %d", len(results), len(countries)*tasksPer)
	}
	perME := map[string]int{}
	for _, r := range results {
		if !r.OK {
			t.Errorf("failed result: %+v", r)
		}
		perME[r.ME]++
		if r.Uploaded != fixed {
			t.Error("server clock not applied to upload time")
		}
	}
	for _, iso := range countries {
		if perME["me-"+iso] != tasksPer {
			t.Errorf("me-%s results = %d", iso, perME["me-"+iso])
		}
	}
}

func TestMENameWithSpacesSurvivesPolling(t *testing.T) {
	// RunOnce must query-escape the ME name; "vol 7" would otherwise
	// break the /v1/tasks URL.
	srv := NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	ep := NewEndpoint("me PAK 1", hs.URL, world(t).Deployments["PAK"], rng.New(7))
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Schedule("me PAK 1", Task{Kind: "dns", Config: "esim"}); err != nil {
		t.Fatal(err)
	}
	more, err := ep.RunOnce()
	if err != nil || !more {
		t.Fatalf("RunOnce = %v, %v", more, err)
	}
	rs := srv.Results()
	if len(rs) != 1 || rs[0].ME != "me PAK 1" || !rs[0].OK {
		t.Fatalf("results = %+v", rs)
	}
}

func TestLeaseBatchRoundTrip(t *testing.T) {
	srv, ep, done := testbed(t, "PAK")
	defer done()
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	var tasks []Task
	for i := 0; i < 5; i++ {
		tasks = append(tasks, Task{Kind: "dns", Config: "esim"})
	}
	ids, err := srv.ScheduleBatch("me-PAK", tasks)
	if err != nil || len(ids) != 5 {
		t.Fatalf("ScheduleBatch = %v, %v", ids, err)
	}
	first, err := ep.Lease(3)
	if err != nil || len(first) != 3 {
		t.Fatalf("lease = %d tasks, %v", len(first), err)
	}
	if first[0].ID != ids[0] || first[2].ID != ids[2] {
		t.Errorf("lease order: %+v vs ids %v", first, ids)
	}
	rest, err := ep.Lease(10)
	if err != nil || len(rest) != 2 {
		t.Fatalf("second lease = %d tasks, %v", len(rest), err)
	}
	empty, err := ep.Lease(10)
	if err != nil || len(empty) != 0 {
		t.Fatalf("drained lease = %d tasks, %v", len(empty), err)
	}
	var results []Result
	for _, task := range append(first, rest...) {
		results = append(results, ep.Execute(task))
	}
	if err := ep.Upload(results); err != nil {
		t.Fatal(err)
	}
	got := srv.Results()
	if len(got) != 5 {
		t.Fatalf("results = %d, want 5", len(got))
	}
	for _, r := range got {
		if !r.OK {
			t.Errorf("failed result: %+v", r)
		}
	}
}

func TestRunBatchDrainsQueue(t *testing.T) {
	srv, ep, done := testbed(t, "DEU")
	defer done()
	ep.Register()
	for i := 0; i < 7; i++ {
		srv.Schedule("me-DEU", Task{Kind: "speedtest", Config: "esim"})
	}
	total := 0
	for {
		n, err := ep.RunBatch(3)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != 7 || len(srv.Results()) != 7 {
		t.Fatalf("executed %d, results %d, want 7", total, len(srv.Results()))
	}
}

func TestResultsSinceCursor(t *testing.T) {
	srv, ep, done := testbed(t, "PAK")
	defer done()
	ep.Register()
	upload := func(n int) {
		var batch []Result
		for i := 0; i < n; i++ {
			batch = append(batch, Result{ME: "me-PAK", Kind: "dns", Config: "esim", OK: true})
		}
		if err := ep.Upload(batch); err != nil {
			t.Fatal(err)
		}
	}
	upload(3)
	rs, cursor := srv.ResultsSince(0)
	if len(rs) != 3 || cursor != 3 {
		t.Fatalf("ResultsSince(0) = %d results, cursor %d", len(rs), cursor)
	}
	rs, cursor = srv.ResultsSince(cursor)
	if len(rs) != 0 || cursor != 3 {
		t.Fatalf("incremental read = %d results, cursor %d", len(rs), cursor)
	}
	upload(2)
	rs, cursor = srv.ResultsSince(3)
	if len(rs) != 2 || cursor != 5 {
		t.Fatalf("ResultsSince(3) = %d results, cursor %d", len(rs), cursor)
	}
	// Out-of-range cursors clamp instead of panicking.
	if rs, c := srv.ResultsSince(99); len(rs) != 0 || c != 5 {
		t.Fatalf("ResultsSince(99) = %d results, cursor %d", len(rs), c)
	}
	if srv.Cursor() != 5 {
		t.Errorf("Cursor = %d, want 5", srv.Cursor())
	}
}

func TestOversizedBatchRejectedWith429(t *testing.T) {
	srv := NewServer(nil, WithSpoolCapacity(2), WithRetryAfter(3*time.Second))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	batch, _ := json.Marshal([]Result{{ME: "a"}, {ME: "b"}, {ME: "c"}})
	resp, err := hs.Client().Post(hs.URL+"/v2/results", "application/json", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	if len(srv.Results()) != 0 {
		t.Error("rejected batch must not reach the sink")
	}
}

// gateSink blocks Append until its gate closes, simulating a sink that
// cannot keep up.
type gateSink struct {
	entered chan struct{}
	gate    chan struct{}
	inner   *MemorySink
	once    sync.Once
}

func (g *gateSink) Append(batch []Result) {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	g.inner.Append(batch)
}

func TestBackpressureShedsWhenSinkStalls(t *testing.T) {
	sink := &gateSink{entered: make(chan struct{}), gate: make(chan struct{}), inner: NewMemorySink()}
	srv := NewServer(nil, WithSink(sink), WithSpoolCapacity(2), WithRetryAfter(0))
	one := func(me string) []Result { return []Result{{ME: me, OK: true}} }

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // blocks inside the stalled sink, holding the drain lock
		defer wg.Done()
		if err := srv.Submit(append(one("a"), one("b")...)); err != nil {
			t.Errorf("first submit: %v", err)
		}
	}()
	<-sink.entered
	go func() { // parks its batch in the spool, then waits on the drain lock
		defer wg.Done()
		if err := srv.Submit(append(one("c"), one("d")...)); err != nil {
			t.Errorf("second submit: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.SpoolDepth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("spool never filled")
		}
		time.Sleep(time.Millisecond)
	}
	// The spool is full: further uploads are shed, not queued.
	if err := srv.Submit(one("e")); err != ErrSpoolFull {
		t.Fatalf("submit on full spool = %v, want ErrSpoolFull", err)
	}
	close(sink.gate)
	wg.Wait()
	if got := sink.inner.Len(); got != 4 {
		t.Fatalf("sunk results = %d, want 4", got)
	}
	// And read-your-writes holds again once the sink recovers.
	if err := srv.Submit(one("e")); err != nil {
		t.Fatal(err)
	}
	if got := sink.inner.Len(); got != 5 {
		t.Fatalf("results after recovery = %d, want 5", got)
	}
}

func TestEndpointUploadRetriesThrough429(t *testing.T) {
	sink := &gateSink{entered: make(chan struct{}), gate: make(chan struct{}), inner: NewMemorySink()}
	srv := NewServer(nil, WithSink(sink), WithSpoolCapacity(1), WithRetryAfter(0))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	ep := NewEndpoint("me-PAK", hs.URL, world(t).Deployments["PAK"], rng.New(5))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // stalls in the sink
		defer wg.Done()
		srv.Submit([]Result{{ME: "x", OK: true}})
	}()
	<-sink.entered
	go func() { // fills the spool
		defer wg.Done()
		srv.Submit([]Result{{ME: "y", OK: true}})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.SpoolDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("spool never filled")
		}
		time.Sleep(time.Millisecond)
	}
	// Release the sink shortly after the endpoint starts retrying.
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(sink.gate)
	}()
	if err := ep.Upload([]Result{{ME: "me-PAK", Kind: "dns", Config: "esim", OK: true}}); err != nil {
		t.Fatalf("upload through backpressure: %v", err)
	}
	wg.Wait()
	if got := sink.inner.Len(); got != 3 {
		t.Fatalf("results = %d, want 3", got)
	}
}

func TestAdminHandlerScheduleAndResults(t *testing.T) {
	srv := NewServer(nil)
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	mux.Handle("/v2/", srv.Handler())
	mux.Handle("/admin/", srv.AdminHandler())
	hs := httptest.NewServer(mux)
	defer hs.Close()
	ep := NewEndpoint("me-PAK", hs.URL, world(t).Deployments["PAK"], rng.New(5))
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"me":    "me-PAK",
		"tasks": []Task{{Kind: "dns", Config: "esim"}, {Kind: "speedtest", Config: "esim"}},
	})
	resp, err := hs.Client().Post(hs.URL+"/admin/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sched struct {
		TaskIDs []int `json:"task_ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sched); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sched.TaskIDs) != 2 {
		t.Fatalf("task_ids = %v", sched.TaskIDs)
	}
	for {
		n, err := ep.RunBatch(8)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	resp, err = hs.Client().Get(hs.URL + "/admin/results?cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Cursor  int      `json:"cursor"`
		Results []Result `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if page.Cursor != 2 || len(page.Results) != 2 {
		t.Fatalf("page = cursor %d, %d results", page.Cursor, len(page.Results))
	}
	// cursor=-1 peeks at the cursor without copying history.
	resp, err = hs.Client().Get(hs.URL + "/admin/results?cursor=-1")
	if err != nil {
		t.Fatal(err)
	}
	page.Results = nil
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if page.Cursor != 2 || len(page.Results) != 0 {
		t.Fatalf("peek = cursor %d, %d results", page.Cursor, len(page.Results))
	}
}

func TestConcurrentLeaseUploadManyMEs(t *testing.T) {
	// A miniature fleet hammering the sharded registry and spool
	// concurrently; meant to run under -race.
	srv := NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	const mes, tasksPer = 32, 6
	var wg sync.WaitGroup
	for i := 0; i < mes; i++ {
		name := fmt.Sprintf("me-%03d", i)
		srv.Register(name, "PAK")
		var tasks []Task
		for j := 0; j < tasksPer; j++ {
			tasks = append(tasks, Task{Kind: "noop", Config: "esim"})
		}
		if _, err := srv.ScheduleBatch(name, tasks); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			ep := &Endpoint{Name: name, BaseURL: hs.URL, Client: hs.Client()}
			for {
				leased, err := ep.Lease(4)
				if err != nil {
					t.Error(err)
					return
				}
				if len(leased) == 0 {
					return
				}
				var results []Result
				for _, task := range leased {
					results = append(results, Result{TaskID: task.ID, ME: name, Kind: task.Kind, OK: true})
				}
				if err := ep.Upload(results); err != nil {
					t.Error(err)
					return
				}
			}
		}(name)
	}
	wg.Wait()
	if got := len(srv.Results()); got != mes*tasksPer {
		t.Fatalf("results = %d, want %d", got, mes*tasksPer)
	}
	if got := len(srv.MEs()); got != mes {
		t.Fatalf("MEs = %d, want %d", got, mes)
	}
}
