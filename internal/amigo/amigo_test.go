package amigo

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"roamsim/internal/airalo"
	"roamsim/internal/rng"
)

var sharedWorld *airalo.World

func world(t *testing.T) *airalo.World {
	t.Helper()
	if sharedWorld == nil {
		w, err := airalo.Build(21)
		if err != nil {
			t.Fatal(err)
		}
		sharedWorld = w
	}
	return sharedWorld
}

func testbed(t *testing.T, iso string) (*Server, *Endpoint, func()) {
	t.Helper()
	fixed := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	srv := NewServer(func() time.Time { return fixed })
	hs := httptest.NewServer(srv.Handler())
	ep := NewEndpoint("me-"+iso, hs.URL, world(t).Deployments[iso], rng.New(5))
	return srv, ep, hs.Close
}

func TestRegisterAndHeartbeat(t *testing.T) {
	srv, ep, done := testbed(t, "PAK")
	defer done()
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	if got := srv.MEs(); len(got) != 1 || got[0] != "me-PAK" {
		t.Fatalf("MEs = %v", got)
	}
	if err := ep.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	v, ok := srv.Vitals("me-PAK")
	if !ok {
		t.Fatal("vitals missing")
	}
	if v.CQI < 1 || v.CQI > 15 || v.Battery <= 0 {
		t.Errorf("implausible vitals: %+v", v)
	}
	if v.RAT != "4G" && v.RAT != "5G" {
		t.Errorf("RAT = %s", v.RAT)
	}
}

func TestScheduleRequiresRegistration(t *testing.T) {
	srv, _, done := testbed(t, "PAK")
	defer done()
	if _, err := srv.Schedule("ghost", Task{Kind: "speedtest", Config: "esim"}); err == nil {
		t.Error("scheduling to unknown ME should fail")
	}
}

func TestTaskRoundTripAllKinds(t *testing.T) {
	srv, ep, done := testbed(t, "DEU")
	defer done()
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	tasks := []Task{
		{Kind: "speedtest", Config: "esim"},
		{Kind: "speedtest", Config: "sim"},
		{Kind: "mtr", Target: "Google", Config: "esim"},
		{Kind: "mtr", Target: "Facebook", Config: "sim"},
		{Kind: "cdn", Target: "Cloudflare", Config: "esim"},
		{Kind: "dns", Config: "sim"},
		{Kind: "video", Config: "esim"},
	}
	for _, task := range tasks {
		if _, err := srv.Schedule("me-DEU", task); err != nil {
			t.Fatal(err)
		}
	}
	for {
		more, err := ep.RunOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	results := srv.Results()
	if len(results) != len(tasks) {
		t.Fatalf("results = %d, want %d", len(results), len(tasks))
	}
	for i, r := range results {
		if !r.OK {
			t.Errorf("task %d (%s) failed: %s", i, r.Kind, r.Error)
		}
		if len(r.Payload) == 0 {
			t.Errorf("task %d has empty payload", i)
		}
	}
	// Spot-check a payload: the speedtest carries a public IP and caps.
	var st SpeedtestPayload
	if err := json.Unmarshal(results[0].Payload, &st); err != nil {
		t.Fatal(err)
	}
	if st.DownMbps <= 0 || st.PublicIP == "" {
		t.Errorf("bad speedtest payload: %+v", st)
	}
	// And an mtr payload: multiple hops, at least one with an address.
	var mtr MTRPayload
	if err := json.Unmarshal(results[2].Payload, &mtr); err != nil {
		t.Fatal(err)
	}
	if len(mtr.Hops) < 4 {
		t.Errorf("mtr hops = %d", len(mtr.Hops))
	}
	withAddr := 0
	for _, h := range mtr.Hops {
		if h.Addr != "" {
			withAddr++
		}
	}
	if withAddr == 0 {
		t.Error("no responding hops in mtr payload")
	}
}

func TestUnknownTaskKindReported(t *testing.T) {
	srv, ep, done := testbed(t, "PAK")
	defer done()
	ep.Register()
	srv.Schedule("me-PAK", Task{Kind: "teleport", Config: "esim"})
	if _, err := ep.RunOnce(); err != nil {
		t.Fatal(err)
	}
	rs := srv.Results()
	if len(rs) != 1 || rs[0].OK || rs[0].Error == "" {
		t.Errorf("bad error result: %+v", rs)
	}
}

func TestSIMTaskOnWebOnlyCountryFails(t *testing.T) {
	srv, ep, done := testbed(t, "FRA") // web campaign: eSIM only
	defer done()
	ep.Register()
	srv.Schedule("me-FRA", Task{Kind: "speedtest", Config: "sim"})
	if _, err := ep.RunOnce(); err != nil {
		t.Fatal(err)
	}
	rs := srv.Results()
	if rs[0].OK {
		t.Error("SIM task in a web-only country should fail (no physical SIM)")
	}
}

func TestEmptyQueueReturnsNoTask(t *testing.T) {
	_, ep, done := testbed(t, "PAK")
	defer done()
	ep.Register()
	more, err := ep.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if more {
		t.Error("empty queue should report no more tasks")
	}
}

func TestBadRequests(t *testing.T) {
	srv := NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/v1/tasks?me=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown ME tasks: HTTP %d, want 404", resp.StatusCode)
	}
	resp, err = hs.Client().Post(hs.URL+"/v1/register", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("empty register: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestConcurrentEndpoints(t *testing.T) {
	// Several MEs in different countries share one control server, as in
	// the real campaign; results must all arrive and stay attributed.
	fixed := time.Date(2024, 3, 2, 9, 0, 0, 0, time.UTC)
	srv := NewServer(func() time.Time { return fixed })
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	countries := []string{"PAK", "DEU", "THA", "GEO"}
	const tasksPer = 3
	done := make(chan error, len(countries))
	for i, iso := range countries {
		ep := NewEndpoint("me-"+iso, hs.URL, world(t).Deployments[iso], rng.New(int64(100+i)))
		if err := ep.Register(); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < tasksPer; j++ {
			if _, err := srv.Schedule("me-"+iso, Task{Kind: "speedtest", Config: "esim"}); err != nil {
				t.Fatal(err)
			}
		}
		go func(e *Endpoint) {
			for {
				more, err := e.RunOnce()
				if err != nil {
					done <- err
					return
				}
				if !more {
					done <- nil
					return
				}
			}
		}(ep)
	}
	for range countries {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	results := srv.Results()
	if len(results) != len(countries)*tasksPer {
		t.Fatalf("results = %d, want %d", len(results), len(countries)*tasksPer)
	}
	perME := map[string]int{}
	for _, r := range results {
		if !r.OK {
			t.Errorf("failed result: %+v", r)
		}
		perME[r.ME]++
		if r.Uploaded != fixed {
			t.Error("server clock not applied to upload time")
		}
	}
	for _, iso := range countries {
		if perME["me-"+iso] != tasksPer {
			t.Errorf("me-%s results = %d", iso, perME["me-"+iso])
		}
	}
}
