// Package ipaddr implements IPv4 address and prefix arithmetic plus a
// sequential allocator. The simulator assigns every autonomous system a
// set of prefixes and carves host addresses and sub-prefixes out of them,
// mirroring how the paper's analysis maps observed public IPs back to
// prefixes such as Singtel's 202.166.126.0/24.
package ipaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address as a host-order uint32.
type Addr uint32

// MustParse parses a dotted-quad IPv4 address and panics on error.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Parse parses a dotted-quad IPv4 address.
func Parse(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ipaddr: %q is not dotted-quad", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("ipaddr: bad octet %q in %q", p, s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IsPrivate reports whether the address falls in RFC 1918 or CGN
// (RFC 6598, 100.64/10) space. The tomography demarcation step — "first
// public IP marks the PGW" — is built directly on this predicate.
func (a Addr) IsPrivate() bool {
	switch {
	case a>>24 == 10: // 10.0.0.0/8
		return true
	case a>>20 == 0xAC1: // 172.16.0.0/12
		return true
	case a>>16 == 0xC0A8: // 192.168.0.0/16
		return true
	case a>>22 == 0x191: // 100.64.0.0/10 (CGN)
		return true
	}
	return false
}

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Base Addr
	Bits int // prefix length, 0..32
}

// MustParsePrefix parses CIDR notation and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation like "202.166.126.0/24".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipaddr: %q missing /bits", s)
	}
	a, err := Parse(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipaddr: bad prefix length in %q", s)
	}
	p := Prefix{Base: a, Bits: bits}
	if p.Base != p.masked() {
		return Prefix{}, fmt.Errorf("ipaddr: %q has host bits set", s)
	}
	return p, nil
}

func (p Prefix) masked() Addr {
	if p.Bits == 0 {
		return 0
	}
	mask := ^uint32(0) << (32 - p.Bits)
	return Addr(uint32(p.Base) & mask)
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Base, p.Bits) }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - p.Bits) }

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	if p.Bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - p.Bits)
	return uint32(a)&mask == uint32(p.Base)&mask
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Base) || q.Contains(p.Base)
}

// Nth returns the i-th address inside the prefix.
// It panics if i is out of range.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.Size() {
		panic(fmt.Sprintf("ipaddr: index %d out of %s", i, p))
	}
	return Addr(uint32(p.Base) + uint32(i))
}

// Allocator hands out host addresses and aligned sub-prefixes from a
// parent prefix, in order, never twice.
type Allocator struct {
	parent Prefix
	next   uint64 // offset of the next free address
}

// NewAllocator returns an allocator over the given parent prefix.
// Allocation starts at .1 (the network address is skipped) for /31 and
// wider blocks.
func NewAllocator(parent Prefix) *Allocator {
	start := uint64(0)
	if parent.Bits < 31 {
		start = 1
	}
	return &Allocator{parent: parent, next: start}
}

// Parent returns the prefix being allocated from.
func (al *Allocator) Parent() Prefix { return al.parent }

// Remaining returns how many host addresses are still free.
func (al *Allocator) Remaining() uint64 {
	if al.next >= al.parent.Size() {
		return 0
	}
	return al.parent.Size() - al.next
}

// NextAddr allocates the next free host address.
func (al *Allocator) NextAddr() (Addr, error) {
	if al.next >= al.parent.Size() {
		return 0, fmt.Errorf("ipaddr: %s exhausted", al.parent)
	}
	a := al.parent.Nth(al.next)
	al.next++
	return a, nil
}

// MustNextAddr is NextAddr but panics on exhaustion, for static world
// construction.
func (al *Allocator) MustNextAddr() Addr {
	a, err := al.NextAddr()
	if err != nil {
		panic(err)
	}
	return a
}

// NextPrefix allocates the next aligned sub-prefix of the given length.
func (al *Allocator) NextPrefix(bits int) (Prefix, error) {
	if bits < al.parent.Bits || bits > 32 {
		return Prefix{}, fmt.Errorf("ipaddr: /%d not inside %s", bits, al.parent)
	}
	size := uint64(1) << (32 - bits)
	// Align the cursor up to the sub-prefix boundary.
	aligned := (al.next + size - 1) / size * size
	if aligned+size > al.parent.Size() {
		return Prefix{}, fmt.Errorf("ipaddr: %s exhausted for /%d", al.parent, bits)
	}
	al.next = aligned + size
	return Prefix{Base: al.parent.Nth(aligned), Bits: bits}, nil
}

// MustNextPrefix is NextPrefix but panics on failure.
func (al *Allocator) MustNextPrefix(bits int) Prefix {
	p, err := al.NextPrefix(bits)
	if err != nil {
		panic(err)
	}
	return p
}
