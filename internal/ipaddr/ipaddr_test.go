package ipaddr

import (
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "202.166.126.0", "8.8.8.8", "100.64.0.1"} {
		a, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "-1.2.3.4", "a.b.c.d", "01.2.3.4", "1.2.3.4/24"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseStringPropertyRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := Parse(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPrivate(t *testing.T) {
	private := []string{"10.0.0.1", "10.255.255.255", "172.16.0.1", "172.31.255.254", "192.168.1.1", "100.64.0.1", "100.127.255.254"}
	public := []string{"8.8.8.8", "202.166.126.4", "172.15.0.1", "172.32.0.1", "100.63.255.255", "100.128.0.0", "192.167.1.1", "11.0.0.1"}
	for _, s := range private {
		if !MustParse(s).IsPrivate() {
			t.Errorf("%s should be private", s)
		}
	}
	for _, s := range public {
		if MustParse(s).IsPrivate() {
			t.Errorf("%s should be public", s)
		}
	}
}

func TestPrefixParse(t *testing.T) {
	p := MustParsePrefix("202.166.126.0/24")
	if p.Size() != 256 {
		t.Errorf("size = %d", p.Size())
	}
	if !p.Contains(MustParse("202.166.126.77")) {
		t.Error("should contain .77")
	}
	if p.Contains(MustParse("202.166.127.0")) {
		t.Error("should not contain next /24")
	}
	if p.String() != "202.166.126.0/24" {
		t.Errorf("String = %s", p.String())
	}
	if _, err := ParsePrefix("202.166.126.1/24"); err == nil {
		t.Error("host bits set should fail")
	}
	if _, err := ParsePrefix("1.2.3.0/33"); err == nil {
		t.Error("/33 should fail")
	}
	if _, err := ParsePrefix("1.2.3.0"); err == nil {
		t.Error("missing /bits should fail")
	}
}

func TestPrefixZeroBitsContainsAll(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	f := func(v uint32) bool { return p.Contains(Addr(v)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestAllocatorAddrs(t *testing.T) {
	al := NewAllocator(MustParsePrefix("192.0.2.0/29")) // 8 addrs, .1-.7 usable
	var got []string
	for {
		a, err := al.NextAddr()
		if err != nil {
			break
		}
		got = append(got, a.String())
	}
	if len(got) != 7 {
		t.Fatalf("allocated %d addrs, want 7", len(got))
	}
	if got[0] != "192.0.2.1" || got[6] != "192.0.2.7" {
		t.Errorf("range = %s..%s", got[0], got[6])
	}
	if _, err := al.NextAddr(); err == nil {
		t.Error("exhausted allocator should error")
	}
	if al.Remaining() != 0 {
		t.Errorf("Remaining = %d", al.Remaining())
	}
}

func TestAllocatorUniqueAddresses(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/22"))
	seen := map[Addr]bool{}
	for i := 0; i < 1000; i++ {
		a := al.MustNextAddr()
		if seen[a] {
			t.Fatalf("duplicate allocation %s", a)
		}
		if !al.Parent().Contains(a) {
			t.Fatalf("allocated %s outside parent", a)
		}
		seen[a] = true
	}
}

func TestAllocatorPrefixes(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/16"))
	p1 := al.MustNextPrefix(24)
	p2 := al.MustNextPrefix(24)
	if p1.String() != "10.0.1.0/24" { // .0.0/24 skipped: cursor started at .1, aligned up
		t.Errorf("p1 = %s", p1)
	}
	if p2.String() != "10.0.2.0/24" {
		t.Errorf("p2 = %s", p2)
	}
	if p1.Overlaps(p2) {
		t.Error("allocated prefixes overlap")
	}
	// Address allocation continues after the last prefix.
	a := al.MustNextAddr()
	if !a.IsPrivate() || p2.Contains(a) || p1.Contains(a) {
		t.Errorf("follow-up addr %s overlaps allocated prefixes", a)
	}
}

func TestAllocatorPrefixErrors(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/24"))
	if _, err := al.NextPrefix(16); err == nil {
		t.Error("wider-than-parent prefix should fail")
	}
	if _, err := al.NextPrefix(33); err == nil {
		t.Error("/33 should fail")
	}
	if _, err := al.NextPrefix(25); err != nil {
		t.Errorf("first /25: %v", err)
	}
	if _, err := al.NextPrefix(25); err == nil {
		t.Error("second /25 cannot fit (first consumed .128 after cursor alignment)")
	}
}

func TestNthPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range should panic")
		}
	}()
	MustParsePrefix("10.0.0.0/30").Nth(4)
}
