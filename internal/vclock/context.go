package vclock

import (
	"context"
	"time"
)

// SleepCtx sleeps for d on c, returning early with ctx's error if ctx
// is done first. It is the cancellable sleep every migrated wait in the
// fleet uses: on a Virtual clock the caller parks as a registered
// waiter; on any other clock it is a plain timer/ctx select.
func SleepCtx(c Clock, ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if v, ok := c.(*Virtual); ok {
		return v.sleepCtx(ctx, d)
	}
	t := c.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ContextWithTimeout is the clock-aware context.WithTimeout. On a
// Virtual clock it returns a *Ctx whose deadline is a scheduler timer:
// the expiry closes Done and wakes any parker sleeping under the
// context synchronously, inside the same advance that fired it — so a
// watchdog expiry lands at an exact, reproducible virtual instant
// instead of racing a background goroutine. On any other clock it is
// context.WithTimeout.
func ContextWithTimeout(parent context.Context, c Clock, d time.Duration) (context.Context, context.CancelFunc) {
	if v, ok := c.(*Virtual); ok {
		return v.newCtx(parent, d)
	}
	//lint:allow clockpurity ContextWithTimeout IS the sanctioned wrapper; the non-virtual arm delegates to the stdlib
	return context.WithTimeout(parent, d)
}

// Ctx is a context whose deadline lives on a Virtual clock's timeline.
// Err reports context.DeadlineExceeded after the virtual deadline, so
// callers distinguishing watchdog kills via errors.Is keep working
// unchanged on virtual time.
type Ctx struct {
	v      *Virtual
	parent context.Context
	done   chan struct{}

	err   error                // guarded by v.mu
	timer *vtimer              // guarded by v.mu
	subs  map[*parker]struct{} // guarded by v.mu

	// stopParent is set once in newCtx before the context is returned
	// and only read afterwards; it needs no lock.
	stopParent func() bool
}

func (v *Virtual) newCtx(parent context.Context, d time.Duration) (*Ctx, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	c := &Ctx{v: v, parent: parent, done: make(chan struct{}), subs: map[*parker]struct{}{}}
	v.mu.Lock()
	c.timer = v.addTimerLocked(v.now.Add(d), func(Instant) {
		c.cancelLocked(context.DeadlineExceeded)
	})
	v.mu.Unlock()
	if parent.Done() != nil {
		if err := parent.Err(); err != nil {
			v.mu.Lock()
			c.cancelLocked(err)
			v.mu.Unlock()
		} else {
			c.stopParent = context.AfterFunc(parent, func() {
				v.mu.Lock()
				c.cancelLocked(c.parent.Err())
				v.mu.Unlock()
			})
		}
	}
	cancel := func() {
		v.mu.Lock()
		c.cancelLocked(context.Canceled)
		v.mu.Unlock()
		if c.stopParent != nil {
			c.stopParent()
		}
	}
	return c, cancel
}

// cancelLocked settles the context exactly once: record err, drop the
// deadline timer, close Done, and wake every parker subscribed to this
// context — all under v.mu, so a sleeper woken by its watchdog observes
// the error in the same event that fired it.
func (c *Ctx) cancelLocked(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	c.v.stopTimerLocked(c.timer)
	close(c.done)
	for p := range c.subs {
		c.v.wakeLocked(p)
	}
	c.subs = nil
}

// Deadline reports no wall-clock deadline: the real deadline is a
// virtual instant, meaningless as a time.Time. Callers that honor
// deadlines cooperatively still stop via Done.
func (c *Ctx) Deadline() (time.Time, bool) { return time.Time{}, false }

// Done returns the channel closed when the virtual deadline fires, the
// context is canceled, or the parent is done.
func (c *Ctx) Done() <-chan struct{} { return c.done }

// Err returns nil while the context is live, context.DeadlineExceeded
// after the virtual deadline, context.Canceled after cancel, or the
// parent's error if it settled first.
func (c *Ctx) Err() error {
	c.v.mu.Lock()
	defer c.v.mu.Unlock()
	return c.err
}

// errLocked reads the settled error; called with v.mu held.
func (c *Ctx) errLocked() error { return c.err }

// subscribeLocked registers p to be woken when the context settles;
// called with v.mu held.
func (c *Ctx) subscribeLocked(p *parker) { c.subs[p] = struct{}{} }

// unsubscribeLocked drops p's wake subscription; called with v.mu held.
func (c *Ctx) unsubscribeLocked(p *parker) {
	if c.subs != nil {
		delete(c.subs, p)
	}
}

// Value defers to the parent context.
func (c *Ctx) Value(key any) any { return c.parent.Value(key) }

func (c *Ctx) String() string { return "vclock.Ctx" }

// sleepCtx parks the calling registered waiter until d elapses or ctx
// settles, whichever the event schedule reaches first.
func (v *Virtual) sleepCtx(ctx context.Context, d time.Duration) error {
	vc, own := ctx.(*Ctx)
	own = own && vc.v == v

	v.mu.Lock()
	if own {
		if err := vc.errLocked(); err != nil {
			v.mu.Unlock()
			return err
		}
	}
	p := &parker{what: "sleep-ctx", ch: make(chan struct{}, 1)}
	p.until = v.now.Add(d)
	t := v.addTimerLocked(p.until, func(Instant) { v.wakeLocked(p) })
	var stopWatch func() bool
	if own {
		vc.subscribeLocked(p)
	} else {
		// Foreign context: its cancellation is an outside, asynchronous
		// event, so an AfterFunc wake is as deterministic as the input.
		stopWatch = context.AfterFunc(ctx, func() {
			v.mu.Lock()
			v.wakeLocked(p)
			v.mu.Unlock()
		})
	}
	v.parkLocked(p)
	v.mu.Unlock()

	<-p.ch
	if stopWatch != nil {
		stopWatch()
	}
	v.mu.Lock()
	v.stopTimerLocked(t)
	if own {
		vc.unsubscribeLocked(p)
	}
	v.mu.Unlock()
	return ctx.Err()
}
