package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event clock. Time never flows;
// it jumps, and only at quiescence — see the package comment for the
// waiter-registry rule. All state is guarded by mu; timer fire
// callbacks run with mu held and must not block.
type Virtual struct {
	mu      sync.Mutex
	now     Instant         // guarded by mu
	timers  timerHeap       // guarded by mu
	seq     uint64          // guarded by mu; creation order breaks deadline ties
	waiters int             // guarded by mu; registered via Go/Add
	parked  map[*parker]int // guarded by mu; value is the park sequence

	onDeadlock func(string) // guarded by mu; nil = panic

	// stall-guard state (real time, never feeds the virtual timeline)
	activity  uint64 // guarded by mu; bumped on every park/wake/advance
	lastSeen  uint64 // guarded by mu; activity at the previous guard check
	stallStop func() bool
}

// parker is one goroutine blocked in a parking wait. ch has capacity 1
// so a wake never blocks the scheduler; multiple wake sources (timer,
// context) are idempotent because the parker is removed from the
// registry on the first one.
type parker struct {
	what  string  // "sleep", "sleep-ctx", ... for the deadlock dump
	until Instant // the deadline being waited for (-1: none, context-only)
	ch    chan struct{}
}

// vtimer is one pending event. fire runs with the scheduler lock held.
type vtimer struct {
	when Instant
	seq  uint64
	idx  int // heap index; -1 once popped or stopped
	fire func(now Instant)
}

// NewVirtual returns a virtual clock at instant 0 with no waiters.
func NewVirtual() *Virtual {
	return &Virtual{parked: map[*parker]int{}}
}

// Now returns the current virtual instant.
func (v *Virtual) Now() Instant {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Go registers one waiter and then spawns fn — pre-register, then
// spawn, exactly like the rng pre-fork rule: the registration must be
// visible before the goroutine exists, or a quiescence check in the gap
// would advance time without it.
//
// Go is safe but only locally so: when starting a COHORT of waiters
// whose relative timing matters, call Add(n) for the whole cohort
// before spawning any of them — with per-Go registration an early
// waiter can park, complete quiescence, and advance time before the
// later waiters exist, making the advance sequence depend on goroutine
// scheduling.
func (v *Virtual) Go(fn func()) {
	v.Add(1)
	go func() {
		defer v.Done()
		fn()
	}()
}

// Add registers n waiters the scheduler must see parked before it may
// advance time. Call it BEFORE spawning the goroutines it accounts for.
func (v *Virtual) Add(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.waiters += n
	if v.waiters < 0 {
		panic("vclock: negative waiter count (unbalanced Add/Done)")
	}
}

// Done unregisters the calling waiter. If the remaining waiters are all
// parked, the departure itself is the quiescence that advances time.
func (v *Virtual) Done() {
	v.mu.Lock()
	v.waiters--
	if v.waiters < 0 {
		v.mu.Unlock()
		panic("vclock: negative waiter count (unbalanced Add/Done)")
	}
	v.activity++
	v.maybeAdvanceLocked()
	v.mu.Unlock()
}

// Waiters reports the registered and parked waiter counts.
func (v *Virtual) Waiters() (registered, parked int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters, len(v.parked)
}

// Sleep parks the calling waiter for d of virtual time. d <= 0 returns
// immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	p := &parker{what: "sleep", ch: make(chan struct{}, 1)}
	p.until = v.now.Add(d)
	v.addTimerLocked(p.until, func(Instant) { v.wakeLocked(p) })
	v.parkLocked(p)
	v.mu.Unlock()
	<-p.ch
}

// After returns a channel delivering the fire instant d from now.
// Receiving from it does not park the caller (see the Clock docs).
func (v *Virtual) After(d time.Duration) <-chan Instant {
	ch := make(chan Instant, 1)
	v.mu.Lock()
	v.addTimerLocked(v.now.Add(d), func(now Instant) { ch <- now })
	v.mu.Unlock()
	return ch
}

// NewTimer returns a one-shot virtual timer.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	ch := make(chan Instant, 1)
	v.mu.Lock()
	t := v.addTimerLocked(v.now.Add(d), func(now Instant) {
		select {
		case ch <- now:
		default:
		}
	})
	v.mu.Unlock()
	return &Timer{
		C: ch,
		stop: func() bool {
			v.mu.Lock()
			defer v.mu.Unlock()
			return v.stopTimerLocked(t)
		},
		reset: func(d time.Duration) bool {
			v.mu.Lock()
			defer v.mu.Unlock()
			was := v.stopTimerLocked(t)
			t.when = v.now.Add(d)
			t.seq = v.nextSeqLocked()
			heap.Push(&v.timers, t)
			return was
		},
	}
}

// NewTicker returns a repeating virtual ticker.
func (v *Virtual) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	ch := make(chan Instant, 1)
	v.mu.Lock()
	tk := &vticker{v: v, ch: ch, period: d}
	tk.armLocked(v.now.Add(d))
	v.mu.Unlock()
	return &Ticker{
		C: ch,
		stop: func() {
			v.mu.Lock()
			defer v.mu.Unlock()
			if tk.t != nil {
				v.stopTimerLocked(tk.t)
				tk.t = nil
			}
		},
		reset: func(nd time.Duration) {
			if nd <= 0 {
				panic("vclock: non-positive ticker period")
			}
			v.mu.Lock()
			defer v.mu.Unlock()
			if tk.t != nil {
				v.stopTimerLocked(tk.t)
			}
			tk.period = nd
			tk.armLocked(v.now.Add(nd))
		},
	}
}

type vticker struct {
	v      *Virtual
	ch     chan Instant
	period time.Duration
	t      *vtimer // guarded by v.mu
}

// armLocked schedules the next tick; called with v.mu held.
func (tk *vticker) armLocked(when Instant) {
	tk.t = tk.v.addTimerLocked(when, func(now Instant) {
		select {
		case tk.ch <- now:
		default:
		}
		tk.armLocked(now.Add(tk.period))
	})
}

// Advance manually moves time forward by d, firing everything due on
// the way, regardless of waiter state. It is the test-driver entry
// point; fleet code never calls it — quiescence advances time there.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	target := v.now.Add(d)
	for len(v.timers) > 0 && v.timers[0].when <= target {
		v.fireNextLocked()
	}
	if target > v.now {
		v.now = target
	}
	v.activity++
}

// OnDeadlock installs fn as the all-parked-no-timers handler (default:
// panic). The scheduler calls it with the parked-waiter dump; tests
// install a capturing handler, CI wants the panic.
func (v *Virtual) OnDeadlock(fn func(dump string)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.onDeadlock = fn
}

// StallGuard arms a real-time watchdog against the OTHER failure mode,
// the one quiescence cannot see: a registered waiter blocked outside
// the clock (a raw channel receive, a lost HTTP response) while the
// rest of the fleet is parked. No virtual state changes for interval
// after interval means nobody is making progress; onStall (nil =
// panic) gets the same parked-waiter dump a deadlock would. The guard
// reads no virtual time and fires on a stdlib timer, so it cannot
// perturb the event schedule; Stop it (via the returned func) before
// discarding the clock.
func (v *Virtual) StallGuard(interval time.Duration, onStall func(dump string)) (stop func() bool) {
	if onStall == nil {
		onStall = func(dump string) { panic("vclock: stalled: " + dump) }
	}
	var t *time.Timer
	//lint:allow clockpurity the stall guard deliberately runs on the wall clock so it can fire while virtual time is stuck
	t = time.AfterFunc(interval, func() {
		v.mu.Lock()
		stalled := v.waiters > 0 && v.activity == v.lastSeen
		v.lastSeen = v.activity
		dump := v.dumpLocked("stall")
		v.mu.Unlock()
		if stalled {
			onStall(dump)
			return
		}
		t.Reset(interval)
	})
	v.mu.Lock()
	v.stallStop = t.Stop
	v.mu.Unlock()
	return t.Stop
}

// --- internals (all called with v.mu held) ---

func (v *Virtual) nextSeqLocked() uint64 {
	v.seq++
	return v.seq
}

func (v *Virtual) addTimerLocked(when Instant, fire func(Instant)) *vtimer {
	if when < v.now {
		when = v.now
	}
	t := &vtimer{when: when, seq: v.nextSeqLocked(), fire: fire}
	heap.Push(&v.timers, t)
	return t
}

func (v *Virtual) stopTimerLocked(t *vtimer) bool {
	if t.idx < 0 {
		return false
	}
	heap.Remove(&v.timers, t.idx)
	return true
}

// parkLocked marks the caller parked and, if that completes quiescence,
// advances time inline — the last goroutine to park is the scheduler.
func (v *Virtual) parkLocked(p *parker) {
	v.parked[p] = int(v.nextSeqLocked())
	v.activity++
	if len(v.parked) > v.waiters {
		dump := v.dumpLocked("unregistered park")
		// Release the lock before panicking: the unwinding goroutine's
		// deferred Done would otherwise deadlock on v.mu and turn a
		// fail-fast report into a hang.
		v.mu.Unlock()
		panic("vclock: a goroutine parked without registering (Go/Add before spawning — see the package comment)\n" + dump)
	}
	v.maybeAdvanceLocked()
}

// wakeLocked releases p if it is still parked. Idempotent: the timer
// and a context cancellation may both fire in one advance.
func (v *Virtual) wakeLocked(p *parker) {
	if _, ok := v.parked[p]; !ok {
		return
	}
	delete(v.parked, p)
	v.activity++
	p.ch <- struct{}{}
}

// maybeAdvanceLocked is the quiescence check: with every registered
// waiter parked, jump to the earliest pending deadline and fire
// everything due there. Firing wakes parkers (breaking quiescence, so
// the loop exits) or feeds bare channels (quiescence holds, keep
// jumping). All parked with nothing pending is a deadlock.
func (v *Virtual) maybeAdvanceLocked() {
	for v.waiters > 0 && len(v.parked) == v.waiters {
		if len(v.timers) == 0 {
			dump := v.dumpLocked("deadlock")
			if v.onDeadlock != nil {
				fn := v.onDeadlock
				v.onDeadlock = nil // fire once; the handler decides what's next
				v.mu.Unlock()
				fn(dump)
				v.mu.Lock()
				return
			}
			// Unlock before panicking so deferred Done calls on the
			// unwinding stack don't deadlock on v.mu (see parkLocked).
			v.mu.Unlock()
			panic("vclock: deadlock: every registered waiter is parked and no timer is pending\n" + dump)
		}
		v.fireNextLocked()
		v.activity++
	}
}

// fireNextLocked pops every timer due at the earliest deadline and
// fires them in creation order (the heap orders equal deadlines by
// seq), advancing now to that deadline.
func (v *Virtual) fireNextLocked() {
	when := v.timers[0].when
	if when > v.now {
		v.now = when
	}
	for len(v.timers) > 0 && v.timers[0].when == when {
		t := heap.Pop(&v.timers).(*vtimer)
		t.fire(v.now)
	}
}

// dumpLocked renders the scheduler state for deadlock/stall reports.
func (v *Virtual) dumpLocked(kind string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "vclock %s at t=%s: %d registered waiter(s), %d parked, %d pending timer(s)\n",
		kind, v.now.Duration(), v.waiters, len(v.parked), len(v.timers))
	parks := make([]*parker, 0, len(v.parked))
	for p := range v.parked {
		parks = append(parks, p)
	}
	sort.Slice(parks, func(i, j int) bool { return v.parked[parks[i]] < v.parked[parks[j]] })
	for _, p := range parks {
		if p.until < 0 {
			fmt.Fprintf(&b, "  parked: %s (no deadline)\n", p.what)
			continue
		}
		fmt.Fprintf(&b, "  parked: %s until t=%s\n", p.what, p.until.Duration())
	}
	next := append(timerHeap(nil), v.timers...)
	sort.Slice(next, func(i, j int) bool { return next[i].less(next[j]) })
	for i, t := range next {
		if i == 8 {
			fmt.Fprintf(&b, "  ... %d more timer(s)\n", len(next)-i)
			break
		}
		fmt.Fprintf(&b, "  timer #%d at t=%s\n", t.seq, t.when.Duration())
	}
	return b.String()
}

// --- timer heap ---

type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	return h[i].less(h[j])
}
func (t *vtimer) less(o *vtimer) bool {
	if t.when != o.when {
		return t.when < o.when
	}
	return t.seq < o.seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*vtimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}
