// Package vclock is the fleet's injectable clock: one Clock interface
// with two implementations — Real, a thin wrapper over the stdlib used
// by default, and Virtual, a deterministic discrete-event scheduler
// that makes a campaign run as fast as the CPU can drain its event
// queue.
//
// # Why a virtual clock
//
// Campaign wall-clock today is bounded by simulated time executed in
// real goroutine time: netsim-derived task durations (when the fleet
// realizes them), endpoint backoff sleeps and Retry-After waits, chaos
// latency spikes, and straggler watchdogs. None of those waits feeds
// the dataset — the dataset is a pure function of the seed — so a run
// that jumps time instead of sleeping through it must produce
// byte-identical output. That equivalence is proven differentially
// (TestVirtualTimeEquivalence in internal/fleet); this package supplies
// the clock it runs on.
//
// # The waiter-registry quiescence rule
//
// Virtual never polls and never inspects the runtime. Instead every
// goroutine that may wait on the clock is REGISTERED — Go (or
// Add/Done) mirrors the rng pre-fork rule: register before spawning,
// so there is no window in which the scheduler believes the world is
// idle while a registered-to-be goroutine has not started. Virtual
// time advances only at quiescence: when every registered waiter is
// parked in a clock wait (Sleep, SleepCtx, a timeout context), the
// last goroutine to park advances time to the earliest pending
// deadline and fires the timers due there, inline, under the scheduler
// lock. Real work — CPU, loopback HTTP — runs at full speed with time
// standing still; only when the whole fleet is waiting does the clock
// move, and then it moves in one jump.
//
// The corollary discipline: a registered waiter must block on the
// clock only through the parking entry points (Sleep, SleepCtx, a
// Context from ContextWithTimeout). Selecting on a raw After/Timer
// channel does not park — the scheduler would wait forever for a
// quiescence that never comes; the stall guard exists to turn exactly
// that bug into a fast failure with a parked-waiter dump instead of a
// hung CI job.
package vclock

import "time"

// Instant is a point on a Clock's monotonic timeline, in nanoseconds
// since the clock's epoch (construction for Real, zero for Virtual).
// Instants from different clocks are not comparable.
type Instant int64

// Add returns the instant d later.
func (i Instant) Add(d time.Duration) Instant { return i + Instant(d) }

// Sub returns the duration i-o.
func (i Instant) Sub(o Instant) time.Duration { return time.Duration(i - o) }

// Duration returns the instant as a duration since the clock epoch.
func (i Instant) Duration() time.Duration { return time.Duration(i) }

// Clock is time as the fleet sees it. The zero-cost default is the
// wall clock (Real); a Virtual clock makes every wait a discrete event.
type Clock interface {
	// Now returns the current instant on the clock's monotonic timeline.
	Now() Instant
	// Sleep blocks for d. On a Virtual clock the calling goroutine must
	// be a registered waiter; the sleep parks it and quiescence advances
	// time past the deadline.
	Sleep(d time.Duration)
	// After returns a channel that delivers the fire instant once, d
	// from now. On a Virtual clock, receiving from it does NOT park the
	// caller — use it only from select loops that also make progress, or
	// drive time with Advance in tests.
	After(d time.Duration) <-chan Instant
	// NewTimer returns a one-shot timer firing d from now, with
	// time.Timer-like Stop and Reset. The same non-parking caveat as
	// After applies to its channel.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a repeating ticker with period d (which must be
	// positive). The same non-parking caveat as After applies.
	NewTicker(d time.Duration) *Ticker
}

// Timer is a one-shot clock timer. Like time.Timer, C is buffered with
// capacity 1 and a fire on an un-drained channel is dropped.
type Timer struct {
	// C delivers the fire instant.
	C <-chan Instant

	stop  func() bool
	reset func(time.Duration) bool
}

// Stop cancels the timer; it reports whether the timer was still
// pending. Like time.Timer.Stop it does not drain C.
func (t *Timer) Stop() bool { return t.stop() }

// Reset re-arms the timer to fire d from now; it reports whether the
// timer was still pending.
func (t *Timer) Reset(d time.Duration) bool { return t.reset(d) }

// Ticker is a repeating clock timer. Like time.Ticker, C is buffered
// with capacity 1 and ticks are dropped while C is full.
type Ticker struct {
	// C delivers the tick instants.
	C <-chan Instant

	stop  func()
	reset func(time.Duration)
}

// Stop stops the ticker. It does not close C.
func (t *Ticker) Stop() { t.stop() }

// Reset changes the period to d and re-arms from now.
func (t *Ticker) Reset(d time.Duration) { t.reset(d) }
