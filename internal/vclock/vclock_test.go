package vclock

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInstantArithmetic(t *testing.T) {
	var i Instant
	i = i.Add(250 * time.Millisecond)
	if i.Duration() != 250*time.Millisecond {
		t.Fatalf("Add: got %v", i.Duration())
	}
	if d := i.Sub(Instant(50 * time.Millisecond)); d != 200*time.Millisecond {
		t.Fatalf("Sub: got %v", d)
	}
}

// Equal deadlines fire in creation order: the heap breaks ties by seq,
// and fireNextLocked drains the whole deadline group in one advance.
func TestEqualDeadlineOrdering(t *testing.T) {
	v := NewVirtual()
	var order []string
	v.mu.Lock()
	for _, name := range []string{"a", "b", "c"} {
		name := name
		v.addTimerLocked(v.now.Add(10*time.Millisecond), func(Instant) {
			order = append(order, name)
		})
	}
	// A later-created timer at an EARLIER deadline still fires first.
	v.addTimerLocked(v.now.Add(5*time.Millisecond), func(Instant) {
		order = append(order, "early")
	})
	v.mu.Unlock()

	v.Advance(10 * time.Millisecond)
	if got := strings.Join(order, ","); got != "early,a,b,c" {
		t.Fatalf("fire order: got %q, want %q", got, "early,a,b,c")
	}
	if v.Now() != Instant(10*time.Millisecond) {
		t.Fatalf("Now: got %v", v.Now().Duration())
	}
}

// The last goroutine to park advances time; staggered sleeps complete
// at exact instants with no manual Advance.
func TestQuiescenceAdvancesSleeps(t *testing.T) {
	v := NewVirtual()
	var (
		mu    sync.Mutex
		wakes []string
		wg    sync.WaitGroup
	)
	record := func(name string) {
		mu.Lock()
		wakes = append(wakes, fmt.Sprintf("%s@%v", name, v.Now().Duration()))
		mu.Unlock()
	}
	wg.Add(2)
	v.Go(func() {
		defer wg.Done()
		v.Sleep(10 * time.Millisecond)
		record("fast")
		v.Sleep(30 * time.Millisecond) // wakes at t=40ms
		record("fast2")
	})
	v.Go(func() {
		defer wg.Done()
		v.Sleep(25 * time.Millisecond)
		record("slow")
	})
	wg.Wait()

	if now := v.Now(); now != Instant(40*time.Millisecond) {
		t.Fatalf("final instant: got %v, want 40ms", now.Duration())
	}
	mu.Lock()
	defer mu.Unlock()
	want := map[string]bool{"fast@10ms": true, "slow@25ms": true, "fast2@40ms": true}
	if len(wakes) != 3 {
		t.Fatalf("wakes: %v", wakes)
	}
	for _, w := range wakes {
		if !want[w] {
			t.Fatalf("unexpected wake %q in %v", w, wakes)
		}
	}
}

func TestAfterDeliversFireInstant(t *testing.T) {
	v := NewVirtual()
	ch := v.After(15 * time.Millisecond)
	v.Advance(20 * time.Millisecond)
	select {
	case at := <-ch:
		if at != Instant(15*time.Millisecond) {
			t.Fatalf("fire instant: got %v", at.Duration())
		}
	default:
		t.Fatal("After channel empty after Advance past deadline")
	}
	if v.Now() != Instant(20*time.Millisecond) {
		t.Fatalf("Advance target: got %v", v.Now().Duration())
	}
}

func TestTimerStopAndReset(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer: want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop: want false")
	}
	v.Advance(20 * time.Millisecond)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}

	if tm.Reset(5 * time.Millisecond) {
		t.Fatal("Reset of stopped timer: want false")
	}
	v.Advance(5 * time.Millisecond)
	select {
	case at := <-tm.C:
		if at != Instant(25*time.Millisecond) {
			t.Fatalf("reset fire instant: got %v", at.Duration())
		}
	default:
		t.Fatal("reset timer did not fire")
	}
}

// Stop/Reset hammered from many goroutines while time advances: the
// -race build proves the timer hooks are safe, and the heap survives.
func TestTimerStopResetRace(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	timers := make([]*Timer, 8)
	for i := range timers {
		timers[i] = v.NewTimer(time.Duration(i+1) * time.Millisecond)
	}
	for _, tm := range timers {
		tm := tm
		for k := 0; k < 4; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					tm.Reset(time.Duration(j%7+1) * time.Millisecond)
					tm.Stop()
				}
			}()
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			v.Advance(time.Millisecond)
		}
	}()
	wg.Wait()
	v.Advance(time.Second)
	if n := len(v.timers); n != 0 {
		t.Fatalf("timers left in heap after final advance: %d", n)
	}
}

func TestTickerTicksAndReset(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(10 * time.Millisecond)
	for i := 1; i <= 3; i++ {
		v.Advance(10 * time.Millisecond)
		select {
		case at := <-tk.C:
			if want := Instant(time.Duration(i) * 10 * time.Millisecond); at != want {
				t.Fatalf("tick %d at %v, want %v", i, at.Duration(), want.Duration())
			}
		default:
			t.Fatalf("missing tick %d", i)
		}
	}
	tk.Reset(50 * time.Millisecond)
	v.Advance(40 * time.Millisecond)
	select {
	case at := <-tk.C:
		t.Fatalf("tick before reset period elapsed: %v", at.Duration())
	default:
	}
	v.Advance(10 * time.Millisecond)
	select {
	case <-tk.C:
	default:
		t.Fatal("missing tick after Reset period")
	}
	tk.Stop()
	v.Advance(time.Second)
	select {
	case <-tk.C:
		t.Fatal("tick after Stop")
	default:
	}
}

// Parking without registering is the leak the registry exists to catch:
// it must panic with the pre-register-then-spawn pointer, not corrupt
// the quiescence accounting.
func TestUnregisteredParkPanics(t *testing.T) {
	v := NewVirtual()
	got := make(chan string, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				got <- fmt.Sprint(r)
			}
		}()
		v.Sleep(time.Millisecond)
		got <- ""
	}()
	select {
	case msg := <-got:
		if !strings.Contains(msg, "without registering") {
			t.Fatalf("want unregistered-park panic, got %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unregistered park neither panicked nor returned")
	}
}

func TestWaitersAccounting(t *testing.T) {
	v := NewVirtual()
	v.Add(2)
	if reg, parked := v.Waiters(); reg != 2 || parked != 0 {
		t.Fatalf("after Add(2): reg=%d parked=%d", reg, parked)
	}
	v.Done()
	v.Done()
	if reg, _ := v.Waiters(); reg != 0 {
		t.Fatalf("after Done x2: reg=%d", reg)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unbalanced Done: want panic")
			}
		}()
		v.Done()
	}()
}

// All waiters parked with nothing on the heap is a deadlock: the
// handler must get a dump naming the parked waiters, and the default
// must panic on the goroutine that completed quiescence.
func TestDeadlockDumpAndPanic(t *testing.T) {
	t.Run("handler", func(t *testing.T) {
		v := NewVirtual()
		dumps := make(chan string, 1)
		v.OnDeadlock(func(dump string) { dumps <- dump })
		p := &parker{what: "stuck-op", until: -1, ch: make(chan struct{}, 1)}
		v.Add(1)
		go func() {
			defer v.Done()
			v.mu.Lock()
			v.parkLocked(p)
			v.mu.Unlock()
			<-p.ch
		}()
		select {
		case dump := <-dumps:
			for _, want := range []string{"deadlock", "stuck-op", "1 registered waiter(s)"} {
				if !strings.Contains(dump, want) {
					t.Fatalf("dump missing %q:\n%s", want, dump)
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock handler never fired")
		}
		v.mu.Lock()
		v.wakeLocked(p)
		v.mu.Unlock()
	})

	t.Run("default-panics", func(t *testing.T) {
		v := NewVirtual()
		got := make(chan string, 1)
		p := &parker{what: "stuck-op", until: -1, ch: make(chan struct{}, 1)}
		v.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					got <- fmt.Sprint(r)
				}
			}()
			defer v.Done()
			v.mu.Lock()
			v.parkLocked(p) // completes quiescence with an empty heap
			v.mu.Unlock()
			<-p.ch
		}()
		select {
		case msg := <-got:
			if !strings.Contains(msg, "deadlock") {
				t.Fatalf("want deadlock panic, got %q", msg)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock default neither panicked nor returned")
		}
	})
}

// A registered waiter blocked OUTSIDE the clock freezes the timeline
// without tripping the deadlock check; the stall guard catches it on
// real time and reports the same dump.
func TestStallGuard(t *testing.T) {
	v := NewVirtual()
	release := make(chan struct{})
	v.Add(1)
	go func() {
		defer v.Done()
		<-release // blocked off-clock: registered but never parked
	}()
	dumps := make(chan string, 1)
	stop := v.StallGuard(20*time.Millisecond, func(dump string) { dumps <- dump })
	defer stop()
	select {
	case dump := <-dumps:
		if !strings.Contains(dump, "stall") {
			t.Fatalf("dump missing kind: %s", dump)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stall guard never fired")
	}
	close(release)
}

func TestStallGuardSeesProgress(t *testing.T) {
	v := NewVirtual()
	fired := make(chan string, 1)
	stop := v.StallGuard(50*time.Millisecond, func(dump string) { fired <- dump })
	defer stop()
	var wg sync.WaitGroup
	wg.Add(1)
	v.Go(func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			v.Sleep(time.Second) // constant clock activity, zero real waiting
			time.Sleep(10 * time.Millisecond)
		}
	})
	wg.Wait()
	select {
	case dump := <-fired:
		t.Fatalf("stall guard fired on a progressing clock:\n%s", dump)
	default:
	}
}

func TestSleepCtxForeignCancel(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	hold := make(chan struct{})
	v.Add(2) // sleeper + a timeline pin that never parks
	go func() {
		defer v.Done()
		errs <- SleepCtx(v, ctx, time.Hour)
	}()
	go func() {
		defer v.Done()
		<-hold // off-clock: quiescence is impossible, so time stands still
	}()
	defer close(hold)
	// Let the sleeper park, then cancel: the wake must not wait for the
	// hour of virtual time.
	for {
		if _, parked := v.Waiters(); parked == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not wake the sleeper")
	}
	if v.Now() >= Instant(time.Hour) {
		t.Fatalf("cancel advanced time to %v", v.Now().Duration())
	}
}

// A virtual timeout context expires at its exact instant and reports
// DeadlineExceeded, so watchdog-kill detection works unchanged.
func TestContextWithTimeoutVirtualDeadline(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := ContextWithTimeout(context.Background(), v, 30*time.Millisecond)
	defer cancel()
	errs := make(chan error, 1)
	v.Go(func() {
		errs <- SleepCtx(v, ctx, time.Hour)
	})
	err := <-errs
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err: %v", err)
	}
	if v.Now() != Instant(30*time.Millisecond) {
		t.Fatalf("deadline instant: got %v, want 30ms", v.Now().Duration())
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err: %v", ctx.Err())
	}
}

// Sleep deadline exactly equal to the watchdog deadline: both fire in
// the same advance, and the outcome is deterministically the timeout
// (wakes are idempotent; the context settles in the same event group).
func TestContextWithTimeoutEqualDeadlineTie(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := ContextWithTimeout(context.Background(), v, 30*time.Millisecond)
	defer cancel()
	errs := make(chan error, 1)
	v.Go(func() {
		errs <- SleepCtx(v, ctx, 30*time.Millisecond)
	})
	if err := <-errs; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("equal-deadline tie: got %v, want DeadlineExceeded", err)
	}

	// One nanosecond of slack and the sleep wins.
	ctx2, cancel2 := ContextWithTimeout(context.Background(), v, 30*time.Millisecond)
	defer cancel2()
	v.Go(func() {
		errs <- SleepCtx(v, ctx2, 30*time.Millisecond-time.Nanosecond)
	})
	if err := <-errs; err != nil {
		t.Fatalf("shorter sleep under live ctx: got %v", err)
	}
}

func TestContextWithTimeoutCancelAndParent(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := ContextWithTimeout(context.Background(), v, time.Hour)
	cancel()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("after cancel: %v", ctx.Err())
	}

	parent, pcancel := context.WithCancel(context.Background())
	child, ccancel := ContextWithTimeout(parent, v, time.Hour)
	defer ccancel()
	pcancel()
	select {
	case <-child.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancel did not settle the virtual child")
	}
	if !errors.Is(child.Err(), context.Canceled) {
		t.Fatalf("child err: %v", child.Err())
	}
	if _, ok := child.(*Ctx); !ok {
		t.Fatalf("virtual clock returned %T", child)
	}
}

func TestContextWithTimeoutRealClock(t *testing.T) {
	ctx, cancel := ContextWithTimeout(context.Background(), Wall, 10*time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("real-clock timeout never fired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("err: %v", ctx.Err())
	}
}

func TestRealClockBasics(t *testing.T) {
	r := NewReal()
	start := r.Now()
	r.Sleep(5 * time.Millisecond)
	if elapsed := r.Now().Sub(start); elapsed < 5*time.Millisecond {
		t.Fatalf("Sleep too short: %v", elapsed)
	}
	tm := r.NewTimer(time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	tk := r.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C:
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never ticked")
	}
	if err := SleepCtx(r, context.Background(), time.Millisecond); err != nil {
		t.Fatalf("SleepCtx on real clock: %v", err)
	}
}

// The advance sequence is a pure function of the sleep schedule: the
// same mix of sleepers lands on the same final instant every run.
func TestFinalInstantDeterminism(t *testing.T) {
	run := func() Instant {
		v := NewVirtual()
		var wg sync.WaitGroup
		v.Add(32) // whole cohort before any spawn — the Go doc's rule
		for i := 0; i < 32; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer v.Done()
				for j := 0; j < 10; j++ {
					v.Sleep(time.Duration((i*7+j*13)%29+1) * time.Millisecond)
				}
			}()
		}
		wg.Wait()
		return v.Now()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: final instant %v != %v", i, got.Duration(), first.Duration())
		}
	}
}
