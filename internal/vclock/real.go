package vclock

import (
	"sync"
	"time"
)

// Wall is the process-wide Real clock: the default every layer falls
// back to when no clock is injected. Using one shared instance keeps
// Instants from different components comparable.
var Wall = NewReal()

// Real is the wall clock behind the Clock interface: a thin stdlib
// wrapper whose Instants count from the instance's creation. It is the
// one sanctioned place dataset-path code touches real time — which is
// why its few time.* calls carry ROAM001 allow directives instead of
// the packages that use it.
type Real struct {
	epoch time.Time
}

// NewReal returns a wall clock whose epoch is now.
func NewReal() *Real {
	//lint:allow wallclock the Real clock IS the sanctioned wall-clock implementation; everything above it injects a Clock
	return &Real{epoch: time.Now()}
}

// Now returns the wall time as an offset from the clock's epoch.
func (r *Real) Now() Instant {
	//lint:allow wallclock see NewReal: Real is the one place wall time is read
	return Instant(time.Since(r.epoch))
}

// Sleep blocks the goroutine in real time.
func (r *Real) Sleep(d time.Duration) {
	//lint:allow wallclock see NewReal: Real is the one place real sleeps happen
	time.Sleep(d)
}

// After returns a channel delivering the fire instant d from now.
func (r *Real) After(d time.Duration) <-chan Instant {
	ch := make(chan Instant, 1)
	//lint:allow clockpurity see NewReal: Real is the one place wall timers are built
	time.AfterFunc(d, func() { ch <- r.Now() })
	return ch
}

// NewTimer returns a one-shot wall timer. It is built on time.AfterFunc
// rather than time.NewTimer so the channel can carry Instants without a
// forwarding goroutine per timer.
func (r *Real) NewTimer(d time.Duration) *Timer {
	ch := make(chan Instant, 1)
	//lint:allow clockpurity see NewReal: Real is the one place wall timers are built
	t := time.AfterFunc(d, func() {
		select {
		case ch <- r.Now():
		default: // fire on an un-drained channel is dropped, like time.Timer
		}
	})
	return &Timer{
		C:     ch,
		stop:  t.Stop,
		reset: t.Reset,
	}
}

// NewTicker returns a repeating wall ticker.
func (r *Real) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	ch := make(chan Instant, 1)
	var mu sync.Mutex
	period := d
	var t *time.Timer
	mu.Lock() // hold until t is assigned: the first tick may fire at once
	//lint:allow clockpurity see NewReal: Real is the one place wall timers are built
	t = time.AfterFunc(d, func() {
		select {
		case ch <- r.Now():
		default: // ticks are dropped while C is full, like time.Ticker
		}
		mu.Lock()
		t.Reset(period)
		mu.Unlock()
	})
	mu.Unlock()
	return &Ticker{
		C: ch,
		stop: func() {
			mu.Lock()
			t.Stop()
			mu.Unlock()
		},
		reset: func(nd time.Duration) {
			if nd <= 0 {
				panic("vclock: non-positive ticker period")
			}
			mu.Lock()
			period = nd
			t.Reset(nd)
			mu.Unlock()
		},
	}
}
