package airalo

import (
	"testing"

	"roamsim/internal/core"
	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/rng"
)

// TestWorldDeterminism: two builds from the same seed produce identical
// breakout decisions and addressing for identical attach sequences.
func TestWorldDeterminism(t *testing.T) {
	run := func() []string {
		w, err := Build(777)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(5)
		var out []string
		for _, key := range w.DeploymentKeys(false, false) {
			s, err := w.Deployments[key].AttachESIM(src)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, key+"|"+s.PGWAddr.String()+"|"+s.PublicIP.String()+"|"+string(s.Arch))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestDeploymentInvariants checks structural sanity across every
// deployment: caps positive, radio valid, profile/issuer consistent,
// public IPs classifiable, tunnels present exactly for roaming.
func TestDeploymentInvariants(t *testing.T) {
	w := world(t)
	cl := &core.Classifier{Reg: w.Reg}
	src := rng.New(6)
	for key, d := range w.Deployments {
		if d.Spec.ESIMDown <= 0 || d.Spec.ESIMUp <= 0 {
			t.Errorf("%s: non-positive eSIM caps", key)
		}
		if d.Spec.RadioESIM.MeanCQI < 5 || d.Spec.RadioESIM.MeanCQI > 15 {
			t.Errorf("%s: implausible MeanCQI %f", key, d.Spec.RadioESIM.MeanCQI)
		}
		for i := 0; i < 4; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			if s.PublicIP.IsPrivate() {
				t.Errorf("%s: session public IP %s is private", key, s.PublicIP)
			}
			arch, err := cl.ArchOf(s.PublicIP, s.Profile.Issuer, d.VMNO)
			if err != nil {
				t.Errorf("%s: public IP unclassifiable: %v", key, err)
				continue
			}
			if arch != s.Arch {
				t.Errorf("%s: session arch %s but classifier says %s", key, s.Arch, arch)
			}
			roaming := s.Arch == ipx.HR || s.Arch == ipx.IHBO
			if roaming != (s.Tunnel != nil) {
				t.Errorf("%s: tunnel presence (%v) inconsistent with arch %s", key, s.Tunnel != nil, s.Arch)
			}
			// The PGW address belongs to the provider that owns the site.
			if _, ok := s.Provider.Site(s.PGWAddr); !ok {
				t.Errorf("%s: PGW %s not in provider %s's sites", key, s.PGWAddr, s.Provider.Name)
			}
			// Public IP and PGW address resolve to the same AS (the
			// paper's speedtest-vs-traceroute verification step).
			pgwInfo, ok1 := w.Reg.Lookup(s.PGWAddr)
			pubInfo, ok2 := w.Reg.Lookup(s.PublicIP)
			if !ok1 || !ok2 || pgwInfo.AS.Number != pubInfo.AS.Number {
				t.Errorf("%s: PGW AS and public-IP AS differ (%v/%v)", key, pgwInfo.AS, pubInfo.AS)
			}
		}
		if d.Spec.SIMOperator != "" {
			s, err := d.AttachSIM(src)
			if err != nil {
				t.Fatalf("%s SIM: %v", key, err)
			}
			if s.Kind != mno.PhysicalSIM || s.Arch != ipx.Native {
				t.Errorf("%s SIM: kind/arch = %s/%s", key, s.Kind, s.Arch)
			}
			if s.Profile.Issuer.Name != d.Spec.SIMOperator {
				t.Errorf("%s SIM: issuer %s != %s", key, s.Profile.Issuer.Name, d.Spec.SIMOperator)
			}
		}
	}
}

// TestAllSessionsReachAllSPs: every session (both kinds, every country)
// can route to every service provider — no partitioned topology.
func TestAllSessionsReachAllSPs(t *testing.T) {
	w := world(t)
	src := rng.New(7)
	for key, d := range w.Deployments {
		sessions := []*Session{}
		s, err := d.AttachESIM(src)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		if d.SIMProfile != nil {
			s2, err := d.AttachSIM(src)
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s2)
		}
		for _, sess := range sessions {
			for name, sp := range w.SPs {
				edge, err := sp.NearestEdge(sess.Site.Loc)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sess.PathTo(edge.Server); err != nil {
					t.Errorf("%s (%s) cannot reach %s: %v", key, sess.Kind, name, err)
				}
			}
		}
	}
}

// TestPGWAddressesGloballyUnique: no two providers/operators share a PGW
// address; every PGW node's address resolves to its owner's AS.
func TestPGWAddressesGloballyUnique(t *testing.T) {
	w := world(t)
	seen := map[string]string{}
	check := func(owner string, p *ipx.PGWProvider) {
		for _, site := range p.Sites {
			for _, addr := range site.Addrs {
				key := addr.String()
				if prev, dup := seen[key]; dup && prev != owner {
					t.Errorf("PGW %s shared by %s and %s", key, prev, owner)
				}
				seen[key] = owner
				info, ok := w.Reg.Lookup(addr)
				if !ok {
					t.Errorf("PGW %s (owner %s) not in registry", key, owner)
					continue
				}
				if info.AS.Number != p.ASN {
					t.Errorf("PGW %s resolves to %s, owner AS %s", key, info.AS.Number, p.ASN)
				}
			}
		}
	}
	for name, p := range w.Providers {
		check(name, p)
	}
	for name, on := range w.opNetworks {
		check(name, on.provider)
	}
	if len(seen) < 25 {
		t.Errorf("only %d PGW addresses in the world", len(seen))
	}
}

// TestProviderAlternationFrequencies: Play eSIMs alternate roughly
// evenly between Packet Host and OVH (the Table 2 "iterates between"
// observation).
func TestProviderAlternationFrequencies(t *testing.T) {
	w := world(t)
	src := rng.New(8)
	counts := map[string]int{}
	const n = 400
	for i := 0; i < n; i++ {
		s, err := w.Deployments["ESP"].AttachESIM(src)
		if err != nil {
			t.Fatal(err)
		}
		counts[s.Provider.Name]++
	}
	for _, prov := range []string{"Packet Host", "OVH SAS"} {
		f := float64(counts[prov]) / n
		if f < 0.35 || f > 0.65 {
			t.Errorf("%s share = %.2f, want ~0.5", prov, f)
		}
	}
}
