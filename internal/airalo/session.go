package airalo

import (
	"fmt"
	"sort"

	"roamsim/internal/dnssim"
	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/netsim"
	"roamsim/internal/rng"
)

// buildDeployment wires one visited country: UE/radio/SGW nodes, GTP
// chains to each allowed breakout site, and the physical-SIM path.
func (w *World) buildDeployment(spec DeploymentSpec, key string) error {
	country, err := geo.LookupCountry(spec.ISO3)
	if err != nil {
		return err
	}
	city, err := geo.LookupCity(spec.City)
	if err != nil {
		return err
	}
	vmno, ok := w.Operators[spec.VMNOName]
	if !ok {
		return fmt.Errorf("unknown v-MNO %q", spec.VMNOName)
	}
	bmno, ok := w.Operators[spec.BMNOName]
	if !ok {
		return fmt.Errorf("unknown b-MNO %q", spec.BMNOName)
	}
	d := &Deployment{
		Key: key, Spec: spec, Country: country, Loc: city.Loc,
		VMNO: vmno, BMNO: bmno, world: w,
		esimPublicIP: map[string]ipaddr.Addr{},
	}

	// Profiles: the aggregator leases an IMSI block from the issuer once
	// and provisions this deployment's eSIM from it.
	aggregator := "airalo"
	if spec.BMNOName == "emnify" {
		aggregator = "emnify"
	}
	rg, err := leaseOnce(bmno, aggregator)
	if err != nil {
		return err
	}
	d.ESIMProfile = mno.NewProfile("esim-"+key, mno.ESIM, bmno, rg, "internet."+aggregator, aggregator)

	native := spec.BMNOName == spec.VMNOName
	if native {
		d.esimArch = ipx.Native
	} else if len(spec.Breakouts) == 1 && spec.Breakouts[0].Provider == spec.BMNOName {
		d.esimArch = ipx.HR
	} else {
		d.esimArch = ipx.IHBO
	}

	// UE + radio + SGW for the eSIM side.
	d.ueESIM = w.Net.AddNode(netsim.Node{
		Name: "ue-esim-" + key, Kind: netsim.KindUE, Loc: city.Loc,
		Addr: privAddr(10, len(w.Deployments), 0, 2),
	})
	bs := w.Net.AddNode(netsim.Node{
		Name: "bs-esim-" + key, Kind: netsim.KindBaseSta, Loc: city.Loc,
		Addr: privAddr(10, len(w.Deployments), 0, 3),
	})
	w.Net.Connect(d.ueESIM, bs, netsim.Link{DelayMs: radioDelayMs, LossProb: spec.LossESIM, JitterFrac: 0.25})
	d.sgw = w.Net.AddNode(netsim.Node{
		Name: "sgw-" + key, Kind: netsim.KindSGW, Loc: city.Loc,
		Addr: privAddr(10, len(w.Deployments), 0, 4),
	})
	w.Net.Connect(bs, d.sgw, netsim.Link{DelayMs: 0.8})

	if native {
		// Native eSIM: the issuer's own network is the breakout.
		opNet, ok := w.opNetworks[spec.BMNOName]
		if !ok {
			return fmt.Errorf("native issuer %q has no operator network", spec.BMNOName)
		}
		if err := w.buildChain(d, d.sgw, opNet.provider, opNet.provider.Sites[0].City,
			spec.VMNOPrivateHops-2, 0, key+"-native"); err != nil {
			return err
		}
		d.esimOptions = []ipx.AgreementOption{{Provider: opNet.provider, SiteCity: opNet.provider.Sites[0].City, Weight: 1}}
		pub, err := opNet.natAlloc.NextAddr()
		if err != nil {
			return err
		}
		d.esimPublicIP[providerSiteKey(opNet.provider.Name, opNet.provider.Sites[0].City)] = pub
	} else {
		for _, b := range spec.Breakouts {
			bp, ok := w.builtProviders[b.Provider]
			if !ok {
				return fmt.Errorf("unknown PGW provider %q", b.Provider)
			}
			penalty := spec.TunnelPenaltyMs[b.Provider]
			extraVMNO := spec.VMNOPrivateHops - 2
			if err := w.buildChain(d, d.sgw, bp.Provider, b.SiteCity,
				extraVMNO+bp.Provider.PrivateHops, penalty, key+"-"+b.Provider); err != nil {
				return err
			}
			d.esimOptions = append(d.esimOptions, ipx.AgreementOption{
				Provider: bp.Provider, SiteCity: b.SiteCity, Weight: b.Weight,
			})
			pub, err := bp.NATAddr(b.SiteCity)
			if err != nil {
				return err
			}
			d.esimPublicIP[providerSiteKey(b.Provider, b.SiteCity)] = pub
		}
	}

	// Physical SIM side (device campaign only).
	if spec.SIMOperator != "" {
		simOp, ok := w.Operators[spec.SIMOperator]
		if !ok {
			return fmt.Errorf("unknown SIM operator %q", spec.SIMOperator)
		}
		opNet, ok := w.opNetworks[spec.SIMOperator]
		if !ok {
			return fmt.Errorf("SIM operator %q has no network", spec.SIMOperator)
		}
		d.SIMProfile = mno.NewProfile("sim-"+key, mno.PhysicalSIM, simOp, simOp.OwnRange(), "internet", "")
		d.ueSIM = w.Net.AddNode(netsim.Node{
			Name: "ue-sim-" + key, Kind: netsim.KindUE, Loc: city.Loc,
			Addr: privAddr(10, len(w.Deployments), 1, 2),
		})
		bsSIM := w.Net.AddNode(netsim.Node{
			Name: "bs-sim-" + key, Kind: netsim.KindBaseSta, Loc: city.Loc,
			Addr: privAddr(10, len(w.Deployments), 1, 3),
		})
		w.Net.Connect(d.ueSIM, bsSIM, netsim.Link{DelayMs: radioDelayMs, LossProb: spec.LossSIM, JitterFrac: 0.25})
		// The SIM chain runs from the base station through the operator
		// core to every PGW site of the operator.
		for _, site := range opNet.provider.Sites {
			if err := w.buildChainFrom(d, bsSIM, opNet.provider, site.City,
				spec.SIMPrivateHops-1, 0, key+"-sim-"+site.City); err != nil {
				return err
			}
		}
		d.simProvider = opNet.provider
		pub, err := opNet.natAlloc.NextAddr()
		if err != nil {
			return err
		}
		d.simPublicIP = pub
	}

	w.Deployments[key] = d
	return nil
}

// radioDelayMs is the one-way radio access latency baseline.
const radioDelayMs = 14

// buildChain creates a private relay chain from the SGW to every PGW
// node at the given provider site.
func (w *World) buildChain(d *Deployment, from netsim.NodeID, p *ipx.PGWProvider,
	siteCity string, relays int, penaltyMs float64, label string) error {
	return w.buildChainFrom(d, from, p, siteCity, relays, penaltyMs, label)
}

// buildChainFrom lays relay nodes between `from` and the PGWs of the
// site. The tunnel's geographic span is split across the relays so
// propagation delay accumulates hop by hop, as real traceroutes show.
// The peering penalty applies on the first segment (the interconnection
// into the IPX/provider network).
func (w *World) buildChainFrom(d *Deployment, from netsim.NodeID, p *ipx.PGWProvider,
	siteCity string, relays int, penaltyMs float64, label string) error {
	var site *ipx.PGWSite
	for i := range p.Sites {
		if p.Sites[i].City == siteCity {
			site = &p.Sites[i]
			break
		}
	}
	if site == nil {
		return fmt.Errorf("provider %s has no site %q", p.Name, siteCity)
	}
	if relays < 0 {
		relays = 0
	}
	fromLoc := w.Net.Node(from).Loc
	prev := from
	for i := 0; i < relays; i++ {
		// Interpolate relay positions along the SGW->site great circle.
		frac := float64(i+1) / float64(relays+1)
		loc := interpolate(fromLoc, site.Loc, frac)
		link := netsim.Link{}
		if i == 0 {
			link.PeeringPenaltyMs = penaltyMs
		}
		relay := w.Net.AddNode(netsim.Node{
			Name: fmt.Sprintf("rly-%s-%d", label, i),
			Kind: netsim.KindIPXRelay, Loc: loc,
			Addr: privAddr(172, 16+len(w.Deployments), i, int(from)%200+2),
		})
		w.Net.Connect(prev, relay, link)
		prev = relay
	}
	for _, addr := range site.Addrs {
		pgwNode, ok := w.pgwNodes[addr]
		if !ok {
			return fmt.Errorf("no node for PGW %s", addr)
		}
		link := netsim.Link{}
		if relays == 0 {
			link.PeeringPenaltyMs = penaltyMs
		}
		w.Net.Connect(prev, pgwNode, link)
	}
	return nil
}

// interpolate walks fraction frac of the way from a to b via repeated
// midpointing (sufficient accuracy for router placement).
func interpolate(a, b geo.Point, frac float64) geo.Point {
	switch {
	case frac <= 0.26:
		return geo.Midpoint(a, geo.Midpoint(a, b))
	case frac <= 0.51:
		return geo.Midpoint(a, b)
	case frac <= 0.76:
		return geo.Midpoint(geo.Midpoint(a, b), b)
	default:
		return b
	}
}

// privAddr fabricates deterministic RFC1918 addresses for private nodes.
func privAddr(base, a, b, c int) ipaddr.Addr {
	if base == 172 {
		return ipaddr.Addr(uint32(172)<<24 | uint32(16+(a%16))<<16 | uint32(b%256)<<8 | uint32(c%256))
	}
	return ipaddr.Addr(uint32(10)<<24 | uint32(a%256)<<16 | uint32(b%256)<<8 | uint32(c%256))
}

// leasedRanges memoizes the per-issuer aggregator IMSI blocks.
var leasedSuffix = "731"

func leaseOnce(op *mno.Operator, label string) (mno.IMSIRange, error) {
	for _, r := range op.Ranges() {
		if r.Label == label {
			return r, nil
		}
	}
	return op.LeaseRange(leasedSuffix, label)
}

// AttachESIM resolves a fresh eSIM session: the breakout option and PGW
// address are drawn per attachment, reproducing the provider alternation
// the paper observed across measurements.
func (d *Deployment) AttachESIM(src *rng.Source) (*Session, error) {
	bk, err := ipx.PickBreakout(d.esimArch, d.esimOptions, d.BMNO.Name, src)
	if err != nil {
		return nil, err
	}
	pgwNode, ok := d.world.pgwNodes[bk.Addr]
	if !ok {
		return nil, fmt.Errorf("airalo: PGW %s has no node", bk.Addr)
	}
	s := &Session{
		D: d, Kind: mno.ESIM, Profile: d.ESIMProfile, Arch: bk.Arch,
		Provider: bk.Provider, Site: bk.Site, PGWAddr: bk.Addr,
		PGWNode: pgwNode, UE: d.ueESIM,
		PublicIP:    d.esimPublicIP[providerSiteKey(bk.Provider.Name, bk.Site.City)],
		Radio:       d.Spec.RadioESIM,
		DownCapMbps: d.Spec.ESIMDown, UpCapMbps: d.Spec.ESIMUp,
		YouTubeCapMbps: d.Spec.YouTubeCapESIM,
		CDNHitRate:     defaultHit(d.Spec.CDNHitESIM),
	}
	// GTP tunnel for roaming sessions (SGW -> PGW through the chain).
	if bk.Arch == ipx.HR || bk.Arch == ipx.IHBO {
		tun, err := d.world.GTP.Create(d.sgw, pgwNode)
		if err != nil {
			return nil, err
		}
		s.Tunnel = tun
	}
	// DNS: IHBO uses Google anycast (and DoH, the Android default);
	// HR and native resolve inside the issuer's network.
	switch bk.Arch {
	case ipx.IHBO:
		s.DNS = dnssim.Config{Anycast: d.world.GoogleDNS, UseDoH: true}
	default:
		res, ok := d.world.opResolvers[d.BMNO.Name]
		if !ok {
			return nil, fmt.Errorf("airalo: no resolver for issuer %s", d.BMNO.Name)
		}
		s.DNS = dnssim.Config{Resolver: &res, UseDoH: true} // falls back: MNO DNS lacks DoH
	}
	return s, nil
}

// AttachSIM resolves a physical-SIM session (device campaign only).
func (d *Deployment) AttachSIM(src *rng.Source) (*Session, error) {
	if d.SIMProfile == nil {
		return nil, fmt.Errorf("airalo: deployment %s has no physical SIM", d.Key)
	}
	opts := make([]ipx.AgreementOption, 0, len(d.simProvider.Sites))
	for _, site := range d.simProvider.Sites {
		opts = append(opts, ipx.AgreementOption{Provider: d.simProvider, SiteCity: site.City, Weight: float64(len(site.Addrs))})
	}
	bk, err := ipx.PickBreakout(ipx.Native, opts, d.SIMProfile.Issuer.Name, src)
	if err != nil {
		return nil, err
	}
	pgwNode, ok := d.world.pgwNodes[bk.Addr]
	if !ok {
		return nil, fmt.Errorf("airalo: PGW %s has no node", bk.Addr)
	}
	res, ok := d.world.opResolvers[d.SIMProfile.Issuer.Name]
	if !ok {
		return nil, fmt.Errorf("airalo: no resolver for %s", d.SIMProfile.Issuer.Name)
	}
	return &Session{
		D: d, Kind: mno.PhysicalSIM, Profile: d.SIMProfile, Arch: ipx.Native,
		Provider: bk.Provider, Site: bk.Site, PGWAddr: bk.Addr,
		PGWNode: pgwNode, UE: d.ueSIM, PublicIP: d.simPublicIP,
		Radio:       d.Spec.RadioSIM,
		DownCapMbps: d.Spec.SIMDown, UpCapMbps: d.Spec.SIMUp,
		YouTubeCapMbps: d.Spec.YouTubeCapSIM,
		CDNHitRate:     defaultHit(d.Spec.CDNHitSIM),
		DNS:            dnssim.Config{Resolver: &res},
	}, nil
}

func defaultHit(v float64) float64 {
	if v == 0 {
		return 0.95
	}
	return v
}

// PathTo composes the session's pinned private leg (UE -> assigned PGW)
// with the routed public leg (PGW -> target).
func (s *Session) PathTo(target netsim.NodeID) (*netsim.Path, error) {
	private, err := s.D.world.Net.Route(s.UE, s.PGWNode)
	if err != nil {
		return nil, fmt.Errorf("airalo: private leg: %w", err)
	}
	public, err := s.D.world.Net.Route(s.PGWNode, target)
	if err != nil {
		return nil, fmt.Errorf("airalo: public leg: %w", err)
	}
	return netsim.ConcatPaths(private, public)
}

// World returns the world this session lives in.
func (s *Session) World() *World { return s.D.world }

// ResolverNode returns the netsim node of a resolver address.
func (w *World) ResolverNode(addr ipaddr.Addr) (netsim.NodeID, bool) {
	n, ok := w.resolverNodes[addr]
	return n, ok
}

// DeploymentKeys returns deployment keys sorted, optionally filtered to
// a campaign.
func (w *World) DeploymentKeys(web, device bool) []string {
	var out []string
	for key, d := range w.Deployments {
		if key == "EMNIFY" {
			continue
		}
		if (web && d.Spec.InWeb) || (device && d.Spec.InDevice) || (!web && !device) {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// AttachHypotheticalLBO returns an eSIM session as if the v-MNO
// implemented Local Breakout — the evolution path the paper's
// conclusion sketches. Traffic uses the visited operator's own packet
// core and PGWs (the physical-SIM data path) while keeping the eSIM's
// roamer policy caps, isolating the architectural latency effect from
// the commercial throttling. It requires a deployment whose v-MNO has a
// modeled network (the device-campaign countries).
func (d *Deployment) AttachHypotheticalLBO(src *rng.Source) (*Session, error) {
	if d.SIMProfile == nil || d.simProvider == nil {
		return nil, fmt.Errorf("airalo: %s has no modeled v-MNO network for LBO", d.Key)
	}
	s, err := d.AttachSIM(src)
	if err != nil {
		return nil, err
	}
	s.Kind = mno.ESIM
	s.Profile = d.ESIMProfile
	s.Arch = ipx.LBO
	// Roamer policy still applies: LBO changes the path, not the deal.
	s.DownCapMbps, s.UpCapMbps = d.Spec.ESIMDown, d.Spec.ESIMUp
	s.YouTubeCapMbps = d.Spec.YouTubeCapESIM
	s.CDNHitRate = defaultHit(d.Spec.CDNHitESIM)
	s.Radio = d.Spec.RadioESIM
	return s, nil
}
