package airalo

import (
	"fmt"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/ipx"
)

// pgwProviderSpec declares one PGW provider and its sites.
type pgwProviderSpec struct {
	Name        string
	ASN         ipreg.ASN
	Kind        ipreg.OrgKind
	Prefix      string // address space for PGWs and NAT pools
	Policy      ipx.AssignmentPolicy
	PrivateHops int // provider-core private hops between IPX ingress and PGW
	CGNATSilent bool
	Sites       []pgwSiteSpec
}

type pgwSiteSpec struct {
	City    string
	Country string
	NumPGWs int
	// ExplicitAddrs overrides allocation (Singtel's documented
	// 202.166.126.0/24 block).
	ExplicitAddrs []string
}

// pgwProviderSpecs encode the infrastructure of Table 2 plus emnify's
// validation provider. PrivateHops values are tuned so total private
// path lengths land near Figure 7 (OVH reached in ~3 hops, Packet Host
// in 6-7, Singtel HR in ~8 given the visited network's own 2 hops).
var pgwProviderSpecs = []pgwProviderSpec{
	{
		Name: "Singtel", ASN: 45143, Kind: ipreg.KindMNO,
		Prefix: "202.166.126.0/24", Policy: ipx.AssignUniform, PrivateHops: 5,
		Sites: []pgwSiteSpec{{
			City: "Singapore", Country: "SGP", NumPGWs: 4,
			ExplicitAddrs: []string{"202.166.126.4", "202.166.126.12", "202.166.126.35", "202.166.126.77"},
		}},
	},
	{
		Name: "Packet Host", ASN: 54825, Kind: ipreg.KindIPX,
		Prefix: "147.75.0.0/16", Policy: ipx.AssignUniform, PrivateHops: 4,
		CGNATSilent: true,
		Sites: []pgwSiteSpec{
			{City: "Amsterdam", Country: "NLD", NumPGWs: 2},
			{City: "Ashburn", Country: "USA", NumPGWs: 2},
		},
	},
	{
		Name: "OVH SAS", ASN: 16276, Kind: ipreg.KindCloud,
		Prefix: "51.38.0.0/16", Policy: ipx.AssignPerBMNO, PrivateHops: 1,
		Sites: []pgwSiteSpec{
			{City: "Lille", Country: "FRA", NumPGWs: 5},
			{City: "Wattrelos", Country: "FRA", NumPGWs: 1},
		},
	},
	{
		Name: "Wireless Logic", ASN: 51320, Kind: ipreg.KindIPX,
		Prefix: "94.76.0.0/16", Policy: ipx.AssignSticky, PrivateHops: 3,
		Sites: []pgwSiteSpec{{City: "London", Country: "GBR", NumPGWs: 2}},
	},
	{
		Name: "Webbing USA", ASN: 393559, Kind: ipreg.KindIPX,
		Prefix: "158.51.0.0/16", Policy: ipx.AssignUniform, PrivateHops: 3,
		Sites: []pgwSiteSpec{
			{City: "Amsterdam", Country: "NLD", NumPGWs: 1},
			{City: "Dallas", Country: "USA", NumPGWs: 1},
		},
	},
	{
		Name: "Amazon.com, Inc.", ASN: 16509, Kind: ipreg.KindCloud,
		Prefix: "3.248.0.0/16", Policy: ipx.AssignUniform, PrivateHops: 2,
		Sites: []pgwSiteSpec{{City: "Dublin", Country: "IRL", NumPGWs: 2}},
	},
}

// builtProvider bundles the ipx provider with its allocators for NAT
// pools (used to hand out device public IPs per site).
type builtProvider struct {
	Provider *ipx.PGWProvider
	// natAlloc allocates device-visible public addresses per site city.
	natAlloc map[string]*ipaddr.Allocator
}

// buildProviders creates the PGW providers and registers their address
// space. Each site's PGW addresses and NAT pool are registered at the
// site's city, so ipinfo-style lookups geolocate breakouts correctly.
func buildProviders(reg *ipreg.Registry) (map[string]*builtProvider, error) {
	out := make(map[string]*builtProvider)
	for _, spec := range pgwProviderSpecs {
		if _, dup := out[spec.Name]; dup {
			return nil, fmt.Errorf("airalo: duplicate provider %s", spec.Name)
		}
		// Singtel's AS is already registered by buildOperators; providers
		// like Packet Host register theirs here.
		if _, ok := reg.LookupAS(spec.ASN); !ok {
			reg.RegisterAS(ipreg.AS{Number: spec.ASN, Org: spec.Name, Country: firstSiteCountry(spec), Kind: spec.Kind})
		}
		parent, err := ipaddr.ParsePrefix(spec.Prefix)
		if err != nil {
			return nil, fmt.Errorf("airalo: provider %s: %w", spec.Name, err)
		}
		alloc := ipaddr.NewAllocator(parent)
		p := &ipx.PGWProvider{
			Name: spec.Name, ASN: spec.ASN, Policy: spec.Policy,
			PrivateHops: spec.PrivateHops, CGNATSilent: spec.CGNATSilent,
		}
		bp := &builtProvider{Provider: p, natAlloc: map[string]*ipaddr.Allocator{}}
		for _, siteSpec := range spec.Sites {
			city, err := geo.LookupCity(siteSpec.City)
			if err != nil {
				return nil, fmt.Errorf("airalo: provider %s: %w", spec.Name, err)
			}
			site := ipx.PGWSite{City: city.Name, Country: siteSpec.Country, Loc: city.Loc}
			if len(siteSpec.ExplicitAddrs) > 0 {
				// The whole parent prefix geolocates at this site.
				reg.MustRegisterPrefix(parent, spec.ASN, city.Name, siteSpec.Country, city.Loc)
				for _, s := range siteSpec.ExplicitAddrs {
					site.Addrs = append(site.Addrs, ipaddr.MustParse(s))
				}
				bp.natAlloc[city.Name] = alloc
			} else {
				sitePrefix, err := alloc.NextPrefix(24)
				if err != nil {
					return nil, fmt.Errorf("airalo: provider %s site %s: %w", spec.Name, siteSpec.City, err)
				}
				reg.MustRegisterPrefix(sitePrefix, spec.ASN, city.Name, siteSpec.Country, city.Loc)
				siteAlloc := ipaddr.NewAllocator(sitePrefix)
				for i := 0; i < siteSpec.NumPGWs; i++ {
					site.Addrs = append(site.Addrs, siteAlloc.MustNextAddr())
				}
				bp.natAlloc[city.Name] = siteAlloc
			}
			p.Sites = append(p.Sites, site)
		}
		out[spec.Name] = bp
	}
	// OVH pins issuers to address subsets (Section 4.3.2): Telna Mobile
	// always lands on one Lille address, Play rotates over the rest.
	ovh := out["OVH SAS"].Provider
	lille := ovh.Sites[0]
	ovh.Assignments = map[string][]ipaddr.Addr{
		"Telna Mobile": {lille.Addrs[0]},
		"Play":         append(append([]ipaddr.Addr(nil), lille.Addrs[1:]...), ovh.Sites[1].Addrs...),
	}
	return out, nil
}

func firstSiteCountry(spec pgwProviderSpec) string {
	if len(spec.Sites) > 0 {
		return spec.Sites[0].Country
	}
	return "USA"
}

// NATAddr allocates a device-visible public IP at a provider site — the
// address a speedtest or web campaign logs for the session.
func (bp *builtProvider) NATAddr(city string) (ipaddr.Addr, error) {
	al, ok := bp.natAlloc[city]
	if !ok {
		return 0, fmt.Errorf("airalo: provider %s has no NAT pool in %s", bp.Provider.Name, city)
	}
	return al.NextAddr()
}
