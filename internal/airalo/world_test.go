package airalo

import (
	"testing"

	"roamsim/internal/core"
	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/rng"
)

// buildWorld is shared across tests (construction is the expensive part).
var sharedWorld *World

func world(t *testing.T) *World {
	t.Helper()
	if sharedWorld == nil {
		w, err := Build(1)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		sharedWorld = w
	}
	return sharedWorld
}

func TestBuildInventory(t *testing.T) {
	w := world(t)
	if len(w.Deployments) != 25 { // 24 countries + emnify validation
		t.Errorf("deployments = %d, want 25", len(w.Deployments))
	}
	if got := len(w.DeploymentKeys(false, true)); got != 10 {
		t.Errorf("device campaign countries = %d, want 10", got)
	}
	if got := len(w.DeploymentKeys(true, false)); got != 14 {
		t.Errorf("web campaign countries = %d, want 14", got)
	}
	if got := len(w.DeploymentKeys(false, false)); got != 24 {
		t.Errorf("total visited countries = %d, want 24", got)
	}
	for _, name := range []string{"Singtel", "Packet Host", "OVH SAS", "Wireless Logic", "Webbing USA"} {
		if _, ok := w.Providers[name]; !ok {
			t.Errorf("missing PGW provider %s", name)
		}
	}
	for _, name := range []string{"Google", "Facebook", "Ookla", "Cloudflare", "Google DNS"} {
		if _, ok := w.SPs[name]; !ok {
			t.Errorf("missing SP %s", name)
		}
	}
	if len(w.CDNs) != 5 {
		t.Errorf("CDNs = %d, want 5", len(w.CDNs))
	}
}

// TestTable2GroundTruth re-derives Table 2: for each roaming deployment,
// the classifier must assign the architecture and PGW provider/country
// the paper reports, from the session's public IP alone.
func TestTable2GroundTruth(t *testing.T) {
	w := world(t)
	cl := &core.Classifier{Reg: w.Reg}
	src := rng.New(2)

	type want struct {
		arch      ipx.Architecture
		providers map[string]bool // allowed PGW provider orgs
		countries map[string]bool // allowed PGW countries
	}
	cases := map[string]want{
		// Singtel HR block.
		"ARE": {ipx.HR, map[string]bool{"Singtel": true}, map[string]bool{"SGP": true}},
		"JPN": {ipx.HR, map[string]bool{"Singtel": true}, map[string]bool{"SGP": true}},
		"PAK": {ipx.HR, map[string]bool{"Singtel": true}, map[string]bool{"SGP": true}},
		"MYS": {ipx.HR, map[string]bool{"Singtel": true}, map[string]bool{"SGP": true}},
		"CHN": {ipx.HR, map[string]bool{"Singtel": true}, map[string]bool{"SGP": true}},
		// Play IHBO block.
		"GBR": {ipx.IHBO, map[string]bool{"Packet Host": true, "OVH SAS": true}, map[string]bool{"NLD": true, "FRA": true}},
		"DEU": {ipx.IHBO, map[string]bool{"Packet Host": true, "OVH SAS": true}, map[string]bool{"NLD": true, "FRA": true}},
		"GEO": {ipx.IHBO, map[string]bool{"Packet Host": true, "OVH SAS": true}, map[string]bool{"NLD": true, "FRA": true}},
		"ESP": {ipx.IHBO, map[string]bool{"Packet Host": true, "OVH SAS": true}, map[string]bool{"NLD": true, "FRA": true}},
		// Telna Mobile IHBO block.
		"QAT": {ipx.IHBO, map[string]bool{"Packet Host": true, "OVH SAS": true}, map[string]bool{"NLD": true, "FRA": true}},
		"SAU": {ipx.IHBO, map[string]bool{"Packet Host": true}, map[string]bool{"NLD": true}},
		"TUR": {ipx.IHBO, map[string]bool{"Packet Host": true, "OVH SAS": true}, map[string]bool{"NLD": true, "FRA": true}},
		"EGY": {ipx.IHBO, map[string]bool{"Packet Host": true, "OVH SAS": true}, map[string]bool{"NLD": true, "FRA": true}},
		// Telecom Italia -> Wireless Logic (GBR).
		"MDA": {ipx.IHBO, map[string]bool{"Wireless Logic": true}, map[string]bool{"GBR": true}},
		"KEN": {ipx.IHBO, map[string]bool{"Wireless Logic": true}, map[string]bool{"GBR": true}},
		"FIN": {ipx.IHBO, map[string]bool{"Wireless Logic": true}, map[string]bool{"GBR": true}},
		"AZE": {ipx.IHBO, map[string]bool{"Wireless Logic": true}, map[string]bool{"GBR": true}},
		// Orange -> Webbing (NLD / USA).
		"ITA": {ipx.IHBO, map[string]bool{"Webbing USA": true}, map[string]bool{"NLD": true}},
		"USA": {ipx.IHBO, map[string]bool{"Webbing USA": true}, map[string]bool{"USA": true}},
		// Polkomtel -> Packet Host Virginia.
		"FRA": {ipx.IHBO, map[string]bool{"Packet Host": true}, map[string]bool{"USA": true}},
		"UZB": {ipx.IHBO, map[string]bool{"Packet Host": true}, map[string]bool{"USA": true}},
		// Native.
		"KOR": {ipx.Native, nil, nil},
		"MDV": {ipx.Native, nil, nil},
		"THA": {ipx.Native, nil, nil},
	}
	for iso, wantRow := range cases {
		d := w.Deployments[iso]
		if d == nil {
			t.Fatalf("missing deployment %s", iso)
		}
		// Attach several times: alternating providers must stay within
		// the allowed sets.
		for i := 0; i < 8; i++ {
			s, err := d.AttachESIM(src)
			if err != nil {
				t.Fatalf("%s attach: %v", iso, err)
			}
			got, err := cl.Classify(s.PublicIP, d.BMNO, d.VMNO)
			if err != nil {
				t.Fatalf("%s classify: %v", iso, err)
			}
			if got.Arch != wantRow.arch {
				t.Fatalf("%s: arch = %s, want %s", iso, got.Arch, wantRow.arch)
			}
			if wantRow.providers != nil && !wantRow.providers[got.PGWAS.Org] {
				t.Fatalf("%s: PGW provider = %s, want one of %v", iso, got.PGWAS.Org, wantRow.providers)
			}
			if wantRow.countries != nil && !wantRow.countries[got.PGWCountry] {
				t.Fatalf("%s: PGW country = %s, want one of %v", iso, got.PGWCountry, wantRow.countries)
			}
		}
	}
}

func TestSessionPathsRouteToAllSPs(t *testing.T) {
	w := world(t)
	src := rng.New(3)
	for _, key := range []string{"PAK", "DEU", "KOR", "USA"} {
		d := w.Deployments[key]
		s, err := d.AttachESIM(src)
		if err != nil {
			t.Fatal(err)
		}
		for spName, sp := range w.SPs {
			edge, err := sp.NearestEdge(s.Site.Loc)
			if err != nil {
				t.Fatal(err)
			}
			p, err := s.PathTo(edge.Server)
			if err != nil {
				t.Fatalf("%s -> %s: %v", key, spName, err)
			}
			if p.Hops() < 3 {
				t.Errorf("%s -> %s: implausibly short path (%d hops)", key, spName, p.Hops())
			}
			// The path must pass through the assigned PGW.
			var sawPGW bool
			for _, n := range p.Nodes {
				if n.ID == s.PGWNode {
					sawPGW = true
				}
			}
			if !sawPGW {
				t.Errorf("%s -> %s: path bypassed the assigned PGW", key, spName)
			}
		}
	}
}

func TestTracerouteDemarcationPAK(t *testing.T) {
	w := world(t)
	src := rng.New(4)
	d := w.Deployments["PAK"]
	esim, err := d.AttachESIM(src)
	if err != nil {
		t.Fatal(err)
	}
	google := w.SPs["Google"]
	edge, _ := google.NearestEdge(esim.Site.Loc)
	p, err := esim.PathTo(edge.Server)
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Net.Traceroute(p, src)
	pa, err := core.Demarcate(tr, w.Reg)
	if err != nil {
		t.Fatal(err)
	}
	if pa.PGW.AS.Number != 45143 || pa.PGW.Country != "SGP" {
		t.Errorf("eSIM PGW = %s/%s, want Singtel/SGP", pa.PGW.AS.Number, pa.PGW.Country)
	}
	if pa.PrivateHops < 5 {
		t.Errorf("HR eSIM private hops = %d, want >= 5", pa.PrivateHops)
	}
	// Physical SIM: much shorter private path, local PGW.
	sim, err := d.AttachSIM(src)
	if err != nil {
		t.Fatal(err)
	}
	edgeSIM, _ := google.NearestEdge(d.Loc)
	pSIM, err := sim.PathTo(edgeSIM.Server)
	if err != nil {
		t.Fatal(err)
	}
	paSIM, err := core.Demarcate(w.Net.Traceroute(pSIM, src), w.Reg)
	if err != nil {
		t.Fatal(err)
	}
	if paSIM.PGW.AS.Number != 45669 {
		t.Errorf("SIM PGW AS = %s, want Jazz AS45669", paSIM.PGW.AS.Number)
	}
	if paSIM.PrivateHops >= pa.PrivateHops {
		t.Errorf("SIM private hops (%d) must be below eSIM's (%d)", paSIM.PrivateHops, pa.PrivateHops)
	}
	// Jazz's public path crosses its transit carriers: >= 3 unique ASNs.
	if paSIM.UniqueASNs < 3 {
		t.Errorf("Jazz public path ASNs = %d, want >= 3 (LINKdotNET, Transworld, Google)", paSIM.UniqueASNs)
	}
}

// TestEmnifyValidation is the Section 4.3.1 methodology check: the
// demarcation must identify AS16509 (Amazon) in Dublin, matching the
// operator-confirmed ground truth.
func TestEmnifyValidation(t *testing.T) {
	w := world(t)
	src := rng.New(5)
	d := w.Deployments["EMNIFY"]
	s, err := d.AttachESIM(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, spName := range []string{"Google", "Facebook"} {
		edge, _ := w.SPs[spName].NearestEdge(s.Site.Loc)
		p, err := s.PathTo(edge.Server)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := core.Demarcate(w.Net.Traceroute(p, src), w.Reg)
		if err != nil {
			t.Fatal(err)
		}
		if pa.PGW.AS.Number != 16509 {
			t.Errorf("%s: PGW AS = %s, want AS16509", spName, pa.PGW.AS.Number)
		}
		if pa.PGW.City != "Dublin" {
			t.Errorf("%s: PGW city = %s, want Dublin", spName, pa.PGW.City)
		}
	}
}

func TestHRTunnelSpans(t *testing.T) {
	w := world(t)
	src := rng.New(6)
	// UAE and Pakistan HR tunnels terminate in Singapore: spans must
	// roughly match geography (Figure 3's long solid lines).
	for iso, wantMin := range map[string]float64{"ARE": 5000, "PAK": 4000} {
		s, err := w.Deployments[iso].AttachESIM(src)
		if err != nil {
			t.Fatal(err)
		}
		if s.Tunnel == nil {
			t.Fatalf("%s: HR session must have a GTP tunnel", iso)
		}
		if span := s.Tunnel.SpanKm(); span < wantMin || span > 8000 {
			t.Errorf("%s tunnel span = %.0f km", iso, span)
		}
	}
	// Native sessions carry no roaming tunnel.
	s, _ := w.Deployments["THA"].AttachESIM(src)
	if s.Tunnel != nil {
		t.Error("native eSIM must not have a roaming tunnel")
	}
}

func TestUAEBeatsPakistanToSingtelPGW(t *testing.T) {
	w := world(t)
	src := rng.New(7)
	rtt := func(iso string) float64 {
		var sum float64
		const n = 30
		for i := 0; i < n; i++ {
			s, err := w.Deployments[iso].AttachESIM(src)
			if err != nil {
				t.Fatal(err)
			}
			p, err := s.PathTo(s.PGWNode)
			if err != nil {
				t.Fatal(err)
			}
			sum += w.Net.RTTms(p, src)
		}
		return sum / n
	}
	uae, pak := rtt("ARE"), rtt("PAK")
	if uae >= pak {
		t.Errorf("UAE RTT to Singtel PGW (%.1f) should beat Pakistan's (%.1f) despite longer distance", uae, pak)
	}
}

func TestOVHPinningInWorld(t *testing.T) {
	w := world(t)
	src := rng.New(8)
	// Qatar (Telna) must always hit the same OVH address when it lands
	// on OVH; Play eSIMs never use that address.
	var qatarOVH = map[string]bool{}
	var playOVH = map[string]bool{}
	for i := 0; i < 300; i++ {
		sq, err := w.Deployments["QAT"].AttachESIM(src)
		if err != nil {
			t.Fatal(err)
		}
		if sq.Provider.Name == "OVH SAS" {
			qatarOVH[sq.PGWAddr.String()] = true
		}
		sg, err := w.Deployments["DEU"].AttachESIM(src)
		if err != nil {
			t.Fatal(err)
		}
		if sg.Provider.Name == "OVH SAS" {
			playOVH[sg.PGWAddr.String()] = true
		}
	}
	if len(qatarOVH) != 1 {
		t.Errorf("Qatar used %d OVH addresses, want exactly 1 (pinned)", len(qatarOVH))
	}
	for addr := range qatarOVH {
		if playOVH[addr] {
			t.Errorf("Play eSIM reused Telna's pinned OVH address %s", addr)
		}
	}
	if len(playOVH) < 3 {
		t.Errorf("Play rotated over %d OVH addresses, want several", len(playOVH))
	}
}

func TestProfilesAndIMSIs(t *testing.T) {
	w := world(t)
	for key, d := range w.Deployments {
		if d.ESIMProfile == nil || !d.ESIMProfile.IMSI.Valid() {
			t.Errorf("%s: bad eSIM profile", key)
		}
		if d.ESIMProfile.Issuer != d.BMNO {
			t.Errorf("%s: eSIM issuer mismatch", key)
		}
		if d.Spec.SIMOperator != "" {
			if d.SIMProfile == nil || d.SIMProfile.Kind != mno.PhysicalSIM {
				t.Errorf("%s: bad SIM profile", key)
			}
		}
	}
	// Airalo profiles across a shared b-MNO come from one leased range.
	deu := w.Deployments["DEU"].ESIMProfile
	esp := w.Deployments["ESP"].ESIMProfile
	if deu.IMSI[:8] != esp.IMSI[:8] {
		t.Errorf("Play eSIMs should share the leased prefix: %s vs %s", deu.IMSI, esp.IMSI)
	}
}

func TestDNSConfigPerArchitecture(t *testing.T) {
	w := world(t)
	src := rng.New(9)
	ihbo, _ := w.Deployments["DEU"].AttachESIM(src)
	if ihbo.DNS.Anycast == nil {
		t.Error("IHBO eSIM must use Google anycast DNS")
	}
	hr, _ := w.Deployments["PAK"].AttachESIM(src)
	if hr.DNS.Resolver == nil || hr.DNS.Resolver.ASN != 45143 {
		t.Error("HR eSIM must use the Singtel resolver")
	}
	sim, _ := w.Deployments["PAK"].AttachSIM(src)
	if sim.DNS.Resolver == nil || sim.DNS.Resolver.ASN != 45669 {
		t.Error("Jazz SIM must use the Jazz resolver")
	}
	// IHBO DNS lands in the PGW's country.
	effective, err := ihbo.DNS.Effective(ihbo.Site.Loc)
	if err != nil {
		t.Fatal(err)
	}
	if !ihbo.DNS.UseDoH {
		t.Error("IHBO eSIM should have DoH enabled (the Android default)")
	}
	if effective.Country != ihbo.Site.Country {
		t.Errorf("anycast resolver in %s, PGW in %s", effective.Country, ihbo.Site.Country)
	}
}
