package airalo

import (
	"fmt"
	"sort"

	"roamsim/internal/dnssim"
	"roamsim/internal/geo"
	"roamsim/internal/inet"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/ipx"
	"roamsim/internal/netsim"
)

// googleDNSCities hosts Google public DNS resolver instances; Tulsa and
// Fort Worth reproduce the US-eSIM anycast observations of Section 5.1.
var googleDNSCities = []string{
	"Amsterdam", "Frankfurt", "London", "Paris", "Madrid", "Warsaw",
	"Singapore", "Tokyo", "Mumbai", "Dubai", "Istanbul", "Nairobi",
	"Ashburn", "Tulsa", "Fort Worth", "Seoul", "Bangkok", "Lille",
}

// buildGoogleDNS creates the Google public DNS anycast deployment.
func (w *World) buildGoogleDNS() error {
	sp, err := w.inetB.AddServiceProvider(inet.SPSpec{
		Name: "Google DNS", ASN: 15169, Kind: ipreg.KindContent,
		Prefix:          ipaddr.MustParsePrefix("8.8.0.0/16"),
		EdgeCities:      googleDNSCities,
		MinInternalHops: 1, MaxInternalHops: 1,
	})
	if err != nil {
		return err
	}
	w.SPs["Google DNS"] = sp
	group := &dnssim.AnycastGroup{Name: "GoogleDNS", VIP: ipaddr.MustParse("8.8.8.8")}
	for _, e := range sp.Edges {
		group.Instances = append(group.Instances, dnssim.Resolver{
			Name: "google-dns-" + e.City, Addr: e.ServerAddr, ASN: 15169,
			City: e.City, Country: e.Country, Loc: e.Loc, SupportsDoH: true,
		})
		w.resolverNodes[e.ServerAddr] = e.Server
	}
	w.GoogleDNS = group
	return nil
}

// opNetwork is a local operator's packet core: its PGWs, CG-NAT, and the
// provider wrapper that lets sessions pick a PGW uniformly.
type opNetwork struct {
	provider *ipx.PGWProvider
	cgnat    netsim.NodeID
	natAlloc *ipaddr.Allocator
}

// buildOperatorNetworks creates the packet cores for every operator in
// operatorNets (physical-SIM operators and native eSIM issuers), plus an
// in-network DNS resolver and a resolver for the Singtel HR PGWs.
func (w *World) buildOperatorNetworks() error {
	w.opNetworks = map[string]*opNetwork{}
	names := make([]string, 0, len(operatorNets))
	for n := range operatorNets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := operatorNets[name]
		op, ok := w.Operators[name]
		if !ok {
			return fmt.Errorf("airalo: operator network for unknown operator %q", name)
		}
		country := geo.MustCountry(op.Country)
		// Carve the operator's /16 for PGWs and NAT pool.
		prefix := operatorPrefix(name)
		alloc := ipaddr.NewAllocator(ipaddr.MustParsePrefix(prefix))
		provider := &ipx.PGWProvider{Name: name, ASN: op.ASN, Policy: ipx.AssignUniform}

		// CG-NAT sits at the operator's principal city.
		cgAddr := alloc.MustNextAddr()
		cg := w.Net.AddNode(netsim.Node{
			Name: "cgnat-" + name, Kind: netsim.KindCGNAT,
			Loc: country.Center, Addr: cgAddr, ASN: op.ASN,
		})

		cityNames := make([]string, 0, len(spec.PGWs))
		for c := range spec.PGWs {
			cityNames = append(cityNames, c)
		}
		sort.Strings(cityNames)
		for _, cityName := range cityNames {
			city := geo.MustCity(cityName)
			sitePrefix, err := alloc.NextPrefix(24)
			if err != nil {
				return fmt.Errorf("airalo: operator %s: %w", name, err)
			}
			// Register the site prefix at the PGW city so geolocation of
			// the observed PGW IPs is city-accurate (the Seoul vs
			// Goyang/Cheonan distinction of Section 4.3.2).
			w.Reg.MustRegisterPrefix(sitePrefix, op.ASN, city.Name, op.Country, city.Loc)
			siteAlloc := ipaddr.NewAllocator(sitePrefix)
			site := ipx.PGWSite{City: city.Name, Country: op.Country, Loc: city.Loc}
			for i := 0; i < spec.PGWs[cityName]; i++ {
				addr := siteAlloc.MustNextAddr()
				site.Addrs = append(site.Addrs, addr)
				pgw := w.Net.AddNode(netsim.Node{
					Name: fmt.Sprintf("pgw-%s-%s-%d", name, city.Name, i),
					Kind: netsim.KindPGW, Loc: city.Loc, Addr: addr, ASN: op.ASN,
				})
				w.pgwNodes[addr] = pgw
				w.Net.Connect(pgw, cg, netsim.Link{BandwidthMbps: 100000})
			}
			provider.Sites = append(provider.Sites, site)
		}
		w.peerEgressOp(cg, name, country.Center, spec)

		// In-network DNS resolver (MNO resolvers don't speak DoH).
		resAddr := alloc.MustNextAddr()
		resNode := w.Net.AddNode(netsim.Node{
			Name: "dns-" + name, Kind: netsim.KindResolver,
			Loc: country.Center, Addr: resAddr, ASN: op.ASN,
		})
		w.Net.Connect(cg, resNode, netsim.Link{DelayMs: 0.3, BandwidthMbps: 100000})
		w.resolverNodes[resAddr] = resNode
		w.opResolvers[name] = dnssim.Resolver{
			Name: name + "-dns", Addr: resAddr, ASN: op.ASN,
			City: country.Capital, Country: op.Country, Loc: country.Center,
			SupportsDoH: false,
		}
		w.opNetworks[name] = &opNetwork{provider: provider, cgnat: cg, natAlloc: alloc}
	}

	// Singtel's HR PGWs need a b-MNO resolver too: HR sessions resolve
	// DNS inside Singtel (AS45143), per Section 5.1.
	singtel := w.Operators["Singtel"]
	sgCity := geo.MustCity("Singapore")
	bp := w.builtProviders["Singtel"]
	resAddr, err := bp.NATAddr("Singapore")
	if err != nil {
		return err
	}
	resNode := w.Net.AddNode(netsim.Node{
		Name: "dns-Singtel", Kind: netsim.KindResolver,
		Loc: sgCity.Loc, Addr: resAddr, ASN: singtel.ASN,
	})
	w.Net.Connect(w.cgnatNodes[providerSiteKey("Singtel", "Singapore")], resNode,
		netsim.Link{DelayMs: 0.3, BandwidthMbps: 100000})
	w.resolverNodes[resAddr] = resNode
	w.opResolvers["Singtel"] = dnssim.Resolver{
		Name: "Singtel-dns", Addr: resAddr, ASN: singtel.ASN,
		City: "Singapore", Country: "SGP", Loc: sgCity.Loc, SupportsDoH: false,
	}
	return nil
}

// peerEgressOp peers an operator CG-NAT with the SPs, honoring its
// transit chain and peering penalty.
func (w *World) peerEgressOp(cg netsim.NodeID, name string, loc geo.Point, spec operatorNetSpec) {
	from := cg
	for i, tName := range spec.TransitVia {
		t := w.Operators[tName]
		tn := w.Net.AddNode(netsim.Node{
			Name: fmt.Sprintf("transit-%s-%s-%d", name, tName, i),
			Kind: netsim.KindRouter, Loc: loc,
			Addr: w.transitAddr(tName), ASN: t.ASN,
		})
		w.Net.Connect(from, tn, netsim.Link{DelayMs: 0.4, BandwidthMbps: 100000})
		from = tn
	}
	link := netsim.Link{PeeringPenaltyMs: spec.PeeringPenaltyMs, BandwidthMbps: 50000}
	spNames := make([]string, 0, len(w.SPs))
	for n := range w.SPs {
		spNames = append(spNames, n)
	}
	sort.Strings(spNames)
	for _, n := range spNames {
		w.inetB.PeerWith(from, w.SPs[n], 2, link)
	}
}

func operatorPrefix(name string) string {
	for _, s := range append(append([]OperatorSpec(nil), bMNOSpecs...), vMNOSpecs...) {
		if s.Name == name {
			return s.Prefix
		}
	}
	panic("airalo: no prefix for operator " + name)
}
