package airalo

import (
	"fmt"
	"sort"

	"roamsim/internal/cdnsim"
	"roamsim/internal/dnssim"
	"roamsim/internal/geo"
	"roamsim/internal/gtp"
	"roamsim/internal/inet"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/ipx"
	"roamsim/internal/mno"
	"roamsim/internal/netsim"
	"roamsim/internal/rng"
)

// World is the fully wired simulation of the Airalo ecosystem.
type World struct {
	Net *netsim.Network
	Reg *ipreg.Registry
	Rnd *rng.Source
	GTP *gtp.Manager

	Operators map[string]*mno.Operator
	Providers map[string]*ipx.PGWProvider
	SPs       map[string]*inet.ServiceProvider
	CDNs      map[string]*cdnsim.Provider
	GoogleDNS *dnssim.AnycastGroup

	// Deployments by key (ISO3, or "EMNIFY" for the validation setup).
	Deployments map[string]*Deployment

	builtProviders map[string]*builtProvider
	pgwNodes       map[ipaddr.Addr]netsim.NodeID
	cgnatNodes     map[string]netsim.NodeID // provider|city -> CG-NAT node
	resolverNodes  map[ipaddr.Addr]netsim.NodeID
	opResolvers    map[string]dnssim.Resolver // operator name -> resolver
	opNetworks     map[string]*opNetwork      // operator name -> local network
	transitAllocs  map[string]*ipaddr.Allocator
	inetB          *inet.Builder
}

// Deployment is one visited country's measurement setup.
type Deployment struct {
	Key     string
	Spec    DeploymentSpec
	Country geo.Country
	Loc     geo.Point
	VMNO    *mno.Operator
	BMNO    *mno.Operator

	ESIMProfile *mno.Profile
	SIMProfile  *mno.Profile

	world       *World
	ueESIM      netsim.NodeID
	ueSIM       netsim.NodeID
	sgw         netsim.NodeID
	esimOptions []ipx.AgreementOption
	esimArch    ipx.Architecture
	// esimPublicIP is the session public IP per provider|city key.
	esimPublicIP map[string]ipaddr.Addr
	simProvider  *ipx.PGWProvider
	simPublicIP  ipaddr.Addr
}

// Session is one attachment of a profile to the visited network with a
// resolved breakout — the unit every measurement runs against.
type Session struct {
	D        *Deployment
	Kind     mno.SIMKind
	Profile  *mno.Profile
	Arch     ipx.Architecture
	Provider *ipx.PGWProvider
	Site     ipx.PGWSite
	PGWAddr  ipaddr.Addr
	PGWNode  netsim.NodeID
	UE       netsim.NodeID
	PublicIP ipaddr.Addr
	Tunnel   *gtp.Tunnel // nil for native / physical-SIM sessions
	DNS      dnssim.Config
	Radio    mno.RadioConditions

	DownCapMbps, UpCapMbps float64
	YouTubeCapMbps         float64
	CDNHitRate             float64
}

// operatorNetSpec configures a local operator network (physical SIM or
// native eSIM issuer).
type operatorNetSpec struct {
	PGWs map[string]int // city -> number of PGW addresses
	// TransitVia routes public peering through these transit operators.
	TransitVia []string
	// PeeringPenaltyMs applies on the (last transit|cgnat) -> SP links.
	PeeringPenaltyMs float64
}

var operatorNets = map[string]operatorNetSpec{
	"Magti":            {PGWs: map[string]int{"Tbilisi": 2}, PeeringPenaltyMs: 12},
	"O2 Germany":       {PGWs: map[string]int{"Berlin": 2}, PeeringPenaltyMs: 4},
	"LG U+":            {PGWs: map[string]int{"Seoul": 4}, PeeringPenaltyMs: 2},
	"U+ UMobile":       {PGWs: map[string]int{"Seoul": 4, "Goyang": 1, "Cheonan": 1}, PeeringPenaltyMs: 2.5},
	"Jazz":             {PGWs: map[string]int{"Islamabad": 2}, TransitVia: []string{"LINKdotNET Telecom", "Transworld Associates"}, PeeringPenaltyMs: 6},
	"Ooredoo Qatar":    {PGWs: map[string]int{"Doha": 2}, PeeringPenaltyMs: 18},
	"STC":              {PGWs: map[string]int{"Riyadh": 2}, PeeringPenaltyMs: 16},
	"Movistar":         {PGWs: map[string]int{"Madrid": 2}, TransitVia: []string{"Telefonica Global Solution"}, PeeringPenaltyMs: 4},
	"dtac":             {PGWs: map[string]int{"Bangkok": 4}, PeeringPenaltyMs: 8},
	"Etisalat":         {PGWs: map[string]int{"Dubai": 2}, PeeringPenaltyMs: 14},
	"UK Partner MNO":   {PGWs: map[string]int{"London": 2}, PeeringPenaltyMs: 2},
	"Ooredoo Maldives": {PGWs: map[string]int{"Male": 2}, PeeringPenaltyMs: 10},
}

// providerTransit routes PGW-provider peering through transit carriers
// (Singtel's HR egress crosses its global arm, Section 4.3.3).
var providerTransit = map[string][]string{
	"Singtel": {"Singtel Global"},
}

// Build constructs the world deterministically from a seed.
func Build(seed int64) (*World, error) {
	w := &World{
		Net:           netsim.New(),
		Reg:           ipreg.NewRegistry(),
		Rnd:           rng.New(seed),
		Operators:     map[string]*mno.Operator{},
		Providers:     map[string]*ipx.PGWProvider{},
		SPs:           map[string]*inet.ServiceProvider{},
		CDNs:          map[string]*cdnsim.Provider{},
		Deployments:   map[string]*Deployment{},
		pgwNodes:      map[ipaddr.Addr]netsim.NodeID{},
		cgnatNodes:    map[string]netsim.NodeID{},
		resolverNodes: map[ipaddr.Addr]netsim.NodeID{},
		opResolvers:   map[string]dnssim.Resolver{},
	}
	w.GTP = gtp.NewManager(w.Net)

	ops, err := buildOperators(w.Reg)
	if err != nil {
		return nil, err
	}
	w.Operators = ops
	for _, t := range transitSpecs {
		w.Net.SetTransitAS(t.ASN)
	}

	provs, err := buildProviders(w.Reg)
	if err != nil {
		return nil, err
	}
	w.builtProviders = provs
	for name, bp := range provs {
		w.Providers[name] = bp.Provider
	}

	w.inetB = inet.NewBuilder(w.Net, w.Reg, w.Rnd.Fork("inet"))
	if err := w.buildServiceProviders(); err != nil {
		return nil, err
	}
	// Google DNS must exist before CG-NATs are peered with the SPs.
	if err := w.buildGoogleDNS(); err != nil {
		return nil, err
	}
	if err := w.buildPGWInfra(); err != nil {
		return nil, err
	}
	if err := w.buildOperatorNetworks(); err != nil {
		return nil, err
	}
	for _, spec := range deploymentSpecs {
		if err := w.buildDeployment(spec, spec.ISO3); err != nil {
			return nil, fmt.Errorf("airalo: deployment %s: %w", spec.ISO3, err)
		}
	}
	if err := w.buildDeployment(emnifySpec, "EMNIFY"); err != nil {
		return nil, fmt.Errorf("airalo: emnify deployment: %w", err)
	}
	// End of the build phase: from here the topology is immutable and
	// every query — Attach*, PathTo, routing, the measurement tools — is
	// safe for concurrent use, provided each goroutine gets its own
	// rng.Source (see internal/rng). GTP state and the IP registry have
	// their own locks; the one remaining world-level mutation,
	// Net.SetLoadModel, stays legal after Freeze.
	w.Net.Freeze()
	return w, nil
}

// emnifySpec is the Section 4.3.1 validation deployment: an emnify eSIM
// in London on O2 UK, breaking out at AWS Dublin — ground truth the
// operator confirmed to the authors.
var emnifySpec = DeploymentSpec{
	ISO3: "GBR", City: "London", VMNOName: "O2 UK", BMNOName: "emnify",
	Breakouts:       []breakoutRef{{"Amazon.com, Inc.", "Dublin", 1}},
	VMNOPrivateHops: 2,
	TunnelPenaltyMs: map[string]float64{"Amazon.com, Inc.": 4},
	RadioESIM:       mno.RadioConditions{FiveGShare: 0.6, MeanCQI: 11},
	ESIMDown:        18, ESIMUp: 8, LossESIM: 0.003,
}

// globalCities hosts the big SPs' edges.
var globalCities = []string{
	"Amsterdam", "Frankfurt", "London", "Paris", "Madrid", "Milan",
	"Stockholm", "Vienna", "Warsaw", "Singapore", "Tokyo", "Hong Kong",
	"Mumbai", "Dubai", "Doha", "Riyadh", "Istanbul", "Cairo", "Nairobi",
	"Ashburn", "Dallas", "Miami", "Los Angeles", "Seoul", "Bangkok",
	"Sao Paulo", "Sydney",
}

// ooklaExtraCities adds measurement-country capitals so "nearest Ookla
// server" exists everywhere the campaigns ran.
var ooklaExtraCities = []string{
	"Tbilisi", "Islamabad", "Male", "Kuala Lumpur", "Tashkent",
	"Chisinau", "Baku", "Helsinki", "Berlin", "Rome", "Beijing",
	"New Jersey", "Dublin", "Lille",
}

func (w *World) buildServiceProviders() error {
	specs := []inet.SPSpec{
		{Name: "Google", ASN: 15169, Kind: ipreg.KindContent,
			Prefix: ipaddr.MustParsePrefix("142.250.0.0/16"), EdgeCities: globalCities,
			MinInternalHops: 2, MaxInternalHops: 6},
		{Name: "Facebook", ASN: 32934, Kind: ipreg.KindContent,
			Prefix: ipaddr.MustParsePrefix("157.240.0.0/16"),
			EdgeCities: []string{"Amsterdam", "Frankfurt", "London", "Paris", "Madrid",
				"Warsaw", "Singapore", "Tokyo", "Hong Kong", "Mumbai", "Dubai", "Doha",
				"Istanbul", "Nairobi", "Ashburn", "Dallas", "Seoul", "Bangkok"},
			MinInternalHops: 1, MaxInternalHops: 7},
		{Name: "Ookla", ASN: 32035, Kind: ipreg.KindContent,
			Prefix:          ipaddr.MustParsePrefix("104.131.0.0/16"),
			EdgeCities:      append(append([]string(nil), globalCities...), ooklaExtraCities...),
			MinInternalHops: 1, MaxInternalHops: 2},
		{Name: "Cloudflare", ASN: 13335, Kind: ipreg.KindContent,
			Prefix: ipaddr.MustParsePrefix("104.16.0.0/16"), EdgeCities: globalCities,
			MinInternalHops: 1, MaxInternalHops: 3},
		{Name: "Google CDN", ASN: 396982, Kind: ipreg.KindContent,
			Prefix: ipaddr.MustParsePrefix("34.104.0.0/16"),
			EdgeCities: []string{"Amsterdam", "Frankfurt", "London", "Madrid", "Warsaw",
				"Singapore", "Tokyo", "Mumbai", "Dubai", "Istanbul", "Ashburn", "Dallas",
				"Seoul", "Bangkok"},
			MinInternalHops: 2, MaxInternalHops: 4},
		{Name: "jQuery CDN", ASN: 33438, Kind: ipreg.KindContent,
			Prefix: ipaddr.MustParsePrefix("205.185.0.0/16"),
			EdgeCities: []string{"Amsterdam", "London", "Frankfurt", "Singapore",
				"Tokyo", "Dubai", "Ashburn", "Dallas", "Seoul", "Bangkok"},
			MinInternalHops: 1, MaxInternalHops: 3},
		{Name: "jsDelivr", ASN: 30081, Kind: ipreg.KindContent,
			Prefix: ipaddr.MustParsePrefix("151.101.0.0/16"),
			EdgeCities: []string{"Amsterdam", "London", "Madrid", "Frankfurt",
				"Singapore", "Tokyo", "Mumbai", "Dubai", "Ashburn", "Seoul", "Bangkok"},
			MinInternalHops: 1, MaxInternalHops: 3},
		{Name: "Netflix", ASN: 2906, Kind: ipreg.KindContent,
			Prefix: ipaddr.MustParsePrefix("45.57.0.0/16"),
			EdgeCities: []string{"Amsterdam", "London", "Frankfurt", "Madrid", "Paris",
				"Singapore", "Tokyo", "Mumbai", "Dubai", "Istanbul", "Ashburn", "Dallas",
				"Seoul", "Bangkok", "Nairobi", "Sao Paulo"},
			MinInternalHops: 1, MaxInternalHops: 3},
		{Name: "Microsoft Ajax", ASN: 8075, Kind: ipreg.KindContent,
			Prefix: ipaddr.MustParsePrefix("13.107.0.0/16"),
			EdgeCities: []string{"Amsterdam", "London", "Frankfurt", "Madrid",
				"Singapore", "Tokyo", "Dubai", "Ashburn", "Dallas", "Seoul", "Bangkok"},
			MinInternalHops: 2, MaxInternalHops: 4},
	}
	for _, spec := range specs {
		sp, err := w.inetB.AddServiceProvider(spec)
		if err != nil {
			return err
		}
		w.SPs[spec.Name] = sp
	}
	hit := map[string]float64{
		"Cloudflare": 0.96, "Google CDN": 0.95, "jQuery CDN": 0.93,
		"jsDelivr": 0.94, "Microsoft Ajax": 0.93,
	}
	for _, name := range cdnsim.ProviderNames {
		w.CDNs[name] = &cdnsim.Provider{
			SP: w.SPs[name], HitRate: hit[name], OriginPenaltyMedianMs: 140,
		}
	}
	return nil
}

// buildPGWInfra creates PGW and CG-NAT nodes for every provider site and
// peers the CG-NATs with the service providers.
func (w *World) buildPGWInfra() error {
	names := make([]string, 0, len(w.builtProviders))
	for name := range w.builtProviders {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bp := w.builtProviders[name]
		p := bp.Provider
		for _, site := range p.Sites {
			cgAddr, err := bp.NATAddr(site.City)
			if err != nil {
				return err
			}
			cgReply := 1.0
			if p.CGNATSilent {
				cgReply = -1
			}
			cg := w.Net.AddNode(netsim.Node{
				Name: fmt.Sprintf("cgnat-%s-%s", p.Name, site.City),
				Kind: netsim.KindCGNAT, Loc: site.Loc, Addr: cgAddr,
				ASN: p.ASN, ICMPReplyProb: cgReply,
			})
			w.cgnatNodes[providerSiteKey(p.Name, site.City)] = cg
			for _, addr := range site.Addrs {
				pgw := w.Net.AddNode(netsim.Node{
					Name: fmt.Sprintf("pgw-%s-%s-%s", p.Name, site.City, addr),
					Kind: netsim.KindPGW, Loc: site.Loc, Addr: addr, ASN: p.ASN,
				})
				w.pgwNodes[addr] = pgw
				w.Net.Connect(pgw, cg, netsim.Link{DelayMs: 0.3, BandwidthMbps: 100000})
			}
			w.peerEgress(cg, p.Name, site.Loc, 0)
		}
	}
	return nil
}

// peerEgress connects an egress node (CG-NAT) to the service providers,
// optionally via the provider's transit carriers.
func (w *World) peerEgress(egress netsim.NodeID, providerName string, loc geo.Point, penaltyMs float64) {
	from := egress
	for i, tName := range providerTransit[providerName] {
		t := w.Operators[tName]
		tn := w.Net.AddNode(netsim.Node{
			Name: fmt.Sprintf("transit-%s-%s-%d", providerName, tName, i),
			Kind: netsim.KindRouter, Loc: loc,
			Addr: w.transitAddr(tName), ASN: t.ASN,
		})
		w.Net.Connect(from, tn, netsim.Link{DelayMs: 0.4, BandwidthMbps: 100000})
		from = tn
	}
	link := netsim.Link{PeeringPenaltyMs: penaltyMs, BandwidthMbps: 50000}
	spNames := make([]string, 0, len(w.SPs))
	for n := range w.SPs {
		spNames = append(spNames, n)
	}
	sort.Strings(spNames)
	for _, n := range spNames {
		w.inetB.PeerWith(from, w.SPs[n], 2, link)
	}
}

// transitAlloc hands out addresses inside transit operators' prefixes.
var transitPrefixByName = map[string]string{}

func init() {
	for _, t := range transitSpecs {
		transitPrefixByName[t.Name] = t.Prefix
	}
}

func (w *World) transitAddr(opName string) ipaddr.Addr {
	// Each call allocates the next address of the operator's prefix; the
	// allocator is memoized on the world via a tiny map.
	if w.transitAllocs == nil {
		w.transitAllocs = map[string]*ipaddr.Allocator{}
	}
	al, ok := w.transitAllocs[opName]
	if !ok {
		al = ipaddr.NewAllocator(ipaddr.MustParsePrefix(transitPrefixByName[opName]))
		w.transitAllocs[opName] = al
	}
	return al.MustNextAddr()
}

func providerSiteKey(provider, city string) string { return provider + "|" + city }
