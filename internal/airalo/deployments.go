package airalo

import "roamsim/internal/mno"

// breakoutRef names a (provider, site) option for a deployment's eSIM.
type breakoutRef struct {
	Provider string
	SiteCity string
	Weight   float64
}

// DeploymentSpec is the full per-country configuration: who serves the
// eSIM and SIM, where traffic breaks out (Table 2 ground truth), and the
// network-quality parameters that calibrate the figures.
//
// Latency structure emerges from geography plus the tunnel penalties;
// throughput is governed by the v-MNO policy caps, which is the paper's
// central bandwidth finding.
type DeploymentSpec struct {
	ISO3     string
	City     string // volunteer/measurement city
	VMNOName string
	BMNOName string // issuer of the Airalo eSIM
	// Breakouts restrict the b-MNO agreement for this visited country
	// (Saudi Arabia: Packet Host only; USA: Webbing Dallas; ...).
	Breakouts []breakoutRef
	InWeb     bool
	InDevice  bool
	// SIMOperator is the physical-SIM operator (device campaign only).
	SIMOperator string

	// VMNOPrivateHops / SIMPrivateHops are private hops inside the
	// visited network before IPX ingress (eSIM) or before the local
	// operator's PGW (SIM).
	VMNOPrivateHops int
	SIMPrivateHops  int

	// TunnelPenaltyMs adds one-way latency on the GTP path to a given
	// provider, modeling interconnection-agreement quality (the
	// UAE-vs-Pakistan and Georgia-vs-Germany effects).
	TunnelPenaltyMs map[string]float64
	// SIMPeeringPenaltyMs burdens the local operator's public peering.
	SIMPeeringPenaltyMs float64

	RadioESIM mno.RadioConditions
	RadioSIM  mno.RadioConditions

	// Policy caps in Mbps (down/up) for each configuration.
	ESIMDown, ESIMUp float64
	SIMDown, SIMUp   float64
	// YouTube-specific caps (0 = none): the traffic-differentiation
	// conjecture for the HR b-MNOs and several v-MNOs.
	YouTubeCapESIM, YouTubeCapSIM float64
	// CDN edge cache hit rates per configuration (0 = default 0.95).
	CDNHitESIM, CDNHitSIM float64
	// Per-path loss probabilities.
	LossESIM, LossSIM float64
}

// deploymentSpecs cover all 24 visited countries of the two campaigns
// (Table 2): 21 roaming eSIMs from six b-MNOs plus three native eSIMs.
var deploymentSpecs = []DeploymentSpec{
	// ---- Device campaign (Table 4) ----
	{
		ISO3: "GEO", City: "Tbilisi", VMNOName: "Magti", BMNOName: "Play",
		Breakouts: []breakoutRef{{"Packet Host", "Amsterdam", 1}, {"OVH SAS", "Lille", 1}},
		InDevice:  true, SIMOperator: "Magti",
		VMNOPrivateHops: 2, SIMPrivateHops: 3,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 24, "OVH SAS": 6},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.75, MeanCQI: 11},
		RadioSIM:        mno.RadioConditions{FiveGShare: 0.75, MeanCQI: 11},
		ESIMDown:        31.7, ESIMUp: 6, SIMDown: 42, SIMUp: 18,
		YouTubeCapESIM: 5.1, YouTubeCapSIM: 5.1,
		LossESIM: 0.004, LossSIM: 0.002,
	},
	{
		ISO3: "DEU", City: "Berlin", VMNOName: "O2 Germany", BMNOName: "Play",
		Breakouts: []breakoutRef{{"Packet Host", "Amsterdam", 1}, {"OVH SAS", "Lille", 1}},
		InDevice:  true, SIMOperator: "O2 Germany",
		VMNOPrivateHops: 2, SIMPrivateHops: 4,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 3, "OVH SAS": 16},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.6, MeanCQI: 10},
		RadioSIM:        mno.RadioConditions{FiveGShare: 0.6, MeanCQI: 10},
		ESIMDown:        22.7, ESIMUp: 8, SIMDown: 13.6, SIMUp: 9,
		YouTubeCapESIM: 4.7, YouTubeCapSIM: 5.3,
		LossESIM: 0.003, LossSIM: 0.002,
	},
	{
		ISO3: "KOR", City: "Seoul", VMNOName: "LG U+", BMNOName: "LG U+",
		InDevice: true, SIMOperator: "U+ UMobile",
		VMNOPrivateHops: 6, SIMPrivateHops: 7,
		RadioESIM: mno.RadioConditions{FiveGShare: 0.85, MeanCQI: 12},
		RadioSIM:  mno.RadioConditions{FiveGShare: 0.85, MeanCQI: 12},
		ESIMDown:  65, ESIMUp: 25, SIMDown: 38, SIMUp: 16,
		YouTubeCapESIM: 5.2, YouTubeCapSIM: 9.8,
		LossESIM: 0.001, LossSIM: 0.002,
	},
	{
		ISO3: "PAK", City: "Islamabad", VMNOName: "Jazz", BMNOName: "Singtel",
		Breakouts: []breakoutRef{{"Singtel", "Singapore", 1}},
		InWeb:     true, InDevice: true, SIMOperator: "Jazz",
		VMNOPrivateHops: 2, SIMPrivateHops: 3,
		TunnelPenaltyMs:     map[string]float64{"Singtel": 150},
		SIMPeeringPenaltyMs: 8,
		RadioESIM:           mno.RadioConditions{FiveGShare: 0.2, MeanCQI: 9},
		RadioSIM:            mno.RadioConditions{FiveGShare: 0.2, MeanCQI: 9},
		ESIMDown:            5.5, ESIMUp: 2, SIMDown: 7.9, SIMUp: 6,
		YouTubeCapESIM: 4.5, YouTubeCapSIM: 4.5,
		LossESIM: 0.012, LossSIM: 0.004,
	},
	{
		ISO3: "QAT", City: "Doha", VMNOName: "Ooredoo Qatar", BMNOName: "Telna Mobile",
		Breakouts: []breakoutRef{{"Packet Host", "Amsterdam", 1}, {"OVH SAS", "Lille", 1}},
		InDevice:  true, SIMOperator: "Ooredoo Qatar",
		VMNOPrivateHops: 2, SIMPrivateHops: 3,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 8, "OVH SAS": 9},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.8, MeanCQI: 11},
		RadioSIM:        mno.RadioConditions{FiveGShare: 0.8, MeanCQI: 11},
		ESIMDown:        12, ESIMUp: 7, SIMDown: 62, SIMUp: 24,
		YouTubeCapESIM: 4.6, YouTubeCapSIM: 5.4,
		LossESIM: 0.004, LossSIM: 0.002,
	},
	{
		ISO3: "SAU", City: "Riyadh", VMNOName: "STC", BMNOName: "Telna Mobile",
		Breakouts: []breakoutRef{{"Packet Host", "Amsterdam", 1}}, // PH only
		InDevice:  true, SIMOperator: "STC",
		VMNOPrivateHops: 2, SIMPrivateHops: 3,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 10},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.85, MeanCQI: 12},
		RadioSIM:        mno.RadioConditions{FiveGShare: 0.85, MeanCQI: 12},
		ESIMDown:        13, ESIMUp: 8, SIMDown: 137.2, SIMUp: 30,
		YouTubeCapESIM: 4.5, YouTubeCapSIM: 5.5,
		LossESIM: 0.004, LossSIM: 0.001,
	},
	{
		ISO3: "ESP", City: "Madrid", VMNOName: "Movistar", BMNOName: "Play",
		Breakouts: []breakoutRef{{"Packet Host", "Amsterdam", 1}, {"OVH SAS", "Lille", 1}},
		InDevice:  true, SIMOperator: "Movistar",
		VMNOPrivateHops: 2, SIMPrivateHops: 3,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 3, "OVH SAS": 14},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.7, MeanCQI: 11},
		RadioSIM:        mno.RadioConditions{FiveGShare: 0.7, MeanCQI: 11},
		ESIMDown:        11.2, ESIMUp: 6, SIMDown: 70, SIMUp: 28,
		YouTubeCapESIM: 4.7, YouTubeCapSIM: 5.3,
		LossESIM: 0.003, LossSIM: 0.002,
	},
	{
		ISO3: "THA", City: "Bangkok", VMNOName: "dtac", BMNOName: "dtac",
		InDevice: true, SIMOperator: "dtac",
		VMNOPrivateHops: 4, SIMPrivateHops: 4,
		RadioESIM: mno.RadioConditions{FiveGShare: 0.55, MeanCQI: 10},
		RadioSIM:  mno.RadioConditions{FiveGShare: 0.55, MeanCQI: 10},
		ESIMDown:  26, ESIMUp: 12, SIMDown: 28, SIMUp: 13,
		YouTubeCapESIM: 5.3, YouTubeCapSIM: 5.1,
		CDNHitESIM: 1.0, CDNHitSIM: 0.923, // the Thailand MISS asymmetry
		LossESIM: 0.003, LossSIM: 0.003,
	},
	{
		ISO3: "ARE", City: "Dubai", VMNOName: "Etisalat", BMNOName: "Singtel",
		Breakouts: []breakoutRef{{"Singtel", "Singapore", 1}},
		InDevice:  true, SIMOperator: "Etisalat",
		VMNOPrivateHops: 2, SIMPrivateHops: 3,
		TunnelPenaltyMs: map[string]float64{"Singtel": 55}, // better peering than Jazz
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.8, MeanCQI: 12},
		RadioSIM:        mno.RadioConditions{FiveGShare: 0.8, MeanCQI: 12},
		ESIMDown:        9, ESIMUp: 5, SIMDown: 8.3, SIMUp: 7,
		YouTubeCapESIM: 4.5, YouTubeCapSIM: 4.5,
		LossESIM: 0.006, LossSIM: 0.002,
	},
	{
		ISO3: "GBR", City: "London", VMNOName: "UK Partner MNO", BMNOName: "Play",
		Breakouts: []breakoutRef{{"Packet Host", "Amsterdam", 1}, {"OVH SAS", "Lille", 1}},
		InDevice:  true, SIMOperator: "UK Partner MNO",
		VMNOPrivateHops: 2, SIMPrivateHops: 3,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 3, "OVH SAS": 12},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.65, MeanCQI: 11},
		RadioSIM:        mno.RadioConditions{FiveGShare: 0.65, MeanCQI: 11},
		ESIMDown:        20, ESIMUp: 9, SIMDown: 46, SIMUp: 17,
		YouTubeCapESIM: 4.8, YouTubeCapSIM: 5.3,
		LossESIM: 0.003, LossSIM: 0.002,
	},
	// ---- Web campaign only (Table 3) ----
	{
		ISO3: "ITA", City: "Rome", VMNOName: "WindTre", BMNOName: "Orange",
		Breakouts: []breakoutRef{{"Webbing USA", "Amsterdam", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Webbing USA": 6},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.6, MeanCQI: 11},
		ESIMDown:        20, ESIMUp: 8, LossESIM: 0.003,
	},
	{
		ISO3: "CHN", City: "Beijing", VMNOName: "China Unicom", BMNOName: "Singtel",
		Breakouts: []breakoutRef{{"Singtel", "Singapore", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Singtel": 35},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.7, MeanCQI: 11},
		ESIMDown:        10, ESIMUp: 4, LossESIM: 0.008,
	},
	{
		ISO3: "MDA", City: "Chisinau", VMNOName: "Moldcell", BMNOName: "Telecom Italia",
		Breakouts: []breakoutRef{{"Wireless Logic", "London", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Wireless Logic": 8},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.4, MeanCQI: 10},
		ESIMDown:        12, ESIMUp: 5, LossESIM: 0.004,
	},
	{
		ISO3: "FRA", City: "Paris", VMNOName: "Orange France", BMNOName: "Polkomtel",
		Breakouts: []breakoutRef{{"Packet Host", "Ashburn", 1}}, // Virginia!
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 5},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.7, MeanCQI: 12},
		ESIMDown:        29, ESIMUp: 11, LossESIM: 0.003,
	},
	{
		ISO3: "AZE", City: "Baku", VMNOName: "Azercell", BMNOName: "Telecom Italia",
		Breakouts: []breakoutRef{{"Wireless Logic", "London", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Wireless Logic": 6},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.5, MeanCQI: 11},
		ESIMDown:        18, ESIMUp: 7, LossESIM: 0.004,
	},
	{
		ISO3: "MDV", City: "Male", VMNOName: "Ooredoo Maldives", BMNOName: "Ooredoo Maldives",
		InWeb: true, VMNOPrivateHops: 3,
		RadioESIM: mno.RadioConditions{FiveGShare: 0.3, MeanCQI: 10},
		ESIMDown:  20, ESIMUp: 9, LossESIM: 0.004,
	},
	{
		ISO3: "MYS", City: "Kuala Lumpur", VMNOName: "Maxis", BMNOName: "Singtel",
		Breakouts: []breakoutRef{{"Singtel", "Singapore", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Singtel": 10},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.55, MeanCQI: 11},
		ESIMDown:        15, ESIMUp: 6, LossESIM: 0.003,
	},
	{
		ISO3: "KEN", City: "Nairobi", VMNOName: "Safaricom", BMNOName: "Telecom Italia",
		Breakouts: []breakoutRef{{"Wireless Logic", "London", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Wireless Logic": 12},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.3, MeanCQI: 9},
		ESIMDown:        10, ESIMUp: 4, LossESIM: 0.006,
	},
	{
		ISO3: "USA", City: "New York", VMNOName: "T-Mobile US", BMNOName: "Orange",
		Breakouts: []breakoutRef{{"Webbing USA", "Dallas", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Webbing USA": 4},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.8, MeanCQI: 12},
		ESIMDown:        22, ESIMUp: 9, LossESIM: 0.002,
	},
	{
		ISO3: "FIN", City: "Helsinki", VMNOName: "Elisa", BMNOName: "Telecom Italia",
		Breakouts: []breakoutRef{{"Wireless Logic", "London", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Wireless Logic": 5},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.8, MeanCQI: 12},
		ESIMDown:        25, ESIMUp: 11, LossESIM: 0.002,
	},
	{
		ISO3: "EGY", City: "Cairo", VMNOName: "Vodafone Egypt", BMNOName: "Telna Mobile",
		Breakouts: []breakoutRef{{"Packet Host", "Amsterdam", 1}, {"OVH SAS", "Lille", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 12, "OVH SAS": 12},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.3, MeanCQI: 10},
		ESIMDown:        9, ESIMUp: 4, LossESIM: 0.005,
	},
	{
		ISO3: "TUR", City: "Istanbul", VMNOName: "Turkcell", BMNOName: "Telna Mobile",
		Breakouts: []breakoutRef{{"Packet Host", "Amsterdam", 1}, {"OVH SAS", "Lille", 1}},
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 7, "OVH SAS": 8},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.6, MeanCQI: 11},
		ESIMDown:        14, ESIMUp: 6, LossESIM: 0.003,
	},
	{
		ISO3: "UZB", City: "Tashkent", VMNOName: "Beeline UZ", BMNOName: "Polkomtel",
		Breakouts: []breakoutRef{{"Packet Host", "Ashburn", 1}}, // Virginia again
		InWeb:     true, VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Packet Host": 15},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.35, MeanCQI: 10},
		ESIMDown:        15, ESIMUp: 5, LossESIM: 0.005,
	},
	// ---- Table 2 only (no campaign tables, measured opportunistically) ----
	{
		ISO3: "JPN", City: "Tokyo", VMNOName: "SoftBank", BMNOName: "Singtel",
		Breakouts:       []breakoutRef{{"Singtel", "Singapore", 1}},
		VMNOPrivateHops: 2,
		TunnelPenaltyMs: map[string]float64{"Singtel": 12},
		RadioESIM:       mno.RadioConditions{FiveGShare: 0.85, MeanCQI: 12},
		ESIMDown:        28, ESIMUp: 12, LossESIM: 0.002,
	},
}
