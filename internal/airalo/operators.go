// Package airalo assembles the full simulated world of the paper: the
// 24 visited-country deployments, the six b-MNOs that provision Airalo's
// roaming eSIMs, the three native issuers, the PGW providers and their
// breakout agreements (Table 2), the physical-SIM operators of the
// device campaign, the public internet (Google, Facebook, Ookla, five
// CDNs, Google DNS anycast), and the emnify validation operator of
// Section 4.3.1.
//
// Everything is wired into one netsim.Network + ipreg.Registry so that
// the measurement tools observe the same signals the paper's campaigns
// did, and the core tomography package can re-derive Table 2 from
// measurements alone.
package airalo

import (
	"fmt"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/mno"
)

// OperatorSpec declares one operator to create.
type OperatorSpec struct {
	Name    string
	MCC     string
	MNC     string
	Country string // ISO3
	ASN     ipreg.ASN
	Prefix  string // public address space (CIDR)
	MVNO    bool
	Parent  string
}

// bMNOSpecs are Airalo's issuing operators: the six roaming b-MNOs of
// Table 2 and the three native issuers. ASNs cited in the paper are
// real; others are plausible stand-ins.
var bMNOSpecs = []OperatorSpec{
	{Name: "Singtel", MCC: "525", MNC: "01", Country: "SGP", ASN: 45143, Prefix: "202.166.0.0/16"},
	{Name: "Play", MCC: "260", MNC: "06", Country: "POL", ASN: 12912, Prefix: "77.252.0.0/16"},
	{Name: "Telna Mobile", MCC: "310", MNC: "240", Country: "USA", ASN: 19893, Prefix: "66.209.0.0/16"},
	{Name: "Telecom Italia", MCC: "222", MNC: "01", Country: "ITA", ASN: 3269, Prefix: "151.5.0.0/16"},
	{Name: "Orange", MCC: "208", MNC: "01", Country: "FRA", ASN: 3215, Prefix: "80.10.0.0/16"},
	{Name: "Polkomtel", MCC: "260", MNC: "01", Country: "POL", ASN: 8374, Prefix: "212.2.0.0/16"},
	// Native issuers (v-MNO == b-MNO in their countries).
	{Name: "LG U+", MCC: "450", MNC: "06", Country: "KOR", ASN: 17858, Prefix: "106.102.0.0/16"},
	{Name: "Ooredoo Maldives", MCC: "472", MNC: "02", Country: "MDV", ASN: 23889, Prefix: "103.120.0.0/16"},
	{Name: "dtac", MCC: "520", MNC: "05", Country: "THA", ASN: 9587, Prefix: "1.46.0.0/16"},
}

// vMNOSpecs are the visited operators (one per visited country). For
// device-campaign countries the physical SIM is from the same operator,
// except Korea where the SIM is the U+ UMobile MVNO (handled below).
var vMNOSpecs = []OperatorSpec{
	{Name: "Etisalat", MCC: "424", MNC: "02", Country: "ARE", ASN: 5384, Prefix: "94.200.0.0/16"},
	{Name: "SoftBank", MCC: "440", MNC: "20", Country: "JPN", ASN: 17676, Prefix: "126.0.0.0/16"},
	{Name: "Jazz", MCC: "410", MNC: "01", Country: "PAK", ASN: 45669, Prefix: "119.155.0.0/16"},
	{Name: "Maxis", MCC: "502", MNC: "12", Country: "MYS", ASN: 9534, Prefix: "175.139.0.0/16"},
	{Name: "China Unicom", MCC: "460", MNC: "01", Country: "CHN", ASN: 4837, Prefix: "112.96.0.0/16"},
	{Name: "UK Partner MNO", MCC: "234", MNC: "15", Country: "GBR", ASN: 12576, Prefix: "82.132.0.0/16"},
	{Name: "O2 Germany", MCC: "262", MNC: "07", Country: "DEU", ASN: 6805, Prefix: "89.204.0.0/16"},
	{Name: "Magti", MCC: "282", MNC: "02", Country: "GEO", ASN: 16010, Prefix: "212.72.0.0/16"},
	{Name: "Movistar", MCC: "214", MNC: "07", Country: "ESP", ASN: 3352, Prefix: "83.32.0.0/16"},
	{Name: "Ooredoo Qatar", MCC: "427", MNC: "01", Country: "QAT", ASN: 8781, Prefix: "78.100.0.0/16"},
	{Name: "STC", MCC: "420", MNC: "01", Country: "SAU", ASN: 25019, Prefix: "84.235.0.0/16"},
	{Name: "Turkcell", MCC: "286", MNC: "01", Country: "TUR", ASN: 16135, Prefix: "178.240.0.0/16"},
	{Name: "Vodafone Egypt", MCC: "602", MNC: "02", Country: "EGY", ASN: 24863, Prefix: "41.232.0.0/16"},
	{Name: "Moldcell", MCC: "259", MNC: "02", Country: "MDA", ASN: 31252, Prefix: "188.244.0.0/16"},
	{Name: "Safaricom", MCC: "639", MNC: "02", Country: "KEN", ASN: 33771, Prefix: "105.160.0.0/16"},
	{Name: "Elisa", MCC: "244", MNC: "05", Country: "FIN", ASN: 719, Prefix: "85.76.0.0/16"},
	{Name: "Azercell", MCC: "400", MNC: "01", Country: "AZE", ASN: 31721, Prefix: "109.205.0.0/16"},
	{Name: "WindTre", MCC: "222", MNC: "88", Country: "ITA", ASN: 1267, Prefix: "151.68.0.0/16"},
	{Name: "T-Mobile US", MCC: "310", MNC: "260", Country: "USA", ASN: 21928, Prefix: "172.58.0.0/16"},
	{Name: "Orange France", MCC: "208", MNC: "02", Country: "FRA", ASN: 3216, Prefix: "92.184.0.0/16"},
	{Name: "Beeline UZ", MCC: "434", MNC: "04", Country: "UZB", ASN: 41202, Prefix: "213.230.0.0/16"},
	// Native countries: the v-MNO is the b-MNO itself (LG U+, Ooredoo
	// Maldives, dtac) — no separate entry needed.
	// Korea's physical SIM: an MVNO riding LG UPlus.
	{Name: "U+ UMobile", MCC: "450", MNC: "16", Country: "KOR", ASN: 38661, Prefix: "61.43.0.0/16", MVNO: true, Parent: "LG U+"},
	// emnify validation (Section 4.3.1).
	{Name: "O2 UK", MCC: "234", MNC: "10", Country: "GBR", ASN: 35228, Prefix: "82.1.0.0/16"},
	{Name: "emnify", MCC: "901", MNC: "43", Country: "DEU", ASN: 208150, Prefix: "185.57.0.0/16"},
}

// transitSpecs are the transit carriers visible in the complex public
// paths of Section 4.3.3.
var transitSpecs = []OperatorSpec{
	{Name: "Telefonica Global Solution", MCC: "", MNC: "", Country: "ESP", ASN: 12956, Prefix: "94.142.0.0/16"},
	{Name: "LINKdotNET Telecom", MCC: "", MNC: "", Country: "PAK", ASN: 23966, Prefix: "203.175.0.0/16"},
	{Name: "Transworld Associates", MCC: "", MNC: "", Country: "PAK", ASN: 38193, Prefix: "203.130.0.0/16"},
	{Name: "Singtel Global", MCC: "", MNC: "", Country: "SGP", ASN: 7473, Prefix: "203.208.0.0/16"},
}

// buildOperators registers all operators in the registry and returns
// them by name. Each operator's prefix is registered at its home city.
func buildOperators(reg *ipreg.Registry) (map[string]*mno.Operator, error) {
	ops := make(map[string]*mno.Operator)
	add := func(spec OperatorSpec, kind ipreg.OrgKind) error {
		if _, dup := ops[spec.Name]; dup {
			return fmt.Errorf("airalo: duplicate operator %s", spec.Name)
		}
		country, err := geo.LookupCountry(spec.Country)
		if err != nil {
			return fmt.Errorf("airalo: operator %s: %w", spec.Name, err)
		}
		op := &mno.Operator{
			Name:    spec.Name,
			PLMN:    mno.PLMN{MCC: spec.MCC, MNC: spec.MNC},
			Country: spec.Country,
			ASN:     spec.ASN,
			MVNO:    spec.MVNO,
			Parent:  spec.Parent,
		}
		reg.RegisterAS(ipreg.AS{Number: spec.ASN, Org: spec.Name, Country: spec.Country, Kind: kind})
		prefix, err := ipaddr.ParsePrefix(spec.Prefix)
		if err != nil {
			return fmt.Errorf("airalo: operator %s: %w", spec.Name, err)
		}
		if err := reg.RegisterPrefix(prefix, spec.ASN, country.Capital, spec.Country, country.Center); err != nil {
			return err
		}
		ops[spec.Name] = op
		return nil
	}
	for _, s := range bMNOSpecs {
		if err := add(s, ipreg.KindMNO); err != nil {
			return nil, err
		}
	}
	for _, s := range vMNOSpecs {
		if err := add(s, ipreg.KindMNO); err != nil {
			return nil, err
		}
	}
	for _, s := range transitSpecs {
		if err := add(s, ipreg.KindTransit); err != nil {
			return nil, err
		}
	}
	return ops, nil
}
