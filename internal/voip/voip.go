// Package voip implements the paper's named future-work metrics: jitter
// and packet loss for real-time services, folded into an ITU-T G.107
// E-model estimate of call quality (R-factor and MOS).
//
// Roaming architectures hurt VoIP twice: the GTP tunnel adds one-way
// delay (the dominant E-model penalty past ~177 ms mouth-to-ear), and
// the longer loss path degrades the equipment-impairment term. The
// FutureVoIP experiment quantifies both per architecture.
package voip

import (
	"fmt"
	"math"

	"roamsim/internal/netsim"
	"roamsim/internal/rng"
)

// ProbeResult summarizes an RTP-like probe stream over a path.
type ProbeResult struct {
	Packets     int
	Lost        int
	MeanRTTms   float64
	JitterMs    float64 // RFC 3550 interarrival jitter estimate
	OneWayMs    float64 // mouth-to-ear estimate (RTT/2 + jitter buffer)
	LossPercent float64
}

// Probe sends n probe packets over the path and computes delay, RFC 3550
// jitter, and loss.
func Probe(net *netsim.Network, path *netsim.Path, n int, src *rng.Source) (ProbeResult, error) {
	if n <= 1 {
		return ProbeResult{}, fmt.Errorf("voip: need at least 2 probe packets")
	}
	res := ProbeResult{Packets: n}
	lossP := path.LossProb()
	var sumRTT float64
	var jitter float64
	prev := -1.0
	received := 0
	for i := 0; i < n; i++ {
		if src.Bool(lossP) {
			res.Lost++
			continue
		}
		rtt := net.RTTms(path, src)
		sumRTT += rtt
		received++
		if prev >= 0 {
			// RFC 3550: J += (|D| - J) / 16, with D the transit delta.
			d := math.Abs(rtt/2 - prev/2)
			jitter += (d - jitter) / 16
		}
		prev = rtt
	}
	if received == 0 {
		return res, fmt.Errorf("voip: all probes lost")
	}
	res.MeanRTTms = sumRTT / float64(received)
	res.JitterMs = jitter
	res.LossPercent = 100 * float64(res.Lost) / float64(n)
	// Mouth-to-ear: half the RTT plus a jitter buffer sized 2x jitter
	// plus codec packetization (20 ms frames + 20 ms buffer floor).
	res.OneWayMs = res.MeanRTTms/2 + 2*res.JitterMs + 40
	return res, nil
}

// EModel computes the ITU-T G.107 R-factor for a G.711 call with the
// given mouth-to-ear delay and packet loss, and the corresponding MOS.
type EModel struct {
	// Bpl is the codec's packet-loss robustness (G.711 w/o PLC ≈ 4.3,
	// with PLC ≈ 25.1). Zero means 25.1.
	Bpl float64
}

// Score returns (R, MOS) for the probe result.
func (e EModel) Score(p ProbeResult) (r, mos float64) {
	bpl := e.Bpl
	if bpl == 0 {
		bpl = 25.1
	}
	const r0 = 93.2 // base R for G.711
	// Delay impairment Id (simplified G.107): small below 177.3 ms,
	// then steep.
	d := p.OneWayMs
	id := 0.024 * d
	if d > 177.3 {
		id += 0.11 * (d - 177.3)
	}
	// Equipment impairment with loss: Ie-eff = Ie + (95-Ie)·Ppl/(Ppl+Bpl).
	const ie = 0.0 // G.711 baseline
	ppl := p.LossPercent
	ieEff := ie + (95-ie)*ppl/(ppl+bpl)
	r = r0 - id - ieEff
	if r < 0 {
		r = 0
	}
	if r > 100 {
		r = 100
	}
	// R -> MOS (ITU-T G.107 Annex B).
	if r < 6.5 {
		mos = 1
	} else {
		mos = 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
	}
	if mos > 4.5 {
		mos = 4.5
	}
	return r, mos
}

// Grade maps an R-factor to the conventional user-satisfaction band.
func Grade(r float64) string {
	switch {
	case r >= 90:
		return "very satisfied"
	case r >= 80:
		return "satisfied"
	case r >= 70:
		return "some users dissatisfied"
	case r >= 60:
		return "many users dissatisfied"
	case r >= 50:
		return "nearly all users dissatisfied"
	default:
		return "not recommended"
	}
}
