package voip

import (
	"testing"

	"roamsim/internal/netsim"
	"roamsim/internal/rng"
)

func pathWith(delayMs, loss float64) (*netsim.Network, *netsim.Path) {
	n := netsim.New()
	a := n.AddNode(netsim.Node{Name: "a"})
	b := n.AddNode(netsim.Node{Name: "b", Kind: netsim.KindServer})
	n.Connect(a, b, netsim.Link{DelayMs: delayMs, LossProb: loss})
	p, err := n.Route(a, b)
	if err != nil {
		panic(err)
	}
	return n, p
}

func TestProbeBasics(t *testing.T) {
	net, p := pathWith(20, 0.02)
	res, err := Probe(net, p, 500, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 500 {
		t.Errorf("packets = %d", res.Packets)
	}
	// RTT ≈ 2×(20 + proc) ≈ 41 ms.
	if res.MeanRTTms < 35 || res.MeanRTTms > 50 {
		t.Errorf("mean RTT = %f", res.MeanRTTms)
	}
	// Loss ≈ 2%.
	if res.LossPercent < 0.5 || res.LossPercent > 4.5 {
		t.Errorf("loss = %f%%", res.LossPercent)
	}
	if res.JitterMs <= 0 {
		t.Error("jitter must be positive on a jittery link")
	}
	if res.OneWayMs <= res.MeanRTTms/2 {
		t.Error("one-way must include the jitter buffer")
	}
}

func TestProbeErrors(t *testing.T) {
	net, p := pathWith(10, 0)
	if _, err := Probe(net, p, 1, rng.New(2)); err == nil {
		t.Error("n=1 should error")
	}
	_, dead := pathWith(10, 1)
	if _, err := Probe(net, dead, 50, rng.New(3)); err == nil {
		t.Error("fully lossy path should error")
	}
}

func TestEModelDelaySensitivity(t *testing.T) {
	e := EModel{}
	short := ProbeResult{OneWayMs: 60, LossPercent: 0}
	long := ProbeResult{OneWayMs: 300, LossPercent: 0} // HR-like
	rShort, mosShort := e.Score(short)
	rLong, mosLong := e.Score(long)
	if rShort <= rLong || mosShort <= mosLong {
		t.Errorf("delay must hurt: R %f vs %f", rShort, rLong)
	}
	if rShort < 85 {
		t.Errorf("60 ms clean call should be excellent, R = %f", rShort)
	}
	// The simplified G.107 Id gives R ≈ 72.5 at 300 ms: below the
	// "satisfied" band (80).
	if rLong > 75 {
		t.Errorf("300 ms call should be degraded, R = %f", rLong)
	}
}

func TestEModelLossSensitivity(t *testing.T) {
	e := EModel{}
	clean := ProbeResult{OneWayMs: 100, LossPercent: 0}
	lossy := ProbeResult{OneWayMs: 100, LossPercent: 5}
	rClean, _ := e.Score(clean)
	rLossy, _ := e.Score(lossy)
	if rClean-rLossy < 5 {
		t.Errorf("5%% loss should cost several R points: %f vs %f", rClean, rLossy)
	}
	// Robust codec degrades less.
	robust := EModel{Bpl: 34}
	rRobust, _ := robust.Score(lossy)
	if rRobust <= rLossy {
		t.Errorf("higher Bpl should help: %f vs %f", rRobust, rLossy)
	}
}

func TestEModelBounds(t *testing.T) {
	e := EModel{}
	r, mos := e.Score(ProbeResult{OneWayMs: 2000, LossPercent: 60})
	if r < 0 || mos < 1 {
		t.Errorf("bounds violated: R=%f MOS=%f", r, mos)
	}
	r, mos = e.Score(ProbeResult{OneWayMs: 0, LossPercent: 0})
	if r > 100 || mos > 4.5 {
		t.Errorf("upper bounds violated: R=%f MOS=%f", r, mos)
	}
}

func TestGradeBands(t *testing.T) {
	cases := map[float64]string{
		95: "very satisfied",
		85: "satisfied",
		75: "some users dissatisfied",
		65: "many users dissatisfied",
		55: "nearly all users dissatisfied",
		20: "not recommended",
	}
	for r, want := range cases {
		if got := Grade(r); got != want {
			t.Errorf("Grade(%f) = %q, want %q", r, got, want)
		}
	}
}

func TestMOSMonotoneInR(t *testing.T) {
	e := EModel{}
	prev := 5.0
	for d := 0.0; d <= 600; d += 20 {
		_, mos := e.Score(ProbeResult{OneWayMs: d})
		if mos > prev+1e-9 {
			t.Fatalf("MOS not monotone at delay %f", d)
		}
		prev = mos
	}
}
