package video

import (
	"testing"

	"roamsim/internal/rng"
)

func constTput(mbps float64) ThroughputFunc {
	return func() float64 { return mbps }
}

func TestPlayFastLinkReaches4K(t *testing.T) {
	src := rng.New(1)
	st, err := Play(Config{DurationSec: 300}, constTput(100), src)
	if err != nil {
		t.Fatal(err)
	}
	if st.DominantResolution != "2160p" {
		t.Errorf("dominant = %s, want 2160p at 100 Mbps", st.DominantResolution)
	}
	if st.Rebuffers != 0 {
		t.Errorf("fast link rebuffered %d times", st.Rebuffers)
	}
}

func TestPlayMidLinkSettles720pOr1080p(t *testing.T) {
	src := rng.New(2)
	// ~5 Mbps with safety 0.75 -> budget ~3.75: 720p (2.5 Mbps) fits,
	// 1080p (5 Mbps) only during buffer-rich boldness.
	st, err := Play(Config{DurationSec: 300}, constTput(5), src)
	if err != nil {
		t.Fatal(err)
	}
	if st.DominantResolution != "720p" && st.DominantResolution != "1080p" {
		t.Errorf("dominant = %s, want 720p/1080p at 5 Mbps", st.DominantResolution)
	}
	if st.Share("2160p") > 0.05 {
		t.Errorf("4K share %f too high for 5 Mbps", st.Share("2160p"))
	}
}

func TestPlaySlowLinkDegradesAndStalls(t *testing.T) {
	src := rng.New(3)
	st, err := Play(Config{DurationSec: 120}, constTput(0.3), src)
	if err != nil {
		t.Fatal(err)
	}
	if h := rungHeight(st.DominantResolution); h > 360 {
		t.Errorf("dominant = %s too high for 0.3 Mbps", st.DominantResolution)
	}
	// At 0.3 Mbps the ABR can sustain 144p (0.1 Mbps) stall-free; only a
	// link below the lowest rung must stall.
	st2, err := Play(Config{DurationSec: 120}, constTput(0.05), rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Rebuffers == 0 {
		t.Error("a 0.05 Mbps link (below the 144p rung) must rebuffer")
	}
	if st2.StalledSec <= 0 {
		t.Error("rebuffering must accumulate stall time")
	}
}

func TestPlayMaxHeightCap(t *testing.T) {
	src := rng.New(4)
	st, err := Play(Config{DurationSec: 200, MaxHeight: 720}, constTput(100), src)
	if err != nil {
		t.Fatal(err)
	}
	for name := range st.SecondsAt {
		if rungHeight(name) > 720 {
			t.Errorf("played %s above the 720p cap", name)
		}
	}
	if st.DominantResolution != "720p" {
		t.Errorf("dominant = %s, want 720p", st.DominantResolution)
	}
}

func TestPlayTotalTimeAccounted(t *testing.T) {
	src := rng.New(5)
	cfg := Config{DurationSec: 150}
	st, err := Play(cfg, constTput(8), src)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, sec := range st.SecondsAt {
		total += sec
	}
	if total < cfg.DurationSec*0.99 {
		t.Errorf("accounted %f of %f seconds", total, cfg.DurationSec)
	}
}

func TestPlayVariableThroughputAdapts(t *testing.T) {
	src := rng.New(6)
	calls := 0
	varying := func() float64 {
		calls++
		if calls%40 < 20 {
			return 20 // good half
		}
		return 1.5 // congested half
	}
	st, err := Play(Config{DurationSec: 400}, varying, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SecondsAt) < 2 {
		t.Errorf("ABR should visit multiple rungs under varying throughput, got %v", st.SecondsAt)
	}
}

func TestPlayErrors(t *testing.T) {
	if _, err := Play(Config{}, nil, rng.New(7)); err == nil {
		t.Error("nil throughput should error")
	}
	if _, err := Play(Config{MaxHeight: 10}, constTput(5), rng.New(8)); err == nil {
		t.Error("MaxHeight below lowest rung should error")
	}
}

func TestShare(t *testing.T) {
	st := Stats{SecondsAt: map[string]float64{"720p": 75, "1080p": 25}}
	if got := st.Share("720p"); got != 0.75 {
		t.Errorf("Share = %f", got)
	}
	if got := st.Share("480p"); got != 0 {
		t.Errorf("missing rung share = %f", got)
	}
	if got := (Stats{SecondsAt: map[string]float64{}}).Share("720p"); got != 0 {
		t.Errorf("empty stats share = %f", got)
	}
}

func TestPickRung(t *testing.T) {
	if got := pickRung(YouTubeLadder, 3); YouTubeLadder[got].Name != "720p" {
		t.Errorf("3 Mbps budget -> %s", YouTubeLadder[got].Name)
	}
	if got := pickRung(YouTubeLadder, 0.01); YouTubeLadder[got].Name != "144p" {
		t.Errorf("tiny budget -> %s", YouTubeLadder[got].Name)
	}
	if got := pickRung(YouTubeLadder, 1000); YouTubeLadder[got].Name != "2160p" {
		t.Errorf("huge budget -> %s", YouTubeLadder[got].Name)
	}
}

func TestLadderMonotone(t *testing.T) {
	for i := 1; i < len(YouTubeLadder); i++ {
		if YouTubeLadder[i].Height <= YouTubeLadder[i-1].Height ||
			YouTubeLadder[i].BitrateKbps <= YouTubeLadder[i-1].BitrateKbps {
			t.Fatalf("ladder not monotone at %d", i)
		}
	}
}
