// Package video implements an adaptive-bitrate (ABR) video session model
// for the YouTube experiment: a bitrate ladder up to 4K, a buffer-based
// rate-adaptation loop, and the stats-for-nerds style output the
// campaign's browser extension scrapes (playback resolution shares,
// buffer occupancy, rebuffer events).
//
// Throughput enters as a sampling function so the measurement layer can
// wire in the simulated path bandwidth — including the YouTube-specific
// traffic-differentiation caps the paper conjectures for the HR b-MNOs.
package video

import (
	"fmt"

	"roamsim/internal/rng"
)

// Rung is one step of the encoding ladder.
type Rung struct {
	Name        string  // "720p"
	Height      int     // pixels
	BitrateKbps float64 // average encoded bitrate
}

// YouTubeLadder is a typical AVC ladder for a 4K source (the campaign
// plays a video whose maximum resolution is 2160p).
var YouTubeLadder = []Rung{
	{"144p", 144, 100},
	{"240p", 240, 250},
	{"360p", 360, 500},
	{"480p", 480, 1200},
	{"720p", 720, 2500},
	{"1080p", 1080, 5000},
	{"1440p", 1440, 10000},
	{"2160p", 2160, 20000},
}

// SegmentSeconds is the media segment duration.
const SegmentSeconds = 2.0

// Config parameterizes one playback session.
type Config struct {
	// DurationSec is the playback length to simulate.
	DurationSec float64
	// MaxHeight caps the selectable rung (device/player limit).
	MaxHeight int
	// SafetyFactor is the fraction of estimated throughput the ABR is
	// willing to spend (default 0.75).
	SafetyFactor float64
	// TargetBufferSec is the buffer level the player tries to hold
	// (default 12 s).
	TargetBufferSec float64
}

func (c Config) withDefaults() Config {
	if c.DurationSec == 0 {
		c.DurationSec = 120
	}
	if c.MaxHeight == 0 {
		c.MaxHeight = 2160
	}
	if c.SafetyFactor == 0 {
		c.SafetyFactor = 0.75
	}
	if c.TargetBufferSec == 0 {
		c.TargetBufferSec = 12
	}
	return c
}

// Stats is the stats-for-nerds summary of a session.
type Stats struct {
	// SecondsAt maps rung name to playback seconds spent at it.
	SecondsAt map[string]float64
	// DominantResolution is the rung with the most playback time.
	DominantResolution string
	// Rebuffers counts stall events after startup.
	Rebuffers int
	// StalledSec is total stall time.
	StalledSec float64
	// MeanBufferSec is the time-averaged buffer occupancy.
	MeanBufferSec float64
	// StartupDelaySec is time to first frame.
	StartupDelaySec float64
}

// Share returns the fraction of playback time at the given rung.
func (s Stats) Share(rungName string) float64 {
	var total float64
	for _, v := range s.SecondsAt {
		total += v
	}
	if total == 0 {
		return 0
	}
	return s.SecondsAt[rungName] / total
}

// ThroughputFunc samples the currently available download rate in Mbps.
type ThroughputFunc func() float64

// Play runs the ABR loop: segments are fetched one at a time, the rate
// estimate is an EWMA of observed per-segment throughput, and the rung
// choice is the highest whose bitrate fits SafetyFactor × estimate (with
// a little buffer-based boldness when the buffer is full).
func Play(cfg Config, throughput ThroughputFunc, src *rng.Source) (Stats, error) {
	cfg = cfg.withDefaults()
	if throughput == nil {
		return Stats{}, fmt.Errorf("video: nil throughput function")
	}
	ladder := usableLadder(cfg.MaxHeight)
	if len(ladder) == 0 {
		return Stats{}, fmt.Errorf("video: MaxHeight %d below lowest rung", cfg.MaxHeight)
	}

	st := Stats{SecondsAt: make(map[string]float64)}
	var (
		played    float64        // seconds of media played out
		buffer    float64        // seconds of media buffered
		estimate  = throughput() // initial probe
		bufferSum float64
		bufferN   int
	)

	// Startup: fetch two segments at a conservative rung before playing.
	startRung := pickRung(ladder, estimate*cfg.SafetyFactor*0.5)
	for i := 0; i < 2; i++ {
		dl, tput := fetchSegment(ladder[startRung], throughput, src)
		st.StartupDelaySec += dl
		estimate = 0.7*estimate + 0.3*tput
		buffer += SegmentSeconds
	}

	for played < cfg.DurationSec {
		// Choose the rung for the next segment.
		budget := estimate * cfg.SafetyFactor
		if buffer > cfg.TargetBufferSec {
			budget = estimate * 0.95 // buffer-rich: be bold
		}
		r := pickRung(ladder, budget)
		dl, tput := fetchSegment(ladder[r], throughput, src)
		estimate = 0.7*estimate + 0.3*tput

		// While the segment downloads, playback drains the buffer.
		if dl >= buffer {
			// Stall: buffer empties mid-download.
			playedNow := buffer
			st.SecondsAt[ladder[r].Name] += playedNow
			played += playedNow
			st.Rebuffers++
			st.StalledSec += dl - buffer
			buffer = SegmentSeconds // the fetched segment
		} else {
			st.SecondsAt[ladder[r].Name] += dl
			played += dl
			buffer += SegmentSeconds - dl
		}
		// Hold the buffer at a cap: real players pause fetching; model by
		// playing out the excess at the current rung.
		if buffer > 4*cfg.TargetBufferSec {
			excess := buffer - 4*cfg.TargetBufferSec
			st.SecondsAt[ladder[r].Name] += excess
			played += excess
			buffer -= excess
		}
		bufferSum += buffer
		bufferN++
	}
	if bufferN > 0 {
		st.MeanBufferSec = bufferSum / float64(bufferN)
	}
	best := ""
	var bestSec float64
	for name, sec := range st.SecondsAt {
		if sec > bestSec || (sec == bestSec && rungHeight(name) > rungHeight(best)) {
			best, bestSec = name, sec
		}
	}
	st.DominantResolution = best
	return st, nil
}

// fetchSegment downloads one segment at the given rung, returning the
// download duration in seconds and the observed throughput in Mbps.
func fetchSegment(r Rung, throughput ThroughputFunc, src *rng.Source) (sec, tputMbps float64) {
	tput := throughput()
	if tput <= 0.01 {
		tput = 0.01
	}
	tput = src.Jitter(tput, 0.15)
	bits := r.BitrateKbps * 1000 * SegmentSeconds
	return bits / (tput * 1e6), tput
}

func usableLadder(maxHeight int) []Rung {
	var out []Rung
	for _, r := range YouTubeLadder {
		if r.Height <= maxHeight {
			out = append(out, r)
		}
	}
	return out
}

// pickRung returns the index of the highest rung whose bitrate fits the
// budget (in Mbps), falling back to the lowest rung.
func pickRung(ladder []Rung, budgetMbps float64) int {
	pick := 0
	for i, r := range ladder {
		if r.BitrateKbps/1000 <= budgetMbps {
			pick = i
		}
	}
	return pick
}

func rungHeight(name string) int {
	for _, r := range YouTubeLadder {
		if r.Name == name {
			return r.Height
		}
	}
	return 0
}
