package signaling

import (
	"testing"

	"roamsim/internal/rng"
	"roamsim/internal/vmnocore"
)

func TestAttachMessageSequence(t *testing.T) {
	src := rng.New(1)
	tr, err := Attach(Config{LocalRTTms: 20, HomeHSS: "LocalHSS"}, src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Messages() != 9 {
		t.Fatalf("attach messages = %d, want 9", tr.Messages())
	}
	want := []MsgType{
		AttachRequest, AuthInfoReq, AuthInfoAns, AuthRequest, AuthResponse,
		UpdateLocReq, UpdateLocAns, AttachAccept, AttachComplete,
	}
	for i, ev := range tr.Events {
		if ev.Msg != want[i] {
			t.Errorf("event %d = %s, want %s", i, ev.Msg, want[i])
		}
		if ev.Seq != i+1 {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
		if i > 0 && ev.AtMs <= tr.Events[i-1].AtMs {
			t.Error("event times must increase")
		}
	}
	if tr.DurationMs <= 0 {
		t.Error("duration must be positive")
	}
}

func TestRoamingAttachSlower(t *testing.T) {
	src := rng.New(2)
	var native, roaming float64
	const n = 100
	for i := 0; i < n; i++ {
		tn, err := Attach(Config{LocalRTTms: 20}, src)
		if err != nil {
			t.Fatal(err)
		}
		native += tn.DurationMs
		tro, err := Attach(Config{Roaming: true, LocalRTTms: 20, IPXRTTms: 300, HomeHSS: "Singtel-HSS"}, src)
		if err != nil {
			t.Fatal(err)
		}
		roaming += tro.DurationMs
	}
	// Four S6a legs at 150 ms (one way) each vs 10 ms: roaming attach
	// should take several times longer.
	if roaming < native*3 {
		t.Errorf("roaming attach %.0f ms should dwarf native %.0f ms", roaming/n, native/n)
	}
}

func TestAttachValidation(t *testing.T) {
	src := rng.New(3)
	if _, err := Attach(Config{}, src); err == nil {
		t.Error("zero local RTT should fail")
	}
	if _, err := Attach(Config{Roaming: true, LocalRTTms: 20}, src); err == nil {
		t.Error("roaming without IPX RTT should fail")
	}
	if _, err := TAU(Config{}, src); err == nil {
		t.Error("TAU with zero RTT should fail")
	}
}

func TestTAUCheapAndLocal(t *testing.T) {
	src := rng.New(4)
	tr, err := TAU(Config{Roaming: true, LocalRTTms: 20, IPXRTTms: 300}, src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Messages() != 2 {
		t.Errorf("TAU messages = %d, want 2", tr.Messages())
	}
	// TAU stays local even for roamers: far below one IPX RTT.
	if tr.DurationMs > 60 {
		t.Errorf("TAU duration = %.0f ms, should be local-core scale", tr.DurationMs)
	}
}

func TestDailyMessageOrdering(t *testing.T) {
	native := ExpectedDailyMessages(DefaultDayProfile(false, false))
	airalo := ExpectedDailyMessages(DefaultDayProfile(true, true))
	roamerOnly := ExpectedDailyMessages(DefaultDayProfile(true, false))
	if !(airalo > native) {
		t.Errorf("aggregator roamer (%f) must out-signal native (%f) — Figure 5b", airalo, native)
	}
	if !(roamerOnly > native) {
		t.Errorf("plain roamer (%f) must out-signal native (%f)", roamerOnly, native)
	}
}

// TestConsistentWithVMNOCoreCalibration ties the mechanistic model to
// the distributional one: the ordering of expected daily messages must
// match the ordering of vmnocore's calibrated signalling medians.
func TestConsistentWithVMNOCoreCalibration(t *testing.T) {
	mech := map[vmnocore.Group]float64{
		vmnocore.GroupNative: ExpectedDailyMessages(DefaultDayProfile(false, false)),
		vmnocore.GroupAiralo: ExpectedDailyMessages(DefaultDayProfile(true, true)),
	}
	cal := map[vmnocore.Group]float64{
		vmnocore.GroupNative: vmnocore.DefaultProfiles[vmnocore.GroupNative].SigMedianMsg,
		vmnocore.GroupAiralo: vmnocore.DefaultProfiles[vmnocore.GroupAiralo].SigMedianMsg,
	}
	if (mech[vmnocore.GroupAiralo] > mech[vmnocore.GroupNative]) !=
		(cal[vmnocore.GroupAiralo] > cal[vmnocore.GroupNative]) {
		t.Error("mechanistic and calibrated signalling orderings disagree")
	}
	// And the magnitudes should be the same order: both say "hundreds
	// of messages per day" territory.
	for g, v := range mech {
		if v < cal[g]/4 || v > cal[g]*4 {
			t.Errorf("%s: mechanistic %f vs calibrated %f differ by >4x", g, v, cal[g])
		}
	}
}
