// Package signaling models the control-plane procedures that generate
// the signalling traffic of Figure 5b: attach (with S6a-style
// authentication and location update against the home HSS), periodic
// tracking-area updates, and paging.
//
// It supplies the *mechanism* behind the paper's observation that
// inferred Airalo users generate slightly more signalling than the
// v-MNO's native users: a roamer's authentication and location-update
// legs cross the IPX to the b-MNO's HSS (slower, retried more), and
// roamers re-select networks more often, re-running the whole
// procedure. The vmnocore package's calibrated volume distributions
// are consistent with the expectations this model produces (see tests).
package signaling

import (
	"fmt"

	"roamsim/internal/rng"
)

// MsgType is a control-plane message type (S1AP/NAS/S6a-flavored).
type MsgType string

// Control-plane messages of the attach and mobility procedures.
const (
	AttachRequest  MsgType = "Attach Request"                     // UE -> MME
	AuthInfoReq    MsgType = "Authentication-Information-Request" // MME -> HSS (S6a)
	AuthInfoAns    MsgType = "Authentication-Information-Answer"  // HSS -> MME
	AuthRequest    MsgType = "Authentication Request"             // MME -> UE
	AuthResponse   MsgType = "Authentication Response"
	UpdateLocReq   MsgType = "Update-Location-Request" // MME -> HSS (S6a)
	UpdateLocAns   MsgType = "Update-Location-Answer"
	AttachAccept   MsgType = "Attach Accept"
	AttachComplete MsgType = "Attach Complete"
	TAURequest     MsgType = "Tracking Area Update Request"
	TAUAccept      MsgType = "Tracking Area Update Accept"
	Paging         MsgType = "Paging"
	ServiceReq     MsgType = "Service Request"
)

// Event is one control-plane message with its completion time.
type Event struct {
	Seq  int
	Msg  MsgType
	From string
	To   string
	AtMs float64
}

// Trace is a completed procedure.
type Trace struct {
	Events []Event
	// DurationMs is the wall time of the procedure.
	DurationMs float64
}

// Messages returns the number of control messages exchanged.
func (t Trace) Messages() int { return len(t.Events) }

// Config parameterizes one subscriber's control-plane context.
type Config struct {
	// Roaming marks a subscriber whose HSS sits in another network,
	// reachable across the IPX.
	Roaming bool
	// LocalRTTms is the UE<->MME<->local-core round trip.
	LocalRTTms float64
	// IPXRTTms is the MME<->home-HSS round trip over the IPX (used only
	// when Roaming).
	IPXRTTms float64
	// HomeHSS names the HSS operator (for event labeling).
	HomeHSS string
}

func (c Config) hssRTT() float64 {
	if c.Roaming {
		return c.IPXRTTms
	}
	return c.LocalRTTms
}

func (c Config) validate() error {
	if c.LocalRTTms <= 0 {
		return fmt.Errorf("signaling: LocalRTTms must be positive")
	}
	if c.Roaming && c.IPXRTTms <= 0 {
		return fmt.Errorf("signaling: roaming requires IPXRTTms")
	}
	return nil
}

// Attach runs the full initial-attach procedure and returns its trace.
// For roamers the two S6a exchanges (authentication vectors, location
// update) cross the IPX, dominating the attach time — the control-plane
// sibling of the paper's data-plane tunnel finding.
func Attach(c Config, src *rng.Source) (Trace, error) {
	if err := c.validate(); err != nil {
		return Trace{}, err
	}
	hss := c.HomeHSS
	if hss == "" {
		hss = "HSS"
	}
	var tr Trace
	clock := 0.0
	add := func(msg MsgType, from, to string, rtt float64) {
		clock += src.Jitter(rtt/2, 0.2)
		tr.Events = append(tr.Events, Event{
			Seq: len(tr.Events) + 1, Msg: msg, From: from, To: to, AtMs: clock,
		})
	}
	add(AttachRequest, "UE", "MME", c.LocalRTTms)
	add(AuthInfoReq, "MME", hss, c.hssRTT())
	add(AuthInfoAns, hss, "MME", c.hssRTT())
	add(AuthRequest, "MME", "UE", c.LocalRTTms)
	add(AuthResponse, "UE", "MME", c.LocalRTTms)
	add(UpdateLocReq, "MME", hss, c.hssRTT())
	add(UpdateLocAns, hss, "MME", c.hssRTT())
	add(AttachAccept, "MME", "UE", c.LocalRTTms)
	add(AttachComplete, "UE", "MME", c.LocalRTTms)
	tr.DurationMs = clock
	return tr, nil
}

// TAU runs a periodic tracking-area update (no S6a leg in the common
// case).
func TAU(c Config, src *rng.Source) (Trace, error) {
	if err := c.validate(); err != nil {
		return Trace{}, err
	}
	var tr Trace
	clock := 0.0
	add := func(msg MsgType, from, to string, rtt float64) {
		clock += src.Jitter(rtt/2, 0.2)
		tr.Events = append(tr.Events, Event{Seq: len(tr.Events) + 1, Msg: msg, From: from, To: to, AtMs: clock})
	}
	add(TAURequest, "UE", "MME", c.LocalRTTms)
	add(TAUAccept, "MME", "UE", c.LocalRTTms)
	tr.DurationMs = clock
	return tr, nil
}

// DayProfile captures how often a subscriber runs each procedure per
// day.
type DayProfile struct {
	Attaches float64 // full attaches (power cycles, network reselection)
	TAUs     float64 // periodic + mobility TAUs
	Pagings  float64 // network-initiated wakeups
}

// DefaultDayProfile returns typical daily procedure rates. Roamers
// re-select networks and lose registration more often, so they re-run
// the expensive attach procedure more frequently — the Figure 5b
// mechanism. Tourists (aggregator users) also move more than locals,
// adding mobility TAUs.
func DefaultDayProfile(roaming bool, touristy bool) DayProfile {
	p := DayProfile{Attaches: 2, TAUs: 22, Pagings: 40}
	if roaming {
		p.Attaches += 3 // reselection between visited networks
		p.TAUs += 6
	}
	if touristy {
		p.TAUs += 8 // constant movement across tracking areas
		p.Pagings += 5
	}
	return p
}

// ExpectedDailyMessages estimates the control messages per day a
// subscriber with the given profile produces (attach 9, TAU 2, paging
// 2 including the service request).
func ExpectedDailyMessages(p DayProfile) float64 {
	return p.Attaches*9 + p.TAUs*2 + p.Pagings*2
}
