package lint

// Intraprocedural control-flow graph + dataflow engine.
//
// The flow-aware analyzers (ROAM006 fsyncrename, ROAM008 gojoin,
// ROAM009 lockorder) need to answer "on every path" / "on some path"
// questions that a plain ast.Inspect cannot: is this os.Rename
// preceded by a File.Sync on every way into it, is it followed by a
// directory fsync on every way out, does a WaitGroup.Add reach this go
// statement, which mutexes may be held at this acquisition? This file
// gives them a deliberately small shared engine:
//
//   - buildCFG lowers one function body to basic blocks of statements
//     with branch/loop/switch/select/defer-aware edges. Granularity is
//     the statement: a node is an ast.Stmt (or a loop/if condition
//     expression), and transfer functions inspect inside it without
//     crossing into nested func literals.
//   - funcCFG.solve runs iterative dataflow to a fixed point over the
//     blocks, forward or backward, with may (union) or must
//     (intersection) meet, and hands back the fact set at each node.
//
// Deliberate coarseness, documented so analyzer findings are
// explainable: goto edges go straight to the exit block (none of the
// contract code uses goto); fallthrough in a switch falls to the join
// like a break (rare, and over-approximating paths only makes must
// analyses stricter); deferred calls run on the single exit block even
// when registration was conditional. Facts are plain strings, so the
// engine stays generic and an analyzer's transfer function reads as a
// contract statement.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: statements that execute in sequence,
// with edges to every possible successor block.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. exit is the
// unique sink; it carries the function's deferred calls in reverse
// registration order, so "on every path to return" analyses see them.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

type loopCtx struct {
	brk  *cfgBlock // break target
	cont *cfgBlock // continue target (nil for switch/select contexts)
}

type cfgBuilder struct {
	g            *funcCFG
	loops        []loopCtx           // innermost-last stack for bare break/continue
	labels       map[string]*loopCtx // labeled break/continue targets
	defers       []ast.Node          // deferred CallExprs in registration order
	pendingLabel string              // label awaiting its loop/switch context
}

// buildCFG lowers body to a funcCFG. It never returns nil: an empty
// body yields entry → exit.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, labels: map[string]*loopCtx{}}
	b.g.exit = b.newBlock()
	b.g.entry = b.newBlock()
	last := b.stmtList(b.g.entry, body.List)
	b.edge(last, b.g.exit)
	// Deferred calls run between any return and the true function exit.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.g.exit.nodes = append(b.g.exit.nodes, b.defers[i])
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge links from → to; a nil from (control never falls through) is a
// no-op.
func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) stmtList(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt wires s into the graph starting at cur and returns the block
// control falls out of, or nil if control never falls through (return,
// break, continue, panic).
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	if cur == nil {
		// Unreachable code still gets a block (no preds), so analyses
		// can look facts up without special cases.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmt(thenB, s.Body)
		var elseEnd *cfgBlock
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd = b.stmt(elseB, s.Else)
		}
		if s.Else == nil {
			join := b.newBlock()
			b.edge(cur, join) // condition false
			b.edge(thenEnd, join)
			return join
		}
		if thenEnd == nil && elseEnd == nil {
			return nil
		}
		join := b.newBlock()
		b.edge(thenEnd, join)
		b.edge(elseEnd, join)
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		ctx := loopCtx{brk: after, cont: cont}
		b.loops = append(b.loops, ctx)
		b.bindLabel(s, &ctx)
		body := b.newBlock()
		b.edge(head, body)
		bodyEnd := b.stmt(body, s.Body)
		b.edge(bodyEnd, cont)
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		// The RangeStmt node itself stands for the per-iteration
		// key/value binding and the ranged expression.
		head.nodes = append(head.nodes, s)
		b.edge(cur, head)
		after := b.newBlock()
		b.edge(head, after)
		ctx := loopCtx{brk: after, cont: head}
		b.loops = append(b.loops, ctx)
		b.bindLabel(s, &ctx)
		body := b.newBlock()
		b.edge(head, body)
		bodyEnd := b.stmt(body, s.Body)
		b.edge(bodyEnd, head)
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			init, tag, clauses = s.Init, s.Tag, s.Body.List
		case *ast.TypeSwitchStmt:
			init, tag, clauses = s.Init, s.Assign, s.Body.List
		}
		if init != nil {
			cur.nodes = append(cur.nodes, init)
		}
		if tag != nil {
			cur.nodes = append(cur.nodes, tag)
		}
		after := b.newBlock()
		ctx := loopCtx{brk: after}
		b.loops = append(b.loops, ctx)
		b.bindLabel(s, &ctx)
		hasDefault := false
		for _, cl := range clauses {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			cb := b.newBlock()
			b.edge(cur, cb)
			for _, e := range cc.List {
				cb.nodes = append(cb.nodes, e)
			}
			end := b.stmtList(cb, cc.Body)
			b.edge(end, after)
		}
		if !hasDefault {
			b.edge(cur, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.SelectStmt:
		after := b.newBlock()
		ctx := loopCtx{brk: after}
		b.loops = append(b.loops, ctx)
		b.bindLabel(s, &ctx)
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			cb := b.newBlock()
			b.edge(cur, cb)
			if cc.Comm != nil {
				cb.nodes = append(cb.nodes, cc.Comm)
			}
			end := b.stmtList(cb, cc.Body)
			b.edge(end, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, true); t != nil {
				b.edge(cur, t)
			}
			return nil
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, false); t != nil {
				b.edge(cur, t)
			}
			return nil
		case token.GOTO:
			// Coarse: none of the contract code uses goto. Routing it to
			// exit keeps every path terminated without label threading.
			b.edge(cur, b.g.exit)
			return nil
		default: // fallthrough — over-approximate as falling to the join
			return cur
		}

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		return b.stmt(cur, s.Stmt)

	case *ast.DeferStmt:
		cur.nodes = append(cur.nodes, s)
		b.defers = append(b.defers, s.Call)
		return cur

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isTerminalCall(s.X) {
			b.edge(cur, b.g.exit)
			return nil
		}
		return cur

	default:
		// Assignments, declarations, go/send/inc-dec, empties.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// branchTarget resolves break/continue to its loop (or labeled) target.
func (b *cfgBuilder) branchTarget(label *ast.Ident, isBreak bool) *cfgBlock {
	if label != nil {
		if ctx := b.labels[label.Name]; ctx != nil {
			if isBreak {
				return ctx.brk
			}
			return ctx.cont
		}
		return b.g.exit // unresolvable label: bail to exit
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		ctx := b.loops[i]
		if isBreak {
			return ctx.brk
		}
		if ctx.cont != nil { // bare continue skips switch/select contexts
			return ctx.cont
		}
	}
	return b.g.exit
}

// bindLabel attaches the most recent pending label to the loop/switch
// context just pushed.
func (b *cfgBuilder) bindLabel(_ ast.Stmt, ctx *loopCtx) {
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = ctx
		b.pendingLabel = ""
	}
}

// isTerminalCall reports whether e is a call that never returns:
// panic(...) or os.Exit(...).
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return (id.Name == "os" && fun.Sel.Name == "Exit") ||
				(id.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"))
		}
	}
	return false
}

// facts is a dataflow fact set: fact name → present. The nil map is a
// valid empty set; solvers copy before mutating.
type facts map[string]bool

func (f facts) clone() facts {
	out := make(facts, len(f))
	for k, v := range f {
		if v {
			out[k] = true
		}
	}
	return out
}

func factsEqual(a, b facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// meet combines predecessor fact sets. For must analyses the identity
// is ⊤ (represented by a nil slice of inputs → nil result handled by
// the caller); intersection otherwise. For may analyses it is union.
func meet(must bool, sets []facts) facts {
	if len(sets) == 0 {
		return facts{}
	}
	out := sets[0].clone()
	for _, s := range sets[1:] {
		if must {
			for k := range out {
				if !s[k] {
					delete(out, k)
				}
			}
		} else {
			for k := range s {
				out[k] = true
			}
		}
	}
	return out
}

// solve runs iterative dataflow to a fixed point and returns, for each
// node, the fact set immediately BEFORE it in execution order when
// forward, or immediately AFTER it when backward. transfer receives a
// private copy it may mutate and return.
//
// Boundary facts are empty: nothing is known at function entry
// (forward) or after function exit (backward). Unreached blocks (no
// predecessors in the relevant direction beyond the boundary) start
// from ⊤ for must analyses, so unreachable code never fails a must
// check.
func (g *funcCFG) solve(forward, must bool, transfer func(n ast.Node, in facts) facts) map[ast.Node]facts {
	// out[b]: facts leaving b in the direction of travel.
	out := map[*cfgBlock]facts{}
	boundary := g.entry
	if !forward {
		boundary = g.exit
	}

	inEdges := func(b *cfgBlock) []*cfgBlock {
		if forward {
			return b.preds
		}
		return b.succs
	}
	nodesOf := func(b *cfgBlock) []ast.Node {
		if forward {
			return b.nodes
		}
		rev := make([]ast.Node, len(b.nodes))
		for i, n := range b.nodes {
			rev[len(b.nodes)-1-i] = n
		}
		return rev
	}

	blockIn := func(b *cfgBlock) facts {
		if b == boundary {
			return facts{}
		}
		var sets []facts
		for _, p := range inEdges(b) {
			if o, ok := out[p]; ok {
				sets = append(sets, o)
			} else if !must {
				sets = append(sets, facts{})
			}
			// For must analyses an unsolved predecessor is ⊤ and drops
			// out of the intersection.
		}
		if sets == nil {
			if must {
				return nil // ⊤: no constraint yet
			}
			return facts{}
		}
		return meet(must, sets)
	}

	// Iterate to fixed point. Transfers are monotone set/clear
	// operations and blocks are small, so simple rounds converge fast;
	// the cap is a safety net, not a tuning knob.
	for round := 0; round < 4*len(g.blocks)+8; round++ {
		changed := false
		for _, b := range g.blocks {
			in := blockIn(b)
			if in == nil {
				continue // ⊤ stays ⊤ until a predecessor resolves
			}
			cur := in.clone()
			for _, n := range nodesOf(b) {
				cur = transfer(n, cur)
			}
			if prev, ok := out[b]; !ok || !factsEqual(prev, cur) {
				out[b] = cur
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Final pass: record per-node facts. Blocks still at ⊤ (unreachable
	// in the direction of travel) record nothing: a missing entry tells
	// the analyzer "no flow information", and analyzers skip the check
	// rather than report on dead code.
	result := map[ast.Node]facts{}
	for _, b := range g.blocks {
		in := blockIn(b)
		if in == nil {
			continue
		}
		cur := in.clone()
		for _, n := range nodesOf(b) {
			result[n] = cur.clone()
			cur = transfer(n, cur)
		}
	}
	return result
}

// inspectShallow walks n without descending into nested function
// literals: flow analyses must not attribute a closure's body to the
// enclosing function's program point.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
