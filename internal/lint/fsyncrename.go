package lint

import (
	"go/ast"
	"go/types"
)

// ROAM006 fsyncrename: in durability-scoped packages (the WAL sink,
// the shard control plane, and fleet's reshard/manifest path), an
// os.Rename whose target is a committed artifact must follow the full
// crash-safe protocol PR 9 established for WAL compaction:
//
//	write tmp → File.Sync → os.Rename → fsync(dir)
//
// A rename without the preceding file fsync can commit a name that
// points at unwritten bytes; a rename without the following directory
// fsync can vanish entirely on power loss — the classic
// "rename-is-not-a-commit-point" bug. Both halves are flow checks over
// the shared CFG engine:
//
//   - dominated-by-sync (forward must): on every path from function
//     entry to the rename, some *os.File.Sync happened — directly or
//     through a module-local helper whose body (transitively) syncs a
//     file, e.g. walsink's rewrite.
//   - followed-by-dirfsync (backward must): on every path from the
//     rename to a successful return, a directory fsync happens —
//     directly (Sync on a handle opened with os.Open) or through a
//     module-local helper like fsyncDir. Paths that bail with a
//     non-nil error (return err, return fmt.Errorf(...), panic) are
//     exempt: a failed commit needs no durability barrier.
//
// Precision notes, so findings stay explainable: the sync fact is not
// tracked per file handle — "some file sync on every path" is the
// contract, and the golden suite pins exactly that; a return whose
// error result is itself a fresh call (e.g. `return os.Rename(...)`)
// is NOT a bail, because its success case is a commit with no barrier
// behind it.
var fsyncrenameAnalyzer = &Analyzer{
	Name: "fsyncrename",
	Code: "ROAM006",
	Doc:  "os.Rename commits in durability-scoped packages are fenced by File.Sync before and a directory fsync after",
	// Run is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { fsyncrenameAnalyzer.Run = runFsyncrename }

const (
	factFileSynced = "filesynced"
	factDirSync    = "dirsync"
)

func runFsyncrename(p *Package) []Diagnostic {
	fileSyncers, dirSyncers := classifySyncHelpers(p)
	var out []Diagnostic
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if !durabilityScoped(p, filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			renames := renameCalls(fd.Body)
			if len(renames) == 0 {
				continue
			}
			out = append(out, checkRenameProtocol(p, fd, renames, fileSyncers, dirSyncers)...)
		}
	}
	return out
}

// renameCalls collects every os.Rename call in body, excluding nested
// function literals (they are separate flow universes).
func renameCalls(body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgCall(call, "os", "Rename") {
			out = append(out, call)
		}
		return true
	})
	return out
}

// isPkgCall reports whether call is pkg.Name(...) purely syntactically
// — used only where the package identifier is unambiguous (os, fmt,
// errors). Type-resolved variants below use importedPkg.
func isPkgCall(call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

func checkRenameProtocol(p *Package, fd *ast.FuncDecl, renames []*ast.CallExpr,
	fileSyncers, dirSyncers map[*types.Func]bool) []Diagnostic {

	g := buildCFG(fd.Body)
	dirOpened := dirHandles(p, fd)

	// Forward must: has a file fsync happened on every path here?
	before := g.solve(true, true, func(n ast.Node, in facts) facts {
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isFileSyncCall(p, call) || callsHelper(p, call, fileSyncers) {
				in[factFileSynced] = true
			}
			return true
		})
		return in
	})

	// Backward must: will a directory fsync happen on every successful
	// path from here? Error bails and panics satisfy the requirement.
	after := g.solve(false, true, func(n ast.Node, in facts) facts {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			// A dirsync inside the return expression itself (e.g.
			// `return fsyncDir(dir)`) runs before the return commits.
			synced := false
			inspectShallow(ret, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok &&
					(isDirSyncCall(p, call, dirOpened) || callsHelper(p, call, dirSyncers)) {
					synced = true
				}
				return true
			})
			if synced || errorBail(p, ret) {
				in[factDirSync] = true
			} else {
				delete(in, factDirSync)
			}
			return in
		}
		bail := false
		gen := false
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isDirSyncCall(p, call, dirOpened) || callsHelper(p, call, dirSyncers) {
				gen = true
			}
			if isTerminalCall(call) {
				bail = true
			}
			return true
		})
		if gen || bail {
			in[factDirSync] = true
		}
		return in
	})

	// Map each rename to the statement-level node holding its facts.
	var out []Diagnostic
	for _, rename := range renames {
		node := containingNode(g, rename)
		if node == nil {
			continue // unreachable code: no flow information, no finding
		}
		if f, ok := before[node]; ok && !f[factFileSynced] {
			out = append(out, diag(p, fsyncrenameAnalyzer, rename.Pos(),
				"os.Rename in %s is not dominated by a File.Sync: a crash can commit a name pointing at unwritten bytes (tmp→fsync→rename→fsyncDir)",
				fd.Name.Name))
		}
		if f, ok := after[node]; ok && !f[factDirSync] {
			out = append(out, diag(p, fsyncrenameAnalyzer, rename.Pos(),
				"os.Rename in %s is not followed on every successful path by a directory fsync: the rename itself can vanish on power loss (tmp→fsync→rename→fsyncDir)",
				fd.Name.Name))
		}
	}
	return out
}

// containingNode finds the CFG node (statement or control expression)
// that contains expr.
func containingNode(g *funcCFG, expr ast.Expr) ast.Node {
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			found := false
			inspectShallow(n, func(m ast.Node) bool {
				if m == ast.Node(expr) {
					found = true
				}
				return !found
			})
			if found {
				return n
			}
		}
	}
	return nil
}

// isFileSyncCall reports whether call is X.Sync() where X is an
// *os.File.
func isFileSyncCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	t := p.Info.Types[sel.X].Type
	return t != nil && isOSFilePtr(t)
}

func isOSFilePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// dirHandles returns the set of variables in fd assigned from os.Open
// — in the durability packages os.Open is only used to get a directory
// handle for fsync (files are created with os.OpenFile/os.Create).
func dirHandles(p *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	inspectShallow(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isPkgCall(call, "os", "Open") {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v, ok := p.Info.Defs[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// isDirSyncCall reports whether call is X.Sync() on a handle opened
// with os.Open in the same function (the inline directory-fsync
// idiom).
func isDirSyncCall(p *Package, call *ast.CallExpr, dirOpened map[*types.Var]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	v, _ := p.Info.Uses[id].(*types.Var)
	return v != nil && dirOpened[v]
}

// callsHelper reports whether call's callee is one of the classified
// module-local helper functions.
func callsHelper(p *Package, call *ast.CallExpr, helpers map[*types.Func]bool) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	return ok && helpers[fn]
}

// classifySyncHelpers partitions this package's functions into file
// syncers (the body, transitively, calls Sync on an *os.File) and dir
// syncers (the body, transitively, syncs a handle opened with os.Open
// — the fsyncDir shape). A helper can be both; fsyncDir is.
func classifySyncHelpers(p *Package) (fileSyncers, dirSyncers map[*types.Func]bool) {
	fileSyncers = map[*types.Func]bool{}
	dirSyncers = map[*types.Func]bool{}
	type declInfo struct {
		fn *types.Func
		fd *ast.FuncDecl
	}
	var decls []declInfo
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, declInfo{fn, fd})
			dirOpened := dirHandles(p, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isFileSyncCall(p, call) {
					fileSyncers[fn] = true
				}
				if isDirSyncCall(p, call, dirOpened) {
					dirSyncers[fn] = true
				}
				return true
			})
		}
	}
	// Propagate through module-local calls to a fixed point (helpers
	// that delegate to helpers).
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			ast.Inspect(d.fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !fileSyncers[d.fn] && callsHelper(p, call, fileSyncers) {
					fileSyncers[d.fn] = true
					changed = true
				}
				if !dirSyncers[d.fn] && callsHelper(p, call, dirSyncers) {
					dirSyncers[d.fn] = true
					changed = true
				}
				return true
			})
		}
	}
	return fileSyncers, dirSyncers
}

// errorBail reports whether ret returns a non-nil error that was
// already in hand: an identifier (err, ErrFoo), a selector
// (pkg.ErrFoo), or a fresh wrap via fmt.Errorf / errors.New /
// errors.Join. A call like `return os.Rename(...)` is NOT a bail —
// its success case is a commit path.
func errorBail(p *Package, ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		tv, ok := p.Info.Types[r]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		if !isErrorType(tv.Type) {
			continue
		}
		switch e := r.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			return true
		case *ast.CallExpr:
			if isPkgCall(e, "fmt", "Errorf") || isPkgCall(e, "errors", "New") || isPkgCall(e, "errors", "Join") {
				return true
			}
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
