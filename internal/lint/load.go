package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package as the analyzers see it.
// Type information may be partial if the package (or a dependency) has
// type errors; analyzers tolerate nil lookups.
type Package struct {
	Path  string // import path, e.g. "roamsim/internal/netsim"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Pkg   *types.Package
	Info  *types.Info

	// TypeErrs holds type-checker errors (reported, not fatal: the
	// analyzers still run on whatever was resolved).
	TypeErrs []error
}

// Loader loads and type-checks packages of one module from source.
// Module-local imports resolve recursively through the loader itself;
// everything else (the standard library — go.mod has no external
// dependencies) resolves through go/importer's source importer.
type Loader struct {
	ModRoot string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles (invalid Go, but a cycle in
	// a broken tree must error, not hang).
	loading map[string]bool
}

// NewLoader locates the module root at or above dir and reads the
// module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from the first "module" line of a
// go.mod file. The module has no dependencies, so a full modfile parser
// is not needed.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadAll discovers every package directory in the module (skipping
// testdata, vendor, and hidden directories) and loads each one. The
// result is sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "bin") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		p, err := l.Load(l.pathForDir(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the module package with the given import
// path, loading its module-local dependencies first. Results are
// memoized, so a package shared by many importers is checked once.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the single package in dir under the
// import path asPath. This is also the entry point for golden-test
// packages under testdata, which are loaded with a curated import path
// so scope rules (deterministic package or not) can be exercised.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if p, ok := l.pkgs[asPath]; ok {
		return p, nil
	}
	if l.loading[asPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", asPath)
	}
	l.loading[asPath] = true
	defer func() { l.loading[asPath] = false }()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	for _, fname := range names {
		f, err := parser.ParseFile(l.fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", fname, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	p := &Package{Path: asPath, Dir: dir, Fset: l.fset, Files: files, Info: info}
	conf := types.Config{
		Importer: &chainImporter{loader: l},
		Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	// Type errors are collected, not fatal: analyzers run on partial info.
	p.Pkg, _ = conf.Check(asPath, l.fset, files, info)
	l.pkgs[asPath] = p
	return p, nil
}

// chainImporter resolves module-local imports through the Loader and
// everything else through the source importer.
type chainImporter struct {
	loader *Loader
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	l := c.loader
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if p.Pkg == nil {
			return nil, fmt.Errorf("lint: %s failed to type-check", path)
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}
