package lint

import (
	"go/ast"
	"go/types"
)

// ROAM003 maporder: Go randomizes map iteration order per run, so a
// `range` over a map must never feed ordered output directly. Inside
// deterministic scope the analyzer flags a map-range body that
//
//   - appends to a slice declared outside the loop, unless that slice
//     is passed to a sort.* / slices.Sort* call later in the same
//     function (the canonical collect-keys-then-sort idiom),
//   - writes to an io.Writer / bytes.Buffer / strings.Builder or calls
//     fmt.Print*/Fprint* (bytes hit the output in iteration order —
//     no post-hoc sort can fix that),
//   - concatenates onto a string variable declared outside the loop.
//
// Commutative uses (summing into a counter, writing into another map,
// finding a max) pass untouched.
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Code: "ROAM003",
	Doc:  "map iteration never feeds ordered output without an intervening sort",
	// Run is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { maporderAnalyzer.Run = runMaporder }

func runMaporder(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if !deterministic(p, filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, maporderFunc(p, fd)...)
		}
	}
	return out
}

func maporderFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		out = append(out, maporderBody(p, fd, rs)...)
		return true
	})
	return out
}

func maporderBody(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// v = append(v, ...) where v is declared outside the range.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := p.Info.Uses[target].(*types.Var)
				if !ok && p.Info.Defs[target] != nil {
					continue // := inside the loop: loop-local, ordering irrelevant
				}
				if !ok || v.Pos() >= rs.Pos() && v.Pos() <= rs.End() {
					continue
				}
				if sortedAfter(p, fd, rs, v) {
					continue
				}
				out = append(out, diag(p, maporderAnalyzer, n.Pos(),
					"append to %q inside range over map: iteration order leaks into the slice (sort it afterwards or iterate sorted keys)",
					v.Name()))
			}
			// s += ... on an outer string.
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if v, ok := p.Info.Uses[id].(*types.Var); ok &&
						isString(v.Type()) && !(v.Pos() >= rs.Pos() && v.Pos() <= rs.End()) {
						out = append(out, diag(p, maporderAnalyzer, n.Pos(),
							"string concatenation onto %q inside range over map: output depends on iteration order",
							v.Name()))
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := orderedWriteCall(p, n); ok {
				out = append(out, diag(p, maporderAnalyzer, n.Pos(),
					"%s inside range over map: bytes reach the output in iteration order (iterate sorted keys instead)",
					name))
			}
		}
		return true
	})
	return out
}

func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// sortedAfter reports whether v is handed to a sort.* or slices.*Sort*
// call positioned after the range statement in the same function — the
// collect-then-sort idiom that makes the append order-safe.
func sortedAfter(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, _ := importedPkg(p, sel)
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsVar(p, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsVar(p *Package, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == v {
			found = true
			return false
		}
		return !found
	})
	return found
}

// orderedWriteFuncs are fmt functions whose output position is the
// call site itself.
var orderedWriteFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// orderedWriteMethods are methods that push bytes onto an ordered sink.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// orderedWriteCall recognizes writes whose byte order is the iteration
// order: fmt.Print*/Fprint* and Write* methods on io.Writer
// implementations (bytes.Buffer, strings.Builder, files, ...).
func orderedWriteCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgPath, _ := importedPkg(p, sel); pkgPath == "fmt" && orderedWriteFuncs[sel.Sel.Name] {
		return "fmt." + sel.Sel.Name, true
	}
	if !orderedWriteMethods[sel.Sel.Name] {
		return "", false
	}
	// Any Write*/WriteString method call counts: bytes emitted in range
	// order are wrong regardless of the concrete sink type.
	if selInfo, ok := p.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
		return types.TypeString(selInfo.Recv(), func(p *types.Package) string {
			return p.Name()
		}) + "." + sel.Sel.Name, true
	}
	return "", false
}
