package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ROAM008 gojoin: every go statement in control-plane scope must have
// a visible join path. A goroutine nobody joins outlives the campaign
// that spawned it: it races fleet shutdown, holds a WAL or socket
// handle past Close, or mutates a dataset after it was sealed — and
// under the virtual clock an unjoined waiter either deadlocks
// quiescence or lets time advance without it. Recognized join
// evidence, per spawn:
//
//   - WaitGroup-style pairing: the spawned body (func literal, or a
//     module-local function/method) calls X.Done() — normally
//     deferred — and an X.Add(...) on the same counter reaches the go
//     statement on some path (forward may-analysis over the shared
//     CFG). The vclock.Virtual Add/Done waiter registry counts
//     exactly like sync.WaitGroup: it IS the fleet's join registry.
//   - Channel collector: the spawned closure sends on a channel that
//     the enclosing function also receives from (<-ch, range ch, or a
//     select case) — the receive is the join.
//   - An explicit //lint:allow gojoin <reason> for the rare sanctioned
//     fire-and-forget (e.g. a process-lifetime HTTP server in a cmd
//     main).
//
// The classic race gets its own diagnostic: wg.Add called INSIDE the
// spawned closure. By the time the goroutine runs Add, the parent may
// already have passed Wait — the canonical lost-signal bug — so the
// pairing is reported even though Add and Done are both present.
//
// "Reaches on some path" (may), not "dominates" (must), is deliberate:
// Add and the spawn are frequently guarded by the same condition
// computed under a lock (fleet.maybeReshard), which a path-insensitive
// must-analysis cannot correlate. Flow order still matters — an Add
// AFTER the go statement is no evidence — and the Add-inside-closure
// race is caught by its dedicated check above.
var gojoinAnalyzer = &Analyzer{
	Name: "gojoin",
	Code: "ROAM008",
	Doc:  "every go statement in control-plane packages has a join path (WaitGroup pairing, channel collector, or a justified allow)",
	// Run is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { gojoinAnalyzer.Run = runGojoin }

func runGojoin(p *Package) []Diagnostic {
	declByFunc := moduleFuncDecls(p)
	var out []Diagnostic
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if !controlPlaneScoped(p, filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Analyze the declared body and every nested func literal as
			// separate enclosing scopes: a go statement's flow context is
			// its innermost enclosing function.
			for _, body := range enclosingBodies(fd.Body) {
				out = append(out, checkGoJoins(p, fd, body, declByFunc)...)
			}
		}
	}
	return out
}

// enclosingBodies returns body plus the body of every function literal
// nested anywhere inside it.
func enclosingBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

const factAddPrefix = "add:"

func checkGoJoins(p *Package, fd *ast.FuncDecl, body *ast.BlockStmt, declByFunc map[*types.Func]*ast.FuncDecl) []Diagnostic {
	var spawns []*ast.GoStmt
	inspectShallow(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	if len(spawns) == 0 {
		return nil
	}

	g := buildCFG(body)
	// Forward may: which X.Add(...) counters reach each point?
	reach := g.solve(true, false, func(n ast.Node, in facts) facts {
		inspectShallow(n, func(m ast.Node) bool {
			if base, ok := addCallBase(m); ok {
				in[factAddPrefix+base] = true
			}
			return true
		})
		return in
	})

	var out []Diagnostic
	for _, spawn := range spawns {
		out = append(out, checkOneSpawn(p, fd, body, g, reach, spawn, declByFunc)...)
	}
	return out
}

func checkOneSpawn(p *Package, fd *ast.FuncDecl, body *ast.BlockStmt, g *funcCFG,
	reach map[ast.Node]facts, spawn *ast.GoStmt, declByFunc map[*types.Func]*ast.FuncDecl) []Diagnostic {

	var out []Diagnostic

	// The spawned body: a func literal's own body, or the declaration
	// of a module-local function/method.
	var spawnedBody *ast.BlockStmt
	if lit, ok := spawn.Call.Fun.(*ast.FuncLit); ok {
		spawnedBody = lit.Body
	} else if fn := calleeFunc(p, spawn.Call); fn != nil {
		if decl := declByFunc[fn]; decl != nil {
			spawnedBody = decl.Body
		}
	}

	// Classic race: a sync.WaitGroup Add inside the spawned body.
	if spawnedBody != nil {
		inspectShallow(spawnedBody, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && isWaitGroupExpr(p, sel.X) {
				out = append(out, diag(p, gojoinAnalyzer, call.Pos(),
					"%s.Add inside the spawned goroutine races Wait: by the time the goroutine runs, the parent may already be past Wait — call Add before the go statement",
					types.ExprString(sel.X)))
			}
			return true
		})
	}

	// The specific race diagnostic supersedes the generic no-join one:
	// the pairing exists, it is just fatally misplaced.
	if len(out) > 0 {
		return out
	}

	if hasJoinEvidence(p, body, reach, spawn, spawnedBody) {
		return out
	}
	out = append(out, diag(p, gojoinAnalyzer, spawn.Pos(),
		"go statement in %s has no join path: pair it with Add-before-spawn + deferred Done, collect it on a channel the caller receives from, or justify with //lint:allow gojoin",
		fd.Name.Name))
	return out
}

func hasJoinEvidence(p *Package, body *ast.BlockStmt, reach map[ast.Node]facts,
	spawn *ast.GoStmt, spawnedBody *ast.BlockStmt) bool {

	spawnFacts := reach[containingGoNode(reach, spawn)]

	// WaitGroup-style: Done in the spawned body + a reaching Add on a
	// matching counter.
	if spawnedBody != nil {
		for _, done := range doneCallBases(spawnedBody) {
			for fact := range spawnFacts {
				addBase, ok := strings.CutPrefix(fact, factAddPrefix)
				if ok && counterMatch(addBase, done) {
					return true
				}
			}
		}
	}

	// Channel collector: the spawned closure sends on a channel the
	// enclosing body receives from.
	if lit, ok := spawn.Call.Fun.(*ast.FuncLit); ok {
		for _, ch := range sentChannels(lit.Body) {
			if receivesFrom(body, lit, ch) {
				return true
			}
		}
	}
	return false
}

// containingGoNode finds the flow node holding spawn; the go statement
// is itself a statement-level node in its block.
func containingGoNode(reach map[ast.Node]facts, spawn *ast.GoStmt) ast.Node {
	if _, ok := reach[spawn]; ok {
		return spawn
	}
	for n := range reach {
		found := false
		inspectShallow(n, func(m ast.Node) bool {
			if m == ast.Node(spawn) {
				found = true
			}
			return !found
		})
		if found {
			return n
		}
	}
	return nil
}

// addCallBase matches X.Add(...) spawn-accounting calls and returns
// the textual base X. Atomic counters also have Add methods; they
// never pair with a Done, so the looseness is harmless — matching
// happens against Done bases.
func addCallBase(n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// doneCallBases collects the textual bases of X.Done() calls (plain or
// deferred) in the spawned body.
func doneCallBases(body *ast.BlockStmt) []string {
	var out []string
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			out = append(out, types.ExprString(sel.X))
		}
		return true
	})
	return out
}

// counterMatch pairs an Add base with a Done base. Exact match first
// (wg / v); otherwise the final path component must agree (caller
// f.wg.Add vs callee method w.wg.Done — different receivers, same
// counter field).
func counterMatch(addBase, doneBase string) bool {
	if addBase == doneBase {
		return true
	}
	return lastComponent(addBase) == lastComponent(doneBase)
}

func lastComponent(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// sentChannels collects the textual channel expressions the closure
// sends on.
func sentChannels(body *ast.BlockStmt) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok {
			out = append(out, types.ExprString(send.Chan))
		}
		return true
	})
	return out
}

// receivesFrom reports whether body — outside the spawned literal —
// receives from channel expression ch: <-ch, range ch, or a select
// case.
func receivesFrom(body *ast.BlockStmt, spawned *ast.FuncLit, ch string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == ast.Node(spawned) {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && types.ExprString(n.X) == ch {
				found = true
			}
		case *ast.RangeStmt:
			if types.ExprString(n.X) == ch {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeFunc resolves a call's callee to its *types.Func, if any.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isWaitGroupExpr reports whether e's type is sync.WaitGroup (or a
// pointer to it).
func isWaitGroupExpr(p *Package, e ast.Expr) bool {
	t := p.Info.Types[e].Type
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// moduleFuncDecls maps each function object declared in this package
// to its declaration, for spawned-method body lookup.
func moduleFuncDecls(p *Package) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}
