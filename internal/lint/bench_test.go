package lint

import "testing"

// BenchmarkRoamvet measures a full-module run of the whole suite —
// load + type-check + all nine analyzers including the module-wide
// lock graph — which is exactly what `make lint` pays on every push.
// scripts/lint_guard.sh enforces the wall-clock budget in CI; this
// benchmark is where a regression gets localized.
func BenchmarkRoamvet(b *testing.B) {
	analyzers := Analyzers()
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		diags := CheckModule(pkgs, analyzers)
		if len(diags) != 0 {
			b.Fatalf("tree is not lint-clean: %d findings, first: %s", len(diags), diags[0])
		}
	}
}
