package lint

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRoamvetExitCodes builds the real roamvet binary, points it at a
// scratch module seeded with one violation per self-contained
// contract, and asserts the CLI behavior the Makefile and CI rely on:
// nonzero exit naming every code on a dirty tree, zero exit with -only
// scoped to an analyzer the tree passes, and a parseable -json mode.
func TestRoamvetExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the roamvet binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "roamvet")
	build := exec.Command("go", "build", "-o", bin, "roamsim/cmd/roamvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building roamvet: %v\n%s", err, out)
	}

	// Scratch module named roamsim so the deterministic-scope rules
	// apply; the seeded file lands under internal/measure (in scope).
	mod := filepath.Join(tmp, "mod")
	dir := filepath.Join(mod, "internal", "measure")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module roamsim\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	seeded, err := os.ReadFile(filepath.Join("testdata", "src", "seeded", "seeded.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), seeded, 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) (string, int) {
		cmd := exec.Command(bin, append(args, "-C", mod)...)
		out, err := cmd.Output()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running roamvet %v: %v", args, err)
		}
		return string(out), code
	}

	out, code := run()
	if code != 1 {
		t.Fatalf("seeded module: exit %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"ROAM001", "ROAM003", "ROAM004", "ROAM007"} {
		if !strings.Contains(out, want) {
			t.Errorf("seeded module output missing %s:\n%s", want, out)
		}
	}

	if out, code := run("-only", "guardedfield"); code != 0 {
		t.Fatalf("-only guardedfield on seeded module: exit %d, want 0\n%s", code, out)
	}

	out, code = run("-json")
	if code != 1 {
		t.Fatalf("-json seeded module: exit %d, want 1\n%s", code, out)
	}
	var rep struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
		Allows      []Allow      `json:"allows"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(rep.Diagnostics) < 4 {
		t.Fatalf("-json reported %d findings, want >= 4", len(rep.Diagnostics))
	}
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.Line == 0 || !strings.HasPrefix(d.Code, "ROAM") {
			t.Errorf("malformed JSON diagnostic: %+v", d)
		}
	}
	if len(rep.Allows) != 1 {
		t.Fatalf("-json reported %d allows, want 1:\n%s", len(rep.Allows), out)
	}
	if a := rep.Allows[0]; a.Analyzer != "wallclock" || a.Reason == "" || a.File == "" || a.Line == 0 {
		t.Errorf("malformed JSON allow entry: %+v", a)
	}

	out, code = run("-allows")
	if code != 0 {
		t.Fatalf("-allows on seeded module: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "allow wallclock:") || !strings.Contains(out, "exercises the allow inventory") {
		t.Errorf("-allows output missing the seeded waiver:\n%s", out)
	}
}

// TestFsyncrenameFiresOnCompactMutant is the crash-safety proof the
// analyzer exists for: take the REAL walsink.Compact, strip the
// directory fsync after the compacted-segment rename, and assert
// ROAM006 fires on the rename — and that the unmutated package is
// clean, so the finding is the mutation's, not noise.
func TestFsyncrenameFiresOnCompactMutant(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "walsink", "compact.go"))
	if err != nil {
		t.Fatal(err)
	}
	const guard = "if err := fsyncDir(s.dir); err != nil {\n\t\treturn st, err\n\t}\n\t"
	mutant := strings.Replace(string(src), guard, "", 1)
	if mutant == string(src) {
		t.Fatalf("mutation target not found: walsink.Compact no longer fsyncs the dir with the expected shape")
	}

	scratch := t.TempDir()
	for _, name := range []string{"walsink.go"} {
		data, err := os.ReadFile(filepath.Join("..", "walsink", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(scratch, "compact.go"), []byte(mutant), 0o644); err != nil {
		t.Fatal(err)
	}

	analyzers, err := Select("fsyncrename", "")
	if err != nil {
		t.Fatal(err)
	}

	// The real package first: clean, proving the baseline.
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	real, err := loader.Load("roamsim/internal/walsink")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Check(real, analyzers) {
		t.Errorf("unmutated walsink has a fsyncrename finding: %s", d)
	}

	// The mutant: loaded from the scratch dir under the walsink import
	// path so the durability scope applies; module-local imports still
	// resolve through the real module.
	mloader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := mloader.LoadDir(scratch, "roamsim/internal/walsink")
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range p.TypeErrs {
		t.Fatalf("mutant package does not type-check: %v", terr)
	}
	diags := Check(p, analyzers)
	found := false
	for _, d := range diags {
		if d.Code == "ROAM006" && strings.HasSuffix(d.File, "compact.go") &&
			strings.Contains(d.Message, "directory fsync") && strings.Contains(d.Message, "Compact") {
			found = true
		}
	}
	if !found {
		t.Errorf("ROAM006 did not fire on the rename-without-dir-fsync mutant of walsink.Compact; got %d diagnostics:", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}
