package lint

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRoamvetExitCodes builds the real roamvet binary, points it at a
// scratch module seeded with one violation per self-contained
// contract, and asserts the CLI behavior the Makefile and CI rely on:
// nonzero exit naming every code on a dirty tree, zero exit with -only
// scoped to an analyzer the tree passes, and a parseable -json mode.
func TestRoamvetExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the roamvet binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "roamvet")
	build := exec.Command("go", "build", "-o", bin, "roamsim/cmd/roamvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building roamvet: %v\n%s", err, out)
	}

	// Scratch module named roamsim so the deterministic-scope rules
	// apply; the seeded file lands under internal/measure (in scope).
	mod := filepath.Join(tmp, "mod")
	dir := filepath.Join(mod, "internal", "measure")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module roamsim\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	seeded, err := os.ReadFile(filepath.Join("testdata", "src", "seeded", "seeded.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), seeded, 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) (string, int) {
		cmd := exec.Command(bin, append(args, "-C", mod)...)
		out, err := cmd.Output()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running roamvet %v: %v", args, err)
		}
		return string(out), code
	}

	out, code := run()
	if code != 1 {
		t.Fatalf("seeded module: exit %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"ROAM001", "ROAM003", "ROAM004"} {
		if !strings.Contains(out, want) {
			t.Errorf("seeded module output missing %s:\n%s", want, out)
		}
	}

	if out, code := run("-only", "guardedfield"); code != 0 {
		t.Fatalf("-only guardedfield on seeded module: exit %d, want 0\n%s", code, out)
	}

	out, code = run("-json")
	if code != 1 {
		t.Fatalf("-json seeded module: exit %d, want 1\n%s", code, out)
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(diags) < 3 {
		t.Fatalf("-json reported %d findings, want >= 3", len(diags))
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || !strings.HasPrefix(d.Code, "ROAM") {
			t.Errorf("malformed JSON diagnostic: %+v", d)
		}
	}
}
