package lint

import (
	"path"
	"strings"
)

// Deterministic package scope.
//
// The wallclock and maporder contracts apply only where code produces
// or transforms campaign datasets: the simulation core, the measurement
// campaigns, the table/figure emitters, and the fleet ingest path that
// canonicalizes uploads back into datasets. The control plane (amigo,
// the fleet driver, cmd/ mains, examples) legitimately reads the wall
// clock for timeouts, backoff, and elapsed-time reporting and is out of
// scope; the obs and chaos layers are IN scope precisely so their few
// real-time touch points carry visible, justified //lint:allow
// directives instead of silently expanding.

// detSubtrees are module-relative package prefixes (after "roamsim" /
// "roamsim/") whose whole subtree is dataset-producing.
var detSubtrees = []string{
	"",                     // the root facade package
	"internal/airalo",      // world model
	"internal/cdnsim",      // CDN campaign model
	"internal/chaos",       // fault schedules must replay from seeds
	"internal/core",        // demarcation + classification
	"internal/dnssim",      // DNS campaign model
	"internal/esimdb",      // marketplace dataset
	"internal/experiments", // campaign engine + tables/figures
	"internal/geo",         // geodesic model
	"internal/gtp",         // codec + pcap writer
	"internal/inet",        // transit topology
	"internal/ipaddr",      // deterministic address plans
	"internal/ipreg",       // registry lookups
	"internal/ipx",         // IPX demarcation model
	"internal/measure",     // measurement primitives
	"internal/mno",         // operator model
	"internal/netsim",      // packet-level network simulation
	"internal/obs",         // exposition must be canonical
	"internal/report",      // table rendering
	"internal/rng",         // the rng discipline itself
	"internal/shard",       // placement must be a pure function of ME name
	"internal/signaling",   // SS7/Diameter model
	"internal/stats",       // summary statistics
	"internal/video",       // video campaign model
	"internal/vmnocore",    // VMNO core model
	"internal/voip",        // VoIP campaign model
	"internal/walsink",     // WAL bytes are canonical; fsync timing is allow-listed
	"internal/webcampaign", // web campaign model
	"internal/wire",        // v3 codec: canonical bytes, no wall clock
}

// detFiles puts single files of otherwise out-of-scope packages in
// scope: fleet's ingest path canonicalizes uploads into datasets while
// the rest of the package drives real HTTP.
var detFiles = map[string][]string{
	"internal/fleet": {"ingest.go"},
}

// deterministic reports whether the given file of package pkgPath is
// under the dataset-determinism contract.
func deterministic(p *Package, filename string) bool {
	rel, ok := moduleRel(p.Path)
	if !ok {
		return false
	}
	for _, prefix := range detSubtrees {
		if rel == prefix || (prefix != "" && strings.HasPrefix(rel, prefix+"/")) {
			return true
		}
	}
	for _, f := range detFiles[rel] {
		if path.Base(filename) == f {
			return true
		}
	}
	return false
}

// moduleRel converts an import path to its module-relative form
// ("roamsim/internal/core" → "internal/core", "roamsim" → "").
func moduleRel(pkgPath string) (string, bool) {
	const mod = "roamsim"
	if pkgPath == mod {
		return "", true
	}
	if rest, ok := strings.CutPrefix(pkgPath, mod+"/"); ok {
		return rest, true
	}
	return "", false
}
