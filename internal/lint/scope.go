package lint

import (
	"path"
	"strings"
)

// Deterministic package scope.
//
// The wallclock and maporder contracts apply only where code produces
// or transforms campaign datasets: the simulation core, the measurement
// campaigns, the table/figure emitters, and the fleet ingest path that
// canonicalizes uploads back into datasets — plus everything migrated
// onto the injectable campaign clock (internal/vclock): the fleet
// driver, the amigo endpoint, and chaos. Those layers used to be out of
// scope because they legitimately slept and timed out on the wall
// clock; now that every wait goes through vclock.Clock, a direct
// time.Sleep / time.After there is a regression that would silently
// stall virtual-time campaigns, so the lint rejects it. The remaining
// control plane (the amigo server, cmd/ mains, examples) still reads
// the wall clock for HTTP timeouts and reporting and stays out of
// scope; obs is IN scope precisely so its few real-time touch points
// carry visible, justified //lint:allow directives instead of silently
// expanding — as does vclock itself, whose Real implementation is the
// one sanctioned home of the wall clock.

// detSubtrees are module-relative package prefixes (after "roamsim" /
// "roamsim/") whose whole subtree is dataset-producing.
var detSubtrees = []string{
	"",                     // the root facade package
	"internal/airalo",      // world model
	"internal/cdnsim",      // CDN campaign model
	"internal/chaos",       // fault schedules must replay from seeds
	"internal/core",        // demarcation + classification
	"internal/dnssim",      // DNS campaign model
	"internal/esimdb",      // marketplace dataset
	"internal/experiments", // campaign engine + tables/figures
	"internal/geo",         // geodesic model
	"internal/gtp",         // codec + pcap writer
	"internal/inet",        // transit topology
	"internal/ipaddr",      // deterministic address plans
	"internal/ipreg",       // registry lookups
	"internal/ipx",         // IPX demarcation model
	"internal/measure",     // measurement primitives
	"internal/mno",         // operator model
	"internal/netsim",      // packet-level network simulation
	"internal/obs",         // exposition must be canonical
	"internal/report",      // table rendering
	"internal/rng",         // the rng discipline itself
	"internal/shard",       // placement must be a pure function of ME name
	"internal/signaling",   // SS7/Diameter model
	"internal/stats",       // summary statistics
	"internal/vclock",      // the clock discipline itself; Real carries the allows
	"internal/video",       // video campaign model
	"internal/vmnocore",    // VMNO core model
	"internal/voip",        // VoIP campaign model
	"internal/walsink",     // WAL bytes are canonical; fsync timing is allow-listed
	"internal/webcampaign", // web campaign model
	"internal/wire",        // v3 codec: canonical bytes, no wall clock
}

// detFiles puts single files of otherwise out-of-scope packages in
// scope: fleet's ingest path canonicalizes uploads into datasets, the
// driver and endpoint take every wait through the injectable campaign
// clock, and the reshard/replay path re-homes WAL records whose bytes
// and placement must be pure functions of the record stream — the rest
// of those packages (server, transports) drives real HTTP and stays
// out.
var detFiles = map[string][]string{
	"internal/amigo": {"endpoint.go", "endpoint_v3.go"},
	"internal/fleet": {"ingest.go", "driver.go", "reshard.go"},
}

// deterministic reports whether the given file of package pkgPath is
// under the dataset-determinism contract.
func deterministic(p *Package, filename string) bool {
	return scopedBy(p, filename, detSubtrees, detFiles)
}

// Durability scope (ROAM006 fsyncrename).
//
// The crash-safety contract — tmp → File.Sync → os.Rename → directory
// fsync for every committed artifact — applies where the repo writes
// durable state: the WAL sink (segments + compaction artifacts), the
// shard control plane (reshard WAL copies), and fleet's reshard path
// (the wal-manifest.json epoch commit point). Everything else renames
// nothing durable, and a scope this tight keeps the analyzer's "every
// os.Rename is a commit" premise true.
var durabilitySubtrees = []string{
	"internal/walsink", // WAL segments and compaction artifacts
	"internal/shard",   // reshard destination WALs
}

var durabilityFiles = map[string][]string{
	"internal/fleet": {"reshard.go"}, // wal-manifest.json commit point
}

// durabilityScoped reports whether the given file of package pkgPath
// is under the crash-safe rename contract.
func durabilityScoped(p *Package, filename string) bool {
	return scopedBy(p, filename, durabilitySubtrees, durabilityFiles)
}

// Control-plane scope (ROAM008 gojoin).
//
// Goroutine-join hygiene applies to the long-lived control plane and
// the campaign engine: a leaked goroutine there either races fleet
// shutdown, holds a WAL handle past Close, or — worst — keeps mutating
// state after the dataset is sealed. The simulation/model packages are
// pure functions that spawn nothing, so they stay out of scope; cmd
// mains are IN scope because a fire-and-forget server goroutine is
// exactly the bug class this catches.
var controlPlaneSubtrees = []string{
	"cmd",
	"internal/amigo",
	"internal/chaos",
	"internal/experiments",
	"internal/fleet",
	"internal/obs",
	"internal/shard",
	"internal/vclock",
	"internal/walsink",
	"internal/wire",
}

// controlPlaneScoped reports whether the given file of package pkgPath
// is under the goroutine-join contract.
func controlPlaneScoped(p *Package, filename string) bool {
	return scopedBy(p, filename, controlPlaneSubtrees, nil)
}

// scopedBy is the shared subtree+file scope matcher.
func scopedBy(p *Package, filename string, subtrees []string, files map[string][]string) bool {
	rel, ok := moduleRel(p.Path)
	if !ok {
		return false
	}
	for _, prefix := range subtrees {
		if rel == prefix || (prefix != "" && strings.HasPrefix(rel, prefix+"/")) {
			return true
		}
	}
	for _, f := range files[rel] {
		if path.Base(filename) == f {
			return true
		}
	}
	return false
}

// moduleRel converts an import path to its module-relative form
// ("roamsim/internal/core" → "internal/core", "roamsim" → "").
func moduleRel(pkgPath string) (string, bool) {
	const mod = "roamsim"
	if pkgPath == mod {
		return "", true
	}
	if rest, ok := strings.CutPrefix(pkgPath, mod+"/"); ok {
		return rest, true
	}
	return "", false
}
