package lint

import (
	"path"
	"strings"
)

// Deterministic package scope.
//
// The wallclock and maporder contracts apply only where code produces
// or transforms campaign datasets: the simulation core, the measurement
// campaigns, the table/figure emitters, and the fleet ingest path that
// canonicalizes uploads back into datasets — plus everything migrated
// onto the injectable campaign clock (internal/vclock): the fleet
// driver, the amigo endpoint, and chaos. Those layers used to be out of
// scope because they legitimately slept and timed out on the wall
// clock; now that every wait goes through vclock.Clock, a direct
// time.Sleep / time.After there is a regression that would silently
// stall virtual-time campaigns, so the lint rejects it. The remaining
// control plane (the amigo server, cmd/ mains, examples) still reads
// the wall clock for HTTP timeouts and reporting and stays out of
// scope; obs is IN scope precisely so its few real-time touch points
// carry visible, justified //lint:allow directives instead of silently
// expanding — as does vclock itself, whose Real implementation is the
// one sanctioned home of the wall clock.

// detSubtrees are module-relative package prefixes (after "roamsim" /
// "roamsim/") whose whole subtree is dataset-producing.
var detSubtrees = []string{
	"",                     // the root facade package
	"internal/airalo",      // world model
	"internal/cdnsim",      // CDN campaign model
	"internal/chaos",       // fault schedules must replay from seeds
	"internal/core",        // demarcation + classification
	"internal/dnssim",      // DNS campaign model
	"internal/esimdb",      // marketplace dataset
	"internal/experiments", // campaign engine + tables/figures
	"internal/geo",         // geodesic model
	"internal/gtp",         // codec + pcap writer
	"internal/inet",        // transit topology
	"internal/ipaddr",      // deterministic address plans
	"internal/ipreg",       // registry lookups
	"internal/ipx",         // IPX demarcation model
	"internal/measure",     // measurement primitives
	"internal/mno",         // operator model
	"internal/netsim",      // packet-level network simulation
	"internal/obs",         // exposition must be canonical
	"internal/report",      // table rendering
	"internal/rng",         // the rng discipline itself
	"internal/shard",       // placement must be a pure function of ME name
	"internal/signaling",   // SS7/Diameter model
	"internal/stats",       // summary statistics
	"internal/vclock",      // the clock discipline itself; Real carries the allows
	"internal/video",       // video campaign model
	"internal/vmnocore",    // VMNO core model
	"internal/voip",        // VoIP campaign model
	"internal/walsink",     // WAL bytes are canonical; fsync timing is allow-listed
	"internal/webcampaign", // web campaign model
	"internal/wire",        // v3 codec: canonical bytes, no wall clock
}

// detFiles puts single files of otherwise out-of-scope packages in
// scope: fleet's ingest path canonicalizes uploads into datasets, the
// driver and endpoint take every wait through the injectable campaign
// clock, and the reshard/replay path re-homes WAL records whose bytes
// and placement must be pure functions of the record stream — the rest
// of those packages (server, transports) drives real HTTP and stays
// out.
var detFiles = map[string][]string{
	"internal/amigo": {"endpoint.go", "endpoint_v3.go"},
	"internal/fleet": {"ingest.go", "driver.go", "reshard.go"},
}

// deterministic reports whether the given file of package pkgPath is
// under the dataset-determinism contract.
func deterministic(p *Package, filename string) bool {
	rel, ok := moduleRel(p.Path)
	if !ok {
		return false
	}
	for _, prefix := range detSubtrees {
		if rel == prefix || (prefix != "" && strings.HasPrefix(rel, prefix+"/")) {
			return true
		}
	}
	for _, f := range detFiles[rel] {
		if path.Base(filename) == f {
			return true
		}
	}
	return false
}

// moduleRel converts an import path to its module-relative form
// ("roamsim/internal/core" → "internal/core", "roamsim" → "").
func moduleRel(pkgPath string) (string, bool) {
	const mod = "roamsim"
	if pkgPath == mod {
		return "", true
	}
	if rest, ok := strings.CutPrefix(pkgPath, mod+"/"); ok {
		return rest, true
	}
	return "", false
}
