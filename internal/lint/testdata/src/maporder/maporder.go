// Package maporder is golden-test input for the ROAM003 analyzer:
// inside deterministic scope, range-over-map must not feed ordered
// output without an intervening sort.
package maporder

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
)

func badKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map`
	}
	return keys
}

// The canonical collect-keys-then-sort idiom.
func goodSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// slices.Sort counts as a sort too.
func goodSlicesSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

func badWrite(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map`
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside range over map`
	}
	return b.String()
}

func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation onto "s" inside range over map`
	}
	return s
}

// Commutative aggregation is order-free.
func goodSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Map-to-map rewrites are order-free.
func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Appending to a slice declared inside the loop body is loop-local.
func goodLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}

// Ranging a slice is always fine: order is the slice order.
func goodSliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

func allowedUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow maporder golden-test case: consumer treats the result as a set
		keys = append(keys, k)
	}
	return keys
}
