// Package rngfork is golden-test input for the ROAM002 analyzer: a
// *rng.Source declared outside a `go func` literal must not be
// referenced inside it.
package rngfork

import "roamsim/internal/rng"

func badCapture(parent *rng.Source) {
	src := parent.Fork("worker")
	go func() {
		_ = src.Float64() // want `\*rng\.Source "src" captured by go closure`
	}()
}

func badCaptureParent(parent *rng.Source) {
	go func() {
		// Forking inside the goroutine is the race itself: Fork draws
		// from the parent, so the draw order depends on scheduling.
		_ = parent.Fork("late") // want `\*rng\.Source "parent" captured by go closure`
	}()
}

// The sanctioned pattern: pre-fork serially, pass one child per
// goroutine as a parameter.
func goodParam(parent *rng.Source, n int) {
	srcs := parent.ForkN("worker", n)
	for i := 0; i < n; i++ {
		go func(s *rng.Source) {
			_ = s.Float64()
		}(srcs[i])
	}
}

// Capturing the ForkN slice is fine: each goroutine owns its element.
func goodSliceCapture(parent *rng.Source, n int) {
	srcs := parent.ForkN("worker", n)
	for i := 0; i < n; i++ {
		go func() {
			_ = srcs[i].Float64()
		}()
	}
}

// Stateless re-derivation inside the goroutine is fine: rng.Stream has
// no parent state to race on.
func goodStream(seed int64) {
	go func() {
		s := rng.Stream(seed, "late")
		_ = s.Float64()
	}()
}

// Replay via a stored ForkSeed is the crash-recovery idiom (the fleet
// driver re-creates an ME's stream from its seed).
func goodForkSeed(parent *rng.Source) {
	seed := parent.ForkSeed("me-7")
	go func() {
		s := rng.New(seed)
		_ = s.Float64()
	}()
}

func allowedCapture(parent *rng.Source) {
	src := parent.Fork("seq")
	go func() {
		//lint:allow rngfork golden-test case: single goroutine owns the stream end-to-end
		_ = src.Float64()
	}()
}
