// Package wallclockscope is golden-test input proving the ROAM001 and
// ROAM003 scope rule: loaded under a NON-deterministic import path
// (the control plane), wall-clock reads and unsorted map iteration are
// legitimate and nothing may be reported.
package wallclockscope

import (
	"math/rand"
	"time"
)

func clockIsFine() (time.Time, time.Duration) {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return start, time.Since(start)
}

func globalRandIsFine() int { return rand.Intn(10) }

func mapOrderIsFine(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
