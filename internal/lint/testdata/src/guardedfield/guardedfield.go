// Package guardedfield is golden-test input for the ROAM005 analyzer:
// a field annotated "guarded by <mu>" may only be touched in functions
// that acquire <mu> on the same base expression.
package guardedfield

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int // guarded by mu
	name string
}

type registry struct {
	mu sync.RWMutex
	// guarded by mu
	entries map[string]int
}

func (c *counter) goodLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bad() int {
	return c.n // want `field c\.n is guarded by "mu" but bad does not acquire c\.mu`
}

func badOtherBase(c *counter) {
	c.n++ // want `field c\.n is guarded by "mu" but badOtherBase does not acquire c\.mu`
}

// Unannotated fields are never checked.
func (c *counter) goodUnannotated() string { return c.name }

// The Locked-suffix convention: caller holds the lock.
func (c *counter) incLocked() { c.n++ }

// A value still under construction is not yet shared.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

func (r *registry) goodRLock(key string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[key]
}

func (r *registry) badEntries(key string) int {
	return r.entries[key] // want `field r\.entries is guarded by "mu" but badEntries does not acquire r\.mu`
}

// Lock evidence must match the base expression: locking one instance
// does not license touching another.
func badWrongInstance(a, b *registry) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(b.entries) // want `field b\.entries is guarded by "mu" but badWrongInstance does not acquire b\.mu`
}

func allowedAccess(c *counter) int {
	//lint:allow guardedfield golden-test case: single-threaded setup phase
	return c.n
}

// Delegated guards: the mutex lives on another struct the field's
// struct points at, named by a dotted path.
type owner struct {
	mu sync.Mutex
}

type tenant struct {
	o    *owner
	seat int // guarded by o.mu
}

func (t *tenant) goodDelegated() int {
	t.o.mu.Lock()
	defer t.o.mu.Unlock()
	return t.seat
}

func (t *tenant) badDelegated() int {
	return t.seat // want `field t\.seat is guarded by "o\.mu" but badDelegated does not acquire t\.o\.mu`
}

// Locking the owner through a different expression than the access base
// is not evidence — same rule as badWrongInstance.
func badDelegatedOtherPath(t *tenant, o *owner) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return t.seat // want `field t\.seat is guarded by "o\.mu" but badDelegatedOtherPath does not acquire t\.o\.mu`
}
