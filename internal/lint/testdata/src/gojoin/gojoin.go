// Package joingolden is golden-test input for the ROAM008 analyzer:
// every go statement in control-plane scope needs a join path —
// WaitGroup-style Add-before-spawn pairing, a channel collector, or a
// justified allow.
package joingolden

import "sync"

// waiter mimics the vclock.Virtual waiter registry: custom Add/Done
// counters join exactly like sync.WaitGroup.
type waiter struct{ n int }

func (w *waiter) Add(delta int) { w.n += delta }
func (w *waiter) Done()         { w.n-- }

type pool struct {
	wg   sync.WaitGroup
	busy bool
}

func goodAddBeforeSpawn(p *pool) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
	}()
	p.wg.Wait()
}

// May-analysis false-positive guard: Add and spawn guarded by the same
// condition (the fleet maybeReshard shape). A must-analysis cannot
// correlate the two ifs; the may-analysis sees the Add reach the spawn.
func goodGuardedPair(p *pool, fire bool) {
	if fire {
		p.wg.Add(1)
	}
	if fire {
		go p.work()
	}
}

// The spawned body may be a named method: its deferred Done on the
// receiver pairs with the caller's Add on the same counter field.
func (q *pool) work() { defer q.wg.Done() }

// Custom Add/Done counters count as join evidence.
func goodCustomCounter(w *waiter) {
	w.Add(1)
	go func() {
		defer w.Done()
	}()
}

// A send the enclosing function receives is a join.
func goodChannelCollector() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

func goodRangeCollector() int {
	ch := make(chan int, 4)
	go func() {
		for i := 0; i < 4; i++ {
			ch <- i
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

func badNoJoin(p *pool) {
	go func() { p.busy = true }() // want `go statement in badNoJoin has no join path`
}

// Flow order matters: an Add AFTER the go statement is no evidence.
func badAddAfterSpawn(p *pool) {
	go func() { // want `go statement in badAddAfterSpawn has no join path`
		defer p.wg.Done()
	}()
	p.wg.Add(1)
	p.wg.Wait()
}

// The classic lost-signal race: Add inside the spawned goroutine. By
// the time it runs, the parent may already be past Wait.
func badAddInsideClosure(p *pool) {
	go func() {
		p.wg.Add(1) // want `p\.wg\.Add inside the spawned goroutine races Wait`
		defer p.wg.Done()
	}()
	p.wg.Wait()
}

// The sanctioned fire-and-forget needs a reasoned allow.
func allowedFireAndForget(srv func()) {
	//lint:allow gojoin golden-test case: process-lifetime server goroutine
	go srv()
}

// A bare directive is no waiver.
func bareAllowSpawn(srv func()) {
	//lint:allow gojoin
	go srv() // want `go statement in bareAllowSpawn has no join path`
}
