// Package flowscope carries violations of the flow-aware contracts
// (ROAM006 fsyncrename, ROAM007 clockpurity, ROAM008 gojoin) in a
// package OUTSIDE all of their scopes: none of them may report here.
// Renames of non-durable files, real timers in real-time code, and
// fire-and-forget goroutines are all legitimate off-contract.
package flowscope

import (
	"os"
	"time"
)

func renameScratch(tmp, dst string) error {
	return os.Rename(tmp, dst)
}

func realTimer() *time.Timer {
	return time.NewTimer(time.Second)
}

func fireAndForget(fn func()) {
	go fn()
}
