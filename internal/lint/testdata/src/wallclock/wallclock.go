// Package wallclock is golden-test input for the ROAM001 analyzer. It
// is loaded under a deterministic import path, so every wall-clock and
// global-rand touch must be flagged unless escaped.
package wallclock

import (
	"math/rand"
	"time"
)

func badClock() (time.Time, time.Duration) {
	start := time.Now()             // want `time\.Now in deterministic package`
	time.Sleep(time.Millisecond)    // want `time\.Sleep in deterministic package`
	return start, time.Since(start) // want `time\.Since in deterministic package`
}

func badTimers() {
	<-time.After(time.Millisecond) // want `time\.After in deterministic package`
}

func badGlobalRand() (int, float64) {
	return rand.Intn(10), rand.Float64() // want `global rand\.Intn` `global rand\.Float64`
}

// Explicitly seeded generators are the sanctioned escape into
// math/rand — internal/rng is built on exactly this.
func goodSeededRand() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// Fixed dates are constants, not clock reads.
func goodFixedDate() time.Time {
	return time.Date(2024, 2, 14, 0, 0, 0, 0, time.UTC)
}

func allowedClock() time.Time {
	//lint:allow wallclock golden-test case: justified escape hatch suppresses the finding
	return time.Now()
}

func bareAllow() time.Time {
	//lint:allow wallclock
	return time.Now() // want `time\.Now in deterministic package`
}
