// Package seeded holds one deliberate violation of each self-contained
// contract. The driver test copies it into a scratch module under a
// deterministic import path and asserts the roamvet binary exits
// nonzero and names every code.
package seeded

import (
	"io"
	"net/http"
	"time"
)

func seededWallclock() time.Time {
	return time.Now()
}

func seededMaporder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func seededBodyhygiene(resp *http.Response) ([]byte, error) {
	return io.ReadAll(resp.Body)
}
