// Package seeded holds one deliberate violation of each self-contained
// contract. The driver test copies it into a scratch module under a
// deterministic import path and asserts the roamvet binary exits
// nonzero and names every code.
package seeded

import (
	"context"
	"io"
	"net/http"
	"time"
)

func seededWallclock() time.Time {
	return time.Now()
}

func seededClockpurity(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, time.Second)
}

// One reasoned waiver, so the driver test can assert the -allows
// inventory reports it with its reason.
func allowedWallclock() time.Time {
	//lint:allow wallclock seeded scratch module: exercises the allow inventory
	return time.Now()
}

func seededMaporder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func seededBodyhygiene(resp *http.Response) ([]byte, error) {
	return io.ReadAll(resp.Body)
}
