// Package fsyncgolden is golden-test input for the ROAM006 analyzer:
// in durability-scoped packages every os.Rename commit must be
// dominated by a File.Sync and followed on every successful path by a
// directory fsync (tmp → fsync → rename → fsyncDir).
package fsyncgolden

import (
	"fmt"
	"os"
)

// fsyncDir is the module-local directory-fsync helper shape the
// analyzer classifies: Sync on a handle opened with os.Open.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeSynced writes and syncs the tmp file: a file-syncer helper the
// forward analysis must recognize transitively.
func writeSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// The full protocol through helpers: no findings.
func goodFullProtocol(dir, tmp, dst string, data []byte) error {
	if err := writeSynced(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("rename: %w", err)
	}
	return fsyncDir(dir)
}

// The directory fsync written out longhand: the inline os.Open+Sync
// idiom counts without any helper.
func goodInlineDirSync(dir, tmp, dst string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// False-positive guard: a DEFERRED directory fsync runs on every path
// to return, so the backward must-analysis is satisfied.
func goodDeferredDirSync(dir, tmp, dst string, f *os.File) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	defer d.Sync()
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// Nothing syncs the tmp file before the commit.
func badNoFileSync(dir, tmp, dst string) error {
	if err := os.Rename(tmp, dst); err != nil { // want `not dominated by a File\.Sync`
		return err
	}
	return fsyncDir(dir)
}

// The rename commits but the directory entry is never fenced: the
// error-bail return is exempt, the success return is not.
func badNoDirSync(tmp, dst string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil { // want `not followed on every successful path by a directory fsync`
		return err
	}
	return nil
}

// `return os.Rename(...)` is a commit whose success case has no
// barrier behind it — deliberately NOT an error bail.
func badTailRename(tmp, dst string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, dst) // want `not followed on every successful path by a directory fsync`
}

// Must-analysis: a sync on only one path in is no domination.
func badOneBranchSync(dir, tmp, dst string, f *os.File, fast bool) error {
	if !fast {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, dst); err != nil { // want `not dominated by a File\.Sync`
		return err
	}
	return fsyncDir(dir)
}

// A justified allow suppresses both halves of the protocol check.
func allowedScratchRename(tmp, dst string) error {
	//lint:allow fsyncrename golden-test case: target is a scratch cache, not durable state
	return os.Rename(tmp, dst)
}

// A bare directive is no waiver: ROAM000 fires on the directive and
// the protocol finding still fires on the rename.
func bareAllowRename(tmp, dst string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	//lint:allow fsyncrename
	return os.Rename(tmp, dst) // want `not followed on every successful path by a directory fsync`
}
