// Package clockgolden is golden-test input for the ROAM007 analyzer:
// deterministic packages must not construct wall-clock timers or
// deadline contexts behind the injected vclock.Clock.
package clockgolden

import (
	"context"
	"time"
)

// fakeClock mimics the injected clock interface: same-named methods on
// a local type are the sanctioned replacements, not violations.
type fakeClock struct{}

func (fakeClock) NewTimer(d time.Duration) *time.Timer  { return nil }
func (fakeClock) NewTicker(d time.Duration) *time.Timer { return nil }
func (fakeClock) WithTimeout()                          {}

func badContextTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second) // want `context\.WithTimeout .* bypasses the injected vclock\.Clock`
}

func badContextDeadline(ctx context.Context, t time.Time) (context.Context, context.CancelFunc) {
	return context.WithDeadline(ctx, t) // want `context\.WithDeadline .* bypasses the injected vclock\.Clock`
}

func badNewTimer() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer .* bypasses the injected vclock\.Clock`
}

func badNewTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker .* bypasses the injected vclock\.Clock`
}

func badAfterFunc(fn func()) *time.Timer {
	return time.AfterFunc(time.Second, fn) // want `time\.AfterFunc .* bypasses the injected vclock\.Clock`
}

// False-positive guards: methods on a local type are not the time or
// context packages, and a cancellation context carries no deadline.
func goodClockMethod(c fakeClock) *time.Timer { return c.NewTimer(time.Second) }
func goodTickerMethod(c fakeClock) *time.Timer {
	return c.NewTicker(time.Second)
}
func goodLocalWithTimeout(c fakeClock) { c.WithTimeout() }
func goodWithCancel(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// A justified allow: the sanctioned real-time edge.
func allowedTimer() *time.Timer {
	//lint:allow clockpurity golden-test case: real-clock adapter construction
	return time.NewTimer(time.Second)
}

// A bare directive is no waiver.
func bareAllowTimer() *time.Timer {
	//lint:allow clockpurity
	return time.NewTimer(time.Second) // want `time\.NewTimer .* bypasses the injected vclock\.Clock`
}
