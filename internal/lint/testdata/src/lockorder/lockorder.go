// Package lockgolden is golden-test input for the ROAM009 analyzer:
// the module-wide mutex acquisition graph must be acyclic. One
// diagnostic per cyclic component, positioned at the first witness of
// the cycle's first edge.
package lockgolden

import "sync"

// ---- Direct AB/BA cycle ----------------------------------------------

type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }

func lockAB(a *alpha, b *beta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle .*alpha\.mu .*beta\.mu`
	defer b.mu.Unlock()
}

func lockBA(a *alpha, b *beta) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}

// ---- Consistent order: no cycle --------------------------------------

type gamma struct{ mu sync.Mutex }
type delta struct{ mu sync.Mutex }

func orderedOne(g *gamma, d *delta) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

func orderedTwo(g *gamma, d *delta) {
	g.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	g.mu.Unlock()
}

// False-positive guard: hand-over-hand locking of two INSTANCES of the
// same type is instance ordering, not a type-level self-cycle.
func handOverHand(x, y *gamma) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// False-positive guard: a non-deferred Unlock releases the lock, so
// the later acquisition is NOT nested inside it — no delta→gamma edge,
// no cycle with the gamma→delta order above.
func killRelease(g *gamma, d *delta) {
	d.mu.Lock()
	d.mu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
}

// ---- Cycle through a callee summary ----------------------------------

type outer struct{ mu sync.Mutex }
type inner struct{ mu sync.Mutex }

func lockInner(i *inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
}

// outer.mu held across a call whose summary acquires inner.mu.
func viaHelper(o *outer, i *inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	lockInner(i)
}

func reversed(o *outer, i *inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock() // want `lock-order cycle .*inner\.mu .*outer\.mu`
	defer o.mu.Unlock()
}

// ---- Cycle through a guarded-by annotation ---------------------------

type aux struct{ mu sync.Mutex }

type gstate struct {
	mu sync.Mutex
	q  int // guarded by mu
}

// The Locked suffix means the caller holds gstate.mu (seeded from the
// guarded-by annotation on the field it touches), so the aux.mu
// acquisition is nested inside it.
func (s *gstate) flushLocked(a *aux) {
	s.q = 0
	a.mu.Lock()
	defer a.mu.Unlock()
}

func auxFirst(s *gstate, a *aux) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s.mu.Lock() // want `lock-order cycle .*aux\.mu .*gstate\.mu`
	defer s.mu.Unlock()
}

// ---- Allow directives ------------------------------------------------

type epsilon struct{ mu sync.Mutex }
type zeta struct{ mu sync.Mutex }

func lockEZ(e *epsilon, z *zeta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:allow lockorder golden-test case: cycle is protected by an external coordination barrier
	z.mu.Lock()
	defer z.mu.Unlock()
}

func lockZE(e *epsilon, z *zeta) {
	z.mu.Lock()
	defer z.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
}

//lint:allow lockorder
