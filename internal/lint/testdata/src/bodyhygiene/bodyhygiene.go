// Package bodyhygiene is golden-test input for the ROAM004 analyzer:
// HTTP response bodies must be drained, closed, and read through a
// bound on every path.
package bodyhygiene

import (
	"encoding/json"
	"io"
	"net/http"
)

func badNeverClosed(client *http.Client) error {
	resp, err := client.Get("http://example") // want `response body of "resp" is never closed`
	if err != nil {
		return err
	}
	var v any
	return json.NewDecoder(resp.Body).Decode(&v)
}

func badClosedNotDrained(client *http.Client) error {
	resp, err := client.Get("http://example") // want `response body of "resp" is closed but never drained`
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var v any
	return json.NewDecoder(resp.Body).Decode(&v)
}

func goodDrainAndClose(client *http.Client) error {
	resp, err := client.Get("http://example")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256<<10))
	resp.Body.Close()
	return nil
}

// Passing the whole response to a module-local helper delegates the
// lifecycle (the amigo drainClose idiom).
func goodDelegateWhole(client *http.Client) error {
	resp, err := client.Get("http://example")
	if err != nil {
		return err
	}
	drainClose(resp)
	return nil
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256<<10))
	resp.Body.Close()
}

// Passing resp.Body to a module-local helper delegates too (the fleet
// drainBody idiom).
func goodDelegateBody(client *http.Client) error {
	resp, err := client.Get("http://example")
	if err != nil {
		return err
	}
	defer drainBody(resp.Body)
	return nil
}

func drainBody(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 256<<10))
	body.Close()
}

// Returning the response hands the lifecycle to the caller.
func goodEscapes(client *http.Client) (*http.Response, error) {
	resp, err := client.Get("http://example")
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func badUnboundedRead(resp *http.Response) ([]byte, error) {
	b, err := io.ReadAll(resp.Body) // want `io\.ReadAll on a network body without a bound`
	return b, err
}

func badUnboundedReqRead(req *http.Request) ([]byte, error) {
	b, err := io.ReadAll(req.Body) // want `io\.ReadAll on a network body without a bound`
	return b, err
}

func goodBoundedRead(resp *http.Response) ([]byte, error) {
	return io.ReadAll(io.LimitReader(resp.Body, 256<<10))
}

func allowedUnbounded(resp *http.Response) ([]byte, error) {
	//lint:allow bodyhygiene golden-test case: justified full read
	b, err := io.ReadAll(resp.Body)
	return b, err
}
