package lint

import (
	"go/ast"
)

// ROAM007 clockpurity: packages migrated onto the injectable campaign
// clock (PR 8's internal/vclock) must not construct wall-clock timers
// or deadline contexts behind its back. ROAM001 already rejects the
// direct reads and sleeps (time.Now/Since/Sleep/After/Tick); this
// analyzer closes the constructor-shaped loopholes that slip past a
// call-site check:
//
//   - context.WithTimeout / context.WithDeadline — a wall-clock
//     deadline buried in a context silently stalls a virtual-time
//     campaign: virtual time finishes the run in milliseconds while
//     the context still measures real seconds (or, worse, expires real
//     timeouts mid-quiescence and perturbs the advance sequence).
//     vclock.ContextWithTimeout is the sanctioned replacement.
//   - time.NewTimer / time.NewTicker / time.AfterFunc — a timer built
//     here fires on the runtime's wall scheduler, invisible to the
//     Virtual clock's quiescence detection. vclock.Clock.NewTimer /
//     After are the replacements.
//
// The scope is the same deterministic map ROAM001 uses: every package
// whose waits were migrated in PR 8, plus vclock itself — whose Real
// implementation is the one sanctioned home of these constructors and
// carries visible //lint:allow directives.
var clockpurityAnalyzer = &Analyzer{
	Name: "clockpurity",
	Code: "ROAM007",
	Doc:  "no wall-clock timer or deadline-context constructors bypass the injected vclock.Clock in migrated packages",
	// Run is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { clockpurityAnalyzer.Run = runClockpurity }

var clockpurityBanned = map[string]map[string]string{
	"context": {
		"WithTimeout":  "vclock.ContextWithTimeout",
		"WithDeadline": "vclock.ContextWithDeadline",
	},
	"time": {
		"NewTimer":  "Clock.NewTimer",
		"NewTicker": "Clock.NewTimer (re-armed)",
		"AfterFunc": "Clock.After",
	},
}

func runClockpurity(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if !deterministic(p, filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, obj := importedPkg(p, sel)
			if obj == nil {
				return true
			}
			if repl, ok := clockpurityBanned[pkgPath][sel.Sel.Name]; ok {
				out = append(out, diag(p, clockpurityAnalyzer, sel.Pos(),
					"%s.%s in deterministic package %s bypasses the injected vclock.Clock: use %s",
					pkgBase(pkgPath), sel.Sel.Name, p.Path, repl))
			}
			return true
		})
	}
	return out
}
