package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ROAM002 rngfork: a *rng.Source is not safe for concurrent use, and
// Fork/ForkSeed consume a draw from the parent, so the fork ORDER is
// part of the deterministic contract. Parallel code must fork every
// worker's stream serially, in canonical order, BEFORE spawning any
// goroutine (rng.ForkN / rng.Source.ForkSeed), then hand exactly one
// child to each goroutine.
//
// The analyzer flags any *rng.Source variable declared outside a `go
// func` literal and referenced inside it: whether the closure draws
// from the captured stream or forks it, the draw order now depends on
// goroutine scheduling and the dataset is no longer a function of the
// seed. The sanctioned patterns pass naturally:
//
//	srcs := parent.ForkN("campaign", n) // []*rng.Source capture is fine:
//	go func() { run(srcs[i]) }()        // each goroutine owns its element
//
//	go func(s *rng.Source) { run(s) }(srcs[i]) // parameter, not capture
//
//	go func() { s := rng.Stream(seed, label); ... }() // stateless derive
var rngforkAnalyzer = &Analyzer{
	Name: "rngfork",
	Code: "ROAM002",
	Doc:  "rng streams are forked before goroutine spawn, never captured by a go closure",
	// Run is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { rngforkAnalyzer.Run = runRngfork }

func runRngfork(p *Package) []Diagnostic {
	var out []Diagnostic
	inspect(p, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		out = append(out, capturedSources(p, lit)...)
		return true
	})
	return out
}

// capturedSources reports each distinct outer *rng.Source variable
// referenced inside the goroutine body.
func capturedSources(p *Package, lit *ast.FuncLit) []Diagnostic {
	var out []Diagnostic
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if !isRngSourcePtr(v.Type()) {
			return true
		}
		// Declared inside the literal (parameter or local): the
		// goroutine owns it.
		if within(lit, v.Pos()) {
			return true
		}
		seen[v] = true
		out = append(out, diag(p, rngforkAnalyzer, id.Pos(),
			"*rng.Source %q captured by go closure: fork it before the spawn (rng.ForkN / ForkSeed) and pass the child in",
			v.Name()))
		return true
	})
	return out
}

func within(lit *ast.FuncLit, pos token.Pos) bool {
	return pos >= lit.Pos() && pos <= lit.End()
}

// isRngSourcePtr reports whether t is *roamsim/internal/rng.Source.
func isRngSourcePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "roamsim/internal/rng"
}
