package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// ROAM005 guardedfield: a struct field whose declaration carries a
// `// guarded by <mu>` comment must only be touched in functions that
// visibly acquire that mutex on the same base expression:
//
//	type Runner struct {
//		mu     sync.Mutex
//		traces []TraceObs // guarded by mu
//	}
//
//	r.mu.Lock()          // evidence: r.mu.Lock() / r.mu.RLock()
//	r.traces = append(...) // ok — same base "r"
//
// The guard may be a dotted path for delegated locks — a field guarded
// by a mutex owned by another struct the field's struct points at:
//
//	type Ctx struct {
//		v   *Virtual
//		err error // guarded by v.mu
//	}
//
//	c.v.mu.Lock()  // evidence for accesses to c.err
//
// The check is intra-function and intentionally coarse — it proves
// hygiene, not full lock-order correctness (that is the race
// detector's job). Accesses are exempt when:
//
//   - the function acquires <base>.<mu>.Lock() or .RLock() anywhere in
//     its body (including deferred unlock idioms),
//   - the base variable was constructed in the same function (a value
//     under construction is not yet shared),
//   - the function name ends in "Locked" (the documented convention
//     for callees that require the caller to hold the lock).
var guardedfieldAnalyzer = &Analyzer{
	Name: "guardedfield",
	Code: "ROAM005",
	Doc:  "fields annotated \"guarded by <mu>\" are only touched with <mu> held",
	// Run is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { guardedfieldAnalyzer.Run = runGuardedfield }

var guardedRe = regexp.MustCompile(`guarded by (\w+(?:\.\w+)*)`)

func runGuardedfield(p *Package) []Diagnostic {
	guarded := collectGuardedFields(p)
	if len(guarded) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			out = append(out, guardedAccesses(p, fd, guarded)...)
		}
	}
	return out
}

// collectGuardedFields maps each annotated field object to the name of
// its guarding mutex field.
func collectGuardedFields(p *Package) map[*types.Var]string {
	guarded := map[*types.Var]string{}
	inspect(p, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			mu := guardComment(field)
			if mu == "" {
				continue
			}
			for _, name := range field.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					guarded[v] = mu
				}
			}
		}
		return true
	})
	return guarded
}

func guardComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func guardedAccesses(p *Package, fd *ast.FuncDecl, guarded map[*types.Var]string) []Diagnostic {
	locks := heldLocks(p, fd)
	constructed := constructedLocals(p, fd)
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo := p.Info.Selections[sel]
		if selInfo == nil || selInfo.Kind() != types.FieldVal {
			return true
		}
		field, ok := selInfo.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, isGuarded := guarded[field]
		if !isGuarded {
			return true
		}
		base := types.ExprString(sel.X)
		if locks[base+"."+mu] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if v, _ := p.Info.Uses[id].(*types.Var); v != nil && constructed[v] {
				return true
			}
		}
		out = append(out, diag(p, guardedfieldAnalyzer, sel.Pos(),
			"field %s.%s is guarded by %q but %s does not acquire %s.%s",
			base, field.Name(), mu, fd.Name.Name, base, mu))
		return true
	})
	return out
}

// heldLocks collects the set of "<base>.<mu>" strings for which the
// function calls Lock or RLock anywhere in its body.
func heldLocks(p *Package, fd *ast.FuncDecl) map[string]bool {
	locks := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		locks[types.ExprString(sel.X)] = true
		return true
	})
	return locks
}

// constructedLocals returns local variables initialized in this
// function from a composite literal (x := T{...} or x := &T{...}) —
// values still under construction whose fields may be set lock-free.
func constructedLocals(p *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isCompositeInit(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := p.Info.Defs[id].(*types.Var); ok {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

func isCompositeInit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr: // new(T)
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}
