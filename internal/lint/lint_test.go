package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Golden-diagnostic harness. Each testdata/src/<name> package carries
// `// want "regexp"` comments on the lines where an analyzer must
// report (multiple quoted regexps on one line mean multiple expected
// diagnostics), and the harness diffs expected against emitted. A bare
// `//lint:allow <analyzer>` directive (no reason) is an implicit want
// for the ROAM000 malformed-directive diagnostic on its own line.

var wantTokRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")
var bareAllowRe = regexp.MustCompile(`^//lint:allow\s+[a-z]+\s*$`)

type wantEntry struct {
	file    string // basename
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, p *Package) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				if bareAllowRe.MatchString(c.Text) {
					wants = append(wants, &wantEntry{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   regexp.MustCompile(`^ROAM000`),
					})
					continue
				}
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				for _, tok := range wantTokRe.FindAllString(c.Text[idx+len("// want "):], -1) {
					re, err := regexp.Compile(tok[1 : len(tok)-1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, tok, err)
					}
					wants = append(wants, &wantEntry{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// checkGolden loads testdata/src/<dir> under the import path asPath,
// runs the named analyzers plus allow-suppression through Check, and
// diffs diagnostics against want comments.
func checkGolden(t *testing.T, loader *Loader, dir, asPath string, analyzerNames ...string) {
	t.Helper()
	p, err := loader.LoadDir(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, terr := range p.TypeErrs {
		t.Errorf("%s: type error: %v", dir, terr)
	}
	analyzers, err := Select(strings.Join(analyzerNames, ","), "")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(p, analyzers)
	wants := collectWants(t, p)

	for _, d := range diags {
		base := filepath.Base(d.File)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != base || w.line != d.Line {
				continue
			}
			full := d.Code + " [" + d.Analyzer + "]: " + d.Message
			if w.re.MatchString(full) || w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestGoldenDiagnostics(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic import paths exercise the scope rules: measure is
	// in dataset scope, amigo (control plane) is not.
	const det = "roamsim/internal/measure"
	const nonDet = "roamsim/internal/amigo"

	t.Run("wallclock", func(t *testing.T) {
		checkGolden(t, loader, "wallclock", det+"/wallclockgolden", "wallclock")
	})
	t.Run("wallclock-scope", func(t *testing.T) {
		// Same violations under a control-plane path: nothing reported.
		checkGolden(t, loader, "wallclockscope", nonDet+"/scopegolden", "wallclock", "maporder")
	})
	t.Run("rngfork", func(t *testing.T) {
		checkGolden(t, loader, "rngfork", det+"/rngforkgolden", "rngfork")
	})
	t.Run("maporder", func(t *testing.T) {
		checkGolden(t, loader, "maporder", det+"/maporder", "maporder")
	})
	t.Run("bodyhygiene", func(t *testing.T) {
		// bodyhygiene is scope-free: use a control-plane path to prove it.
		checkGolden(t, loader, "bodyhygiene", nonDet+"/bodygolden", "bodyhygiene")
	})
	t.Run("guardedfield", func(t *testing.T) {
		checkGolden(t, loader, "guardedfield", nonDet+"/guardedgolden", "guardedfield")
	})
	t.Run("fsyncrename", func(t *testing.T) {
		// Loaded under walsink so the durability scope applies.
		checkGolden(t, loader, "fsyncrename", "roamsim/internal/walsink/fsyncgolden", "fsyncrename")
	})
	t.Run("clockpurity", func(t *testing.T) {
		checkGolden(t, loader, "clockpurity", det+"/clockgolden", "clockpurity")
	})
	t.Run("gojoin", func(t *testing.T) {
		// Loaded under fleet so the control-plane scope applies.
		checkGolden(t, loader, "gojoin", "roamsim/internal/fleet/joingolden", "gojoin")
	})
	t.Run("lockorder", func(t *testing.T) {
		// lockorder is scope-free (module-wide); any path works.
		checkGolden(t, loader, "lockorder", "roamsim/internal/shard/lockgolden", "lockorder")
	})
	t.Run("flow-scope", func(t *testing.T) {
		// The same violation shapes under a path outside every flow
		// analyzer's scope: nothing reported.
		checkGolden(t, loader, "flowscope", "roamsim/pkgx/scopegolden",
			"fsyncrename", "clockpurity", "gojoin")
	})
}

func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil || len(all) != 9 {
		t.Fatalf("Select(all) = %d analyzers, err %v; want 9", len(all), err)
	}
	only, err := Select("wallclock,maporder", "")
	if err != nil || len(only) != 2 {
		t.Fatalf("Select(only) = %d analyzers, err %v; want 2", len(only), err)
	}
	skip, err := Select("", "bodyhygiene")
	if err != nil || len(skip) != 8 {
		t.Fatalf("Select(skip) = %d analyzers, err %v; want 8", len(skip), err)
	}
	if _, err := Select("nosuch", ""); err == nil {
		t.Fatal("Select with unknown analyzer did not error")
	}
}
