package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses src (a file body containing one function named f)
// and returns the function's declaration.
func parseFunc(t *testing.T, src string) *ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fd
		}
	}
	t.Fatal("no func f in source")
	return nil
}

// callFact is a transfer function for the tests: a call to gen() sets
// the fact, a call to kill() clears it.
func callFact(n ast.Node, in facts) facts {
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "gen":
				in["x"] = true
			case "kill":
				delete(in, "x")
			}
		}
		return true
	})
	return in
}

// factAtCall finds the call to probe() and returns whether fact "x"
// holds there under the given solve configuration.
func factAtCall(t *testing.T, fd *ast.FuncDecl, probe string, forward, must bool) bool {
	t.Helper()
	g := buildCFG(fd.Body)
	res := g.solve(forward, must, callFact)
	var found, val bool
	for n, f := range res {
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == probe {
				found = true
				val = f["x"]
			}
			return true
		})
	}
	if !found {
		t.Fatalf("no call to %s found in flow results", probe)
	}
	return val
}

func TestCFGForwardMustBranches(t *testing.T) {
	// gen() on only one branch: must analysis rejects, may accepts.
	fd := parseFunc(t, `
func f(c bool) {
	if c {
		gen()
	}
	probe()
}`)
	if factAtCall(t, fd, "probe", true, true) {
		t.Error("must-forward: fact should not survive a branch that skips gen()")
	}
	if !factAtCall(t, fd, "probe", true, false) {
		t.Error("may-forward: fact should reach probe() via the gen() branch")
	}
}

func TestCFGForwardMustBothBranches(t *testing.T) {
	fd := parseFunc(t, `
func f(c bool) {
	if c {
		gen()
	} else {
		gen()
	}
	probe()
}`)
	if !factAtCall(t, fd, "probe", true, true) {
		t.Error("must-forward: gen() on both branches should dominate probe()")
	}
}

func TestCFGKillOnPath(t *testing.T) {
	fd := parseFunc(t, `
func f(c bool) {
	gen()
	if c {
		kill()
	}
	probe()
}`)
	if factAtCall(t, fd, "probe", true, true) {
		t.Error("must-forward: kill() on one path should defeat the fact")
	}
}

func TestCFGLoopCarriesFacts(t *testing.T) {
	// The fact is generated inside the loop body; at the loop head it
	// may hold (back edge) but must not (zero-iteration path).
	fd := parseFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		gen()
	}
	probe()
}`)
	if factAtCall(t, fd, "probe", true, true) {
		t.Error("must-forward: zero-iteration loop path should defeat the fact")
	}
	if !factAtCall(t, fd, "probe", true, false) {
		t.Error("may-forward: loop body gen() should reach past the loop")
	}
}

func TestCFGBackwardMust(t *testing.T) {
	// Backward: does gen() lie ahead on every path from probe()?
	fd := parseFunc(t, `
func f(c bool) {
	probe()
	if c {
		return
	}
	gen()
}`)
	if factAtCall(t, fd, "probe", false, true) {
		t.Error("backward-must: the early return path skips gen()")
	}
	fd = parseFunc(t, `
func f(c bool) {
	probe()
	gen()
}`)
	if !factAtCall(t, fd, "probe", false, true) {
		t.Error("backward-must: straight-line gen() after probe() should hold")
	}
}

func TestCFGDeferRunsOnExit(t *testing.T) {
	// A deferred gen() runs after every return: backward-must sees it.
	fd := parseFunc(t, `
func f(c bool) {
	defer gen()
	probe()
	if c {
		return
	}
}`)
	if !factAtCall(t, fd, "probe", false, true) {
		t.Error("backward-must: deferred gen() should cover every exit path")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	fd := parseFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i == 2 {
			continue
		}
		gen()
	}
	probe()
}`)
	// break skips gen() on that path; may-forward still reaches.
	if factAtCall(t, fd, "probe", true, true) {
		t.Error("must-forward: break path skips gen()")
	}
	if !factAtCall(t, fd, "probe", true, false) {
		t.Error("may-forward: gen() should reach probe()")
	}
}

func TestCFGSwitchSelect(t *testing.T) {
	fd := parseFunc(t, `
func f(n int) {
	switch n {
	case 1:
		gen()
	case 2:
		gen()
	default:
		gen()
	}
	probe()
}`)
	if !factAtCall(t, fd, "probe", true, true) {
		t.Error("must-forward: gen() in every switch arm incl. default should dominate")
	}
	fd = parseFunc(t, `
func f(n int) {
	switch n {
	case 1:
		gen()
	}
	probe()
}`)
	if factAtCall(t, fd, "probe", true, true) {
		t.Error("must-forward: switch without default has a fall-past path")
	}
}

func TestCFGClosureBodyIsOpaque(t *testing.T) {
	// gen() inside a func literal must not count as flow of the
	// enclosing function.
	fd := parseFunc(t, `
func f() {
	g := func() { gen() }
	g()
	probe()
}`)
	if factAtCall(t, fd, "probe", true, false) {
		t.Error("may-forward: gen() inside a closure body must not leak into enclosing flow")
	}
}
