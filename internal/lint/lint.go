// Package lint implements roamvet, the repo's static-analysis suite.
//
// The core scientific claim of this reproduction — byte-identical
// campaign datasets across worker counts, chaos schedules, and metrics
// on/off — rests on a handful of coding contracts that are otherwise
// only checked by expensive end-to-end equivalence tests:
//
//	ROAM001 wallclock    no wall clock or global math/rand in
//	                     dataset-producing packages
//	ROAM002 rngfork      rng streams are forked before goroutine spawn,
//	                     never captured by a go closure
//	ROAM003 maporder     map iteration never feeds ordered output
//	                     without an intervening sort
//	ROAM004 bodyhygiene  HTTP response bodies are drained, closed, and
//	                     read through a bound on every path
//	ROAM005 guardedfield fields annotated "guarded by <mu>" are only
//	                     touched with <mu> held
//	ROAM006 fsyncrename  durable renames are fenced: tmp → File.Sync →
//	                     os.Rename → directory fsync, on every path
//	ROAM007 clockpurity  no wall-clock timer/deadline-context
//	                     constructors bypass the injected vclock.Clock
//	ROAM008 gojoin       every control-plane go statement has a join
//	                     path (WaitGroup pairing or channel collector)
//	ROAM009 lockorder    the module-wide mutex acquisition graph is
//	                     acyclic
//
// ROAM001–005 are syntactic; ROAM006–009 are flow-aware and run on the
// shared CFG + dataflow engine in cfg.go. Most analyzers work on one
// type-checked package at a time and emit file:line diagnostics;
// lockorder sees the whole module at once (Analyzer.RunModule).
// Violations that are intentional carry an explicit escape hatch on
// the same or the preceding line:
//
//	//lint:allow wallclock <reason>
//
// The reason string is mandatory: a bare directive is itself reported
// (ROAM000), so every suppression in the tree documents why the
// contract does not apply.
//
// The suite is stdlib-only (go/parser, go/ast, go/types plus the source
// importer) so go.mod stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned in the original source.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Code     string         `json:"code"`     // "ROAM001"
	Analyzer string         `json:"analyzer"` // "wallclock"
	Message  string         `json:"message"`
}

// String renders the canonical single-line form used by the CLI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]: %s", d.File, d.Line, d.Col, d.Code, d.Analyzer, d.Message)
}

// An Analyzer inspects type-checked packages and reports contract
// violations. Per-package analyzers set Run; analyzers whose contract
// spans package boundaries (lockorder's module-wide mutex graph) set
// RunModule instead and see every loaded package at once. Either entry
// point must be safe to call on packages with partial type information
// (nil entries in Info maps) — analyzers degrade to reporting nothing
// rather than panicking.
type Analyzer struct {
	Name      string // short selector name, e.g. "wallclock"
	Code      string // stable diagnostic code, e.g. "ROAM001"
	Doc       string // one-line contract statement
	Run       func(p *Package) []Diagnostic
	RunModule func(pkgs []*Package) []Diagnostic
}

// Analyzers is the full suite in code order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		wallclockAnalyzer,
		rngforkAnalyzer,
		maporderAnalyzer,
		bodyhygieneAnalyzer,
		guardedfieldAnalyzer,
		fsyncrenameAnalyzer,
		clockpurityAnalyzer,
		gojoinAnalyzer,
		lockorderAnalyzer,
	}
}

// Select resolves -only / -skip comma lists against the suite. An
// unknown name in either list is an error so typos fail loudly.
func Select(only, skip string) ([]*Analyzer, error) {
	all := Analyzers()
	known := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		known[a.Name] = a
	}
	names := func(csv string) (map[string]bool, error) {
		set := map[string]bool{}
		if csv == "" {
			return set, nil
		}
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if known[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames(all))
			}
			set[n] = true
		}
		return set, nil
	}
	onlySet, err := names(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := names(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Check runs the given analyzers over one package, applies
// //lint:allow suppression, and returns the surviving diagnostics
// sorted by position. Module analyzers see just this package.
func Check(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return CheckModule([]*Package{pkg}, analyzers)
}

// CheckModule runs the given analyzers over the loaded packages:
// per-package analyzers on each package, module analyzers once over
// the whole set. //lint:allow suppression applies across all of them,
// and bare allow directives (no reason) are reported as ROAM000. The
// result is sorted by position.
func CheckModule(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, p := range pkgs {
			diags = append(diags, a.Run(p)...)
		}
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			diags = append(diags, a.RunModule(pkgs)...)
		}
	}
	allows := allowSet{}
	var out []Diagnostic
	for _, p := range pkgs {
		list, malformed := collectAllows(p)
		for _, al := range list {
			allows[allowKey{al.File, al.Line, al.Analyzer}] = true
		}
		out = append(out, malformed...)
	}
	for _, d := range diags {
		if allows.covers(d.File, d.Line, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// An Allow is one active //lint:allow directive: the waiver inventory
// roamvet -json and -allows expose so CI artifacts show every place
// the tree opts out of a contract, and why.
type Allow struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// Allows returns every well-formed allow directive in the given
// packages, sorted by position. Malformed (reasonless) directives are
// excluded — those are ROAM000 findings, not waivers.
func Allows(pkgs []*Package) []Allow {
	var out []Allow
	for _, p := range pkgs {
		list, _ := collectAllows(p)
		out = append(out, list...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// diag builds a Diagnostic for node position pos.
func diag(p *Package, a *Analyzer, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Code:     a.Code,
		Analyzer: a.Name,
		Message:  fmt.Sprintf(format, args...),
	}
}

// allowDirective is the source escape hatch: //lint:allow <analyzer> <reason>.
// It suppresses that analyzer's diagnostics on its own line and on the
// line directly below it (so it can sit above the offending statement).
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\b[ \t]*(.*)$`)

type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

func (s allowSet) covers(file string, line int, analyzer string) bool {
	return s[allowKey{file, line, analyzer}] || s[allowKey{file, line - 1, analyzer}]
}

// collectAllows scans every comment in the package for allow
// directives and returns them with their reasons. A directive with an
// empty reason is returned as a malformed-directive diagnostic
// (ROAM000) instead of a suppression: the justification is part of the
// contract.
func collectAllows(p *Package) ([]Allow, []Diagnostic) {
	var allows []Allow
	var malformed []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Code:     "ROAM000",
						Analyzer: "allow",
						Message:  fmt.Sprintf("lint:allow %s directive needs a reason string", m[1]),
					})
					continue
				}
				allows = append(allows, Allow{
					File:     pos.Filename,
					Line:     pos.Line,
					Analyzer: m[1],
					Reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return allows, malformed
}

// inspect walks every file in the package, calling fn for each node.
// Returning false prunes the subtree.
func inspect(p *Package, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
