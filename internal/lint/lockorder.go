package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ROAM009 lockorder: the module-wide mutex acquisition graph must be
// acyclic. Two code paths that take the same pair of locks in opposite
// orders deadlock the first time they interleave — and in this repo
// that interleaving is exactly what the chaos/reshard suites provoke
// (gateway Pause vs upload-path compaction, WAL reader fences vs
// writer state). The race detector cannot see a lock-order inversion
// that did not happen in a given run; this analyzer proves the
// absence class instead.
//
// The graph is built module-wide, one node per mutex IDENTITY — a
// named struct's mutex field (walsink.Sink.mu), or a package-level
// mutex variable — not per instance. Edges come from three sources:
//
//   - direct flow: within one function, acquiring B at a point where
//     the CFG's may-held analysis says A is held adds A → B. Unlock
//     kills held-ness; a deferred Unlock does not (the lock is held to
//     function exit).
//   - call summaries: holding A while calling a module-local function
//     whose summary says it may acquire B adds A → B. Summaries are
//     transitive fixed points over the module call graph; go
//     statements are excluded (a spawned goroutine's locks are not
//     taken while the caller blocks).
//   - guarded-by annotations: a *Locked function (ROAM005's convention
//     for "caller holds the lock") is analyzed with the guards of
//     every annotated field it touches pre-seeded as held, so the
//     order "caller's lock, then whatever *Locked acquires" is edges
//     too.
//
// Cycles are reported once per strongly connected component, with the
// full witness chain (each edge's function and position). Self-edges
// are skipped by design: two INSTANCES of the same type locking each
// other (hand-over-hand traversal, shard A forwarding to shard B) is
// an instance-ordering discipline this type-level graph cannot judge.
var lockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Code: "ROAM009",
	Doc:  "the module-wide mutex acquisition graph has no lock-order cycles",
	// RunModule is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { lockorderAnalyzer.RunModule = runLockorder }

const factHeldPrefix = "held:"

// lockWitness records where one acquisition edge was observed.
type lockWitness struct {
	pkg *Package
	fn  string
	pos token.Pos
}

type lockGraph struct {
	// edges[from][to] = first witness observed (deterministic: package,
	// file, declaration order).
	edges map[string]map[string]lockWitness
}

func (g *lockGraph) add(from, to string, w lockWitness) {
	if from == to {
		return // instance ordering, not type ordering — see doc comment
	}
	if g.edges[from] == nil {
		g.edges[from] = map[string]lockWitness{}
	}
	if _, ok := g.edges[from][to]; !ok {
		g.edges[from][to] = w
	}
}

func runLockorder(pkgs []*Package) []Diagnostic {
	summaries := lockSummaries(pkgs)
	graph := &lockGraph{edges: map[string]map[string]lockWitness{}}

	for _, p := range pkgs {
		guarded := collectGuardedFields(p)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				collectLockEdges(p, fd, guarded, summaries, graph)
			}
		}
	}
	return reportLockCycles(graph)
}

// collectLockEdges runs the may-held analysis over fd and feeds every
// observed acquisition-while-holding into the graph.
func collectLockEdges(p *Package, fd *ast.FuncDecl, guarded map[*types.Var]string,
	summaries map[*types.Func]map[string]bool, graph *lockGraph) {

	seed := lockedSeed(p, fd, guarded)
	hasLocks := len(seed) > 0
	inspectShallow(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, kind := mutexCall(p, call); kind != lockNone {
				hasLocks = true
			}
			if fn := calleeFunc(p, call); fn != nil && len(summaries[fn]) > 0 {
				hasLocks = true
			}
		}
		return true
	})
	if !hasLocks {
		return
	}

	g := buildCFG(fd.Body)
	held := g.solve(true, false, func(n ast.Node, in facts) facts {
		for f := range seed {
			in[f] = true
		}
		lockTransfer(p, n, in, nil, nil)
		return in
	})

	// Final pass: emit edges with the pre-node held set (plus the
	// annotation seed), replaying the within-node acquisition order.
	// Nodes are visited in source order so the first witness recorded
	// for an edge is deterministic.
	emit := func(from, to string, pos token.Pos) {
		graph.add(from, to, lockWitness{pkg: p, fn: fd.Name.Name, pos: pos})
	}
	nodes := make([]ast.Node, 0, len(held))
	for n := range held {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })
	for _, n := range nodes {
		hf := held[n].clone()
		for s := range seed {
			hf[s] = true
		}
		lockTransfer(p, n, hf, summaries, emit)
	}
}

// lockTransfer simulates one flow node's effect on the held set. With
// emit non-nil it also reports acquisition edges: held → acquired for
// direct Lock/RLock, held → callee summary for module-local calls.
func lockTransfer(p *Package, n ast.Node, held facts,
	summaries map[*types.Func]map[string]bool, emit func(from, to string, pos token.Pos)) {

	if _, ok := n.(*ast.DeferStmt); ok {
		// A deferred Unlock keeps the lock held through the function
		// body; a deferred Lock (weird) is ignored rather than modeled.
		return
	}
	if _, ok := n.(*ast.GoStmt); ok {
		// The spawned call runs concurrently, not while the caller
		// blocks holding its locks.
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.DeferStmt); ok {
			return false
		}
		if _, ok := m.(*ast.GoStmt); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, pos, kind := mutexCall(p, call)
		switch kind {
		case lockAcquire:
			if emit != nil {
				for f := range held {
					if from, ok := strings.CutPrefix(f, factHeldPrefix); ok {
						emit(from, id, pos)
					}
				}
			}
			held[factHeldPrefix+id] = true
			return true
		case lockRelease:
			delete(held, factHeldPrefix+id)
			return true
		}
		if emit != nil {
			if fn := calleeFunc(p, call); fn != nil {
				for to := range summaries[fn] {
					for f := range held {
						if from, ok := strings.CutPrefix(f, factHeldPrefix); ok {
							emit(from, to, call.Pos())
						}
					}
				}
			}
		}
		return true
	})
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// mutexCall classifies call as a sync.Mutex/RWMutex Lock/RLock (or
// Unlock/RUnlock) on a nameable mutex identity. Locks on local
// variables have no cross-function identity and return lockNone.
func mutexCall(p *Package, call *ast.CallExpr) (id string, pos token.Pos, kind lockKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, lockNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", 0, lockNone
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, lockNone
	}
	id = mutexIdent(p, sel.X)
	if id == "" {
		return "", 0, lockNone
	}
	return id, sel.Pos(), kind
}

// mutexIdent names the mutex expression e with a module-wide identity:
// "pkg.Type.field" for a struct's mutex field, "pkg.var" for a
// package-level mutex variable, "" for anything without a stable
// identity (locals, complex expressions).
func mutexIdent(p *Package, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		selInfo := p.Info.Selections[e]
		if selInfo == nil || selInfo.Kind() != types.FieldVal {
			return ""
		}
		field, ok := selInfo.Obj().(*types.Var)
		if !ok {
			return ""
		}
		return fieldMutexID(selInfo.Recv(), field)
	case *ast.Ident:
		v, ok := p.Info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		// Only package-level variables have a module-wide identity.
		if v.Parent() != v.Pkg().Scope() {
			return ""
		}
		return v.Pkg().Name() + "." + v.Name()
	}
	return ""
}

// fieldMutexID names a mutex field by its owning named type.
func fieldMutexID(recv types.Type, field *types.Var) string {
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name() + "." + field.Name()
}

// lockSummaries computes, for every function in the module, the set of
// mutex identities its body may acquire — directly or through
// module-local callees — as a transitive fixed point. Spawned (go)
// calls are excluded.
func lockSummaries(pkgs []*Package) map[*types.Func]map[string]bool {
	type declOf struct {
		p  *Package
		fd *ast.FuncDecl
	}
	var decls []declOf
	summaries := map[*types.Func]map[string]bool{}
	fnOf := map[*ast.FuncDecl]*types.Func{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls = append(decls, declOf{p, fd})
				fnOf[fd] = fn
				direct := map[string]bool{}
				walkNoGo(fd.Body, func(n ast.Node) {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, _, kind := mutexCall(p, call); kind == lockAcquire {
							direct[id] = true
						}
					}
				})
				if len(direct) > 0 {
					summaries[fn] = direct
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			fn := fnOf[d.fd]
			walkNoGo(d.fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				callee := calleeFunc(d.p, call)
				if callee == nil || callee == fn {
					return
				}
				for id := range summaries[callee] {
					if !summaries[fn][id] {
						if summaries[fn] == nil {
							summaries[fn] = map[string]bool{}
						}
						summaries[fn][id] = true
						changed = true
					}
				}
			})
		}
	}
	return summaries
}

// walkNoGo visits every node except go-statement subtrees.
func walkNoGo(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// lockedSeed pre-seeds the held set of a *Locked function with the
// guards of the annotated fields it touches: the documented contract
// is that the caller already holds them.
func lockedSeed(p *Package, fd *ast.FuncDecl, guarded map[*types.Var]string) facts {
	seed := facts{}
	if !strings.HasSuffix(fd.Name.Name, "Locked") || len(guarded) == 0 {
		return seed
	}
	inspectShallow(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo := p.Info.Selections[sel]
		if selInfo == nil || selInfo.Kind() != types.FieldVal {
			return true
		}
		field, ok := selInfo.Obj().(*types.Var)
		if !ok {
			return true
		}
		guardPath, isGuarded := guarded[field]
		if !isGuarded {
			return true
		}
		if id := resolveGuardPath(selInfo.Recv(), guardPath); id != "" {
			seed[factHeldPrefix+id] = true
		}
		return true
	})
	return seed
}

// resolveGuardPath walks a "mu" or "v.mu" guard annotation from the
// guarded field's owner type to the mutex field it names.
func resolveGuardPath(recv types.Type, path string) string {
	parts := strings.Split(path, ".")
	cur := recv
	for i, part := range parts {
		if ptr, ok := cur.Underlying().(*types.Pointer); ok {
			cur = ptr.Elem()
		}
		if ptr, ok := cur.(*types.Pointer); ok {
			cur = ptr.Elem()
		}
		st, ok := cur.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		var field *types.Var
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == part {
				field = st.Field(j)
				break
			}
		}
		if field == nil {
			return ""
		}
		if i == len(parts)-1 {
			return fieldMutexID(cur, field)
		}
		cur = field.Type()
	}
	return ""
}

// reportLockCycles finds strongly connected components of the
// acquisition graph and reports one diagnostic per cyclic component,
// carrying the full witness chain.
func reportLockCycles(g *lockGraph) []Diagnostic {
	var nodes []string
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range g.edges {
		addNode(from)
		for to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	sccs := tarjanSCC(nodes, g)
	var out []Diagnostic
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		cycle := shortestCycle(scc[0], scc, g)
		if len(cycle) == 0 {
			continue
		}
		var chain []string
		var first lockWitness
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			w := g.edges[from][to]
			if i == 0 {
				first = w
			}
			pos := w.pkg.Fset.Position(w.pos)
			chain = append(chain, fmt.Sprintf("%s → %s (%s at %s:%d)",
				from, to, w.fn, shortPath(pos.Filename), pos.Line))
		}
		out = append(out, Diagnostic{
			Pos:      first.pkg.Fset.Position(first.pos),
			File:     first.pkg.Fset.Position(first.pos).Filename,
			Line:     first.pkg.Fset.Position(first.pos).Line,
			Col:      first.pkg.Fset.Position(first.pos).Column,
			Code:     lockorderAnalyzer.Code,
			Analyzer: lockorderAnalyzer.Name,
			Message: fmt.Sprintf("lock-order cycle (potential deadlock): %s",
				strings.Join(chain, ", ")),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

func shortPath(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		if j := strings.LastIndexByte(filename[:i], '/'); j >= 0 {
			return filename[j+1:]
		}
	}
	return filename
}

// tarjanSCC computes strongly connected components over the sorted
// node list (iteration order is deterministic).
func tarjanSCC(nodes []string, g *lockGraph) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		var succs []string
		for to := range g.edges[v] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return sccs
}

// shortestCycle BFSes within the SCC from start back to itself and
// returns the node sequence (start first, cycle implied closed).
func shortestCycle(start string, scc []string, g *lockGraph) []string {
	inSCC := map[string]bool{}
	for _, n := range scc {
		inSCC[n] = true
	}
	type path struct {
		node  string
		trail []string
	}
	queue := []path{{start, []string{start}}}
	visited := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var succs []string
		for to := range g.edges[cur.node] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, to := range succs {
			if to == start && len(cur.trail) > 1 {
				return cur.trail
			}
			if !inSCC[to] || visited[to] {
				continue
			}
			visited[to] = true
			trail := append(append([]string{}, cur.trail...), to)
			queue = append(queue, path{to, trail})
		}
	}
	// A 2-cycle start→x→start where x was visited on a longer first
	// path can slip the guard above; fall back to any direct back edge.
	for to := range g.edges[start] {
		if inSCC[to] {
			if _, ok := g.edges[to][start]; ok {
				return []string{start, to}
			}
		}
	}
	return nil
}
