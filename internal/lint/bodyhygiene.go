package lint

import (
	"go/ast"
	"go/types"
)

// ROAM004 bodyhygiene: every *http.Response obtained in a function must
// have its body drained AND closed on every path, and reads from a
// network body must be bounded. An unclosed body leaks the connection;
// a closed-but-undrained body tears the connection out of the
// keep-alive pool (a fleet of MEs then churns one TCP dial per
// request); an unbounded io.ReadAll on a network body lets one confused
// peer balloon resident memory. The repo-wide bound is 256 KiB
// (amigo.drainLimit, PR 4).
//
// Recognized evidence, per response variable, anywhere in the function:
//
//	handled  the whole *http.Response — or resp.Body itself — is
//	         passed to a module-local function (e.g. drainClose(resp),
//	         drainBody(resp.Body)) or escapes (returned, stored) —
//	         hygiene is the consumer's job. Standard-library calls do
//	         NOT delegate: json.NewDecoder(resp.Body) neither drains
//	         nor closes.
//	closed   resp.Body.Close() is called (plain or deferred)
//	drained  resp.Body is read by io.Copy/io.CopyN/io.ReadAll or
//	         wrapped in a reader passed to them
//
// A response with neither evidence, or closed without any drain, is
// flagged. Separately, io.ReadAll applied directly to an *http.Request
// or *http.Response Body — not wrapped in io.LimitReader — is flagged
// as an unbounded network read.
var bodyhygieneAnalyzer = &Analyzer{
	Name: "bodyhygiene",
	Code: "ROAM004",
	Doc:  "HTTP response bodies are drained, closed, and read through a bound on every path",
	// Run is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { bodyhygieneAnalyzer.Run = runBodyhygiene }

func runBodyhygiene(p *Package) []Diagnostic {
	var out []Diagnostic
	inspect(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, responseLifecycles(p, n)...)
			}
		case *ast.CallExpr:
			if d, ok := unboundedBodyRead(p, n); ok {
				out = append(out, d)
			}
		}
		return true
	})
	return out
}

// unboundedBodyRead flags io.ReadAll(x.Body) where x is an
// *http.Request or *http.Response and the body is not wrapped in
// io.LimitReader.
func unboundedBodyRead(p *Package, call *ast.CallExpr) (Diagnostic, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ReadAll" || len(call.Args) != 1 {
		return Diagnostic{}, false
	}
	if pkgPath, _ := importedPkg(p, sel); pkgPath != "io" && pkgPath != "io/ioutil" {
		return Diagnostic{}, false
	}
	arg, ok := call.Args[0].(*ast.SelectorExpr)
	if !ok || arg.Sel.Name != "Body" {
		return Diagnostic{}, false
	}
	t := p.Info.Types[arg.X].Type
	if t == nil || !isHTTPReqOrResp(t) {
		return Diagnostic{}, false
	}
	return diag(p, bodyhygieneAnalyzer, call.Pos(),
		"io.ReadAll on a network body without a bound: wrap it in io.LimitReader (repo bound: 256 KiB)"), true
}

func isHTTPReqOrResp(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return false
	}
	return obj.Name() == "Request" || obj.Name() == "Response"
}

// responseLifecycles tracks each *http.Response-typed variable assigned
// from a call inside fd and checks close/drain evidence.
func responseLifecycles(p *Package, fd *ast.FuncDecl) []Diagnostic {
	type state struct {
		pos     ast.Node
		name    string
		handled bool // passed whole to a function, or escapes
		closed  bool
		drained bool
	}
	resps := map[*types.Var]*state{}

	// Pass 1: find `resp, err := <call>` / `resp = <call>` bindings.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if _, ok := as.Rhs[0].(*ast.CallExpr); !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() || !isHTTPResponsePtr(v.Type()) {
				continue
			}
			if _, seen := resps[v]; !seen {
				resps[v] = &state{pos: id, name: v.Name()}
			}
		}
		return true
	})
	if len(resps) == 0 {
		return nil
	}

	varOf := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := p.Info.Uses[id].(*types.Var)
		return v
	}
	// bodyOf returns the response var when e is (or wraps) `resp.Body`.
	var bodyOf func(e ast.Expr) *types.Var
	bodyOf = func(e ast.Expr) *types.Var {
		switch e := e.(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == "Body" {
				if v := varOf(e.X); v != nil {
					return v
				}
			}
		case *ast.CallExpr: // io.LimitReader(resp.Body, n), bufio.NewReader(resp.Body), ...
			for _, a := range e.Args {
				if v := bodyOf(a); v != nil {
					return v
				}
			}
		}
		return nil
	}

	// Pass 2: collect evidence.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// resp.Body.Close()
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if v := bodyOf(sel.X); v != nil {
					if st := resps[v]; st != nil {
						st.closed = true
					}
					return true
				}
			}
			// Drains: io.Copy/CopyN/ReadAll with resp.Body in the args.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pkgPath, _ := importedPkg(p, sel); pkgPath == "io" &&
					(sel.Sel.Name == "Copy" || sel.Sel.Name == "CopyN" || sel.Sel.Name == "ReadAll") {
					for _, a := range n.Args {
						if v := bodyOf(a); v != nil {
							if st := resps[v]; st != nil {
								st.drained = true
							}
						}
					}
					return true
				}
			}
			// Whole response passed to some function: drainClose(resp),
			// helper(resp), method resp.Write(w), etc. — delegated.
			for _, a := range n.Args {
				if v := varOf(a); v != nil {
					if st := resps[v]; st != nil {
						st.handled = true
					}
				}
			}
			// resp.Body handed to a module-local helper (drainBody,
			// ingest, ...): the helper owns the lifecycle. Stdlib
			// wrappers (json.NewDecoder, bufio.NewReader) do not count.
			if moduleLocalCall(p, n) {
				for _, a := range n.Args {
					if v := bodyOf(a); v != nil {
						if st := resps[v]; st != nil {
							st.handled = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if v := varOf(r); v != nil {
					if st := resps[v]; st != nil {
						st.handled = true
					}
				}
			}
		case *ast.AssignStmt:
			// resp (or resp.Body) stored somewhere else: escapes.
			for _, r := range n.Rhs {
				if v := varOf(r); v != nil {
					if st := resps[v]; st != nil {
						st.handled = true
					}
				}
			}
		case *ast.UnaryExpr, *ast.CompositeLit:
			// &resp or a literal mentioning resp: treat embedded uses
			// as escapes via the contained idents.
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, _ := p.Info.Uses[id].(*types.Var); v != nil {
						if st := resps[v]; st != nil {
							st.handled = true
						}
					}
				}
				return true
			})
			return false
		}
		return true
	})

	var out []Diagnostic
	for _, st := range resps {
		if st.handled {
			continue
		}
		switch {
		case !st.closed:
			out = append(out, diag(p, bodyhygieneAnalyzer, st.pos.Pos(),
				"response body of %q is never closed in %s: close (and drain) it on every path",
				st.name, fd.Name.Name))
		case !st.drained:
			out = append(out, diag(p, bodyhygieneAnalyzer, st.pos.Pos(),
				"response body of %q is closed but never drained in %s: undrained bodies tear the connection out of the keep-alive pool",
				st.name, fd.Name.Name))
		}
	}
	return out
}

// moduleLocalCall reports whether the call's callee is a function or
// method defined in this module (as opposed to the standard library).
func moduleLocalCall(p *Package, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	_, isModule := moduleRel(pkg.Path())
	return isModule
}

func isHTTPResponsePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Response" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
