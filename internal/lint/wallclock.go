package lint

import (
	"go/ast"
	"go/types"
)

// ROAM001 wallclock: dataset-producing code must not read the wall
// clock or draw from the global math/rand stream. Every run of a
// campaign must be a pure function of its seed; a time.Now() or
// rand.Intn() on a dataset path silently couples output to the
// machine, the scheduler, or the process-global rng and shows up later
// as an unexplainable byte-diff between "identical" runs.
//
// Forbidden inside deterministic scope:
//   - time.Now, time.Since, time.Until (wall clock)
//   - time.Sleep, time.After, time.Tick (scheduler-coupled timing)
//   - any package-level math/rand or math/rand/v2 function or variable
//     (rand.Intn, rand.Float64, rand.Seed, ...). Constructing explicit
//     seeded generators (rand.New, rand.NewSource, rand.NewZipf, and
//     the rand.Rand/Source/Zipf types) stays legal: that is exactly how
//     internal/rng wraps math/rand.
var wallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Code: "ROAM001",
	Doc:  "no wall clock or global math/rand in dataset-producing packages",
	// Run is wired in init to avoid an initialization cycle
	// (the run function references the analyzer for diagnostics).
}

func init() { wallclockAnalyzer.Run = runWallclock }

var wallclockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
}

// mathRandAllowed lists math/rand members that construct or name
// explicitly-seeded generators rather than touching the global stream.
var mathRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 constructors
	"Rand": true, "Source": true, "Zipf": true, "PCG": true, "ChaCha8": true,
}

func runWallclock(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if !deterministic(p, filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, obj := importedPkg(p, sel)
			if obj == nil {
				return true
			}
			switch pkgPath {
			case "time":
				if wallclockTimeFuncs[sel.Sel.Name] {
					out = append(out, diag(p, wallclockAnalyzer, sel.Pos(),
						"time.%s in deterministic package %s: datasets must be a pure function of the seed",
						sel.Sel.Name, p.Path))
				}
			case "math/rand", "math/rand/v2":
				if !mathRandAllowed[sel.Sel.Name] {
					out = append(out, diag(p, wallclockAnalyzer, sel.Pos(),
						"global %s.%s in deterministic package %s: draw from a seeded rng.Source instead",
						pkgBase(pkgPath), sel.Sel.Name, p.Path))
				}
			}
			return true
		})
	}
	return out
}

// importedPkg resolves sel's base to a package name and returns the
// imported package path, or "" if sel is not a package-qualified
// selector.
func importedPkg(p *Package, sel *ast.SelectorExpr) (string, types.Object) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	obj := p.Info.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", nil
	}
	return pn.Imported().Path(), pn
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand"
	}
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
