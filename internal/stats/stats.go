// Package stats implements the descriptive and inferential statistics the
// paper reports: quantiles and boxplot summaries for every figure, CDFs,
// Welch's t-test (used to compare SIM vs eSIM RTTs), Levene's test (used
// to compare RTT variances), and normal-approximation confidence
// intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a test needs more samples.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
// With fewer than two samples the variance is undefined, so it returns
// NaN — a silent 0 would read as "perfectly stable", the opposite of
// "no evidence either way", and poison downstream aggregates unnoticed.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation, or NaN with fewer than
// two samples (see Variance).
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (type-7, the numpy default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Boxplot is the five-number summary plus mean and count, matching the
// boxplots in Figures 7–16.
type Boxplot struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	// WhiskerLo/WhiskerHi are the Tukey whiskers (1.5 IQR rule).
	WhiskerLo, WhiskerHi float64
}

// NewBoxplot summarizes xs. It returns a zero Boxplot for empty input.
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		return Boxplot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b := Boxplot{
		N:      len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
	}
	iqr := b.Q3 - b.Q1
	loFence, hiFence := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.WhiskerLo, b.WhiskerHi = b.Max, b.Min
	for _, v := range s {
		if v >= loFence && v < b.WhiskerLo {
			b.WhiskerLo = v
		}
		if v <= hiFence && v > b.WhiskerHi {
			b.WhiskerHi = v
		}
	}
	return b
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // P(X ≤ x)
}

// CDF returns the empirical distribution of xs as sorted points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{X: v, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// FractionAbove returns the fraction of samples strictly greater than
// threshold — e.g. the paper's "14.5% of eSIM RTTs exceeded 150 ms".
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionBelow returns the fraction of samples ≤ threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return 1 - FractionAbove(xs, threshold)
}

// TTestResult is the outcome of Welch's two-sample t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest compares the means of two independent samples without
// assuming equal variances (the paper's SIM-vs-eSIM comparison).
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(1), DF: na + nb - 2, P: 0}, nil
	}
	tStat := (ma - mb) / se
	num := math.Pow(va/na+vb/nb, 2)
	den := math.Pow(va/na, 2)/(na-1) + math.Pow(vb/nb, 2)/(nb-1)
	df := num / den
	return TTestResult{T: tStat, DF: df, P: twoSidedTP(tStat, df)}, nil
}

// LeveneTest tests equality of variances across groups using the
// Brown–Forsythe variant (deviations from group medians), which is what
// the paper cites for RTT variance comparison. It returns the W statistic
// and an F-distribution p-value.
func LeveneTest(groups ...[]float64) (w, p float64, err error) {
	k := len(groups)
	if k < 2 {
		return 0, 0, ErrInsufficientData
	}
	var nTotal int
	z := make([][]float64, k)
	zBar := make([]float64, k)
	var zGrand float64
	for i, g := range groups {
		if len(g) < 2 {
			return 0, 0, ErrInsufficientData
		}
		med := Median(g)
		z[i] = make([]float64, len(g))
		for j, v := range g {
			z[i][j] = math.Abs(v - med)
		}
		zBar[i] = Mean(z[i])
		zGrand += zBar[i] * float64(len(g))
		nTotal += len(g)
	}
	zGrand /= float64(nTotal)
	var between, within float64
	for i, g := range groups {
		between += float64(len(g)) * (zBar[i] - zGrand) * (zBar[i] - zGrand)
		for _, v := range z[i] {
			within += (v - zBar[i]) * (v - zBar[i])
		}
	}
	if within == 0 {
		return math.Inf(1), 0, nil
	}
	df1 := float64(k - 1)
	df2 := float64(nTotal - k)
	w = (df2 / df1) * between / within
	return w, fCDFUpper(w, df1, df2), nil
}

// MeanCI returns the mean and half-width of a normal-approximation
// confidence interval at the given z (1.96 for 95%). With fewer than
// two samples no interval exists and the half-width is 0 (the n<2 guard
// also keeps StdDev's NaN out of the result).
func MeanCI(xs []float64, z float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = z * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, half
}

// twoSidedTP computes the two-sided p-value of a t statistic with df
// degrees of freedom via the regularized incomplete beta function.
func twoSidedTP(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// fCDFUpper returns P(F ≥ w) for an F(df1, df2) distribution.
func fCDFUpper(w, df1, df2 float64) float64 {
	if w <= 0 {
		return 1
	}
	x := df2 / (df2 + df1*w)
	return regIncBeta(df2/2, df1/2, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x)
	}
	// Use the symmetry relation for better convergence.
	lbetaSwap := lgamma(a+b) - lgamma(b) - lgamma(a)
	frontSwap := math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbetaSwap) / b
	return 1 - frontSwap*betacf(b, a, 1-x)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
