package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"roamsim/internal/rng"
)

func approx(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", label, got, want, tol)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "stddev")
	if Mean(nil) != 0 {
		t.Error("empty mean should return 0")
	}
	// Variance of fewer than two samples is undefined: NaN, never a
	// silent 0 masquerading as perfect stability.
	if !math.IsNaN(Variance(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("n<2 variance should be NaN")
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Error("n<2 stddev should be NaN")
	}
	if mean, half := MeanCI([]float64{3}, 1.96); mean != 3 || half != 0 {
		t.Errorf("n=1 MeanCI = (%v, %v), want (3, 0)", mean, half)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 0.5), 3, 0, "q50")
	approx(t, Quantile(xs, 1), 5, 0, "q100")
	approx(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	// Interpolation: quantile 0.1 of [1..5] = 1.4 (type-7).
	approx(t, Quantile(xs, 0.1), 1.4, 1e-12, "q10")
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	s := rng.New(1)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = s.Normal(0, 10)
	}
	f := func(q1, q2 float64) bool {
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxplot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100} // one outlier
	b := NewBoxplot(xs)
	if b.N != 10 || b.Min != 1 || b.Max != 100 {
		t.Errorf("summary wrong: %+v", b)
	}
	if b.Median != 5.5 {
		t.Errorf("median = %f", b.Median)
	}
	if b.WhiskerHi >= 100 {
		t.Errorf("whisker should exclude the outlier, got %f", b.WhiskerHi)
	}
	if b.WhiskerLo != 1 {
		t.Errorf("lo whisker = %f", b.WhiskerLo)
	}
	empty := NewBoxplot(nil)
	if empty.N != 0 {
		t.Error("empty boxplot should be zero")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 1 || pts[2].X != 3 {
		t.Error("CDF not sorted by value")
	}
	approx(t, pts[0].P, 1.0/3, 1e-12, "first p")
	approx(t, pts[2].P, 1, 1e-12, "last p")
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
	// P must be nondecreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Fatal("CDF P not monotone")
		}
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	approx(t, FractionAbove(xs, 25), 0.5, 1e-12, "above 25")
	approx(t, FractionAbove(xs, 40), 0, 1e-12, "above 40")
	approx(t, FractionBelow(xs, 25), 0.5, 1e-12, "below 25")
	approx(t, FractionAbove(nil, 1), 0, 1e-12, "empty")
}

func TestWelchTTestDistinguishes(t *testing.T) {
	s := rng.New(2)
	a := make([]float64, 200)
	b := make([]float64, 200)
	c := make([]float64, 200)
	for i := range a {
		a[i] = s.Normal(50, 10)  // SIM-like
		b[i] = s.Normal(300, 60) // HR eSIM-like
		c[i] = s.Normal(50, 10)  // same as a
	}
	diff, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if diff.P > 1e-6 {
		t.Errorf("clearly different means: p = %g", diff.P)
	}
	if diff.T >= 0 {
		t.Errorf("a < b should give negative t, got %f", diff.T)
	}
	same, err := WelchTTest(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if same.P < 0.01 {
		t.Errorf("same distribution rejected: p = %g", same.P)
	}
	if _, err := WelchTTest([]float64{1}, a); err == nil {
		t.Error("n=1 should error")
	}
}

func TestWelchTTestKnownValue(t *testing.T) {
	// Cross-checked with scipy.stats.ttest_ind(equal_var=False).
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.2}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.T, -2.8, 0.15, "t statistic")
	if res.P < 0.005 || res.P > 0.02 {
		t.Errorf("p = %g, want ~0.01", res.P)
	}
}

func TestLeveneTest(t *testing.T) {
	s := rng.New(3)
	lowVar := make([]float64, 300)
	hiVar := make([]float64, 300)
	lowVar2 := make([]float64, 300)
	for i := range lowVar {
		lowVar[i] = s.Normal(100, 5)
		hiVar[i] = s.Normal(100, 50)
		lowVar2[i] = s.Normal(100, 5)
	}
	_, p, err := LeveneTest(lowVar, hiVar)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("unequal variances not detected: p = %g", p)
	}
	_, p2, err := LeveneTest(lowVar, lowVar2)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < 0.01 {
		t.Errorf("equal variances rejected: p = %g", p2)
	}
	if _, _, err := LeveneTest(lowVar); err == nil {
		t.Error("one group should error")
	}
}

func TestMeanCI(t *testing.T) {
	s := rng.New(4)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = s.Normal(31.7, 20)
	}
	mean, half := MeanCI(xs, 1.96)
	if math.Abs(mean-31.7) > 3 {
		t.Errorf("mean = %f", mean)
	}
	// Expected half-width ≈ 1.96*20/20 = 1.96.
	if half < 1.4 || half > 2.6 {
		t.Errorf("CI half-width = %f", half)
	}
	m, h := MeanCI([]float64{5}, 1.96)
	if m != 5 || h != 0 {
		t.Error("single sample CI should be (x, 0)")
	}
}

func TestRegIncBetaSanity(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		approx(t, regIncBeta(1, 1, x), x, 1e-9, "I_x(1,1)")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, regIncBeta(2, 3, 0.4), 1-regIncBeta(3, 2, 0.6), 1e-9, "symmetry")
	if regIncBeta(2, 2, 0) != 0 || regIncBeta(2, 2, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestMedianAgainstSort(t *testing.T) {
	s := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		n := s.IntBetween(1, 99)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Normal(0, 100)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var want float64
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		approx(t, Median(xs), want, 1e-9, "median")
	}
}
