package dnssim

import (
	"testing"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/rng"
)

func googleAnycast() *AnycastGroup {
	mk := func(city, country string) Resolver {
		c := geo.MustCity(city)
		return Resolver{Name: "google-" + city, ASN: 15169, City: city,
			Country: country, Loc: c.Loc, SupportsDoH: true,
			Addr: ipaddr.MustParse("8.8.4.4")}
	}
	return &AnycastGroup{
		Name: "GoogleDNS",
		VIP:  ipaddr.MustParse("8.8.8.8"),
		Instances: []Resolver{
			mk("Amsterdam", "NLD"), mk("Lille", "FRA"), mk("London", "GBR"),
			mk("Tulsa", "USA"), mk("Fort Worth", "USA"), mk("Singapore", "SGP"),
		},
	}
}

func TestAnycastNearestLandsAtPGWCountry(t *testing.T) {
	g := googleAnycast()
	// IHBO breakout in Amsterdam -> Amsterdam instance, same country as
	// PGW (the 74% finding).
	r, err := g.Nearest(geo.MustCity("Amsterdam").Loc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Country != "NLD" {
		t.Errorf("Amsterdam PGW got resolver in %s", r.Country)
	}
	// Breakout in Dallas: nearest is Fort Worth (20 km), not Tulsa.
	r, _ = g.Nearest(geo.MustCity("Dallas").Loc)
	if r.City != "Fort Worth" {
		t.Errorf("Dallas PGW got resolver %s, want Fort Worth", r.City)
	}
	var empty AnycastGroup
	if _, err := empty.Nearest(geo.Point{}); err != nil {
		// ok: expected error
	} else {
		t.Error("empty group should error")
	}
}

func TestConfigEffective(t *testing.T) {
	g := googleAnycast()
	sgRes := Resolver{Name: "singtel-dns", Country: "SGP", Loc: geo.MustCity("Singapore").Loc}
	own := Config{Resolver: &sgRes}
	r, err := own.Effective(geo.MustCity("Amsterdam").Loc)
	if err != nil || r.Name != "singtel-dns" {
		t.Errorf("b-MNO config should pin its resolver: %v %s", err, r.Name)
	}
	any := Config{Anycast: g}
	r, err = any.Effective(geo.MustCity("London").Loc)
	if err != nil || r.City != "London" {
		t.Errorf("anycast config: %v %s", err, r.City)
	}
	var none Config
	if _, err := none.Effective(geo.Point{}); err == nil {
		t.Error("empty config should error")
	}
}

func TestDoHActiveRequiresSupport(t *testing.T) {
	mnoRes := Resolver{Name: "mno", SupportsDoH: false}
	googleRes := Resolver{Name: "google", SupportsDoH: true}
	c := Config{UseDoH: true}
	if c.DoHActive(mnoRes) {
		t.Error("DoH must fall back when resolver lacks support")
	}
	if !c.DoHActive(googleRes) {
		t.Error("DoH should be active with Google")
	}
	if (Config{UseDoH: false}).DoHActive(googleRes) {
		t.Error("DoH off must stay off")
	}
}

func TestLookupDoHSlower(t *testing.T) {
	src := rng.New(1)
	r := Resolver{Name: "r", SupportsDoH: true}
	const rtt = 40.0
	var plain, doh float64
	const n = 500
	for i := 0; i < n; i++ {
		plain += Lookup(r, rtt, false, src).DurationMs
		doh += Lookup(r, rtt, true, src).DurationMs
	}
	if doh/n < plain/n+2*rtt*0.8 {
		t.Errorf("DoH mean %f should exceed plain %f by ~2 RTT", doh/n, plain/n)
	}
}

func TestLookupScalesWithRTT(t *testing.T) {
	src := rng.New(2)
	r := Resolver{Name: "r"}
	var short, long float64
	const n = 500
	for i := 0; i < n; i++ {
		short += Lookup(r, 10, false, src).DurationMs
		long += Lookup(r, 300, false, src).DurationMs // HR-like tunnel RTT
	}
	// The 610% HR inflation mechanism: duration tracks resolver RTT.
	if long/short < 4 {
		t.Errorf("long/short ratio = %f, want > 4", long/short)
	}
}

func TestLookupCacheMissAddsRecursion(t *testing.T) {
	src := rng.New(3)
	r := Resolver{Name: "r"}
	var hit, miss []float64
	for i := 0; i < 2000; i++ {
		res := Lookup(r, 20, false, src)
		if res.CacheHit {
			hit = append(hit, res.DurationMs)
		} else {
			miss = append(miss, res.DurationMs)
		}
	}
	if len(hit) == 0 || len(miss) == 0 {
		t.Fatal("expected both hits and misses")
	}
	var mh, mm float64
	for _, v := range hit {
		mh += v
	}
	for _, v := range miss {
		mm += v
	}
	if mm/float64(len(miss)) <= mh/float64(len(hit)) {
		t.Error("cache misses must be slower on average")
	}
}

func TestIdentify(t *testing.T) {
	g := googleAnycast()
	c := Config{Anycast: g, UseDoH: true}
	r, doh, err := Identify(c, geo.MustCity("Lille").Loc)
	if err != nil {
		t.Fatal(err)
	}
	if r.City != "Lille" || !doh {
		t.Errorf("Identify = %s doh=%v", r.City, doh)
	}
	if _, _, err := Identify(Config{}, geo.Point{}); err == nil {
		t.Error("empty config should error")
	}
}
