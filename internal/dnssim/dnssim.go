// Package dnssim models DNS resolution as seen by the campaigns: which
// resolver a session uses (the b-MNO's own resolver for SIM/native/HR
// configurations, Google's anycast for IHBO breakouts), where anycast
// lands (the resolver nearest the PGW, not the user), and how long a
// lookup takes including the DoH penalty the paper (accidentally) paid
// on IHBO eSIMs.
//
// The Identify function reproduces the Nextdns trick: a unique label
// forces a cache miss so the recursive resolver's unicast address becomes
// visible despite anycast.
package dnssim

import (
	"fmt"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/rng"
)

// Resolver is one recursive resolver deployment.
type Resolver struct {
	Name    string
	Addr    ipaddr.Addr // unicast address (what Nextdns reveals)
	ASN     ipreg.ASN
	City    string
	Country string // ISO3
	Loc     geo.Point
	// SupportsDoH reports whether the resolver accepts DNS over HTTPS.
	// MNO resolvers mostly don't (the paper's observation), so sessions
	// fall back to Do53 with them.
	SupportsDoH bool
}

// AnycastGroup is a set of resolvers behind one service address
// (8.8.8.8): queries land on the instance nearest the network entry
// point — for a roaming session, the PGW.
type AnycastGroup struct {
	Name      string
	VIP       ipaddr.Addr
	Instances []Resolver
}

// Nearest returns the instance closest to the given point.
func (g *AnycastGroup) Nearest(p geo.Point) (Resolver, error) {
	if len(g.Instances) == 0 {
		return Resolver{}, fmt.Errorf("dnssim: anycast group %s empty", g.Name)
	}
	best := g.Instances[0]
	bestD := geo.DistanceKm(p, best.Loc)
	for _, r := range g.Instances[1:] {
		if d := geo.DistanceKm(p, r.Loc); d < bestD {
			best, bestD = r, d
		}
	}
	return best, nil
}

// Config is a session's DNS configuration.
type Config struct {
	// Resolver is the assigned unicast resolver (b-MNO case); nil when
	// the session uses an anycast group instead.
	Resolver *Resolver
	// Anycast is the anycast group used when Resolver is nil.
	Anycast *AnycastGroup
	// UseDoH enables DNS over HTTPS when the effective resolver
	// supports it (the Android-default behaviour the paper hit).
	UseDoH bool
}

// Effective resolves the configuration to a concrete resolver instance,
// given the session's internet entry point (PGW location). This is where
// the paper's "74% of IHBO DNS queries land in the PGW's country" comes
// from: anycast sees the query entering at the PGW.
func (c Config) Effective(pgwLoc geo.Point) (Resolver, error) {
	switch {
	case c.Resolver != nil:
		return *c.Resolver, nil
	case c.Anycast != nil:
		return c.Anycast.Nearest(pgwLoc)
	default:
		return Resolver{}, fmt.Errorf("dnssim: empty DNS config")
	}
}

// DoHActive reports whether the session will actually speak DoH (wanted
// and supported).
func (c Config) DoHActive(r Resolver) bool { return c.UseDoH && r.SupportsDoH }

// LookupResult is one measured DNS lookup.
type LookupResult struct {
	Resolver   Resolver
	DurationMs float64
	DoH        bool
	CacheHit   bool
}

// Timing parameters of the lookup model.
const (
	// cacheHitProb is the probability the recursive resolver already
	// holds the answer.
	cacheHitProb = 0.7
	// recursionMedianMs is the median upstream recursion time on a miss.
	recursionMedianMs = 35.0
)

// Lookup models one query: transport setup plus resolver RTT plus
// possible upstream recursion. rttToResolverMs is the measured round
// trip between the device and the resolver (through tunnels and all) —
// the caller computes it over the simulated path, so GTP inflation
// automatically dominates exactly as in Figure 14-b.
func Lookup(r Resolver, rttToResolverMs float64, doh bool, src *rng.Source) LookupResult {
	res := LookupResult{Resolver: r, DoH: doh}
	d := rttToResolverMs // the query/response exchange itself
	if doh {
		// TCP handshake (1 RTT) + TLS 1.3 (1 RTT) before the query, the
		// "cost of DNS-over-HTTPS" the paper cites.
		d += 2 * rttToResolverMs
		d += src.Uniform(2, 8) // TLS crypto + HTTP framing overhead
	}
	res.CacheHit = src.Bool(cacheHitProb)
	if !res.CacheHit {
		d += src.LogNormalMeanMedian(recursionMedianMs, 0.5)
	}
	res.DurationMs = src.Jitter(d, 0.1)
	return res
}

// Identify reproduces the Nextdns measurement: it returns the unicast
// resolver serving the session plus whether DoH is in use. The unique
// per-query label means the result is never masked by caching.
func Identify(c Config, pgwLoc geo.Point) (Resolver, bool, error) {
	r, err := c.Effective(pgwLoc)
	if err != nil {
		return Resolver{}, false, err
	}
	return r, c.DoHActive(r), nil
}
