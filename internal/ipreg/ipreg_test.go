package ipreg

import (
	"testing"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.RegisterAS(AS{Number: 45143, Org: "Singtel", Country: "SGP", Kind: KindMNO})
	r.RegisterAS(AS{Number: 54825, Org: "Packet Host", Country: "USA", Kind: KindIPX})
	r.RegisterAS(AS{Number: 15169, Org: "Google", Country: "USA", Kind: KindContent})
	sgp := geo.MustCity("Singapore")
	ams := geo.MustCity("Amsterdam")
	r.MustRegisterPrefix(ipaddr.MustParsePrefix("202.166.126.0/24"), 45143, sgp.Name, "SGP", sgp.Loc)
	r.MustRegisterPrefix(ipaddr.MustParsePrefix("147.75.32.0/20"), 54825, ams.Name, "NLD", ams.Loc)
	r.MustRegisterPrefix(ipaddr.MustParsePrefix("8.8.8.0/24"), 15169, "Ashburn", "USA", geo.MustCity("Ashburn").Loc)
	return r
}

func TestLookupBasic(t *testing.T) {
	r := newTestRegistry(t)
	info, ok := r.Lookup(ipaddr.MustParse("202.166.126.44"))
	if !ok {
		t.Fatal("lookup failed")
	}
	if info.AS.Number != 45143 || info.AS.Org != "Singtel" {
		t.Errorf("wrong AS: %+v", info.AS)
	}
	if info.Country != "SGP" || info.City != "Singapore" {
		t.Errorf("wrong geo: %s/%s", info.City, info.Country)
	}
	if info.Prefix.String() != "202.166.126.0/24" {
		t.Errorf("wrong prefix: %s", info.Prefix)
	}
}

func TestLookupMiss(t *testing.T) {
	r := newTestRegistry(t)
	if _, ok := r.Lookup(ipaddr.MustParse("203.0.113.7")); ok {
		t.Error("unregistered address should miss")
	}
}

func TestLookupPrivateNeverResolves(t *testing.T) {
	r := newTestRegistry(t)
	// Even if someone registered RFC1918 space, lookups must refuse:
	// the demarcation logic depends on private hops being anonymous.
	r.RegisterAS(AS{Number: 64512, Org: "private", Country: "USA", Kind: KindOther})
	r.MustRegisterPrefix(ipaddr.MustParsePrefix("10.0.0.0/8"), 64512, "Nowhere", "USA", geo.Point{Lat: 1, Lon: 1})
	for _, s := range []string{"10.1.2.3", "192.168.0.1", "100.64.3.4", "172.16.9.9"} {
		if _, ok := r.Lookup(ipaddr.MustParse(s)); ok {
			t.Errorf("private %s resolved", s)
		}
	}
}

func TestLongestPrefixWins(t *testing.T) {
	r := newTestRegistry(t)
	r.RegisterAS(AS{Number: 99, Org: "More Specific Org", Country: "FRA", Kind: KindCloud})
	lille := geo.MustCity("Lille")
	r.MustRegisterPrefix(ipaddr.MustParsePrefix("147.75.40.0/24"), 99, lille.Name, "FRA", lille.Loc)
	info, ok := r.Lookup(ipaddr.MustParse("147.75.40.9"))
	if !ok {
		t.Fatal("lookup failed")
	}
	if info.AS.Number != 99 {
		t.Errorf("expected most-specific AS99, got %s", info.AS.Number)
	}
	// An address in the /20 but outside the /24 still maps to AS54825.
	info, ok = r.Lookup(ipaddr.MustParse("147.75.41.9"))
	if !ok || info.AS.Number != 54825 {
		t.Errorf("covering prefix lookup: ok=%v as=%v", ok, info.AS.Number)
	}
}

func TestRegisterPrefixRequiresAS(t *testing.T) {
	r := NewRegistry()
	err := r.RegisterPrefix(ipaddr.MustParsePrefix("1.0.0.0/24"), 1234, "X", "USA", geo.Point{})
	if err == nil {
		t.Error("prefix for unregistered AS should fail")
	}
}

func TestASNString(t *testing.T) {
	if ASN(54825).String() != "AS54825" {
		t.Errorf("got %s", ASN(54825).String())
	}
}

func TestASesSorted(t *testing.T) {
	r := newTestRegistry(t)
	ases := r.ASes()
	if len(ases) != 3 {
		t.Fatalf("got %d ASes", len(ases))
	}
	for i := 1; i < len(ases); i++ {
		if ases[i-1].Number >= ases[i].Number {
			t.Fatal("ASes not sorted")
		}
	}
}

func TestLookupAS(t *testing.T) {
	r := newTestRegistry(t)
	as, ok := r.LookupAS(45143)
	if !ok || as.Org != "Singtel" || as.Kind != KindMNO {
		t.Errorf("LookupAS: ok=%v %+v", ok, as)
	}
	if _, ok := r.LookupAS(1); ok {
		t.Error("unknown ASN should miss")
	}
}

func TestInterleavedRegistrationAndLookup(t *testing.T) {
	r := newTestRegistry(t)
	if _, ok := r.Lookup(ipaddr.MustParse("8.8.8.8")); !ok {
		t.Fatal("initial lookup failed")
	}
	// Register after a lookup has sorted the slice; lookup must re-sort.
	r.RegisterAS(AS{Number: 16509, Org: "Amazon.com, Inc.", Country: "USA", Kind: KindCloud})
	dub := geo.MustCity("Dublin")
	r.MustRegisterPrefix(ipaddr.MustParsePrefix("3.248.0.0/16"), 16509, dub.Name, "IRL", dub.Loc)
	info, ok := r.Lookup(ipaddr.MustParse("3.248.7.7"))
	if !ok || info.AS.Org != "Amazon.com, Inc." || info.City != "Dublin" {
		t.Errorf("post-registration lookup: ok=%v %+v", ok, info)
	}
	if r.PrefixCount() != 4 {
		t.Errorf("PrefixCount = %d", r.PrefixCount())
	}
}

func TestEveryAddressInPrefixResolves(t *testing.T) {
	r := newTestRegistry(t)
	p := ipaddr.MustParsePrefix("202.166.126.0/24")
	for i := uint64(0); i < p.Size(); i++ {
		if _, ok := r.Lookup(p.Nth(i)); !ok {
			t.Fatalf("address %s inside registered prefix did not resolve", p.Nth(i))
		}
	}
}
