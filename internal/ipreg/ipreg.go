// Package ipreg is the simulator's equivalent of the ipinfo/WHOIS
// databases the paper uses: it maps public IP addresses to the autonomous
// system that announces them, the organization behind that AS, and a
// city-level geolocation.
//
// The registry is authoritative by construction — the world builder
// registers every prefix it assigns — which corresponds to the paper's
// (validated) assumption that IP-to-ASN and IP-to-geo mappings for PGW
// addresses are reliable.
package ipreg

import (
	"fmt"
	"sort"
	"sync"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the ASN in the conventional "AS12345" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// OrgKind classifies the organization operating an AS. The tomography
// classifier keys on this to tell an MNO's AS from an IPX/cloud provider's.
type OrgKind string

// Organization kinds.
const (
	KindMNO     OrgKind = "mno"     // mobile network operator
	KindIPX     OrgKind = "ipx"     // IPX provider / PGW infrastructure
	KindCloud   OrgKind = "cloud"   // cloud/hosting provider
	KindContent OrgKind = "content" // content/service provider (Google, Facebook, ...)
	KindTransit OrgKind = "transit" // IP transit carrier
	KindOther   OrgKind = "other"   // anything else
)

// AS describes one autonomous system.
type AS struct {
	Number  ASN
	Org     string  // organization name, e.g. "Singtel"
	Country string  // ISO3 of the org's registration country
	Kind    OrgKind // classification used by the tomography layer
}

// Info is the result of an IP lookup: the AS plus prefix-level geolocation.
type Info struct {
	Addr    ipaddr.Addr
	AS      AS
	Prefix  ipaddr.Prefix
	City    string // geolocation city name
	Country string // geolocation ISO3 (may differ from AS registration country)
	Loc     geo.Point
}

// Registry maps prefixes to announcing ASes with geolocation.
// It is safe for concurrent lookups after construction; registrations and
// lookups may also be interleaved (guarded by a mutex) because the amigo
// testbed registers endpoints while measurements run.
type Registry struct {
	mu       sync.RWMutex
	ases     map[ASN]AS
	prefixes []entry // sorted by base address for binary search
	sorted   bool
}

type entry struct {
	prefix  ipaddr.Prefix
	asn     ASN
	city    string
	country string
	loc     geo.Point
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ases: make(map[ASN]AS)}
}

// RegisterAS adds or replaces an AS record.
func (r *Registry) RegisterAS(as AS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ases[as.Number] = as
}

// RegisterPrefix announces prefix from asn, geolocated at the given city.
// The AS must already be registered. Overlapping prefixes are allowed;
// lookups prefer the most specific (longest) match, as real routing does.
func (r *Registry) RegisterPrefix(p ipaddr.Prefix, asn ASN, city string, country string, loc geo.Point) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ases[asn]; !ok {
		return fmt.Errorf("ipreg: prefix %s announced by unregistered %s", p, asn)
	}
	r.prefixes = append(r.prefixes, entry{p, asn, city, country, loc})
	r.sorted = false
	return nil
}

// MustRegisterPrefix is RegisterPrefix but panics on error.
func (r *Registry) MustRegisterPrefix(p ipaddr.Prefix, asn ASN, city string, country string, loc geo.Point) {
	if err := r.RegisterPrefix(p, asn, city, country, loc); err != nil {
		panic(err)
	}
}

// LookupAS returns the AS record for a number.
func (r *Registry) LookupAS(asn ASN) (AS, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	as, ok := r.ases[asn]
	return as, ok
}

// Lookup resolves an address to its most-specific registered prefix.
// Private addresses never resolve: like the paper's traceroute analysis,
// hops inside GTP tunnels and provider cores are invisible to WHOIS.
func (r *Registry) Lookup(a ipaddr.Addr) (Info, bool) {
	if a.IsPrivate() {
		return Info{}, false
	}
	// Fast path: once the prefix table is sorted, lookups only need a
	// read lock, so concurrent campaign workers demarcating traceroutes
	// do not serialize here.
	r.mu.RLock()
	if r.sorted {
		info, ok := r.lookupLocked(a)
		r.mu.RUnlock()
		return info, ok
	}
	r.mu.RUnlock()

	r.mu.Lock()
	if !r.sorted {
		sort.Slice(r.prefixes, func(i, j int) bool {
			if r.prefixes[i].prefix.Base != r.prefixes[j].prefix.Base {
				return r.prefixes[i].prefix.Base < r.prefixes[j].prefix.Base
			}
			return r.prefixes[i].prefix.Bits < r.prefixes[j].prefix.Bits
		})
		r.sorted = true
	}
	info, ok := r.lookupLocked(a)
	r.mu.Unlock()
	return info, ok
}

// lookupLocked resolves against the sorted table. Callers hold r.mu
// (read or write).
func (r *Registry) lookupLocked(a ipaddr.Addr) (Info, bool) {
	prefixes := r.prefixes
	ases := r.ases

	// Binary search for the last prefix whose base is <= a, then scan
	// backwards for the longest containing prefix. Containing prefixes
	// always have base <= a, so the backward scan is sufficient.
	// Registries here hold hundreds of entries, so the scan is cheap.
	i := sort.Search(len(prefixes), func(i int) bool { return prefixes[i].prefix.Base > a }) - 1
	best := -1
	for j := i; j >= 0; j-- {
		e := prefixes[j]
		if e.prefix.Contains(a) && (best == -1 || e.prefix.Bits > prefixes[best].prefix.Bits) {
			best = j
		}
	}
	if best < 0 {
		return Info{}, false
	}
	e := prefixes[best]
	return Info{
		Addr:    a,
		AS:      ases[e.asn],
		Prefix:  e.prefix,
		City:    e.city,
		Country: e.country,
		Loc:     e.loc,
	}, true
}

// ASes returns all registered AS records sorted by number.
func (r *Registry) ASes() []AS {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]AS, 0, len(r.ases))
	for _, as := range r.ases {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// PrefixCount returns the number of registered prefixes.
func (r *Registry) PrefixCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.prefixes)
}
