package mno

import (
	"strings"
	"testing"

	"roamsim/internal/rng"
)

func playPoland() *Operator {
	return &Operator{
		Name:    "Play",
		PLMN:    PLMN{MCC: "260", MNC: "06"},
		Country: "POL",
		ASN:     12912,
	}
}

func TestPLMN(t *testing.T) {
	p := PLMN{MCC: "260", MNC: "06"}
	if p.String() != "260-06" {
		t.Errorf("String = %s", p.String())
	}
	if !p.Valid() {
		t.Error("valid PLMN reported invalid")
	}
	for _, bad := range []PLMN{
		{MCC: "26", MNC: "06"},
		{MCC: "2600", MNC: "06"},
		{MCC: "260", MNC: "0"},
		{MCC: "260", MNC: "0606"},
		{MCC: "26a", MNC: "06"},
	} {
		if bad.Valid() {
			t.Errorf("%v should be invalid", bad)
		}
	}
}

func TestIMSIValidAndPLMNOf(t *testing.T) {
	i := IMSI("260067310000042")
	if !i.Valid() {
		t.Error("15-digit IMSI invalid")
	}
	if IMSI("26006").Valid() || IMSI("26006731000004x").Valid() {
		t.Error("malformed IMSIs accepted")
	}
	if got := i.PLMNOf(2); got.String() != "260-06" {
		t.Errorf("PLMNOf(2) = %s", got)
	}
	if got := i.PLMNOf(3); got.String() != "260-067" {
		t.Errorf("PLMNOf(3) = %s", got)
	}
	if got := IMSI("12").PLMNOf(2); got != (PLMN{}) {
		t.Error("short IMSI should give zero PLMN")
	}
}

func TestLeaseRangeAndMint(t *testing.T) {
	op := playPoland()
	airalo := op.MustLeaseRange("731", "airalo")
	if airalo.Prefix != "26006731" {
		t.Errorf("prefix = %s", airalo.Prefix)
	}
	imsi := op.NewIMSI(airalo)
	if !imsi.Valid() || !airalo.Contains(imsi) {
		t.Errorf("minted IMSI %s invalid or outside range", imsi)
	}
	// Sequential IMSIs are distinct.
	seen := map[IMSI]bool{}
	for i := 0; i < 1000; i++ {
		m := op.NewIMSI(airalo)
		if seen[m] {
			t.Fatalf("duplicate IMSI %s", m)
		}
		seen[m] = true
	}
}

func TestLeaseRangeOverlapRejected(t *testing.T) {
	op := playPoland()
	op.MustLeaseRange("731", "airalo")
	if _, err := op.LeaseRange("731", "other"); err == nil {
		t.Error("identical range should be rejected")
	}
	if _, err := op.LeaseRange("7315", "other"); err == nil {
		t.Error("nested range should be rejected")
	}
	if _, err := op.LeaseRange("7", "other"); err == nil {
		t.Error("covering range should be rejected")
	}
	if _, err := op.LeaseRange("732", "other"); err != nil {
		t.Errorf("disjoint range rejected: %v", err)
	}
	if _, err := op.LeaseRange("73a", "x"); err == nil {
		t.Error("non-digit suffix should be rejected")
	}
	if _, err := op.LeaseRange(strings.Repeat("9", 11), "x"); err == nil {
		t.Error("overlong prefix should be rejected")
	}
}

func TestOwnRangeContainsLeased(t *testing.T) {
	op := playPoland()
	leased := op.MustLeaseRange("731", "airalo")
	own := op.OwnRange()
	imsi := op.NewIMSI(leased)
	if !own.Contains(imsi) {
		t.Error("operator's own range must contain leased IMSIs (this is why v-MNOs can't tell Airalo users apart)")
	}
}

func TestNewProfile(t *testing.T) {
	op := playPoland()
	rg := op.MustLeaseRange("731", "airalo")
	p := NewProfile("esim-GEO", ESIM, op, rg, "internet", "airalo")
	if p.Issuer.Name != "Play" || p.Kind != ESIM || p.Aggregator != "airalo" {
		t.Errorf("profile wrong: %+v", p)
	}
	if !rg.Contains(p.IMSI) {
		t.Error("profile IMSI outside leased range")
	}
}

func TestRadioSampleDistribution(t *testing.T) {
	src := rng.New(1)
	rc := RadioConditions{FiveGShare: 0.7, MeanCQI: 11}
	var fiveG, usable int
	const n = 5000
	for i := 0; i < n; i++ {
		s := rc.Sample(src)
		if s.CQI < 1 || s.CQI > 15 {
			t.Fatalf("CQI out of range: %d", s.CQI)
		}
		if s.RAT == RAT5G {
			fiveG++
		}
		if s.Usable() {
			usable++
		}
	}
	if f := float64(fiveG) / n; f < 0.65 || f > 0.75 {
		t.Errorf("5G share = %f, want ~0.7", f)
	}
	// MeanCQI 11 with sd 2.5: the vast majority pass the CQI≥7 filter.
	if f := float64(usable) / n; f < 0.9 {
		t.Errorf("usable fraction = %f, want > 0.9", f)
	}
}

func TestRadioSamplePoorChannel(t *testing.T) {
	src := rng.New(2)
	rc := RadioConditions{FiveGShare: 0, MeanCQI: 5}
	var usable int
	const n = 5000
	for i := 0; i < n; i++ {
		if rc.Sample(src).Usable() {
			usable++
		}
	}
	// Mean 5, sd 2.5: most samples fail the filter — this is the ~20%
	// exclusion mechanism the paper applies (749 -> 604 measurements).
	if f := float64(usable) / n; f > 0.45 {
		t.Errorf("poor channel usable fraction = %f, want < 0.45", f)
	}
}

func TestRadioDefaultsAndCQIBounds(t *testing.T) {
	src := rng.New(3)
	rc := RadioConditions{} // MeanCQI defaults to 10
	for i := 0; i < 1000; i++ {
		s := rc.Sample(src)
		if s.RAT != RAT4G {
			t.Fatal("FiveGShare 0 must always be 4G")
		}
		if s.CQI < 1 || s.CQI > 15 {
			t.Fatalf("CQI %d out of bounds", s.CQI)
		}
	}
}

func TestRSSITracksCQI(t *testing.T) {
	src := rng.New(4)
	good := RadioConditions{MeanCQI: 14}
	bad := RadioConditions{MeanCQI: 3}
	var sumGood, sumBad float64
	const n = 2000
	for i := 0; i < n; i++ {
		sumGood += good.Sample(src).RSSI
		sumBad += bad.Sample(src).RSSI
	}
	if sumGood/n <= sumBad/n {
		t.Error("better channel should have higher mean RSSI")
	}
}
