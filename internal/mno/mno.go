// Package mno models mobile network operators and subscriber identity:
// PLMN codes (MCC/MNC), IMSI allocation and rented IMSI ranges, physical
// SIM and eSIM profiles, and the radio-level context (RAT, CQI) the
// device campaign records.
//
// The distinction the paper builds on is carried here explicitly: a
// profile has an *issuer* (the b-MNO whose MCC-MNC appears in the APN
// settings) which may differ from both the user's home operator and the
// visited operator the device attaches to.
package mno

import (
	"fmt"
	"strings"

	"roamsim/internal/ipreg"
	"roamsim/internal/rng"
)

// PLMN is a public land mobile network code: MCC (3 digits) + MNC (2-3).
type PLMN struct {
	MCC string
	MNC string
}

// String renders "MCC-MNC".
func (p PLMN) String() string { return p.MCC + "-" + p.MNC }

// Valid reports whether both fields are well-formed digit strings.
func (p PLMN) Valid() bool {
	if len(p.MCC) != 3 || (len(p.MNC) != 2 && len(p.MNC) != 3) {
		return false
	}
	for _, r := range p.MCC + p.MNC {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// IMSI is an international mobile subscriber identity (15 digits).
type IMSI string

// PLMNOf extracts the PLMN from an IMSI assuming a 2-digit MNC, falling
// back to 3 digits when the caller's known PLMN table says so. The
// pattern-mining code in the core package deals with the ambiguity the
// way the paper does: by matching against known operator prefixes.
func (i IMSI) PLMNOf(mncLen int) PLMN {
	s := string(i)
	if len(s) < 5 || mncLen < 2 || mncLen > 3 || len(s) < 3+mncLen {
		return PLMN{}
	}
	return PLMN{MCC: s[:3], MNC: s[3 : 3+mncLen]}
}

// Valid reports whether the IMSI is 15 digits.
func (i IMSI) Valid() bool {
	if len(i) != 15 {
		return false
	}
	for _, r := range i {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// IMSIRange is a contiguous block of IMSIs identified by a shared prefix,
// the unit in which operators lease identity space to aggregators
// ("a limited, pre-determined range of Play IMSIs are rented to Airalo").
type IMSIRange struct {
	Prefix string // full digit prefix, e.g. "26006731"
	Label  string // who the range is assigned to, e.g. "airalo"
}

// Contains reports whether the IMSI falls in the range.
func (r IMSIRange) Contains(i IMSI) bool {
	return strings.HasPrefix(string(i), r.Prefix)
}

// Operator is a mobile network operator (or MVNO).
type Operator struct {
	Name    string
	PLMN    PLMN
	Country string    // ISO3 of the home country
	ASN     ipreg.ASN // AS announcing the operator's public address space
	// MVNO marks operators without their own radio network; Parent names
	// the host MNO (the Korea physical SIM case: U+ UMobile on LG UPlus).
	MVNO   bool
	Parent string

	ranges []IMSIRange
	nextID uint64
}

// LeaseRange reserves an IMSI prefix block under this operator's PLMN for
// the named tenant and returns it. Prefixes must extend the operator's
// own PLMN prefix.
func (o *Operator) LeaseRange(suffix, label string) (IMSIRange, error) {
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return IMSIRange{}, fmt.Errorf("mno: bad range suffix %q", suffix)
		}
	}
	prefix := o.PLMN.MCC + o.PLMN.MNC + suffix
	if len(prefix) >= 15 {
		return IMSIRange{}, fmt.Errorf("mno: prefix %q too long", prefix)
	}
	for _, existing := range o.ranges {
		if strings.HasPrefix(prefix, existing.Prefix) || strings.HasPrefix(existing.Prefix, prefix) {
			return IMSIRange{}, fmt.Errorf("mno: range %q overlaps %q", prefix, existing.Prefix)
		}
	}
	rg := IMSIRange{Prefix: prefix, Label: label}
	o.ranges = append(o.ranges, rg)
	return rg, nil
}

// MustLeaseRange is LeaseRange but panics on error.
func (o *Operator) MustLeaseRange(suffix, label string) IMSIRange {
	rg, err := o.LeaseRange(suffix, label)
	if err != nil {
		panic(err)
	}
	return rg
}

// Ranges returns the leased ranges.
func (o *Operator) Ranges() []IMSIRange {
	return append([]IMSIRange(nil), o.ranges...)
}

// NewIMSI mints the next IMSI inside the given range (which must belong
// to this operator's PLMN space).
func (o *Operator) NewIMSI(rg IMSIRange) IMSI {
	o.nextID++
	digitsLeft := 15 - len(rg.Prefix)
	imsi := IMSI(fmt.Sprintf("%s%0*d", rg.Prefix, digitsLeft, o.nextID))
	if !imsi.Valid() {
		panic(fmt.Sprintf("mno: generated invalid IMSI %s", imsi))
	}
	return imsi
}

// OwnRange returns the operator's default (retail) IMSI range.
func (o *Operator) OwnRange() IMSIRange {
	return IMSIRange{Prefix: o.PLMN.MCC + o.PLMN.MNC, Label: o.Name}
}

// SIMKind distinguishes the two device campaign configurations.
type SIMKind string

// SIM kinds.
const (
	PhysicalSIM SIMKind = "sim"
	ESIM        SIMKind = "esim"
)

// Profile is a SIM/eSIM profile as provisioned to a device.
type Profile struct {
	ID     string
	Kind   SIMKind
	Issuer *Operator // the b-MNO (whose MCC-MNC shows in APN settings)
	IMSI   IMSI
	APN    string
	// Aggregator is the MNA that sold the profile ("airalo", "emnify"),
	// empty for plain operator SIMs.
	Aggregator string
}

// NewProfile provisions a profile from issuer within range rg.
func NewProfile(id string, kind SIMKind, issuer *Operator, rg IMSIRange, apn, aggregator string) *Profile {
	return &Profile{
		ID:         id,
		Kind:       kind,
		Issuer:     issuer,
		IMSI:       issuer.NewIMSI(rg),
		APN:        apn,
		Aggregator: aggregator,
	}
}

// RAT is a radio access technology generation.
type RAT string

// Radio access technologies observed in the campaigns.
const (
	RAT4G RAT = "4G"
	RAT5G RAT = "5G"
)

// RadioSample is the radio context snapshot an AmiGo measurement endpoint
// reports alongside each test.
type RadioSample struct {
	RAT  RAT
	CQI  int     // channel quality indicator, 0-15
	RSSI float64 // dBm
	SNR  float64 // dB
}

// MinUsableCQI is the paper's filter threshold: measurements with CQI < 7
// (QPSK territory) are excluded from bandwidth analysis.
const MinUsableCQI = 7

// RadioConditions parameterize the radio environment of a deployment.
type RadioConditions struct {
	// FiveGShare is the probability a sample is taken on 5G.
	FiveGShare float64
	// MeanCQI is the center of the CQI distribution (clamped to 1..15).
	MeanCQI float64
}

// Sample draws a radio snapshot for the given conditions.
func (rc RadioConditions) Sample(src *rng.Source) RadioSample {
	rat := RAT4G
	if src.Bool(rc.FiveGShare) {
		rat = RAT5G
	}
	mean := rc.MeanCQI
	if mean == 0 {
		mean = 10
	}
	cqi := int(src.Normal(mean, 2.5) + 0.5)
	if cqi < 1 {
		cqi = 1
	}
	if cqi > 15 {
		cqi = 15
	}
	// RSSI/SNR loosely tied to CQI: good channels are strong channels.
	rssi := -110 + float64(cqi)*3 + src.Normal(0, 3)
	snr := -5 + float64(cqi)*1.8 + src.Normal(0, 1.5)
	return RadioSample{RAT: rat, CQI: cqi, RSSI: rssi, SNR: snr}
}

// Usable reports whether the sample passes the paper's CQI filter.
func (s RadioSample) Usable() bool { return s.CQI >= MinUsableCQI }
