package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"roamsim/internal/obs"
	"roamsim/internal/wire"
)

// maxBody bounds how much of a request body the gateway buffers for the
// routing peek. It matches the largest legitimate upload (a full
// campaign's worth of payloads is far smaller); anything bigger is
// refused before a byte reaches a shard.
const maxBody = 64 << 20

// routes the gateway understands, in the order they appear in the
// per-shard request counters.
var routeNames = []string{
	"v1/register", "v1/status", "v1/tasks", "v1/results",
	"v2/lease", "v2/requeue", "v2/results",
	"v3/lease", "v3/results",
	"admin/schedule",
}

// Options configures a Gateway.
type Options struct {
	// Obs, when set, receives gateway metrics: per-shard per-route
	// request counters and admin merge counters. The registry also backs
	// the gateway's own GET /admin/metrics and /admin/trace routes.
	Obs *obs.Registry
}

// topology is one immutable generation of the gateway's world: the
// placement ring, the backend per shard, and the per-shard request
// counters. Requests load it once and use it consistently; topology
// changes swap the whole value.
type topology struct {
	ring     *Ring
	backends []http.Handler
	reqs     [][]*obs.Counter // [shard][route] request counters
}

func newTopology(backends []http.Handler, reg *obs.Registry) *topology {
	t := &topology{
		ring:     NewRing(len(backends)),
		backends: append([]http.Handler(nil), backends...),
	}
	t.reqs = make([][]*obs.Counter, len(backends))
	for s := range t.reqs {
		t.reqs[s] = make([]*obs.Counter, len(routeNames))
		for rt, name := range routeNames {
			// Counter handles are shared per (name, labels), so a swap to
			// the same shard count reuses the existing series.
			t.reqs[s][rt] = reg.Counter("gateway_requests_total",
				obs.L("shard", strconv.Itoa(s)), obs.L("route", name))
		}
	}
	return t
}

// Gateway fronts N shard backends with the single-server HTTP surface:
// MEs talk to one base URL and never learn the topology. Every data-
// plane request is routed whole to the ME's owning shard (no fan-out on
// the hot path); the admin read routes merge across shards in canonical
// shard-index order. The topology is swappable at runtime: SetBackend
// replaces one shard's handler in place (the shard-kill recovery hook),
// and Pause/Resume quiesce the whole data plane and install a new ring
// — possibly with a different shard count — which is how a live reshard
// goes atomic (see fleet.ShardedFleet.Reshard).
type Gateway struct {
	obs *obs.Registry
	mux *http.ServeMux

	mu   sync.Mutex // serializes topology swaps; readers load topo lock-free
	topo atomic.Pointer[topology]

	// gate quiesces the request plane across a topology change: every
	// request holds it shared for its whole round trip; Pause takes it
	// exclusive, so Pause returns only once in-flight requests have
	// drained, and new requests block (not fail) until Resume. Blocking
	// matters: MEs parked in a gated round trip count as busy to the
	// virtual clock and burn no bounded-retry budget, so a swap is
	// invisible to them except as latency.
	gate sync.RWMutex
}

// NewGateway builds a gateway over the given backends — typically each
// an amigo Server's Handler()+AdminHandler() composite (see Mount). The
// ring is derived from len(backends).
func NewGateway(backends []http.Handler, opts Options) *Gateway {
	if len(backends) == 0 {
		panic("shard: NewGateway needs at least one backend")
	}
	g := &Gateway{obs: opts.Obs}
	g.topo.Store(newTopology(backends, opts.Obs))
	g.mux = g.buildMux()
	return g
}

// Mount composes one amigo server's protocol and admin handlers into a
// single backend the way cmd/roam-fleet self-hosting does: /v1/, /v2/,
// /v3/ from the protocol handler, /admin/ from the admin handler.
func Mount(protocol, admin http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/", protocol)
	mux.Handle("/v2/", protocol)
	mux.Handle("/v3/", protocol)
	mux.Handle("/admin/", admin)
	return mux
}

// Ring exposes the gateway's current placement ring (read-only), so
// harnesses and benchmarks can schedule tasks directly against the
// owning shard. After a Resume with a different shard count this
// returns the new ring.
func (g *Gateway) Ring() *Ring { return g.topo.Load().ring }

// Backend returns shard i's current backend.
func (g *Gateway) Backend(i int) http.Handler {
	return g.topo.Load().backends[i]
}

// Backends returns a copy of the current backend list, in shard order.
func (g *Gateway) Backends() []http.Handler {
	t := g.topo.Load()
	return append([]http.Handler(nil), t.backends...)
}

// SetBackend atomically replaces shard i's backend. In-flight requests
// finish against the handler they resolved; new requests see the
// replacement. This is the shard-kill recovery hook: the harness swaps
// in a fresh server wired to the dead shard's surviving WAL.
func (g *Gateway) SetBackend(i int, h http.Handler) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.topo.Load()
	next := append([]http.Handler(nil), cur.backends...)
	next[i] = h
	g.topo.Store(&topology{ring: cur.ring, backends: next, reqs: cur.reqs})
}

// Pause gates the control plane for a topology swap: it blocks new
// requests at the door and returns only once every in-flight request
// has drained. Between Pause and Resume the world is quiescent — every
// result a shard ever acknowledged is in its sink, and nothing new can
// arrive — which is the window a reshard copies WALs in. Requests
// arriving while paused simply wait; callers must pair every Pause
// with exactly one Resume, and must not call Pause from a goroutine
// that is itself serving a gateway request (that request can never
// drain).
func (g *Gateway) Pause() { g.gate.Lock() }

// Resume installs backends as the new topology — rebuilding the ring,
// so the shard count may differ from the previous generation — and
// reopens the gate. Blocked requests then route by the new ring.
func (g *Gateway) Resume(backends []http.Handler) {
	if len(backends) == 0 {
		panic("shard: Resume needs at least one backend")
	}
	g.mu.Lock()
	g.topo.Store(newTopology(backends, g.obs))
	g.mu.Unlock()
	g.gate.Unlock()
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.gate.RLock()
	defer g.gate.RUnlock()
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	// Data plane: peek the ME, forward whole to its shard.
	mux.HandleFunc("POST /v1/register", g.routeJSON(0, jsonObjectME))
	mux.HandleFunc("POST /v1/status", g.routeJSON(1, jsonObjectME))
	mux.HandleFunc("GET /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		g.forward(w, r, r.URL.Query().Get("me"), 2)
	})
	mux.HandleFunc("POST /v1/results", g.routeJSON(3, jsonObjectME))
	mux.HandleFunc("POST /v2/tasks/lease", g.routeJSON(4, jsonObjectME))
	mux.HandleFunc("POST /v2/tasks/requeue", g.routeJSON(5, jsonObjectME))
	mux.HandleFunc("POST /v2/results", g.routeJSON(6, jsonArrayME))
	mux.HandleFunc("POST /v3/tasks/lease", g.routeV3(7))
	mux.HandleFunc("POST /v3/results", g.routeV3(8))
	mux.HandleFunc("POST /admin/schedule", g.routeJSON(9, jsonObjectME))
	// Admin read surface: merged views.
	mux.HandleFunc("GET /admin/results", g.handleMergedResults)
	mux.HandleFunc("GET /admin/mes", g.handleMergedMEs)
	// The gateway's own observability, covering gateway counters plus
	// whatever the harness registered alongside (per-shard WAL metrics).
	mux.Handle("GET /admin/metrics", g.obs.MetricsHandler())
	mux.Handle("GET /admin/trace", g.obs.TraceHandler())
	return mux
}

// forward dispatches the (body-rewound) request to me's shard. One
// topology load covers both the placement and the backend, so a
// concurrent swap can never route by one ring and serve from another.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, me string, route int) {
	t := g.topo.Load()
	shard := t.ring.Shard(me)
	t.reqs[shard][route].Inc()
	t.backends[shard].ServeHTTP(w, r)
}

// bufferBody reads the whole request body (bounded) and rewinds the
// request so the backend sees it untouched.
func bufferBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		http.Error(w, "reading body", http.StatusBadRequest)
		return nil, false
	}
	if len(body) > maxBody {
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return nil, false
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	return body, true
}

// jsonObjectME peeks {"me": ...} out of a JSON object body.
func jsonObjectME(body []byte) (string, error) {
	var obj struct {
		ME string `json:"me"`
	}
	if err := json.Unmarshal(body, &obj); err != nil {
		return "", err
	}
	return obj.ME, nil
}

// jsonArrayME peeks the first element's "me" out of a JSON array body
// (the v2 upload batch; one batch always belongs to a single ME). An
// empty batch routes to shard 0 — it carries no data, any shard can
// no-op it.
func jsonArrayME(body []byte) (string, error) {
	var arr []struct {
		ME string `json:"me"`
	}
	if err := json.Unmarshal(body, &arr); err != nil {
		return "", err
	}
	if len(arr) == 0 {
		return "", nil
	}
	return arr[0].ME, nil
}

// routeJSON buffers the body, peeks the ME with the given peek
// function, and forwards. A body the peek cannot parse is rejected here
// with 400 — the shard would reject it identically, so nothing
// observable changes versus a single server.
func (g *Gateway) routeJSON(route int, peek func([]byte) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := bufferBody(w, r)
		if !ok {
			return
		}
		me, err := peek(body)
		if err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		g.forward(w, r, me, route)
	}
}

// routeV3 peeks the ME out of a binary wire frame: the header names the
// message type, and LeaseRequest.ME / the first upload record's ME
// names the owning shard. Only the routing-relevant prefix is decoded
// strictly here; the shard's handler decodes (and rejects) the full
// frame as usual.
func (g *Gateway) routeV3(route int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := bufferBody(w, r)
		if !ok {
			return
		}
		if len(body) < wire.HeaderLen {
			http.Error(w, "short frame", http.StatusBadRequest)
			return
		}
		h, err := wire.ParseHeader(body[:wire.HeaderLen])
		if err != nil || len(body) != wire.HeaderLen+int(h.N) {
			http.Error(w, "bad frame", http.StatusBadRequest)
			return
		}
		payload := body[wire.HeaderLen:]
		dec := wire.GetDecoder()
		var me string
		switch h.Type {
		case wire.MsgLeaseRequest:
			var req wire.LeaseRequest
			req, err = dec.LeaseRequest(payload)
			me = req.ME
		case wire.MsgResults:
			me, err = dec.FirstResultME(payload)
		default:
			err = fmt.Errorf("shard: unroutable frame type 0x%02x", h.Type)
		}
		wire.PutDecoder(dec)
		if err != nil {
			http.Error(w, "bad frame", http.StatusBadRequest)
			return
		}
		g.forward(w, r, me, route)
	}
}

// memResponse is a minimal in-memory http.ResponseWriter for the
// synthetic sub-requests the merged admin routes issue against shard
// backends.
type memResponse struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

func (m *memResponse) Header() http.Header {
	if m.hdr == nil {
		m.hdr = make(http.Header)
	}
	return m.hdr
}

func (m *memResponse) WriteHeader(code int) {
	if m.code == 0 {
		m.code = code
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	if m.code == 0 {
		m.code = http.StatusOK
	}
	return m.body.Write(p)
}

// adminGet issues a synthetic GET against shard i's backend in the
// given topology snapshot and decodes the JSON response into out.
// Non-2xx statuses are returned as errors carrying the status code.
func adminGet(t *topology, i int, path string, out any) (int, error) {
	req, err := http.NewRequest(http.MethodGet, path, nil)
	if err != nil {
		return 0, err
	}
	var resp memResponse
	t.backends[i].ServeHTTP(&resp, req)
	if resp.code == 0 {
		resp.code = http.StatusOK
	}
	if resp.code != http.StatusOK {
		return resp.code, fmt.Errorf("shard %d: %s: HTTP %d", i, path, resp.code)
	}
	if out != nil {
		if err := json.Unmarshal(resp.body.Bytes(), out); err != nil {
			return resp.code, fmt.Errorf("shard %d: %s: %w", i, path, err)
		}
	}
	return resp.code, nil
}

// resultsPage mirrors the amigo admin results response.
type resultsPage struct {
	Cursor  int               `json:"cursor"`
	Results []json.RawMessage `json:"results"`
}

// handleMergedResults serves GET /admin/results with the single-server
// contract — {"cursor": next, "results": [...]} paged by cursor and
// limit, cursor=-1 returning just the current cursor — over the
// concatenation of all shards' logs in shard-index order.
//
// The global cursor maps onto per-shard cursors via a prefix-sum
// snapshot of the shard log lengths, probed once up front. Within one
// request the merge is a consistent view of that snapshot: every
// per-shard read is clamped to min(want, probedTotal-local), so a shard
// appending between the probe and the reads can neither shift the
// prefix sums (duplicating records) nor leak post-snapshot results into
// the page. Across separate paged requests the mapping is stable only
// while uploads are quiescent (growth in earlier shards shifts later
// shards' global offsets), which matches how the fleet driver uses it:
// results are paged out after the campaign has drained, exactly as with
// one server. If any shard's sink cannot be read back (501), the merged
// route answers 501 — a partial merge would silently drop a shard's
// worth of results.
func (g *Gateway) handleMergedResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor, ok := intParam(w, q.Get("cursor"), "cursor")
	if !ok {
		return
	}
	limit, ok := intParam(w, q.Get("limit"), "limit")
	if !ok {
		return
	}

	t := g.topo.Load()
	n := t.ring.Shards()
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		var page resultsPage
		code, err := adminGet(t, i, "/admin/results?cursor=-1", &page)
		if err != nil {
			if code == http.StatusNotImplemented {
				http.Error(w, "results not readable: a shard's sink has no cursor support", http.StatusNotImplemented)
			} else {
				http.Error(w, err.Error(), http.StatusBadGateway)
			}
			return
		}
		lens[i] = page.Cursor
	}
	total := 0
	for _, l := range lens {
		total += l
	}

	if cursor < 0 {
		writeJSON(w, map[string]any{"cursor": total, "results": []json.RawMessage{}})
		return
	}
	if limit <= 0 {
		limit = total // "no limit": one page covers everything
	}

	merged := make([]json.RawMessage, 0, min(limit, 4096))
	prefix := 0
	for i := 0; i < n && len(merged) < limit; i++ {
		segEnd := prefix + lens[i]
		local := 0
		if cursor > prefix {
			local = cursor - prefix
		}
		// Page through this shard's log; shards may serve bounded pages
		// (walsink does), so loop until the snapshot length is covered.
		for local < lens[i] && len(merged) < limit {
			want := lens[i] - local
			if rem := limit - len(merged); rem < want {
				want = rem
			}
			var page resultsPage
			path := fmt.Sprintf("/admin/results?cursor=%d&limit=%d", local, want)
			if _, err := adminGet(t, i, path, &page); err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			if len(page.Results) > want {
				// The shard appended past the probe and served more than
				// asked; keep the merge inside the snapshot.
				page.Results = page.Results[:want]
			}
			if len(page.Results) == 0 {
				break // shard shrank?! — serve what we have rather than spin
			}
			// Advance by what was actually merged, not the shard's own
			// cursor: a post-snapshot append must not skip ahead.
			merged = append(merged, page.Results...)
			local += len(page.Results)
		}
		prefix = segEnd
	}
	g.obs.Counter("gateway_admin_merges_total").Inc()
	writeJSON(w, map[string]any{"cursor": cursor + len(merged), "results": merged})
}

// intParam parses an optional integer query parameter. A missing value
// is 0; a malformed one answers 400 and returns ok=false — silently
// treating garbage as 0 would replay the whole log as a "successful"
// read.
func intParam(w http.ResponseWriter, raw, name string) (int, bool) {
	if raw == "" {
		return 0, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		http.Error(w, "bad "+name, http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// handleMergedMEs serves GET /admin/mes as the sorted union of every
// shard's registered MEs.
func (g *Gateway) handleMergedMEs(w http.ResponseWriter, r *http.Request) {
	t := g.topo.Load()
	var all []string
	for i := 0; i < t.ring.Shards(); i++ {
		var mes []string
		if _, err := adminGet(t, i, "/admin/mes", &mes); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		all = append(all, mes...)
	}
	sort.Strings(all)
	writeJSON(w, all)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, "encoding response", http.StatusInternalServerError)
	}
}
