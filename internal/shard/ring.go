// Package shard horizontally partitions the AmiGo control plane. A
// consistent-hash Ring assigns each measurement endpoint (ME) to one of
// N shards — each shard a full amigo.Server with its own registry,
// queues and result sink — and a thin Gateway routes every protocol
// request (v1/v2 JSON and v3 binary) to the owning shard by peeking the
// ME name out of the request, merging only the admin read surface
// across shards.
//
// Placement is a pure function of (ME name, shard count): the vnode
// layout is fixed, the hash is FNV-1a finished with a splitmix64
// avalanche (see ringHash), and no runtime state feeds the ring, so a fleet campaign routed through N shards executes the exact
// same per-ME schedule as against one server — which is what makes the
// sharded dataset byte-identical to the single-server one
// (TestShardedFleetEquivalence) and lets a restarted gateway re-derive
// placement with no handoff protocol.
package shard

import "sort"

// vnodesPerShard is the fixed virtual-node count per shard. 128 vnodes
// keeps the max/min load ratio across shards within a few percent for
// fleet-sized ME populations while the ring stays small enough to build
// in microseconds.
const vnodesPerShard = 128

type point struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring over a fixed shard count.
// It is safe for concurrent use.
type Ring struct {
	points []point
	shards int
}

// NewRing builds the canonical ring for n shards (n >= 1). The layout
// depends on nothing but n: vnode v of shard s hashes the literal
// string "shard-<s>/vnode-<v>", and ties (astronomically unlikely but
// cheap to define away) break toward the lower shard index.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{points: make([]point, 0, n*vnodesPerShard), shards: n}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, point{hash: ringHash(vnodeName(s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

func vnodeName(shard, vnode int) string {
	// Hand-rolled itoa keeps NewRing allocation-light; fmt.Sprintf here
	// costs ~3 allocs per vnode.
	buf := make([]byte, 0, 24)
	buf = append(buf, "shard-"...)
	buf = appendInt(buf, shard)
	buf = append(buf, "/vnode-"...)
	buf = appendInt(buf, vnode)
	return string(buf)
}

func appendInt(b []byte, n int) []byte {
	if n >= 10 {
		b = appendInt(b, n/10)
	}
	return append(b, byte('0'+n%10))
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Shard returns the shard owning the given ME name: the shard of the
// first ring point at or after fnv64a(me), wrapping to the first point.
func (r *Ring) Shard(me string) int {
	h := ringHash(me)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// ringHash positions a name on the ring: FNV-1a finished with a
// splitmix64-style avalanche. Raw FNV-1a mixes trailing-byte changes
// poorly across the high bits that order the ring — names differing
// only in a short numeric suffix ("me-000".."me-199", and the vnode
// names themselves) land within a sliver of the keyspace, collapsing
// whole fleets onto one shard and hollowing out the vnode spread the
// 128-per-shard layout is supposed to guarantee. The finalizer
// avalanches every input bit across the word, restoring uniform vnode
// arcs and the consistent-hash movement bound resharding relies on.
func ringHash(s string) uint64 {
	return mix64(fnv64a(s))
}

// mix64 is the splitmix64 finalizer (Stafford variant 13).
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// fnv64a is FNV-1a, inlined so ring lookups never allocate a hasher.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
