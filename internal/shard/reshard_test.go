package shard

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"roamsim/internal/walsink"
	"roamsim/internal/wire"
)

// wres builds one deterministic result for me with the given sequence
// number.
func wres(me string, seq int) wire.Result {
	return wire.Result{
		TaskID:   seq,
		ME:       me,
		Kind:     "speedtest",
		Config:   "esim",
		OK:       true,
		Payload:  []byte(fmt.Sprintf(`{"seq":%d}`, seq)),
		Uploaded: time.Unix(0, int64(seq)).UTC(),
	}
}

// openWALs opens n WALs under root/shard-<i>.
func openWALs(t *testing.T, root string, n int) []*walsink.Sink {
	t.Helper()
	out := make([]*walsink.Sink, n)
	for i := range out {
		w, err := walsink.Open(filepath.Join(root, fmt.Sprintf("shard-%d", i)), walsink.Options{SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		out[i] = w
	}
	return out
}

func TestReshardReroutesEveryRecord(t *testing.T) {
	mes := []string{"PAK-00", "PAK-01", "GEO-00", "USA-00", "FRA-00", "JPN-00", "IND-00", "BRA-00"}
	srcRing := NewRing(2)

	src := openWALs(t, t.TempDir(), 2)
	perME := map[string][]wire.Result{}
	total := 0
	for round := 1; round <= 5; round++ {
		for _, me := range mes {
			r := wres(me, round)
			src[srcRing.Shard(me)].Append([]wire.Result{r})
			perME[me] = append(perME[me], r)
			total++
		}
	}

	dst := openWALs(t, t.TempDir(), 3)
	st, err := Reshard(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != total {
		t.Fatalf("Records = %d, want %d — reshard must replay every record", st.Records, total)
	}
	if st.Moved == 0 || st.Moved >= total {
		t.Fatalf("Moved = %d of %d; consistent hashing should move some, not all", st.Moved, total)
	}

	// Every record must land on the destination shard the new ring
	// assigns its ME, with per-ME order preserved.
	dstRing := NewRing(3)
	got := map[string][]wire.Result{}
	sum := 0
	for i, d := range dst {
		if _, err := d.Replay(0, func(r wire.Result) error {
			if want := dstRing.Shard(r.ME); want != i {
				t.Fatalf("result for %s landed on shard %d, ring places it on %d", r.ME, i, want)
			}
			cp := r
			cp.Payload = append([]byte(nil), r.Payload...)
			got[r.ME] = append(got[r.ME], cp)
			sum++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if sum != total {
		t.Fatalf("destinations hold %d records, want %d", sum, total)
	}
	for me, want := range perME {
		g := got[me]
		if len(g) != len(want) {
			t.Fatalf("%s: %d records after reshard, want %d", me, len(g), len(want))
		}
		for i := range g {
			if g[i].TaskID != want[i].TaskID || string(g[i].Payload) != string(want[i].Payload) {
				t.Fatalf("%s record %d reordered or altered: got %+v want %+v", me, i, g[i], want[i])
			}
		}
	}

	// Resharding back to the source count restores the original
	// per-shard placement.
	back := openWALs(t, t.TempDir(), 2)
	if _, err := Reshard(dst, back); err != nil {
		t.Fatal(err)
	}
	for i, b := range back {
		if _, err := b.Replay(0, func(r wire.Result) error {
			if want := srcRing.Shard(r.ME); want != i {
				t.Fatalf("round-trip: result for %s on shard %d, want %d", r.ME, i, want)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRingBalanceSequentialNames is the regression for the ring-hash
// dispersion bug: raw FNV-1a clustered sequentially-named MEs (and the
// vnode points themselves) into a sliver of the keyspace, piling entire
// fleets onto shard 0. Every shard must own a fair slice of a
// sequential namespace.
func TestRingBalanceSequentialNames(t *testing.T) {
	const n = 2000
	for _, shards := range []int{2, 4, 8} {
		r := NewRing(shards)
		counts := make([]int, shards)
		for i := 0; i < n; i++ {
			counts[r.Shard(fmt.Sprintf("me-%04d", i))]++
		}
		avg := n / shards
		for s, c := range counts {
			if c < avg/2 || c > avg*2 {
				t.Fatalf("%d shards: shard %d owns %d of %d MEs (avg %d) — ring imbalance", shards, s, c, n, avg)
			}
		}
	}
}

func TestMovedMEs(t *testing.T) {
	var mes []string
	for i := 0; i < 200; i++ {
		mes = append(mes, fmt.Sprintf("me-%03d", i))
	}
	from, to := NewRing(4), NewRing(5)
	moved := MovedMEs(from, to, mes)
	if len(moved) == 0 || len(moved) == len(mes) {
		t.Fatalf("4→5 moved %d of %d MEs; consistent hashing should move a strict subset", len(moved), len(mes))
	}
	// Roughly 1/5 should move; allow generous slack but catch a broken
	// ring that re-homes (almost) everything.
	if len(moved) > len(mes)/2 {
		t.Fatalf("4→5 moved %d of %d MEs — far above the consistent-hash bound", len(moved), len(mes))
	}
	for _, me := range moved {
		if from.Shard(me) == to.Shard(me) {
			t.Fatalf("%s reported moved but owns the same shard", me)
		}
	}
	if got := MovedMEs(from, NewRing(4), mes); len(got) != 0 {
		t.Fatalf("identical rings moved %d MEs", len(got))
	}
}
