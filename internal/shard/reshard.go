package shard

// Resharding: rebuilding a sharded deployment's WAL set onto a
// different ring size. The source WALs are replayed in shard order —
// the same canonical concatenation fleet.ReplayWALs produces — and
// every result is re-routed to the destination shard that owns its ME
// under the destination ring. Placement is a pure function of (ME,
// shard count), so the destination WAL set is exactly what a campaign
// run against the new shard count would have written, minus request
// interleaving: per-ME result order is preserved because each ME's
// results appear in source-log order and land in a single destination.

import (
	"fmt"

	"roamsim/internal/walsink"
	"roamsim/internal/wire"
)

// reshardBatch bounds how many results buffer per destination frame
// while copying — large enough for dense frames, small enough to keep
// the copy's memory footprint flat.
const reshardBatch = 1024

// ReshardStats reports what one Reshard copied.
type ReshardStats struct {
	Records int // results replayed out of the source WALs
	Batches int // frames appended across the destination WALs
	Moved   int // results whose owning shard changed
}

// Reshard replays every record of the source WALs in shard order and
// appends each result to its owning destination WAL under the
// destination ring (NewRing(len(dst))). Consecutive results bound for
// the same destination are re-batched into dense frames. The caller
// owns both sets of sinks: sources must be quiescent (nothing
// appending — pause the gateway first), destinations are typically
// freshly opened empty WALs. Reshard syncs the destinations before
// returning, so a crash after Reshard loses nothing.
func Reshard(src, dst []*walsink.Sink) (ReshardStats, error) {
	var st ReshardStats
	if len(dst) == 0 {
		return st, fmt.Errorf("shard: reshard needs at least one destination")
	}
	srcRing, dstRing := NewRing(len(src)), NewRing(len(dst))
	cur := -1
	var batch []wire.Result
	flush := func() {
		if len(batch) > 0 {
			dst[cur].Append(batch)
			st.Batches++
			batch = batch[:0]
		}
	}
	for _, s := range src {
		if _, err := s.Replay(0, func(r wire.Result) error {
			to := dstRing.Shard(r.ME)
			if to != cur {
				flush()
				cur = to
			}
			batch = append(batch, r)
			if len(batch) >= reshardBatch {
				flush()
			}
			st.Records++
			if srcRing.Shard(r.ME) != to {
				st.Moved++
			}
			return nil
		}); err != nil {
			return st, err
		}
	}
	flush()
	for i, d := range dst {
		// Append carries no error return; surface any write failure
		// before the caller swaps the new WAL set live.
		if err := d.Err(); err != nil {
			return st, fmt.Errorf("shard: reshard destination %d: %w", i, err)
		}
		if err := d.Sync(); err != nil {
			return st, fmt.Errorf("shard: reshard destination %d: %w", i, err)
		}
	}
	return st, nil
}

// MovedMEs returns the subset of mes (order preserved) whose owning
// shard differs between the two rings — the ring diff that tells a
// reshard which MEs will land on a fresh server and have to
// re-register. With consistent hashing the moved fraction stays near
// the theoretical |Δshards|/max(from,to) rather than re-homing
// everything.
func MovedMEs(from, to *Ring, mes []string) []string {
	var moved []string
	for _, me := range mes {
		if from.Shard(me) != to.Shard(me) {
			moved = append(moved, me)
		}
	}
	return moved
}
